// Benchmarks for the sharded concurrent study pipeline (study.RunCtx):
// the same end-to-end run — generation, filter, sharded aggregation,
// merge, analyses — at increasing worker counts. samples/s is the
// headline metric; EXPERIMENTS.md records the measured scaling curve.
// workers=1 is the sequential determinism oracle, so the curve is also
// the cost of the concurrency machinery at no parallelism.
package repro_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/study"
	"repro/internal/world"
)

// benchPipelineCfg sizes the run so generation (workload + flowsim +
// methodology) dominates: one day across 64 groups at moderate density,
// ~120k sessions per run.
func benchPipelineCfg() world.Config {
	return world.Config{Seed: 42, Groups: 64, Days: 1, SessionsPerGroupWindow: 20}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := make(map[int]bool)
	for _, workers := range counts {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			samples := 0
			for i := 0; i < b.N; i++ {
				res, err := study.RunCtx(context.Background(), benchPipelineCfg(), study.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				samples += res.Collector.Accepted
			}
			b.ReportMetric(float64(samples)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}
