# Development targets. `make check` is the full gate: vet, build,
# race-detector runs over the concurrency-sensitive packages (the obs
# registry and the collector pipeline), then the whole suite (tier-1:
# `go build ./... && go test ./...`).

GO ?= go

.PHONY: check vet build race test bench-obs bench

check: vet build race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/collector/...

test:
	$(GO) test ./...

# Documents the obs fast-path cost on collector ingest (EXPERIMENTS.md
# records the measured overhead; the bar is <5%).
bench-obs:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem -count 5 ./internal/collector/

bench:
	$(GO) test -bench . -benchmem
