# Development targets. `make check` is the full gate: vet, build, the
# race detector across every package (the determinism golden tests run
# the sharded pipeline under -race) plus a real multi-worker study run
# under -race, then the whole suite (tier-1: `go build ./... && go test
# ./...`).

GO ?= go

.PHONY: check vet build race test bench-obs bench-pipeline bench

check: vet build race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race ./...
	$(GO) run -race ./cmd/edgereport -groups 8 -days 1 -spw 12 -workers 4 > /dev/null

test:
	$(GO) test ./...

# Documents the obs fast-path cost on collector ingest (EXPERIMENTS.md
# records the measured overhead; the bar is <5%).
bench-obs:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem -count 5 ./internal/collector/

# The sharded-pipeline scaling curve (EXPERIMENTS.md records measured
# samples/s per worker count; flat on single-core machines).
bench-pipeline:
	$(GO) test -run '^$$' -bench BenchmarkPipelineThroughput -benchtime 3x .

bench:
	$(GO) test -bench . -benchmem
