# Development targets. `make check` is the full gate: vet, build, the
# race detector across every package (the determinism golden tests run
# the sharded pipeline under -race) plus a real multi-worker study run
# under -race, then the whole suite (tier-1: `go build ./... && go test
# ./...`).

GO ?= go

.PHONY: check vet lint build race test chaos seg-race trace-race colagg-race pop-race studyd-race fuzz-smoke bench-obs bench-pipeline bench-retry bench bench-segstore bench-trace bench-colagg bench-ship bench-studyd

check: vet lint build race test chaos seg-race trace-race colagg-race pop-race studyd-race

vet:
	$(GO) vet ./...

# edgelint enforces the repo's determinism, unit-safety, poisoning, and
# batch-ownership contracts (DESIGN.md §8, §13). Packages are analyzed
# in parallel and results cached under os.UserCacheDir()/edgelint
# (-cache off disables). Also runnable through the vet toolchain:
#   go build -o edgelint ./cmd/edgelint && go vet -vettool=./edgelint ./...
lint:
	$(GO) run ./cmd/edgelint -stats .

build:
	$(GO) build ./...

race:
	$(GO) test -race ./...
	$(GO) run -race ./cmd/edgereport -groups 8 -days 1 -spw 12 -workers 4 > /dev/null

test:
	$(GO) test ./...

# A degraded multi-worker study under the race detector: every fault
# surface fires (sink retry, quarantine, batch truncation/drop, a PoP
# outage) and the run must still complete with an accounted report.
# The byte-identity of degraded reports across worker counts is proved
# by the chaos tests in internal/study and cmd/edgesim (run by `race`).
chaos:
	$(GO) run -race ./cmd/edgereport -groups 8 -days 1 -spw 12 -workers 4 \
		-fault-plan "seed=7;sink-transient=0.01;sink-permanent=0.001;truncate=0.1;corrupt=0.03;fail-group=2;outage=fra:10-30;retries=4;retry-base=50us" \
		> /dev/null

# The seg-format study under the race detector: write a columnar
# dataset with the parallel segment writer, then analyse it through the
# parallel scanner with a time filter pushed down to the manifest.
seg-race:
	rm -rf .seg-race-ds
	$(GO) run -race ./cmd/edgesim -seed 3 -groups 8 -days 2 -spw 12 -workers 4 -format seg -o .seg-race-ds
	$(GO) run -race ./cmd/edgereport -in .seg-race-ds -workers 4 -from 24h > /dev/null
	rm -rf .seg-race-ds

# The flight recorder's determinism golden, live: two traced chaos
# studies under the race detector at different worker counts must
# produce byte-identical trace files (DESIGN.md §11). The .timing
# sidecars are physical and excluded from the comparison.
trace-race:
	rm -rf .trace-race
	mkdir -p .trace-race
	$(GO) run -race ./cmd/edgereport -groups 8 -days 1 -spw 12 -workers 4 -trace .trace-race/w4.trace \
		-fault-plan "seed=7;sink-transient=0.01;truncate=0.1;fail-group=2;outage=fra:10-30;retries=4;retry-base=50us" \
		> /dev/null
	$(GO) run -race ./cmd/edgereport -groups 8 -days 1 -spw 12 -workers 1 -trace .trace-race/w1.trace \
		-fault-plan "seed=7;sink-transient=0.01;truncate=0.1;fail-group=2;outage=fra:10-30;retries=4;retry-base=50us" \
		> /dev/null
	cmp .trace-race/w1.trace .trace-race/w4.trace
	$(GO) run ./cmd/edgetrace causes .trace-race/w4.trace > /dev/null
	rm -rf .trace-race

# The columnar-aggregation identity, live under the race detector: the
# same seg dataset analysed through the batch hot path (ScanColumns ->
# AddBatch, 4 shard workers) and through the row oracle (-row-oracle,
# sequential) must render byte-identical reports. Only the wall-clock
# line differs between runs, so it is stripped before cmp.
colagg-race:
	rm -rf .colagg-race
	mkdir -p .colagg-race
	$(GO) run -race ./cmd/edgesim -seed 3 -groups 8 -days 2 -spw 12 -workers 4 -format seg -o .colagg-race/ds
	$(GO) run -race ./cmd/edgereport -in .colagg-race/ds -workers 4 | grep -v '^Generated and analysed' > .colagg-race/batch.txt
	$(GO) run -race ./cmd/edgereport -in .colagg-race/ds -row-oracle -workers 1 | grep -v '^Generated and analysed' > .colagg-race/rows.txt
	cmp .colagg-race/batch.txt .colagg-race/rows.txt
	rm -rf .colagg-race

# The multi-PoP shipping invariant, live under the race detector: two
# edgepopd processes generate disjoint shares of the world and ship
# them to an edgemerged spool over a unix socket while the wire plan
# injects duplicate deliveries and connection-severing drops. The
# report rendered from the merged spool must be byte-identical to the
# single-process run's (only the wall-clock line is stripped). The
# kill-and-restart variants of this invariant run in internal/ship's
# tests (`race`).
pop-race:
	rm -rf .pop-race
	mkdir -p .pop-race
	$(GO) run -race ./cmd/edgesim -seed 3 -groups 9 -days 2 -spw 12 -workers 4 -format seg -o .pop-race/golden
	$(GO) build -race -o .pop-race/edgepopd ./cmd/edgepopd
	$(GO) build -race -o .pop-race/edgemerged ./cmd/edgemerged
	./.pop-race/edgemerged -o .pop-race/spool -listen .pop-race/merge.sock -expect-pops 2 & \
	mpid=$$!; \
	sleep 1; \
	./.pop-race/edgepopd -seed 3 -groups 9 -days 2 -spw 12 -workers 4 -o .pop-race/pop0 -pop 0 -pops 2 -merger .pop-race/merge.sock \
		-ship-fault-plan "seed=9;ship-dup=0.4;ship-drop=0.2;retries=12;retry-base=1ms" & \
	p0=$$!; \
	./.pop-race/edgepopd -seed 3 -groups 9 -days 2 -spw 12 -workers 4 -o .pop-race/pop1 -pop 1 -pops 2 -merger .pop-race/merge.sock \
		-ship-fault-plan "seed=9;ship-dup=0.4;ship-drop=0.2;retries=12;retry-base=1ms" & \
	p1=$$!; \
	wait $$p0 && wait $$p1 && wait $$mpid
	$(GO) run -race ./cmd/edgereport -in .pop-race/golden -workers 4 | grep -v '^Generated and analysed' > .pop-race/golden.txt
	$(GO) run -race ./cmd/edgereport -in .pop-race/spool -workers 4 | grep -v '^Generated and analysed' > .pop-race/merged.txt
	cmp .pop-race/golden.txt .pop-race/merged.txt
	rm -rf .pop-race

# The always-on daemon's keystone invariant, live under the race
# detector: an edgestudyd live run (continuous ingest, logical-clock
# window sealing, chunk commits while serving HTTP) must drain into a
# spool — and serve a /report — byte-identical to the golden batch
# pipeline's output for the same flags, at several worker counts,
# clean and under a chaos plan. The daemon is polled over its own
# -fetch client (no curl dependency), interrupted with SIGINT once
# drained, and must exit the sigctl drain path cleanly.
STUDYD_FLAGS = -seed 7 -groups 8 -days 2 -spw 10
STUDYD_PLAN  = seed=7;sink-transient=0.01;fail-group=2;outage=fra:10-30;retries=4;retry-base=50us
studyd-race:
	rm -rf .studyd-race
	mkdir -p .studyd-race
	$(GO) build -race -o .studyd-race/edgestudyd ./cmd/edgestudyd
	$(GO) run -race ./cmd/edgesim $(STUDYD_FLAGS) -workers 4 -format seg -o .studyd-race/golden
	$(GO) run -race ./cmd/edgesim $(STUDYD_FLAGS) -workers 4 -format seg -o .studyd-race/golden-chaos -fault-plan "$(STUDYD_PLAN)"
	$(GO) run -race ./cmd/edgereport -in .studyd-race/golden -workers 4 | grep -v '^Generated and analysed' > .studyd-race/golden.txt
	$(GO) run -race ./cmd/edgereport -in .studyd-race/golden-chaos -workers 4 | grep -v '^Generated and analysed' > .studyd-race/golden-chaos.txt
	for w in 1 2 4; do \
		rm -f .studyd-race/addr; \
		./.studyd-race/edgestudyd $(STUDYD_FLAGS) -workers $$w -o .studyd-race/spool-w$$w -addr-file .studyd-race/addr & \
		dpid=$$!; \
		until [ -s .studyd-race/addr ]; do sleep 0.1; done; \
		addr=$$(cat .studyd-race/addr); \
		until ./.studyd-race/edgestudyd -fetch "http://$$addr/healthz" | grep -q '"state": "drained"'; do sleep 0.2; done; \
		./.studyd-race/edgestudyd -fetch "http://$$addr/report" > .studyd-race/served-w$$w.txt || exit 1; \
		kill -INT $$dpid; wait $$dpid || exit 1; \
		cmp .studyd-race/golden.txt .studyd-race/served-w$$w.txt || exit 1; \
		diff -r .studyd-race/golden .studyd-race/spool-w$$w || exit 1; \
	done
	rm -f .studyd-race/addr; \
	./.studyd-race/edgestudyd $(STUDYD_FLAGS) -workers 4 -fault-plan "$(STUDYD_PLAN)" -o .studyd-race/spool-chaos -addr-file .studyd-race/addr & \
	dpid=$$!; \
	until [ -s .studyd-race/addr ]; do sleep 0.1; done; \
	addr=$$(cat .studyd-race/addr); \
	until ./.studyd-race/edgestudyd -fetch "http://$$addr/healthz" | grep -q '"state": "drained"'; do sleep 0.2; done; \
	./.studyd-race/edgestudyd -fetch "http://$$addr/report" > .studyd-race/served-chaos.txt || exit 1; \
	kill -INT $$dpid; wait $$dpid || exit 1; \
	cmp .studyd-race/golden-chaos.txt .studyd-race/served-chaos.txt || exit 1; \
	diff -r .studyd-race/golden-chaos .studyd-race/spool-chaos
	rm -rf .studyd-race

# A short burst on each fuzz target; the invariants live next to the
# targets (tdigest merge structure, hdratio classification ranges,
# segment decode never panics on hostile bytes, ship frame decode never
# panics on hostile streams).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzTDigestMerge -fuzztime 10s ./internal/tdigest/
	$(GO) test -run '^$$' -fuzz FuzzHDRatioClassify -fuzztime 10s ./internal/hdratio/
	$(GO) test -run '^$$' -fuzz FuzzSegmentDecode -fuzztime 10s ./internal/segstore/
	$(GO) test -run '^$$' -fuzz FuzzShipFrameDecode -fuzztime 10s ./internal/ship/
	$(GO) test -run '^$$' -fuzz FuzzStudydQueryParams -fuzztime 10s ./internal/studyd/

# Documents the obs fast-path cost on collector ingest (EXPERIMENTS.md
# records the measured overhead; the bar is <5%).
bench-obs:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem -count 5 ./internal/collector/

# The sharded-pipeline scaling curve (EXPERIMENTS.md records measured
# samples/s per worker count; flat on single-core machines).
bench-pipeline:
	$(GO) test -run '^$$' -bench BenchmarkPipelineThroughput -benchtime 3x .

# The recovery layer's no-fault cost per guarded write (EXPERIMENTS.md
# records the measured overhead of a retry-wrapped call vs a bare one).
bench-retry:
	$(GO) test -run '^$$' -bench BenchmarkRetryOverhead -benchmem -count 5 ./internal/faults/

# Columnar scan vs JSONL scan over the same rows (EXPERIMENTS.md and
# BENCH_segstore.json record the compression ratio and decode
# throughput).
bench-segstore:
	$(GO) test -run '^$$' -bench 'BenchmarkSegstoreScan|BenchmarkJSONLScan' -benchmem -count 3 ./internal/segstore/

# The flight recorder's hot-path cost: traced vs untraced ingest
# (EXPERIMENTS.md and BENCH_trace.json record the measured overhead;
# the bar is <5% and zero allocations per event).
bench-trace:
	$(GO) test -run '^$$' -bench BenchmarkTraceOverhead -benchmem -count 5 ./internal/trace/

# Batch-path aggregation vs the row oracle over the same seg corpus
# (EXPERIMENTS.md and BENCH_colagg.json record samples/s and the
# allocation delta).
bench-colagg:
	$(GO) test -run '^$$' -bench 'BenchmarkColagg(Rows|Batches)$$' -benchmem -benchtime 10x -count 2 ./internal/study/

# One PoP's dataset shipped over loopback TCP into a fresh spool,
# durable ack-log and manifest commits included (EXPERIMENTS.md records
# the measured per-slot cost of crash-safe shipping).
bench-ship:
	$(GO) test -run '^$$' -bench BenchmarkShipThroughput -benchmem -count 3 ./internal/ship/

# The daemon's serving fast paths: a fresh cache hit vs a stale hit
# that kicks off background revalidation (EXPERIMENTS.md and
# BENCH_studyd.json record the measured latencies; stale serves must
# stay near hit cost — readers never wait for re-aggregation).
bench-studyd:
	$(GO) test -run '^$$' -bench BenchmarkStudydServe -benchmem -count 3 ./internal/studyd/

bench:
	$(GO) test -bench . -benchmem
