# Development targets. `make check` is the full gate: vet, build, the
# race detector across every package (the determinism golden tests run
# the sharded pipeline under -race) plus a real multi-worker study run
# under -race, then the whole suite (tier-1: `go build ./... && go test
# ./...`).

GO ?= go

.PHONY: check vet lint build race test fuzz-smoke bench-obs bench-pipeline bench

check: vet lint build race test

vet:
	$(GO) vet ./...

# edgelint enforces the repo's determinism, unit-safety, and poisoning
# contracts (DESIGN.md §8). Also runnable through the vet toolchain:
#   go build -o edgelint ./cmd/edgelint && go vet -vettool=./edgelint ./...
lint:
	$(GO) run ./cmd/edgelint .

build:
	$(GO) build ./...

race:
	$(GO) test -race ./...
	$(GO) run -race ./cmd/edgereport -groups 8 -days 1 -spw 12 -workers 4 > /dev/null

test:
	$(GO) test ./...

# A short burst on each fuzz target; the invariants live next to the
# targets (tdigest merge structure, hdratio classification ranges).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzTDigestMerge -fuzztime 10s ./internal/tdigest/
	$(GO) test -run '^$$' -fuzz FuzzHDRatioClassify -fuzztime 10s ./internal/hdratio/

# Documents the obs fast-path cost on collector ingest (EXPERIMENTS.md
# records the measured overhead; the bar is <5%).
bench-obs:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem -count 5 ./internal/collector/

# The sharded-pipeline scaling curve (EXPERIMENTS.md records measured
# samples/s per worker count; flat on single-core machines).
bench-pipeline:
	$(GO) test -run '^$$' -bench BenchmarkPipelineThroughput -benchtime 3x .

bench:
	$(GO) test -bench . -benchmem
