// Package repro is a from-scratch Go reproduction of "Internet
// Performance from Facebook's Edge" (Schlinker, Cunha, Chiu, Sundaresan,
// Katz-Bassett — IMC 2019): server-side passive measurement of user
// network performance (MinRTT and the HDratio goodput methodology) and
// the paper's full evaluation — traffic characterisation, a global
// performance snapshot, temporal degradation analysis, and the
// performance-aware-routing opportunity study — over a synthetic global
// edge that substitutes for the proprietary production dataset.
//
// Start at package repro/edge for the public API, cmd/edgereport for the
// full study, and DESIGN.md for the system inventory and per-experiment
// index. The benchmarks in this directory regenerate every table and
// figure in the paper's evaluation; EXPERIMENTS.md records paper-vs-
// measured values.
package repro
