// Package edge is the public API of the reproduction of "Internet
// Performance from Facebook's Edge" (IMC 2019): server-side passive
// measurement of latency (MinRTT) and achievable goodput (HDratio) from
// production-style HTTP traffic, the aggregation and statistics used to
// compare user groups over time and across routes, and the full
// measurement study over a synthetic global edge.
//
// The three layers, bottom to top:
//
//   - Methodology: Evaluate applies the paper's §3.2 goodput
//     methodology to a session's corrected transactions — determining
//     which transactions could test for a target goodput (Gtestable,
//     with ideal congestion-window chaining) and which achieved it
//     (best-case model transfer time through a bottleneck). Correct
//     turns raw load-balancer capture events into those corrected
//     transactions (delayed-ACK correction, HTTP/2 coalescing,
//     bytes-in-flight eligibility, §3.2.5).
//
//   - Aggregation & comparison: NewStore aggregates samples into user
//     groups (PoP × BGP prefix × country) and 15-minute windows with
//     streaming t-digests (§3.3); the analysis entry points compute
//     degradation (§5) and routing opportunity (§6) with
//     distribution-free confidence intervals (§3.4).
//
//   - Study: RunStudy generates a synthetic global dataset and executes
//     every analysis in the paper's evaluation, reproducing the data
//     behind Figures 1–10 and Tables 1–2.
package edge

import (
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/hdratio"
	"repro/internal/proxygen"
	"repro/internal/sample"
	"repro/internal/study"
	"repro/internal/units"
	"repro/internal/world"
)

// HDGoodput is the paper's target goodput: 2.5 Mbps, the minimum
// bitrate for HD video (§3.2.1).
const HDGoodput = units.HDGoodput

// Rate is a data rate in bits per second.
type Rate = units.Rate

// Common rate units for constructing targets.
const (
	Kbps = units.Kbps
	Mbps = units.Mbps
	Gbps = units.Gbps
)

// Transaction is one corrected HTTP transaction observation: bytes
// excluding the final packet, duration from first byte at the NIC to
// the ACK covering the second-to-last packet, and the congestion window
// at write time (Wnic).
type Transaction = hdratio.Transaction

// Session is an HTTP session's observations: its MinRTT and corrected
// transactions in order.
type Session = hdratio.Session

// Outcome summarises a session against the target goodput; HDratio() is
// achieved/tested, NaN when nothing could test.
type Outcome = hdratio.Outcome

// Config parameterises the methodology (target goodput, MSS).
type Config = hdratio.Config

// DefaultConfig returns the paper's production configuration
// (2.5 Mbps HD target).
func DefaultConfig() Config { return hdratio.DefaultConfig() }

// Evaluate runs the §3.2 methodology over a session.
func Evaluate(sess Session, cfg Config) Outcome { return hdratio.Evaluate(sess, cfg) }

// Gtestable returns the maximum goodput a transaction can demonstrate
// under ideal conditions (§3.2.2, equations 1–3).
func Gtestable(btotal, wstart int64, minRTT Duration) Rate {
	return hdratio.Gtestable(btotal, wstart, minRTT)
}

// Tmodel returns the best-case transfer time of btotal bytes through a
// bottleneck of rate r starting from congestion window wnic (§3.2.3).
func Tmodel(r Rate, btotal, wnic int64, minRTT Duration) Duration {
	return hdratio.Tmodel(r, btotal, wnic, minRTT)
}

// EstimateDeliveryRate returns the methodology's estimate of how fast
// the network delivered a transaction (§3.2.3).
func EstimateDeliveryRate(txn Transaction, minRTT Duration) Rate {
	return hdratio.EstimateDeliveryRate(txn, minRTT)
}

// RawTransaction is an uncorrected load-balancer capture of one HTTP
// transaction (§2.2.2).
type RawTransaction = proxygen.RawTxn

// Correct applies the §3.2.5 capture rules — delayed-ACK correction,
// coalescing of multiplexed and back-to-back responses, bytes-in-flight
// eligibility — and returns the methodology's transactions.
func Correct(raw []RawTransaction) []Transaction { return proxygen.Correct(raw) }

// Sampler deterministically selects sessions to instrument at a
// configured rate (§2.2.2).
type Sampler = proxygen.Sampler

// Sample is one sampled HTTP session record as stored in the dataset.
type Sample = sample.Sample

// GroupKey identifies a user group: PoP × BGP prefix × country (§3.3).
type GroupKey = sample.GroupKey

// Store aggregates samples into user groups × 15-minute windows ×
// routes with streaming digests (§3.3).
type Store = agg.Store

// NewStore returns an empty aggregation store.
func NewStore() *Store { return agg.NewStore() }

// Metric selects the aggregation median under analysis.
type Metric = analysis.Metric

// Metrics.
const (
	MetricMinRTT  = analysis.MetricMinRTT
	MetricHDratio = analysis.MetricHDratio
)

// Degradation computes per-window degradation of each group's preferred
// route against its baseline (§5, Figure 8).
func Degradation(st *Store, m Metric) analysis.DegradationResult {
	return analysis.Degradation(st, m)
}

// Opportunity compares each group's preferred route against its best
// alternate per window (§6.2, Figure 9).
func Opportunity(st *Store, m Metric) analysis.OpportunityResult {
	return analysis.Opportunity(st, m)
}

// StudyConfig sizes a synthetic world (groups, days, sampling density).
type StudyConfig = world.Config

// StudyResults bundles every analysis output; WriteReport renders the
// reproduced tables and figures as text.
type StudyResults = study.Results

// RunStudy generates a synthetic dataset and runs the paper's full
// evaluation over it.
func RunStudy(cfg StudyConfig) *StudyResults { return study.Run(cfg) }

// Duration aliases time.Duration so the API reads uniformly.
type Duration = time.Duration
