package edge_test

import (
	"fmt"
	"time"

	"repro/edge"
)

// The paper's Figure 4 worked example: a 60 ms client fetches three
// objects; the methodology decides which transfers could demonstrate HD
// goodput and which did.
func Example() {
	const mss = 1500
	sess := edge.Session{
		MinRTT: 60 * time.Millisecond,
		Transactions: []edge.Transaction{
			{Bytes: 2 * mss, Duration: 60 * time.Millisecond, Wnic: 10 * mss},
			{Bytes: 24 * mss, Duration: 120 * time.Millisecond, Wnic: 10 * mss},
			{Bytes: 14 * mss, Duration: 60 * time.Millisecond, Wnic: 20 * mss},
		},
	}
	out := edge.Evaluate(sess, edge.DefaultConfig())
	fmt.Printf("HDratio=%.1f tested=%d achieved=%d\n", out.HDratio(), out.Tested, out.AchievedCount)
	// Output: HDratio=1.0 tested=2 achieved=2
}

// Gtestable is the maximum goodput a transfer could demonstrate under
// ideal conditions: 24 packets from a 10-packet window deliver 14
// packets in their best round trip — 2.8 Mbps at 60 ms.
func ExampleGtestable() {
	g := edge.Gtestable(24*1500, 10*1500, 60*time.Millisecond)
	fmt.Printf("%.1f Mbps\n", g.Mbps())
	// Output: 2.8 Mbps
}

// Tmodel is the best-case transfer time through a bottleneck: one
// slow-start round (15 KB), the remaining 21 KB at 2.5 Mbps, plus the
// final acknowledgment round trip.
func ExampleTmodel() {
	t := edge.Tmodel(edge.HDGoodput, 24*1500, 10*1500, 60*time.Millisecond)
	fmt.Println(t.Round(100 * time.Microsecond))
	// Output: 187.2ms
}

// Correct applies the capture rules: the final packet (whose ACK the
// client may delay) is excluded, and the duration ends at the ACK
// covering the second-to-last packet.
func ExampleCorrect() {
	raw := []edge.RawTransaction{{
		FirstByteNIC:    0,
		LastByteNIC:     10 * time.Millisecond,
		SecondToLastAck: 70 * time.Millisecond,
		LastAck:         110 * time.Millisecond, // delayed by the client
		Bytes:           30000,
		LastPacketBytes: 1500,
		Wnic:            15000,
	}}
	txn := edge.Correct(raw)[0]
	fmt.Printf("bytes=%d duration=%v\n", txn.Bytes, txn.Duration)
	// Output: bytes=28500 duration=70ms
}
