package edge_test

import (
	"math"
	"testing"
	"time"

	"repro/edge"
)

// TestPublicAPIQuickstart exercises the documented entry points the way
// the examples do.
func TestPublicAPIQuickstart(t *testing.T) {
	const mss = 1500
	sess := edge.Session{
		MinRTT: 60 * time.Millisecond,
		Transactions: []edge.Transaction{
			{Bytes: 2 * mss, Duration: 60 * time.Millisecond, Wnic: 10 * mss},
			{Bytes: 24 * mss, Duration: 120 * time.Millisecond, Wnic: 10 * mss},
			{Bytes: 14 * mss, Duration: 60 * time.Millisecond, Wnic: 20 * mss},
		},
	}
	out := edge.Evaluate(sess, edge.DefaultConfig())
	if out.Tested != 2 || out.AchievedCount != 2 {
		t.Fatalf("quickstart outcome: %d/%d", out.AchievedCount, out.Tested)
	}
	if hd := out.HDratio(); hd != 1 {
		t.Errorf("HDratio = %v", hd)
	}
	if g := edge.Gtestable(24*mss, 10*mss, 60*time.Millisecond); math.Abs(g.Mbps()-2.8) > 0.01 {
		t.Errorf("Gtestable = %v", g)
	}
	if tm := edge.Tmodel(edge.HDGoodput, 24*mss, 10*mss, 60*time.Millisecond); tm < 180*time.Millisecond || tm > 195*time.Millisecond {
		t.Errorf("Tmodel = %v", tm)
	}
}

func TestPublicAPICorrect(t *testing.T) {
	raw := []edge.RawTransaction{{
		FirstByteWrite: 0, FirstByteNIC: 0,
		LastByteNIC:     10 * time.Millisecond,
		SecondToLastAck: 60 * time.Millisecond,
		LastAck:         100 * time.Millisecond,
		Bytes:           30000, LastPacketBytes: 1500, Wnic: 15000,
	}}
	txns := edge.Correct(raw)
	if len(txns) != 1 || txns[0].Bytes != 28500 {
		t.Fatalf("Correct = %+v", txns)
	}
}

func TestPublicAPIStore(t *testing.T) {
	st := edge.NewStore()
	st.Add(edge.Sample{
		PoP: "ams", Prefix: "10.0.0.0/24", Country: "DE",
		MinRTT: 20 * time.Millisecond, Bytes: 100,
	})
	if st.Len() != 1 {
		t.Errorf("store groups = %d", st.Len())
	}
	key := edge.GroupKey{PoP: "ams", Prefix: "10.0.0.0/24", Country: "DE"}
	if st.Group(key) == nil {
		t.Error("group lookup failed")
	}
}

func TestPublicAPIStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("study smoke skipped in -short")
	}
	res := edge.RunStudy(edge.StudyConfig{Seed: 5, Groups: 6, Days: 1, SessionsPerGroupWindow: 3})
	if res.Store.TotalSamples == 0 {
		t.Fatal("study produced no samples")
	}
	if res.Overview.Sessions == 0 {
		t.Fatal("overview saw no sessions")
	}
	// Degradation/opportunity run even if sparse data invalidates most
	// comparisons at this tiny scale.
	_ = edge.Degradation(res.Store, edge.MetricMinRTT)
	_ = edge.Opportunity(res.Store, edge.MetricHDratio)
}

func TestSamplerAPI(t *testing.T) {
	s := edge.Sampler{Rate: 0.5, Salt: 3}
	a, b := 0, 0
	for i := uint64(0); i < 1000; i++ {
		if s.Sample(i) {
			a++
		} else {
			b++
		}
	}
	if a == 0 || b == 0 {
		t.Errorf("sampler degenerate: %d/%d", a, b)
	}
}
