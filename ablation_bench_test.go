// Ablation benchmarks for the design choices DESIGN.md calls out: each
// compares the methodology as specified by the paper against a
// plausible simplification, quantifying what the design element buys.
package repro_test

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/flowsim"
	"repro/internal/hdratio"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/pep"
	"repro/internal/proxygen"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/tcpsim"
	"repro/internal/tdigest"
	"repro/internal/units"
	"repro/internal/validate"
	"repro/internal/world"
)

// BenchmarkAblationWstartChaining quantifies §3.2.2's ideal-Wstart
// chaining: when network conditions collapse the real cwnd, the naive
// approach (testability from the measured Wnic alone) loses testable
// transactions exactly where the evidence of poor performance is
// strongest.
func BenchmarkAblationWstartChaining(b *testing.B) {
	r := rng.New(1)
	// Sessions on a congested path: the first transaction grows the
	// window, timeouts collapse Wnic before later transactions.
	sessions := make([]hdratio.Session, 500)
	for i := range sessions {
		minRTT := time.Duration(r.IntN(80)+20) * time.Millisecond
		txns := []hdratio.Transaction{
			{Bytes: 24 * 1500, Duration: 3 * minRTT, Wnic: 15000},
			{Bytes: 20 * 1500, Duration: 5 * minRTT, Wnic: 1500}, // collapsed
			{Bytes: 18 * 1500, Duration: 4 * minRTT, Wnic: 1500}, // collapsed
		}
		sessions[i] = hdratio.Session{MinRTT: minRTT, Transactions: txns}
	}
	cfg := hdratio.DefaultConfig()

	var chained, naive int
	for i := 0; i < b.N; i++ {
		chained, naive = 0, 0
		for _, sess := range sessions {
			out := hdratio.Evaluate(sess, cfg)
			chained += out.Tested
			for _, txn := range sess.Transactions {
				if hdratio.Gtestable(txn.Bytes, txn.Wnic, sess.MinRTT) >= cfg.Target {
					naive++
				}
			}
		}
	}
	total := float64(len(sessions) * 3)
	b.ReportMetric(float64(chained)/total, "testable-frac-chained")
	b.ReportMetric(float64(naive)/total, "testable-frac-naive-wnic")
}

// ackAblationSessions runs small-response sessions through the packet
// simulator with delayed ACKs enabled and returns the raw captures plus
// the session MinRTTs.
func ackAblationSessions(n int) ([][]proxygen.RawTxn, []time.Duration) {
	raws := make([][]proxygen.RawTxn, n)
	rtts := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		var sim netsim.Sim
		sim.MaxSteps = 1 << 22
		oneWay := time.Duration(10+i%40) * time.Millisecond
		fwd := &netsim.Link{Sim: &sim, Rate: 8 * units.Mbps, Delay: oneWay}
		rev := &netsim.Link{Sim: &sim, Delay: oneWay}
		s := httpsim.NewSession(&sim, tcpsim.Config{DelayedAcks: true}, fwd, rev, sample.HTTP1, oneWay)
		// Odd-packet-count responses maximise delayed-ack exposure.
		s.Schedule([]httpsim.Request{
			{At: 0, ResponseBytes: 23 * 1500},
			{At: 2 * time.Second, ResponseBytes: 31 * 1500},
		})
		sim.Run()
		raws[i] = s.RawTxns()
		rtts[i] = s.Conn().MinRTT()
	}
	return raws, rtts
}

// BenchmarkAblationDelayedAckCorrection quantifies §3.2.5's last-packet
// correction: judging transactions on their full duration (to the final
// ACK, which the receiver may delay 40ms+) misses HD achievements that
// the corrected measurement captures.
func BenchmarkAblationDelayedAckCorrection(b *testing.B) {
	raws, rtts := ackAblationSessions(60)
	cfg := hdratio.DefaultConfig()
	var corrected, uncorrected, tested int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corrected, uncorrected, tested = 0, 0, 0
		for si, sraws := range raws {
			// Corrected per the paper.
			out := hdratio.Evaluate(hdratio.Session{
				MinRTT:       rtts[si],
				Transactions: proxygen.Correct(sraws),
			}, cfg)
			corrected += out.AchievedCount
			tested += out.Tested
			// Uncorrected: full bytes, duration to the last ACK.
			var txns []hdratio.Transaction
			for _, rt := range sraws {
				txns = append(txns, hdratio.Transaction{
					Bytes:    rt.Bytes,
					Duration: rt.LastAck - rt.FirstByteNIC,
					Wnic:     rt.Wnic,
				})
			}
			out = hdratio.Evaluate(hdratio.Session{MinRTT: rtts[si], Transactions: txns}, cfg)
			uncorrected += out.AchievedCount
		}
	}
	b.ReportMetric(float64(corrected)/float64(tested), "achieved-frac-corrected")
	b.ReportMetric(float64(uncorrected)/float64(tested), "achieved-frac-uncorrected")
}

// BenchmarkAblationCoalescing quantifies §3.2.5's multiplexing
// coalescing: without it, interleaved HTTP/2 responses inflate each
// other's transfer durations and HD judgments collapse.
func BenchmarkAblationCoalescing(b *testing.B) {
	// Overlapping H2 responses over a moderate bottleneck.
	type sessCapture struct {
		raws   []proxygen.RawTxn
		minRTT time.Duration
	}
	var captures []sessCapture
	for i := 0; i < 40; i++ {
		var sim netsim.Sim
		sim.MaxSteps = 1 << 22
		oneWay := time.Duration(15+i%30) * time.Millisecond
		fwd := &netsim.Link{Sim: &sim, Rate: 6 * units.Mbps, Delay: oneWay}
		rev := &netsim.Link{Sim: &sim, Delay: oneWay}
		s := httpsim.NewSession(&sim, tcpsim.Config{}, fwd, rev, sample.HTTP2, oneWay)
		s.Schedule([]httpsim.Request{
			{At: 0, ResponseBytes: 60 * 1500},
			{At: 30 * time.Millisecond, ResponseBytes: 60 * 1500},
			{At: 60 * time.Millisecond, ResponseBytes: 60 * 1500},
		})
		sim.Run()
		captures = append(captures, sessCapture{s.RawTxns(), s.Conn().MinRTT()})
	}
	cfg := hdratio.DefaultConfig()
	var withHD, withoutHD float64
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withHD, withoutHD = 0, 0
		n = 0
		for _, c := range captures {
			out := hdratio.Evaluate(hdratio.Session{MinRTT: c.minRTT, Transactions: proxygen.Correct(c.raws)}, cfg)
			if hd := out.HDratio(); !math.IsNaN(hd) {
				withHD += hd
				n++
			}
			// No coalescing: convert each raw independently.
			var txns []hdratio.Transaction
			for _, rt := range c.raws {
				txns = append(txns, hdratio.Transaction{
					Bytes:    rt.Bytes - rt.LastPacketBytes,
					Duration: rt.SecondToLastAck - rt.FirstByteNIC,
					Wnic:     rt.Wnic,
				})
			}
			out = hdratio.Evaluate(hdratio.Session{MinRTT: c.minRTT, Transactions: txns}, cfg)
			if hd := out.HDratio(); !math.IsNaN(hd) {
				withoutHD += hd
			}
		}
	}
	b.ReportMetric(withHD/float64(n), "mean-hdratio-coalesced")
	b.ReportMetric(withoutHD/float64(n), "mean-hdratio-uncoalesced")
}

// BenchmarkAblationMeanVsMedian quantifies §3.3's percentile
// aggregation: tail RTT values (bufferbloat, timeouts measured in
// seconds) skew a mean but not the median.
func BenchmarkAblationMeanVsMedian(b *testing.B) {
	r := rng.New(7)
	var meanMs, p50Ms float64
	for i := 0; i < b.N; i++ {
		d := tdigest.New(100)
		sum, n := 0.0, 0
		for j := 0; j < 10000; j++ {
			v := r.LogNormalMedian(40, 0.4)
			if r.Bool(0.01) {
				v = r.Uniform(1000, 5000) // §3.3: tail values on the order of seconds
			}
			d.Add(v)
			sum += v
			n++
		}
		meanMs, p50Ms = sum/float64(n), d.Quantile(0.5)
	}
	b.ReportMetric(meanMs, "mean-ms(skewed)")
	b.ReportMetric(p50Ms, "median-ms(robust:~40)")
}

// BenchmarkAblationTDigestVsExact quantifies the streaming-sketch
// tradeoff (§3.4.1 footnote 11): quantile error versus exact sorting.
func BenchmarkAblationTDigestVsExact(b *testing.B) {
	r := rng.New(9)
	n := 100000
	vals := make([]float64, n)
	d := tdigest.New(agg.Compression)
	for i := range vals {
		vals[i] = r.LogNormalMedian(40, 0.6)
		d.Add(vals[i])
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	exactP50 := sorted[n/2]
	b.ResetTimer()
	var approx float64
	for i := 0; i < b.N; i++ {
		approx = d.Quantile(0.5)
	}
	b.ReportMetric(math.Abs(approx-exactP50)/exactP50, "p50-rel-err")
}

// BenchmarkAblationFlowVsPacket quantifies the two-tier simulator
// design: the flow-level model's transfer-duration error against the
// packet-level simulator, and its speed advantage.
func BenchmarkAblationFlowVsPacket(b *testing.B) {
	cfgs := []validate.Config{
		{Bottleneck: 2 * units.Mbps, RTT: 50 * time.Millisecond, InitCwnd: 10, SizePkts: 100},
		{Bottleneck: 5 * units.Mbps, RTT: 20 * time.Millisecond, InitCwnd: 10, SizePkts: 47},
		{Bottleneck: 1 * units.Mbps, RTT: 100 * time.Millisecond, InitCwnd: 10, SizePkts: 200},
	}
	// Packet-level reference durations.
	ref := make([]time.Duration, len(cfgs))
	for i, c := range cfgs {
		res := validate.RunOne(c)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		ref[i] = res.Ttotal
	}
	var relErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relErr = 0
		for ci, c := range cfgs {
			fs := flowsim.NewSession(flowsim.Path{PropRTT: c.RTT, Bottleneck: c.Bottleneck}, flowsim.Config{}, rng.New(1))
			txn := fs.Transfer(int64(c.SizePkts) * 1500)
			relErr += math.Abs(float64(txn.Observation.Duration-ref[ci])) / float64(ref[ci])
		}
		relErr /= float64(len(cfgs))
	}
	b.ReportMetric(relErr, "mean-rel-duration-err-vs-packet")
}

// BenchmarkAblationCongestionControl compares the three congestion
// controllers on a lossy 10 Mbps path — goodput depends on the
// algorithm (§3.2), and BBR's loss-tolerance (the paper's [20]) is the
// reason it sustains goodput where halving-based algorithms collapse.
func BenchmarkAblationCongestionControl(b *testing.B) {
	run := func(cc tcpsim.Algorithm, seed uint64) units.Rate {
		var sim netsim.Sim
		sim.MaxSteps = 1 << 24
		fwd := &netsim.Link{Sim: &sim, Rate: 10 * units.Mbps, Delay: 25 * time.Millisecond,
			LossProb: 0.02, RNG: rng.New(seed)}
		rev := &netsim.Link{Sim: &sim, Delay: 25 * time.Millisecond}
		c := tcpsim.New(&sim, tcpsim.Config{CC: cc}, fwd, rev)
		total := int64(2000 * 1500)
		var done time.Duration
		c.OnAllAcked = func() { done = sim.Now() }
		c.Write(int(total))
		if !sim.Run() || c.Acked() != total {
			b.Fatalf("transfer failed (cc=%v)", cc)
		}
		return units.RateOf(total, done)
	}
	var reno, cubic, bbr units.Rate
	for i := 0; i < b.N; i++ {
		reno, cubic, bbr = 0, 0, 0
		for s := uint64(0); s < 3; s++ {
			reno += run(tcpsim.Reno, 40+s) / 3
			cubic += run(tcpsim.Cubic, 40+s) / 3
			bbr += run(tcpsim.BBR, 40+s) / 3
		}
	}
	b.ReportMetric(reno.Mbps(), "reno-mbps-at-2pct-loss")
	b.ReportMetric(cubic.Mbps(), "cubic-mbps-at-2pct-loss")
	b.ReportMetric(bbr.Mbps(), "bbr-mbps-at-2pct-loss")
}

// BenchmarkAblationDeaggregation reproduces §3.3's granularity
// experiment: deaggregating prefixes into subnets costs coverage while
// barely reducing variability, which is why the paper aggregates at the
// BGP prefix.
func BenchmarkAblationDeaggregation(b *testing.B) {
	w := world.New(world.Config{Seed: 17, Groups: 10, Days: 1, SessionsPerGroupWindow: 260})
	var res analysis.DeaggregationResult
	for i := 0; i < b.N; i++ {
		base := agg.NewStore()
		fine := agg.NewStore()
		fineSink := analysis.DeaggregateSink(fine)
		w.Generate(func(s sample.Sample) {
			if s.HostingProvider {
				return
			}
			base.Add(s)
			fineSink(s)
		})
		res = analysis.CompareDeaggregation(base, fine)
	}
	b.ReportMetric(res.CoverageLoss(), "coverage-loss(paper:large)")
	b.ReportMetric(res.VariabilityReduction(), "variability-reduction(paper:minimal)")
}

// BenchmarkAblationPEP quantifies the §2.2.1 caveat: with a split-TCP
// proxy on path, the server-side MinRTT reflects only the server↔PEP
// segment.
func BenchmarkAblationPEP(b *testing.B) {
	var serverRTT, e2e time.Duration
	for i := 0; i < b.N; i++ {
		var sim netsim.Sim
		sim.MaxSteps = 1 << 24
		up := pep.SegmentConfig{Rate: 100 * units.Mbps, OneWay: 5 * time.Millisecond}
		down := pep.SegmentConfig{Rate: 2 * units.Mbps, OneWay: 250 * time.Millisecond}
		split := pep.NewSplit(&sim, up, down)
		split.ServeObject(100 * 1500)
		sim.Run()
		serverRTT = split.Upstream.MinRTT()
		e2e = pep.EndToEndRTT(up, down)
	}
	b.ReportMetric(float64(serverRTT)/1e6, "server-minrtt-ms")
	b.ReportMetric(float64(e2e)/1e6, "true-e2e-rtt-ms")
}
