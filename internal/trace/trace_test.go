package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// emitWorkload emits a fixed logical workload across n goroutines,
// each owning its own Buf: the partition of groups onto goroutines
// changes with n, the logical events do not.
func emitWorkload(r *Recorder, n int) {
	const groups = 12
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		buf := r.Buf()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for g := w; g < groups; g += n {
				track := GroupTrack(g)
				sp := buf.Begin(track, PhaseGen, -1, 0, "generate")
				for win := int32(0); win < 3; win++ {
					buf.Emit(Event{Track: track, Phase: PhaseGen, Win: win, Seq: uint64(win), Kind: KMark, Stage: "window", Value: 7})
				}
				sp.End(21)
				if g%5 == 0 {
					buf.Emit(Event{Track: track, Phase: PhaseBatch, Win: 1, Seq: 0, Kind: KFault, Stage: "batch", Detail: "truncated-batch"})
					buf.Loss(track, PhaseBatch, 1, 0, "batch", LossTruncated, 3)
				}
				buf.Emit(Event{Track: track, Phase: PhaseSeal, Win: -1, Seq: 0, Kind: KSeal, Stage: "seal", Value: 21})
			}
		}(w)
	}
	wg.Wait()
}

func renderTrace(t *testing.T, workers int) string {
	t.Helper()
	r := New(42)
	emitWorkload(r, workers)
	var b bytes.Buffer
	if err := r.Flush(&b); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return b.String()
}

func TestWorkerCountInvariance(t *testing.T) {
	one := renderTrace(t, 1)
	for _, w := range []int{2, 4, 7} {
		if got := renderTrace(t, w); got != one {
			t.Fatalf("trace at %d workers differs from 1 worker:\n--- 1\n%s\n--- %d\n%s", w, one, w, got)
		}
	}
	if !strings.HasPrefix(one, `{"trace":"edgetrace/v1"`) {
		t.Fatalf("missing header: %q", one[:60])
	}
}

func TestSeedChangesIDsNotOrder(t *testing.T) {
	a := New(1)
	b := New(2)
	emitWorkload(a, 2)
	emitWorkload(b, 2)
	ea, eb := a.Events(), b.Events()
	if len(ea) == 0 || len(ea) != len(eb) {
		t.Fatalf("event counts: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs across seeds: %+v vs %+v", i, ea[i], eb[i])
		}
		if ea[i].ID(a.Base()) == eb[i].ID(b.Base()) {
			t.Fatalf("event %d has the same ID under different seeds", i)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := New(9)
	emitWorkload(r, 3)
	var b bytes.Buffer
	if err := r.Flush(&b); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&b)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Base != r.Base() {
		t.Fatalf("base: got %x want %x", f.Base, r.Base())
	}
	want := r.Events()
	if len(f.Events) != len(want) {
		t.Fatalf("events: got %d want %d", len(f.Events), len(want))
	}
	for i := range want {
		if f.Events[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, f.Events[i], want[i])
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Fatal("empty input parsed")
	}
	if _, err := Parse(strings.NewReader(`{"trace":"other/v9"}` + "\n")); err == nil {
		t.Fatal("wrong header parsed")
	}
	if _, err := Parse(strings.NewReader(`{"trace":"edgetrace/v1","base":"0"}` + "\n" + `{"k":"nope","t":"run"}` + "\n")); err == nil {
		t.Fatal("unknown kind parsed")
	}
}

func TestRingOverwriteCounts(t *testing.T) {
	r := New(7)
	r.SetBufCap(4)
	b := r.Buf()
	for i := 0; i < 10; i++ {
		b.Emit(Event{Track: TrackRun, Phase: PhaseRun, Seq: uint64(i), Kind: KMark, Stage: "m"})
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped: got %d want 6", got)
	}
	if got := len(r.Events()); got != 4 {
		t.Fatalf("retained: got %d want 4", got)
	}
	var out bytes.Buffer
	if err := r.Flush(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"dropped":6`) {
		t.Fatalf("header missing drop count: %s", out.String()[:80])
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	if b := r.Buf(); b != nil {
		t.Fatal("nil recorder returned live buf")
	}
	var b *Buf
	if id := b.Emit(Event{Stage: "x"}); id != 0 {
		t.Fatalf("nil buf emitted id %d", id)
	}
	sp := b.Begin("t", PhaseGen, -1, 0, "stage")
	if id := sp.End(1); id != 0 {
		t.Fatalf("inert span returned id %d", id)
	}
	b.Loss("t", PhaseGen, -1, 0, "stage", LossOutage, 5)
	r.Stall("s", 0)
	r.StageTime("s", 0)
	r.Probe("s", func() int { return 0 })
	r.SampleQueues()
	if err := r.Flush(nil); err != nil {
		t.Fatalf("nil recorder Flush: %v", err)
	}
	if got := r.Base(); got != 0 {
		t.Fatalf("nil base: %d", got)
	}
}

// TestDisabledPathAllocs is the acceptance gate: tracing disabled must
// cost zero allocations on the hot path.
func TestDisabledPathAllocs(t *testing.T) {
	var b *Buf
	e := Event{Track: "g/0001", Phase: PhaseIngest, Win: 3, Seq: 9, Kind: KMark, Stage: "sink", Value: 1}
	n := testing.AllocsPerRun(1000, func() {
		b.Emit(e)
		b.Loss("g/0001", PhaseIngest, 3, 9, "sink", LossQuarantined, 1)
	})
	if n != 0 {
		t.Fatalf("disabled path allocates %.1f/op", n)
	}
}

// TestEnabledSteadyStateAllocs: once the ring is at capacity, Emit
// must not allocate.
func TestEnabledSteadyStateAllocs(t *testing.T) {
	r := New(1)
	r.SetBufCap(64)
	b := r.Buf()
	e := Event{Track: "g/0001", Phase: PhaseIngest, Win: 3, Seq: 9, Kind: KMark, Stage: "sink", Value: 1}
	for i := 0; i < 64; i++ {
		b.Emit(e)
	}
	n := testing.AllocsPerRun(1000, func() { b.Emit(e) })
	if n != 0 {
		t.Fatalf("steady-state Emit allocates %.1f/op", n)
	}
}

func TestTimingSidecarSeparation(t *testing.T) {
	r := New(3)
	b := r.Buf()
	b.Emit(Event{Track: TrackRun, Phase: PhaseRun, Seq: 0, Kind: KMark, Stage: "run"})
	r.Stall("ingest", 1000)
	r.Probe("feed", func() int { return 5 })
	r.SampleQueues()
	r.StageTime("feed", 2000)
	var out bytes.Buffer
	if err := r.Flush(&out); err != nil {
		t.Fatal(err)
	}
	for _, phys := range []string{`"stall"`, `"depth"`, `"time"`} {
		if strings.Contains(out.String(), phys) {
			t.Fatalf("physical kind %s leaked into deterministic trace", phys)
		}
	}
	dir := t.TempDir()
	path := dir + "/run.trace"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	ts, err := ParseTimingFile(path + ".timing")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("timing events: got %d want 3", len(ts))
	}
	rows := StallReport(ts)
	byStage := map[string]StallRow{}
	for _, row := range rows {
		byStage[row.Stage] = row
	}
	if byStage["ingest"].Stalls != 1 {
		t.Fatalf("ingest stalls: %+v", rows)
	}
	if byStage["feed"].MaxDepth != 5 || byStage["feed"].TimeNs != 2000 {
		t.Fatalf("feed row: %+v", byStage["feed"])
	}
	if ts2, err := ParseTimingFile(dir + "/absent.timing"); err != nil || ts2 != nil {
		t.Fatalf("missing sidecar: %v %v", ts2, err)
	}
}

func TestStagesAndCriticalPaths(t *testing.T) {
	r := New(5)
	emitWorkload(r, 2)
	var buf bytes.Buffer
	if err := r.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := Stages(f)
	var gen StageRow
	for _, row := range rows {
		if row.Stage == "generate" {
			gen = row
		}
	}
	if gen.Spans != 12 || gen.Samples != 12*21 {
		t.Fatalf("generate row: %+v", gen)
	}
	crit := CriticalPaths(f)
	if len(crit) != 12 {
		t.Fatalf("critical paths: got %d groups", len(crit))
	}
	// Groups 0,5,10 carry extra loss weight in window 1.
	for i := 0; i < 3; i++ {
		if crit[i].Win != 1 {
			t.Fatalf("heavy group %d picked window %d: %+v", i, crit[i].Win, crit[i])
		}
	}
	if len(crit[0].Steps) == 0 {
		t.Fatal("empty critical path")
	}
}

func TestCausesReconcile(t *testing.T) {
	r := New(11)
	b := r.Buf()
	b.Loss(GroupTrack(1), PhaseGen, 2, 0, "generate", LossOutage, 40)
	b.Loss(GroupTrack(2), PhaseBatch, 1, 0, "batch", LossTruncated, 10)
	b.Loss(GroupTrack(2), PhaseBatch, 3, 0, "batch", LossDropped, 25)
	b.Loss("gru/10.0.0.0/8/br", PhaseIngest, -1, 7, "sink", LossQuarantined, 6)
	b.Emit(Event{Track: GroupTrack(2), Phase: PhaseBatch, Win: 3, Kind: KFault, Stage: "batch", Detail: "corrupt-batch"})
	b.Emit(Event{Track: "gru/10.0.0.0/8/br", Phase: PhaseIngest, Seq: 7, Kind: KQuarantine, Stage: "sink", Value: 6, Detail: "sink retry budget exhausted"})
	for _, m := range []struct {
		d string
		v int64
	}{
		{MarkLostPrefix + LossOutage, 40},
		{MarkLostPrefix + LossTruncated, 10},
		{MarkLostPrefix + LossDropped, 25},
		{MarkLostPrefix + LossQuarantined, 6},
		{MarkRetries, 9},
		{MarkRecovered, 4},
	} {
		b.Emit(Event{Track: TrackRun, Phase: PhaseRun, Win: -1, Kind: KMark, Stage: CoverageStage, Value: m.v, Detail: m.d})
	}
	var out bytes.Buffer
	if err := r.Flush(&out); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&out)
	if err != nil {
		t.Fatal(err)
	}
	rep := Causes(f)
	if !rep.Reconciled() {
		t.Fatalf("should reconcile: %+v", rep.Checks)
	}
	if rep.Sender != 40 || rep.Network != 35 || rep.Receiver != 6 {
		t.Fatalf("buckets: sender=%d network=%d receiver=%d", rep.Sender, rep.Network, rep.Receiver)
	}
	if rep.Retries != 9 || rep.Recovered != 4 {
		t.Fatalf("retry economy: %d/%d", rep.Retries, rep.Recovered)
	}
	if len(rep.Groups) != 3 || rep.Groups[0].Track != GroupTrack(1) {
		t.Fatalf("groups: %+v", rep.Groups)
	}
	if got := rep.Groups[1].Faults; len(got) != 1 || got[0] != "corrupt-batch" {
		t.Fatalf("fault classes: %+v", got)
	}

	// Break the ledger: reconciliation must fail loudly.
	b.Emit(Event{Track: GroupTrack(9), Phase: PhaseGen, Kind: KLoss, Stage: "generate", Value: 1, Detail: LossOutage})
	out.Reset()
	if err := r.Flush(&out); err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(&out)
	if err != nil {
		t.Fatal(err)
	}
	if Causes(f2).Reconciled() {
		t.Fatal("broken ledger reconciled")
	}
}

func TestDiff(t *testing.T) {
	mk := func(samples int64) *File {
		r := New(1)
		b := r.Buf()
		sp := b.Begin(GroupTrack(0), PhaseGen, -1, 0, "generate")
		sp.End(samples)
		b.Emit(Event{Track: TrackRun, Phase: PhaseRun, Kind: KMark, Stage: "run"})
		var out bytes.Buffer
		if err := r.Flush(&out); err != nil {
			t.Fatal(err)
		}
		f, err := Parse(&out)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	rows := Diff(mk(10), mk(12))
	var gen DiffRow
	for _, row := range rows {
		if row.Stage == "generate" {
			gen = row
		}
	}
	if gen.Same() {
		t.Fatalf("generate should differ: %+v", gen)
	}
	if gen.ASamples != 10 || gen.BSamples != 12 {
		t.Fatalf("diff values: %+v", gen)
	}
	for _, row := range Diff(mk(10), mk(10)) {
		if !row.Same() {
			t.Fatalf("identical runs diff: %+v", row)
		}
	}
}

// BenchmarkTraceOverhead measures the cost of one enabled emission on
// the ingest hot path — the number BENCH_trace.json records (target:
// ~0 allocs/event, nanoseconds per event).
func BenchmarkTraceOverhead(b *testing.B) {
	r := New(1)
	buf := r.Buf()
	tracks := make([]string, 64)
	for i := range tracks {
		tracks[i] = GroupTrack(i)
	}
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Emit(Event{Track: tracks[i&63], Phase: PhaseIngest, Win: int32(i & 7), Seq: uint64(i), Kind: KMark, Stage: "sink", Value: 1})
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var nb *Buf
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nb.Emit(Event{Track: tracks[i&63], Phase: PhaseIngest, Win: int32(i & 7), Seq: uint64(i), Kind: KMark, Stage: "sink", Value: 1})
		}
	})
}
