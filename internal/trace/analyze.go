package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Canonical loss causes: every KLoss event's Detail is one of these,
// matching the faults.Coverage ledger partition field for field.
const (
	LossOutage      = "outage"      // sessions never generated (PoP down)
	LossTruncated   = "truncated"   // batch tails cut in flight
	LossDropped     = "dropped"     // batches dropped whole
	LossQuarantined = "quarantined" // groups withdrawn from aggregation
)

// Dapper-style cause buckets for degradation attribution.
const (
	CauseSender   = "sender"   // the sender never produced the data
	CauseNetwork  = "network"  // the data was lost or mangled in flight
	CauseReceiver = "receiver" // the receiving sink refused or withdrew it
)

// CauseOf maps a canonical loss cause to its attribution bucket: an
// outage means the sender (the PoP) never sent; truncation and drops
// happen to batches in flight; quarantines are the receiver
// withdrawing a group it could not ingest.
func CauseOf(loss string) string {
	switch loss {
	case LossOutage:
		return CauseSender
	case LossTruncated, LossDropped:
		return CauseNetwork
	case LossQuarantined:
		return CauseReceiver
	}
	return CauseNetwork
}

// Ledger-mark details: the run track carries one KMark per Coverage
// ledger counter (stage "coverage"), which is what Causes reconciles
// the per-group loss events against.
const (
	MarkLostPrefix    = "lost-" // MarkLostPrefix+<loss cause>
	MarkGroupsDropped = "groups-dropped"
	MarkBatchesTrunc  = "batches-truncated"
	MarkRetries       = "retries"
	MarkRecovered     = "recovered"
	// MarkDedup counts duplicate shipments the merge tier dropped
	// idempotently (internal/ship) — absorbed redundancy, not loss.
	MarkDedup     = "dedup-dropped"
	CoverageStage = "coverage"
)

// StageRow aggregates one pipeline stage's deterministic events.
type StageRow struct {
	Phase   uint8
	Stage   string
	Spans   int   // completed spans (KEnd count)
	Samples int64 // logical work: sum of KEnd values
	Events  int   // all events carrying this stage name
}

// Stages builds the per-stage attribution table: how much logical
// work (spans, samples) each stage accounted for, in phase order.
func Stages(f *File) []StageRow {
	type key struct {
		phase uint8
		stage string
	}
	idx := map[key]*StageRow{}
	var order []key
	for _, e := range f.Events {
		k := key{e.Phase, e.Stage}
		r, ok := idx[k]
		if !ok {
			r = &StageRow{Phase: e.Phase, Stage: e.Stage}
			idx[k] = r
			order = append(order, k)
		}
		r.Events++
		if e.Kind == KEnd {
			r.Spans++
			r.Samples += e.Value
		}
	}
	rows := make([]StageRow, 0, len(order))
	for _, k := range order {
		rows = append(rows, *idx[k])
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Phase != rows[j].Phase {
			return rows[i].Phase < rows[j].Phase
		}
		return rows[i].Stage < rows[j].Stage
	})
	return rows
}

// CritRow is one group's critical path: its heaviest window and that
// window's events across every phase, in pipeline order.
type CritRow struct {
	Track   string
	Win     int32
	Samples int64 // the window's logical weight (work + losses)
	Steps   []Event
}

// CriticalPaths extracts, for every group track, the slowest (heaviest)
// window — the one with the most logical work plus booked losses — and
// the phase-ordered event chain that window took through the pipeline.
// Rows sort by weight, heaviest first.
func CriticalPaths(f *File) []CritRow {
	type key struct {
		track string
		win   int32
	}
	weight := map[key]int64{}
	for _, e := range f.Events {
		if e.Track == TrackRun || e.Win < 0 {
			continue
		}
		if e.Kind == KEnd || e.Kind == KLoss || e.Kind == KMark {
			weight[key{e.Track, e.Win}] += e.Value
		}
	}
	best := map[string]key{}
	for k, w := range weight {
		b, ok := best[k.track]
		// Ties break toward the earlier window so the pick is stable.
		if !ok || w > weight[b] || (w == weight[b] && k.win < b.win) {
			best[k.track] = k
		}
	}
	rows := make([]CritRow, 0, len(best))
	for track, k := range best {
		r := CritRow{Track: track, Win: k.win, Samples: weight[k]}
		for _, e := range f.Events {
			if e.Track == track && e.Win == k.win {
				r.Steps = append(r.Steps, e)
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Samples != rows[j].Samples {
			return rows[i].Samples > rows[j].Samples
		}
		return rows[i].Track < rows[j].Track
	})
	return rows
}

// GroupCause is one degraded group's loss attribution.
type GroupCause struct {
	Track    string
	Sender   int64
	Network  int64
	Receiver int64
	// Faults lists the distinct fault classes (KFault/KQuarantine
	// details) seen on the track, sorted.
	Faults []string
}

// Total sums the group's attributed loss.
func (g GroupCause) Total() int64 { return g.Sender + g.Network + g.Receiver }

// CauseCheck is one reconciliation row: trace-summed loss for a cause
// against the Coverage ledger's mark.
type CauseCheck struct {
	Loss   string
	Traced int64
	Ledger int64
}

// OK reports whether the cause reconciles exactly.
func (c CauseCheck) OK() bool { return c.Traced == c.Ledger }

// CauseReport is the Dapper-style degradation attribution for a run.
type CauseReport struct {
	Groups []GroupCause // degraded groups, largest loss first
	// Bucket totals across groups.
	Sender, Network, Receiver int64
	// Checks reconciles each loss cause against the ledger marks; nil
	// when the trace has no coverage marks (untraced or fault-free run).
	Checks []CauseCheck
	// Retries/Recovered echo the ledger's retry economy marks.
	Retries, Recovered int64
	// Dedup echoes the merge tier's idempotently-dropped duplicate
	// shipments (MarkDedup): redundancy absorbed with no loss.
	Dedup int64
}

// Reconciled reports whether every cause check passed (vacuously true
// with no checks).
func (r CauseReport) Reconciled() bool {
	for _, c := range r.Checks {
		if !c.OK() {
			return false
		}
	}
	return true
}

// Causes attributes every degraded group's loss to sender/network/
// receiver buckets and reconciles the totals against the Coverage
// ledger marks embedded in the trace.
func Causes(f *File) CauseReport {
	byTrack := map[string]*GroupCause{}
	var order []string
	faultSeen := map[string]map[string]bool{}
	traced := map[string]int64{}
	ledger := map[string]int64{}
	haveLedger := false
	var rep CauseReport
	for _, e := range f.Events {
		switch e.Kind {
		case KLoss:
			g, ok := byTrack[e.Track]
			if !ok {
				g = &GroupCause{Track: e.Track}
				byTrack[e.Track] = g
				order = append(order, e.Track)
			}
			traced[e.Detail] += e.Value
			switch CauseOf(e.Detail) {
			case CauseSender:
				g.Sender += e.Value
			case CauseReceiver:
				g.Receiver += e.Value
			default:
				g.Network += e.Value
			}
		case KFault, KQuarantine:
			if faultSeen[e.Track] == nil {
				faultSeen[e.Track] = map[string]bool{}
			}
			faultSeen[e.Track][e.Detail] = true
		case KMark:
			if e.Track == TrackRun && e.Stage == CoverageStage {
				haveLedger = true
				switch e.Detail {
				case MarkRetries:
					rep.Retries = e.Value
				case MarkRecovered:
					rep.Recovered = e.Value
				case MarkDedup:
					rep.Dedup = e.Value
				case MarkGroupsDropped, MarkBatchesTrunc:
					// Structural counters; not sample-loss reconciled.
				default:
					if len(e.Detail) > len(MarkLostPrefix) && e.Detail[:len(MarkLostPrefix)] == MarkLostPrefix {
						ledger[e.Detail[len(MarkLostPrefix):]] = e.Value
					}
				}
			}
		}
	}
	for _, t := range order {
		g := byTrack[t]
		for d := range faultSeen[t] {
			g.Faults = append(g.Faults, d)
		}
		sort.Strings(g.Faults)
		rep.Sender += g.Sender
		rep.Network += g.Network
		rep.Receiver += g.Receiver
		rep.Groups = append(rep.Groups, *g)
	}
	sort.Slice(rep.Groups, func(i, j int) bool {
		if ti, tj := rep.Groups[i].Total(), rep.Groups[j].Total(); ti != tj {
			return ti > tj
		}
		return rep.Groups[i].Track < rep.Groups[j].Track
	})
	if haveLedger {
		for _, c := range []string{LossOutage, LossTruncated, LossDropped, LossQuarantined} {
			rep.Checks = append(rep.Checks, CauseCheck{Loss: c, Traced: traced[c], Ledger: ledger[c]})
		}
	}
	return rep
}

// DiffRow compares one stage between two runs.
type DiffRow struct {
	Phase    uint8
	Stage    string
	ASpans   int
	BSpans   int
	ASamples int64
	BSamples int64
}

// Same reports whether the stage matches between runs.
func (d DiffRow) Same() bool { return d.ASpans == d.BSpans && d.ASamples == d.BSamples }

// Diff compares two runs stage by stage: spans completed and logical
// samples processed per stage. Rows cover the union of stages, phase
// order; identical stages are included (callers filter).
func Diff(a, b *File) []DiffRow {
	idx := map[string]*DiffRow{}
	var order []string
	add := func(rows []StageRow, second bool) {
		for _, r := range rows {
			k := fmt.Sprintf("%d/%s", r.Phase, r.Stage)
			d, ok := idx[k]
			if !ok {
				d = &DiffRow{Phase: r.Phase, Stage: r.Stage}
				idx[k] = d
				order = append(order, k)
			}
			if second {
				d.BSpans, d.BSamples = r.Spans, r.Samples
			} else {
				d.ASpans, d.ASamples = r.Spans, r.Samples
			}
		}
	}
	add(Stages(a), false)
	add(Stages(b), true)
	out := make([]DiffRow, 0, len(order))
	for _, k := range order {
		out = append(out, *idx[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// TimedEvent is one physical record from the timing sidecar.
type TimedEvent struct {
	Kind  Kind   `json:"-"`
	Stage string `json:"s"`
	Seq   uint64 `json:"q"`
	Value int64  `json:"v"`
}

// ParseTiming reads a timing sidecar.
func ParseTiming(r io.Reader) ([]TimedEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty timing sidecar")
	}
	var out []TimedEvent
	line := 1
	for sc.Scan() {
		line++
		var raw struct {
			Kind  string `json:"k"`
			Stage string `json:"s"`
			Seq   uint64 `json:"q"`
			Value int64  `json:"v"`
		}
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			return nil, fmt.Errorf("trace: timing line %d: %w", line, err)
		}
		k, ok := kindByName[raw.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: timing line %d: unknown kind %q", line, raw.Kind)
		}
		out = append(out, TimedEvent{Kind: k, Stage: raw.Stage, Seq: raw.Seq, Value: raw.Value})
	}
	return out, sc.Err()
}

// ParseTimingFile reads the timing sidecar at path; a missing file
// yields (nil, nil) — an untraced-timing run, not an error.
func ParseTimingFile(path string) ([]TimedEvent, error) {
	fh, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer fh.Close()
	return ParseTiming(fh)
}

// StallRow summarises one stage's physical behaviour from the sidecar.
type StallRow struct {
	Stage    string
	Stalls   int   // GoBudget deadline expiries
	Depths   int   // queue-depth samples taken
	MaxDepth int64 // deepest observed queue
	TimeNs   int64 // summed stage goroutine wall clock
}

// StallReport folds timing events into per-stage rows, sorted by
// stage name.
func StallReport(ts []TimedEvent) []StallRow {
	idx := map[string]*StallRow{}
	var order []string
	get := func(stage string) *StallRow {
		r, ok := idx[stage]
		if !ok {
			r = &StallRow{Stage: stage}
			idx[stage] = r
			order = append(order, stage)
		}
		return r
	}
	for _, t := range ts {
		r := get(t.Stage)
		switch t.Kind {
		case KStall:
			r.Stalls++
		case KDepth:
			r.Depths++
			if t.Value > r.MaxDepth {
				r.MaxDepth = t.Value
			}
		case KTime:
			r.TimeNs += t.Value
		}
	}
	out := make([]StallRow, 0, len(order))
	for _, k := range order {
		out = append(out, *idx[k])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}
