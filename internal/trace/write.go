package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// Header is the first line of every trace file.
const Header = "edgetrace/v1"

// Events returns every deterministic event collected so far, in
// canonical order. Call only after the emitting goroutines are done.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Event
	for _, b := range r.bufs {
		out = append(out, b.ev...)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// Flush flushes the deterministic trace to w in canonical order:
// one header line carrying the format version, the event-ID base, and
// the overwrite count, then one JSONL record per event sorted by
// (track, phase, seq, ...). Because the sort key is purely logical,
// the bytes written are identical at every worker count (provided no
// ring overflowed — the header's "dropped" field says so).
func (r *Recorder) Flush(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"trace\":%q,\"base\":\"%016x\",\"dropped\":%d}\n", Header, r.Base(), r.Dropped())
	base := r.Base()
	for _, e := range r.Events() {
		writeEvent(bw, e, base)
	}
	return bw.Flush()
}

// writeEvent marshals one event by hand so field order and number
// formatting are fixed (encoding/json map ordering never enters).
func writeEvent(bw *bufio.Writer, e Event, base uint64) {
	bw.WriteString(`{"t":`)
	bw.WriteString(strconv.Quote(e.Track))
	bw.WriteString(`,"p":`)
	bw.WriteString(strconv.Itoa(int(e.Phase)))
	bw.WriteString(`,"w":`)
	bw.WriteString(strconv.Itoa(int(e.Win)))
	bw.WriteString(`,"q":`)
	bw.WriteString(strconv.FormatUint(e.Seq, 10))
	bw.WriteString(`,"k":`)
	bw.WriteString(strconv.Quote(e.Kind.String()))
	bw.WriteString(`,"s":`)
	bw.WriteString(strconv.Quote(e.Stage))
	if e.Value != 0 {
		bw.WriteString(`,"v":`)
		bw.WriteString(strconv.FormatInt(e.Value, 10))
	}
	if e.Detail != "" {
		bw.WriteString(`,"d":`)
		bw.WriteString(strconv.Quote(e.Detail))
	}
	bw.WriteString(`,"id":"`)
	var idb [16]byte
	hex16(idb[:], e.ID(base))
	bw.Write(idb[:])
	bw.WriteString("\"}\n")
}

func hex16(dst []byte, v uint64) {
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		dst[i] = digits[v&0xf]
		v >>= 4
	}
}

// WriteFile flushes the deterministic trace to path and the physical
// timing sidecar (queue-depth samples, stalls) to path+".timing". The
// sidecar is explicitly not deterministic and is only written when it
// has content.
func (r *Recorder) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Flush(f); err != nil {
		_ = f.Close() // the Flush error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	r.mu.Lock()
	timing := append([]timed(nil), r.timing...)
	r.mu.Unlock()
	if len(timing) == 0 {
		return nil
	}
	tf, err := os.Create(path + ".timing")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tf)
	fmt.Fprintf(bw, "{\"trace\":%q,\"sidecar\":\"timing\"}\n", Header)
	for _, t := range timing {
		fmt.Fprintf(bw, "{\"k\":%q,\"s\":%s,\"q\":%d,\"v\":%d}\n",
			t.Kind.String(), strconv.Quote(t.Stage), t.Seq, t.Value)
	}
	if err := bw.Flush(); err != nil {
		_ = tf.Close() // the Flush error is the one worth reporting
		return err
	}
	return tf.Close()
}
