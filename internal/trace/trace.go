// Package trace is the deterministic flight recorder for the edge
// stack: every pipeline stage emits typed events — span begin/end,
// window marks, fault injections, retry attempts, quarantines, losses,
// window seals, segment commits — into per-goroutine bounded ring
// buffers, and the recorder flushes them to an append-only trace file
// written next to the dataset.
//
// The central contract is determinism (the property Dapper-style
// diagnosis rests on when runs must be comparable): event identity and
// ordering derive from the run's rng lineage and the pipeline's own
// logical sequence numbers — group indexes, window indexes, session
// IDs — never from wall clock or scheduling. Events are keyed by a
// logical *track* (a world group, a user-group key, or the run itself)
// plus a phase rank and an in-track sequence number; the flush sorts
// on that key, so the same flags produce a byte-identical trace file
// at any worker count. Physical measurements that cannot be
// deterministic (queue-depth samples, GoBudget stalls) go to a
// separate timing sidecar (<path>.timing) that carries no determinism
// guarantee.
//
// Cost model: a nil *Recorder or *Buf is valid everywhere and makes
// every emission a no-op — tracing disabled costs a nil check and
// zero allocations on the sample hot path. Enabled, Emit is one copy
// into a single-goroutine-owned ring: no locks, no allocations once
// the ring reaches steady state (flight-recorder overwrite).
package trace

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/rng"
)

// Kind enumerates trace event types.
type Kind uint8

// Deterministic event kinds (the trace file proper).
const (
	// KBegin/KEnd bracket one logical span (a group's generation, a
	// batch fold); Value on KEnd is the span's logical size in samples.
	KBegin Kind = iota + 1
	KEnd
	// KMark is a point event: per-window sample counts, run-level
	// milestones, the coverage-ledger summary.
	KMark
	// KFault records one injected fault decision at the surface that
	// honoured it (Detail names the fault class).
	KFault
	// KRetry records one backoff attempt against a transient fault.
	KRetry
	// KQuarantine records a group withdrawn from aggregation.
	KQuarantine
	// KLoss books samples lost to a cause (Detail); cause attribution
	// reconciles the sum of these against the faults Coverage ledger.
	KLoss
	// KSeal records a sealed group series entering the merged store.
	KSeal
	// KCommit records a segment-store chunk committed to the manifest.
	KCommit

	// Physical kinds (timing sidecar only; never in the golden file).

	// KDepth is a queue-depth sample for one pipeline stage.
	KDepth
	// KStall is a GoBudget stage deadline expiry.
	KStall
	// KTime is one stage goroutine's wall-clock duration (ns).
	KTime
)

var kindNames = map[Kind]string{
	KBegin: "begin", KEnd: "end", KMark: "mark", KFault: "fault",
	KRetry: "retry", KQuarantine: "quarantine", KLoss: "loss",
	KSeal: "seal", KCommit: "commit", KDepth: "depth", KStall: "stall",
	KTime: "time",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String names the kind for the trace file.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "kind-" + strconv.Itoa(int(k))
}

// Phase ranks the pipeline stages a track passes through; within a
// track, events sort by (phase, seq), which is exactly the order the
// logical flow visits them (generation happens-before batch fate
// happens-before ingestion happens-before seal).
const (
	PhaseGen    uint8 = 1 // world generation
	PhaseBatch  uint8 = 2 // batch fate (truncate/corrupt/outage accounting)
	PhaseIngest uint8 = 3 // collector sink / shard aggregation
	PhaseSeal   uint8 = 4 // store seal
	PhaseCommit uint8 = 5 // dataset write / segment commit
	PhaseRun    uint8 = 6 // run-level milestones and summaries
)

// phaseNames maps phase ranks to display names.
var phaseNames = [...]string{
	PhaseGen: "gen", PhaseBatch: "batch", PhaseIngest: "ingest",
	PhaseSeal: "seal", PhaseCommit: "commit", PhaseRun: "run",
}

// PhaseName renders a phase rank for display; unknown ranks render as
// their number.
func PhaseName(p uint8) string {
	if int(p) < len(phaseNames) && phaseNames[p] != "" {
		return phaseNames[p]
	}
	return "phase-" + strconv.Itoa(int(p))
}

// TrackRun is the run-level track.
const TrackRun = "run"

// GroupTrack renders a world group index as a track name.
func GroupTrack(group int) string {
	// Fixed-width so lexicographic file order is numeric order.
	s := strconv.Itoa(group)
	for len(s) < 4 {
		s = "0" + s
	}
	return "g/" + s
}

// Event is one trace record. The identity triple (Track, Phase, Seq)
// must be assigned from logical stream positions — window indexes,
// session IDs, batch sequence numbers — so that the same run produces
// the same triples at any worker count.
type Event struct {
	// Track names the logical flow the event belongs to: a world group
	// (GroupTrack), a user-group key (sample.GroupKey.String()), or
	// TrackRun.
	Track string
	// Phase is the PhaseGen..PhaseRun stage rank.
	Phase uint8
	// Win is the 15-minute window index, -1 when not applicable.
	Win int32
	// Seq orders the event within (Track, Phase).
	Seq uint64
	// Kind types the event.
	Kind Kind
	// Stage names the emitting pipeline stage (never empty; edgelint's
	// tracekey check enforces it).
	Stage string
	// Value is the event's logical magnitude (samples, attempts, ...).
	Value int64
	// Detail carries the fault class, cause, or annotation.
	Detail string
}

// FNV-1a constants, inlined rather than imported so ID never heap
// allocates — it runs on the Emit hot path.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnv64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// ID returns the event's deterministic identity under base: an FNV-1a
// fold of the logical coordinates mixed with the run's trace lineage.
// The same event in two runs of the same flags has the same ID, which
// is what lets obs exemplars name the event behind a metric outlier.
func (e Event) ID(base uint64) uint64 {
	h := fnvString(uint64(fnvOffset), e.Track)
	h = (h ^ uint64(e.Phase)) * fnvPrime
	h = (h ^ uint64(e.Kind)) * fnvPrime
	h = fnv64(h, uint64(e.Win))
	h = fnv64(h, e.Seq)
	h = fnvString(h, e.Stage)
	return h ^ base
}

// less orders events canonically: by track, phase, seq, then every
// remaining field so the order is total even for duplicate coordinates.
func less(a, b Event) bool {
	if a.Track != b.Track {
		return a.Track < b.Track
	}
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Win != b.Win {
		return a.Win < b.Win
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	return a.Detail < b.Detail
}

// DefaultBufCap is the per-buffer ring capacity. One buffer belongs to
// one goroutine; a generation worker emits a handful of events per
// group, so the default absorbs tens of thousands of groups before the
// flight recorder starts overwriting.
const DefaultBufCap = 1 << 15

// Recorder owns a run's trace: it hands out single-goroutine ring
// buffers (Buf), collects physical timing events, and flushes
// everything deterministically. A nil *Recorder is valid everywhere
// and records nothing.
type Recorder struct {
	base   uint64
	bufCap int

	mu     sync.Mutex
	bufs   []*Buf
	timing []timed
	probes []probe
	rounds uint64
}

// timed is one physical timing record (sidecar only).
type timed struct {
	Kind  Kind
	Stage string
	Seq   uint64
	Value int64
}

// probe samples one queue's live depth.
type probe struct {
	stage string
	depth func() int
}

// New returns a recorder whose event-identity base derives from the
// run seed through the rng lineage (consuming no draws from any
// generator the simulation uses).
func New(seed uint64) *Recorder {
	return &Recorder{base: rng.ChildAt(seed, "trace", 0).Uint64(), bufCap: DefaultBufCap}
}

// Base returns the event-identity base (0 on a nil recorder).
func (r *Recorder) Base() uint64 {
	if r == nil {
		return 0
	}
	return r.base
}

// SetBufCap overrides the per-buffer ring capacity for buffers handed
// out after the call (tests use tiny rings to exercise overwrite).
func (r *Recorder) SetBufCap(n int) {
	if r == nil || n < 1 {
		return
	}
	r.mu.Lock()
	r.bufCap = n
	r.mu.Unlock()
}

// Buf hands out a new ring buffer owned by exactly one goroutine: the
// caller emits into it without locks, and the recorder collects it at
// flush time (which must happen only after the owning goroutine is
// done). A nil recorder returns a nil (no-op) buffer.
func (r *Recorder) Buf() *Buf {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	// The ring grows lazily (append) up to max: a run with ten buffers
	// and a generous cap must not pay max*sizeof(Event) zeroed bytes per
	// buffer up front — that cost dwarfed the events themselves.
	b := &Buf{rec: r, max: r.bufCap}
	r.bufs = append(r.bufs, b)
	r.mu.Unlock()
	return b
}

// Stall records a GoBudget stage-deadline expiry on the timing
// sidecar. Nil-safe; physical, never part of the deterministic file.
func (r *Recorder) Stall(stage string, budget time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.timing = append(r.timing, timed{Kind: KStall, Stage: stage, Value: int64(budget)})
	r.mu.Unlock()
}

// StageTime records one stage goroutine's wall-clock duration on the
// timing sidecar (once per stage exit — off the hot path). Nil-safe.
func (r *Recorder) StageTime(stage string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.timing = append(r.timing, timed{Kind: KTime, Stage: stage, Value: int64(d)})
	r.mu.Unlock()
}

// Probe registers a queue-depth callback sampled by SampleQueues.
// Nil-safe. The callback must be safe to call concurrently (len(ch)
// on a channel is).
func (r *Recorder) Probe(stage string, depth func() int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.probes = append(r.probes, probe{stage: stage, depth: depth})
	r.mu.Unlock()
}

// SampleQueues takes one depth sample of every registered probe onto
// the timing sidecar. Nil-safe; called opportunistically (the study
// feed stage samples every few batches, and Flush takes a final one).
func (r *Recorder) SampleQueues() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rounds++
	round := r.rounds
	for _, p := range r.probes {
		r.timing = append(r.timing, timed{Kind: KDepth, Stage: p.stage, Seq: round, Value: int64(p.depth())})
	}
	r.mu.Unlock()
}

// Dropped returns the total events overwritten across all rings — the
// flight-recorder loss counter. A non-zero value voids the
// byte-identity guarantee (which buffer overflowed depends on
// scheduling), so the file header records it and edgetrace warns.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, b := range r.bufs {
		n += b.dropped
	}
	return n
}

// Buf is a bounded event ring owned by a single goroutine. Emissions
// are lock-free appends; when the ring is full the oldest event is
// overwritten (flight-recorder semantics) and the drop is counted.
// Methods on a nil *Buf are no-ops, so callers hold pre-resolved
// buffers and pay one nil check when tracing is off.
type Buf struct {
	rec     *Recorder
	ev      []Event
	max     int // ring size ceiling; ev grows lazily toward it
	next    int
	dropped int64
}

// Emit records one event and returns its deterministic ID (0 on a nil
// buffer). Zero allocations once the ring is at capacity.
func (b *Buf) Emit(e Event) uint64 {
	if b == nil {
		return 0
	}
	if len(b.ev) < b.max {
		b.ev = append(b.ev, e)
	} else {
		b.ev[b.next] = e
		b.next++
		if b.next == len(b.ev) {
			b.next = 0
		}
		b.dropped++
	}
	return e.ID(b.rec.base)
}

// Span is one open logical span; End emits the matching KEnd.
type Span struct {
	b     *Buf
	track string
	phase uint8
	win   int32
	seq   uint64
	stage string
}

// Begin emits a KBegin and returns the span whose End closes it. On a
// nil buffer the span is inert.
func (b *Buf) Begin(track string, phase uint8, win int32, seq uint64, stage string) Span {
	if b == nil {
		return Span{}
	}
	b.Emit(Event{Track: track, Phase: phase, Win: win, Seq: seq, Kind: KBegin, Stage: stage})
	return Span{b: b, track: track, phase: phase, win: win, seq: seq, stage: stage}
}

// End emits the span's KEnd with its logical size and returns the end
// event's ID (0 on an inert span). Do not defer End inside a loop —
// the deferred ends pile up to function exit and the spans all close
// late (edgelint's tracekey check flags it).
func (sp Span) End(value int64) uint64 {
	if sp.b == nil {
		return 0
	}
	// End sorts after Begin at the same coordinates because KEnd > KBegin.
	return sp.b.Emit(Event{Track: sp.track, Phase: sp.phase, Win: sp.win, Seq: sp.seq,
		Kind: KEnd, Stage: sp.stage, Value: value})
}

// Loss books n samples lost to cause — the event Causes sums per
// bucket and reconciles against the faults Coverage ledger.
func (b *Buf) Loss(track string, phase uint8, win int32, seq uint64, stage, cause string, n int) {
	if b == nil || n <= 0 {
		return
	}
	b.Emit(Event{Track: track, Phase: phase, Win: win, Seq: seq, Kind: KLoss,
		Stage: stage, Value: int64(n), Detail: cause})
}
