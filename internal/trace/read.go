package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// File is a parsed trace file.
type File struct {
	// Base is the run's event-ID base from the header.
	Base uint64
	// Dropped is the header's ring-overwrite count; non-zero voids the
	// byte-identity guarantee and edgetrace warns.
	Dropped int64
	// Events in file (canonical) order.
	Events []Event
}

// rawEvent mirrors the JSONL record layout.
type rawEvent struct {
	Track  string `json:"t"`
	Phase  uint8  `json:"p"`
	Win    int32  `json:"w"`
	Seq    uint64 `json:"q"`
	Kind   string `json:"k"`
	Stage  string `json:"s"`
	Value  int64  `json:"v"`
	Detail string `json:"d"`
	ID     string `json:"id"`
}

type rawHeader struct {
	Trace   string `json:"trace"`
	Base    string `json:"base"`
	Dropped int64  `json:"dropped"`
}

// Parse reads a trace file from r.
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty file")
	}
	var hdr rawHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if hdr.Trace != Header {
		return nil, fmt.Errorf("trace: not a %s file (header %q)", Header, hdr.Trace)
	}
	f := &File{Dropped: hdr.Dropped}
	if hdr.Base != "" {
		b, err := strconv.ParseUint(hdr.Base, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad base %q: %w", hdr.Base, err)
		}
		f.Base = b
	}
	line := 1
	for sc.Scan() {
		line++
		var re rawEvent
		if err := json.Unmarshal(sc.Bytes(), &re); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		k, ok := kindByName[re.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, re.Kind)
		}
		f.Events = append(f.Events, Event{
			Track: re.Track, Phase: re.Phase, Win: re.Win, Seq: re.Seq,
			Kind: k, Stage: re.Stage, Value: re.Value, Detail: re.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// ParseFile parses the trace file at path.
func ParseFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := Parse(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
