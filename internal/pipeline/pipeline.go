// Package pipeline is the streaming-stage substrate for the repo's
// concurrent sample pipelines. The paper's production system processes
// hundreds of trillions of sessions by streaming samples through
// sharded aggregation with mergeable sketches (§3.3, §3.4.1 footnote
// 11); this package provides the three primitives that let the
// reproduction exploit the same structure without giving up its
// determinism oracle:
//
//   - Group: an error group whose first error cancels the shared
//     context, poisoning every stage — the concurrent generalisation of
//     the collector's sink-error semantics (one failed writer must stop
//     the whole pipeline).
//   - Stream: a bounded channel between stages. Sends block when the
//     consumer lags (backpressure) and abort when the pipeline is
//     poisoned; queue depth is observable on /metrics via
//     pipeline_queue_depth{stage="..."}.
//   - Reorder: a sequence-restoring stage. Workers process items in
//     whatever order the scheduler dictates, Reorder re-emits them in
//     ascending sequence order, so a sharded run's downstream fold sees
//     exactly the order the sequential run would — the property the
//     byte-identical report guarantee rests on.
//
// Stages hold only indices and batch pointers; backpressure bounds the
// number of batches in flight to roughly workers + buffer.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// DefaultWorkers is the worker count used when a caller passes 0:
// GOMAXPROCS, the paper-pipeline analogue of one shard per core.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Group runs a set of pipeline stages that share a context. The first
// stage to return a non-nil error cancels the context (with the error
// as cause), poisoning every other stage; Wait returns that first
// error. The zero value is not usable; call NewGroup.
type Group struct {
	ctx    context.Context
	cancel context.CancelCauseFunc
	wg     sync.WaitGroup
	once   sync.Once
	err    error
	rec    *trace.Recorder
}

// Trace attaches a flight recorder: every GoBudget stage reports its
// wall-clock duration to the timing sidecar, and budget expiries are
// recorded as stall events. Call before launching stages; a nil
// recorder leaves the group untraced.
func (g *Group) Trace(rec *trace.Recorder) { g.rec = rec }

// NewGroup returns a stage group under parent (nil means Background).
func NewGroup(parent context.Context) *Group {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancelCause(parent)
	return &Group{ctx: ctx, cancel: cancel}
}

// Context returns the group's shared context; stages and Streams use it
// so that poisoning reaches every blocking send and receive.
func (g *Group) Context() context.Context { return g.ctx }

// Go launches one stage.
func (g *Group) Go(f func(ctx context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := f(g.ctx); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel(err)
			})
		}
	}()
}

// GoPool launches n copies of worker (a fan-out stage). after, if
// non-nil, runs once every worker has returned — the slot where the
// pool closes its output Stream so downstream ranges terminate.
func (g *Group) GoPool(n int, worker func(ctx context.Context, i int) error, after func()) {
	var pool sync.WaitGroup
	pool.Add(n)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func(ctx context.Context) error {
			defer pool.Done()
			return worker(ctx, i)
		})
	}
	if after != nil {
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			pool.Wait()
			after()
		}()
	}
}

// GoBudget launches one stage under a wall-time budget: the stage's
// context is cancelled budget after launch with a *StageTimeoutError
// as the cause, so a stalled stage fails loudly instead of hanging the
// pipeline. The stage observes the deadline the same way it observes
// poisoning — through blocked Sends/Ranges returning the cause. A
// non-positive budget degrades to plain Go. Budgets are for bounded
// chaos/recovery runs; long-lived streaming stages should stay
// unbudgeted.
func (g *Group) GoBudget(stage string, budget time.Duration, f func(ctx context.Context) error) {
	run := f
	if budget > 0 {
		run = func(ctx context.Context) error {
			sctx, cancel := context.WithTimeoutCause(ctx, budget, &StageTimeoutError{Stage: stage, Budget: budget})
			defer cancel()
			err := f(sctx)
			if errors.Is(err, context.DeadlineExceeded) {
				// The stage surfaced the raw deadline instead of the cause
				// (e.g. a third-party call); restore attribution.
				err = &StageTimeoutError{Stage: stage, Budget: budget}
			}
			return err
		}
	}
	if rec := g.rec; rec != nil {
		inner := run
		run = func(ctx context.Context) error {
			start := time.Now()
			err := inner(ctx)
			rec.StageTime(stage, time.Since(start))
			var ste *StageTimeoutError
			if errors.As(err, &ste) {
				rec.Stall(ste.Stage, ste.Budget)
			}
			return err
		}
	}
	g.Go(run)
}

// StageTimeoutError reports a stage that exhausted its GoBudget
// deadline.
type StageTimeoutError struct {
	Stage  string
	Budget time.Duration
}

// Error renders the timeout.
func (e *StageTimeoutError) Error() string {
	return fmt.Sprintf("pipeline stage %q exceeded its %v deadline budget", e.Stage, e.Budget)
}

// Cancel poisons the group from outside its stages — the hook for
// callers that must abandon a pipeline (operator interrupt, fail-fast
// fault handling) without waiting for a stage to fail. A nil err
// records context.Canceled. Idempotent: the first poisoning (Cancel or
// stage error) wins; later calls are no-ops.
func (g *Group) Cancel(err error) {
	if err == nil {
		err = context.Canceled
	}
	g.once.Do(func() {
		g.err = err
		g.cancel(err)
	})
}

// Wait blocks until every stage has returned and reports the first
// error (nil on a clean run). The group's context is cancelled either
// way, releasing any resources. Safe to call more than once.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel(nil)
	return g.err
}

// cause unwraps a context's cancellation cause, falling back to the
// plain context error.
func cause(ctx context.Context) error {
	if err := context.Cause(ctx); err != nil {
		return err
	}
	return ctx.Err()
}

// Stream is a bounded channel between two pipeline stages. Sends block
// while the buffer is full (backpressure) and fail once the pipeline's
// context is poisoned.
type Stream[T any] struct {
	ch        chan T
	closeOnce sync.Once
}

// NewStream returns a stream buffering up to buf items (minimum 1).
func NewStream[T any](buf int) *Stream[T] {
	if buf < 1 {
		buf = 1
	}
	return &Stream[T]{ch: make(chan T, buf)}
}

// Instrument registers the stream's live queue depth and capacity on
// reg as pipeline_queue_depth{stage="name"} — sampled at exposition
// time, so the stream pays nothing per item. Nil-registry safe.
func (s *Stream[T]) Instrument(reg *obs.Registry, stage string) {
	ch := s.ch
	reg.GaugeFunc(obs.L("pipeline_queue_depth", "stage", stage), func() float64 {
		return float64(len(ch))
	})
	reg.GaugeFunc(obs.L("pipeline_queue_capacity", "stage", stage), func() float64 {
		return float64(cap(ch))
	})
}

// Observe registers the stream's live queue depth as a timing-sidecar
// probe on rec (sampled by Recorder.SampleQueues) — the physical
// counterpart of Instrument's exposition-time gauges. Nil-safe.
func (s *Stream[T]) Observe(rec *trace.Recorder, stage string) {
	ch := s.ch
	rec.Probe(stage, func() int { return len(ch) })
}

// Send delivers v, blocking under backpressure; it returns the
// poisoning error if the pipeline is cancelled first.
func (s *Stream[T]) Send(ctx context.Context, v T) error {
	select {
	case s.ch <- v:
		return nil
	case <-ctx.Done():
		return cause(ctx)
	}
}

// Close marks the producer side done; Range on the consumer side then
// drains and returns. Only the producing stage may call Close (for
// pools, via GoPool's after hook). Idempotent: error-path teardown may
// Close a stream its happy path already closed without panicking.
func (s *Stream[T]) Close() {
	s.closeOnce.Do(func() { close(s.ch) })
}

// Drain consumes every remaining item until the stream is closed,
// passing each to f — error-path disposal for items that carry
// resources. Unlike Range it ignores context poisoning: it is called
// exactly when the pipeline is already poisoned and the goal is to
// account for stragglers the producers had already sent.
func (s *Stream[T]) Drain(f func(T)) {
	for v := range s.ch {
		f(v)
	}
}

// Range consumes items until the stream is closed (returning nil) or
// the pipeline is poisoned (returning the cause). f's error stops
// consumption immediately.
func (s *Stream[T]) Range(ctx context.Context, f func(T) error) error {
	for {
		select {
		case v, ok := <-s.ch:
			if !ok {
				return nil
			}
			if err := f(v); err != nil {
				return err
			}
		case <-ctx.Done():
			return cause(ctx)
		}
	}
}

// Reorder consumes items from in and re-emits them in ascending
// sequence order starting at next: items may arrive in any order (a
// worker pool finishes shards as it pleases), but emit sees exactly the
// sequential order. seq must be a bijection onto next, next+1, ...;
// missing sequence numbers before a cancellation simply truncate the
// emitted prefix, which is what lets an interrupted pipeline flush a
// valid, ordered prefix of its output.
//
// The pending buffer is bounded by the producer pool's in-flight window
// (workers + stream buffer), because a worker cannot complete a far-
// ahead sequence number until Send unblocks.
func Reorder[T any](ctx context.Context, in *Stream[T], seq func(T) int, next int, emit func(T) error) error {
	return ReorderDrain(ctx, in, seq, next, emit, nil)
}

// ReorderDrain is Reorder with a disposal hook for items that were
// received but never successfully emitted: when the pipeline is
// poisoned (emit error or cancellation), drop is called for every
// pending buffered item and for everything still arriving on the
// stream until it closes. Stages whose items carry resources — pooled
// column batches, file handles — use this so an error path releases
// exactly what a success path would have. drop must not block; a nil
// drop is Reorder.
func ReorderDrain[T any](ctx context.Context, in *Stream[T], seq func(T) int, next int, emit func(T) error, drop func(T)) error {
	pending := make(map[int]T)
	err := in.Range(ctx, func(v T) error {
		pending[seq(v)] = v
		for {
			w, ok := pending[next]
			if !ok {
				return nil
			}
			delete(pending, next)
			if err := emit(w); err != nil {
				return err
			}
			next++
		}
	})
	if err != nil && drop != nil {
		for _, v := range pending {
			drop(v)
		}
		// Items already buffered in the channel (or mid-Send) would
		// otherwise be stranded: drain until the producer side closes.
		// This cannot block forever — every producer's Send observes the
		// same poisoned context, fails, and the stage's after-hook
		// closes the stream.
		in.Drain(drop)
	}
	return err
}
