package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// A worker-pool fan-out through a Stream and a Reorder stage must
// deliver every item in sequence order regardless of scheduling.
func TestReorderRestoresSequence(t *testing.T) {
	const n = 500
	g := NewGroup(context.Background())
	out := NewStream[int](4)

	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)

	g.GoPool(8, func(ctx context.Context, _ int) error {
		for i := range idx {
			if i%7 == 0 {
				time.Sleep(time.Microsecond) // jitter the completion order
			}
			if err := out.Send(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}, out.Close)

	var got []int
	g.Go(func(ctx context.Context) error {
		return Reorder(ctx, out, func(v int) int { return v }, 0, func(v int) error {
			got = append(got, v)
			return nil
		})
	})
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(got) != n {
		t.Fatalf("emitted %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

// The first stage error must poison the whole group: blocked senders
// unblock with the cause, and Wait reports the original error.
func TestGroupPoisoning(t *testing.T) {
	boom := errors.New("sink failed")
	g := NewGroup(context.Background())
	s := NewStream[int](1)

	sendErr := make(chan error, 1)
	g.Go(func(ctx context.Context) error {
		for i := 0; ; i++ {
			if err := s.Send(ctx, i); err != nil {
				sendErr <- err
				return err
			}
		}
	})
	g.Go(func(ctx context.Context) error {
		return boom // consumer dies immediately; producer is blocked
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	select {
	case err := <-sendErr:
		if !errors.Is(err, boom) {
			t.Fatalf("Send unblocked with %v, want the poisoning cause %v", err, boom)
		}
	default:
		t.Fatal("producer never unblocked")
	}
}

// Cancelling the parent context must stop a Range consumer and surface
// context.Canceled from Wait.
func TestGroupParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx)
	s := NewStream[int](1)
	started := make(chan struct{})
	g.Go(func(ctx context.Context) error {
		close(started)
		return s.Range(ctx, func(int) error { return nil })
	})
	<-started
	cancel()
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}

// Reorder must emit only the contiguous prefix when the stream closes
// with holes (an interrupted producer pool).
func TestReorderTruncatesAtHole(t *testing.T) {
	g := NewGroup(context.Background())
	s := NewStream[int](8)
	for _, v := range []int{1, 0, 2, 4, 5} { // 3 is missing
		if err := s.Send(context.Background(), v); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	var got []int
	g.Go(func(ctx context.Context) error {
		return Reorder(ctx, s, func(v int) int { return v }, 0, func(v int) error {
			got = append(got, v)
			return nil
		})
	})
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v, want the contiguous prefix [0 1 2]", got)
	}
}

// Backpressure: with a buffer of 1 and no consumer, the second Send
// must block until the pipeline is poisoned.
func TestStreamBackpressure(t *testing.T) {
	g := NewGroup(context.Background())
	s := NewStream[int](1)
	var sent atomic.Int64
	g.Go(func(ctx context.Context) error {
		for i := 0; i < 10; i++ {
			if err := s.Send(ctx, i); err != nil {
				return nil // poisoned as expected
			}
			sent.Add(1)
		}
		return errors.New("all sends completed without a consumer")
	})
	time.Sleep(10 * time.Millisecond)
	if n := sent.Load(); n != 1 {
		t.Fatalf("%d sends completed with a full buffer, want 1", n)
	}
	g.Go(func(ctx context.Context) error { return errors.New("stop") })
	if err := g.Wait(); err == nil || err.Error() != "stop" {
		t.Fatalf("Wait = %v, want the injected stop error", err)
	}
}

func TestStreamInstrumentQueueDepth(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStream[int](4)
	s.Instrument(reg, "test")
	for i := 0; i < 3; i++ {
		if err := s.Send(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	txt := b.String()
	if !strings.Contains(txt, `pipeline_queue_depth{stage="test"} 3`) {
		t.Fatalf("queue depth gauge missing or wrong:\n%s", txt)
	}
	if !strings.Contains(txt, `pipeline_queue_capacity{stage="test"} 4`) {
		t.Fatalf("queue capacity gauge missing or wrong:\n%s", txt)
	}
}

// Close must be idempotent: error-path teardown often closes a stream
// its happy path already closed, and that must not panic.
func TestStreamCloseIdempotent(t *testing.T) {
	s := NewStream[int](1)
	s.Close()
	s.Close() // second close: regression for double-close panic
	if err := s.Range(context.Background(), func(int) error {
		return errors.New("closed stream delivered an item")
	}); err != nil {
		t.Fatalf("Range after double Close: %v", err)
	}
}

// Cancel must poison the group from outside, be idempotent, and lose
// to a stage error that landed first.
func TestGroupCancel(t *testing.T) {
	t.Run("poisons blocked stages", func(t *testing.T) {
		g := NewGroup(context.Background())
		s := NewStream[int](1)
		g.Go(func(ctx context.Context) error {
			return s.Range(ctx, func(int) error { return nil })
		})
		boom := errors.New("operator abort")
		g.Cancel(boom)
		g.Cancel(errors.New("second cancel must be a no-op"))
		if err := g.Wait(); !errors.Is(err, boom) {
			t.Fatalf("Wait = %v, want %v", err, boom)
		}
	})
	t.Run("nil means context.Canceled", func(t *testing.T) {
		g := NewGroup(context.Background())
		g.Cancel(nil)
		if err := g.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	})
	t.Run("safe after a stage error", func(t *testing.T) {
		g := NewGroup(context.Background())
		boom := errors.New("stage failed first")
		g.Go(func(ctx context.Context) error { return boom })
		if err := g.Wait(); !errors.Is(err, boom) {
			t.Fatalf("Wait = %v, want %v", err, boom)
		}
		g.Cancel(errors.New("late cancel"))
		if err := g.Wait(); !errors.Is(err, boom) {
			t.Fatalf("Wait after late Cancel = %v, want the original %v", err, boom)
		}
	})
}

// GoBudget must fail a stalled stage with a StageTimeoutError carrying
// the stage name, and leave fast stages untouched.
func TestGoBudget(t *testing.T) {
	t.Run("stall trips the budget", func(t *testing.T) {
		g := NewGroup(context.Background())
		s := NewStream[int](1)
		g.GoBudget("stalled-shard", 5*time.Millisecond, func(ctx context.Context) error {
			return s.Range(ctx, func(int) error { return nil }) // never fed, never closed
		})
		err := g.Wait()
		var te *StageTimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("Wait = %v, want a *StageTimeoutError", err)
		}
		if te.Stage != "stalled-shard" || te.Budget != 5*time.Millisecond {
			t.Fatalf("timeout attribution = %+v", te)
		}
	})
	t.Run("fast stage passes", func(t *testing.T) {
		g := NewGroup(context.Background())
		g.GoBudget("quick", time.Second, func(ctx context.Context) error { return nil })
		if err := g.Wait(); err != nil {
			t.Fatalf("Wait = %v, want nil", err)
		}
	})
	t.Run("zero budget means unbudgeted", func(t *testing.T) {
		g := NewGroup(context.Background())
		g.GoBudget("unbounded", 0, func(ctx context.Context) error {
			if _, ok := ctx.Deadline(); ok {
				return errors.New("zero budget installed a deadline")
			}
			return nil
		})
		if err := g.Wait(); err != nil {
			t.Fatalf("Wait = %v, want nil", err)
		}
	})
}
