package agg

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/sample"
)

func mkSample(prefix string, win int, alt int, rtt time.Duration, hdT, hdA int, bytes int64) sample.Sample {
	return sample.Sample{
		PoP: "ams", Prefix: prefix, Country: "DE", Continent: geo.Europe,
		AltIndex: alt, Start: time.Duration(win)*WindowDuration + time.Minute,
		MinRTT: rtt, HDTested: hdT, HDAchieved: hdA, Bytes: bytes,
		RouteID: fmt.Sprintf("r%d", alt), RouteRel: bgp.PrivatePeer,
	}
}

func TestWindowOf(t *testing.T) {
	tests := []struct {
		at   time.Duration
		want int
	}{
		{0, 0},
		{14 * time.Minute, 0},
		{15 * time.Minute, 1},
		{24 * time.Hour, 96},
	}
	for _, tt := range tests {
		if got := WindowOf(tt.at); got != tt.want {
			t.Errorf("WindowOf(%v) = %d, want %d", tt.at, got, tt.want)
		}
	}
}

func TestStoreGroupsByKeyWindowRoute(t *testing.T) {
	st := NewStore()
	st.Add(mkSample("10.0.0.0/24", 0, 0, 20*time.Millisecond, 1, 1, 100))
	st.Add(mkSample("10.0.0.0/24", 0, 1, 30*time.Millisecond, 1, 0, 200))
	st.Add(mkSample("10.0.0.0/24", 1, 0, 25*time.Millisecond, 0, 0, 300))
	st.Add(mkSample("10.0.1.0/24", 0, 0, 50*time.Millisecond, 2, 1, 400))

	if st.Len() != 2 {
		t.Fatalf("groups = %d, want 2", st.Len())
	}
	if st.TotalWindows != 2 {
		t.Errorf("TotalWindows = %d, want 2", st.TotalWindows)
	}
	if st.TotalSamples != 4 {
		t.Errorf("TotalSamples = %d", st.TotalSamples)
	}

	g := st.Group(sample.GroupKey{PoP: "ams", Prefix: "10.0.0.0/24", Country: "DE"})
	if g == nil {
		t.Fatal("group missing")
	}
	if len(g.Windows) != 2 {
		t.Errorf("windows = %d, want 2", len(g.Windows))
	}
	if g.Windows[0].Route(0).Sessions != 1 || g.Windows[0].Route(1).Sessions != 1 {
		t.Error("route split wrong")
	}
	if g.Windows[0].Route(2) != nil {
		t.Error("phantom route")
	}
	// Preferred bytes: 100 (win0) + 300 (win1), not the alternate's 200.
	if g.PreferredBytes != 400 {
		t.Errorf("PreferredBytes = %d, want 400", g.PreferredBytes)
	}
}

func TestAggregationMedians(t *testing.T) {
	st := NewStore()
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		rtt := time.Duration(r.LogNormalMedian(40, 0.3)) * time.Millisecond
		hdT, hdA := 2, 0
		if i%2 == 0 {
			hdA = 2 // half the sessions fully achieve
		}
		st.Add(mkSample("10.0.0.0/24", 0, 0, rtt, hdT, hdA, 1000))
	}
	a := st.Groups()[0].Windows[0].Route(0)
	if med := a.MinRTTP50(); med < 35 || med > 45 {
		t.Errorf("MinRTTP50 = %v, want ~40", med)
	}
	if hd := a.HDratioP50(); hd < 0 || hd > 1 {
		t.Errorf("HDratioP50 = %v out of range", hd)
	}
	if !a.HasMinSamples() {
		t.Error("500 sessions should meet the sample floor")
	}
}

func TestHDratioExcludesUntestedSessions(t *testing.T) {
	st := NewStore()
	// 50 untested sessions and 10 tested-and-failed.
	for i := 0; i < 50; i++ {
		st.Add(mkSample("10.0.0.0/24", 0, 0, 20*time.Millisecond, 0, 0, 100))
	}
	for i := 0; i < 10; i++ {
		st.Add(mkSample("10.0.0.0/24", 0, 0, 20*time.Millisecond, 1, 0, 100))
	}
	a := st.Groups()[0].Windows[0].Route(0)
	if got := a.HD.Count(); got != 10 {
		t.Errorf("HD digest count = %v, want 10 (untested excluded)", got)
	}
	if hd := a.HDratioP50(); hd != 0 {
		t.Errorf("HDratioP50 = %v, want 0", hd)
	}
	// MinRTT still counts everyone.
	if got := a.MinRTT.Count(); got != 60 {
		t.Errorf("MinRTT count = %v, want 60", got)
	}
}

func TestRouteMetaCaptured(t *testing.T) {
	st := NewStore()
	s := mkSample("10.0.0.0/24", 0, 1, 20*time.Millisecond, 0, 0, 1)
	s.RouteRel = bgp.Transit
	s.ASPathLen = 3
	s.Prepended = true
	st.Add(s)
	g := st.Groups()[0]
	meta := g.RouteMeta[1]
	if meta.Rel != bgp.Transit || meta.ASPathLen != 3 || !meta.Prepended {
		t.Errorf("RouteMeta = %+v", meta)
	}
}

func TestGroupsSortedDeterministically(t *testing.T) {
	st := NewStore()
	st.Add(mkSample("10.0.2.0/24", 0, 0, time.Millisecond, 0, 0, 1))
	st.Add(mkSample("10.0.1.0/24", 0, 0, time.Millisecond, 0, 0, 1))
	st.Add(mkSample("10.0.3.0/24", 0, 0, time.Millisecond, 0, 0, 1))
	gs := st.Groups()
	for i := 1; i < len(gs); i++ {
		if gs[i-1].Key.String() >= gs[i].Key.String() {
			t.Fatal("groups not sorted")
		}
	}
}

func TestCoverageFraction(t *testing.T) {
	st := NewStore()
	for win := 0; win < 6; win++ {
		st.Add(mkSample("10.0.0.0/24", win, 0, time.Millisecond, 0, 0, 1))
	}
	st.Add(mkSample("10.0.1.0/24", 9, 0, time.Millisecond, 0, 0, 1)) // sets TotalWindows=10
	g := st.Group(sample.GroupKey{PoP: "ams", Prefix: "10.0.0.0/24", Country: "DE"})
	if cf := g.CoverageFraction(st.TotalWindows); math.Abs(cf-0.6) > 1e-9 {
		t.Errorf("coverage = %v, want 0.6", cf)
	}
	if cf := g.CoverageFraction(0); cf != 0 {
		t.Errorf("coverage with zero windows = %v", cf)
	}
}

func TestWindowIndexesSorted(t *testing.T) {
	st := NewStore()
	for _, win := range []int{5, 1, 3} {
		st.Add(mkSample("10.0.0.0/24", win, 0, time.Millisecond, 0, 0, 1))
	}
	g := st.Groups()[0]
	idx := g.WindowIndexes()
	want := []int{1, 3, 5}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("WindowIndexes = %v", idx)
		}
	}
}

func TestTotalPreferredBytes(t *testing.T) {
	st := NewStore()
	st.Add(mkSample("10.0.0.0/24", 0, 0, time.Millisecond, 0, 0, 100))
	st.Add(mkSample("10.0.1.0/24", 0, 0, time.Millisecond, 0, 0, 250))
	st.Add(mkSample("10.0.1.0/24", 0, 2, time.Millisecond, 0, 0, 999)) // alternate: excluded
	if got := st.TotalPreferredBytes(); got != 350 {
		t.Errorf("TotalPreferredBytes = %d, want 350", got)
	}
}
