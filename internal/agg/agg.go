// Package agg implements the paper's aggregation scheme (§3.3): samples
// are grouped into user groups (PoP × BGP prefix × client country) and
// 15-minute time windows, separately per egress route, and summarised
// with streaming t-digests so that medians (MinRTTP50, HDratioP50) and
// distribution-free confidence intervals can be computed without
// retaining raw samples — the same property the paper highlights for
// production traffic-engineering pipelines (§3.4.1, footnote 11).
//
// Aggregations are weighted by traffic volume when reported (§3.3):
// prefixes are arbitrary units of address space, so results are stated
// as fractions of bytes delivered, not fractions of prefixes.
package agg

import (
	"sort"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/tdigest"
)

// WindowDuration is the aggregation window length (§3.3).
const WindowDuration = 15 * time.Minute

// Compression is the t-digest compression used per aggregation.
const Compression = 100

// Tightness thresholds for valid comparisons (§3.4.1): confidence
// intervals wider than these invalidate the window.
const (
	MaxCIWidthMinRTTMs = 10.0
	MaxCIWidthHDratio  = 0.1
)

// Aggregation summarises one (group, window, route) cell.
type Aggregation struct {
	// MinRTT holds per-session MinRTT in milliseconds.
	MinRTT *tdigest.TDigest
	// HD holds per-session HDratio for sessions that tested (§3.2.4).
	HD *tdigest.TDigest
	// SimpleHD holds the §4 ablation baseline's HDratio.
	SimpleHD *tdigest.TDigest
	// Sessions counts sessions aggregated.
	Sessions int
	// Bytes is the traffic volume carried by those sessions.
	Bytes int64
}

func newAggregation() *Aggregation {
	return &Aggregation{
		MinRTT:   tdigest.New(Compression),
		HD:       tdigest.New(Compression),
		SimpleHD: tdigest.New(Compression),
	}
}

// Add folds one sample in and returns how many digest observations it
// produced (MinRTT always; HD/SimpleHD only for tested sessions).
func (a *Aggregation) Add(s sample.Sample) int {
	a.Sessions++
	a.Bytes += s.Bytes
	a.MinRTT.Add(float64(s.MinRTT) / float64(time.Millisecond))
	adds := 1
	if hd, ok := s.HDratio(); ok {
		a.HD.Add(hd)
		adds++
	}
	if shd, ok := s.SimpleHDratio(); ok {
		a.SimpleHD.Add(shd)
		adds++
	}
	return adds
}

// MinRTTP50 returns the median MinRTT in milliseconds.
func (a *Aggregation) MinRTTP50() float64 { return a.MinRTT.Quantile(0.5) }

// HDratioP50 returns the median HDratio across tested sessions.
func (a *Aggregation) HDratioP50() float64 { return a.HD.Quantile(0.5) }

// HasMinSamples reports whether the aggregation meets the §3.4.1 floor.
func (a *Aggregation) HasMinSamples() bool { return a.Sessions >= stats.MinSamples }

// RouteMeta describes a route as seen on samples, for the relationship
// analyses (§6.3, Table 2).
type RouteMeta struct {
	ID        string
	Rel       bgp.RelType
	ASPathLen int
	Prepended bool
}

// WindowAgg holds one group's aggregations for a window, per route
// (index 0 = preferred, 1+ = alternates).
type WindowAgg struct {
	Routes map[int]*Aggregation
}

// Route returns the aggregation for a route index, or nil.
func (w *WindowAgg) Route(alt int) *Aggregation {
	if w == nil {
		return nil
	}
	return w.Routes[alt]
}

// GroupSeries is a user group's full time series.
type GroupSeries struct {
	Key       sample.GroupKey
	Continent geo.Continent
	ClientAS  int

	// Windows maps window index → aggregations.
	Windows map[int]*WindowAgg
	// RouteMeta maps route index → route description.
	RouteMeta map[int]RouteMeta
	// PreferredBytes is total traffic on the preferred route, the
	// group's weight in traffic-share reports.
	PreferredBytes int64
}

// TotalSessions counts the sessions aggregated across every window and
// route of the series — the store's sample count attributable to this
// group (integer sums over map ranges are order-independent).
func (g *GroupSeries) TotalSessions() int {
	n := 0
	for _, wa := range g.Windows {
		for _, a := range wa.Routes {
			n += a.Sessions
		}
	}
	return n
}

// WindowIndexes returns the group's populated windows, ascending.
func (g *GroupSeries) WindowIndexes() []int {
	out := make([]int, 0, len(g.Windows))
	for w := range g.Windows {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// Store aggregates a sample stream.
type Store struct {
	groups map[sample.GroupKey]*GroupSeries
	// TotalWindows is the highest window index seen + 1.
	TotalWindows int
	// TotalSamples counts samples aggregated.
	TotalSamples int
	// firstWindow is the lowest window index seen, -1 while empty. Like
	// TotalWindows it describes the observation period, so Remove leaves
	// it untouched.
	firstWindow int

	// bs is the AddBatch gather scratch (see columns.go) — reused across
	// batches; a store is single-goroutine during ingest.
	bs batchScratch

	// Pre-resolved obs handles; nil (no-op) until Instrument is called.
	cWindows    *obs.Counter
	cDigestAdds *obs.Counter
	gGroups     *obs.Gauge
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{groups: make(map[sample.GroupKey]*GroupSeries), firstWindow: -1}
}

// FirstWindow returns the lowest window index seen, 0 when empty. With
// TotalWindows it bounds the actually-covered window range — the
// difference is what a time-filtered run's day count must be inferred
// from, since a -from filter prunes the leading windows and rounding
// TotalWindows alone would overcount days.
func (st *Store) FirstWindow() int {
	if st.firstWindow < 0 {
		return 0
	}
	return st.firstWindow
}

// Instrument registers aggregation metrics on reg: (group, window)
// cells opened, t-digest observations merged, and the number of user
// groups tracked. The per-sample cost is a single atomic add. A nil
// registry leaves the store uninstrumented.
func (st *Store) Instrument(reg *obs.Registry) {
	st.cWindows = reg.Counter("agg_window_cells_total")
	st.cDigestAdds = reg.Counter("agg_digest_adds_total")
	st.gGroups = reg.Gauge("agg_groups")
}

// WindowOf returns the window index for a sample start time.
func WindowOf(start time.Duration) int { return int(start / WindowDuration) }

// Add folds one sample into the store.
func (st *Store) Add(s sample.Sample) {
	key := s.Key()
	g, ok := st.groups[key]
	if !ok {
		g = &GroupSeries{
			Key:       key,
			Continent: s.Continent,
			ClientAS:  s.ClientAS,
			Windows:   make(map[int]*WindowAgg),
			RouteMeta: make(map[int]RouteMeta),
		}
		st.groups[key] = g
		st.gGroups.Set(float64(len(st.groups)))
	}
	if _, ok := g.RouteMeta[s.AltIndex]; !ok {
		g.RouteMeta[s.AltIndex] = RouteMeta{
			ID: s.RouteID, Rel: s.RouteRel, ASPathLen: s.ASPathLen, Prepended: s.Prepended,
		}
	}
	win := WindowOf(s.Start)
	wa, ok := g.Windows[win]
	if !ok {
		wa = &WindowAgg{Routes: make(map[int]*Aggregation)}
		g.Windows[win] = wa
		st.cWindows.Inc()
	}
	a, ok := wa.Routes[s.AltIndex]
	if !ok {
		a = newAggregation()
		wa.Routes[s.AltIndex] = a
	}
	st.cDigestAdds.Add(int64(a.Add(s)))
	if s.AltIndex == 0 {
		g.PreferredBytes += s.Bytes
	}
	if win+1 > st.TotalWindows {
		st.TotalWindows = win + 1
	}
	if st.firstWindow < 0 || win < st.firstWindow {
		st.firstWindow = win
	}
	st.TotalSamples++
}

// Remove withdraws one group series from the store and returns it (nil
// if absent) — the quarantine primitive: a poisoned group is isolated
// from aggregation instead of failing the run, and the returned series
// lets the caller account for every sample withdrawn. TotalWindows is
// deliberately left untouched: the run's window axis is a property of
// the observation period, not of which groups survived it.
func (st *Store) Remove(key sample.GroupKey) *GroupSeries {
	g, ok := st.groups[key]
	if !ok {
		return nil
	}
	delete(st.groups, key)
	st.TotalSamples -= g.TotalSessions()
	st.gGroups.Set(float64(len(st.groups)))
	return g
}

// Merge folds other into st — the §3.4.1 mergeable-aggregation
// property: shard-local stores built from a partitioned sample stream
// combine into the global store. Group series present in only one
// store are adopted wholesale (the common case when the stream was
// sharded by user group, where the merge is exact and byte-identical
// to sequential ingestion); series present in both are folded cell by
// cell through the t-digest merge path, which preserves counts and
// bytes exactly and quantiles within compression tolerance.
//
// other must not be used afterwards: its group series are owned by st.
func (st *Store) Merge(other *Store) {
	if other == nil {
		return
	}
	for key, og := range other.groups {
		g, ok := st.groups[key]
		if !ok {
			st.groups[key] = og
			continue
		}
		g.merge(og)
	}
	if other.TotalWindows > st.TotalWindows {
		st.TotalWindows = other.TotalWindows
	}
	if other.firstWindow >= 0 && (st.firstWindow < 0 || other.firstWindow < st.firstWindow) {
		st.firstWindow = other.firstWindow
	}
	st.TotalSamples += other.TotalSamples
	st.gGroups.Set(float64(len(st.groups)))
}

// merge folds another series for the same group key into g.
func (g *GroupSeries) merge(o *GroupSeries) {
	for win, owa := range o.Windows {
		wa, ok := g.Windows[win]
		if !ok {
			g.Windows[win] = owa
			continue
		}
		for alt, oa := range owa.Routes {
			a, ok := wa.Routes[alt]
			if !ok {
				wa.Routes[alt] = oa
				continue
			}
			a.Merge(oa)
		}
	}
	for alt, meta := range o.RouteMeta {
		if _, ok := g.RouteMeta[alt]; !ok {
			g.RouteMeta[alt] = meta
		}
	}
	g.PreferredBytes += o.PreferredBytes
}

// Merge folds another aggregation of the same (group, window, route)
// cell into a. Sessions and Bytes are exact; digests merge within
// compression tolerance.
func (a *Aggregation) Merge(o *Aggregation) {
	if o == nil {
		return
	}
	a.Sessions += o.Sessions
	a.Bytes += o.Bytes
	a.MinRTT.Merge(o.MinRTT)
	a.HD.Merge(o.HD)
	a.SimpleHD.Merge(o.SimpleHD)
}

// Seal compacts every digest in the store (with up to workers
// goroutines, clamped to the group count) so that subsequent reads —
// Quantile, CDF, the §5/§6 analyses — are pure and safe to run
// concurrently over a shared store. Digest reads fold buffered points
// lazily, so an unsealed store must not be shared across goroutines.
func (st *Store) Seal(workers int) {
	groups := make([]*GroupSeries, 0, len(st.groups))
	for _, g := range st.groups {
		groups = append(groups, g)
	}
	// Seal work order is observable through per-digest compaction
	// metrics; sort so it does not depend on map iteration order.
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key.String() < groups[j].Key.String() })
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for _, g := range groups {
			g.seal()
		}
		return
	}
	idx := make(chan *GroupSeries, len(groups))
	for _, g := range groups {
		idx <- g
	}
	close(idx)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range idx {
				g.seal()
			}
		}()
	}
	wg.Wait()
}

// seal compacts every digest of one group series.
func (g *GroupSeries) seal() {
	for _, wa := range g.Windows {
		for _, a := range wa.Routes {
			a.MinRTT.Compact()
			a.HD.Compact()
			a.SimpleHD.Compact()
		}
	}
}

// Groups returns the group series, sorted by key for determinism.
func (st *Store) Groups() []*GroupSeries {
	out := make([]*GroupSeries, 0, len(st.groups))
	for _, g := range st.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Group looks up one series.
func (st *Store) Group(key sample.GroupKey) *GroupSeries { return st.groups[key] }

// Len returns the number of groups.
func (st *Store) Len() int { return len(st.groups) }

// TotalPreferredBytes sums preferred-route traffic across groups — the
// denominator for traffic-share reports.
func (st *Store) TotalPreferredBytes() int64 {
	var t int64
	for _, g := range st.groups {
		t += g.PreferredBytes
	}
	return t
}

// CoverageFraction returns the share of windows with traffic for a
// group; groups below the §3.4.2 coverage floor (60%) are not
// classified.
func (g *GroupSeries) CoverageFraction(totalWindows int) float64 {
	if totalWindows == 0 {
		return 0
	}
	return float64(len(g.Windows)) / float64(totalWindows)
}
