package agg

import (
	"time"

	"repro/internal/bgp"
	"repro/internal/geo"
	"repro/internal/hdratio"
	"repro/internal/sample"
	"repro/internal/segstore"
)

// AddColumns folds one cell's worth of gathered metric columns in —
// the batch counterpart of Add over the same rows, in the same stream
// order. rtt carries one defined value per session; hd and shd carry
// one value per session with NaN where the ratio is undefined (the
// digests skip NaN, exactly as Add skips !ok ratios). Returns the
// digest observations produced, matching the sum Add would return.
func (a *Aggregation) AddColumns(bytes int64, rtt, hd, shd []float64) int {
	a.Sessions += len(rtt)
	a.Bytes += bytes
	adds := a.MinRTT.AddAll(rtt)
	adds += a.HD.AddAll(hd)
	adds += a.SimpleHD.AddAll(shd)
	return adds
}

// altBucket gathers one route's row indexes within a group×window run,
// in stream order.
type altBucket struct {
	alt  int64
	rows []int
}

// batchScratch is AddBatch's reusable gather space: per-route row
// buckets plus the metric columns handed to AddColumns.
type batchScratch struct {
	buckets  []altBucket
	rtt      []float64
	hd, shd  []float64
	hdA, hdT []int64
	sjA      []int64
}

// AddBatch folds a decoded column batch into the store without
// materializing row structs — the hot path of the segment read side.
//
// The work is dispatched in group-key runs (dictionary-index equality)
// and, within a run, window runs; each cell's rows are gathered per
// route and folded with AddColumns. Because every cell owns its
// digests and rows are gathered in stream order, the digest states —
// buffer contents and compaction trigger points — are identical to
// feeding the same rows one at a time through Add, which is what keeps
// batched reports byte-identical to the row oracle.
//
// When the batch provably holds a single group (manifest index or
// decoded dictionaries) and its start bounds fall in one window — true
// for most segments, which are written per group × 24h chunk — the
// per-row dispatch is skipped entirely: one group lookup, one window
// lookup, then straight to the per-route gather.
func (st *Store) AddBatch(b *segstore.ColumnBatch) {
	n := b.Len()
	if n == 0 {
		return
	}
	if key, ok := b.SingleKey(); ok {
		if w := WindowOf(time.Duration(b.StartMin)); w == WindowOf(time.Duration(b.StartMax)) {
			st.addRun(st.group(key, b, 0), w, b, 0, n)
			return
		}
	}
	i := 0
	for i < n {
		end := b.KeyRunEnd(i)
		g := st.group(b.KeyAt(i), b, i)
		for i < end {
			w := WindowOf(time.Duration(b.Start[i]))
			j := i + 1
			for j < end && WindowOf(time.Duration(b.Start[j])) == w {
				j++
			}
			st.addRun(g, w, b, i, j)
			i = j
		}
	}
}

// group returns (creating if needed) the series for key, described by
// the batch's row i.
func (st *Store) group(key sample.GroupKey, b *segstore.ColumnBatch, i int) *GroupSeries {
	g, ok := st.groups[key]
	if !ok {
		g = &GroupSeries{
			Key:       key,
			Continent: geo.Continent(b.Continent.Value(i)),
			ClientAS:  int(b.ClientAS[i]),
			Windows:   make(map[int]*WindowAgg),
			RouteMeta: make(map[int]RouteMeta),
		}
		st.groups[key] = g
		st.gGroups.Set(float64(len(st.groups)))
	}
	return g
}

// addRun folds rows [lo, hi) — all in group g and window w — into the
// store, bucketed per route.
func (st *Store) addRun(g *GroupSeries, w int, b *segstore.ColumnBatch, lo, hi int) {
	wa, ok := g.Windows[w]
	if !ok {
		wa = &WindowAgg{Routes: make(map[int]*Aggregation)}
		g.Windows[w] = wa
		st.cWindows.Inc()
	}

	// Bucket rows by route in first-appearance order. Route cardinality
	// per cell is tiny (preferred + a few alternates), so a linear scan
	// beats a map.
	bs := &st.bs
	bs.buckets = bs.buckets[:0]
	for i := lo; i < hi; i++ {
		alt := b.AltIndex[i]
		found := false
		for k := range bs.buckets {
			if bs.buckets[k].alt == alt {
				bs.buckets[k].rows = append(bs.buckets[k].rows, i)
				found = true
				break
			}
		}
		if !found {
			// Re-extend into capacity when possible so the per-bucket rows
			// buffers survive across runs.
			if len(bs.buckets) < cap(bs.buckets) {
				bs.buckets = bs.buckets[:len(bs.buckets)+1]
			} else {
				bs.buckets = append(bs.buckets, altBucket{})
			}
			bk := &bs.buckets[len(bs.buckets)-1]
			bk.alt = alt
			bk.rows = append(bk.rows[:0], i)
		}
	}

	for k := range bs.buckets {
		cb := &bs.buckets[k]
		alt := int(cb.alt)
		if _, ok := g.RouteMeta[alt]; !ok {
			f := cb.rows[0]
			g.RouteMeta[alt] = RouteMeta{
				ID:        b.Route.Value(f),
				Rel:       bgp.RelType(b.RouteRel[f]),
				ASPathLen: int(b.ASPathLen[f]),
				Prepended: b.Prepended[f],
			}
		}
		a, ok := wa.Routes[alt]
		if !ok {
			a = newAggregation()
			wa.Routes[alt] = a
		}

		bs.rtt = bs.rtt[:0]
		bs.hdA, bs.hdT, bs.sjA = bs.hdA[:0], bs.hdT[:0], bs.sjA[:0]
		var bytes int64
		for _, i := range cb.rows {
			bs.rtt = append(bs.rtt, float64(b.MinRTT[i])/float64(time.Millisecond))
			bs.hdA = append(bs.hdA, b.HDAchieved[i])
			bs.hdT = append(bs.hdT, b.HDTested[i])
			bs.sjA = append(bs.sjA, b.SimpleAchieved[i])
			bytes += b.Bytes[i]
		}
		bs.hd = hdratio.Ratios(bs.hd[:0], bs.hdA, bs.hdT)
		bs.shd = hdratio.Ratios(bs.shd[:0], bs.sjA, bs.hdT)
		st.cDigestAdds.Add(int64(a.AddColumns(bytes, bs.rtt, bs.hd, bs.shd)))
		if alt == 0 {
			g.PreferredBytes += bytes
		}
	}

	if w+1 > st.TotalWindows {
		st.TotalWindows = w + 1
	}
	if st.firstWindow < 0 || w < st.firstWindow {
		st.firstWindow = w
	}
	st.TotalSamples += hi - lo
}
