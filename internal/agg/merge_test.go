package agg

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sample"
)

// mergeSample fabricates a deterministic sample for merge tests.
func mergeSample(r *rng.RNG, group int, win int) sample.Sample {
	prefix := []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}[group%4]
	s := sample.Sample{
		PoP:     "pop" + string(rune('a'+group%3)),
		Prefix:  prefix,
		Country: "XX",
		RouteID: "r0",
		Bytes:   int64(1000 + r.IntN(5000)),
		MinRTT:  time.Duration(20+r.IntN(80)) * time.Millisecond,
		Start:   time.Duration(win) * WindowDuration,
	}
	s.HDTested = 4
	s.HDAchieved = r.IntN(5)
	s.SimpleAchieved = r.IntN(5)
	if r.IntN(10) == 0 {
		s.AltIndex = 1
	}
	return s
}

// Sharding a stream by group key and merging the shard stores must
// reproduce the sequential store exactly: same totals, same per-cell
// digests (per-key order is preserved, so the merge is pure adoption).
func TestStoreMergeDisjointIsExact(t *testing.T) {
	r := rng.New(1)
	var stream []sample.Sample
	for win := 0; win < 8; win++ {
		for g := 0; g < 12; g++ {
			for i := 0; i < 40; i++ {
				stream = append(stream, mergeSample(r, g, win))
			}
		}
	}

	seq := NewStore()
	for _, s := range stream {
		seq.Add(s)
	}

	const shards = 4
	parts := make([]*Store, shards)
	for i := range parts {
		parts[i] = NewStore()
	}
	for _, s := range stream {
		parts[s.Key().Hash()%shards].Add(s)
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		merged.Merge(p)
	}

	if merged.TotalSamples != seq.TotalSamples {
		t.Fatalf("TotalSamples %d != %d", merged.TotalSamples, seq.TotalSamples)
	}
	if merged.TotalWindows != seq.TotalWindows {
		t.Fatalf("TotalWindows %d != %d", merged.TotalWindows, seq.TotalWindows)
	}
	if merged.Len() != seq.Len() {
		t.Fatalf("groups %d != %d", merged.Len(), seq.Len())
	}
	if merged.TotalPreferredBytes() != seq.TotalPreferredBytes() {
		t.Fatalf("preferred bytes %d != %d", merged.TotalPreferredBytes(), seq.TotalPreferredBytes())
	}

	sg, mg := seq.Groups(), merged.Groups()
	for i := range sg {
		if sg[i].Key != mg[i].Key {
			t.Fatalf("group %d key %v != %v", i, mg[i].Key, sg[i].Key)
		}
		if sg[i].PreferredBytes != mg[i].PreferredBytes {
			t.Fatalf("group %v preferred bytes differ", sg[i].Key)
		}
		for win, wa := range sg[i].Windows {
			mwa := mg[i].Windows[win]
			if mwa == nil {
				t.Fatalf("group %v window %d missing after merge", sg[i].Key, win)
			}
			for alt, a := range wa.Routes {
				ma := mwa.Routes[alt]
				if ma == nil || ma.Sessions != a.Sessions || ma.Bytes != a.Bytes {
					t.Fatalf("group %v win %d route %d cell differs", sg[i].Key, win, alt)
				}
				// Disjoint sharding preserves per-digest add order, so
				// even order-sensitive quantiles are bit-identical.
				if got, want := ma.MinRTTP50(), a.MinRTTP50(); got != want {
					t.Fatalf("group %v win %d MinRTTP50 %v != %v", sg[i].Key, win, got, want)
				}
				if got, want := ma.HD.Count(), a.HD.Count(); got != want {
					t.Fatalf("group %v win %d HD count %v != %v", sg[i].Key, win, got, want)
				}
			}
		}
	}
}

// Overlapping merge (the same group key in both stores) goes through
// the t-digest merge path: counts exact, medians within tolerance.
func TestStoreMergeOverlapping(t *testing.T) {
	r := rng.New(2)
	a, b, both := NewStore(), NewStore(), NewStore()
	for i := 0; i < 4000; i++ {
		s := mergeSample(r, 0, i%4) // a single group key
		both.Add(s)
		if i%2 == 0 {
			a.Add(s)
		} else {
			b.Add(s)
		}
	}
	a.Merge(b)
	if a.TotalSamples != both.TotalSamples {
		t.Fatalf("TotalSamples %d != %d", a.TotalSamples, both.TotalSamples)
	}
	if a.Len() != both.Len() {
		t.Fatalf("groups %d != %d", a.Len(), both.Len())
	}
	ga, gb := a.Groups()[0], both.Groups()[0]
	if ga.PreferredBytes != gb.PreferredBytes {
		t.Fatalf("preferred bytes %d != %d", ga.PreferredBytes, gb.PreferredBytes)
	}
	for win, wa := range gb.Windows {
		for alt, cell := range wa.Routes {
			mcell := ga.Windows[win].Routes[alt]
			if mcell.Sessions != cell.Sessions || mcell.Bytes != cell.Bytes {
				t.Fatalf("win %d route %d sessions/bytes differ", win, alt)
			}
			if d := math.Abs(mcell.MinRTTP50() - cell.MinRTTP50()); d > 2.0 {
				t.Fatalf("win %d route %d merged median off by %v ms", win, alt, d)
			}
		}
	}
}

// Seal must leave every observable value unchanged and be callable
// repeatedly; the race tests in study exercise the concurrent-read
// guarantee it exists for.
func TestSealPreservesValues(t *testing.T) {
	r := rng.New(3)
	st := NewStore()
	for i := 0; i < 5000; i++ {
		st.Add(mergeSample(r, i%6, i%8))
	}
	type cellVal struct{ p50, hd float64 }
	snap := map[int]cellVal{}
	for i, g := range st.Groups() {
		a := g.Windows[g.WindowIndexes()[0]].Route(0)
		snap[i] = cellVal{a.MinRTTP50(), a.HD.Quantile(0.5)}
	}
	st.Seal(4)
	st.Seal(1)
	for i, g := range st.Groups() {
		a := g.Windows[g.WindowIndexes()[0]].Route(0)
		if a.MinRTTP50() != snap[i].p50 || a.HD.Quantile(0.5) != snap[i].hd {
			t.Fatalf("group %d observables changed across Seal", i)
		}
	}
}
