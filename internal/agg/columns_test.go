package agg

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/segstore"
	"repro/internal/tdigest"
	"repro/internal/world"
)

func digestsEqual(t *testing.T, what string, a, b *tdigest.TDigest) {
	t.Helper()
	if a.Count() != b.Count() {
		t.Fatalf("%s: Count %v != %v", what, a.Count(), b.Count())
	}
	if a.Count() > 0 && (a.Min() != b.Min() || a.Max() != b.Max()) {
		t.Fatalf("%s: bounds (%v,%v) != (%v,%v)", what, a.Min(), a.Max(), b.Min(), b.Max())
	}
	am, aw := a.Centroids()
	bm, bw := b.Centroids()
	if len(am) != len(bm) {
		t.Fatalf("%s: %d centroids != %d — insertion order or flush points diverged", what, len(am), len(bm))
	}
	for i := range am {
		if am[i] != bm[i] || aw[i] != bw[i] {
			t.Fatalf("%s: centroid %d (%v,%v) != (%v,%v)", what, i, am[i], aw[i], bm[i], bw[i])
		}
	}
}

// storesEqual walks every cell of both stores demanding bit-identical
// state — the contract that makes columnar reports byte-identical to
// the row oracle's.
func storesEqual(t *testing.T, batch, row *Store) {
	t.Helper()
	if batch.TotalSamples != row.TotalSamples || batch.TotalWindows != row.TotalWindows {
		t.Fatalf("totals (%d, %d) != (%d, %d)", batch.TotalSamples, batch.TotalWindows, row.TotalSamples, row.TotalWindows)
	}
	if batch.FirstWindow() != row.FirstWindow() {
		t.Fatalf("FirstWindow %d != %d", batch.FirstWindow(), row.FirstWindow())
	}
	if batch.Len() != row.Len() {
		t.Fatalf("groups %d != %d", batch.Len(), row.Len())
	}
	bg, rg := batch.Groups(), row.Groups()
	for i := range rg {
		b, r := bg[i], rg[i]
		if b.Key != r.Key || b.Continent != r.Continent || b.ClientAS != r.ClientAS {
			t.Fatalf("group %d identity (%v, %v, %d) != (%v, %v, %d)", i, b.Key, b.Continent, b.ClientAS, r.Key, r.Continent, r.ClientAS)
		}
		if b.PreferredBytes != r.PreferredBytes {
			t.Fatalf("group %v PreferredBytes %d != %d", r.Key, b.PreferredBytes, r.PreferredBytes)
		}
		if len(b.RouteMeta) != len(r.RouteMeta) {
			t.Fatalf("group %v has %d routes, want %d", r.Key, len(b.RouteMeta), len(r.RouteMeta))
		}
		for alt, rm := range r.RouteMeta {
			if b.RouteMeta[alt] != rm {
				t.Fatalf("group %v route %d meta %+v != %+v — first-seen order diverged", r.Key, alt, b.RouteMeta[alt], rm)
			}
		}
		if len(b.Windows) != len(r.Windows) {
			t.Fatalf("group %v has %d windows, want %d", r.Key, len(b.Windows), len(r.Windows))
		}
		for win, rwa := range r.Windows {
			bwa := b.Windows[win]
			if bwa == nil || len(bwa.Routes) != len(rwa.Routes) {
				t.Fatalf("group %v window %d routes differ", r.Key, win)
			}
			for alt, ra := range rwa.Routes {
				ba := bwa.Routes[alt]
				if ba == nil || ba.Sessions != ra.Sessions || ba.Bytes != ra.Bytes {
					t.Fatalf("group %v win %d route %d sessions/bytes differ", r.Key, win, alt)
				}
				cell := r.Key.String()
				digestsEqual(t, cell+" MinRTT", ba.MinRTT, ra.MinRTT)
				digestsEqual(t, cell+" HD", ba.HD, ra.HD)
				digestsEqual(t, cell+" SimpleHD", ba.SimpleHD, ra.SimpleHD)
			}
		}
	}
}

// AddBatch over encode/decode round-tripped chunks must leave the store
// bit-identical to Add over the same rows — across random chunk sizes,
// which exercises both the single-cell fast path (chunks inside one
// group×window) and the general run-dispatch path.
func TestAddBatchMatchesAddLoop(t *testing.T) {
	w := world.New(world.Config{Seed: 19, Groups: 8, Days: 1, SessionsPerGroupWindow: 5})
	rows := w.GenerateAll()
	if len(rows) == 0 {
		t.Fatal("no samples generated")
	}

	rowStore := NewStore()
	for _, s := range rows {
		rowStore.Add(s)
	}

	for trial, chunk := range []int{len(rows), 1, 7, 250} {
		batchStore := NewStore()
		r := rng.ChildAt(5, "chunks", trial)
		for lo := 0; lo < len(rows); {
			hi := lo + 1 + r.IntN(chunk)
			if hi > len(rows) {
				hi = len(rows)
			}
			blob, _ := segstore.EncodeSegment(rows[lo:hi])
			b, err := segstore.DecodeSegmentColumns(blob)
			if err != nil {
				t.Fatal(err)
			}
			batchStore.AddBatch(b)
			lo = hi
		}
		storesEqual(t, batchStore, rowStore)
	}
}

// The obs counters (digest adds, window cells, group gauge) must count
// identically on both currencies — the metrics surface is part of the
// determinism contract the chaos tests compare.
func TestAddBatchCountersMatch(t *testing.T) {
	w := world.New(world.Config{Seed: 23, Groups: 3, Days: 1, SessionsPerGroupWindow: 4})
	rows := w.GenerateAll()
	rowReg, batchReg := obs.NewRegistry(), obs.NewRegistry()
	rowStore, batchStore := NewStore(), NewStore()
	rowStore.Instrument(rowReg)
	batchStore.Instrument(batchReg)
	for _, s := range rows {
		rowStore.Add(s)
	}
	blob, _ := segstore.EncodeSegment(rows)
	b, err := segstore.DecodeSegmentColumns(blob)
	if err != nil {
		t.Fatal(err)
	}
	batchStore.AddBatch(b)
	storesEqual(t, batchStore, rowStore)
	for _, name := range []string{"agg_digest_adds_total", "agg_window_cells_total"} {
		if got, want := batchReg.Counter(name).Value(), rowReg.Counter(name).Value(); got != want {
			t.Fatalf("%s: %d != %d", name, got, want)
		}
	}
}

// FirstWindow tracks the lowest window ever added, on both currencies,
// and survives Merge.
func TestFirstWindowTracking(t *testing.T) {
	st := NewStore()
	if st.FirstWindow() != 0 {
		t.Fatalf("empty store FirstWindow = %d, want 0", st.FirstWindow())
	}
	s := sample.Sample{PoP: "a", Prefix: "10.0.0.0/24", Country: "XX", MinRTT: time.Millisecond, Start: 7 * WindowDuration}
	st.Add(s)
	if st.FirstWindow() != 7 || st.TotalWindows != 8 {
		t.Fatalf("FirstWindow/TotalWindows = %d/%d, want 7/8", st.FirstWindow(), st.TotalWindows)
	}
	s.Start = 3 * WindowDuration
	st.Add(s)
	if st.FirstWindow() != 3 {
		t.Fatalf("FirstWindow = %d after earlier add, want 3", st.FirstWindow())
	}

	other := NewStore()
	s.Start = 1 * WindowDuration
	other.Add(s)
	st.Merge(other)
	if st.FirstWindow() != 1 {
		t.Fatalf("FirstWindow = %d after merge, want 1", st.FirstWindow())
	}
	empty := NewStore()
	st.Merge(empty)
	if st.FirstWindow() != 1 {
		t.Fatalf("FirstWindow = %d after empty merge, want 1", st.FirstWindow())
	}

	// Batch currency agrees.
	blob, _ := segstore.EncodeSegment([]sample.Sample{{PoP: "a", Prefix: "10.0.0.0/24", Country: "XX", MinRTT: time.Millisecond, Start: 5 * WindowDuration}})
	b, err := segstore.DecodeSegmentColumns(blob)
	if err != nil {
		t.Fatal(err)
	}
	bst := NewStore()
	bst.AddBatch(b)
	if bst.FirstWindow() != 5 {
		t.Fatalf("batch FirstWindow = %d, want 5", bst.FirstWindow())
	}
}
