package agg

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sample"
)

// buildQuarantineStore fills a store with a known per-group layout.
func buildQuarantineStore(seed uint64, groups, wins, perCell int) *Store {
	r := rng.New(seed)
	st := NewStore()
	for win := 0; win < wins; win++ {
		for g := 0; g < groups; g++ {
			for i := 0; i < perCell; i++ {
				st.Add(mergeSample(r, g, win))
			}
		}
	}
	return st
}

func TestTotalSessionsSumsEveryCell(t *testing.T) {
	st := buildQuarantineStore(3, 5, 4, 7)
	total := 0
	for _, g := range st.Groups() {
		total += g.TotalSessions()
	}
	if total != st.TotalSamples {
		t.Fatalf("Σ TotalSessions = %d, want TotalSamples %d", total, st.TotalSamples)
	}
}

// Remove must withdraw exactly one series: sample accounting follows,
// the window axis does not, and absent keys are a nil no-op.
func TestRemoveWithdrawsSeries(t *testing.T) {
	st := buildQuarantineStore(4, 6, 5, 6)
	before := st.TotalSamples
	wins := st.TotalWindows
	victim := st.Groups()[2]

	g := st.Remove(victim.Key)
	if g == nil || g.Key != victim.Key {
		t.Fatalf("Remove returned %+v, want the %s series", g, victim.Key)
	}
	if st.Group(victim.Key) != nil {
		t.Error("removed series still reachable")
	}
	if st.TotalSamples != before-g.TotalSessions() {
		t.Errorf("TotalSamples = %d, want %d − %d", st.TotalSamples, before, g.TotalSessions())
	}
	if st.TotalWindows != wins {
		t.Errorf("TotalWindows changed on Remove: %d → %d (the window axis is a property of the run)", wins, st.TotalWindows)
	}
	if again := st.Remove(victim.Key); again != nil {
		t.Errorf("second Remove returned %+v, want nil", again)
	}
}

// Merging empty and partially-poisoned shards: a quarantined (emptied)
// shard contributes nothing, an untouched empty store is a no-op, and
// the merge equals sequential ingestion of the surviving stream. This
// is the shape a degraded pipeline run leaves behind.
func TestMergeWithEmptyAndQuarantinedShards(t *testing.T) {
	const shards = 5
	r := rng.New(9)
	var stream []sample.Sample
	for win := 0; win < 6; win++ {
		for g := 0; g < 10; g++ {
			for i := 0; i < 12; i++ {
				stream = append(stream, mergeSample(r, g, win))
			}
		}
	}

	// Shard the stream; then quarantine every group on shard 2 (the
	// "poisoned shard" scenario: its groups were withdrawn one by one).
	parts := make([]*Store, shards)
	for i := range parts {
		parts[i] = NewStore()
	}
	for _, s := range stream {
		parts[s.Key().Hash()%shards].Add(s)
	}
	poisoned := map[sample.GroupKey]bool{}
	for _, g := range parts[2].Groups() {
		poisoned[g.Key] = true
		if parts[2].Remove(g.Key) == nil {
			t.Fatalf("quarantining %s failed", g.Key)
		}
	}
	if parts[2].Len() != 0 || parts[2].TotalSamples != 0 {
		t.Fatalf("shard 2 not fully quarantined: %d groups, %d samples", parts[2].Len(), parts[2].TotalSamples)
	}

	// Sequential oracle over the surviving stream.
	want := NewStore()
	for _, s := range stream {
		if !poisoned[s.Key()] {
			want.Add(s)
		}
	}

	merged := parts[0]
	merged.Merge(NewStore()) // merging a never-used store is a no-op
	merged.Merge(nil)        // as is nil
	for _, p := range parts[1:] {
		merged.Merge(p)
	}
	if merged.TotalSamples != want.TotalSamples || merged.Len() != want.Len() {
		t.Fatalf("merged %d samples / %d groups, want %d / %d",
			merged.TotalSamples, merged.Len(), want.TotalSamples, want.Len())
	}
	gm, gw := merged.Groups(), want.Groups()
	for i := range gw {
		if gm[i].Key != gw[i].Key {
			t.Fatalf("group %d key %s, want %s", i, gm[i].Key, gw[i].Key)
		}
		if gm[i].TotalSessions() != gw[i].TotalSessions() || gm[i].PreferredBytes != gw[i].PreferredBytes {
			t.Errorf("group %s sessions/bytes differ from sequential oracle", gm[i].Key)
		}
		for _, win := range gw[i].WindowIndexes() {
			wa, wb := gm[i].Windows[win], gw[i].Windows[win]
			for alt, ab := range wb.Routes {
				aa := wa.Route(alt)
				if aa == nil || aa.Sessions != ab.Sessions || aa.MinRTTP50() != ab.MinRTTP50() {
					t.Fatalf("group %s win %d route %d differs from oracle", gw[i].Key, win, alt)
				}
			}
		}
	}
}

// Seal on degraded stores: sealing an empty store, a store with a
// removed series, and sealing at more workers than groups must all be
// safe and preserve every read.
func TestSealAfterQuarantine(t *testing.T) {
	NewStore().Seal(4) // empty store: no work, no panic

	st := buildQuarantineStore(7, 6, 4, 9)
	st.Remove(st.Groups()[0].Key)
	st.Remove(st.Groups()[0].Key)

	type cell struct {
		sessions int
		p50      float64
	}
	want := map[sample.GroupKey]cell{}
	for _, g := range st.Groups() {
		a := g.Windows[g.WindowIndexes()[0]].Route(0)
		want[g.Key] = cell{a.Sessions, a.MinRTTP50()}
	}
	st.Seal(64) // more workers than surviving groups
	for _, g := range st.Groups() {
		a := g.Windows[g.WindowIndexes()[0]].Route(0)
		w := want[g.Key]
		if a.Sessions != w.sessions || a.MinRTTP50() != w.p50 {
			t.Fatalf("seal changed group %s: sessions %d→%d p50 %v→%v",
				g.Key, w.sessions, a.Sessions, w.p50, a.MinRTTP50())
		}
	}
}

// Property: for any removal order, TotalSamples stays the sum of the
// surviving groups' sessions — removal accounting never drifts.
func TestRemovePropertyAccountingInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		st := buildQuarantineStore(seed, 8, 5, 5)
		r := rng.New(seed * 101)
		for st.Len() > 0 {
			groups := st.Groups()
			st.Remove(groups[r.IntN(len(groups))].Key)
			sum := 0
			for _, g := range st.Groups() {
				sum += g.TotalSessions()
			}
			if sum != st.TotalSamples {
				t.Fatalf("seed %d: Σ sessions %d != TotalSamples %d after removal", seed, sum, st.TotalSamples)
			}
		}
		if st.TotalSamples != 0 {
			t.Fatalf("seed %d: emptied store reports %d samples", seed, st.TotalSamples)
		}
	}
}
