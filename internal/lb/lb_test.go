package lb

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/proxygen"
)

// startServer runs a Server on a loopback listener.
func startServer(t *testing.T, srv *Server) net.Addr {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
	return l.Addr()
}

// get fetches n objects over one connection and returns total body bytes.
func get(t *testing.T, addr net.Addr, sizes []int64) int64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	var total int64
	for i, size := range sizes {
		connHdr := ""
		if i == len(sizes)-1 {
			connHdr = "Connection: close\r\n"
		}
		fmt.Fprintf(conn, "GET /object?bytes=%d HTTP/1.1\r\nHost: t\r\n%s\r\n", size, connHdr)
		// Parse status + headers.
		var contentLen int64
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("read header: %v", err)
			}
			if line == "\r\n" {
				break
			}
			var n int64
			if _, err := fmt.Sscanf(line, "Content-Length: %d", &n); err == nil {
				contentLen = n
			}
		}
		if size > 0 && contentLen != size {
			t.Fatalf("content length %d, want %d", contentLen, size)
		}
		if _, err := io.CopyN(io.Discard, br, contentLen); err != nil {
			t.Fatalf("read body: %v", err)
		}
		total += contentLen
	}
	return total
}

func TestLiveSessionMeasured(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("TCP_INFO instrumentation is linux-only")
	}
	reports := make(chan SessionReport, 1)
	srv := &Server{OnReport: func(r SessionReport) { reports <- r }}
	addr := startServer(t, srv)

	got := get(t, addr, []int64{3_000, 150_000, 45_000})
	if got != 198_000 {
		t.Fatalf("client received %d bytes", got)
	}

	select {
	case r := <-reports:
		if r.BytesServed != 198_000 {
			t.Errorf("BytesServed = %d", r.BytesServed)
		}
		if len(r.Transactions) == 0 {
			t.Fatal("no corrected transactions")
		}
		// Loopback RTT is tiny but nonzero.
		if r.MinRTT <= 0 || r.MinRTT > 100*time.Millisecond {
			t.Errorf("MinRTT = %v", r.MinRTT)
		}
		// On loopback everything testable must achieve HD goodput.
		if r.Outcome.Tested > 0 && r.Outcome.AchievedCount != r.Outcome.Tested {
			t.Errorf("loopback failed HD: %d/%d", r.Outcome.AchievedCount, r.Outcome.Tested)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no session report")
	}
}

func TestSamplerSkipsSessions(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("TCP_INFO instrumentation is linux-only")
	}
	reports := make(chan SessionReport, 16)
	srv := &Server{
		Sampler:  proxygen.Sampler{Rate: 1e-12, Salt: 7}, // effectively never
		OnReport: func(r SessionReport) { reports <- r },
	}
	addr := startServer(t, srv)
	get(t, addr, []int64{5_000})
	select {
	case <-reports:
		t.Fatal("unsampled session reported")
	case <-time.After(300 * time.Millisecond):
	}
}

func TestBadRequestClosesConnection(t *testing.T) {
	srv := &Server{}
	addr := startServer(t, srv)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST / HTTP/1.1\r\n\r\n")
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != io.EOF {
		t.Errorf("expected EOF on bad request, got %v", err)
	}
}

func TestDefaultObjectSize(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("linux-only")
	}
	srv := &Server{}
	addr := startServer(t, srv)
	if got := get(t, addr, []int64{0}); got != 1000 {
		// bytes=0 falls back to the 1000-byte default
		t.Errorf("default object = %d bytes", got)
	}
}
