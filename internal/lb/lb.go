// Package lb is a small HTTP/1.1 load-balancer-style server that runs
// the measurement methodology against real sockets: it serves synthetic
// objects ("GET /object?bytes=N"), samples sessions (§2.2.2), captures
// TCP_INFO at the prescribed points — the congestion window when a
// response's first byte is written, and acknowledgment progress for the
// delayed-ACK correction — and evaluates HDratio per session at close.
//
// On Linux the capture uses the kernel's TCP_INFO (package tcpinfo); on
// other platforms measurements degrade gracefully to Wnic=0, which the
// methodology treats conservatively.
package lb

import (
	"bufio"
	"fmt"
	"net"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/hdratio"
	"repro/internal/obs"
	"repro/internal/proxygen"
	"repro/internal/tcpinfo"
	"repro/internal/units"
)

// SessionReport is emitted when a sampled session's connection closes.
type SessionReport struct {
	RemoteAddr string
	MinRTT     time.Duration
	// Transactions are the corrected observations.
	Transactions []hdratio.Transaction
	// Outcome is the HDratio evaluation for the session.
	Outcome hdratio.Outcome
	// BytesServed totals response bodies.
	BytesServed int64
}

// HDratio returns the session's HDratio (NaN if nothing tested).
func (r SessionReport) HDratio() float64 { return r.Outcome.HDratio() }

// Server serves synthetic objects and measures sampled sessions.
type Server struct {
	// Sampler picks the sessions to instrument; defaults to everything.
	Sampler proxygen.Sampler
	// Target is the goodput target (defaults to HD goodput).
	Target units.Rate
	// OnReport receives a report per sampled session at close.
	OnReport func(SessionReport)
	// AckPollInterval tunes how often acknowledgment progress is read
	// from TCP_INFO; the default of 200µs bounds measurement error on
	// localhost-scale RTTs.
	AckPollInterval time.Duration

	mu       sync.Mutex
	sessions uint64

	// Pre-resolved obs handles; nil (no-op) until Instrument is called.
	hRequest     *obs.Histogram
	dSessionRTT  *obs.Digest
	cSessions    *obs.Counter
	cSampled     *obs.Counter
	cRequests    *obs.Counter
	cBytes       *obs.Counter
	cTCPInfoErrs *obs.Counter
}

// Instrument registers the server's metrics on reg: a per-request
// service-latency histogram, a per-session MinRTT summary, and counters
// for sessions, sampled sessions, requests, bytes served, and TCP_INFO
// capture failures. A nil registry leaves the server uninstrumented.
func (s *Server) Instrument(reg *obs.Registry) {
	s.hRequest = reg.Histogram("lb_request_seconds", nil)
	s.dSessionRTT = reg.Digest("lb_session_minrtt_ms")
	s.cSessions = reg.Counter("lb_sessions_total")
	s.cSampled = reg.Counter("lb_sampled_sessions_total")
	s.cRequests = reg.Counter("lb_requests_total")
	s.cBytes = reg.Counter("lb_bytes_served_total")
	s.cTCPInfoErrs = reg.Counter("lb_tcpinfo_errors_total")
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.sessions++
		id := s.sessions
		s.mu.Unlock()
		go s.handle(conn, id)
	}
}

func (s *Server) handle(conn net.Conn, id uint64) {
	defer func() { _ = conn.Close() }()
	sampled := s.Sampler.Rate == 0 || s.Sampler.Sample(id)
	tconn, _ := conn.(*net.TCPConn)
	s.cSessions.Inc()
	if sampled {
		s.cSampled.Inc()
	}

	start := time.Now()
	var raws []proxygen.RawTxn
	var served int64

	br := bufio.NewReader(conn)
	for {
		nbytes, keepAlive, err := readRequest(br)
		if err != nil {
			break
		}
		reqStart := time.Now()
		raw, err := s.serveObject(tconn, conn, nbytes, start)
		if err != nil {
			break
		}
		s.cRequests.Inc()
		s.cBytes.Add(nbytes)
		s.hRequest.ObserveDuration(time.Since(reqStart))
		served += nbytes
		if sampled {
			raws = append(raws, raw)
		}
		if !keepAlive {
			break
		}
	}

	if !sampled || s.OnReport == nil || tconn == nil {
		return
	}
	// Final TCP state at session close (§2.2.2).
	minRTT := time.Duration(0)
	if info, err := tcpinfo.FromTCPConn(tconn); err == nil {
		minRTT = info.MinRTT
	} else {
		s.cTCPInfoErrs.Inc()
	}
	s.dSessionRTT.Observe(float64(minRTT) / float64(time.Millisecond))
	txns := proxygen.Correct(raws)
	target := s.Target
	if target <= 0 {
		target = units.HDGoodput
	}
	outcome := hdratio.Evaluate(hdratio.Session{MinRTT: minRTT, Transactions: txns}, hdratio.Config{Target: target})
	s.OnReport(SessionReport{
		RemoteAddr:   conn.RemoteAddr().String(),
		MinRTT:       minRTT,
		Transactions: txns,
		Outcome:      outcome,
		BytesServed:  served,
	})
}

// readRequest parses a minimal HTTP/1.1 request and returns the object
// size requested via "GET /object?bytes=N".
func readRequest(br *bufio.Reader) (nbytes int64, keepAlive bool, err error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, false, err
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 || fields[0] != "GET" {
		return 0, false, fmt.Errorf("lb: unsupported request %q", line)
	}
	u, err := url.Parse(fields[1])
	if err != nil {
		return 0, false, fmt.Errorf("lb: bad url: %w", err)
	}
	nbytes, _ = strconv.ParseInt(u.Query().Get("bytes"), 10, 64)
	if nbytes <= 0 {
		nbytes = 1000
	}
	keepAlive = true
	// Drain headers; "Connection: close" ends the session.
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			return 0, false, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			return nbytes, keepAlive, nil
		}
		if strings.EqualFold(h, "Connection: close") {
			keepAlive = false
		}
	}
}

var responsePad = []byte(strings.Repeat("x", 64<<10))

// serveObject writes one response, instrumenting it per §2.2.2/§3.2.5.
func (s *Server) serveObject(tconn *net.TCPConn, conn net.Conn, nbytes int64, epoch time.Time) (proxygen.RawTxn, error) {
	mss := int64(units.DefaultMSS)
	var ackedBefore uint64
	raw := proxygen.RawTxn{Bytes: nbytes, LastPacketBytes: nbytes % mss}
	if raw.LastPacketBytes == 0 {
		raw.LastPacketBytes = mss
	}
	if tconn != nil {
		if info, err := tcpinfo.FromTCPConn(tconn); err == nil {
			raw.Wnic = info.CwndBytes()
			ackedBefore = info.BytesAcked
			if info.SndMSS > 0 {
				mss = int64(info.SndMSS)
				raw.LastPacketBytes = nbytes % mss
				if raw.LastPacketBytes == 0 {
					raw.LastPacketBytes = mss
				}
			}
		} else {
			s.cTCPInfoErrs.Inc()
		}
	}

	header := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\nContent-Type: application/octet-stream\r\n\r\n", nbytes)
	raw.FirstByteWrite = time.Since(epoch)
	raw.FirstByteNIC = raw.FirstByteWrite // kernel hands off immediately on an unblocked socket
	if _, err := conn.Write([]byte(header)); err != nil {
		return raw, err
	}
	remaining := nbytes
	for remaining > 0 {
		chunk := int64(len(responsePad))
		if chunk > remaining {
			chunk = remaining
		}
		if _, err := conn.Write(responsePad[:chunk]); err != nil {
			return raw, err
		}
		remaining -= chunk
	}
	raw.LastByteNIC = time.Since(epoch)

	// Poll acknowledgment progress for the delayed-ACK correction: the
	// transaction ends at the ACK covering the second-to-last packet.
	if tconn != nil {
		headerLen := int64(len(header))
		target := ackedBefore + uint64(headerLen+nbytes-raw.LastPacketBytes)
		full := ackedBefore + uint64(headerLen+nbytes)
		interval := s.AckPollInterval
		if interval <= 0 {
			interval = 200 * time.Microsecond
		}
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			info, err := tcpinfo.FromTCPConn(tconn)
			if err != nil {
				s.cTCPInfoErrs.Inc()
				break
			}
			if raw.SecondToLastAck == 0 && info.BytesAcked >= target {
				raw.SecondToLastAck = time.Since(epoch)
			}
			if info.BytesAcked >= full {
				raw.LastAck = time.Since(epoch)
				break
			}
			time.Sleep(interval)
		}
	}
	return raw, nil
}
