package quicsim

import (
	"testing"
	"time"

	"repro/internal/hdratio"
	"repro/internal/netsim"
	"repro/internal/units"
)

// serveSequential measures n sequential responses over one connection at
// the given bottleneck and returns the outcome.
func serveSequential(t *testing.T, bw units.Rate, sizes []int64) hdratio.Outcome {
	t.Helper()
	var nsim netsim.Sim
	nsim.MaxSteps = 1 << 24
	data, acks := links(&nsim, bw, 40*time.Millisecond)
	c := New(&nsim, Config{}, data, acks)
	m := NewStreamMeasurer(&nsim, c, 0)
	// Space the requests out so transfers do not overlap.
	for i, size := range sizes {
		stream, size := i+1, size
		nsim.Schedule(time.Duration(i)*5*time.Second, func() { m.Serve(stream, size) })
	}
	if !nsim.Run() {
		t.Fatal("no convergence")
	}
	return m.Evaluate(hdratio.DefaultConfig())
}

func TestQUICMeasurementFastPath(t *testing.T) {
	out := serveSequential(t, 20*units.Mbps, []int64{150_000, 150_000, 150_000})
	if out.Tested == 0 {
		t.Fatal("nothing tested")
	}
	if out.AchievedCount != out.Tested {
		t.Errorf("fast QUIC path achieved %d/%d", out.AchievedCount, out.Tested)
	}
}

func TestQUICMeasurementSlowPath(t *testing.T) {
	out := serveSequential(t, 1*units.Mbps, []int64{150_000, 150_000})
	if out.Tested == 0 {
		t.Fatal("nothing tested")
	}
	if out.AchievedCount != 0 {
		t.Errorf("1 Mbps QUIC path achieved HD %d/%d times", out.AchievedCount, out.Tested)
	}
}

func TestQUICMeasurementSmallObjectsUntestable(t *testing.T) {
	out := serveSequential(t, 10*units.Mbps, []int64{1000, 1400})
	if out.Tested != 0 {
		t.Errorf("single-packet responses tested: %d", out.Tested)
	}
}

func TestQUICMeasurementWnicCaptured(t *testing.T) {
	var nsim netsim.Sim
	nsim.MaxSteps = 1 << 22
	data, acks := links(&nsim, 10*units.Mbps, 20*time.Millisecond)
	c := New(&nsim, Config{InitCwndPackets: 10}, data, acks)
	m := NewStreamMeasurer(&nsim, c, 0)
	m.Serve(1, 60_000)
	nsim.Run()
	obs := m.Observations()
	if len(obs) != 1 {
		t.Fatalf("observations = %d", len(obs))
	}
	if obs[0].Wnic != 10*1500 {
		t.Errorf("Wnic = %d, want initial window", obs[0].Wnic)
	}
	if obs[0].Bytes != 60_000-1500 {
		t.Errorf("corrected bytes = %d", obs[0].Bytes)
	}
}
