package quicsim

import (
	"repro/internal/hdratio"
	"repro/internal/netsim"
	"repro/internal/units"
)

// StreamMeasurer applies the paper's server-side instrumentation to a
// QUIC connection: one observation per stream (QUIC streams are
// independent, so the HTTP/2 coalescing problem of §3.2.5 does not
// arise), with the same delayed-last-ack correction — the duration ends
// when all but the final packet's bytes are acknowledged.
//
// This demonstrates the methodology is transport-agnostic: it needs a
// congestion window at write time, a first-byte send timestamp, and
// acknowledgment progress — all of which QUIC exposes to the sender
// (and, unlike TCP, to the sender only: a middlebox cannot terminate
// the measured loop, per footnote 1).
type StreamMeasurer struct {
	conn *Conn
	sim  *netsim.Sim
	mss  int64

	pending map[int]*streamObs
	done    []hdratio.Transaction
}

type streamObs struct {
	bytes     int64
	threshold int64 // bytes − last packet
	wnic      int64
	started   netsim.Time
	finished  bool
}

// NewStreamMeasurer instruments a connection. It chains the
// OnStreamAcked hook; install any application hook before calling this.
func NewStreamMeasurer(sim *netsim.Sim, conn *Conn, mss int) *StreamMeasurer {
	if mss <= 0 {
		mss = units.DefaultMSS
	}
	m := &StreamMeasurer{
		conn:    conn,
		sim:     sim,
		mss:     int64(mss),
		pending: make(map[int]*streamObs),
	}
	prev := conn.OnStreamAcked
	conn.OnStreamAcked = func(stream int, total int64) {
		if prev != nil {
			prev(stream, total)
		}
		m.onAcked(stream, total)
	}
	return m
}

// Serve writes one response on a stream and begins its measurement.
func (m *StreamMeasurer) Serve(stream int, bytes int64) {
	if bytes <= 0 {
		return
	}
	lastPkt := bytes % m.mss
	if lastPkt == 0 {
		lastPkt = m.mss
	}
	m.pending[stream] = &streamObs{
		bytes:     bytes,
		threshold: bytes - lastPkt,
		wnic:      m.conn.Cwnd(),
		started:   m.sim.Now(),
	}
	m.conn.WriteStream(stream, bytes)
}

func (m *StreamMeasurer) onAcked(stream int, total int64) {
	obs := m.pending[stream]
	if obs == nil || obs.finished {
		return
	}
	if obs.threshold <= 0 {
		// Single-packet response: unmeasurable, as in TCP (§3.2.5).
		if total >= obs.bytes {
			obs.finished = true
			m.done = append(m.done, hdratio.Transaction{Wnic: obs.wnic, Ineligible: true})
		}
		return
	}
	if total >= obs.threshold {
		obs.finished = true
		m.done = append(m.done, hdratio.Transaction{
			Bytes:    obs.threshold,
			Duration: m.sim.Now() - obs.started,
			Wnic:     obs.wnic,
		})
	}
}

// Observations returns the corrected transactions measured so far, in
// completion order.
func (m *StreamMeasurer) Observations() []hdratio.Transaction {
	return append([]hdratio.Transaction(nil), m.done...)
}

// Evaluate runs the HDratio methodology over the measured streams.
func (m *StreamMeasurer) Evaluate(cfg hdratio.Config) hdratio.Outcome {
	return hdratio.Evaluate(hdratio.Session{
		MinRTT:       m.conn.MinRTT(),
		Transactions: m.Observations(),
	}, cfg)
}
