// Package quicsim models a QUIC-like transport over netsim: a single
// connection carrying independent streams, packet-number-based loss
// detection, and per-stream in-order delivery — so the loss of one
// stream's packet does not block another stream's data (no transport
// head-of-line blocking, unlike HTTP/2 over TCP).
//
// The paper's footnote 1 points at QUIC for two reasons this package
// makes testable:
//
//   - QUIC's encryption prevents performance-enhancing proxies from
//     splitting the connection (§2.2.1), so server-side measurements
//     become end-to-end by construction — the split-TCP distortion
//     package pep demonstrates simply cannot occur.
//   - Stream independence changes multiplexing behaviour: under loss,
//     an HTTP/2-over-TCP session stalls every stream behind the hole,
//     while QUIC delivers unaffected streams immediately.
//
// Simplifications versus real QUIC: one stream frame per packet, an
// ACK per received packet, a 3-packet reordering threshold for loss
// detection, and NewReno-style congestion control.
package quicsim

import (
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/units"
)

// Config parameterises a connection.
type Config struct {
	// MSS is the stream payload per packet (default units.DefaultMSS).
	MSS int
	// InitCwndPackets is the initial congestion window (default 10).
	InitCwndPackets int
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = units.DefaultMSS
	}
	if c.InitCwndPackets <= 0 {
		c.InitCwndPackets = 10
	}
	return c
}

// frame is one stream frame in flight or queued.
type frame struct {
	stream int
	offset int64
	length int64
	retx   bool
}

// sentPacket tracks an unacknowledged packet.
type sentPacket struct {
	frame  frame
	sentAt netsim.Time
}

// recvStream reassembles one stream at the receiver.
type recvStream struct {
	delivered int64 // contiguous bytes handed to the application
	ranges    []span
}

type span struct{ lo, hi int64 }

// Conn is a QUIC-like connection: sender on one side, receiver on the
// other, over a data link and an ack link.
type Conn struct {
	sim  *netsim.Sim
	cfg  Config
	data *netsim.Link
	acks *netsim.Link

	// Sender state.
	cwnd          int64
	ssthresh      int64
	bytesInFlight int64
	nextPktNum    int64
	largestAcked  int64
	unacked       map[int64]sentPacket
	sendQueues    map[int]*sendQueue
	streamOrder   []int
	rr            int
	recoveryEnd   int64 // loss events within one window count once

	minRTT time.Duration

	// Receiver state.
	streams map[int]*recvStream

	// OnStreamDeliver fires when contiguous stream bytes become
	// available to the application.
	OnStreamDeliver func(stream int, newBytes int64)
	// OnStreamAcked fires at the sender when stream bytes are
	// acknowledged, with the stream's cumulative acked byte count — the
	// hook server-side instrumentation measures from.
	OnStreamAcked func(stream int, totalAcked int64)

	// ackedByStream tracks cumulative acknowledged bytes per stream.
	ackedByStream map[int]int64

	// Counters.
	Lost        uint64
	Retransmits uint64
}

// sendQueue is a stream's unsent data.
type sendQueue struct {
	next int64 // next fresh offset to send
	end  int64 // total bytes written by the application
	retx []frame
}

// New wires a connection over the links.
func New(sim *netsim.Sim, cfg Config, data, acks *netsim.Link) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		sim:           sim,
		cfg:           cfg,
		data:          data,
		acks:          acks,
		cwnd:          int64(cfg.InitCwndPackets * cfg.MSS),
		ssthresh:      1 << 40,
		largestAcked:  -1,
		unacked:       make(map[int64]sentPacket),
		sendQueues:    make(map[int]*sendQueue),
		streams:       make(map[int]*recvStream),
		ackedByStream: make(map[int]int64),
		minRTT:        time.Duration(1<<62 - 1),
	}
	data.Deliver = c.receive
	acks.Deliver = c.onAck
	return c
}

// MinRTT returns the smallest RTT observed (end to end: no middlebox
// can split a QUIC connection).
func (c *Conn) MinRTT() time.Duration {
	if c.minRTT >= time.Duration(1<<62-1) {
		return 0
	}
	return c.minRTT
}

// WriteStream appends n bytes to a stream and sends what the window
// allows.
func (c *Conn) WriteStream(stream int, n int64) {
	if n <= 0 {
		return
	}
	q := c.sendQueues[stream]
	if q == nil {
		q = &sendQueue{}
		c.sendQueues[stream] = q
		c.streamOrder = append(c.streamOrder, stream)
		sort.Ints(c.streamOrder)
	}
	q.end += n
	c.trySend()
}

// Cwnd returns the sender congestion window in bytes — the QUIC analog
// of the Wnic the TCP instrumentation records.
func (c *Conn) Cwnd() int64 { return c.cwnd }

// StreamAcked returns the cumulative acknowledged bytes on a stream.
func (c *Conn) StreamAcked(stream int) int64 { return c.ackedByStream[stream] }

// Delivered returns the contiguous bytes delivered on a stream.
func (c *Conn) Delivered(stream int) int64 {
	rs := c.streams[stream]
	if rs == nil {
		return 0
	}
	return rs.delivered
}

// trySend transmits frames round-robin across streams while the window
// allows, retransmissions first.
func (c *Conn) trySend() {
	mss := int64(c.cfg.MSS)
	for c.bytesInFlight+mss <= c.cwnd {
		f, ok := c.nextFrame()
		if !ok {
			return
		}
		c.sendFrame(f)
	}
}

// nextFrame picks the next frame: retransmissions first, then fresh
// data round-robin across streams.
func (c *Conn) nextFrame() (frame, bool) {
	for _, id := range c.streamOrder {
		q := c.sendQueues[id]
		if len(q.retx) > 0 {
			f := q.retx[0]
			q.retx = q.retx[1:]
			return f, true
		}
	}
	if len(c.streamOrder) == 0 {
		return frame{}, false
	}
	mss := int64(c.cfg.MSS)
	for i := 0; i < len(c.streamOrder); i++ {
		id := c.streamOrder[c.rr%len(c.streamOrder)]
		c.rr++
		q := c.sendQueues[id]
		if q.next < q.end {
			ln := mss
			if q.next+ln > q.end {
				ln = q.end - q.next
			}
			f := frame{stream: id, offset: q.next, length: ln}
			q.next += ln
			return f, true
		}
	}
	return frame{}, false
}

// sendFrame puts one frame on the wire as its own packet.
func (c *Conn) sendFrame(f frame) {
	pn := c.nextPktNum
	c.nextPktNum++
	c.unacked[pn] = sentPacket{frame: f, sentAt: c.sim.Now()}
	c.bytesInFlight += f.length
	if f.retx {
		c.Retransmits++
	}
	// Probe timeout: tail losses have no later acks to trip the
	// reordering threshold, so every packet carries its own deadline.
	c.sim.Schedule(c.probeTimeout(), func() { c.onProbeTimeout(pn) })
	// Encode the frame into the generic packet: Seq carries the packet
	// number; SackLo/SackHi carry stream id and offset.
	c.data.Send(netsim.Packet{
		Seq:    pn,
		Len:    int(f.length),
		SackLo: int64(f.stream),
		SackHi: f.offset,
		SentAt: c.sim.Now(),
	})
}

// receive handles a data packet at the receiver and acks it.
func (c *Conn) receive(p netsim.Packet) {
	stream := int(p.SackLo)
	offset := p.SackHi
	rs := c.streams[stream]
	if rs == nil {
		rs = &recvStream{}
		c.streams[stream] = rs
	}
	rs.insert(span{offset, offset + int64(p.Len)})
	before := rs.delivered
	rs.integrate()
	if rs.delivered > before && c.OnStreamDeliver != nil {
		c.OnStreamDeliver(stream, rs.delivered-before)
	}
	// Ack the packet number; echo the send timestamp for RTT.
	c.acks.Send(netsim.Packet{IsAck: true, Ack: p.Seq, SentAt: p.SentAt})
}

func (rs *recvStream) insert(s span) {
	rs.ranges = append(rs.ranges, s)
	sort.Slice(rs.ranges, func(i, j int) bool { return rs.ranges[i].lo < rs.ranges[j].lo })
	merged := rs.ranges[:0]
	for _, r := range rs.ranges {
		if n := len(merged); n > 0 && r.lo <= merged[n-1].hi {
			if r.hi > merged[n-1].hi {
				merged[n-1].hi = r.hi
			}
			continue
		}
		merged = append(merged, r)
	}
	rs.ranges = merged
}

func (rs *recvStream) integrate() {
	for len(rs.ranges) > 0 && rs.ranges[0].lo <= rs.delivered {
		if rs.ranges[0].hi > rs.delivered {
			rs.delivered = rs.ranges[0].hi
		}
		rs.ranges = rs.ranges[1:]
	}
}

// reorderingThreshold is QUIC's packet-threshold loss detection.
const reorderingThreshold = 3

// probeTimeout is the deadline after which an unacknowledged packet is
// declared lost regardless of later acks.
func (c *Conn) probeTimeout() time.Duration {
	if c.minRTT < time.Duration(1<<62-1) {
		pto := 3 * c.minRTT
		if pto < 200*time.Millisecond {
			pto = 200 * time.Millisecond
		}
		return pto
	}
	return time.Second
}

// onProbeTimeout declares a still-unacked packet lost.
func (c *Conn) onProbeTimeout(pn int64) {
	sp, ok := c.unacked[pn]
	if !ok {
		return
	}
	delete(c.unacked, pn)
	c.bytesInFlight -= sp.frame.length
	c.Lost++
	f := sp.frame
	f.retx = true
	if q := c.sendQueues[f.stream]; q != nil {
		q.retx = append(q.retx, f)
	}
	if pn > c.recoveryEnd {
		c.recoveryEnd = c.nextPktNum
		c.ssthresh = c.cwnd / 2
		if min := int64(2 * c.cfg.MSS); c.ssthresh < min {
			c.ssthresh = min
		}
		c.cwnd = c.ssthresh
	}
	c.trySend()
}

// onAck processes an acknowledgment at the sender.
func (c *Conn) onAck(p netsim.Packet) {
	if !p.IsAck {
		return
	}
	pn := p.Ack
	sp, ok := c.unacked[pn]
	if ok {
		delete(c.unacked, pn)
		c.bytesInFlight -= sp.frame.length
		if rtt := c.sim.Now() - p.SentAt; rtt > 0 && rtt < c.minRTT && !sp.frame.retx {
			c.minRTT = rtt
		}
		c.ackedByStream[sp.frame.stream] += sp.frame.length
		if c.OnStreamAcked != nil {
			c.OnStreamAcked(sp.frame.stream, c.ackedByStream[sp.frame.stream])
		}
		// Congestion control: slow start doubles, then AIMD.
		if c.cwnd < c.ssthresh {
			c.cwnd += sp.frame.length
		} else {
			c.cwnd += int64(c.cfg.MSS) * sp.frame.length / c.cwnd
		}
	}
	if pn > c.largestAcked {
		c.largestAcked = pn
	}
	c.detectLosses()
	c.trySend()
}

// detectLosses declares packets lost once the reordering threshold is
// exceeded, re-enqueues their frames, and reduces the window once per
// recovery epoch.
func (c *Conn) detectLosses() {
	var lostPns []int64
	for pn := range c.unacked {
		if c.largestAcked-pn >= reorderingThreshold {
			lostPns = append(lostPns, pn)
		}
	}
	if len(lostPns) == 0 {
		return
	}
	sort.Slice(lostPns, func(i, j int) bool { return lostPns[i] < lostPns[j] })
	reduced := false
	for _, pn := range lostPns {
		sp := c.unacked[pn]
		delete(c.unacked, pn)
		c.bytesInFlight -= sp.frame.length
		c.Lost++
		f := sp.frame
		f.retx = true
		q := c.sendQueues[f.stream]
		if q != nil {
			q.retx = append(q.retx, f)
		}
		if pn > c.recoveryEnd && !reduced {
			reduced = true
			c.recoveryEnd = c.nextPktNum
			c.ssthresh = c.cwnd / 2
			if min := int64(2 * c.cfg.MSS); c.ssthresh < min {
				c.ssthresh = min
			}
			c.cwnd = c.ssthresh
		}
	}
}
