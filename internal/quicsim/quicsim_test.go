package quicsim

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/tcpsim"
	"repro/internal/units"
)

func links(sim *netsim.Sim, rate units.Rate, oneWay time.Duration) (data, acks *netsim.Link) {
	data = &netsim.Link{Sim: sim, Rate: rate, Delay: oneWay}
	acks = &netsim.Link{Sim: sim, Delay: oneWay}
	return
}

func TestSingleStreamDelivery(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	data, acks := links(&sim, 10*units.Mbps, 20*time.Millisecond)
	c := New(&sim, Config{}, data, acks)
	c.WriteStream(1, 100*1500)
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if got := c.Delivered(1); got != 100*1500 {
		t.Fatalf("delivered %d bytes", got)
	}
	if rtt := c.MinRTT(); rtt < 40*time.Millisecond || rtt > 45*time.Millisecond {
		t.Errorf("MinRTT = %v, want ~40ms", rtt)
	}
}

func TestMultiStreamFairInterleaving(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	data, acks := links(&sim, 2*units.Mbps, 30*time.Millisecond)
	c := New(&sim, Config{}, data, acks)
	progress := map[int][]int64{}
	c.OnStreamDeliver = func(stream int, n int64) {
		progress[stream] = append(progress[stream], c.Delivered(stream))
	}
	c.WriteStream(1, 60*1500)
	c.WriteStream(2, 60*1500)
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if c.Delivered(1) != 60*1500 || c.Delivered(2) != 60*1500 {
		t.Fatal("streams incomplete")
	}
	// Both streams must progress during the transfer (round-robin), not
	// one after the other.
	if len(progress[1]) == 0 || len(progress[2]) == 0 {
		t.Fatal("no delivery callbacks")
	}
	// At the halfway point of stream 1, stream 2 must have made
	// substantial progress too.
	mid1 := progress[1][len(progress[1])/2]
	var s2AtMid int64
	for i, v := range progress[1] {
		if v >= mid1 {
			if i < len(progress[2]) {
				s2AtMid = progress[2][i]
			}
			break
		}
	}
	if s2AtMid < 10*1500 {
		t.Errorf("stream 2 had only %d bytes when stream 1 was halfway", s2AtMid)
	}
}

func TestLossRecovered(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	data, acks := links(&sim, 5*units.Mbps, 25*time.Millisecond)
	data.LossProb = 0.03
	data.RNG = rng.New(3)
	c := New(&sim, Config{}, data, acks)
	c.WriteStream(1, 400*1500)
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if got := c.Delivered(1); got != 400*1500 {
		t.Fatalf("delivered %d/%d under loss", got, 400*1500)
	}
	if c.Lost == 0 || c.Retransmits == 0 {
		t.Error("expected loss detection and retransmissions")
	}
}

func TestTailLossRecoveredByProbeTimeout(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	data, acks := links(&sim, 10*units.Mbps, 10*time.Millisecond)
	// Drop exactly the last data packet of the initial flight.
	dropped := false
	data.DropFn = func(p netsim.Packet) bool {
		if !dropped && p.Seq == 9 { // 10-packet initial window: pn 0..9
			dropped = true
			return true
		}
		return false
	}
	c := New(&sim, Config{}, data, acks)
	c.WriteStream(1, 10*1500)
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if got := c.Delivered(1); got != 10*1500 {
		t.Fatalf("tail loss never repaired: %d", got)
	}
}

// TestNoHeadOfLineBlockingAcrossStreams is the QUIC property the
// paper's footnote 1 implies: a loss on one stream must not delay
// another stream's delivery, unlike HTTP/2 over TCP where the byte
// stream stalls behind the hole.
func TestNoHeadOfLineBlockingAcrossStreams(t *testing.T) {
	runQUIC := func() (s2done time.Duration) {
		var sim netsim.Sim
		sim.MaxSteps = 1 << 22
		data, acks := links(&sim, 10*units.Mbps, 50*time.Millisecond)
		// Drop one early packet belonging to stream 1 only.
		dropped := false
		data.DropFn = func(p netsim.Packet) bool {
			if !dropped && p.SackLo == 1 && p.SackHi == 0 {
				dropped = true
				return true
			}
			return false
		}
		c := New(&sim, Config{}, data, acks)
		var done netsim.Time
		c.OnStreamDeliver = func(stream int, n int64) {
			if stream == 2 && c.Delivered(2) == 20*1500 {
				done = sim.Now()
			}
		}
		c.WriteStream(1, 20*1500)
		c.WriteStream(2, 20*1500)
		if !sim.Run() {
			t.Fatal("no convergence")
		}
		if c.Delivered(1) != 20*1500 || c.Delivered(2) != 20*1500 {
			t.Fatal("streams incomplete")
		}
		return done
	}

	runH2 := func() (s2done time.Duration) {
		// The same workload over a single TCP byte stream: stream 1's
		// bytes precede stream 2's interleaved chunks; drop stream 1's
		// first packet.
		var sim netsim.Sim
		sim.MaxSteps = 1 << 22
		fwd := &netsim.Link{Sim: &sim, Rate: 10 * units.Mbps, Delay: 50 * time.Millisecond}
		rev := &netsim.Link{Sim: &sim, Delay: 50 * time.Millisecond}
		dropped := false
		fwd.DropFn = func(p netsim.Packet) bool {
			if !dropped && !p.IsAck && p.Seq == 0 && p.Len > 0 {
				dropped = true
				return true
			}
			return false
		}
		conn := tcpsim.New(&sim, tcpsim.Config{}, fwd, rev)
		// Interleave the two responses in 1-MSS chunks, as HTTP/2 would.
		total := 0
		for i := 0; i < 20; i++ {
			conn.Write(1500) // stream 1 chunk
			conn.Write(1500) // stream 2 chunk
			total += 3000
		}
		var done netsim.Time
		conn.OnAllAcked = func() { done = sim.Now() }
		if !sim.Run() {
			t.Fatal("no convergence")
		}
		if conn.Acked() != int64(total) {
			t.Fatal("tcp transfer incomplete")
		}
		// Stream 2's last byte is only delivered when the whole byte
		// stream (behind the retransmitted hole) completes.
		return done
	}

	quicDone := runQUIC()
	h2Done := runH2()
	// QUIC's unaffected stream finishes promptly; the TCP byte stream
	// stalls behind the retransmission. The difference must be at least
	// one retransmission round trip.
	if quicDone+80*time.Millisecond > h2Done {
		t.Errorf("no HoL advantage: quic stream2 done at %v, h2 at %v", quicDone, h2Done)
	}
}

// TestEndToEndMeasurementByConstruction: there is no split point in a
// QUIC connection, so the sender's MinRTT is the true end-to-end RTT —
// unlike the split-TCP case (internal/pep) where it collapses to the
// server↔PEP segment.
func TestEndToEndMeasurementByConstruction(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	// The same asymmetric path as the PEP tests: 5ms "terrestrial" leg
	// plus 250ms "satellite" leg — one QUIC connection spans both.
	data := &netsim.Link{Sim: &sim, Rate: 10 * units.Mbps, Delay: 255 * time.Millisecond}
	acks := &netsim.Link{Sim: &sim, Delay: 255 * time.Millisecond}
	c := New(&sim, Config{}, data, acks)
	c.WriteStream(1, 50*1500)
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if rtt := c.MinRTT(); rtt < 510*time.Millisecond {
		t.Errorf("MinRTT = %v, want the full end-to-end 510ms", rtt)
	}
}

func TestZeroWrite(t *testing.T) {
	var sim netsim.Sim
	data, acks := links(&sim, units.Mbps, time.Millisecond)
	c := New(&sim, Config{}, data, acks)
	c.WriteStream(1, 0)
	sim.Run()
	if c.Delivered(1) != 0 {
		t.Error("zero write delivered bytes")
	}
}

func BenchmarkQUICTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sim netsim.Sim
		sim.MaxSteps = 1 << 22
		data, acks := links(&sim, 10*units.Mbps, 20*time.Millisecond)
		c := New(&sim, Config{}, data, acks)
		c.WriteStream(1, 200*1500)
		sim.Run()
		if c.Delivered(1) != 200*1500 {
			b.Fatal("incomplete")
		}
	}
}
