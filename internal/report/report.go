// Package report renders analysis results as aligned text tables and
// CDF series — the rows and curves the paper's tables and figures show,
// printed by cmd/edgereport and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Table writes an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CDF writes a named weighted-CDF as a quantile series: one line per
// sampled quantile, "q value".
func CDF(w io.Writer, name string, cdf *stats.WeightedCDF, points int) {
	fmt.Fprintf(w, "# %s (n_weight=%.0f)\n", name, cdf.Total())
	for _, p := range cdf.Series(points) {
		fmt.Fprintf(w, "%.3f\t%.4f\n", p.Weight, p.Value)
	}
}

// Quantiler is any sketch with quantile queries (t-digests, CDFs).
type Quantiler interface {
	Quantile(q float64) float64
}

// QuantileRow formats a standard set of quantiles from a sketch.
func QuantileRow(d Quantiler) string {
	qs := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99}
	parts := make([]string, len(qs))
	for i, q := range qs {
		parts[i] = fmt.Sprintf("p%02.0f=%s", q*100, F(d.Quantile(q)))
	}
	return strings.Join(parts, " ")
}

// F formats a float compactly, tolerating NaN.
func F(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}

// Frac formats a traffic fraction as the paper's tables do (".575").
func Frac(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	s := fmt.Sprintf("%.3f", v)
	return strings.TrimPrefix(s, "0")
}
