package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/tdigest"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, []string{"name", "value"}, [][]string{
		{"a", "1"},
		{"longer-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header: %q", lines[0])
	}
	// The "value" column must start at the same offset on every row.
	col := strings.Index(lines[0], "value")
	if lines[3][col:col+2] != "22" {
		t.Errorf("misaligned column: %q", lines[3])
	}
}

func TestTableExtraCells(t *testing.T) {
	var buf bytes.Buffer
	// More cells than headers must not panic.
	Table(&buf, []string{"a"}, [][]string{{"1", "2", "3"}})
	if !strings.Contains(buf.String(), "3") {
		t.Error("extra cells dropped")
	}
}

func TestCDFOutput(t *testing.T) {
	cdf := stats.NewWeightedCDF([]stats.WeightedPoint{
		{Value: 1, Weight: 1}, {Value: 5, Weight: 1},
	})
	var buf bytes.Buffer
	CDF(&buf, "test", cdf, 3)
	out := buf.String()
	if !strings.HasPrefix(out, "# test") {
		t.Errorf("missing header: %q", out)
	}
	if got := strings.Count(out, "\n"); got != 4 {
		t.Errorf("line count = %d", got)
	}
}

func TestQuantileRow(t *testing.T) {
	d := tdigest.New(100)
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	row := QuantileRow(d)
	if !strings.Contains(row, "p50=") || !strings.Contains(row, "p99=") {
		t.Errorf("QuantileRow = %q", row)
	}
}

func TestFormatters(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{F(1234.5), "1234"},
		{F(42.25), "42.2"},
		{F(1.23456), "1.235"},
		{F(math.NaN()), "n/a"},
		{Pct(0.0213), "2.1%"},
		{Pct(math.NaN()), "n/a"},
		{Frac(0.575), ".575"},
		{Frac(0.0), ".000"},
		{Frac(math.NaN()), "n/a"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("got %q, want %q", tt.got, tt.want)
		}
	}
}
