package flowsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/hdratio"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/validate"
)

func cleanPath(rtt time.Duration, bw units.Rate) Path {
	return Path{PropRTT: rtt, Bottleneck: bw}
}

func TestSingleRoundTransfer(t *testing.T) {
	r := rng.New(1)
	s := NewSession(cleanPath(60*time.Millisecond, 100*units.Mbps), Config{}, r)
	txn := s.Transfer(5 * 1500)
	if txn.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", txn.Rounds)
	}
	if txn.Observation.Bytes != 4*1500 {
		t.Errorf("corrected bytes = %d, want %d", txn.Observation.Bytes, 4*1500)
	}
	if txn.Observation.Wnic != 10*1500 {
		t.Errorf("Wnic = %d, want initial window", txn.Observation.Wnic)
	}
	// Duration ≈ propagation + partial serialization; at 100 Mbps the
	// serialization is sub-ms.
	if d := txn.Observation.Duration; d < 60*time.Millisecond || d > 65*time.Millisecond {
		t.Errorf("Duration = %v, want ~60ms", d)
	}
}

func TestMultiRoundGrowth(t *testing.T) {
	r := rng.New(2)
	s := NewSession(cleanPath(50*time.Millisecond, 1000*units.Mbps), Config{}, r)
	// 70 packets from IW10: rounds of 10, 20, 40 → 3 rounds.
	txn := s.Transfer(70 * 1500)
	if txn.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", txn.Rounds)
	}
	// cwnd after shipping full 10- and 20-packet windows doubles twice;
	// the final 40-packet round only used 40 of 40 → doubles again.
	if got := s.Cwnd() / 1500; got != 80 {
		t.Errorf("cwnd after transfer = %d pkts, want 80", got)
	}
}

func TestPartialWindowNoGrowth(t *testing.T) {
	r := rng.New(3)
	s := NewSession(cleanPath(50*time.Millisecond, 1000*units.Mbps), Config{}, r)
	s.Transfer(3 * 1500) // 3 packets of a 10-packet window
	if got := s.Cwnd() / 1500; got != 10 {
		t.Errorf("cwnd grew to %d pkts on a non-limited transfer", got)
	}
}

func TestCwndPersistsAcrossTransactions(t *testing.T) {
	r := rng.New(4)
	s := NewSession(cleanPath(60*time.Millisecond, 1000*units.Mbps), Config{}, r)
	s.Transfer(30 * 1500) // grows the window
	txn := s.Transfer(14 * 1500)
	if txn.Observation.Wnic <= 10*1500 {
		t.Errorf("second transaction Wnic = %d, want grown window", txn.Observation.Wnic)
	}
}

func TestBottleneckBoundsGoodput(t *testing.T) {
	r := rng.New(5)
	bw := 2 * units.Mbps
	s := NewSession(cleanPath(40*time.Millisecond, bw), Config{}, r)
	txn := s.Transfer(500 * 1500)
	goodput := units.RateOf(txn.Observation.Bytes, txn.Observation.Duration)
	if goodput > bw {
		t.Errorf("goodput %v exceeds bottleneck %v", goodput, bw)
	}
	if goodput < bw/2 {
		t.Errorf("goodput %v far below bottleneck %v for a large transfer", goodput, bw)
	}
}

func TestLossReducesWindowAndAddsRounds(t *testing.T) {
	clean := NewSession(cleanPath(50*time.Millisecond, 10*units.Mbps), Config{}, rng.New(6))
	lossPath := cleanPath(50*time.Millisecond, 10*units.Mbps)
	lossPath.LossProb = 0.05
	lossy := NewSession(lossPath, Config{}, rng.New(6))

	ct := clean.Transfer(300 * 1500)
	lt := lossy.Transfer(300 * 1500)
	if lt.LossEvents == 0 {
		t.Fatal("no loss events at 5% per-packet loss over 300 packets")
	}
	if lt.RawDuration <= ct.RawDuration {
		t.Errorf("lossy transfer (%v) not slower than clean (%v)", lt.RawDuration, ct.RawDuration)
	}
	if lossy.Cwnd() >= clean.Cwnd() {
		t.Errorf("lossy cwnd %d not below clean %d", lossy.Cwnd(), clean.Cwnd())
	}
}

func TestJitterStretchesRounds(t *testing.T) {
	base := cleanPath(50*time.Millisecond, 10*units.Mbps)
	jit := base
	jit.JitterMean = 20 * time.Millisecond
	var baseSum, jitSum time.Duration
	for i := 0; i < 50; i++ {
		b := NewSession(base, Config{}, rng.New(uint64(i)))
		j := NewSession(jit, Config{}, rng.New(uint64(i)))
		baseSum += b.Transfer(50 * 1500).RawDuration
		jitSum += j.Transfer(50 * 1500).RawDuration
	}
	if jitSum <= baseSum {
		t.Errorf("jitter did not stretch transfers: %v vs %v", jitSum, baseSum)
	}
}

func TestZeroTransfer(t *testing.T) {
	s := NewSession(cleanPath(50*time.Millisecond, units.Mbps), Config{}, rng.New(7))
	txn := s.Transfer(0)
	if txn.Observation.Bytes != 0 || txn.Rounds != 0 {
		t.Errorf("zero transfer produced %+v", txn)
	}
}

func TestMinRTTNearPropagation(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		s := NewSession(cleanPath(80*time.Millisecond, units.Mbps), Config{}, rng.New(seed))
		if s.MinRTT() < 80*time.Millisecond || s.MinRTT() > 95*time.Millisecond {
			t.Fatalf("MinRTT = %v, want 80ms + small residue", s.MinRTT())
		}
	}
}

func TestMaxCwndCap(t *testing.T) {
	s := NewSession(cleanPath(10*time.Millisecond, 1000*units.Mbps), Config{MaxCwndPackets: 64}, rng.New(8))
	s.Transfer(5000 * 1500)
	if got := s.Cwnd() / 1500; got > 64 {
		t.Errorf("cwnd %d pkts exceeds cap 64", got)
	}
}

// TestHDJudgmentsMatchConditions: sessions on fast paths must pass the
// HD check, sessions on slow paths must fail it.
func TestHDJudgmentsMatchConditions(t *testing.T) {
	eval := func(bw units.Rate, seed uint64) float64 {
		r := rng.New(seed)
		s := NewSession(cleanPath(40*time.Millisecond, bw), Config{}, r)
		var txns []hdratio.Transaction
		for i := 0; i < 5; i++ {
			txns = append(txns, s.Transfer(100*1500).Observation)
		}
		out := hdratio.Evaluate(hdratio.Session{MinRTT: s.MinRTT(), Transactions: txns}, hdratio.DefaultConfig())
		return out.HDratio()
	}
	if hd := eval(20*units.Mbps, 1); math.IsNaN(hd) || hd < 0.9 {
		t.Errorf("fast path HDratio = %v, want ~1", hd)
	}
	if hd := eval(1*units.Mbps, 2); math.IsNaN(hd) || hd > 0.2 {
		t.Errorf("1 Mbps path HDratio = %v, want ~0", hd)
	}
}

// TestAgreesWithPacketSimulator cross-checks the flow-level model's
// transfer durations against tcpsim on clean paths (the ablation the
// DESIGN calls out).
func TestAgreesWithPacketSimulator(t *testing.T) {
	cases := []struct {
		bw     units.Rate
		rtt    time.Duration
		sizePk int
	}{
		{2 * units.Mbps, 50 * time.Millisecond, 100},
		{5 * units.Mbps, 20 * time.Millisecond, 47},
		{1 * units.Mbps, 100 * time.Millisecond, 200},
		{3 * units.Mbps, 150 * time.Millisecond, 30},
	}
	for _, c := range cases {
		pkt := validate.RunOne(validate.Config{
			Bottleneck: c.bw, RTT: c.rtt, InitCwnd: 10, SizePkts: c.sizePk,
		})
		if pkt.Err != nil {
			t.Fatal(pkt.Err)
		}
		flow := NewSession(Path{PropRTT: c.rtt, Bottleneck: c.bw}, Config{}, rng.New(9))
		// Remove the handshake residue for a fair comparison.
		flow.minRTT = c.rtt
		ft := flow.Transfer(int64(c.sizePk) * 1500)
		rel := math.Abs(float64(ft.Observation.Duration-pkt.Ttotal)) / float64(pkt.Ttotal)
		if rel > 0.30 {
			t.Errorf("bw=%v rtt=%v size=%d: flow %v vs packet %v (rel %.2f)",
				c.bw, c.rtt, c.sizePk, ft.Observation.Duration, pkt.Ttotal, rel)
		}
	}
}

func BenchmarkTransfer(b *testing.B) {
	r := rng.New(1)
	path := Path{PropRTT: 50 * time.Millisecond, Bottleneck: 5 * units.Mbps, LossProb: 0.001, JitterMean: 2 * time.Millisecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSession(path, Config{}, r)
		s.Transfer(100 * 1500)
	}
}

func TestIdleRestartsWindow(t *testing.T) {
	r := rng.New(11)
	s := NewSession(cleanPath(40*time.Millisecond, 100*units.Mbps), Config{}, r)
	s.Transfer(200 * 1500) // grow far past the initial window
	if s.Cwnd() <= 10*1500 {
		t.Fatalf("window did not grow: %d", s.Cwnd())
	}
	// A short gap keeps the window; a long gap collapses it.
	txn := s.TransferAfterIdle(20*1500, 200*time.Millisecond)
	if txn.Observation.Wnic <= 10*1500 {
		t.Errorf("short idle collapsed the window: %d", txn.Observation.Wnic)
	}
	s.Transfer(200 * 1500)
	txn = s.TransferAfterIdle(20*1500, 30*time.Second)
	if txn.Observation.Wnic != 10*1500 {
		t.Errorf("long idle should restart from IW: Wnic=%d", txn.Observation.Wnic)
	}
}

// TestPolicedPathFailsHD reproduces §4's explanation for high-latency
// HD failures: a policer below the HD rate caps goodput even when the
// nominal access bandwidth is plentiful.
func TestPolicedPathFailsHD(t *testing.T) {
	policed := Path{
		PropRTT:     80 * time.Millisecond,
		Bottleneck:  50 * units.Mbps, // plenty of raw bandwidth
		PoliceRate:  1500 * units.Kbps,
		PoliceBurst: 20 * 1500,
	}
	s := NewSession(policed, Config{}, rng.New(13))
	var txns []hdratio.Transaction
	for i := 0; i < 4; i++ {
		txns = append(txns, s.Transfer(200*1500).Observation)
	}
	out := hdratio.Evaluate(hdratio.Session{MinRTT: s.MinRTT(), Transactions: txns}, hdratio.DefaultConfig())
	if out.Tested == 0 {
		t.Fatal("large transfers must test for HD")
	}
	if hd := out.HDratio(); hd > 0.3 {
		t.Errorf("policed path HDratio = %v, want ~0", hd)
	}
	// The same path without the policer passes.
	clean := policed
	clean.PoliceRate = 0
	s2 := NewSession(clean, Config{}, rng.New(13))
	txns = txns[:0]
	for i := 0; i < 4; i++ {
		txns = append(txns, s2.Transfer(200*1500).Observation)
	}
	out = hdratio.Evaluate(hdratio.Session{MinRTT: s2.MinRTT(), Transactions: txns}, hdratio.DefaultConfig())
	if hd := out.HDratio(); hd < 0.9 {
		t.Errorf("unpoliced path HDratio = %v, want ~1", hd)
	}
}
