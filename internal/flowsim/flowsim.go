// Package flowsim is the fast, flow-level transfer model used by the
// world generator: it produces the same per-transaction observations the
// load-balancer instrumentation captures (first-byte-to-NIC →
// second-to-last-ACK duration, cwnd at write time) without simulating
// individual packets.
//
// The model advances a transfer one round trip at a time: each round
// sends up to a congestion window of bytes, costs one propagation RTT
// plus serialization at the bottleneck plus jitter, and may suffer a
// loss event that halves the window and adds a recovery round. The
// congestion window persists across transactions within a session, as
// it does on a real connection — which is exactly the property the
// paper's Wstart chaining accounts for (§3.2.2).
//
// Package validate cross-checks this model against the packet-level
// simulator (tcpsim); the flow-level model trades ~three orders of
// magnitude of speed for small timing error, which is what makes the
// global study (Figures 6–10) runnable at dataset scale.
package flowsim

import (
	"time"

	"repro/internal/hdratio"
	"repro/internal/rng"
	"repro/internal/units"
)

// Path describes network conditions between a PoP and a client for one
// session. Bottleneck should already reflect the narrowest constraint
// (access link, policer, or congested interconnect).
type Path struct {
	// PropRTT is the round-trip propagation delay.
	PropRTT time.Duration
	// Bottleneck is the available bandwidth at the path bottleneck.
	Bottleneck units.Rate
	// LossProb is the per-packet loss probability.
	LossProb float64
	// JitterMean, when positive, adds an exponentially distributed
	// extra delay to each round trip (cross traffic, scheduling).
	JitterMean time.Duration
	// BottleneckSigma, when positive, varies the effective bottleneck
	// rate per transfer (log-normal multiplier): wireless links and
	// cross traffic make available bandwidth fluctuate within a
	// session, which is what produces partial HDratios.
	BottleneckSigma float64
	// PoliceRate and PoliceBurst model a token-bucket traffic policer
	// on the path (§4's "loss and traffic policing" barrier): any round
	// trip whose window exceeds the bucket suffers a policing loss.
	PoliceRate  units.Rate
	PoliceBurst int64
}

// Config tunes the transfer model.
type Config struct {
	// MSS is the segment size (default units.DefaultMSS).
	MSS int
	// InitCwndPackets is the initial window (default 10).
	InitCwndPackets int
	// MaxCwndPackets caps window growth (receive window / buffer limits;
	// default 1024 packets).
	MaxCwndPackets int
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = units.DefaultMSS
	}
	if c.InitCwndPackets <= 0 {
		c.InitCwndPackets = 10
	}
	if c.MaxCwndPackets <= 0 {
		c.MaxCwndPackets = 1024
	}
	return c
}

// Session is one connection's transfer state. Create with NewSession;
// call Transfer for each transaction in order.
type Session struct {
	cfg  Config
	path Path
	r    *rng.RNG

	cwnd     int64
	ssthresh int64
	minRTT   time.Duration

	// policeTokens carries the token-bucket state across rounds and
	// transfers.
	policeTokens int64
}

// NewSession starts a connection over the given path.
func NewSession(path Path, cfg Config, r *rng.RNG) *Session {
	cfg = cfg.withDefaults()
	s := &Session{
		cfg:      cfg,
		path:     path,
		r:        r,
		cwnd:     int64(cfg.InitCwndPackets * cfg.MSS),
		ssthresh: int64(cfg.MaxCwndPackets*cfg.MSS) * 4,
	}
	// The transport's first RTT sample comes from the handshake; MinRTT
	// sits at the propagation floor plus a small queueing residue.
	s.minRTT = path.PropRTT + time.Duration(r.Exponential(float64(time.Millisecond)))
	s.policeTokens = path.PoliceBurst
	return s
}

// MinRTT returns the session's minimum observed RTT (§3.1).
func (s *Session) MinRTT() time.Duration { return s.minRTT }

// Cwnd returns the current congestion window in bytes.
func (s *Session) Cwnd() int64 { return s.cwnd }

// Txn is the observation a transfer produces: the corrected transaction
// record the methodology consumes, plus the raw wall-clock duration used
// for busy-time accounting.
type Txn struct {
	// Observation is the delayed-ACK-corrected record (§3.2.5): Bytes
	// excludes the final packet; Duration ends at the ACK covering the
	// second-to-last packet.
	Observation hdratio.Transaction
	// RawDuration is first byte written to last byte acknowledged.
	RawDuration time.Duration
	// Rounds is the number of round trips the transfer took.
	Rounds int
	// LossEvents counts window reductions during the transfer.
	LossEvents int
}

// idleRestartThreshold approximates the kernel's slow-start-after-idle
// rule (RFC 2861): a connection idle for longer than its RTO restarts
// from the initial window. This is one of the two reasons the measured
// Wnic can be far below the ideal chained Wstart (§3.2.2) — the other
// being loss.
const idleRestartThreshold = time.Second

// TransferAfterIdle is Transfer preceded by an idle gap: gaps longer
// than the restart threshold collapse the congestion window back to the
// initial window, as Linux does by default.
func (s *Session) TransferAfterIdle(bytes int64, idle time.Duration) Txn {
	if idle > idleRestartThreshold {
		iw := int64(s.cfg.InitCwndPackets * s.cfg.MSS)
		if s.cwnd > iw {
			s.cwnd = iw
		}
	}
	// The policer's bucket refills during the idle gap.
	if s.path.PoliceRate > 0 && idle > 0 {
		s.policeTokens += s.path.PoliceRate.BytesIn(idle)
		if s.policeTokens > s.path.PoliceBurst {
			s.policeTokens = s.path.PoliceBurst
		}
	}
	return s.Transfer(bytes)
}

// Transfer sends bytes over the session and returns the observation.
// Transfers are sequential: each begins after the previous finished (the
// world generator coalesces or discards overlapping transactions the
// same way the capture rules do).
func (s *Session) Transfer(bytes int64) Txn {
	mss := int64(s.cfg.MSS)
	out := Txn{Observation: hdratio.Transaction{Bytes: 0, Wnic: s.cwnd}}
	if bytes <= 0 {
		return out
	}
	lastPkt := bytes % mss
	if lastPkt == 0 {
		lastPkt = mss
	}
	corrected := bytes - lastPkt

	bottleneck := s.path.Bottleneck
	if s.path.BottleneckSigma > 0 {
		bottleneck = units.Rate(s.r.LogNormalMedian(float64(bottleneck), s.path.BottleneckSigma))
	}

	maxCwnd := int64(s.cfg.MaxCwndPackets) * mss
	var elapsed time.Duration
	var correctedAt time.Duration // time when byte `corrected` is acked
	var sent int64

	for sent < bytes {
		w := s.cwnd
		if w > bytes-sent {
			w = bytes - sent
		}
		// Policing: the bucket refills at PoliceRate over a round trip.
		// Bytes beyond the available tokens are dropped by the policer
		// and retransmitted, which at the flow level is equivalent to
		// serializing the excess at the policing rate.
		var policedExcess int64
		policeLost := false
		if s.path.PoliceRate > 0 {
			s.policeTokens += s.path.PoliceRate.BytesIn(s.path.PropRTT)
			if s.policeTokens > s.path.PoliceBurst {
				s.policeTokens = s.path.PoliceBurst
			}
			if w > s.policeTokens {
				policedExcess = w - s.policeTokens
				s.policeTokens = 0
				policeLost = true
			} else {
				s.policeTokens -= w
			}
		}

		// Round cost: propagation + serialization of this round's bytes
		// at the bottleneck (policed excess at the policing rate) + jitter.
		unpoliced := w - policedExcess
		round := s.path.PropRTT + bottleneck.TimeFor(unpoliced+units.ByteOverheadFor(unpoliced, s.cfg.MSS))
		if policedExcess > 0 {
			round += s.path.PoliceRate.TimeFor(policedExcess + units.ByteOverheadFor(policedExcess, s.cfg.MSS))
		}
		if s.path.JitterMean > 0 {
			round += time.Duration(s.r.Exponential(float64(s.path.JitterMean)))
		}

		// Loss: each packet in the round drops independently; any loss
		// triggers one window reduction and a recovery round trip.
		pkts := units.Packets(w, s.cfg.MSS)
		lost := policeLost
		if !lost && s.path.LossProb > 0 {
			pLossRound := 1 - pow1m(s.path.LossProb, pkts)
			lost = s.r.Bool(pLossRound)
		}

		prevSent := sent
		sent += w
		out.Rounds++

		if correctedAt == 0 && corrected > prevSent && corrected <= sent {
			// The ACK covering the second-to-last packet arrives at the
			// end of this round, minus the tail serialization of the
			// final packet when both are in the same round.
			frac := float64(corrected-prevSent) / float64(w)
			partial := s.path.PropRTT + time.Duration(float64(bottleneck.TimeFor(w))*frac)
			correctedAt = elapsed + partial
		} else if correctedAt == 0 && corrected <= prevSent {
			correctedAt = elapsed
		}

		elapsed += round

		if lost {
			out.LossEvents++
			s.ssthresh = s.cwnd / 2
			if s.ssthresh < 2*mss {
				s.ssthresh = 2 * mss
			}
			s.cwnd = s.ssthresh
			// Recovery costs an extra round trip before progress resumes.
			elapsed += s.path.PropRTT
			out.Rounds++
			continue
		}
		// Growth (byte counting, cwnd-limited whenever the transfer used
		// the whole window).
		if w == s.cwnd {
			if s.cwnd < s.ssthresh {
				s.cwnd *= 2
			} else {
				s.cwnd += mss
			}
			if s.cwnd > maxCwnd {
				s.cwnd = maxCwnd
			}
		}
	}
	if correctedAt == 0 {
		correctedAt = elapsed
	}

	out.Observation.Bytes = corrected
	out.Observation.Duration = correctedAt
	out.RawDuration = elapsed
	return out
}

// pow1m returns (1-p)^n without math.Pow in the hot path.
func pow1m(p float64, n int) float64 {
	q := 1 - p
	out := 1.0
	for n > 0 {
		if n&1 == 1 {
			out *= q
		}
		q *= q
		n >>= 1
	}
	return out
}
