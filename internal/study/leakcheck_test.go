package study

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/segstore"
)

// TestMain runs the whole study suite — golden reports, chaos runs,
// sharded/columnar equivalence — under segstore leak-check mode and
// asserts the batch ownership invariant afterwards: every pooled column
// batch acquired by any run (including poisoned chaos runs and their
// drained error paths) was released exactly once. Poisoning also makes
// any use-after-Release read garbage loudly, so a stale view corrupts a
// golden report instead of passing silently.
func TestMain(m *testing.M) {
	segstore.SetLeakCheck(true)
	code := m.Run()
	if out, dbl := segstore.LeakStats(); code == 0 && (out != 0 || dbl != 0) {
		fmt.Fprintf(os.Stderr, "segstore leak check: %d outstanding batches, %d double releases after study tests\n", out, dbl)
		code = 1
	}
	os.Exit(code)
}

// Regression for the feedColumns error paths: a fail-fast fault plan
// poisons the sharded columnar pipeline mid-run, which used to strand
// (1) the view feedColumns had cut just before its shard Send failed —
// Slice retains the parent, so the root batch leaked with it — and
// (2) every view buffered in the shard streams and every batch parked
// in the scanner's reorder window. All of them must be released.
func TestFromSegmentsFailFastReleasesAllBatches(t *testing.T) {
	cfg := detCfg()
	cfg.Days = 2
	_, dir := writeBothFormats(t, cfg)

	before, dblBefore := segstore.LeakStats()
	for _, workers := range []int{1, 2, 4} {
		_, err := FromSegments(context.Background(), dir, Options{
			Workers: workers, Plan: mustPlan(t, "seed=11;sink-permanent=0.01"), FailFast: true,
		})
		if err == nil {
			t.Fatalf("workers=%d: fail-fast run with permanent sink faults did not fail", workers)
		}
		out, dbl := segstore.LeakStats()
		if out != before {
			t.Fatalf("workers=%d: outstanding batches = %d, want %d — poisoned run leaked", workers, out, before)
		}
		if dbl != dblBefore {
			t.Fatalf("workers=%d: double releases = %d, want %d — error paths released a batch twice", workers, dbl, dblBefore)
		}
	}
}
