// Package study orchestrates the full measurement study: it runs the
// synthetic world through the collection pipeline, aggregates per
// §3.3, and executes every analysis in the paper's evaluation —
// producing the data behind Figures 1–3 and 6–10 and Tables 1–2.
// cmd/edgereport, the examples, and the benchmark harness all drive
// this package.
package study

import (
	"errors"
	"io"
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/world"
)

// ReadCounter wraps r so every byte read bumps the
// study_read_bytes_total counter on reg — with the samples counter this
// puts dataset read throughput (samples/s, MB/s) on the obs progress
// line. reg may be nil (no-op wrap).
func ReadCounter(r io.Reader, reg *obs.Registry) io.Reader {
	return &countingReader{r: r, c: reg.Counter("study_read_bytes_total")}
}

type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}

// Thresholds used throughout the paper's tables.
var (
	// Table1DegMinRTTMs are the degradation thresholds (ms).
	Table1DegMinRTTMs = []float64{5, 10, 20, 50}
	// Table1DegHD are the HDratio degradation thresholds.
	Table1DegHD = []float64{0.05, 0.1, 0.2, 0.5}
	// Table1OppMinRTTMs are the opportunity thresholds (ms).
	Table1OppMinRTTMs = []float64{5, 10}
	// Table1OppHD is the HDratio opportunity threshold.
	Table1OppHD = []float64{0.05}
)

// Results bundles every analysis output for one dataset.
type Results struct {
	Cfg       world.Config
	Collector collector.Stats
	Overview  *analysis.Overview
	Store     *agg.Store

	DegMinRTT analysis.DegradationResult
	DegHD     analysis.DegradationResult
	OppMinRTT analysis.OpportunityResult
	OppHD     analysis.OpportunityResult

	Table1DegMinRTT analysis.ClassTable
	Table1DegHD     analysis.ClassTable
	Table1OppMinRTT analysis.ClassTable
	Table1OppHD     analysis.ClassTable

	Table2MinRTT analysis.RelationshipTable
	Table2HD     analysis.RelationshipTable

	// Coverage is the graceful-degradation ledger of a chaos run (nil
	// when no fault plan was active): what was lost, quarantined, and
	// retried. Rendered as its own report section so degraded results
	// are labeled, never silent.
	Coverage *faults.Coverage

	// Elapsed is wall-clock generation+analysis time.
	Elapsed time.Duration
}

// FromSamples runs every analysis over an existing dataset stream (for
// example one written by cmd/edgesim) instead of generating one. The
// dataset's shape — window count, and therefore the day count the
// temporal classifier needs — is inferred from the samples.
func FromSamples(r *sample.Reader) (*Results, error) { return FromSamplesObs(r, nil) }

// FromSamplesObs is FromSamples with pipeline metrics registered on reg
// (which may be nil).
func FromSamplesObs(r *sample.Reader, reg *obs.Registry) (*Results, error) {
	return FromSamplesOpt(r, Options{Workers: 1, Reg: reg})
}

// FromSamplesOpt is the sequential dataset-replay oracle with the full
// option set: opt.Filter drops rows before they reach the collector —
// the same row predicate the segment scanner pushes down, which is what
// keeps a filtered JSONL report byte-identical to the filtered segment
// report over the same dataset.
func FromSamplesOpt(r *sample.Reader, opt Options) (*Results, error) {
	start := startTimer()
	reg := opt.Reg
	store := agg.NewStore()
	store.Instrument(reg)
	overview := analysis.NewOverview()
	overview.Instrument(reg)
	col := collector.New(
		collector.StoreSink(store),
		collector.FuncSink(overview.Add),
	)
	col.Instrument(reg)
	read := reg.Span(obs.L("study_stage_seconds", "stage", "read"), "study")
	cSamples := reg.Counter("study_samples_read_total")
	sp := read.Start()
	for {
		s, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		cSamples.Inc()
		if !opt.Filter.Match(&s) {
			continue
		}
		col.Offer(s)
	}
	sp.End()
	res := &Results{
		Cfg:       inferredCfg(store),
		Collector: col.Stats(),
		Overview:  overview,
		Store:     store,
	}
	res.analyse(reg)
	res.Elapsed = elapsedSince(start)
	return res, nil
}

// inferredCfg reconstructs a world.Config from an aggregated store —
// the shape a replay run (JSONL or segments) reports when the dataset
// arrives without one. Days counts from the first covered window, not
// window zero: TotalWindows is an absolute high-water mark, so a -from
// filter that prunes the leading day would otherwise inflate the day
// count the temporal classifier keys on. Every replay path infers
// through this one helper, which is part of what keeps filtered reports
// byte-identical across dataset formats.
func inferredCfg(store *agg.Store) world.Config {
	covered := store.TotalWindows - store.FirstWindow()
	days := (covered + world.WindowsPerDay - 1) / world.WindowsPerDay
	if days < 1 {
		days = 1
	}
	cfg := world.Config{Groups: store.Len(), Days: days}
	// The inferred config must report the true window count.
	cfg.SessionsPerGroupWindow = float64(store.TotalSamples) / float64(max(1, store.Len()*store.TotalWindows))
	return cfg
}

// RunDeaggregation generates one dataset and aggregates it at both the
// paper's granularity (BGP prefix) and subnet granularity, returning
// the §3.3 tradeoff measurement alongside the standard results.
func RunDeaggregation(cfg world.Config) (*Results, analysis.DeaggregationResult) {
	start := startTimer()
	w := world.New(cfg)
	store := agg.NewStore()
	fine := agg.NewStore()
	overview := analysis.NewOverview()
	fineSink := analysis.DeaggregateSink(fine)
	col := collector.New(
		collector.StoreSink(store),
		collector.FuncSink(func(s sample.Sample) { overview.Add(s); fineSink(s) }),
	)
	w.Generate(col.Offer)
	res := &Results{
		Cfg:       w.Cfg,
		Collector: col.Stats(),
		Overview:  overview,
		Store:     store,
	}
	res.analyse(nil)
	res.Elapsed = elapsedSince(start)
	return res, analysis.CompareDeaggregation(store, fine)
}

// Run generates the dataset for cfg and runs every analysis.
func Run(cfg world.Config) *Results { return RunObs(cfg, nil) }

// RunObs is Run with the whole pipeline instrumented on reg (which may
// be nil): world generation, collection, aggregation, and per-analysis
// durations all report through it.
func RunObs(cfg world.Config, reg *obs.Registry) *Results {
	start := startTimer()
	w := world.New(cfg)
	w.Instrument(reg)

	store := agg.NewStore()
	store.Instrument(reg)
	overview := analysis.NewOverview()
	overview.Instrument(reg)
	col := collector.New(
		collector.StoreSink(store),
		collector.FuncSink(overview.Add),
	)
	col.Instrument(reg)
	w.Generate(col.Offer)

	res := &Results{
		Cfg:       w.Cfg,
		Collector: col.Stats(),
		Overview:  overview,
		Store:     store,
	}
	res.analyse(reg)
	res.Elapsed = elapsedSince(start)
	return res
}

// analyse runs the §5/§6 analyses over the aggregated store, timing
// each one on reg (which may be nil).
func (r *Results) analyse(reg *obs.Registry) {
	params := analysis.DefaultClassifyParams(r.Cfg.Days)
	// Use the dataset's true window span (matters for datasets loaded
	// from disk, whose length is inferred rather than configured).
	windows := r.Store.TotalWindows
	if windows == 0 {
		windows = r.Cfg.Windows()
	}

	timed := func(name string, f func()) {
		reg.Span(obs.L("analysis_seconds", "analysis", name), "analyse").Time(f)
	}
	timed("degradation_minrtt", func() { r.DegMinRTT = analysis.Degradation(r.Store, analysis.MetricMinRTT) })
	timed("degradation_hdratio", func() { r.DegHD = analysis.Degradation(r.Store, analysis.MetricHDratio) })
	timed("opportunity_minrtt", func() { r.OppMinRTT = analysis.Opportunity(r.Store, analysis.MetricMinRTT) })
	timed("opportunity_hdratio", func() { r.OppHD = analysis.Opportunity(r.Store, analysis.MetricHDratio) })

	timed("classify", func() {
		r.Table1DegMinRTT = r.DegMinRTT.Classify(windows, params, Table1DegMinRTTMs)
		r.Table1DegHD = r.DegHD.Classify(windows, params, Table1DegHD)
		// Table 1 writes the MinRTT opportunity thresholds as −5/−10 ms (the
		// alternate is lower); our diffs are oriented positive-is-better, so
		// the thresholds are passed as positive magnitudes.
		r.Table1OppMinRTT = r.OppMinRTT.Classify(windows, params, Table1OppMinRTTMs)
		r.Table1OppHD = r.OppHD.Classify(windows, params, Table1OppHD)
	})
	timed("relationships", func() {
		r.Table2MinRTT = r.OppMinRTT.Relationships(5)
		r.Table2HD = r.OppHD.Relationships(0.05)
	})
}
