package study

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/world"
)

var (
	resOnce sync.Once
	res     *Results
)

// fullStudy runs a dense 5-day dataset once; dense windows are needed
// so per-window per-route aggregations clear the 30-sample floor.
func fullStudy(t testing.TB) *Results {
	t.Helper()
	if testing.Short() {
		t.Skip("full study skipped in -short mode")
	}
	resOnce.Do(func() {
		res = Run(world.Config{
			Seed:                   42,
			Groups:                 30,
			Days:                   5,
			SessionsPerGroupWindow: 110,
		})
	})
	return res
}

func TestStudyCollectorFiltering(t *testing.T) {
	r := fullStudy(t)
	share := float64(r.Collector.FilteredHosting) / float64(r.Collector.Received)
	if share < 0.01 || share > 0.04 {
		t.Errorf("hosting filter share = %v, want ~0.02", share)
	}
	if r.Collector.Accepted != r.Store.TotalSamples {
		t.Errorf("store samples %d != accepted %d", r.Store.TotalSamples, r.Collector.Accepted)
	}
}

// TestFig8DegradationShape: the vast majority of traffic sees minimal
// degradation; ~10% sees ≥4 ms; the tail is small (§5).
func TestFig8DegradationShape(t *testing.T) {
	r := fullStudy(t)
	cov := float64(r.DegMinRTT.CoveredBytes) / float64(r.DegMinRTT.TotalBytes)
	if cov < 0.55 {
		t.Errorf("degradation coverage = %v, want most traffic valid", cov)
	}
	cdf, _, _ := r.DegMinRTT.CDF()
	at4 := cdf.FractionAbove(4)
	if at4 < 0.01 || at4 > 0.30 {
		t.Errorf("traffic with ≥4ms degradation = %v, paper ~0.10", at4)
	}
	at20 := cdf.FractionAbove(20)
	if at20 > at4/2 {
		t.Errorf("≥20ms share (%v) should be far below ≥4ms share (%v)", at20, at4)
	}
	// Median degradation near zero.
	if med := cdf.Quantile(0.5); med > 3 {
		t.Errorf("median degradation = %vms, want ~0", med)
	}
}

func TestTable1DegradationStructure(t *testing.T) {
	r := fullStudy(t)
	tbl := r.Table1DegMinRTT
	uneventful := tbl.Overall[analysis.Uneventful][0]
	if uneventful.GroupTrafficShare < 0.30 {
		t.Errorf("uneventful share at 5ms = %v, paper .575", uneventful.GroupTrafficShare)
	}
	// Group shares at a threshold sum to ≤1 (unclassified excluded).
	var sum float64
	for _, class := range analysis.Classes {
		sum += tbl.Overall[class][0].GroupTrafficShare
	}
	if sum < 0.6 || sum > 1.001 {
		t.Errorf("class shares sum to %v", sum)
	}
	// Higher thresholds shrink the degraded classes.
	for _, class := range []analysis.Class{analysis.Diurnal, analysis.Episodic, analysis.Continuous} {
		lo := tbl.Overall[class][0].EventTrafficShare
		hi := tbl.Overall[class][len(tbl.Thresholds)-1].EventTrafficShare
		if hi > lo+1e-9 {
			t.Errorf("%v event share grew with threshold: %v → %v", class, lo, hi)
		}
	}
}

// TestFig9OpportunityShape: default routing is close to optimal (§6.2).
func TestFig9OpportunityShape(t *testing.T) {
	r := fullStudy(t)
	within := r.OppMinRTT.FractionWithinOfOptimal(3)
	if within < 0.60 {
		t.Errorf("within 3ms of optimal = %v, paper 0.839", within)
	}
	imp5 := r.OppMinRTT.FractionImprovableAtLeast(5)
	if imp5 < 0.001 || imp5 > 0.12 {
		t.Errorf("improvable ≥5ms = %v, paper 0.020", imp5)
	}
	impHD := r.OppHD.FractionImprovableAtLeast(0.05)
	if impHD > 0.05 {
		t.Errorf("HD improvable = %v, paper 0.002", impHD)
	}
	// HD opportunity is rarer than MinRTT opportunity (destination
	// congestion is shared across routes).
	if impHD > imp5 {
		t.Errorf("HD opportunity (%v) exceeds MinRTT opportunity (%v)", impHD, imp5)
	}
}

func TestFig9DifferencesConcentratedNearZero(t *testing.T) {
	r := fullStudy(t)
	cdf, _, _ := r.OppMinRTT.CDF()
	if cdf.Total() == 0 {
		t.Fatal("no valid opportunity comparisons")
	}
	med := cdf.Quantile(0.5)
	if med < -8 || med > 2 {
		t.Errorf("median preferred-vs-alternate diff = %v, want near/below 0", med)
	}
	// Skew: the preferred route is more often better (more mass below 0).
	below := cdf.FractionAtOrBelow(0)
	if below < 0.5 {
		t.Errorf("preferred better for only %v of traffic", below)
	}
}

func TestTable2RelationshipStructure(t *testing.T) {
	r := fullStudy(t)
	tbl := r.Table2MinRTT
	if tbl.TotalEventBytes == 0 {
		t.Skip("no opportunity events in this draw")
	}
	// Opportunity pairs must have peer or transit preferred routes and
	// account fully for event traffic.
	var sum int64
	for pair, ro := range tbl.Pairs {
		sum += ro.EventBytes
		if ro.LongerBytes > ro.EventBytes || ro.PrependedBytes > ro.EventBytes {
			t.Errorf("pair %v accounting exceeds event bytes", pair)
		}
	}
	if sum != tbl.TotalEventBytes {
		t.Errorf("pair bytes %d != total %d", sum, tbl.TotalEventBytes)
	}
}

func TestFig10PeeringUsuallyBetter(t *testing.T) {
	r := fullStudy(t)
	cdfs := analysis.CompareRelationships(r.Store, analysis.MetricMinRTT)
	pvt, ok := cdfs[analysis.PeeringVsTransit]
	if !ok || pvt.Total() == 0 {
		t.Fatal("no peering-vs-transit comparisons")
	}
	// Peer routes are usually better: most mass at diff ≤ 0 (the
	// distribution is left-shifted, §6.3).
	if below := pvt.FractionAtOrBelow(0); below < 0.5 {
		t.Errorf("preferred peer better for only %v of traffic", below)
	}
}

func TestOverviewAnchorsInStudy(t *testing.T) {
	r := fullStudy(t)
	o := r.Overview
	med := o.MinRTT.Quantile(0.5)
	if med < 25 || med > 55 {
		t.Errorf("global MinRTT median = %v ms, paper 39", med)
	}
	if pos := o.HDPositiveShare(); pos < 0.70 || pos > 0.95 {
		t.Errorf("HDratio>0 share = %v, paper 0.82", pos)
	}
	// The naive baseline underestimates the corrected median (§4).
	if o.SimpleApproachMedian() > o.HD.Quantile(0.5) {
		t.Errorf("naive median %v above corrected %v", o.SimpleApproachMedian(), o.HD.Quantile(0.5))
	}
}

func TestWriteReportRenders(t *testing.T) {
	r := fullStudy(t)
	var buf bytes.Buffer
	r.WriteReport(&buf)
	out := buf.String()
	for _, want := range []string{
		"Traffic characteristics", "Global performance", "Figure 7",
		"Degradation (Figure 8)", "Table 1", "Opportunity (Figure 9)",
		"Table 2", "Peer vs transit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestRelPairName(t *testing.T) {
	p := RelPairName{Pref: bgp.PrivatePeer, Alt: bgp.Transit}
	if p.String() != "Private -> Transit" {
		t.Errorf("RelPairName = %q", p.String())
	}
}
