package study

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/collector"
	"repro/internal/sample"
	"repro/internal/world"
)

// detCfg is small enough for -race yet dense enough that every stage
// (filter, aggregation, classification, tables) has real work: ~45k
// samples over 17 groups with populated alternate routes.
func detCfg() world.Config {
	return world.Config{Seed: 1234, Groups: 17, Days: 1, SessionsPerGroupWindow: 28}
}

// renderNormalized renders the full report with the wall-clock line
// neutralised — Elapsed is the one field that legitimately differs
// between two runs of the same study.
func renderNormalized(t *testing.T, r *Results) []byte {
	t.Helper()
	r.Elapsed = 0
	var b bytes.Buffer
	r.WriteReport(&b)
	return b.Bytes()
}

// The tentpole guarantee: the sharded pipeline's rendered report is
// byte-identical to the sequential (-workers 1) oracle on the same
// seed. Everything feeds this — per-group order preservation in
// generation, key-partitioned shard stores, the exact store merge, and
// the ordered Overview fold.
func TestShardedRunReportByteIdentical(t *testing.T) {
	seqRes, err := RunCtx(context.Background(), detCfg(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq := renderNormalized(t, seqRes)
	if len(seq) == 0 {
		t.Fatal("sequential report is empty")
	}
	for _, workers := range []int{2, 4, 7} {
		res, err := RunCtx(context.Background(), detCfg(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Collector != seqRes.Collector {
			t.Errorf("workers=%d: collector stats %+v != sequential %+v", workers, res.Collector, seqRes.Collector)
		}
		got := renderNormalized(t, res)
		if !bytes.Equal(got, seq) {
			t.Fatalf("workers=%d report differs from sequential:\n%s", workers, firstDiff(got, seq))
		}
	}
}

// The dataset-replay path has the same guarantee: FromStream at any
// worker count must render byte-identically to FromSamples over the
// same bytes.
func TestFromStreamReportByteIdentical(t *testing.T) {
	// Write a dataset the way cmd/edgesim does: through the collector's
	// hosting filter, in generation order.
	var data bytes.Buffer
	w := world.New(detCfg())
	col := collector.New(collector.WriterSink(sample.NewWriter(&data)))
	w.Generate(col.Offer)
	if err := col.Err(); err != nil {
		t.Fatal(err)
	}

	seqRes, err := FromSamples(sample.NewReader(bytes.NewReader(data.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	seq := renderNormalized(t, seqRes)

	for _, workers := range []int{2, 4} {
		res, err := FromStream(context.Background(), bytes.NewReader(data.Bytes()), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Collector != seqRes.Collector {
			t.Errorf("workers=%d: collector stats %+v != sequential %+v", workers, res.Collector, seqRes.Collector)
		}
		got := renderNormalized(t, res)
		if !bytes.Equal(got, seq) {
			t.Fatalf("workers=%d FromStream report differs from FromSamples:\n%s", workers, firstDiff(got, seq))
		}
	}
}

// The legacy Run entry point (parallel generation, sequential ingest)
// must agree with both pipeline modes — it remains the API the examples
// and benchmarks use.
func TestLegacyRunMatchesPipeline(t *testing.T) {
	legacy := Run(detCfg())
	piped, err := RunCtx(context.Background(), detCfg(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderNormalized(t, legacy), renderNormalized(t, piped)) {
		t.Fatal("legacy Run report differs from sharded pipeline report")
	}
}

// firstDiff renders the first differing line for debuggable failures.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return "line " + itoa(i+1) + ":\n  got:  " + string(gl[i]) + "\n  want: " + string(wl[i])
		}
	}
	return "line counts differ: got " + itoa(len(gl)) + ", want " + itoa(len(wl))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
