package study

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/sample"
	"repro/internal/segstore"
	"repro/internal/world"
)

// writeBothFormats renders one dataset as JSONL bytes and as a segment
// directory, the way cmd/edgesim and segcat would.
func writeBothFormats(t *testing.T, cfg world.Config) ([]byte, string) {
	t.Helper()
	var data bytes.Buffer
	w := world.New(cfg)
	col := collector.New(collector.WriterSink(sample.NewWriter(&data)))
	w.Generate(col.Offer)
	if err := col.Err(); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ds.seg")
	sw, err := segstore.Create(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := segstore.ConvertJSONL(bytes.NewReader(data.Bytes()), sw, segstore.ConvertOptions{}); err != nil {
		t.Fatal(err)
	}
	return data.Bytes(), dir
}

// The segment path's core guarantee: FromSegments renders a report
// byte-identical to FromSamples over the same dataset, at every worker
// count — and with a filter pushed down, byte-identical to the filtered
// JSONL paths.
func TestFromSegmentsReportByteIdentical(t *testing.T) {
	cfg := detCfg()
	cfg.Days = 2 // so the time filter crosses a segment-span boundary
	data, dir := writeBothFormats(t, cfg)

	filters := []*segstore.Filter{
		nil,
		{From: 6 * time.Hour, To: 30 * time.Hour},
		{Countries: []string{"US", "BR"}},
	}
	for _, f := range filters {
		seqRes, err := FromSamplesOpt(sample.NewReader(bytes.NewReader(data)), Options{Workers: 1, Filter: f})
		if err != nil {
			t.Fatal(err)
		}
		seq := renderNormalized(t, seqRes)
		if len(seq) == 0 {
			t.Fatal("sequential report is empty")
		}

		for _, workers := range []int{1, 2, 4} {
			res, err := FromSegments(context.Background(), dir, Options{Workers: workers, Filter: f})
			if err != nil {
				t.Fatalf("filter=%v workers=%d: %v", f, workers, err)
			}
			if res.Collector != seqRes.Collector {
				t.Errorf("filter=%v workers=%d: collector stats %+v != sequential %+v", f, workers, res.Collector, seqRes.Collector)
			}
			if got := renderNormalized(t, res); !bytes.Equal(got, seq) {
				t.Fatalf("filter=%v workers=%d: FromSegments report differs from FromSamples:\n%s", f, workers, firstDiff(got, seq))
			}
		}

		// The filtered sharded JSONL path must agree too.
		res, err := FromStream(context.Background(), bytes.NewReader(data), Options{Workers: 3, Filter: f})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderNormalized(t, res); !bytes.Equal(got, seq) {
			t.Fatalf("filter=%v: filtered FromStream report differs from FromSamples:\n%s", f, firstDiff(got, seq))
		}
	}
}
