package study

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/segstore"
	"repro/internal/trace"
	"repro/internal/world"
)

// The columnar aggregation property: over randomized corpora, filters,
// and worker counts, the batch path's report is byte-identical to the
// row oracle's (opt.RowOracle) and to the sequential JSONL replay of
// the same dataset. This is the acceptance test of the row-free read
// path — one diverging digest flush, misordered run, or filter
// disagreement anywhere between segment decode and the sealed store
// shows up here as a one-byte diff.
func TestColumnarAggregationMatchesRowOracle(t *testing.T) {
	r := rng.New(99).Child("colagg")
	for trial := 0; trial < 3; trial++ {
		cfg := world.Config{
			Seed:                   uint64(1000 + trial),
			Groups:                 7 + r.IntN(10),
			Days:                   1 + r.IntN(2),
			SessionsPerGroupWindow: 6 + float64(r.IntN(12)),
		}
		data, dir := writeBothFormats(t, cfg)

		filters := []*segstore.Filter{
			nil,
			{From: time.Duration(1+r.IntN(10)) * time.Hour},
			{Countries: []string{"US", "IN", "BR"}, PoPs: nil},
		}
		for fi, f := range filters {
			want, err := FromSamplesOpt(sample.NewReader(bytes.NewReader(data)), Options{Workers: 1, Filter: f})
			if err != nil {
				t.Fatal(err)
			}
			wantReport := renderNormalized(t, want)

			for _, workers := range []int{1, 2, 4} {
				for _, oracle := range []bool{false, true} {
					res, err := FromSegments(context.Background(), dir, Options{
						Workers: workers, Filter: f, RowOracle: oracle,
					})
					if err != nil {
						t.Fatalf("trial=%d filter=%d workers=%d oracle=%v: %v", trial, fi, workers, oracle, err)
					}
					if res.Collector != want.Collector {
						t.Errorf("trial=%d filter=%d workers=%d oracle=%v: collector stats %+v != %+v",
							trial, fi, workers, oracle, res.Collector, want.Collector)
					}
					if got := renderNormalized(t, res); !bytes.Equal(got, wantReport) {
						t.Fatalf("trial=%d filter=%d workers=%d oracle=%v: report differs from row replay:\n%s",
							trial, fi, workers, oracle, firstDiff(got, wantReport))
					}
				}
			}
		}
	}
}

// segTraceRun scans the segment dataset traced (and optionally under a
// fault plan), returning the trace bytes and results.
func segTraceRun(t *testing.T, dir string, workers int, plan *faults.Plan, oracle bool) ([]byte, *Results) {
	t.Helper()
	rec := trace.New(7)
	rec.SetBufCap(1 << 17)
	res, err := FromSegments(context.Background(), dir, Options{
		Workers: workers, Plan: plan, Trace: rec, RowOracle: oracle,
	})
	if err != nil {
		t.Fatalf("FromSegments(workers=%d oracle=%v): %v", workers, oracle, err)
	}
	var b bytes.Buffer
	if err := rec.Flush(&b); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("ring overwrote %d events", rec.Dropped())
	}
	return b.Bytes(), res
}

// Chaos and tracing on the batch path: with a fault plan active and the
// flight recorder on, the columnar scan must produce the same degraded
// report and the same trace bytes as the row oracle, at every worker
// count. Fault decisions are per sample, so the shard workers
// materialize rows behind the guard — this test is what proves that
// bridge seamless.
func TestColumnarChaosTraceByteIdentical(t *testing.T) {
	cfg := detCfg()
	_, dir := writeBothFormats(t, cfg)
	// Segment replay has no generator, so only the sink/shard surfaces
	// apply (mirrors the FromStream chaos coverage).
	plan := mustPlan(t, "seed=7;sink-transient=0.004;sink-permanent=0.0004;fail-group=3;delay=0.2;delay-max=300us;retries=4;retry-base=50us")

	wantTrace, wantRes := segTraceRun(t, dir, 1, plan, true)
	if wantRes.Coverage == nil || !wantRes.Coverage.Degraded() {
		t.Fatal("plan injected nothing on the segment path")
	}
	wantReport := renderNormalized(t, wantRes)
	if len(wantTrace) == 0 {
		t.Fatal("empty trace")
	}

	for _, workers := range []int{1, 2, 4} {
		for _, oracle := range []bool{false, true} {
			if workers == 1 && oracle {
				continue // the baseline itself
			}
			gotTrace, res := segTraceRun(t, dir, workers, plan, oracle)
			if res.Collector != wantRes.Collector {
				t.Errorf("workers=%d oracle=%v: collector stats %+v != %+v", workers, oracle, res.Collector, wantRes.Collector)
			}
			if got := renderNormalized(t, res); !bytes.Equal(got, wantReport) {
				t.Fatalf("workers=%d oracle=%v: chaos report differs:\n%s", workers, oracle, firstDiff(got, wantReport))
			}
			if !bytes.Equal(gotTrace, wantTrace) {
				t.Fatalf("workers=%d oracle=%v: trace bytes differ from the row oracle's", workers, oracle)
			}
		}
	}

	// Tracing without a plan must also agree across currencies.
	cleanTrace, cleanRes := segTraceRun(t, dir, 2, nil, true)
	colTrace, colRes := segTraceRun(t, dir, 2, nil, false)
	if !bytes.Equal(renderNormalized(t, colRes), renderNormalized(t, cleanRes)) {
		t.Fatal("traced clean report differs between currencies")
	}
	if !bytes.Equal(colTrace, cleanTrace) {
		t.Fatal("clean trace bytes differ between currencies")
	}
}

// The day-inference fix: a -from filter that prunes the leading day
// must not inflate the inferred day count. A 2-day dataset filtered to
// its second day covers 96 windows, so every replay path must report
// Days=1 — and they must agree with each other byte for byte.
func TestInferredDaysUnderFromFilter(t *testing.T) {
	cfg := detCfg()
	cfg.Days = 2
	data, dir := writeBothFormats(t, cfg)
	f := &segstore.Filter{From: 24 * time.Hour}

	seq, err := FromSamplesOpt(sample.NewReader(bytes.NewReader(data)), Options{Workers: 1, Filter: f})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cfg.Days != 1 {
		t.Fatalf("FromSamplesOpt inferred Days=%d for a one-day slice, want 1", seq.Cfg.Days)
	}
	if seq.Store.FirstWindow() != 96 || seq.Store.TotalWindows != 192 {
		t.Fatalf("window coverage [%d, %d), want [96, 192)", seq.Store.FirstWindow(), seq.Store.TotalWindows)
	}
	want := renderNormalized(t, seq)

	segRes, err := FromSegments(context.Background(), dir, Options{Workers: 4, Filter: f})
	if err != nil {
		t.Fatal(err)
	}
	if segRes.Cfg.Days != 1 {
		t.Fatalf("FromSegments inferred Days=%d, want 1", segRes.Cfg.Days)
	}
	if got := renderNormalized(t, segRes); !bytes.Equal(got, want) {
		t.Fatalf("filtered FromSegments differs from FromSamplesOpt:\n%s", firstDiff(got, want))
	}

	strRes, err := FromStream(context.Background(), bytes.NewReader(data), Options{Workers: 3, Filter: f})
	if err != nil {
		t.Fatal(err)
	}
	if strRes.Cfg.Days != 1 {
		t.Fatalf("FromStream inferred Days=%d, want 1", strRes.Cfg.Days)
	}
	if got := renderNormalized(t, strRes); !bytes.Equal(got, want) {
		t.Fatalf("filtered FromStream differs from FromSamplesOpt:\n%s", firstDiff(got, want))
	}

	// An unfiltered replay still reports the full two days.
	full, err := FromSegments(context.Background(), dir, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Cfg.Days != 2 {
		t.Fatalf("unfiltered replay inferred Days=%d, want 2", full.Cfg.Days)
	}
}
