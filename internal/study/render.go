package study

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/geo"
	"repro/internal/report"
	"repro/internal/sample"
)

// WriteReport renders every reproduced table and figure as text.
func (r *Results) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "Dataset: %d groups × %d days (%d windows), %d samples (%d filtered as hosting/VPN)\n",
		r.Cfg.Groups, r.Cfg.Days, r.Cfg.Windows(), r.Collector.Accepted, r.Collector.FilteredHosting)
	fmt.Fprintf(w, "Generated and analysed in %v\n\n", r.Elapsed.Round(1e7))

	r.writeCoverage(w)
	r.writeTrafficCharacterisation(w)
	r.writePoPs(w)
	r.writeFig6(w)
	r.writeFig7(w)
	r.writeSimpleAblation(w)
	r.writeFig8(w)
	r.writeTable1(w)
	r.writeFig9(w)
	r.writeTable2(w)
	r.writeFig10(w)
}

// writeCoverage renders the degradation ledger of a chaos run. Plans
// are opt-in, so reports without one are byte-identical to pre-fault
// builds: the section only exists when Coverage does.
func (r *Results) writeCoverage(w io.Writer) {
	c := r.Coverage
	if c == nil {
		return
	}
	fmt.Fprintln(w, "== Coverage under faults (degradation ledger) ==")
	fmt.Fprintf(w, "fault plan: %s (fail-fast=%v)\n", c.Spec, c.FailFast)
	if !c.Degraded() {
		fmt.Fprintf(w, "run NOT degraded: all injected faults absorbed (%d retries spent, %d transient faults recovered)\n\n",
			c.RetriesSpent, c.TransientRecovered)
		return
	}
	denom := r.Collector.Accepted + c.SamplesLost()
	fmt.Fprintf(w, "run DEGRADED: %d samples lost (%s of the %d the run would have aggregated)\n",
		c.SamplesLost(), report.Pct(float64(c.SamplesLost())/float64(max(1, denom))), denom)
	report.Table(w, []string{"cause", "samples lost", "units"}, [][]string{
		{"pop outage", fmt.Sprintf("%d", c.SamplesLostOutage), "sessions never collected"},
		{"batch truncated", fmt.Sprintf("%d", c.SamplesLostTruncated), fmt.Sprintf("%d batches", c.BatchesTruncated)},
		{"batch dropped", fmt.Sprintf("%d", c.SamplesLostDropped), fmt.Sprintf("%d groups", c.GroupsDropped)},
		{"quarantined", fmt.Sprintf("%d", c.SamplesLostQuarantined), fmt.Sprintf("%d groups", len(c.Quarantined))},
	})
	fmt.Fprintf(w, "recovery: %d retries spent, %d transient faults recovered\n", c.RetriesSpent, c.TransientRecovered)
	if len(c.Quarantined) > 0 {
		var rows [][]string
		for _, q := range c.Quarantined {
			rows = append(rows, []string{q.Key, q.Reason, fmt.Sprintf("%d", q.SamplesLost)})
		}
		report.Table(w, []string{"quarantined group", "reason", "samples lost"}, rows)
	}
	fmt.Fprintln(w)
}

func (r *Results) writeTrafficCharacterisation(w io.Writer) {
	o := r.Overview
	fmt.Fprintln(w, "== §2.3 Traffic characteristics (Figures 1-3) ==")
	rows := [][]string{}
	for _, proto := range []sample.Protocol{"all", sample.HTTP1, sample.HTTP2} {
		d := o.SessionDuration[proto]
		b := o.BusyFraction[proto]
		tx := o.TxnsPerSession[proto]
		rows = append(rows, []string{
			string(proto),
			report.Pct(d.CDF(1)),
			report.Pct(d.CDF(60)),
			report.Pct(1 - d.CDF(180)),
			report.Pct(b.CDF(0.10)),
			report.Pct(tx.CDF(4.5)),
		})
	}
	report.Table(w, []string{"proto", "dur<1s", "dur<1min", "dur>3min", "busy<10%", "txns<5"}, rows)
	fmt.Fprintf(w, "Fig2: sessions<10KB=%s responses<6KB=%s media-median=%sB sessions>1MB=%s\n",
		report.Pct(o.SessionBytes.CDF(10_000)),
		report.Pct(o.ResponseBytes.CDF(6_000)),
		report.F(o.MediaRespBytes.Quantile(0.5)),
		report.Pct(1-o.SessionBytes.CDF(1_000_000)))
	fmt.Fprintf(w, "Fig3: bytes on 50+txn sessions=%s\n",
		report.Pct(float64(o.BytesOver50Txns)/float64(o.TotalBytes)))
	fmt.Fprintf(w, "§2.1 locality: traffic within 500km=%s within 2500km=%s cross-continent=%s (paper: 50%%, 90%%, 10%%)\n\n",
		report.Pct(o.ServingDistance.CDF(500)),
		report.Pct(o.ServingDistance.CDF(2500)),
		report.Pct(float64(o.CrossContinentBytes)/float64(o.TotalBytes)))
}

func (r *Results) writePoPs(w io.Writer) {
	o := r.Overview
	fmt.Fprintln(w, "== §2.1 Serving infrastructure (per-PoP traffic) ==")
	names := make([]string, 0, len(o.PerPoP))
	for name := range o.PerPoP {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return o.PerPoP[names[i]].Bytes > o.PerPoP[names[j]].Bytes })
	var rows [][]string
	for _, name := range names {
		pp := o.PerPoP[name]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", pp.Sessions),
			report.Pct(float64(pp.Bytes) / float64(o.TotalBytes)),
			report.F(pp.MinRTT.Quantile(0.5)) + "ms",
		})
	}
	report.Table(w, []string{"pop", "sessions", "traffic", "minrtt-p50"}, rows)
	fmt.Fprintln(w)
}

func (r *Results) writeFig6(w io.Writer) {
	o := r.Overview
	fmt.Fprintln(w, "== §4 Global performance (Figure 6) ==")
	fmt.Fprintf(w, "MinRTT: %s\n", report.QuantileRow(o.MinRTT))
	fmt.Fprintf(w, "HDratio: >0 for %s of sessions, =1 for %s\n",
		report.Pct(o.HDPositiveShare()), report.Pct(o.HDFullShare()))
	rows := [][]string{}
	for _, cont := range geo.Continents {
		co := o.PerContinent[cont]
		if co == nil || co.HDDefined == 0 {
			continue
		}
		rows = append(rows, []string{
			string(cont),
			report.F(co.MinRTT.Quantile(0.5)) + "ms",
			report.Pct(float64(co.HDZero) / float64(co.HDDefined)),
			report.Pct(float64(co.HDOne) / float64(co.HDDefined)),
		})
	}
	report.Table(w, []string{"continent", "MinRTT p50", "HDratio=0", "HDratio=1"}, rows)
	fmt.Fprintln(w)
}

func (r *Results) writeFig7(w io.Writer) {
	fmt.Fprintln(w, "== Figure 7: HDratio by MinRTT bucket ==")
	rows := [][]string{}
	for i, b := range analysis.RTTBuckets {
		d := r.Overview.HDByRTTBucket[i]
		if d.Count() == 0 {
			continue
		}
		rows = append(rows, []string{
			b.Name + "ms",
			fmt.Sprintf("%.0f", d.Count()),
			report.F(d.Quantile(0.25)),
			report.F(d.Quantile(0.5)),
			report.Pct(d.CDF(0.001)),
		})
	}
	report.Table(w, []string{"MinRTT", "sessions", "HD p25", "HD p50", "HDratio=0"}, rows)
	fmt.Fprintln(w)
}

func (r *Results) writeSimpleAblation(w io.Writer) {
	fmt.Fprintf(w, "== §4 ablation: naive goodput baseline ==\n")
	fmt.Fprintf(w, "corrected HDratio: median=%s mean=%s | naive: median=%s mean=%s (paper: naive underestimates, median 0.69)\n\n",
		report.F(r.Overview.HD.Quantile(0.5)), report.F(r.Overview.HD.Mean()),
		report.F(r.Overview.SimpleApproachMedian()), report.F(r.Overview.SimpleHD.Mean()))
}

func (r *Results) writeFig8(w io.Writer) {
	fmt.Fprintln(w, "== §5 Degradation (Figure 8) ==")
	for _, dr := range []analysis.DegradationResult{r.DegMinRTT, r.DegHD} {
		cdf, _, _ := dr.CDF()
		cov := float64(dr.CoveredBytes) / float64(dr.TotalBytes)
		fmt.Fprintf(w, "%s: coverage=%s p50=%s p90=%s p99=%s  traffic with ≥4ms|0.065 degradation: %s\n",
			dr.Metric, report.Pct(cov),
			report.F(cdf.Quantile(0.5)), report.F(cdf.Quantile(0.9)), report.F(cdf.Quantile(0.99)),
			report.Pct(fig8Anchor(dr)))
	}
	fmt.Fprintln(w)
}

func fig8Anchor(dr analysis.DegradationResult) float64 {
	cdf, _, _ := dr.CDF()
	if dr.Metric == analysis.MetricHDratio {
		return cdf.FractionAbove(0.065)
	}
	return cdf.FractionAbove(4)
}

func (r *Results) writeTable1(w io.Writer) {
	fmt.Fprintln(w, "== Table 1: temporal classes × continent ==")
	write := func(name string, tbl analysis.ClassTable) {
		fmt.Fprintf(w, "-- %s, thresholds %v --\n", name, tbl.Thresholds)
		headers := []string{"class/continent"}
		for _, th := range tbl.Thresholds {
			headers = append(headers, fmt.Sprintf("@%v", th))
		}
		var rows [][]string
		for _, class := range analysis.Classes {
			row := []string{class.String()}
			for ti := range tbl.Thresholds {
				cell := tbl.Overall[class][ti]
				row = append(row, report.Frac(cell.GroupTrafficShare)+" "+report.Frac(cell.EventTrafficShare))
			}
			rows = append(rows, row)
			for _, cont := range geo.Continents {
				crow := []string{"  " + string(cont)}
				for ti := range tbl.Thresholds {
					cell := tbl.Rows[class][cont][ti]
					crow = append(crow, report.Frac(cell.GroupTrafficShare)+" "+report.Frac(cell.EventTrafficShare))
				}
				rows = append(rows, crow)
			}
		}
		report.Table(w, headers, rows)
		fmt.Fprintln(w)
	}
	write("Degradation MinRTTP50 (ms)", r.Table1DegMinRTT)
	write("Degradation HDratioP50", r.Table1DegHD)
	write("Opportunity MinRTTP50 (ms)", r.Table1OppMinRTT)
	write("Opportunity HDratioP50", r.Table1OppHD)
}

func (r *Results) writeFig9(w io.Writer) {
	fmt.Fprintln(w, "== §6.2 Opportunity (Figure 9) ==")
	fmt.Fprintf(w, "MinRTTP50: within 3ms of optimal for %s of traffic; improvable ≥5ms for %s (paper: 83.9%%, 2.0%%)\n",
		report.Pct(r.OppMinRTT.FractionWithinOfOptimal(3)),
		report.Pct(r.OppMinRTT.FractionImprovableAtLeast(5)))
	fmt.Fprintf(w, "HDratioP50: within 0.025 of optimal for %s; improvable ≥0.05 for %s (paper: 93.4%%, 0.2%%)\n",
		report.Pct(r.OppHD.FractionWithinOfOptimal(0.025)),
		report.Pct(r.OppHD.FractionImprovableAtLeast(0.05)))
	covM := float64(r.OppMinRTT.CoveredBytes) / float64(r.OppMinRTT.TotalBytes)
	covH := float64(r.OppHD.CoveredBytes) / float64(r.OppHD.TotalBytes)
	fmt.Fprintf(w, "valid-aggregation coverage: MinRTT %s, HDratio %s (paper: 89.5%%, 85.8%%)\n\n",
		report.Pct(covM), report.Pct(covH))
}

func (r *Results) writeTable2(w io.Writer) {
	fmt.Fprintln(w, "== Table 2: opportunity by relationship pair ==")
	write := func(name string, tbl analysis.RelationshipTable) {
		fmt.Fprintf(w, "-- %s --\n", name)
		type row struct {
			pair RelPairName
			ro   analysis.RelOpportunity
		}
		var rows []row
		for pair, ro := range tbl.Pairs {
			rows = append(rows, row{RelPairName{pair.Pref, pair.Alt}, *ro})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].ro.EventBytes > rows[j].ro.EventBytes })
		var cells [][]string
		for _, rr := range rows {
			abs, rel, longer, prep := "n/a", "n/a", "n/a", "n/a"
			if tbl.TotalBytes > 0 {
				abs = report.Frac(float64(rr.ro.EventBytes) / float64(tbl.TotalBytes))
			}
			if tbl.TotalEventBytes > 0 {
				rel = report.Frac(float64(rr.ro.EventBytes) / float64(tbl.TotalEventBytes))
			}
			if rr.ro.EventBytes > 0 {
				longer = report.Frac(float64(rr.ro.LongerBytes) / float64(rr.ro.EventBytes))
				prep = report.Frac(float64(rr.ro.PrependedBytes) / float64(rr.ro.EventBytes))
			}
			cells = append(cells, []string{rr.pair.String(), abs, rel, longer, prep})
		}
		report.Table(w, []string{"relationships", "absolute", "relative", "longer", "prepended"}, cells)
		fmt.Fprintln(w)
	}
	write("MinRTTP50 (≥5ms)", r.Table2MinRTT)
	write("HDratioP50 (≥0.05)", r.Table2HD)
}

// RelPairName renders a relationship pair as the paper's rows do.
type RelPairName struct{ Pref, Alt bgp.RelType }

// String renders "Private → Transit".
func (p RelPairName) String() string { return p.Pref.String() + " -> " + p.Alt.String() }

func (r *Results) writeFig10(w io.Writer) {
	fmt.Fprintln(w, "== §6.3 Peer vs transit (Figure 10) ==")
	cdfs := analysis.CompareRelationships(r.Store, analysis.MetricMinRTT)
	var rows [][]string
	for _, c := range analysis.RelComparisons {
		cdf, ok := cdfs[c]
		if !ok || cdf.Total() == 0 {
			continue
		}
		rows = append(rows, []string{
			c.String(),
			report.F(cdf.Quantile(0.1)),
			report.F(cdf.Quantile(0.5)),
			report.F(cdf.Quantile(0.9)),
			report.Pct(cdf.FractionAtOrBelow(0)),
		})
	}
	report.Table(w, []string{"comparison", "p10", "p50", "p90", "pref better"}, rows)
	fmt.Fprintln(w)
}
