package study

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/world"
)

// mustPlan parses a plan spec or fails the test.
func mustPlan(t *testing.T, spec string) *faults.Plan {
	t.Helper()
	p, err := faults.ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	return p
}

// The chaos analogue of the byte-identical guarantee: a fixed (seed,
// plan) pair must render the same degraded report — coverage section
// included — at any worker count, with every fault surface active at
// once.
func TestChaosRunByteIdenticalAcrossWorkers(t *testing.T) {
	const spec = "seed=7;sink-transient=0.004;sink-permanent=0.0004;truncate=0.15;corrupt=0.05;" +
		"fail-group=3;outage=gru:20-40;delay=0.2;delay-max=300us;retries=4;retry-base=50us"
	run := func(workers int) *Results {
		res, err := RunCtx(context.Background(), detCfg(), Options{Workers: workers, Plan: mustPlan(t, spec)})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	seqRes := run(1)
	if seqRes.Coverage == nil {
		t.Fatal("chaos run produced no coverage ledger")
	}
	if !seqRes.Coverage.Degraded() {
		t.Fatalf("plan injected nothing: %+v", seqRes.Coverage)
	}
	seq := renderNormalized(t, seqRes)
	if !bytes.Contains(seq, []byte("Coverage under faults")) {
		t.Fatal("degraded report has no coverage section")
	}
	for _, workers := range []int{2, 4} {
		res := run(workers)
		if res.Collector != seqRes.Collector {
			t.Errorf("workers=%d: collector stats %+v != sequential %+v", workers, res.Collector, seqRes.Collector)
		}
		got := renderNormalized(t, res)
		if !bytes.Equal(got, seq) {
			t.Fatalf("workers=%d chaos report differs from workers=1:\n%s", workers, firstDiff(got, seq))
		}
	}
}

// With injection disabled, Results carry no coverage ledger and the
// report has no coverage section — existing golden output is unchanged.
func TestNoPlanMeansNoCoverageSection(t *testing.T) {
	res, err := RunCtx(context.Background(), detCfg(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != nil {
		t.Fatalf("no-plan run produced a coverage ledger: %+v", res.Coverage)
	}
	if bytes.Contains(renderNormalized(t, res), []byte("Coverage under faults")) {
		t.Fatal("no-plan report contains a coverage section")
	}
}

// Sink-surface accounting: with only sink faults active, every
// non-hosting sample the clean run aggregates is either in the chaos
// run's store or attributed to a quarantined group — nothing leaks.
func TestSinkFaultAccountingIsExact(t *testing.T) {
	clean, err := RunCtx(context.Background(), detCfg(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// retries=2 with sink-streak=3 makes budget exhaustion reachable, so
	// both quarantine reasons (permanent, exhausted) occur.
	plan := mustPlan(t, "seed=11;sink-transient=0.01;sink-streak=3;sink-permanent=0.0005;retries=2;retry-base=20us")
	res, err := RunCtx(context.Background(), detCfg(), Options{Workers: 4, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage
	if cov == nil || len(cov.Quarantined) == 0 {
		t.Fatalf("expected quarantined groups, coverage = %+v", cov)
	}
	if got, want := res.Store.TotalSamples+cov.SamplesLostQuarantined, clean.Collector.Accepted; got != want {
		t.Errorf("store (%d) + quarantined (%d) = %d, want the clean run's %d accepted samples",
			res.Store.TotalSamples, cov.SamplesLostQuarantined, got, want)
	}
	if cov.RetriesSpent == 0 || cov.TransientRecovered == 0 {
		t.Errorf("transient machinery idle: retries=%d recovered=%d", cov.RetriesSpent, cov.TransientRecovered)
	}
	// Quarantined groups must be gone from the store, and only them:
	// clean store keys = chaos store keys ∪ quarantined keys.
	quarantined := make(map[string]bool, len(cov.Quarantined))
	for _, q := range cov.Quarantined {
		quarantined[q.Key] = true
	}
	for _, g := range res.Store.Groups() {
		if quarantined[g.Key.String()] {
			t.Errorf("quarantined group %s still in store", g.Key)
		}
	}
	if got, want := res.Store.Len()+len(cov.Quarantined), clean.Store.Len(); got != want {
		t.Errorf("chaos groups (%d) + quarantined (%d) = %d, want clean %d", res.Store.Len(), len(cov.Quarantined), got, want)
	}
	for _, g := range clean.Store.Groups() {
		if res.Store.Group(g.Key) == nil && !quarantined[g.Key.String()] {
			t.Errorf("group %s vanished without a quarantine entry", g.Key)
		}
	}
}

// Batch-surface accounting: plan-failed groups are dropped whole, with
// exactly their generated sample counts on the ledger, and the run
// completes.
func TestFailGroupDropsExactBatches(t *testing.T) {
	cfg := detCfg()
	sizes := map[int]int{}
	w := world.New(cfg)
	if err := w.GenerateBatches(context.Background(), 1, func(b world.Batch) error {
		sizes[b.Group] = len(b.Samples)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	plan := mustPlan(t, "fail-group=2|5")
	res, err := RunCtx(context.Background(), cfg, Options{Workers: 3, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage
	if cov.GroupsDropped != 2 {
		t.Fatalf("GroupsDropped = %d, want 2 (coverage %+v)", cov.GroupsDropped, cov)
	}
	if want := sizes[2] + sizes[5]; cov.SamplesLostDropped != want {
		t.Errorf("SamplesLostDropped = %d, want %d (the two groups' full batches)", cov.SamplesLostDropped, want)
	}
	var keys []string
	for _, q := range cov.Quarantined {
		keys = append(keys, q.Key)
	}
	if len(keys) != 2 || keys[0] != "world-group-0002" || keys[1] != "world-group-0005" {
		t.Errorf("quarantine ledger = %v, want the two failed world groups", keys)
	}
}

// Outage accounting: a PoP-wide outage loses exactly the sessions the
// clean run would have served there, and the degraded dataset contains
// none of them.
func TestOutageAccountingIsExact(t *testing.T) {
	cfg := detCfg()
	baseline := world.New(cfg).GenerateAll()
	pop := baseline[0].PoP
	expect := 0
	for _, s := range baseline {
		if s.PoP == pop {
			expect++
		}
	}
	windows := cfg.Windows()
	plan := mustPlan(t, "outage="+pop+":0-"+itoa(windows))
	res, err := RunCtx(context.Background(), cfg, Options{Workers: 2, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage.SamplesLostOutage != expect {
		t.Errorf("SamplesLostOutage = %d, want %d (all %s sessions)", res.Coverage.SamplesLostOutage, expect, pop)
	}
	for _, g := range res.Store.Groups() {
		if g.Key.PoP == pop {
			t.Errorf("group %s aggregated at downed PoP", g.Key)
		}
	}
}

// FailFast flips recovery off: the first non-recoverable fault poisons
// the run and surfaces the fault, instead of quarantining.
func TestFailFastPropagatesFault(t *testing.T) {
	_, err := RunCtx(context.Background(), detCfg(), Options{
		Workers: 2, Plan: mustPlan(t, "fail-group=1"), FailFast: true,
	})
	var fe *faults.FaultError
	if !errors.As(err, &fe) || fe.Surface != faults.SurfaceBatch {
		t.Fatalf("err = %v, want a wrapped batch FaultError", err)
	}

	_, err = RunCtx(context.Background(), detCfg(), Options{
		Workers: 2, Plan: mustPlan(t, "seed=11;sink-permanent=0.001"), FailFast: true,
	})
	if !errors.As(err, &fe) || fe.Surface != faults.SurfaceSink {
		t.Fatalf("err = %v, want a wrapped sink FaultError", err)
	}
}

// A stalled shard under a stage budget fails loudly with attribution
// instead of hanging the run.
func TestStalledShardTripsStageBudget(t *testing.T) {
	_, err := RunCtx(context.Background(), detCfg(), Options{
		Workers: 2, Plan: mustPlan(t, "stall-shard=0;stage-budget=30ms;stall-for=10s"),
	})
	var te *pipeline.StageTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want a StageTimeoutError", err)
	}
	if !strings.HasPrefix(te.Stage, "agg_shard_") {
		t.Errorf("timeout attributed to %q, want an aggregation shard stage", te.Stage)
	}
}

// The replay path shares the sink surface: FromStream with a plan is
// byte-identical across worker counts, coverage included.
func TestFromStreamChaosByteIdentical(t *testing.T) {
	var data bytes.Buffer
	w := world.New(detCfg())
	col := collector.New(collector.WriterSink(sample.NewWriter(&data)))
	w.Generate(col.Offer)
	if err := col.Err(); err != nil {
		t.Fatal(err)
	}
	spec := "seed=5;sink-transient=0.005;sink-permanent=0.0005;retries=3;retry-base=20us"
	run := func(workers int) []byte {
		res, err := FromStream(context.Background(), bytes.NewReader(data.Bytes()),
			Options{Workers: workers, Plan: mustPlan(t, spec)})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Coverage == nil {
			t.Fatalf("workers=%d: no coverage ledger", workers)
		}
		return renderNormalized(t, res)
	}
	seq := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); !bytes.Equal(got, seq) {
			t.Fatalf("workers=%d FromStream chaos report differs:\n%s", workers, firstDiff(got, seq))
		}
	}
}
