package study

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/collector"
	"repro/internal/sample"
	"repro/internal/segstore"
	"repro/internal/world"
)

// colaggCorpus is a segment dataset shared by the columnar-aggregation
// benchmarks (built once; b.TempDir is cleaned per benchmark).
var colaggCorpus struct {
	once sync.Once
	dir  string
	rows int
}

func colaggDataset(b *testing.B) (string, int) {
	b.Helper()
	colaggCorpus.once.Do(func() {
		w := world.New(world.Config{Seed: 42, Groups: 25, Days: 2, SessionsPerGroupWindow: 40})
		var buf bytes.Buffer
		sw := sample.NewWriter(&buf)
		n := 0
		w.Generate(func(s sample.Sample) {
			if err := sw.Write(s); err != nil {
				b.Fatal(err)
			}
			n++
		})
		tmp, err := os.MkdirTemp("", "colagg-bench-")
		if err != nil {
			b.Fatal(err)
		}
		dir := filepath.Join(tmp, "ds.seg")
		sgw, err := segstore.Create(dir, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := segstore.ConvertJSONL(bytes.NewReader(buf.Bytes()), sgw, segstore.ConvertOptions{}); err != nil {
			b.Fatal(err)
		}
		colaggCorpus.dir, colaggCorpus.rows = dir, n
	})
	return colaggCorpus.dir, colaggCorpus.rows
}

// BenchmarkColaggRows is the row oracle: scan the segment dataset,
// materialize sample.Sample rows, aggregate one at a time, seal.
func BenchmarkColaggRows(b *testing.B) {
	dir, rows := colaggDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := segstore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		st := agg.NewStore()
		//edgelint:allow rowfree: this benchmark measures the row oracle on purpose
		err = r.Scan(context.Background(), 1, nil, func(rs []sample.Sample) error {
			for j := range rs {
				st.Add(rs[j])
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		st.Seal(1)
		if st.TotalSamples != rows {
			b.Fatalf("aggregated %d of %d rows", st.TotalSamples, rows)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkColaggBatches is the hot path: the same dataset through
// ScanColumns and Store.AddBatch — no row structs anywhere between
// decode and the sealed store.
func BenchmarkColaggBatches(b *testing.B) {
	dir, rows := colaggDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := segstore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		st := agg.NewStore()
		err = r.ScanColumns(context.Background(), 1, nil, func(cb *segstore.ColumnBatch) error {
			st.AddBatch(cb)
			cb.Release()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		st.Seal(1)
		if st.TotalSamples != rows {
			b.Fatalf("aggregated %d of %d rows", st.TotalSamples, rows)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkColaggFullStudy runs the complete FromSegments analysis on
// the batch path — what `edgereport -in ds.seg` costs end to end.
func BenchmarkColaggFullStudy(b *testing.B) {
	dir, _ := colaggDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromSegments(context.Background(), dir, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// The collector's batch pipeline must agree with the row pipeline on
// counters when fed pre-compacted vs raw batches (unit-level guard for
// the benchmark paths above).
func TestOfferColumnsCounters(t *testing.T) {
	w := world.New(world.Config{Seed: 77, Groups: 3, Days: 1, SessionsPerGroupWindow: 4})
	rows := w.GenerateAll()
	blob, _ := segstore.EncodeSegment(rows)
	cb, err := segstore.DecodeSegmentColumns(blob)
	if err != nil {
		t.Fatal(err)
	}
	rowCol := collector.New()
	rowStore := agg.NewStore()
	rowCol.AddSink(collector.StoreSink(rowStore))
	for _, s := range rows {
		rowCol.Offer(s)
	}
	batchCol := collector.New()
	batchStore := agg.NewStore()
	batchCol.AddColumnSink(collector.StoreColumnSink(batchStore))
	batchCol.OfferColumns(cb)
	if rowCol.Stats() != batchCol.Stats() {
		t.Fatalf("collector stats differ: rows %+v, batch %+v", rowCol.Stats(), batchCol.Stats())
	}
	if rowStore.TotalSamples != batchStore.TotalSamples {
		t.Fatalf("stores aggregated %d vs %d samples", batchStore.TotalSamples, rowStore.TotalSamples)
	}
}
