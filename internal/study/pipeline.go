package study

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/segstore"
	"repro/internal/trace"
	"repro/internal/world"

	"context"
	"sync"
	"time"
)

// Options configures a concurrent study run.
type Options struct {
	// Workers is the pipeline parallelism: generation (or dataset
	// decoding) workers and aggregation shards. 0 means
	// pipeline.DefaultWorkers (GOMAXPROCS); 1 runs the whole pipeline on
	// the calling goroutine — the determinism oracle the sharded path is
	// tested against.
	Workers int
	// Reg receives pipeline metrics (may be nil).
	Reg *obs.Registry
	// Plan, when non-nil, injects deterministic faults across the
	// pipeline (sink failures, batch corruption, PoP outages, shard
	// stalls) and makes Results carry a degradation ledger. The report
	// stays byte-identical at any worker count for a fixed (seed, plan).
	Plan *faults.Plan
	// FailFast makes the first non-recoverable fault poison the run
	// instead of quarantining the affected group and continuing.
	FailFast bool
	// Filter, when non-nil, restricts dataset replay (FromStream,
	// FromSamplesOpt, FromSegments) to matching rows. The segment path
	// additionally prunes whole segments against the manifest; the row
	// predicate is identical on every path, so filtered reports agree
	// byte for byte across formats. Ignored by generation runs.
	Filter *segstore.Filter
	// Trace, when non-nil, records the run's deterministic flight
	// trace: generation spans, batch fates, sink faults and retries,
	// quarantines, seals, and the coverage ledger summary. Tracing
	// forces the sharded pipeline even at Workers=1 (like a fault plan
	// does) so the trace is the same file the multi-worker run writes;
	// the caller flushes it with Trace.WriteFile after the run.
	Trace *trace.Recorder
	// RowOracle forces the segment path (FromSegments) to materialize
	// sample.Sample rows and aggregate row-at-a-time instead of feeding
	// column batches — the oracle the columnar hot path is verified
	// against: reports must be byte-identical either way. Slower;
	// exists for verification, not production use.
	RowOracle bool
}

func (o Options) workers() int {
	if o.Workers == 0 {
		return pipeline.DefaultWorkers()
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// RunCtx generates the dataset for cfg and runs every analysis on a
// sharded concurrent pipeline (§3.3's structure: per-group sample
// streams hash-partitioned into shard-local aggregations, merged into
// one store). The rendered report is byte-identical at every worker
// count: per-group sample order is preserved end to end, shard stores
// partition the group-key space so their merge is exact, and the
// global Overview folds over the stream in sequential order.
func RunCtx(ctx context.Context, cfg world.Config, opt Options) (*Results, error) {
	start := startTimer()
	reg := opt.Reg
	workers := opt.workers()

	w := world.New(cfg)
	w.Instrument(reg)

	inj := faults.NewInjector(opt.Plan, w.Cfg.Seed)
	inj.Instrument(reg)
	rg := newRunGuard(inj, opt.FailFast)
	if inj != nil {
		w.PoPDown = inj.Outage
	}
	w.Rec = opt.Trace

	// Chaos and traced runs always take the sharded path (even at
	// workers=1): the guard and quarantine machinery live there, and the
	// determinism oracle for such a run is the same flags at another
	// worker count — including the trace bytes.
	if workers <= 1 && rg == nil && opt.Trace == nil {
		// Sequential oracle: one goroutine end to end.
		store := agg.NewStore()
		store.Instrument(reg)
		overview := analysis.NewOverview()
		overview.Instrument(reg)
		col := collector.New(
			collector.StoreSink(store),
			collector.FuncSink(overview.Add),
		)
		col.Instrument(reg)
		if err := w.GenerateCtx(ctx, 1, col.Offer); err != nil {
			return nil, err
		}
		if err := col.Err(); err != nil {
			return nil, err
		}
		res := &Results{Cfg: w.Cfg, Collector: col.Stats(), Overview: overview, Store: store}
		res.analyse(reg)
		res.Elapsed = elapsedSince(start)
		return res, nil
	}

	ing := newIngest(workers, reg, rg, opt.Trace)
	rg.trace(ing.buf)
	g := pipeline.NewGroup(ctx)
	g.Trace(opt.Trace)
	ing.start(g)
	g.Go(func(ctx context.Context) error {
		defer ing.close()
		return w.GenerateBatches(ctx, workers, func(b world.Batch) error {
			samples, err := rg.filterBatch(b)
			if err != nil {
				return err
			}
			return ing.feed(ctx, samples)
		})
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}
	store, stats := ing.merge()
	cov := ing.coverage(rg)
	ing.traceFinish(store, cov)
	res := &Results{Cfg: w.Cfg, Collector: stats, Overview: ing.overview, Store: store, Coverage: cov}
	res.analyseConcurrent(ctx, reg, workers)
	res.Elapsed = elapsedSince(start)
	return res, nil
}

// FromStream runs every analysis over a JSON-lines dataset (as written
// by cmd/edgesim) on the sharded pipeline: a sequential scanner splits
// lines, a worker pool decodes them, and a reorder stage restores the
// on-disk order before the same sharded ingestion RunCtx uses — so the
// report is byte-identical to FromSamples over the same bytes.
func FromStream(ctx context.Context, r io.Reader, opt Options) (*Results, error) {
	start := startTimer()
	reg := opt.Reg
	workers := opt.workers()
	inj := faults.NewInjector(opt.Plan, 0)
	inj.Instrument(reg)
	rg := newRunGuard(inj, opt.FailFast)
	if workers <= 1 && rg == nil && opt.Trace == nil {
		return FromSamplesOpt(sample.NewReader(r), opt)
	}

	type lineBatch struct {
		seq  int
		data []byte // concatenated lines
		ends []int  // end offset of each line in data
	}
	type decBatch struct {
		seq     int
		samples []sample.Sample
	}

	const linesPerBatch = 1024

	// Line buffers cycle through a pool: the scanner fills a batch, a
	// decode worker drains it and hands the backing arrays back. Steady
	// state allocates no new line buffers, whatever the dataset size.
	batchPool := sync.Pool{New: func() any { return new(lineBatch) }}

	// Replayed datasets have no generator, so only the sink surface (and
	// shard timing chaos) applies: line batches are not group batches,
	// and batch-level fates would not be comparable across worker counts.
	ing := newIngest(workers, reg, rg, opt.Trace)
	rg.trace(ing.buf)
	g := pipeline.NewGroup(ctx)
	g.Trace(opt.Trace)
	lines := pipeline.NewStream[*lineBatch](workers * 2)
	lines.Instrument(reg, "decode")
	lines.Observe(opt.Trace, "decode")
	decoded := pipeline.NewStream[decBatch](workers * 2)
	decoded.Instrument(reg, "reorder")
	decoded.Observe(opt.Trace, "reorder")
	readSpan := reg.Span(obs.L("study_stage_seconds", "stage", "read"), "study")
	cSamples := reg.Counter("study_samples_read_total")

	// Stage 1: split the stream into line batches (sequential, cheap).
	g.Go(func(ctx context.Context) error {
		defer lines.Close()
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		seq := 0
		cur := batchPool.Get().(*lineBatch)
		cur.seq = seq
		sp := readSpan.Start()
		defer sp.End()
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			cur.data = append(cur.data, line...)
			cur.ends = append(cur.ends, len(cur.data))
			if len(cur.ends) >= linesPerBatch {
				if err := lines.Send(ctx, cur); err != nil {
					return err
				}
				seq++
				cur = batchPool.Get().(*lineBatch)
				cur.seq = seq
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
		if len(cur.ends) > 0 {
			if err := lines.Send(ctx, cur); err != nil {
				return err
			}
		}
		return nil
	})

	// Stage 2: decode workers. Rows failing opt.Filter are dropped here
	// — before reorder and sharding — mirroring where the segment
	// scanner applies the same predicate.
	g.GoPool(workers, func(ctx context.Context, _ int) error {
		return lines.Range(ctx, func(lb *lineBatch) error {
			db := decBatch{seq: lb.seq, samples: make([]sample.Sample, 0, len(lb.ends))}
			startOff := 0
			for i, end := range lb.ends {
				var s sample.Sample
				if err := json.Unmarshal(lb.data[startOff:end], &s); err != nil {
					return fmt.Errorf("decoding dataset line %d: %w", lb.seq*linesPerBatch+i+1, err)
				}
				startOff = end
				if opt.Filter.Match(&s) {
					db.samples = append(db.samples, s)
				}
			}
			cSamples.Add(int64(len(lb.ends)))
			lb.data, lb.ends = lb.data[:0], lb.ends[:0]
			batchPool.Put(lb)
			return decoded.Send(ctx, db)
		})
	}, decoded.Close)

	// Stage 3: restore on-disk order, then shard.
	g.Go(func(ctx context.Context) error {
		defer ing.close()
		return pipeline.Reorder(ctx, decoded, func(db decBatch) int { return db.seq }, 0,
			func(db decBatch) error { return ing.feed(ctx, db.samples) })
	})
	ing.start(g)

	if err := g.Wait(); err != nil {
		return nil, err
	}
	store, stats := ing.merge()
	cov := ing.coverage(rg)
	ing.traceFinish(store, cov)
	res := &Results{
		Cfg:       inferredCfg(store),
		Collector: stats,
		Overview:  ing.overview,
		Store:     store,
		Coverage:  cov,
	}
	res.analyseConcurrent(ctx, reg, workers)
	res.Elapsed = elapsedSince(start)
	return res, nil
}

// ingest is the sharded back half of the pipeline: an ordered Overview
// fold plus N collector shards, each filtering its share of the stream
// into a shard-local aggregation store. feed is called with batches in
// sequential order; samples are routed to shards by group-key hash, so
// each (group, window, route) digest sees exactly the subsequence — in
// exactly the order — it would under sequential ingestion, which is why
// the final merge is exact rather than approximate.
type ingest struct {
	shards   []*ingestShard
	overview *analysis.Overview
	foldSpan *obs.SpanTimer
	inj      *faults.Injector
	rec      *trace.Recorder
	buf      *trace.Buf // owned by the ordered deliver goroutine
	feedHist *obs.Histogram
	feedN    uint64
}

// shardItem is one run of consecutive same-shard samples in either
// pipeline currency: decoded rows (generation, JSONL replay) or a
// column-batch view (segment scans). Exactly one field is set.
type shardItem struct {
	rows []sample.Sample
	cols *segstore.ColumnBatch
}

type ingestShard struct {
	stream *pipeline.Stream[shardItem]
	col    *collector.Collector
	store  *agg.Store
	span   *obs.SpanTimer
	guard  *shardGuard
	// rows is the guard path's materialization scratch: per-sample fault
	// decisions need row structs, so chaos runs convert batch views back
	// to rows here (reused across items; the shard worker owns it).
	rows []sample.Sample
}

func newIngest(shards int, reg *obs.Registry, rg *runGuard, rec *trace.Recorder) *ingest {
	ov := analysis.NewOverview()
	ov.Instrument(reg)
	in := &ingest{
		overview: ov,
		foldSpan: reg.Span(obs.L("study_stage_seconds", "stage", "overview_fold"), "study"),
		rec:      rec,
		buf:      rec.Buf(),
		feedHist: reg.Histogram("study_feed_batch_samples", []float64{1, 8, 64, 256, 1024, 4096, 16384}),
	}
	if rg != nil {
		in.inj = rg.inj
	}
	for i := 0; i < shards; i++ {
		st := agg.NewStore()
		st.Instrument(reg)
		col := collector.New(collector.StoreSink(st))
		col.AddColumnSink(collector.StoreColumnSink(st))
		col.Instrument(reg)
		sh := &ingestShard{
			stream: pipeline.NewStream[shardItem](4),
			col:    col,
			store:  st,
			span:   reg.Span(obs.L("study_stage_seconds", "stage", "agg_shard"), "study"),
			guard:  rg.newShardGuard(i, col, st),
		}
		if sh.guard != nil {
			// Each shard worker owns its guard, so each guard gets its own
			// single-owner ring; flush sorts all rings canonically.
			sh.guard.buf = rec.Buf()
		}
		sh.stream.Instrument(reg, fmt.Sprintf("agg_shard_%d", i))
		sh.stream.Observe(rec, fmt.Sprintf("agg_shard_%d", i))
		in.shards = append(in.shards, sh)
	}
	return in
}

// start launches one worker per shard in g. Under a fault plan the
// workers run with the plan's stage budget (a stalled shard trips a
// StageTimeoutError instead of hanging the run) and injected dispatch
// delays — timing chaos that must not change one output byte.
func (in *ingest) start(g *pipeline.Group) {
	for i, sh := range in.shards {
		i, sh := i, sh
		run := func(ctx context.Context) error {
			n := 0
			err := sh.stream.Range(ctx, func(it shardItem) error {
				if d := in.inj.ShardDelay(i, n); d > 0 {
					time.Sleep(d)
				}
				n++
				sp := sh.span.Start()
				defer sp.End()
				if it.cols != nil {
					defer it.cols.Release()
					if sh.guard != nil {
						// Sink-fault decisions are per sample (keyed by SessionID and
						// group key), so chaos runs materialize the view back to rows
						// — the price of keeping degraded reports byte-identical to
						// the row oracle.
						sh.rows = it.cols.AppendRows(sh.rows[:0]) //edgelint:allow rowfree: per-sample fault decisions need row structs
						for _, s := range sh.rows {
							if err := sh.guard.offer(ctx, s); err != nil {
								return err
							}
						}
						return nil
					}
					sh.col.OfferColumns(it.cols)
					return sh.col.Err()
				}
				if sh.guard != nil {
					for _, s := range it.rows {
						if err := sh.guard.offer(ctx, s); err != nil {
							return err
						}
					}
					return nil
				}
				for _, s := range it.rows {
					sh.col.Offer(s)
				}
				return sh.col.Err()
			})
			if err != nil {
				// Poisoned: views still buffered in this shard's stream will
				// never reach the callback above; release them or the parent
				// batches leak. The feed goroutine's deferred close
				// guarantees Drain terminates.
				sh.stream.Drain(func(it shardItem) {
					if it.cols != nil {
						it.cols.Release()
					}
				})
			}
			return err
		}
		g.GoBudget(fmt.Sprintf("agg_shard_%d", i), in.inj.StageBudget(), run)
	}
}

// close marks the producer side done; call once no more feeds follow.
func (in *ingest) close() {
	for _, sh := range in.shards {
		sh.stream.Close()
	}
}

// feed folds one ordered batch into the Overview and routes it to the
// shards in runs of consecutive same-shard samples (keys change only at
// window boundaries, so runs are long and the per-sample routing cost
// is a struct compare).
func (in *ingest) feed(ctx context.Context, samples []sample.Sample) error {
	if len(samples) == 0 {
		return nil
	}
	if in.buf != nil {
		// One mark per delivered batch on the run track. feed runs on the
		// ordered deliver goroutine, so feedN is a deterministic stream
		// position; the event ID doubles as the histogram exemplar,
		// linking the exposition's tail bucket back to a trace line.
		id := in.buf.Emit(trace.Event{
			Track: trace.TrackRun, Phase: trace.PhaseIngest, Win: -1, Seq: in.feedN,
			Kind: trace.KMark, Stage: "feed", Value: int64(len(samples)),
		})
		in.feedHist.ObserveExemplar(float64(len(samples)), id)
		if in.feedN%64 == 0 {
			in.rec.SampleQueues()
		}
		in.feedN++
	}
	sp := in.foldSpan.Start()
	for i := range samples {
		if samples[i].HostingProvider {
			continue // mirrors the shard collectors' filter (KeepHosting=false)
		}
		in.overview.Add(samples[i])
	}
	sp.End()

	nShards := uint32(len(in.shards))
	runStart := 0
	key := samples[0].Key()
	shard := key.Hash() % nShards
	for i := 1; i < len(samples); i++ {
		k := samples[i].Key()
		if k == key {
			continue
		}
		next := k.Hash() % nShards
		key = k
		if next == shard {
			continue
		}
		if err := in.shards[shard].stream.Send(ctx, shardItem{rows: samples[runStart:i]}); err != nil {
			return err
		}
		runStart, shard = i, next
	}
	return in.shards[shard].stream.Send(ctx, shardItem{rows: samples[runStart:]})
}

// feedColumns is feed in the columnar currency: one ordered batch is
// folded into the Overview and routed to the shards as batch views cut
// at shard boundaries (group-key runs compare dictionary indexes, so
// routing never touches row structs). Trace marks, the feed histogram,
// and queue sampling fire exactly as on the row path — same events,
// same coordinates — so traced columnar runs stay byte-identical to
// the row oracle's trace. Takes ownership of b; views handed to shard
// workers keep the batch alive until each releases its reference.
func (in *ingest) feedColumns(ctx context.Context, b *segstore.ColumnBatch) error {
	n := b.Len()
	if n == 0 {
		b.Release()
		return nil
	}
	if in.buf != nil {
		id := in.buf.Emit(trace.Event{
			Track: trace.TrackRun, Phase: trace.PhaseIngest, Win: -1, Seq: in.feedN,
			Kind: trace.KMark, Stage: "feed", Value: int64(n),
		})
		in.feedHist.ObserveExemplar(float64(n), id)
		if in.feedN%64 == 0 {
			in.rec.SampleQueues()
		}
		in.feedN++
	}
	sp := in.foldSpan.Start()
	in.overview.AddColumns(b)
	sp.End()

	nShards := uint32(len(in.shards))
	runStart := 0
	shard := b.KeyAt(0).Hash() % nShards
	i := b.KeyRunEnd(0)
	for i < n {
		next := b.KeyAt(i).Hash() % nShards
		end := b.KeyRunEnd(i)
		if next != shard {
			v := b.Slice(runStart, i)
			if err := in.shards[shard].stream.Send(ctx, shardItem{cols: v}); err != nil {
				// The view was cut before Send failed; it holds a retained
				// reference on b that no shard worker will ever release.
				//edgelint:allow batchlife: a failed Send means the shard never took ownership
				v.Release()
				b.Release()
				return err
			}
			runStart, shard = i, next
		}
		i = end
	}
	v := b.Slice(runStart, n)
	err := in.shards[shard].stream.Send(ctx, shardItem{cols: v})
	if err != nil {
		//edgelint:allow batchlife: a failed Send means the shard never took ownership
		v.Release()
	}
	b.Release()
	return err
}

// merge reduces the shards: stats sum; stores merge through the agg
// merge path (exact here, because the key space is partitioned).
func (in *ingest) merge() (*agg.Store, collector.Stats) {
	store := in.shards[0].store
	stats := in.shards[0].col.Stats()
	for _, sh := range in.shards[1:] {
		store.Merge(sh.store)
		stats = stats.Merge(sh.col.Stats())
	}
	return store, stats
}

// traceFinish emits the run's closing events after Wait: one seal per
// surviving group series (value = its session count, the weight the
// critical-path extraction sums) and the finalized coverage ledger on
// the run track. Runs on the caller's goroutine, after every stage has
// returned, so buffer ownership is unambiguous. No-op when untraced.
func (in *ingest) traceFinish(store *agg.Store, cov *faults.Coverage) {
	if in.buf == nil {
		return
	}
	for _, gs := range store.Groups() {
		in.buf.Emit(trace.Event{
			Track: gs.Key.String(), Phase: trace.PhaseSeal, Win: -1, Seq: 0,
			Kind: trace.KSeal, Stage: "seal", Value: int64(gs.TotalSessions()),
		})
	}
	cov.EmitTrace(in.buf)
	in.rec.SampleQueues()
}

// coverage reduces the degradation ledgers — the batch-level ledger
// plus every shard's — into one finalized Coverage (nil when the run
// had no fault plan). Shards own disjoint group-key spaces and the
// final sort removes merge-order sensitivity, so the result is
// identical at any worker count.
func (in *ingest) coverage(rg *runGuard) *faults.Coverage {
	if rg == nil {
		return nil
	}
	cov := rg.cov
	cov.Quarantined = append([]faults.QuarantinedGroup(nil), rg.cov.Quarantined...)
	for _, sh := range in.shards {
		if sh.guard != nil {
			cov.Merge(&sh.guard.cov)
		}
	}
	cov.Finalize()
	return &cov
}

// analyseConcurrent is analyse with the independent §5/§6 analyses
// fanned out over the merged store. The store is sealed first: digest
// reads fold lazily buffered points, so sealing is what makes the
// shared store safe for concurrent readers.
func (r *Results) analyseConcurrent(ctx context.Context, reg *obs.Registry, workers int) {
	if workers <= 1 {
		r.analyse(reg)
		return
	}
	r.Store.Seal(workers)
	params := analysis.DefaultClassifyParams(r.Cfg.Days)
	windows := r.Store.TotalWindows
	if windows == 0 {
		windows = r.Cfg.Windows()
	}
	timed := func(name string, f func()) func(context.Context) error {
		return func(context.Context) error {
			reg.Span(obs.L("analysis_seconds", "analysis", name), "analyse").Time(f)
			return nil
		}
	}

	g := pipeline.NewGroup(ctx)
	g.Go(timed("degradation_minrtt", func() { r.DegMinRTT = analysis.Degradation(r.Store, analysis.MetricMinRTT) }))
	g.Go(timed("degradation_hdratio", func() { r.DegHD = analysis.Degradation(r.Store, analysis.MetricHDratio) }))
	g.Go(timed("opportunity_minrtt", func() { r.OppMinRTT = analysis.Opportunity(r.Store, analysis.MetricMinRTT) }))
	g.Go(timed("opportunity_hdratio", func() { r.OppHD = analysis.Opportunity(r.Store, analysis.MetricHDratio) }))
	_ = g.Wait() // the analyses cannot fail

	// Classification needs all four results; Table 2 only the
	// opportunity pair — a second, smaller fan-out.
	g = pipeline.NewGroup(ctx)
	g.Go(timed("classify", func() {
		r.Table1DegMinRTT = r.DegMinRTT.Classify(windows, params, Table1DegMinRTTMs)
		r.Table1DegHD = r.DegHD.Classify(windows, params, Table1DegHD)
		r.Table1OppMinRTT = r.OppMinRTT.Classify(windows, params, Table1OppMinRTTMs)
		r.Table1OppHD = r.OppHD.Classify(windows, params, Table1OppHD)
	}))
	g.Go(timed("relationships", func() {
		r.Table2MinRTT = r.OppMinRTT.Relationships(5)
		r.Table2HD = r.OppHD.Relationships(0.05)
	}))
	_ = g.Wait()
}
