package study

import "time"

// This file is the package's only wall-clock source. Results.Elapsed
// is operator-facing run timing — it is printed to logs and progress
// output, never rendered into the report body — so these two helpers
// are exempt from the determinism contract. Everything else in the
// package must derive time from sample offsets.

// startTimer begins timing a run for Results.Elapsed.
//
//edgelint:allow nondeterminism: Elapsed is operator-facing wall time and never feeds report output
func startTimer() time.Time { return time.Now() }

// elapsedSince finishes a startTimer measurement.
//
//edgelint:allow nondeterminism: Elapsed is operator-facing wall time and never feeds report output
func elapsedSince(start time.Time) time.Duration { return time.Since(start) }
