package study

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/faults"
	"repro/internal/trace"
)

// traceSpec is chaos across every fault surface — the hardest setting
// for trace determinism, because events come from batch fates, sink
// retries, quarantines, and outage windows at once.
const traceSpec = "seed=7;sink-transient=0.004;sink-permanent=0.0004;truncate=0.15;corrupt=0.05;" +
	"fail-group=3;outage=gru:20-40;delay=0.2;delay-max=300us;retries=4;retry-base=50us"

// traceRun runs the generation study traced and returns the
// deterministic trace bytes plus the results.
func traceRun(t *testing.T, workers int, plan *faults.Plan) ([]byte, *Results) {
	t.Helper()
	cfg := detCfg()
	rec := trace.New(cfg.Seed)
	// Quarantine follow-ups emit one loss event per refused sample, so a
	// chaos run outgrows the default flight-recorder ring; goldens need
	// zero drops, so give the ring headroom.
	rec.SetBufCap(1 << 17)
	res, err := RunCtx(context.Background(), cfg, Options{Workers: workers, Plan: plan, Trace: rec})
	if err != nil {
		t.Fatalf("RunCtx(workers=%d): %v", workers, err)
	}
	var b bytes.Buffer
	if err := rec.Flush(&b); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("workers=%d: ring overwrote %d events; raise the buffer for this workload", workers, rec.Dropped())
	}
	return b.Bytes(), res
}

// The PR's tentpole guarantee: the trace file is byte-identical at any
// worker count, with and without a fault plan — same events, same
// order, same IDs — because every coordinate in it is logical, never
// physical.
func TestTraceBytesWorkerInvariant(t *testing.T) {
	for _, plan := range []*faults.Plan{nil, mustPlan(t, traceSpec)} {
		name := "plain"
		if plan != nil {
			name = "chaos"
		}
		t.Run(name, func(t *testing.T) {
			want, wantRes := traceRun(t, 1, plan)
			if len(want) == 0 {
				t.Fatal("empty trace")
			}
			for _, workers := range []int{2, 4} {
				got, res := traceRun(t, workers, plan)
				if !bytes.Equal(got, want) {
					t.Errorf("trace bytes differ between workers=1 and workers=%d", workers)
				}
				if a, b := renderNormalized(t, wantRes), renderNormalized(t, res); !bytes.Equal(a, b) {
					t.Errorf("traced report differs between workers=1 and workers=%d", workers)
				}
			}
		})
	}
}

// The trace must tell the same degradation story as the coverage
// ledger: per-group loss events, partitioned by cause, sum exactly to
// the ledger's counters — the reconciliation edgetrace causes enforces.
func TestTraceCausesReconcileWithLedger(t *testing.T) {
	raw, res := traceRun(t, 4, mustPlan(t, traceSpec))
	f, err := trace.Parse(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep := trace.Causes(f)
	if !rep.Reconciled() {
		for _, c := range rep.Checks {
			if !c.OK() {
				t.Errorf("cause %q: traced %d, ledger %d", c.Loss, c.Traced, c.Ledger)
			}
		}
		t.Fatal("trace cause totals do not reconcile with the coverage ledger")
	}
	cov := res.Coverage
	if cov == nil {
		t.Fatal("chaos run returned no coverage ledger")
	}
	wantSender := int64(cov.SamplesLostOutage)
	wantNetwork := int64(cov.SamplesLostTruncated + cov.SamplesLostDropped)
	wantReceiver := int64(cov.SamplesLostQuarantined)
	if rep.Sender != wantSender || rep.Network != wantNetwork || rep.Receiver != wantReceiver {
		t.Fatalf("cause buckets = sender %d / network %d / receiver %d, ledger wants %d / %d / %d",
			rep.Sender, rep.Network, rep.Receiver, wantSender, wantNetwork, wantReceiver)
	}
	if rep.Retries != int64(cov.RetriesSpent) || rep.Recovered != int64(cov.TransientRecovered) {
		t.Fatalf("retries/recovered = %d/%d, ledger wants %d/%d",
			rep.Retries, rep.Recovered, cov.RetriesSpent, cov.TransientRecovered)
	}
	if cov.SamplesLost() > 0 && rep.Sender+rep.Network+rep.Receiver == 0 {
		t.Fatal("ledger shows loss but the trace attributes none")
	}
}

// A traced run must not change one byte of the report relative to the
// untraced run — tracing observes the pipeline, never steers it.
func TestTracingDoesNotChangeReport(t *testing.T) {
	cfg := detCfg()
	plain, err := RunCtx(context.Background(), cfg, Options{Workers: 4})
	if err != nil {
		t.Fatalf("untraced run: %v", err)
	}
	_, traced := traceRun(t, 4, nil)
	if a, b := renderNormalized(t, plain), renderNormalized(t, traced); !bytes.Equal(a, b) {
		t.Fatal("tracing changed the rendered report")
	}
}
