package study

import (
	"context"
	"fmt"

	"repro/internal/agg"
	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/sample"
	"repro/internal/trace"
	"repro/internal/world"
)

// runGuard is the pipeline's recovery layer for chaos runs: it applies
// the fault plan's batch-level fates in the ordered delivery path and
// owns the run-level degradation ledger. A nil *runGuard (no plan) is
// valid everywhere and passes batches through untouched.
//
// Guard state is single-goroutine by construction — filterBatch runs
// on the ordered deliver goroutine, each shardGuard on its shard's
// worker — so the ledgers need no locks and merge deterministically in
// shard order.
type runGuard struct {
	inj      *faults.Injector
	failFast bool
	cov      faults.Coverage
	buf      *trace.Buf
}

// trace attaches the deliver-goroutine trace buffer; filterBatch then
// records every batch fate as events. Nil-safe on both sides.
func (rg *runGuard) trace(b *trace.Buf) {
	if rg != nil {
		rg.buf = b
	}
}

// newRunGuard binds an injector (nil yields a nil guard).
func newRunGuard(inj *faults.Injector, failFast bool) *runGuard {
	if inj == nil {
		return nil
	}
	return &runGuard{
		inj:      inj,
		failFast: failFast,
		cov:      faults.Coverage{Spec: inj.Plan().Spec(), FailFast: failFast},
	}
}

// filterBatch applies the batch surface's fate to one generated group
// batch before it enters ingestion: outage losses are booked, corrupt
// and plan-failed batches are dropped whole (or abort the run under
// fail-fast), truncated batches lose their tail. The returned slice is
// what ingestion may aggregate.
func (rg *runGuard) filterBatch(b world.Batch) ([]sample.Sample, error) {
	if rg == nil {
		return b.Samples, nil
	}
	if b.Lost > 0 {
		rg.cov.SamplesLostOutage += b.Lost
		rg.inj.MarkDegraded()
	}
	f := rg.inj.BatchFault(b.Group)
	switch f.Kind {
	case faults.BatchOK:
		return b.Samples, nil
	case faults.BatchTruncate:
		keep := len(b.Samples) - int(float64(len(b.Samples))*f.Frac)
		if keep < 0 {
			keep = 0
		}
		if lost := len(b.Samples) - keep; lost > 0 {
			rg.cov.BatchesTruncated++
			rg.cov.SamplesLostTruncated += lost
			rg.inj.MarkDegraded()
			track := trace.GroupTrack(b.Group)
			rg.buf.Emit(trace.Event{
				Track: track, Phase: trace.PhaseBatch, Win: -1, Seq: 0,
				Kind: trace.KFault, Stage: "batch", Value: int64(lost), Detail: f.Kind.String(),
			})
			rg.buf.Loss(track, trace.PhaseBatch, -1, 0, "batch", trace.LossTruncated, lost)
		}
		return b.Samples[:keep], nil
	default: // BatchCorrupt, BatchFail: the whole batch is unusable.
		if rg.failFast {
			return nil, fmt.Errorf("fail-fast: %s for world group %d: %w", f.Kind, b.Group,
				&faults.FaultError{Surface: faults.SurfaceBatch, Key: fmt.Sprintf("world-group-%d", b.Group)})
		}
		rg.cov.GroupsDropped++
		rg.cov.SamplesLostDropped += len(b.Samples)
		rg.cov.Quarantined = append(rg.cov.Quarantined, faults.QuarantinedGroup{
			Key:         fmt.Sprintf("world-group-%04d", b.Group),
			Reason:      f.Kind.String(),
			SamplesLost: len(b.Samples),
		})
		rg.inj.MarkDegraded()
		track := trace.GroupTrack(b.Group)
		rg.buf.Emit(trace.Event{
			Track: track, Phase: trace.PhaseBatch, Win: -1, Seq: 0,
			Kind: trace.KFault, Stage: "batch", Value: int64(len(b.Samples)), Detail: f.Kind.String(),
		})
		rg.buf.Emit(trace.Event{
			Track: track, Phase: trace.PhaseBatch, Win: -1, Seq: 1,
			Kind: trace.KQuarantine, Stage: "batch", Value: int64(len(b.Samples)), Detail: f.Kind.String(),
		})
		rg.buf.Loss(track, trace.PhaseBatch, -1, 0, "batch", trace.LossDropped, len(b.Samples))
		return nil, nil
	}
}

// shardGuard wraps one ingestion shard's collector with the sink fault
// surface: injected sink failures are retried under the plan's policy;
// permanent (or retry-exhausted) failures quarantine the sample's user
// group — the group's series is withdrawn from the shard store and its
// later samples are refused — instead of poisoning the run. Fault
// decisions are keyed by SessionID and group key, so the merged
// outcome is identical at any worker count even though shard
// membership is not.
type shardGuard struct {
	inj      *faults.Injector
	failFast bool
	col      *collector.Collector
	store    *agg.Store
	policy   faults.Policy
	qidx     map[sample.GroupKey]int
	cov      faults.Coverage
	buf      *trace.Buf
}

// newShardGuard builds the guard for shard i (nil runGuard yields nil).
func (rg *runGuard) newShardGuard(i int, col *collector.Collector, store *agg.Store) *shardGuard {
	if rg == nil {
		return nil
	}
	return &shardGuard{
		inj:      rg.inj,
		failFast: rg.failFast,
		col:      col,
		store:    store,
		policy:   rg.inj.Policy(i),
		qidx:     make(map[sample.GroupKey]int),
	}
}

// offer runs one sample through the guarded sink path.
func (sg *shardGuard) offer(ctx context.Context, s sample.Sample) error {
	if s.HostingProvider {
		// The filter would reject it before any sink ran; no fault
		// surface applies, and the collector keeps its count exact.
		sg.col.Offer(s)
		return sg.col.Err()
	}
	key := s.Key()
	if idx, ok := sg.qidx[key]; ok {
		sg.cov.Quarantined[idx].SamplesLost++
		sg.cov.SamplesLostQuarantined++
		sg.buf.Loss(key.String(), trace.PhaseIngest, -1, s.SessionID, "sink", trace.LossQuarantined, 1)
		return nil
	}
	f := sg.inj.SinkFault(s)
	if f.None() {
		sg.col.Offer(s)
		return sg.col.Err()
	}
	ferr := &faults.FaultError{Surface: faults.SurfaceSink, Key: faults.SinkFaultKey(s), Transient: !f.Permanent}
	if f.Permanent {
		if sg.failFast {
			return fmt.Errorf("fail-fast: %w", ferr)
		}
		sg.buf.Emit(trace.Event{
			Track: key.String(), Phase: trace.PhaseIngest, Win: -1, Seq: s.SessionID,
			Kind: trace.KFault, Stage: "sink", Value: 1, Detail: "sink-permanent",
		})
		sg.quarantine(key, "permanent sink failure", s.SessionID)
		return nil
	}
	rem := f.Transient
	sg.buf.Emit(trace.Event{
		Track: key.String(), Phase: trace.PhaseIngest, Win: -1, Seq: s.SessionID,
		Kind: trace.KFault, Stage: "sink", Value: int64(rem), Detail: "sink-transient",
	})
	p := sg.policy
	p.OnRetry = func(int, error) { sg.cov.RetriesSpent++ }
	p = faults.TracedPolicy(p, sg.buf, key.String(), trace.PhaseIngest, -1, s.SessionID, "sink")
	err := faults.Retry(ctx, p, func() error {
		if rem > 0 {
			rem--
			return ferr
		}
		sg.col.Offer(s)
		return sg.col.Err()
	})
	switch {
	case err == nil:
		sg.cov.TransientRecovered++
		sg.inj.Recovered()
		return nil
	case sg.failFast || !faults.IsTransient(err):
		// Fail-fast, a real sink error, or a cancellation mid-backoff:
		// poison the pipeline with the cause.
		return err
	default:
		sg.quarantine(key, "sink retry budget exhausted", s.SessionID)
		return nil
	}
}

// quarantine isolates one user group: its series leaves the store, its
// samples count as lost, and later samples of the group are refused at
// the guard. The run keeps going — degradation is accounted, not fatal.
// seq is the triggering sample's SessionID — the deterministic stream
// coordinate the quarantine and loss events are filed under.
func (sg *shardGuard) quarantine(key sample.GroupKey, reason string, seq uint64) {
	lost := 1 // the triggering sample never reached the store
	if removed := sg.store.Remove(key); removed != nil {
		lost += removed.TotalSessions()
	}
	sg.cov.SamplesLostQuarantined += lost
	sg.qidx[key] = len(sg.cov.Quarantined)
	sg.cov.Quarantined = append(sg.cov.Quarantined, faults.QuarantinedGroup{
		Key:         key.String(),
		Reason:      reason,
		SamplesLost: lost,
	})
	sg.inj.MarkDegraded()
	sg.buf.Emit(trace.Event{
		Track: key.String(), Phase: trace.PhaseIngest, Win: -1, Seq: seq,
		Kind: trace.KQuarantine, Stage: "sink", Value: int64(lost), Detail: reason,
	})
	sg.buf.Loss(key.String(), trace.PhaseIngest, -1, seq, "sink", trace.LossQuarantined, lost)
}
