package study

import (
	"bytes"
	"testing"

	"repro/internal/collector"
	"repro/internal/sample"
	"repro/internal/world"
)

// TestFromSamplesMatchesInProcess: writing the dataset to disk and
// analysing it back must produce the same aggregations as the
// in-process pipeline.
func TestFromSamplesMatchesInProcess(t *testing.T) {
	cfg := world.Config{Seed: 13, Groups: 8, Days: 1, SessionsPerGroupWindow: 6}

	// In-process run.
	direct := Run(cfg)

	// Disk round trip: generate → JSONL → FromSamples. The writer sees
	// the raw stream (pre-filter), as cmd/edgesim writes post-filter
	// samples; replicate edgesim exactly: filter first, then write.
	var buf bytes.Buffer
	w := sample.NewWriter(&buf)
	col := collector.New(collector.WriterSink(w))
	world.New(cfg).Generate(col.Offer)
	if err := col.Err(); err != nil {
		t.Fatal(err)
	}

	loaded, err := FromSamples(sample.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Store.TotalSamples != direct.Store.TotalSamples {
		t.Errorf("samples: loaded %d vs direct %d", loaded.Store.TotalSamples, direct.Store.TotalSamples)
	}
	if loaded.Store.Len() != direct.Store.Len() {
		t.Errorf("groups: loaded %d vs direct %d", loaded.Store.Len(), direct.Store.Len())
	}
	if loaded.Cfg.Days != cfg.Days {
		t.Errorf("inferred days = %d, want %d", loaded.Cfg.Days, cfg.Days)
	}
	// Medians agree (identical inputs, identical digests).
	dm := direct.Overview.MinRTT.Quantile(0.5)
	lm := loaded.Overview.MinRTT.Quantile(0.5)
	if dm != lm {
		t.Errorf("overview median: loaded %v vs direct %v", lm, dm)
	}
	// Degradation totals agree.
	if loaded.DegMinRTT.TotalBytes != direct.DegMinRTT.TotalBytes {
		t.Errorf("degradation bytes: loaded %d vs direct %d",
			loaded.DegMinRTT.TotalBytes, direct.DegMinRTT.TotalBytes)
	}
}

func TestFromSamplesEmpty(t *testing.T) {
	res, err := FromSamples(sample.NewReader(bytes.NewReader(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.TotalSamples != 0 || res.Cfg.Days != 1 {
		t.Errorf("empty dataset handled badly: %+v", res.Cfg)
	}
}

func TestFromSamplesBadInput(t *testing.T) {
	if _, err := FromSamples(sample.NewReader(bytes.NewBufferString("{bad\n"))); err == nil {
		t.Error("malformed dataset should error")
	}
}
