package study

import (
	"context"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/segstore"
)

// FromSegments runs every analysis over a segment dataset directory (as
// written by `edgesim -format seg` or segcat). The manifest is pruned
// against opt.Filter before any segment byte is read; surviving
// segments decode on opt.Workers goroutines and feed the same sharded
// ingestion the JSONL paths use, in manifest order — so the rendered
// report is byte-identical to the JSONL path over the same samples, at
// every worker count.
//
// By default the path is row-free end to end: decoded column batches
// flow from the scanner through the collector into the store's batch
// fold without ever materializing sample.Sample structs. opt.RowOracle
// re-enables the row currency (and chaos runs materialize rows inside
// the shard workers, where per-sample fault decisions are made); either
// way the report bytes are identical — that equivalence is this path's
// standing correctness check.
func FromSegments(ctx context.Context, dir string, opt Options) (res *Results, err error) {
	start := startTimer()
	reg := opt.Reg
	workers := opt.workers()
	inj := faults.NewInjector(opt.Plan, 0)
	inj.Instrument(reg)
	rg := newRunGuard(inj, opt.FailFast)

	r, err := segstore.Open(dir)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	r.Instrument(reg)

	var store *agg.Store
	var stats collector.Stats
	var overview *analysis.Overview
	var coverage *faults.Coverage

	if workers <= 1 && rg == nil && opt.Trace == nil {
		// Sequential oracle: one goroutine end to end.
		store = agg.NewStore()
		store.Instrument(reg)
		overview = analysis.NewOverview()
		overview.Instrument(reg)
		col := collector.New()
		col.Instrument(reg)
		if opt.RowOracle {
			col.AddSink(collector.StoreSink(store))
			col.AddSink(collector.FuncSink(overview.Add))
			//edgelint:allow rowfree: opt.RowOracle explicitly requests the row currency for verification
			err = r.Scan(ctx, 1, opt.Filter, func(rows []sample.Sample) error {
				for i := range rows {
					col.Offer(rows[i])
				}
				return col.Err()
			})
		} else {
			col.AddColumnSink(collector.StoreColumnSink(store))
			col.AddColumnSink(collector.ColumnFuncSink(overview.AddColumns))
			err = r.ScanColumns(ctx, 1, opt.Filter, func(b *segstore.ColumnBatch) error {
				col.OfferColumns(b)
				b.Release()
				return col.Err()
			})
		}
		if err != nil {
			return nil, err
		}
		stats = col.Stats()
	} else {
		// Sharded path: the scanner's ordered emit is the feed stage.
		ing := newIngest(workers, reg, rg, opt.Trace)
		rg.trace(ing.buf)
		g := pipeline.NewGroup(ctx)
		g.Trace(opt.Trace)
		ing.start(g)
		g.Go(func(ctx context.Context) error {
			defer ing.close()
			if opt.RowOracle {
				//edgelint:allow rowfree: opt.RowOracle explicitly requests the row currency for verification
				return r.Scan(ctx, workers, opt.Filter, func(rows []sample.Sample) error {
					// Scan reuses its row buffer across emits, but feed retains
					// run slices in the shard streams — so the oracle copies.
					return ing.feed(ctx, append([]sample.Sample(nil), rows...))
				})
			}
			return r.ScanColumns(ctx, workers, opt.Filter, func(b *segstore.ColumnBatch) error {
				return ing.feedColumns(ctx, b)
			})
		})
		if err = g.Wait(); err != nil {
			return nil, err
		}
		store, stats = ing.merge()
		overview = ing.overview
		coverage = ing.coverage(rg)
		ing.traceFinish(store, coverage)
	}

	res = &Results{
		Cfg:       inferredCfg(store),
		Collector: stats,
		Overview:  overview,
		Store:     store,
		Coverage:  coverage,
	}
	res.analyseConcurrent(ctx, reg, workers)
	res.Elapsed = elapsedSince(start)
	return res, nil
}
