package study

import (
	"context"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/segstore"
	"repro/internal/world"
)

// FromSegments runs every analysis over a segment dataset directory (as
// written by `edgesim -format seg` or segcat). The manifest is pruned
// against opt.Filter before any segment byte is read; surviving
// segments decode on opt.Workers goroutines and feed the same sharded
// ingestion the JSONL paths use, in manifest order — so the rendered
// report is byte-identical to the JSONL path over the same samples, at
// every worker count.
func FromSegments(ctx context.Context, dir string, opt Options) (res *Results, err error) {
	start := startTimer()
	reg := opt.Reg
	workers := opt.workers()
	inj := faults.NewInjector(opt.Plan, 0)
	inj.Instrument(reg)
	rg := newRunGuard(inj, opt.FailFast)

	r, err := segstore.Open(dir)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	r.Instrument(reg)

	var store *agg.Store
	var stats collector.Stats
	var overview *analysis.Overview
	var coverage *faults.Coverage

	if workers <= 1 && rg == nil && opt.Trace == nil {
		// Sequential oracle: one goroutine end to end.
		store = agg.NewStore()
		store.Instrument(reg)
		overview = analysis.NewOverview()
		overview.Instrument(reg)
		col := collector.New(
			collector.StoreSink(store),
			collector.FuncSink(overview.Add),
		)
		col.Instrument(reg)
		err = r.Scan(ctx, 1, opt.Filter, func(rows []sample.Sample) error {
			for i := range rows {
				col.Offer(rows[i])
			}
			return col.Err()
		})
		if err != nil {
			return nil, err
		}
		stats = col.Stats()
	} else {
		// Sharded path: the scanner's ordered emit is the feed stage.
		ing := newIngest(workers, reg, rg, opt.Trace)
		rg.trace(ing.buf)
		g := pipeline.NewGroup(ctx)
		g.Trace(opt.Trace)
		ing.start(g)
		g.Go(func(ctx context.Context) error {
			defer ing.close()
			return r.Scan(ctx, workers, opt.Filter, func(rows []sample.Sample) error {
				return ing.feed(ctx, rows)
			})
		})
		if err = g.Wait(); err != nil {
			return nil, err
		}
		store, stats = ing.merge()
		overview = ing.overview
		coverage = ing.coverage(rg)
		ing.traceFinish(store, coverage)
	}

	days := (store.TotalWindows + world.WindowsPerDay - 1) / world.WindowsPerDay
	if days < 1 {
		days = 1
	}
	res = &Results{
		Cfg:       world.Config{Groups: store.Len(), Days: days},
		Collector: stats,
		Overview:  overview,
		Store:     store,
		Coverage:  coverage,
	}
	// The inferred config must report the true window count.
	res.Cfg.SessionsPerGroupWindow = float64(store.TotalSamples) / float64(max(1, store.Len()*store.TotalWindows))
	res.analyseConcurrent(ctx, reg, workers)
	res.Elapsed = elapsedSince(start)
	return res, nil
}
