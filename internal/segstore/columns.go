package segstore

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bgp"
	"repro/internal/geo"
	"repro/internal/sample"
)

// DictColumn is a dictionary-encoded string column: the distinct values
// in first-appearance order plus one index per row. Dictionary entries
// are unique, so two rows carry equal strings iff their indexes are
// equal — which is what lets group-dispatch compare rows without
// touching string bytes.
type DictColumn struct {
	Dict []string
	Idx  []uint32
}

// Value returns row i's string.
func (c *DictColumn) Value(i int) string { return c.Dict[c.Idx[i]] }

// Single returns the column's only value when the dictionary holds
// exactly one entry — the column-level constant-ness proof.
func (c *DictColumn) Single() (string, bool) {
	if len(c.Dict) == 1 {
		return c.Dict[0], true
	}
	return "", false
}

// ColumnBatch is a decoded segment as typed column slices sharing one
// row axis — the currency of the columnar read path. Consumers iterate
// columns directly (aggregation, overview folds, filters) instead of
// materializing sample.Sample row structs; AppendRows exists for the
// row-oracle paths and for consumers that genuinely need rows (the
// per-sample fault guard).
//
// Response-size lists are flattened: row i's values live in
// RespVals[start:RespEnds[i]] where start is RespEnds[i-1] (or the
// batch's base offset for row 0) — see RespSpan.
//
// Ownership: batches emitted by Reader.ScanColumns come from a pool and
// must be released (Release) exactly once by the consumer; Slice views
// hold a reference on their parent and are released the same way.
type ColumnBatch struct {
	n int

	SessionID []uint64
	PoP       DictColumn
	Prefix    DictColumn
	ClientAS  []int64
	Country   DictColumn
	Continent DictColumn
	// ClientSubnet carries the sample's uint8 subnet index widened to the
	// shared int64 column type.
	ClientSubnet   []int64
	Proto          DictColumn
	DistanceKm     []float64
	CrossContinent []bool
	Route          DictColumn
	RouteRel       []int64
	ASPathLen      []int64
	Prepended      []bool
	AltIndex       []int64
	// Start holds session start offsets in nanoseconds from the dataset
	// epoch (time.Duration widened to int64).
	Start           []int64
	Duration        []int64
	BusyFraction    []float64
	Bytes           []int64
	Transactions    []int64
	RespEnds        []int
	RespVals        []int64
	MediaEndpoint   []bool
	MinRTT          []int64
	HDTested        []int64
	HDAchieved      []int64
	SimpleAchieved  []int64
	HostingProvider []bool

	// StartMin/StartMax bound the rows' Start values (valid when Len>0);
	// with the single-group proof they are the pre-aggregation hint: a
	// batch whose bounds fall in one 15-minute window needs no per-row
	// window dispatch. Filtering keeps the bounds valid (it re-tightens
	// them), so they never claim a narrower span than the rows cover.
	StartMin, StartMax int64
	// StartsSorted reports that Start ascends — segments are written in
	// stream order, so this is the common case.
	StartsSorted bool
	// singleGroup is the manifest-level single-group proof (set by the
	// scanner from SegmentMeta.SingleGroup); SingleKey also accepts the
	// decoded dictionaries' own evidence.
	singleGroup bool

	// respFirst is the RespVals offset of row 0 — zero for owned batches,
	// the parent's span start for Slice views.
	respFirst int

	// Pool plumbing: an owned batch recycles through pool when refs hits
	// zero; a view forwards its release to parent instead. view marks a
	// batch born from Slice for the whole of its life — unlike parent it
	// survives the final release, so late double releases are counted
	// (leakcheck.go) rather than silently treated as plain batches.
	refs   atomic.Int32
	pool   *sync.Pool
	parent *ColumnBatch
	view   bool
}

// Len returns the row count.
func (b *ColumnBatch) Len() int { return b.n }

// RespSpan returns the RespVals range holding row i's response sizes.
func (b *ColumnBatch) RespSpan(i int) (lo, hi int) {
	lo = b.respFirst
	if i > 0 {
		lo = b.RespEnds[i-1]
	}
	return lo, b.RespEnds[i]
}

// KeyAt returns row i's user group. The strings are shared with the
// dictionaries — no allocation.
func (b *ColumnBatch) KeyAt(i int) sample.GroupKey {
	return sample.GroupKey{PoP: b.PoP.Value(i), Prefix: b.Prefix.Value(i), Country: b.Country.Value(i)}
}

// SingleKey returns the batch's only user group when every row provably
// shares one — via the manifest's single-group index or the decoded
// dictionaries (each O(1) — no row scan).
func (b *ColumnBatch) SingleKey() (sample.GroupKey, bool) {
	if b.n == 0 {
		return sample.GroupKey{}, false
	}
	if !b.singleGroup && (len(b.PoP.Dict) != 1 || len(b.Prefix.Dict) != 1 || len(b.Country.Dict) != 1) {
		return sample.GroupKey{}, false
	}
	return b.KeyAt(0), true
}

// KeyRunEnd returns the end (exclusive) of the run of rows sharing row
// start's user group — the group-dispatch unit. Dictionary indexes
// compare in place of strings.
func (b *ColumnBatch) KeyRunEnd(start int) int {
	if b.singleGroup {
		return b.n
	}
	p, x, c := b.PoP.Idx[start], b.Prefix.Idx[start], b.Country.Idx[start]
	i := start + 1
	for i < b.n && b.PoP.Idx[i] == p && b.Prefix.Idx[i] == x && b.Country.Idx[i] == c {
		i++
	}
	return i
}

// Slice returns a view of rows [lo, hi) sharing b's backing arrays. The
// view holds a reference on b: release both (the view when its consumer
// is done, b when the slicer is done). Views may be compacted — their
// row ranges are disjoint regions of the parent, so sibling views stay
// untouched — but must not outlive the parent's final release.
func (b *ColumnBatch) Slice(lo, hi int) *ColumnBatch {
	root := b
	if root.parent != nil {
		root = root.parent
	}
	root.retain()
	v := &ColumnBatch{
		n:         hi - lo,
		SessionID: b.SessionID[lo:hi],
		PoP:       DictColumn{Dict: b.PoP.Dict, Idx: b.PoP.Idx[lo:hi]},
		Prefix:    DictColumn{Dict: b.Prefix.Dict, Idx: b.Prefix.Idx[lo:hi]},
		ClientAS:  b.ClientAS[lo:hi],
		Country:   DictColumn{Dict: b.Country.Dict, Idx: b.Country.Idx[lo:hi]},
		Continent: DictColumn{Dict: b.Continent.Dict, Idx: b.Continent.Idx[lo:hi]},

		ClientSubnet:   b.ClientSubnet[lo:hi],
		Proto:          DictColumn{Dict: b.Proto.Dict, Idx: b.Proto.Idx[lo:hi]},
		DistanceKm:     b.DistanceKm[lo:hi],
		CrossContinent: b.CrossContinent[lo:hi],
		Route:          DictColumn{Dict: b.Route.Dict, Idx: b.Route.Idx[lo:hi]},
		RouteRel:       b.RouteRel[lo:hi],
		ASPathLen:      b.ASPathLen[lo:hi],
		Prepended:      b.Prepended[lo:hi],
		AltIndex:       b.AltIndex[lo:hi],
		Start:          b.Start[lo:hi],
		Duration:       b.Duration[lo:hi],
		BusyFraction:   b.BusyFraction[lo:hi],
		Bytes:          b.Bytes[lo:hi],
		Transactions:   b.Transactions[lo:hi],
		RespEnds:       b.RespEnds[lo:hi],
		RespVals:       b.RespVals,

		MediaEndpoint:   b.MediaEndpoint[lo:hi],
		MinRTT:          b.MinRTT[lo:hi],
		HDTested:        b.HDTested[lo:hi],
		HDAchieved:      b.HDAchieved[lo:hi],
		SimpleAchieved:  b.SimpleAchieved[lo:hi],
		HostingProvider: b.HostingProvider[lo:hi],

		StartsSorted: b.StartsSorted,
		singleGroup:  b.singleGroup,
		parent:       root,
		view:         true,
	}
	v.refs.Store(1)
	if v.n > 0 {
		v.respFirst, _ = b.RespSpan(lo)
		v.StartMin, v.StartMax = b.StartMin, b.StartMax
	}
	return v
}

// retain adds one reference (owned batches only).
func (b *ColumnBatch) retain() { b.refs.Add(1) }

// Release drops one reference. An owned batch returns to its scan pool
// on the last release; a view forwards to its parent. Releasing a batch
// that is neither pooled nor a view is a no-op, so consumers may always
// release what they were handed.
//
// Releasing the same batch or view twice is a protocol violation: it
// used to no-op silently for views (while the view still aliased
// recycled parent arrays) and to corrupt pool accounting for owned
// batches. Both are now counted (LeakStats) so tests fail loudly, and
// the extra release is absorbed rather than forwarded.
func (b *ColumnBatch) Release() {
	if b.view {
		if b.refs.Add(-1) != 0 {
			doubleReleases.Add(1)
			return
		}
		p := b.parent
		b.parent = nil
		p.Release()
		return
	}
	if b.pool == nil {
		return
	}
	switch n := b.refs.Add(-1); {
	case n == 0:
		outstanding.Add(-1)
		if leakPoison.Load() {
			b.poison()
		}
		b.pool.Put(b)
	case n < 0:
		doubleReleases.Add(1)
		b.refs.Add(1) // clamp: don't let later retains inherit the skew
	}
}

// Compact drops every row i with keep(i) == false, in place, and
// returns the surviving row count. Order is preserved; the start bounds
// are re-tightened over the survivors. On a Slice view the compaction
// writes stay inside the view's region of the parent, so sibling views
// are unaffected.
func (b *ColumnBatch) Compact(keep func(i int) bool) int {
	if b.n == 0 {
		return 0
	}
	k := 0
	respOut, _ := b.RespSpan(0)
	first := true
	for i := 0; i < b.n; i++ {
		if !keep(i) {
			continue
		}
		lo, hi := b.RespSpan(i)
		if k != i {
			b.SessionID[k] = b.SessionID[i]
			b.PoP.Idx[k] = b.PoP.Idx[i]
			b.Prefix.Idx[k] = b.Prefix.Idx[i]
			b.ClientAS[k] = b.ClientAS[i]
			b.Country.Idx[k] = b.Country.Idx[i]
			b.Continent.Idx[k] = b.Continent.Idx[i]
			b.ClientSubnet[k] = b.ClientSubnet[i]
			b.Proto.Idx[k] = b.Proto.Idx[i]
			b.DistanceKm[k] = b.DistanceKm[i]
			b.CrossContinent[k] = b.CrossContinent[i]
			b.Route.Idx[k] = b.Route.Idx[i]
			b.RouteRel[k] = b.RouteRel[i]
			b.ASPathLen[k] = b.ASPathLen[i]
			b.Prepended[k] = b.Prepended[i]
			b.AltIndex[k] = b.AltIndex[i]
			b.Start[k] = b.Start[i]
			b.Duration[k] = b.Duration[i]
			b.BusyFraction[k] = b.BusyFraction[i]
			b.Bytes[k] = b.Bytes[i]
			b.Transactions[k] = b.Transactions[i]
			b.MediaEndpoint[k] = b.MediaEndpoint[i]
			b.MinRTT[k] = b.MinRTT[i]
			b.HDTested[k] = b.HDTested[i]
			b.HDAchieved[k] = b.HDAchieved[i]
			b.SimpleAchieved[k] = b.SimpleAchieved[i]
			b.HostingProvider[k] = b.HostingProvider[i]
		}
		// Response spans move down independently of the row copy: earlier
		// dropped rows leave a gap in RespVals even when k == i holds later.
		respOut += copy(b.RespVals[respOut:], b.RespVals[lo:hi])
		b.RespEnds[k] = respOut
		if first || b.Start[k] < b.StartMin {
			b.StartMin = b.Start[k]
		}
		if first || b.Start[k] > b.StartMax {
			b.StartMax = b.Start[k]
		}
		first = false
		k++
	}
	b.n = k
	b.truncate(k)
	return k
}

// truncate shortens every row-axis slice to n rows.
func (b *ColumnBatch) truncate(n int) {
	b.SessionID = b.SessionID[:n]
	b.PoP.Idx = b.PoP.Idx[:n]
	b.Prefix.Idx = b.Prefix.Idx[:n]
	b.ClientAS = b.ClientAS[:n]
	b.Country.Idx = b.Country.Idx[:n]
	b.Continent.Idx = b.Continent.Idx[:n]
	b.ClientSubnet = b.ClientSubnet[:n]
	b.Proto.Idx = b.Proto.Idx[:n]
	b.DistanceKm = b.DistanceKm[:n]
	b.CrossContinent = b.CrossContinent[:n]
	b.Route.Idx = b.Route.Idx[:n]
	b.RouteRel = b.RouteRel[:n]
	b.ASPathLen = b.ASPathLen[:n]
	b.Prepended = b.Prepended[:n]
	b.AltIndex = b.AltIndex[:n]
	b.Start = b.Start[:n]
	b.Duration = b.Duration[:n]
	b.BusyFraction = b.BusyFraction[:n]
	b.Bytes = b.Bytes[:n]
	b.Transactions = b.Transactions[:n]
	b.RespEnds = b.RespEnds[:n]
	b.MediaEndpoint = b.MediaEndpoint[:n]
	b.MinRTT = b.MinRTT[:n]
	b.HDTested = b.HDTested[:n]
	b.HDAchieved = b.HDAchieved[:n]
	b.SimpleAchieved = b.SimpleAchieved[:n]
	b.HostingProvider = b.HostingProvider[:n]
}

// AppendRows materializes the batch as sample.Sample rows appended to
// dst — the bridge back to the row world (oracle paths, JSONL export,
// the per-sample fault guard). ResponseBytes slices are freshly
// allocated, so appended rows stay valid after the batch is released;
// dictionary strings are shared (strings are immutable).
func (b *ColumnBatch) AppendRows(dst []sample.Sample) []sample.Sample {
	for i := 0; i < b.n; i++ {
		var resp []int64
		if lo, hi := b.RespSpan(i); hi > lo {
			resp = append([]int64(nil), b.RespVals[lo:hi]...)
		}
		dst = append(dst, sample.Sample{
			SessionID:       b.SessionID[i],
			PoP:             b.PoP.Value(i),
			Prefix:          b.Prefix.Value(i),
			ClientAS:        int(b.ClientAS[i]),
			Country:         b.Country.Value(i),
			Continent:       geo.Continent(b.Continent.Value(i)),
			ClientSubnet:    uint8(b.ClientSubnet[i]),
			Proto:           sample.Protocol(b.Proto.Value(i)),
			DistanceKm:      b.DistanceKm[i],
			CrossContinent:  b.CrossContinent[i],
			RouteID:         b.Route.Value(i),
			RouteRel:        bgp.RelType(b.RouteRel[i]),
			ASPathLen:       int(b.ASPathLen[i]),
			Prepended:       b.Prepended[i],
			AltIndex:        int(b.AltIndex[i]),
			Start:           time.Duration(b.Start[i]),
			Duration:        time.Duration(b.Duration[i]),
			BusyFraction:    b.BusyFraction[i],
			Bytes:           b.Bytes[i],
			Transactions:    int(b.Transactions[i]),
			ResponseBytes:   resp,
			MediaEndpoint:   b.MediaEndpoint[i],
			MinRTT:          time.Duration(b.MinRTT[i]),
			HDTested:        int(b.HDTested[i]),
			HDAchieved:      int(b.HDAchieved[i]),
			SimpleAchieved:  int(b.SimpleAchieved[i]),
			HostingProvider: b.HostingProvider[i],
		})
	}
	return dst
}

// reset prepares b to receive an n-row decode, reusing column buffers
// whose capacity allows. Views must never be reset — only owned
// batches cycle through decode.
func (b *ColumnBatch) reset(n int) {
	b.n = n
	b.SessionID = grow(b.SessionID, n)
	b.PoP.Idx = grow(b.PoP.Idx, n)
	b.Prefix.Idx = grow(b.Prefix.Idx, n)
	b.ClientAS = grow(b.ClientAS, n)
	b.Country.Idx = grow(b.Country.Idx, n)
	b.Continent.Idx = grow(b.Continent.Idx, n)
	b.ClientSubnet = grow(b.ClientSubnet, n)
	b.Proto.Idx = grow(b.Proto.Idx, n)
	b.DistanceKm = grow(b.DistanceKm, n)
	b.CrossContinent = grow(b.CrossContinent, n)
	b.Route.Idx = grow(b.Route.Idx, n)
	b.RouteRel = grow(b.RouteRel, n)
	b.ASPathLen = grow(b.ASPathLen, n)
	b.Prepended = grow(b.Prepended, n)
	b.AltIndex = grow(b.AltIndex, n)
	b.Start = grow(b.Start, n)
	b.Duration = grow(b.Duration, n)
	b.BusyFraction = grow(b.BusyFraction, n)
	b.Bytes = grow(b.Bytes, n)
	b.Transactions = grow(b.Transactions, n)
	b.RespEnds = grow(b.RespEnds, n)
	b.RespVals = b.RespVals[:0]
	b.MediaEndpoint = grow(b.MediaEndpoint, n)
	b.MinRTT = grow(b.MinRTT, n)
	b.HDTested = grow(b.HDTested, n)
	b.HDAchieved = grow(b.HDAchieved, n)
	b.SimpleAchieved = grow(b.SimpleAchieved, n)
	b.HostingProvider = grow(b.HostingProvider, n)
	b.PoP.Dict = b.PoP.Dict[:0]
	b.Prefix.Dict = b.Prefix.Dict[:0]
	b.Country.Dict = b.Country.Dict[:0]
	b.Continent.Dict = b.Continent.Dict[:0]
	b.Proto.Dict = b.Proto.Dict[:0]
	b.Route.Dict = b.Route.Dict[:0]
}

// finalize derives the row-scan hints after a decode: start bounds and
// sortedness in one pass.
func (b *ColumnBatch) finalize() {
	b.StartMin, b.StartMax, b.StartsSorted = 0, 0, true
	b.singleGroup = false
	b.respFirst = 0
	if b.n == 0 {
		return
	}
	mn, mx := b.Start[0], b.Start[0]
	sorted := true
	for i := 1; i < b.n; i++ {
		v := b.Start[i]
		if v < b.Start[i-1] {
			sorted = false
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	b.StartMin, b.StartMax, b.StartsSorted = mn, mx, sorted
}

// grow returns s resized to n rows, reusing its backing array when the
// capacity allows — the batch-pooling primitive.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
