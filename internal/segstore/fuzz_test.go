package segstore

import (
	"testing"
)

// FuzzSegmentDecode throws arbitrary bytes at the segment decoder. The
// contract under fuzz: corrupt, truncated, or hostile input returns an
// error (or decodes cleanly when the mutation survived every CRC) —
// never a panic, and never an allocation driven by an unvalidated row
// or length field. Seeds cover valid segments (so mutations explore the
// deep decode paths), truncations, and a corpus of hostile headers.
func FuzzSegmentDecode(f *testing.F) {
	rows := testSamples(f, 21, 3, 1)
	valid, _ := EncodeSegment(rows)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	empty, _ := EncodeSegment(nil)
	f.Add(empty)
	f.Add([]byte("EDGESEG1"))
	// Hostile header: plausible magic+version with a huge row count.
	f.Add(append(append([]byte{}, valid[:9]...), 0xff, 0xff, 0xff, 0xff, 0x7f))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := DecodeSegment(data)
		// The columnar decode is the same parser behind a different
		// materialization: it must agree byte for byte — same error or the
		// same rows.
		b, cerr := DecodeSegmentColumns(data)
		if (err == nil) != (cerr == nil) {
			t.Fatalf("row/columnar decode disagree: row err=%v, columnar err=%v", err, cerr)
		}
		if err != nil {
			return
		}
		if got := b.AppendRows(nil); len(got) != len(rows) {
			t.Fatalf("columnar decode has %d rows, row decode %d", len(got), len(rows))
		}
		// A successful decode must be internally consistent.
		for i := range rows {
			_ = rows[i]
		}
	})
}
