package segstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// AcksName is the shipping ack log a PoP's dataset directory carries
// once a shipper has run: the durable record of which committed
// segments the central merger has acknowledged.
const AcksName = "ACKS.json"

// AckFormatVersion tags the ack-log encoding revision.
const AckFormatVersion = "edgeack/1"

// AckLog is the committed-vs-acked watermark beside the manifest. The
// manifest says what exists; the ack log says what the merger has
// durably received. A shipper killed at any instant resumes by
// shipping exactly the committed-but-unacked set — re-shipping a
// segment whose ack was written on the wire but not yet committed here
// is safe, because the merger deduplicates by (origin, ID, hash).
//
// Like the manifest, the log carries no wall-clock fields and renders
// its IDs sorted, so two runs that acked the same set commit
// byte-identical logs.
type AckLog struct {
	Format string `json:"format"`
	// Origin must match the dataset manifest's origin; a log from a
	// different invocation is refused on load.
	Origin string `json:"origin,omitempty"`
	// Acked lists acknowledged segment IDs, ascending.
	Acked []int `json:"acked"`

	acked map[int]bool
}

// LoadAcks reads dir's ack log. A missing log is an empty one (no
// shipment has ever been acknowledged); a corrupt or wrong-origin log
// is an error, never silently ignored — dropping acks would make the
// shipper re-send everything, dropping the origin check could mix two
// runs' watermarks.
func LoadAcks(dir, origin string) (*AckLog, error) {
	l := &AckLog{Format: AckFormatVersion, Origin: origin, acked: make(map[int]bool)}
	data, err := os.ReadFile(filepath.Join(dir, AcksName))
	if os.IsNotExist(err) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("segstore: %s: read ack log: %w", dir, err)
	}
	var disk AckLog
	if err := json.Unmarshal(data, &disk); err != nil {
		return nil, fmt.Errorf("segstore: %s: corrupt ack log: %w", dir, err)
	}
	if disk.Format != AckFormatVersion {
		return nil, fmt.Errorf("segstore: %s: ack log format %q, want %q", dir, disk.Format, AckFormatVersion)
	}
	if disk.Origin != origin {
		return nil, fmt.Errorf("segstore: %s: ack log origin %q does not match dataset origin %q", dir, disk.Origin, origin)
	}
	for _, id := range disk.Acked {
		l.acked[id] = true
	}
	l.rebuild()
	return l, nil
}

// Has reports whether segment id has been acknowledged.
func (l *AckLog) Has(id int) bool { return l.acked[id] }

// Len counts acknowledged segments.
func (l *AckLog) Len() int { return len(l.acked) }

// Add records an acknowledgement in memory (idempotent). Call Commit
// to make it durable.
func (l *AckLog) Add(id int) {
	if !l.acked[id] {
		l.acked[id] = true
		l.rebuild()
	}
}

// Watermark returns the highest segment ID below which every ID in the
// log is contiguously acknowledged (-1 when none are): the resume
// scan's fast-skip bound. Acks can arrive out of order, so IDs above
// the watermark may be acked too — Has is the precise check.
func (l *AckLog) Watermark() int {
	w := -1
	for _, id := range l.Acked {
		if id != w+1 {
			break
		}
		w = id
	}
	return w
}

// Commit writes the log atomically beside the manifest (same
// write-temp + fsync + rename protocol).
func (l *AckLog) Commit(dir string) error {
	if err := atomicWriteJSON(dir, AcksName, l); err != nil {
		return fmt.Errorf("segstore: commit ack log: %w", err)
	}
	return nil
}

func (l *AckLog) rebuild() {
	l.Acked = l.Acked[:0]
	for id := range l.acked {
		l.Acked = append(l.Acked, id)
	}
	sort.Ints(l.Acked)
}
