package segstore

import (
	"fmt"
	"os"
	"path/filepath"
)

// Writer appends segments to a dataset directory under the manifest
// commit protocol:
//
//  1. the encoded segment is written to a temp file and renamed into
//     place (readers never see a torn segment file);
//  2. the manifest — now listing the new segment — is committed
//     atomically (commitManifest).
//
// A crash or SIGINT between the two leaves an orphan segment file that
// the manifest does not reference; the next run overwrites it. Because
// the manifest is the sole source of truth, the dataset is readable
// after an interrupt at any instant, and Create on an existing
// directory resumes: segments (and tombstones) already committed are
// reported by Committed and skipped by the caller.
//
// Writer is single-goroutine by design — it is the ordered tail of a
// pipeline (cmd/edgesim reorders encoded segments before handing them
// over), mirroring the JSONL writer stage.
type Writer struct {
	dir string
	man *Manifest
	// done indexes every ID the manifest accounts for (segment or
	// tombstone) — the resume skip-set.
	done map[int]bool
}

// Create opens dir for writing, creating it if needed. If dir already
// holds a manifest the writer resumes it: origin must match (a resumed
// run with a different seed or fault plan would silently interleave
// two datasets), and committed segment files are re-verified by size
// and checksum — entries whose files went missing or rotted are
// dropped so the caller regenerates them.
func Create(dir, origin string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("segstore: %w", err)
	}
	w := &Writer{dir: dir, done: map[int]bool{}}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		man, err := loadManifest(dir)
		if err != nil {
			return nil, err
		}
		if man.Origin != origin {
			return nil, fmt.Errorf("segstore: %s: manifest origin %q does not match %q; refusing to resume", dir, man.Origin, origin)
		}
		kept := man.Segments[:0]
		for _, m := range man.Segments {
			data, err := os.ReadFile(filepath.Join(dir, m.File))
			if err != nil || int64(len(data)) != m.Bytes || fileCRC(data) != m.CRC {
				continue // regenerate this one
			}
			kept = append(kept, m)
			w.done[m.ID] = true
		}
		man.Segments = kept
		for _, tb := range man.Tombstones {
			w.done[tb.ID] = true
		}
		w.man = man
		return w, nil
	}
	w.man = &Manifest{Format: FormatVersion, Origin: origin, Segments: []SegmentMeta{}}
	return w, nil
}

// Committed reports whether the manifest already accounts for id
// (either a verified segment or a tombstone) — the resume predicate.
func (w *Writer) Committed(id int) bool { return w.done[id] }

// Manifest exposes the in-memory manifest (for reporting; the on-disk
// copy only advances on Commit).
func (w *Writer) Manifest() *Manifest { return w.man }

// Add writes one encoded segment (blob and meta from EncodeSegment)
// under id. The file lands atomically, but the manifest does not
// reference it until the next Commit.
func (w *Writer) Add(id int, blob []byte, meta SegmentMeta) error {
	if w.done[id] {
		return fmt.Errorf("segstore: segment %d already committed", id)
	}
	meta.ID = id
	meta.File = segmentFileName(id)
	tmp := filepath.Join(w.dir, meta.File+".tmp")
	if err := os.WriteFile(tmp, blob, 0o666); err != nil {
		return fmt.Errorf("segstore: segment %d: %w", id, err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, meta.File)); err != nil {
		return fmt.Errorf("segstore: segment %d: %w", id, err)
	}
	w.man.Segments = append(w.man.Segments, meta)
	w.done[id] = true
	return nil
}

// Tombstone records that segment id was lost (an unrecoverable write
// fault): the slot is accounted — resume will not regenerate it — and
// the loss is auditable in the manifest, which stays fully readable.
func (w *Writer) Tombstone(id int, reason string, samplesLost int) {
	if w.done[id] {
		return
	}
	w.man.Tombstones = append(w.man.Tombstones, Tombstone{ID: id, Reason: reason, SamplesLost: samplesLost})
	w.done[id] = true
}

// Commit atomically publishes the manifest. cmd/edgesim commits after
// every group's segments, so an interrupt loses at most the segments
// encoded since the last group boundary.
func (w *Writer) Commit() error {
	return commitManifest(w.dir, w.man)
}
