package segstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// expectedDoubleReleases counts the double releases tests provoke on
// purpose, so TestMain can tell deliberate hardening coverage from a
// real protocol violation elsewhere in the suite.
var expectedDoubleReleases atomic.Int64

// TestMain runs the whole package under leak-check mode and asserts the
// ownership invariant at the end: every pooled batch any test acquired
// was released exactly once (outstanding == 0, no unexpected double
// releases). This is the runtime twin of the batchlife analyzer — it
// catches leaks on paths the static check cannot see.
func TestMain(m *testing.M) {
	SetLeakCheck(true)
	code := m.Run()
	if out, dbl := LeakStats(); code == 0 && (out != 0 || dbl != expectedDoubleReleases.Load()) {
		fmt.Fprintf(os.Stderr, "segstore leak check: %d outstanding batches, %d double releases (%d expected) after tests\n",
			out, dbl, expectedDoubleReleases.Load())
		code = 1
	}
	os.Exit(code)
}

// pooledBatch hand-builds what readColumns builds: a batch owned by a
// pool with one reference, counted as outstanding.
func pooledBatch(t *testing.T, pool *sync.Pool) *ColumnBatch {
	t.Helper()
	rows := testSamples(t, 5, 3, 1)
	blob, _ := EncodeSegment(rows)
	b, _ := pool.Get().(*ColumnBatch)
	if b == nil { //edgelint:allow batchlife: pool miss replaces the nil non-batch the type assertion produced
		b = new(ColumnBatch)
	}
	b.pool = pool
	b.refs.Store(1)
	outstanding.Add(1)
	if err := decodeInto(blob, b); err != nil {
		b.Release()
		t.Fatal(err)
	}
	return b
}

func TestDoubleReleaseOwnedBatchCounted(t *testing.T) {
	var pool sync.Pool
	b := pooledBatch(t, &pool)
	_, before := LeakStats()
	b.Release()
	b.Release() //edgelint:allow batchlife: deliberate double release, exercising the hardened counter
	expectedDoubleReleases.Add(1)
	if _, after := LeakStats(); after != before+1 {
		t.Fatalf("double releases went %d -> %d, want +1", before, after)
	}
	if out, _ := LeakStats(); out != 0 {
		t.Fatalf("outstanding = %d after release pair, want 0", out)
	}
}

func TestDoubleReleaseViewCounted(t *testing.T) {
	var pool sync.Pool
	b := pooledBatch(t, &pool)
	v := b.Slice(0, b.Len()/2)
	_, before := LeakStats()
	v.Release()
	// The old protocol no-opped here via parent = nil while v still
	// aliased b's (possibly recycled) arrays; now it is a counted event.
	v.Release() //edgelint:allow batchlife: deliberate double release, exercising the hardened counter
	expectedDoubleReleases.Add(1)
	if _, after := LeakStats(); after != before+1 {
		t.Fatalf("view double releases went %d -> %d, want +1", before, after)
	}
	b.Release()
	if out, _ := LeakStats(); out != 0 {
		t.Fatalf("outstanding = %d after all releases, want 0", out)
	}
}

// A released owned batch must be unmistakably dead under leak-check
// mode: negative row count, zeroed dictionary indexes, nil
// dictionaries — so a use-after-Release fails loudly instead of
// silently reading whichever batch the pool recycled the arrays into.
func TestReleasePoisonsOwnedBatch(t *testing.T) {
	if !LeakCheckEnabled() {
		t.Fatal("TestMain should have enabled leak-check mode")
	}
	var pool sync.Pool
	b := pooledBatch(t, &pool)
	if b.Len() <= 0 {
		t.Fatal("fixture batch is empty")
	}
	b.Release()
	got, _ := pool.Get().(*ColumnBatch)
	if got != b {
		t.Fatal("pool did not recycle the released batch")
	}
	if got.Len() != -1 {
		t.Fatalf("released batch Len() = %d, want -1 (poisoned)", got.Len())
	}
	if got.PoP.Dict != nil || got.Route.Dict != nil {
		t.Fatal("released batch still carries dictionaries")
	}
	// And reacquisition must fully repair the poison.
	got.pool = &pool
	got.refs.Store(1)
	outstanding.Add(1)
	rows := testSamples(t, 5, 3, 1)
	blob, _ := EncodeSegment(rows)
	if err := decodeInto(blob, got); err != nil {
		got.Release()
		t.Fatal(err)
	}
	if got.Len() != len(rows) {
		t.Fatalf("reacquired batch Len() = %d, want %d", got.Len(), len(rows))
	}
	got.Release()
}

// writeDataset commits rows across several segments so parallel scans
// have real reordering to do.
func writeDataset(t *testing.T, segments int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "leak.seg")
	all := testSamples(t, 17, 8, 2)
	if len(all) < segments*2 {
		t.Fatalf("fixture too small: %d rows", len(all))
	}
	w, err := Create(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	per := len(all) / segments
	for id := 0; id < segments; id++ {
		lo, hi := id*per, (id+1)*per
		if id == segments-1 {
			hi = len(all)
		}
		blob, meta := EncodeSegment(all[lo:hi])
		if err := w.Add(id, blob, meta); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// Regression: a mid-scan emit error used to strand every batch that was
// decoded but not yet emitted — the workers' failed Sends leaked their
// batches and Reorder dropped its pending window. The drain path must
// release all of them.
func TestScanColumnsEmitErrorReleasesEverything(t *testing.T) {
	dir := writeDataset(t, 6)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	before, _ := LeakStats()
	boom := errors.New("sink exploded")
	for _, workers := range []int{1, 4} {
		emitted := 0
		err := r.ScanColumns(context.Background(), workers, nil, func(b *ColumnBatch) error {
			emitted++
			b.Release()
			if emitted >= 2 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: scan error = %v, want the emit error", workers, err)
		}
		if out, _ := LeakStats(); out != before {
			t.Fatalf("workers=%d: outstanding batches = %d, want %d — poisoned scan leaked pool capacity", workers, out, before)
		}
	}
}
