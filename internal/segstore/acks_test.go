package segstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTwoSegmentDataset commits two one-segment chunks and returns the
// dataset dir.
func writeTwoSegmentDataset(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ds.seg")
	rows := testSamples(t, 11, 4, 1)
	w, err := Create(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	half := len(rows) / 2
	blob0, meta0 := EncodeSegment(rows[:half])
	blob1, meta1 := EncodeSegment(rows[half:])
	if err := w.Add(0, blob0, meta0); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(1, blob1, meta1); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// Open must name the precise segment when the manifest commits a file
// that is no longer on disk — at Open, not at first scan.
func TestOpenFailsFastOnMissingSegment(t *testing.T) {
	dir := writeTwoSegmentDataset(t)
	if err := os.Remove(filepath.Join(dir, segmentFileName(1))); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	if err == nil {
		t.Fatal("Open succeeded on a dataset with a deleted segment")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "segment 1") || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("error does not name the missing segment: %v", err)
	}
}

// Open must refuse a segment whose on-disk size disagrees with the
// manifest, naming both sizes.
func TestOpenFailsFastOnSizeMismatch(t *testing.T) {
	dir := writeTwoSegmentDataset(t)
	path := filepath.Join(dir, segmentFileName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o666); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if err == nil {
		t.Fatal("Open succeeded on a truncated segment")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "segment 0") || !strings.Contains(err.Error(), "manifest says") {
		t.Fatalf("error does not name the mismatched sizes: %v", err)
	}
}

func TestAckLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := LoadAcks(dir, "origin-a")
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 || l.Watermark() != -1 {
		t.Fatalf("fresh log not empty: %+v", l)
	}
	for _, id := range []int{3, 0, 1, 3} { // out of order + duplicate
		l.Add(id)
	}
	if err := l.Commit(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAcks(dir, "origin-a")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 || !back.Has(0) || !back.Has(1) || back.Has(2) || !back.Has(3) {
		t.Fatalf("reloaded log wrong: %+v", back.Acked)
	}
	if got := back.Watermark(); got != 1 {
		t.Fatalf("Watermark() = %d, want 1 (gap at 2)", got)
	}
	back.Add(2)
	if got := back.Watermark(); got != 3 {
		t.Fatalf("Watermark() after filling gap = %d, want 3", got)
	}
	// Committed bytes are canonical: recommitting an identical set from
	// a different insertion order yields identical bytes.
	other, err := LoadAcks(t.TempDir(), "origin-a")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 1, 3} {
		other.Add(id)
	}
	dir2 := t.TempDir()
	if err := other.Commit(dir2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dir, AcksName))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir2, AcksName))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("ack logs differ across insertion orders:\n%s\nvs\n%s", a, b)
	}
	// A wrong-origin log must refuse to load.
	if _, err := LoadAcks(dir, "origin-b"); err == nil {
		t.Fatal("LoadAcks accepted a mismatched origin")
	}
	// A corrupt log must refuse to load.
	if err := os.WriteFile(filepath.Join(dir, AcksName), []byte("{"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAcks(dir, "origin-a"); err == nil {
		t.Fatal("LoadAcks accepted corrupt JSON")
	}
}
