package segstore

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
)

// The golden guarantee of the storage layer: jsonl → seg → jsonl is
// byte-identical — for multiple seeds, and with the seg side scanned at
// several worker counts. Exact floats survive because columns store raw
// IEEE-754 bits and Go's JSON encoder emits the shortest round-trip
// representation; order survives because segments cut on (group, span)
// boundaries and scans re-emit them in manifest order.
func TestGoldenRoundTripJSONLSegJSONL(t *testing.T) {
	for _, seed := range []uint64{42, 7} {
		rows := testSamples(t, seed, 9, 2)
		src := jsonlBytes(t, rows)

		dir := filepath.Join(t.TempDir(), "ds.seg")
		w, err := Create(dir, "golden")
		if err != nil {
			t.Fatal(err)
		}
		segs, n, err := ConvertJSONL(src, w, ConvertOptions{})
		if err != nil {
			t.Fatalf("seed=%d: ConvertJSONL: %v", seed, err)
		}
		if n != len(rows) {
			t.Fatalf("seed=%d: converted %d of %d samples", seed, n, len(rows))
		}
		if segs < 2 {
			t.Fatalf("seed=%d: only %d segments — the cut logic went unexercised", seed, segs)
		}

		if _, err := src.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, src.Len())
		if _, err := src.Read(want); err != nil {
			t.Fatal(err)
		}

		r, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			var back bytes.Buffer
			m, err := WriteJSONL(context.Background(), r, &back, workers, nil)
			if err != nil {
				t.Fatalf("seed=%d workers=%d: WriteJSONL: %v", seed, workers, err)
			}
			if m != len(rows) {
				t.Errorf("seed=%d workers=%d: extracted %d of %d samples", seed, workers, m, len(rows))
			}
			if !bytes.Equal(back.Bytes(), want) {
				t.Fatalf("seed=%d workers=%d: jsonl→seg→jsonl is not byte-identical (%d vs %d bytes)",
					seed, workers, back.Len(), len(want))
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
