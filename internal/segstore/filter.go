package segstore

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sample"
)

// Filter is a scan predicate with two levels of enforcement: whole
// segments are pruned against the manifest's per-segment index
// (MatchSegment — no bytes read), and surviving segments are filtered
// row by row (Match), so the two levels always agree. The zero value
// (and nil) matches everything.
//
// The same row predicate applies to JSONL scans, which is what keeps a
// filtered seg-format report byte-identical to the filtered JSONL
// report over the same dataset.
type Filter struct {
	// From/To bound the session start offset, half-open [From, To).
	// To <= 0 means unbounded above.
	From, To time.Duration
	// Countries and PoPs, when non-empty, whitelist those values.
	Countries []string
	PoPs      []string
}

// ParseFilter assembles a filter from flag values: from/to as start
// offsets, countries and pops as comma-separated lists (case
// preserved). Returns nil when every field is empty.
func ParseFilter(from, to time.Duration, countries, pops string) (*Filter, error) {
	f := &Filter{From: from, To: to, Countries: splitList(countries), PoPs: splitList(pops)}
	if f.To > 0 && f.To <= f.From {
		return nil, fmt.Errorf("segstore: empty time range [%v, %v)", from, to)
	}
	if f.Empty() {
		return nil, nil
	}
	sort.Strings(f.Countries)
	sort.Strings(f.PoPs)
	return f, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// Empty reports whether the filter matches everything.
func (f *Filter) Empty() bool {
	return f == nil || (f.From <= 0 && f.To <= 0 && len(f.Countries) == 0 && len(f.PoPs) == 0)
}

// String renders the filter for Origin strings and logs.
func (f *Filter) String() string {
	if f.Empty() {
		return "all"
	}
	var parts []string
	if f.From > 0 || f.To > 0 {
		to := "∞"
		if f.To > 0 {
			to = f.To.String()
		}
		parts = append(parts, fmt.Sprintf("start=[%v,%s)", f.From, to))
	}
	if len(f.Countries) > 0 {
		parts = append(parts, "country="+strings.Join(f.Countries, ","))
	}
	if len(f.PoPs) > 0 {
		parts = append(parts, "pop="+strings.Join(f.PoPs, ","))
	}
	return strings.Join(parts, " ")
}

// Match is the row predicate.
func (f *Filter) Match(s *sample.Sample) bool {
	if f == nil {
		return true
	}
	if s.Start < f.From || (f.To > 0 && s.Start >= f.To) {
		return false
	}
	if len(f.Countries) > 0 && !contains(f.Countries, s.Country) {
		return false
	}
	if len(f.PoPs) > 0 && !contains(f.PoPs, s.PoP) {
		return false
	}
	return true
}

// MatchSegment is the pruning predicate: false only when the
// manifest's index proves no row in the segment can match.
func (f *Filter) MatchSegment(m *SegmentMeta) bool {
	if f == nil {
		return true
	}
	if m.Samples == 0 {
		return false // nothing to scan either way
	}
	if f.To > 0 && m.StartMin >= int64(f.To) {
		return false
	}
	if m.StartMax < int64(f.From) {
		return false
	}
	if len(f.Countries) > 0 && !intersects(f.Countries, m.Countries) {
		return false
	}
	if len(f.PoPs) > 0 && !intersects(f.PoPs, m.PoPs) {
		return false
	}
	return true
}

// Apply filters rows in place, preserving order, and returns the
// shortened slice (the input untouched when every row matches — the
// common case once segment pruning has run). The caller owns rows; no
// per-segment copy is made.
func (f *Filter) Apply(rows []sample.Sample) []sample.Sample {
	if f.Empty() {
		return rows
	}
	for i := range rows {
		if !f.Match(&rows[i]) {
			// First miss: compact the survivors down over it.
			k := i
			for j := i + 1; j < len(rows); j++ {
				if f.Match(&rows[j]) {
					rows[k] = rows[j]
					k++
				}
			}
			return rows[:k]
		}
	}
	return rows
}

// ApplyColumns filters a batch in place at the column level. The time
// bounds are checked against the batch's start hints first, so a batch
// wholly inside the range (the common case once segment pruning has
// run) skips the row scan for that term; dictionary columns are
// pre-resolved to allow-tables so the per-row test compares indexes,
// not strings.
func (f *Filter) ApplyColumns(b *ColumnBatch) {
	if f.Empty() || b.Len() == 0 {
		return
	}
	needTime := b.StartMin < int64(f.From) || (f.To > 0 && b.StartMax >= int64(f.To))
	countryOK := allowTable(f.Countries, &b.Country)
	popOK := allowTable(f.PoPs, &b.PoP)
	if !needTime && countryOK == nil && popOK == nil {
		return
	}
	from, to := int64(f.From), int64(f.To)
	b.Compact(func(i int) bool {
		if needTime && (b.Start[i] < from || (to > 0 && b.Start[i] >= to)) {
			return false
		}
		if countryOK != nil && !countryOK[b.Country.Idx[i]] {
			return false
		}
		if popOK != nil && !popOK[b.PoP.Idx[i]] {
			return false
		}
		return true
	})
}

// allowTable resolves a whitelist against a dictionary: one bool per
// dictionary entry. nil means the term is unconstrained (empty
// whitelist, or every entry allowed — no row can fail).
func allowTable(set []string, c *DictColumn) []bool {
	if len(set) == 0 {
		return nil
	}
	all := true
	ok := make([]bool, len(c.Dict))
	for i, v := range c.Dict {
		ok[i] = contains(set, v)
		all = all && ok[i]
	}
	if all {
		return nil
	}
	return ok
}

func contains(set []string, v string) bool {
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}

func intersects(a, b []string) bool {
	for _, v := range a {
		if contains(b, v) {
			return true
		}
	}
	return false
}
