package segstore

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/sample"
	"repro/internal/world"
)

// testSamples generates a realistic dataset through the world model.
func testSamples(t testing.TB, seed uint64, groups, days int) []sample.Sample {
	t.Helper()
	w := world.New(world.Config{Seed: seed, Groups: groups, Days: days, SessionsPerGroupWindow: 4})
	return w.GenerateAll()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rows := testSamples(t, 11, 6, 1)
	if len(rows) == 0 {
		t.Fatal("world generated no samples")
	}
	blob, meta := EncodeSegment(rows)
	if meta.Samples != len(rows) {
		t.Fatalf("meta.Samples = %d, want %d", meta.Samples, len(rows))
	}
	got, err := DecodeSegment(blob)
	if err != nil {
		t.Fatalf("DecodeSegment: %v", err)
	}
	if !reflect.DeepEqual(got, rows) {
		for i := range rows {
			if !reflect.DeepEqual(got[i], rows[i]) {
				t.Fatalf("row %d differs:\n got: %+v\nwant: %+v", i, got[i], rows[i])
			}
		}
		t.Fatal("decoded rows differ")
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	rows := testSamples(t, 3, 4, 1)
	a, _ := EncodeSegment(rows)
	b, _ := EncodeSegment(rows)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same rows differ")
	}
}

func TestEncodeEmptySegment(t *testing.T) {
	blob, meta := EncodeSegment(nil)
	if meta.Samples != 0 {
		t.Fatalf("meta.Samples = %d, want 0", meta.Samples)
	}
	got, err := DecodeSegment(blob)
	if err != nil {
		t.Fatalf("DecodeSegment(empty): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d rows from an empty segment", len(got))
	}
}

// Extreme field values must survive the varint/zigzag/float paths.
func TestEncodeExtremeValues(t *testing.T) {
	rows := []sample.Sample{
		{SessionID: 1<<63 - 1, Start: -time.Hour, Duration: 1<<62 - 1, Bytes: -1,
			DistanceKm: -0.0, BusyFraction: 1e-308, MinRTT: -1, ResponseBytes: []int64{0, -1, 1 << 62}},
		{SessionID: 0, Start: 0, DistanceKm: 1e308, Country: "", PoP: "", ResponseBytes: nil},
	}
	blob, _ := EncodeSegment(rows)
	got, err := DecodeSegment(blob)
	if err != nil {
		t.Fatalf("DecodeSegment: %v", err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("extreme rows did not round-trip:\n got: %+v\nwant: %+v", got, rows)
	}
}

// Any single-byte corruption must be a loud error, never bad data.
func TestDecodeDetectsCorruption(t *testing.T) {
	rows := testSamples(t, 5, 3, 1)
	blob, _ := EncodeSegment(rows)
	for _, off := range []int{0, 7, len(blob) / 3, len(blob) / 2, len(blob) - 5} {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		got, err := DecodeSegment(mut)
		if err == nil && !reflect.DeepEqual(got, rows) {
			t.Fatalf("flipping byte %d decoded silently to different rows", off)
		}
	}
	for _, cut := range []int{1, len(segMagic), len(blob) / 2, len(blob) - 1} {
		if _, err := DecodeSegment(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
}

func TestWriterCommitAndReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds.seg")
	rows := testSamples(t, 7, 4, 1)
	w, err := Create(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	half := len(rows) / 2
	for id, part := range [][]sample.Sample{rows[:half], rows[half:]} {
		blob, meta := EncodeSegment(part)
		if err := w.Add(id, blob, meta); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	w.Tombstone(2, "permanent write failure", 42)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	if !IsDataset(dir) {
		t.Fatal("IsDataset is false on a committed dataset")
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := r.Manifest().TotalSamples(); got != len(rows) {
		t.Fatalf("manifest samples = %d, want %d", got, len(rows))
	}
	if len(r.Manifest().Tombstones) != 1 || r.Manifest().Tombstones[0].SamplesLost != 42 {
		t.Fatalf("tombstone not preserved: %+v", r.Manifest().Tombstones)
	}
	var back []sample.Sample
	if err := r.Scan(context.Background(), 1, nil, func(b []sample.Sample) error {
		back = append(back, b...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rows) {
		t.Fatal("scanned rows differ from written rows")
	}

	// Resume: both IDs are accounted (1 segment pair + tombstone).
	w2, err := Create(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 1, 2} {
		if !w2.Committed(id) {
			t.Fatalf("resumed writer does not know segment %d", id)
		}
	}
	if w2.Committed(3) {
		t.Fatal("resumed writer invented segment 3")
	}
	// A different origin must refuse to resume.
	if _, err := Create(dir, "other"); err == nil {
		t.Fatal("Create resumed a dataset with a mismatched origin")
	}
}

// A rotted segment file is dropped on resume so the caller regenerates
// it — never trusted.
func TestResumeDropsCorruptSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds.seg")
	rows := testSamples(t, 9, 3, 1)
	w, err := Create(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	blob, meta := EncodeSegment(rows)
	if err := w.Add(0, blob, meta); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentFileName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	w2, err := Create(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if w2.Committed(0) {
		t.Fatal("resume trusted a segment whose checksum no longer matches")
	}
	// And a reader must refuse the rotted segment loudly.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	if _, err := r.ReadSegment(r.Manifest().Segments[0]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadSegment on rotted file: err = %v, want ErrCorrupt", err)
	}
}

func TestPruneAndRowFilterAgree(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds.seg")
	rows := testSamples(t, 42, 8, 2)
	w, err := Create(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConvertJSONL(jsonlBytes(t, rows), w, ConvertOptions{}); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()

	country := rows[0].Country
	filters := []*Filter{
		nil,
		{From: 6 * time.Hour, To: 18 * time.Hour},
		{Countries: []string{country}},
		{From: 20 * time.Hour, Countries: []string{country}},
		{To: time.Hour, PoPs: []string{rows[0].PoP}},
	}
	for _, f := range filters {
		want := 0
		for i := range rows {
			if f.Match(&rows[i]) {
				want++
			}
		}
		for _, workers := range []int{1, 4} {
			got := 0
			if err := r.Scan(context.Background(), workers, f, func(b []sample.Sample) error {
				got += len(b)
				return nil
			}); err != nil {
				t.Fatalf("Scan(%v, workers=%d): %v", f, workers, err)
			}
			if got != want {
				t.Errorf("filter %v workers=%d: scanned %d rows, row predicate says %d", f, workers, got, want)
			}
		}
		if f != nil {
			pruned := len(r.man.Segments) - len(r.Prune(f))
			t.Logf("filter %v: pruned %d/%d segments", f, pruned, len(r.man.Segments))
		}
	}

	// Time pruning must actually skip segments on a multi-day dataset.
	kept := r.Prune(&Filter{From: 0, To: 2 * time.Hour})
	if len(kept) >= len(r.man.Segments) {
		t.Fatalf("time filter pruned nothing: %d of %d segments kept", len(kept), len(r.man.Segments))
	}
}

// jsonlBytes renders rows the way cmd/edgesim writes them.
func jsonlBytes(t *testing.T, rows []sample.Sample) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	sw := sample.NewWriter(&buf)
	for i := range rows {
		if err := sw.Write(rows[i]); err != nil {
			t.Fatal(err)
		}
	}
	return bytes.NewReader(buf.Bytes())
}
