package segstore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/sample"
)

// DefaultSegmentSpan is the window range one segment covers (one day =
// 96 of the paper's 15-minute windows): long enough that segments stay
// chunky, short enough that time-range pruning skips most of a
// multi-day dataset.
const DefaultSegmentSpan = 24 * time.Hour

// DefaultMaxRows caps a segment's rows regardless of span, bounding
// decode memory.
const DefaultMaxRows = 1 << 16

// ConvertOptions shape jsonl→seg conversion.
type ConvertOptions struct {
	// Span is the window range per segment (DefaultSegmentSpan when 0).
	Span time.Duration
	// MaxRows caps rows per segment (DefaultMaxRows when 0).
	MaxRows int
	// Origin is recorded in the manifest.
	Origin string
}

// ConvertJSONL reads a JSON-lines dataset from r and writes it as a
// segment dataset into w, committing after every segment. Segments cut
// on user-group changes and on Span boundaries — the "window-range ×
// group" layout cmd/edgesim writes natively, so converted and natively
// written datasets prune identically — plus a MaxRows safety cut.
// Sample order is preserved exactly: scanning the result in manifest
// order re-emits the input row for row.
func ConvertJSONL(r io.Reader, w *Writer, opt ConvertOptions) (segments, samples int, err error) {
	span := opt.Span
	if span <= 0 {
		span = DefaultSegmentSpan
	}
	maxRows := opt.MaxRows
	if maxRows <= 0 {
		maxRows = DefaultMaxRows
	}

	var pending []sample.Sample
	var curKey sample.GroupKey
	var curChunk int64
	id := 0
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		blob, meta := EncodeSegment(pending)
		if err := w.Add(id, blob, meta); err != nil {
			return err
		}
		if err := w.Commit(); err != nil {
			return err
		}
		id++
		segments++
		samples += len(pending)
		pending = pending[:0]
		return nil
	}

	dec := sample.NewReader(r)
	for {
		s, derr := dec.Read()
		if errors.Is(derr, io.EOF) {
			break
		}
		if derr != nil {
			return segments, samples, fmt.Errorf("segstore: converting line %d: %w", samples+len(pending)+1, derr)
		}
		key, chunk := s.Key(), int64(s.Start/span)
		if len(pending) > 0 && (key != curKey || chunk != curChunk || len(pending) >= maxRows) {
			if err := flush(); err != nil {
				return segments, samples, err
			}
		}
		if len(pending) == 0 {
			curKey, curChunk = key, chunk
		}
		pending = append(pending, s)
	}
	if err := flush(); err != nil {
		return segments, samples, err
	}
	return segments, samples, nil
}

// WriteJSONL scans the dataset (workers-wide, filter-pushed) and
// streams it back out as JSON lines — the seg→jsonl half of the
// round trip. Returns the number of samples written.
func WriteJSONL(ctx context.Context, r *Reader, out io.Writer, workers int, f *Filter) (int, error) {
	sw := sample.NewWriter(out)
	err := r.Scan(ctx, workers, f, func(rows []sample.Sample) error {
		for i := range rows {
			if err := sw.Write(rows[i]); err != nil {
				return err
			}
		}
		return nil
	})
	return sw.Count(), err
}
