package segstore

import (
	"encoding/binary"
	"math"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/geo"
	"repro/internal/sample"
)

// Segment binary layout (all integers varint unless noted):
//
//	magic "EDGESEG1"                    8 bytes
//	version                             uvarint (1)
//	rows                                uvarint
//	columns                             uvarint
//	per column:
//	  len(name), name                   uvarint + bytes
//	  kind                              1 byte
//	  len(payload)                      uvarint
//	  payload                           bytes
//	  crc32(payload)                    4 bytes LE
//
// Column payloads by kind:
//
//	encZigzag  rows × zigzag varint
//	encDelta   first value zigzag varint, then zigzag varint deltas
//	encDict    dict size d, d × (uvarint len + bytes) in first-appearance
//	           order, then rows × uvarint index
//	encFloat   rows × 8-byte LE float64 bits (exact round trip)
//	encBool    ⌈rows/8⌉ bytes, LSB first
//	encList    rows × uvarint length, then Σlength × zigzag varint
var segMagic = [8]byte{'E', 'D', 'G', 'E', 'S', 'E', 'G', '1'}

const segVersion = 1

// Column encoding kinds.
const (
	encZigzag byte = 1
	encDelta  byte = 2
	encDict   byte = 3
	encFloat  byte = 4
	encBool   byte = 5
	encList   byte = 6
)

// colSpec ties one Sample field to its column name and encoding. The
// schema is fixed at compile time; the on-disk order is the schema
// order, but readers locate columns by name, so the format stays
// self-describing.
type colSpec struct {
	name string
	kind byte
	enc  func(buf []byte, rows []sample.Sample) []byte
	dec  func(p *payload, rows []sample.Sample) error
}

// schema lists every column, in the field order of sample.Sample.
// Delta encoding is reserved for the two monotone-ish sequences
// (session IDs and start offsets ascend within a segment); plain
// zigzag covers the small counters, dictionaries the low-cardinality
// strings.
var schema = []colSpec{
	intCol("id", encDelta,
		func(s *sample.Sample) int64 { return int64(s.SessionID) },
		func(s *sample.Sample, v int64) { s.SessionID = uint64(v) }),
	dictCol("pop",
		func(s *sample.Sample) string { return s.PoP },
		func(s *sample.Sample, v string) { s.PoP = v }),
	dictCol("prefix",
		func(s *sample.Sample) string { return s.Prefix },
		func(s *sample.Sample, v string) { s.Prefix = v }),
	intCol("as", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.ClientAS) },
		func(s *sample.Sample, v int64) { s.ClientAS = int(v) }),
	dictCol("country",
		func(s *sample.Sample) string { return s.Country },
		func(s *sample.Sample, v string) { s.Country = v }),
	dictCol("continent",
		func(s *sample.Sample) string { return string(s.Continent) },
		func(s *sample.Sample, v string) { s.Continent = geo.Continent(v) }),
	intCol("sub", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.ClientSubnet) },
		func(s *sample.Sample, v int64) { s.ClientSubnet = uint8(v) }),
	dictCol("proto",
		func(s *sample.Sample) string { return string(s.Proto) },
		func(s *sample.Sample, v string) { s.Proto = sample.Protocol(v) }),
	floatCol("km",
		func(s *sample.Sample) float64 { return s.DistanceKm },
		func(s *sample.Sample, v float64) { s.DistanceKm = v }),
	boolCol("xcont",
		func(s *sample.Sample) bool { return s.CrossContinent },
		func(s *sample.Sample, v bool) { s.CrossContinent = v }),
	dictCol("route",
		func(s *sample.Sample) string { return s.RouteID },
		func(s *sample.Sample, v string) { s.RouteID = v }),
	intCol("rel", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.RouteRel) },
		func(s *sample.Sample, v int64) { s.RouteRel = bgp.RelType(v) }),
	intCol("aspath", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.ASPathLen) },
		func(s *sample.Sample, v int64) { s.ASPathLen = int(v) }),
	boolCol("prepended",
		func(s *sample.Sample) bool { return s.Prepended },
		func(s *sample.Sample, v bool) { s.Prepended = v }),
	intCol("alt", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.AltIndex) },
		func(s *sample.Sample, v int64) { s.AltIndex = int(v) }),
	intCol("start", encDelta,
		func(s *sample.Sample) int64 { return int64(s.Start) },
		func(s *sample.Sample, v int64) { s.Start = time.Duration(v) }),
	intCol("dur", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.Duration) },
		func(s *sample.Sample, v int64) { s.Duration = time.Duration(v) }),
	floatCol("busy",
		func(s *sample.Sample) float64 { return s.BusyFraction },
		func(s *sample.Sample, v float64) { s.BusyFraction = v }),
	intCol("bytes", encZigzag,
		func(s *sample.Sample) int64 { return s.Bytes },
		func(s *sample.Sample, v int64) { s.Bytes = v }),
	intCol("txns", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.Transactions) },
		func(s *sample.Sample, v int64) { s.Transactions = int(v) }),
	respCol(),
	boolCol("media",
		func(s *sample.Sample) bool { return s.MediaEndpoint },
		func(s *sample.Sample, v bool) { s.MediaEndpoint = v }),
	intCol("minrtt", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.MinRTT) },
		func(s *sample.Sample, v int64) { s.MinRTT = time.Duration(v) }),
	intCol("hdt", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.HDTested) },
		func(s *sample.Sample, v int64) { s.HDTested = int(v) }),
	intCol("hda", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.HDAchieved) },
		func(s *sample.Sample, v int64) { s.HDAchieved = int(v) }),
	intCol("sja", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.SimpleAchieved) },
		func(s *sample.Sample, v int64) { s.SimpleAchieved = int(v) }),
	boolCol("hosting",
		func(s *sample.Sample) bool { return s.HostingProvider },
		func(s *sample.Sample, v bool) { s.HostingProvider = v }),
}

// EncodeSegment encodes rows into one segment block and returns the
// bytes plus the manifest metadata (ID and File left for the writer to
// assign). Encoding is a pure function of rows: same samples, same
// bytes, regardless of worker count or call order.
func EncodeSegment(rows []sample.Sample) ([]byte, SegmentMeta) {
	buf := make([]byte, 0, 64+32*len(rows))
	buf = append(buf, segMagic[:]...)
	buf = binary.AppendUvarint(buf, segVersion)
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	buf = binary.AppendUvarint(buf, uint64(len(schema)))
	var scratch []byte
	for _, c := range schema {
		scratch = c.enc(scratch[:0], rows)
		buf = binary.AppendUvarint(buf, uint64(len(c.name)))
		buf = append(buf, c.name...)
		buf = append(buf, c.kind)
		buf = binary.AppendUvarint(buf, uint64(len(scratch)))
		buf = append(buf, scratch...)
		buf = binary.LittleEndian.AppendUint32(buf, fileCRC(scratch))
	}

	meta := SegmentMeta{Samples: len(rows), Bytes: int64(len(buf)), CRC: fileCRC(buf)}
	countries, pops := map[string]bool{}, map[string]bool{}
	for i := range rows {
		start := int64(rows[i].Start)
		if i == 0 || start < meta.StartMin {
			meta.StartMin = start
		}
		if i == 0 || start > meta.StartMax {
			meta.StartMax = start
		}
		countries[rows[i].Country] = true
		pops[rows[i].PoP] = true
	}
	meta.Countries = sortedSet(countries)
	meta.PoPs = sortedSet(pops)
	return buf, meta
}

// sortedSet renders a string set deterministically.
func sortedSet(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// zigzag maps signed to unsigned so small magnitudes stay short.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// intCol encodes a signed integer field as zigzag varints, delta-coded
// when kind is encDelta.
func intCol(name string, kind byte, get func(*sample.Sample) int64, set func(*sample.Sample, int64)) colSpec {
	return colSpec{
		name: name,
		kind: kind,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			prev := int64(0)
			for i := range rows {
				v := get(&rows[i])
				if kind == encDelta {
					buf = binary.AppendUvarint(buf, zigzag(v-prev))
					prev = v
				} else {
					buf = binary.AppendUvarint(buf, zigzag(v))
				}
			}
			return buf
		},
		dec: func(p *payload, rows []sample.Sample) error {
			prev := int64(0)
			for i := range rows {
				u, err := p.uvarint()
				if err != nil {
					return err
				}
				v := unzigzag(u)
				if kind == encDelta {
					v += prev
					prev = v
				}
				set(&rows[i], v)
			}
			return p.done()
		},
	}
}

// dictCol encodes a low-cardinality string field: the distinct values
// in first-appearance order (deterministic), then one index per row.
func dictCol(name string, get func(*sample.Sample) string, set func(*sample.Sample, string)) colSpec {
	return colSpec{
		name: name,
		kind: encDict,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			idx := map[string]uint64{}
			var dict []string
			for i := range rows {
				v := get(&rows[i])
				if _, ok := idx[v]; !ok {
					idx[v] = uint64(len(dict))
					dict = append(dict, v)
				}
			}
			buf = binary.AppendUvarint(buf, uint64(len(dict)))
			for _, v := range dict {
				buf = binary.AppendUvarint(buf, uint64(len(v)))
				buf = append(buf, v...)
			}
			for i := range rows {
				buf = binary.AppendUvarint(buf, idx[get(&rows[i])])
			}
			return buf
		},
		dec: func(p *payload, rows []sample.Sample) error {
			n, err := p.uvarint()
			if err != nil {
				return err
			}
			if n > uint64(p.remaining()) {
				return p.corrupt("dictionary larger than payload")
			}
			dict := make([]string, n)
			for i := range dict {
				l, err := p.uvarint()
				if err != nil {
					return err
				}
				b, err := p.bytes(l)
				if err != nil {
					return err
				}
				dict[i] = string(b)
			}
			for i := range rows {
				j, err := p.uvarint()
				if err != nil {
					return err
				}
				if j >= n {
					return p.corrupt("dictionary index out of range")
				}
				set(&rows[i], dict[j])
			}
			return p.done()
		},
	}
}

// floatCol stores raw IEEE-754 bits — byte-exact round trips, no
// precision games.
func floatCol(name string, get func(*sample.Sample) float64, set func(*sample.Sample, float64)) colSpec {
	return colSpec{
		name: name,
		kind: encFloat,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			for i := range rows {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(get(&rows[i])))
			}
			return buf
		},
		dec: func(p *payload, rows []sample.Sample) error {
			if p.remaining() != 8*len(rows) {
				return p.corrupt("float column length mismatch")
			}
			for i := range rows {
				b, err := p.bytes(8)
				if err != nil {
					return err
				}
				set(&rows[i], math.Float64frombits(binary.LittleEndian.Uint64(b)))
			}
			return p.done()
		},
	}
}

// boolCol bitpacks a boolean field, LSB first.
func boolCol(name string, get func(*sample.Sample) bool, set func(*sample.Sample, bool)) colSpec {
	return colSpec{
		name: name,
		kind: encBool,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			var cur byte
			for i := range rows {
				if get(&rows[i]) {
					cur |= 1 << (i % 8)
				}
				if i%8 == 7 {
					buf = append(buf, cur)
					cur = 0
				}
			}
			if len(rows)%8 != 0 {
				buf = append(buf, cur)
			}
			return buf
		},
		dec: func(p *payload, rows []sample.Sample) error {
			if p.remaining() != (len(rows)+7)/8 {
				return p.corrupt("bool column length mismatch")
			}
			for i := range rows {
				if i%8 == 0 {
					if _, err := p.bytes(1); err != nil {
						return err
					}
				}
				set(&rows[i], p.data[p.off-1]&(1<<(i%8)) != 0)
			}
			return p.done()
		},
	}
}

// respCol encodes the per-row ResponseBytes lists: one length per row,
// then the concatenated values. Empty and nil lists both decode to
// nil, matching the field's omitempty JSON behaviour.
func respCol() colSpec {
	return colSpec{
		name: "resp",
		kind: encList,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			for i := range rows {
				buf = binary.AppendUvarint(buf, uint64(len(rows[i].ResponseBytes)))
			}
			for i := range rows {
				for _, v := range rows[i].ResponseBytes {
					buf = binary.AppendUvarint(buf, zigzag(v))
				}
			}
			return buf
		},
		dec: func(p *payload, rows []sample.Sample) error {
			lens := make([]uint64, len(rows))
			var total uint64
			for i := range rows {
				l, err := p.uvarint()
				if err != nil {
					return err
				}
				lens[i] = l
				total += l
			}
			// Every value costs at least one payload byte, so this bound
			// rejects absurd list lengths before any allocation.
			if total > uint64(p.remaining()) {
				return p.corrupt("response lists larger than payload")
			}
			for i := range rows {
				if lens[i] == 0 {
					continue
				}
				vals := make([]int64, lens[i])
				for j := range vals {
					u, err := p.uvarint()
					if err != nil {
						return err
					}
					vals[j] = unzigzag(u)
				}
				rows[i].ResponseBytes = vals
			}
			return p.done()
		},
	}
}
