package segstore

import (
	"encoding/binary"
	"math"
	"sort"

	"repro/internal/sample"
)

// Segment binary layout (all integers varint unless noted):
//
//	magic "EDGESEG1"                    8 bytes
//	version                             uvarint (1)
//	rows                                uvarint
//	columns                             uvarint
//	per column:
//	  len(name), name                   uvarint + bytes
//	  kind                              1 byte
//	  len(payload)                      uvarint
//	  payload                           bytes
//	  crc32(payload)                    4 bytes LE
//
// Column payloads by kind:
//
//	encZigzag  rows × zigzag varint
//	encDelta   first value zigzag varint, then zigzag varint deltas
//	encDict    dict size d, d × (uvarint len + bytes) in first-appearance
//	           order, then rows × uvarint index
//	encFloat   rows × 8-byte LE float64 bits (exact round trip)
//	encBool    ⌈rows/8⌉ bytes, LSB first
//	encList    rows × uvarint length, then Σlength × zigzag varint
var segMagic = [8]byte{'E', 'D', 'G', 'E', 'S', 'E', 'G', '1'}

const segVersion = 1

// Column encoding kinds.
const (
	encZigzag byte = 1
	encDelta  byte = 2
	encDict   byte = 3
	encFloat  byte = 4
	encBool   byte = 5
	encList   byte = 6
)

// colSpec ties one Sample field to its column name and encoding. The
// schema is fixed at compile time; the on-disk order is the schema
// order, but readers locate columns by name, so the format stays
// self-describing. Encoding reads row structs (the writer's input);
// decoding lands in ColumnBatch slices — the row form is derived from
// the batch afterwards when a caller wants it.
type colSpec struct {
	name string
	kind byte
	enc  func(buf []byte, rows []sample.Sample) []byte
	dec  func(p *payload, n int, b *ColumnBatch) error
}

// schema lists every column, in the field order of sample.Sample.
// Delta encoding is reserved for the two monotone-ish sequences
// (session IDs and start offsets ascend within a segment); plain
// zigzag covers the small counters, dictionaries the low-cardinality
// strings.
var schema = []colSpec{
	idCol(),
	dictCol("pop",
		func(s *sample.Sample) string { return s.PoP },
		func(b *ColumnBatch) *DictColumn { return &b.PoP }),
	dictCol("prefix",
		func(s *sample.Sample) string { return s.Prefix },
		func(b *ColumnBatch) *DictColumn { return &b.Prefix }),
	intCol("as", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.ClientAS) },
		func(b *ColumnBatch) []int64 { return b.ClientAS }),
	dictCol("country",
		func(s *sample.Sample) string { return s.Country },
		func(b *ColumnBatch) *DictColumn { return &b.Country }),
	dictCol("continent",
		func(s *sample.Sample) string { return string(s.Continent) },
		func(b *ColumnBatch) *DictColumn { return &b.Continent }),
	intCol("sub", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.ClientSubnet) },
		func(b *ColumnBatch) []int64 { return b.ClientSubnet }),
	dictCol("proto",
		func(s *sample.Sample) string { return string(s.Proto) },
		func(b *ColumnBatch) *DictColumn { return &b.Proto }),
	floatCol("km",
		func(s *sample.Sample) float64 { return s.DistanceKm },
		func(b *ColumnBatch) []float64 { return b.DistanceKm }),
	boolCol("xcont",
		func(s *sample.Sample) bool { return s.CrossContinent },
		func(b *ColumnBatch) []bool { return b.CrossContinent }),
	dictCol("route",
		func(s *sample.Sample) string { return s.RouteID },
		func(b *ColumnBatch) *DictColumn { return &b.Route }),
	intCol("rel", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.RouteRel) },
		func(b *ColumnBatch) []int64 { return b.RouteRel }),
	intCol("aspath", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.ASPathLen) },
		func(b *ColumnBatch) []int64 { return b.ASPathLen }),
	boolCol("prepended",
		func(s *sample.Sample) bool { return s.Prepended },
		func(b *ColumnBatch) []bool { return b.Prepended }),
	intCol("alt", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.AltIndex) },
		func(b *ColumnBatch) []int64 { return b.AltIndex }),
	intCol("start", encDelta,
		func(s *sample.Sample) int64 { return int64(s.Start) },
		func(b *ColumnBatch) []int64 { return b.Start }),
	intCol("dur", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.Duration) },
		func(b *ColumnBatch) []int64 { return b.Duration }),
	floatCol("busy",
		func(s *sample.Sample) float64 { return s.BusyFraction },
		func(b *ColumnBatch) []float64 { return b.BusyFraction }),
	intCol("bytes", encZigzag,
		func(s *sample.Sample) int64 { return s.Bytes },
		func(b *ColumnBatch) []int64 { return b.Bytes }),
	intCol("txns", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.Transactions) },
		func(b *ColumnBatch) []int64 { return b.Transactions }),
	respCol(),
	boolCol("media",
		func(s *sample.Sample) bool { return s.MediaEndpoint },
		func(b *ColumnBatch) []bool { return b.MediaEndpoint }),
	intCol("minrtt", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.MinRTT) },
		func(b *ColumnBatch) []int64 { return b.MinRTT }),
	intCol("hdt", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.HDTested) },
		func(b *ColumnBatch) []int64 { return b.HDTested }),
	intCol("hda", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.HDAchieved) },
		func(b *ColumnBatch) []int64 { return b.HDAchieved }),
	intCol("sja", encZigzag,
		func(s *sample.Sample) int64 { return int64(s.SimpleAchieved) },
		func(b *ColumnBatch) []int64 { return b.SimpleAchieved }),
	boolCol("hosting",
		func(s *sample.Sample) bool { return s.HostingProvider },
		func(b *ColumnBatch) []bool { return b.HostingProvider }),
}

// EncodeSegment encodes rows into one segment block and returns the
// bytes plus the manifest metadata (ID and File left for the writer to
// assign). Encoding is a pure function of rows: same samples, same
// bytes, regardless of worker count or call order.
func EncodeSegment(rows []sample.Sample) ([]byte, SegmentMeta) {
	buf := make([]byte, 0, 64+32*len(rows))
	buf = append(buf, segMagic[:]...)
	buf = binary.AppendUvarint(buf, segVersion)
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	buf = binary.AppendUvarint(buf, uint64(len(schema)))
	var scratch []byte
	for _, c := range schema {
		scratch = c.enc(scratch[:0], rows)
		buf = binary.AppendUvarint(buf, uint64(len(c.name)))
		buf = append(buf, c.name...)
		buf = append(buf, c.kind)
		buf = binary.AppendUvarint(buf, uint64(len(scratch)))
		buf = append(buf, scratch...)
		buf = binary.LittleEndian.AppendUint32(buf, fileCRC(scratch))
	}

	meta := SegmentMeta{Samples: len(rows), Bytes: int64(len(buf)), CRC: fileCRC(buf)}
	countries, pops, prefixes := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for i := range rows {
		start := int64(rows[i].Start)
		if i == 0 || start < meta.StartMin {
			meta.StartMin = start
		}
		if i == 0 || start > meta.StartMax {
			meta.StartMax = start
		}
		countries[rows[i].Country] = true
		pops[rows[i].PoP] = true
		prefixes[rows[i].Prefix] = true
	}
	meta.Countries = sortedSet(countries)
	meta.PoPs = sortedSet(pops)
	meta.Prefixes = sortedSet(prefixes)
	return buf, meta
}

// sortedSet renders a string set deterministically.
func sortedSet(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// zigzag maps signed to unsigned so small magnitudes stay short.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// idCol is the session-ID column: delta-coded like "start", but landing
// in the batch's uint64 slice.
func idCol() colSpec {
	return colSpec{
		name: "id",
		kind: encDelta,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			prev := int64(0)
			for i := range rows {
				v := int64(rows[i].SessionID)
				buf = binary.AppendUvarint(buf, zigzag(v-prev))
				prev = v
			}
			return buf
		},
		dec: func(p *payload, n int, b *ColumnBatch) error {
			prev := int64(0)
			for i := 0; i < n; i++ {
				u, err := p.uvarint()
				if err != nil {
					return err
				}
				prev += unzigzag(u)
				b.SessionID[i] = uint64(prev)
			}
			return p.done()
		},
	}
}

// intCol encodes a signed integer field as zigzag varints, delta-coded
// when kind is encDelta.
func intCol(name string, kind byte, get func(*sample.Sample) int64, col func(*ColumnBatch) []int64) colSpec {
	return colSpec{
		name: name,
		kind: kind,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			prev := int64(0)
			for i := range rows {
				v := get(&rows[i])
				if kind == encDelta {
					buf = binary.AppendUvarint(buf, zigzag(v-prev))
					prev = v
				} else {
					buf = binary.AppendUvarint(buf, zigzag(v))
				}
			}
			return buf
		},
		dec: func(p *payload, n int, b *ColumnBatch) error {
			out := col(b)
			prev := int64(0)
			for i := 0; i < n; i++ {
				u, err := p.uvarint()
				if err != nil {
					return err
				}
				v := unzigzag(u)
				if kind == encDelta {
					v += prev
					prev = v
				}
				out[i] = v
			}
			return p.done()
		},
	}
}

// dictCol encodes a low-cardinality string field: the distinct values
// in first-appearance order (deterministic), then one index per row.
func dictCol(name string, get func(*sample.Sample) string, col func(*ColumnBatch) *DictColumn) colSpec {
	return colSpec{
		name: name,
		kind: encDict,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			idx := map[string]uint64{}
			var dict []string
			for i := range rows {
				v := get(&rows[i])
				if _, ok := idx[v]; !ok {
					idx[v] = uint64(len(dict))
					dict = append(dict, v)
				}
			}
			buf = binary.AppendUvarint(buf, uint64(len(dict)))
			for _, v := range dict {
				buf = binary.AppendUvarint(buf, uint64(len(v)))
				buf = append(buf, v...)
			}
			for i := range rows {
				buf = binary.AppendUvarint(buf, idx[get(&rows[i])])
			}
			return buf
		},
		dec: func(p *payload, n int, b *ColumnBatch) error {
			d, err := p.uvarint()
			if err != nil {
				return err
			}
			if d > uint64(p.remaining()) {
				return p.corrupt("dictionary larger than payload")
			}
			// Indexes are stored as uint32 in the batch; the remaining-bytes
			// bound already keeps any real dictionary far below that, so this
			// only rejects multi-GiB hostile payloads.
			if d > math.MaxUint32 {
				return p.corrupt("dictionary too large")
			}
			out := col(b)
			out.Dict = out.Dict[:0]
			for i := uint64(0); i < d; i++ {
				l, err := p.uvarint()
				if err != nil {
					return err
				}
				v, err := p.bytes(l)
				if err != nil {
					return err
				}
				out.Dict = append(out.Dict, string(v))
			}
			for i := 0; i < n; i++ {
				j, err := p.uvarint()
				if err != nil {
					return err
				}
				if j >= d {
					return p.corrupt("dictionary index out of range")
				}
				out.Idx[i] = uint32(j)
			}
			return p.done()
		},
	}
}

// floatCol stores raw IEEE-754 bits — byte-exact round trips, no
// precision games.
func floatCol(name string, get func(*sample.Sample) float64, col func(*ColumnBatch) []float64) colSpec {
	return colSpec{
		name: name,
		kind: encFloat,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			for i := range rows {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(get(&rows[i])))
			}
			return buf
		},
		dec: func(p *payload, n int, b *ColumnBatch) error {
			if p.remaining() != 8*n {
				return p.corrupt("float column length mismatch")
			}
			out := col(b)
			for i := 0; i < n; i++ {
				v, err := p.bytes(8)
				if err != nil {
					return err
				}
				out[i] = math.Float64frombits(binary.LittleEndian.Uint64(v))
			}
			return p.done()
		},
	}
}

// boolCol bitpacks a boolean field, LSB first.
func boolCol(name string, get func(*sample.Sample) bool, col func(*ColumnBatch) []bool) colSpec {
	return colSpec{
		name: name,
		kind: encBool,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			var cur byte
			for i := range rows {
				if get(&rows[i]) {
					cur |= 1 << (i % 8)
				}
				if i%8 == 7 {
					buf = append(buf, cur)
					cur = 0
				}
			}
			if len(rows)%8 != 0 {
				buf = append(buf, cur)
			}
			return buf
		},
		dec: func(p *payload, n int, b *ColumnBatch) error {
			if p.remaining() != (n+7)/8 {
				return p.corrupt("bool column length mismatch")
			}
			out := col(b)
			for i := 0; i < n; i++ {
				if i%8 == 0 {
					if _, err := p.bytes(1); err != nil {
						return err
					}
				}
				out[i] = p.data[p.off-1]&(1<<(i%8)) != 0
			}
			return p.done()
		},
	}
}

// respCol encodes the per-row ResponseBytes lists: one length per row,
// then the concatenated values. The batch holds them flattened
// (RespVals + per-row end offsets); empty and nil lists are
// indistinguishable on disk and both materialize back to nil, matching
// the field's omitempty JSON behaviour.
func respCol() colSpec {
	return colSpec{
		name: "resp",
		kind: encList,
		enc: func(buf []byte, rows []sample.Sample) []byte {
			for i := range rows {
				buf = binary.AppendUvarint(buf, uint64(len(rows[i].ResponseBytes)))
			}
			for i := range rows {
				for _, v := range rows[i].ResponseBytes {
					buf = binary.AppendUvarint(buf, zigzag(v))
				}
			}
			return buf
		},
		dec: func(p *payload, n int, b *ColumnBatch) error {
			var total uint64
			for i := 0; i < n; i++ {
				l, err := p.uvarint()
				if err != nil {
					return err
				}
				// Every value costs at least one payload byte, so this bound
				// rejects absurd list lengths before any allocation.
				if l > uint64(p.remaining()) {
					return p.corrupt("response lists larger than payload")
				}
				total += l
				b.RespEnds[i] = int(total)
			}
			if total > uint64(p.remaining()) {
				return p.corrupt("response lists larger than payload")
			}
			b.RespVals = grow(b.RespVals, int(total))
			for j := range b.RespVals {
				u, err := p.uvarint()
				if err != nil {
					return err
				}
				b.RespVals[j] = unzigzag(u)
			}
			return p.done()
		},
	}
}
