package segstore

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/sample"
	"repro/internal/world"
)

// benchCorpus is built once: ~190k samples (25 groups × 2 days at the
// study's default session rate) as JSONL bytes and as a segment
// directory, so the two scan benchmarks read the same rows.
var benchCorpus struct {
	once  sync.Once
	jsonl []byte
	dir   string
	rows  int
}

func benchDataset(b *testing.B) ([]byte, string, int) {
	b.Helper()
	benchCorpus.once.Do(func() {
		w := world.New(world.Config{Seed: 42, Groups: 25, Days: 2, SessionsPerGroupWindow: 40})
		var buf bytes.Buffer
		sw := sample.NewWriter(&buf)
		n := 0
		w.Generate(func(s sample.Sample) {
			if err := sw.Write(s); err != nil {
				b.Fatal(err)
			}
			n++
		})
		// The corpus must outlive every benchmark in the binary, so it
		// cannot live in b.TempDir (cleaned per benchmark).
		tmp, err := os.MkdirTemp("", "segstore-bench-")
		if err != nil {
			b.Fatal(err)
		}
		dir := filepath.Join(tmp, "ds.seg")
		sgw, err := Create(dir, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ConvertJSONL(bytes.NewReader(buf.Bytes()), sgw, ConvertOptions{}); err != nil {
			b.Fatal(err)
		}
		benchCorpus.jsonl = buf.Bytes()
		benchCorpus.dir = dir
		benchCorpus.rows = n
	})
	return benchCorpus.jsonl, benchCorpus.dir, benchCorpus.rows
}

// BenchmarkJSONLScan is the baseline: decode every line of the dataset
// the way the sequential study path does. MB/s is over the JSONL bytes.
func BenchmarkJSONLScan(b *testing.B) {
	data, _, rows := benchDataset(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sample.NewReader(bytes.NewReader(data))
		n := 0
		for {
			_, err := r.Read()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != rows {
			b.Fatalf("decoded %d of %d rows", n, rows)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkSegstoreScan decodes the same rows from the columnar format
// (sequential scan — the fair comparison). MB/s is over the segment
// bytes actually read, so the speedup over BenchmarkJSONLScan combines
// decode efficiency and the compression ratio (reported as a metric).
func BenchmarkSegstoreScan(b *testing.B) {
	data, dir, rows := benchDataset(b)
	r, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}()
	segBytes := r.Manifest().TotalBytes()
	b.SetBytes(segBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := r.Scan(context.Background(), 1, nil, func(rows []sample.Sample) error {
			n += len(rows)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != rows {
			b.Fatalf("decoded %d of %d rows", n, rows)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	b.ReportMetric(float64(len(data))/float64(segBytes), "compression-x")
}
