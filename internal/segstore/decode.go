package segstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sample"
)

// ErrCorrupt wraps every decode failure: truncated blocks, checksum
// mismatches, impossible lengths. Callers distinguish "bad bytes"
// (errors.Is(err, ErrCorrupt)) from I/O errors.
var ErrCorrupt = errors.New("corrupt segment")

// corruptf builds a decode error carrying ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// MaxSegmentRows bounds a segment's declared row count — far above any
// real segment (one group × window span), low enough that a hostile
// header cannot force a giant allocation before validation.
const MaxSegmentRows = 1 << 24

// payload is a bounds-checked cursor over one column's bytes.
type payload struct {
	col  string
	data []byte
	off  int
}

func (p *payload) remaining() int { return len(p.data) - p.off }

func (p *payload) corrupt(msg string) error {
	return corruptf("column %q: %s", p.col, msg)
}

func (p *payload) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.data[p.off:])
	if n <= 0 {
		return 0, p.corrupt("truncated or overlong varint")
	}
	p.off += n
	return v, nil
}

func (p *payload) bytes(n uint64) ([]byte, error) {
	if n > uint64(p.remaining()) {
		return nil, p.corrupt("length past end of payload")
	}
	b := p.data[p.off : p.off+int(n)]
	p.off += int(n)
	return b, nil
}

// done rejects trailing garbage: a column must consume exactly its
// declared payload.
func (p *payload) done() error {
	if p.remaining() != 0 {
		return p.corrupt("trailing bytes after last row")
	}
	return nil
}

// rawColumn is one column as sliced out of the block, CRC-verified but
// not yet decoded.
type rawColumn struct {
	name string
	kind byte
	data []byte
}

// DecodeSegment decodes one segment block produced by EncodeSegment
// into row structs. It is the row-oracle view of DecodeSegmentColumns:
// the columnar decode runs first and the rows are materialized from
// the batch, so the two paths cannot drift.
func DecodeSegment(data []byte) ([]sample.Sample, error) {
	var b ColumnBatch
	if err := decodeInto(data, &b); err != nil {
		return nil, err
	}
	return b.AppendRows(make([]sample.Sample, 0, b.Len())), nil
}

// DecodeSegmentColumns decodes one segment block into a fresh column
// batch — the primary decode path. Corrupt or truncated input returns
// an error wrapping ErrCorrupt — never a panic, never a silently short
// dataset.
func DecodeSegmentColumns(data []byte) (*ColumnBatch, error) {
	b := new(ColumnBatch)
	if err := decodeInto(data, b); err != nil {
		b.Release() // unpooled, so a no-op — but every path releases
		return nil, err
	}
	return b, nil
}

// decodeInto decodes a segment block into b, reusing b's column
// buffers when their capacity allows. Unknown columns (written by a
// newer schema) are skipped; missing or re-typed known columns are
// errors.
func decodeInto(data []byte, b *ColumnBatch) error {
	rows, cols, rest, err := decodeHeader(data)
	if err != nil {
		return err
	}

	// Slice out every column first (cheap — no row-proportional work),
	// verifying names, kinds, and checksums before allocating rows.
	byName := make(map[string]rawColumn, len(schema))
	for i := 0; i < cols; i++ {
		rc, tail, err := sliceColumn(rest)
		if err != nil {
			return err
		}
		rest = tail
		if _, dup := byName[rc.name]; dup {
			return corruptf("column %q appears twice", rc.name)
		}
		byName[rc.name] = rc
	}
	if len(rest) != 0 {
		return corruptf("%d trailing bytes after last column", len(rest))
	}

	// Preflight sizes against the row count so a hostile header cannot
	// trigger a large allocation: every varint row costs ≥1 byte, floats
	// exactly 8, bools exactly one bit.
	for _, c := range schema {
		rc, ok := byName[c.name]
		if !ok {
			return corruptf("missing column %q", c.name)
		}
		if rc.kind != c.kind {
			return corruptf("column %q has kind %d, want %d", c.name, rc.kind, c.kind)
		}
		switch c.kind {
		case encZigzag, encDelta, encList:
			if len(rc.data) < rows {
				return corruptf("column %q: %d bytes for %d rows", c.name, len(rc.data), rows)
			}
		case encFloat:
			if len(rc.data) != 8*rows {
				return corruptf("column %q: %d bytes for %d rows", c.name, len(rc.data), rows)
			}
		case encBool:
			if len(rc.data) != (rows+7)/8 {
				return corruptf("column %q: %d bytes for %d rows", c.name, len(rc.data), rows)
			}
		}
	}

	b.reset(rows)
	for _, c := range schema {
		p := &payload{col: c.name, data: byName[c.name].data}
		if err := c.dec(p, rows, b); err != nil {
			return err
		}
	}
	b.finalize()
	return nil
}

// decodeHeader validates the magic, version, and counts; it returns
// the declared row and column counts and the first column's offset.
func decodeHeader(data []byte) (rows, cols int, rest []byte, err error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic[:]) {
		return 0, 0, nil, corruptf("bad magic")
	}
	p := &payload{col: "header", data: data, off: len(segMagic)}
	ver, err := p.uvarint()
	if err != nil {
		return 0, 0, nil, err
	}
	if ver != segVersion {
		return 0, 0, nil, corruptf("segment version %d, want %d", ver, segVersion)
	}
	nRows, err := p.uvarint()
	if err != nil {
		return 0, 0, nil, err
	}
	if nRows > MaxSegmentRows {
		return 0, 0, nil, corruptf("%d rows exceeds the %d-row segment bound", nRows, MaxSegmentRows)
	}
	nCols, err := p.uvarint()
	if err != nil {
		return 0, 0, nil, err
	}
	// Each column needs ≥ 1 name byte + kind + length + CRC.
	if nCols > uint64(p.remaining())/6 {
		return 0, 0, nil, corruptf("%d columns exceed payload", nCols)
	}
	return int(nRows), int(nCols), data[p.off:], nil
}

// sliceColumn cuts one column (name, kind, payload) off the front of
// data, verifying its CRC, and returns the remainder.
func sliceColumn(data []byte) (rawColumn, []byte, error) {
	p := &payload{col: "column header", data: data}
	nameLen, err := p.uvarint()
	if err != nil {
		return rawColumn{}, nil, err
	}
	if nameLen == 0 || nameLen > 64 {
		return rawColumn{}, nil, corruptf("column name length %d", nameLen)
	}
	name, err := p.bytes(nameLen)
	if err != nil {
		return rawColumn{}, nil, err
	}
	kindB, err := p.bytes(1)
	if err != nil {
		return rawColumn{}, nil, err
	}
	payloadLen, err := p.uvarint()
	if err != nil {
		return rawColumn{}, nil, err
	}
	body, err := p.bytes(payloadLen)
	if err != nil {
		return rawColumn{}, nil, err
	}
	crcB, err := p.bytes(4)
	if err != nil {
		return rawColumn{}, nil, err
	}
	if binary.LittleEndian.Uint32(crcB) != fileCRC(body) {
		return rawColumn{}, nil, corruptf("column %q: checksum mismatch", name)
	}
	return rawColumn{name: string(name), kind: kindB[0], data: body}, data[p.off:], nil
}
