package segstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sample"
)

// Reader scans a segment dataset. Open loads the manifest once; every
// Scan plans against it (pruning segments the filter disproves), then
// decodes the survivors — in parallel when asked — and emits their
// rows in manifest order, so downstream consumers see exactly the
// sample order the equivalent JSONL file would give them.
type Reader struct {
	dir string
	man *Manifest
	// f pins the manifest that was opened (a concurrent recommit swaps
	// the directory entry, not our snapshot); Close releases it.
	f *os.File

	// pool recycles decoded column batches across Scan/ScanColumns emits
	// so a long scan reuses a handful of buffer sets instead of
	// allocating per segment. Batches return here via Release.
	pool sync.Pool

	// Pre-resolved obs handles; nil (no-op) until Instrument.
	scanSpan    *obs.SpanTimer
	cBytesRead  *obs.Counter
	cSamples    *obs.Counter
	cSegsRead   *obs.Counter
	gSegsTotal  *obs.Gauge
	gSegsPruned *obs.Gauge
	gBytesTotal *obs.Gauge
	gBytesPrune *obs.Gauge
}

// Open loads the dataset manifest at dir and verifies that every
// segment file the manifest commits actually exists on disk at its
// recorded size — a dataset rotted by a deleted or truncated segment
// fails here, loudly and with the precise segment named, instead of as
// a confusing read error deep inside the first scan that happens to
// need it. (Content checksums stay on the scan path: Open stats, it
// does not read.)
func Open(dir string) (*Reader, error) {
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	for _, m := range man.Segments {
		fi, err := os.Stat(filepath.Join(dir, m.File))
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("segstore: %s: manifest commits segment %d but %s is missing on disk: %w", dir, m.ID, m.File, ErrCorrupt)
		}
		if err != nil {
			return nil, fmt.Errorf("segstore: %s: segment %d (%s): %w", dir, m.ID, m.File, err)
		}
		if fi.Size() != m.Bytes {
			return nil, fmt.Errorf("segstore: %s: segment %d (%s) is %d bytes on disk, manifest says %d: %w",
				dir, m.ID, m.File, fi.Size(), m.Bytes, ErrCorrupt)
		}
	}
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("segstore: %w", err)
	}
	return &Reader{dir: dir, man: man, f: f}, nil
}

// Manifest returns the loaded manifest.
func (r *Reader) Manifest() *Manifest { return r.man }

// Close releases the manifest handle. The error matters on platforms
// where close surfaces deferred I/O failures; edgelint's closecheck
// flags callers that drop it.
func (r *Reader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// Instrument registers scan metrics on reg (nil-safe): bytes/segments
// read and decoded samples as counters (rates show on the obs progress
// line), plan totals and pruned amounts as gauges.
func (r *Reader) Instrument(reg *obs.Registry) {
	r.scanSpan = reg.Span(obs.L("segstore_stage_seconds", "stage", "scan"), "segstore")
	r.cBytesRead = reg.Counter("segstore_bytes_read_total")
	r.cSamples = reg.Counter("segstore_samples_decoded_total")
	r.cSegsRead = reg.Counter("segstore_segments_read_total")
	r.gSegsTotal = reg.Gauge("segstore_segments_total")
	r.gSegsPruned = reg.Gauge("segstore_segments_pruned")
	r.gBytesTotal = reg.Gauge("segstore_bytes_total")
	r.gBytesPrune = reg.Gauge("segstore_bytes_pruned")
}

// Prune plans a scan: the manifest's segments that survive f, in
// manifest order. The pruning gauges record what the filter saved —
// the "scans measurably fewer bytes" evidence, observable per run.
func (r *Reader) Prune(f *Filter) []SegmentMeta {
	var kept []SegmentMeta
	var prunedBytes int64
	for _, m := range r.man.Segments {
		if f.MatchSegment(&m) {
			kept = append(kept, m)
		} else {
			prunedBytes += m.Bytes
		}
	}
	r.gSegsTotal.Set(float64(len(r.man.Segments)))
	r.gSegsPruned.Set(float64(len(r.man.Segments) - len(kept)))
	r.gBytesTotal.Set(float64(r.man.TotalBytes()))
	r.gBytesPrune.Set(float64(prunedBytes))
	return kept
}

// ReadSegment loads and decodes one segment, verifying the manifest's
// whole-file checksum before the per-column ones.
func (r *Reader) ReadSegment(m SegmentMeta) ([]sample.Sample, error) {
	sp := r.scanSpan.Start()
	defer sp.End()
	data, err := os.ReadFile(filepath.Join(r.dir, m.File))
	if err != nil {
		return nil, fmt.Errorf("segstore: segment %d: %w", m.ID, err)
	}
	if int64(len(data)) != m.Bytes || fileCRC(data) != m.CRC {
		return nil, fmt.Errorf("segstore: segment %d (%s): %w: file does not match manifest checksum", m.ID, m.File, ErrCorrupt)
	}
	rows, err := DecodeSegment(data)
	if err != nil {
		return nil, fmt.Errorf("segstore: segment %d (%s): %w", m.ID, m.File, err)
	}
	if len(rows) != m.Samples {
		return nil, fmt.Errorf("segstore: segment %d (%s): %w: %d rows, manifest says %d", m.ID, m.File, ErrCorrupt, len(rows), m.Samples)
	}
	r.cBytesRead.Add(int64(len(data)))
	r.cSamples.Add(int64(len(rows)))
	r.cSegsRead.Inc()
	return rows, nil
}

// readColumns loads and decodes one segment into a pooled batch,
// verifying the manifest's whole-file checksum before the per-column
// ones. The returned batch is owned by the caller (Release it).
func (r *Reader) readColumns(m SegmentMeta) (*ColumnBatch, error) {
	sp := r.scanSpan.Start()
	defer sp.End()
	data, err := os.ReadFile(filepath.Join(r.dir, m.File))
	if err != nil {
		return nil, fmt.Errorf("segstore: segment %d: %w", m.ID, err)
	}
	if int64(len(data)) != m.Bytes || fileCRC(data) != m.CRC {
		return nil, fmt.Errorf("segstore: segment %d (%s): %w: file does not match manifest checksum", m.ID, m.File, ErrCorrupt)
	}
	b, _ := r.pool.Get().(*ColumnBatch)
	if b == nil {
		b = new(ColumnBatch)
	}
	b.pool = &r.pool
	b.refs.Store(1)
	outstanding.Add(1)
	if err := decodeInto(data, b); err != nil {
		b.Release()
		return nil, fmt.Errorf("segstore: segment %d (%s): %w", m.ID, m.File, err)
	}
	if b.Len() != m.Samples {
		n := b.Len()
		b.Release()
		return nil, fmt.Errorf("segstore: segment %d (%s): %w: %d rows, manifest says %d", m.ID, m.File, ErrCorrupt, n, m.Samples)
	}
	if m.SingleGroup() {
		b.singleGroup = true
	}
	r.cBytesRead.Add(int64(len(data)))
	r.cSamples.Add(int64(b.Len()))
	r.cSegsRead.Inc()
	return b, nil
}

// ScanColumns prunes against f, decodes the surviving segments into
// column batches on up to workers goroutines, filters them at the
// column level, and emits each batch in manifest order — the primary
// read path; no row structs are built. emit takes ownership of the
// batch and must Release it (directly or by handing it on); emit's
// error — like a decode error — poisons the whole scan. workers <= 1
// scans sequentially on the calling goroutine (the determinism oracle;
// there is nothing to reorder).
func (r *Reader) ScanColumns(ctx context.Context, workers int, f *Filter, emit func(*ColumnBatch) error) error {
	plan := r.Prune(f)
	if workers <= 1 {
		for _, m := range plan {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			b, err := r.readColumns(m)
			if err != nil {
				return err
			}
			f.ApplyColumns(b)
			if err := emit(b); err != nil {
				return err
			}
		}
		return nil
	}

	type decoded struct {
		seq int
		b   *ColumnBatch
	}
	if workers > len(plan) && len(plan) > 0 {
		workers = len(plan)
	}
	idx := make(chan int, len(plan))
	for i := range plan {
		idx <- i
	}
	close(idx)

	g := pipeline.NewGroup(ctx)
	out := pipeline.NewStream[decoded](workers)
	g.GoPool(workers, func(ctx context.Context, _ int) error {
		for i := range idx {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			b, err := r.readColumns(plan[i])
			if err != nil {
				return err
			}
			f.ApplyColumns(b)
			if err := out.Send(ctx, decoded{seq: i, b: b}); err != nil {
				// The scan is poisoned and the reorder stage will never see
				// this batch: release it here or its pool slot leaks.
				//edgelint:allow batchlife: a failed Send means the stream never took ownership
				b.Release()
				return err
			}
		}
		return nil
	}, out.Close)
	g.Go(func(ctx context.Context) error {
		// On a poisoned scan the drain hook releases every batch that was
		// decoded but never emitted (buffered in the stream or in the
		// reorder window), so even a failed scan leaks no pool capacity.
		return pipeline.ReorderDrain(ctx, out, func(d decoded) int { return d.seq }, 0,
			func(d decoded) error { return emit(d.b) },
			func(d decoded) { d.b.Release() })
	})
	return g.Wait()
}

// Scan is the row view of ScanColumns: same pruning, decode
// parallelism, filtering, and manifest-order emission, with each batch
// materialized to sample.Sample rows on the ordered emit goroutine.
// The rows slice is reused between emits — it is valid only until emit
// returns; consumers that retain samples must copy them.
func (r *Reader) Scan(ctx context.Context, workers int, f *Filter, emit func([]sample.Sample) error) error {
	var rows []sample.Sample
	return r.ScanColumns(ctx, workers, f, func(b *ColumnBatch) error {
		rows = b.AppendRows(rows[:0])
		err := emit(rows)
		b.Release()
		return err
	})
}
