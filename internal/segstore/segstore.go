// Package segstore is the repo's binary columnar storage layer: a
// self-describing, dependency-free segment format for sample.Sample
// datasets, built for the paper's operating regime — archives far too
// large to re-decode in full when an analysis wants one country or one
// day (§3.3 aggregates hundreds of trillions of sessions into
// 15-minute windows precisely so they can be re-analysed cheaply).
//
// A dataset is a directory of immutable segments plus one manifest:
//
//	ds.seg/
//	  MANIFEST.json      atomically committed index (see Manifest)
//	  seg-00000000.seg   columnar block: one group × window span
//	  seg-00000001.seg   ...
//
// Each segment stores its samples column-by-column: timestamps and
// counters as delta/zigzag varints, low-cardinality strings (PoP,
// country, prefix, route) dictionary-encoded, floats as raw bits,
// booleans bitpacked — every column carrying its own CRC32 so a
// flipped bit is a loud decode error, never a silently wrong figure.
// The layout is self-describing (columns are named in the file), so a
// newer reader can skip columns it does not know.
//
// The manifest doubles as a checkpoint and as the scan planner's
// index: per segment it records the sample count, window span, and the
// country/PoP sets, so readers prune whole segments against a Filter
// before a single byte of column data is read, and an interrupted
// writer (cmd/edgesim -format seg) resumes by re-emitting only the
// segments the manifest has not committed. Commits are atomic
// (write-temp + rename), so a SIGINT at any instant leaves a readable
// dataset; a fault-injected write failure tombstones its segment in
// the manifest instead of corrupting it.
//
// Determinism contract: encoding is a pure function of the sample
// slice (dictionaries are built in first-appearance order), manifests
// render sorted by segment ID with no wall-clock fields, and parallel
// scans re-emit segments in manifest order — so seg datasets inherit
// the repo-wide guarantee that output bytes do not depend on worker
// count, and a resumed run's directory is byte-identical to an
// uninterrupted one.
package segstore

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// ManifestName is the manifest file every dataset directory carries.
const ManifestName = "MANIFEST.json"

// FormatVersion tags the manifest and segment encoding revision.
const FormatVersion = "edgeseg/1"

// SegmentMeta indexes one immutable segment file.
type SegmentMeta struct {
	// ID orders segments; concatenating segments in ascending ID order
	// reproduces the dataset's canonical (JSONL) sample order.
	ID int `json:"id"`
	// File is the segment's file name within the dataset directory.
	File string `json:"file"`
	// Samples is the row count.
	Samples int `json:"samples"`
	// Bytes is the segment file size.
	Bytes int64 `json:"bytes"`
	// CRC is the CRC32 (IEEE) of the whole segment file.
	CRC uint32 `json:"crc"`
	// StartMin/StartMax bound the rows' Start offsets (nanoseconds from
	// the dataset epoch) — the scan planner's time-range index. Both are
	// zero when the segment is empty.
	StartMin int64 `json:"start_min"`
	StartMax int64 `json:"start_max"`
	// Countries and PoPs are the sorted distinct values present — the
	// predicate-pushdown index for geographic filters.
	Countries []string `json:"countries,omitempty"`
	PoPs      []string `json:"pops,omitempty"`
	// Prefixes is the sorted distinct client prefixes present. Together
	// with Countries and PoPs it is the single-group index: one value in
	// each set proves every row shares one user group, which lets the
	// aggregator skip per-row group dispatch for the whole segment.
	// Absent from manifests written before the field existed — readers
	// fall back to the decoded dictionaries.
	Prefixes []string `json:"prefixes,omitempty"`
}

// SingleGroup reports whether the manifest index proves the segment's
// rows all share one user group (PoP × prefix × country).
func (m *SegmentMeta) SingleGroup() bool {
	return len(m.PoPs) == 1 && len(m.Prefixes) == 1 && len(m.Countries) == 1
}

// Tombstone records a segment that was lost to an injected or real
// write failure: the slot is accounted for (resume will not retry it)
// and the loss is visible, but no data pretends to exist.
type Tombstone struct {
	ID          int    `json:"id"`
	Reason      string `json:"reason"`
	SamplesLost int    `json:"samples_lost"`
}

// Manifest is the dataset index, committed atomically after every
// segment append. It carries no wall-clock fields: two runs that wrote
// the same segments commit byte-identical manifests.
type Manifest struct {
	Format string `json:"format"`
	// Origin describes the writer invocation (seed, config, fault plan);
	// resume refuses to extend a dataset with a different origin.
	Origin     string        `json:"origin,omitempty"`
	Segments   []SegmentMeta `json:"segments"`
	Tombstones []Tombstone   `json:"tombstones,omitempty"`
}

// TotalSamples sums the committed segments' row counts.
func (m *Manifest) TotalSamples() int {
	n := 0
	for _, s := range m.Segments {
		n += s.Samples
	}
	return n
}

// TotalBytes sums the committed segments' file sizes.
func (m *Manifest) TotalBytes() int64 {
	var n int64
	for _, s := range m.Segments {
		n += s.Bytes
	}
	return n
}

// sortEntries restores the canonical manifest order (ascending ID).
func (m *Manifest) sortEntries() {
	sort.Slice(m.Segments, func(i, j int) bool { return m.Segments[i].ID < m.Segments[j].ID })
	sort.Slice(m.Tombstones, func(i, j int) bool { return m.Tombstones[i].ID < m.Tombstones[j].ID })
}

// IsDataset reports whether path is a segment-dataset directory (the
// format auto-detection hook for cmd/edgereport, edgestat, segcat).
func IsDataset(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}

// segmentFileName names a segment file for its ID.
func segmentFileName(id int) string { return fmt.Sprintf("seg-%08d.seg", id) }

// loadManifest reads and validates the dataset's manifest.
func loadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("segstore: %s: corrupt manifest: %w", dir, err)
	}
	if m.Format != FormatVersion {
		return nil, fmt.Errorf("segstore: %s: manifest format %q, want %q", dir, m.Format, FormatVersion)
	}
	seen := make(map[int]bool, len(m.Segments))
	for _, s := range m.Segments {
		if seen[s.ID] {
			return nil, fmt.Errorf("segstore: %s: manifest lists segment %d twice", dir, s.ID)
		}
		seen[s.ID] = true
		if s.File != segmentFileName(s.ID) {
			return nil, fmt.Errorf("segstore: %s: segment %d names file %q, want %q", dir, s.ID, s.File, segmentFileName(s.ID))
		}
	}
	for _, tb := range m.Tombstones {
		if seen[tb.ID] {
			return nil, fmt.Errorf("segstore: %s: segment %d is both committed and tombstoned", dir, tb.ID)
		}
		seen[tb.ID] = true
	}
	m.sortEntries()
	return &m, nil
}

// commitManifest writes the manifest atomically: marshal, write to a
// temp file in the same directory, fsync, rename over ManifestName. A
// process killed at any point leaves either the old or the new
// manifest, never a torn one.
func commitManifest(dir string, m *Manifest) error {
	m.sortEntries()
	if err := atomicWriteJSON(dir, ManifestName, m); err != nil {
		return fmt.Errorf("segstore: commit manifest: %w", err)
	}
	return nil
}

// atomicWriteJSON commits v as indented JSON to dir/name via the
// write-temp + fsync + rename protocol shared by the manifest and the
// shipping ack log: a process killed at any instant leaves either the
// old file or the new one, never a torn write.
func atomicWriteJSON(dir, name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", name, err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // the write error is the root cause
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, name))
}

// fileCRC computes the whole-file checksum recorded in the manifest.
func fileCRC(data []byte) uint32 { return crc32.ChecksumIEEE(data) }
