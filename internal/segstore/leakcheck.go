package segstore

import (
	"os"
	"sync/atomic"
)

// Leak accounting — the runtime twin of the batchlife static analyzer
// (DESIGN.md §13). The ownership protocol says every pooled batch a
// scan hands out is released exactly once; the analyzer proves it on
// the paths it can see, and these counters catch what it cannot
// (ownership threaded through channels, dynamic call chains, future
// daemon code). The counters are always on — two uncontended atomic
// adds per batch, invisible next to a segment decode — so any test can
// assert the invariant; poisoning is opt-in because it deliberately
// corrupts released batches.
var (
	// outstanding counts pooled batches currently out of their scan
	// pool: +1 per acquisition, −1 when the last reference releases.
	// Zero after a completed scan or the pool is leaking capacity.
	outstanding atomic.Int64

	// doubleReleases counts Release calls beyond a batch's or view's
	// final one — each is a latent pool corruption that used to be
	// silent (a released view still aliases recycled parent arrays).
	doubleReleases atomic.Int64

	// leakPoison, when enabled, makes a released owned batch
	// unmistakably dead: row count −1 and zeroed dictionary indexes, so
	// a use-after-Release reads garbage loudly (empty loops, panics on
	// emptied dictionaries) instead of rows from whatever batch the
	// pool recycled the arrays into.
	leakPoison atomic.Bool
)

func init() {
	if os.Getenv("EDGE_LEAKCHECK") == "1" {
		leakPoison.Store(true)
	}
}

// SetLeakCheck switches batch poisoning on or off (see LeakStats). The
// EDGE_LEAKCHECK=1 environment variable enables it at init; tests that
// drive whole studies enable it in TestMain.
func SetLeakCheck(on bool) { leakPoison.Store(on) }

// LeakCheckEnabled reports whether released batches are poisoned.
func LeakCheckEnabled() bool { return leakPoison.Load() }

// LeakStats returns the pooled batches currently outstanding and the
// cumulative double-release count. A correct run ends with outstanding
// == 0 (every acquired batch released) and never double-releases.
func LeakStats() (outstandingBatches, doubleReleased int64) {
	return outstanding.Load(), doubleReleases.Load()
}

// poison marks a released owned batch as dead (leak-check mode only):
// Len goes negative and the dictionaries empty, so stale views or
// identifiers fail loudly instead of silently reading recycled rows.
// reset repairs all of it on the next acquisition.
func (b *ColumnBatch) poison() {
	b.n = -1
	for _, c := range [...]*DictColumn{&b.PoP, &b.Prefix, &b.Country, &b.Continent, &b.Proto, &b.Route} {
		for i := range c.Idx {
			c.Idx[i] = 0
		}
		c.Dict = nil
	}
}
