package segstore

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/sample"
)

// sameRows compares row slices treating empty and nil alike.
func sameRows(got, want []sample.Sample) bool {
	if len(got) != len(want) {
		return false
	}
	if len(got) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

// The columnar decode is the same parser as the row decode behind a
// different materialization: AppendRows over the batch must reproduce
// the row decode exactly, field for field.
func TestDecodeSegmentColumnsMatchesRows(t *testing.T) {
	for _, seed := range []uint64{5, 23} {
		rows := testSamples(t, seed, 7, 1)
		blob, meta := EncodeSegment(rows)

		b, err := DecodeSegmentColumns(blob)
		if err != nil {
			t.Fatalf("seed=%d: DecodeSegmentColumns: %v", seed, err)
		}
		if b.Len() != len(rows) || b.Len() != meta.Samples {
			t.Fatalf("seed=%d: batch has %d rows, want %d", seed, b.Len(), len(rows))
		}
		got := b.AppendRows(nil)
		if !reflect.DeepEqual(got, rows) {
			for i := range rows {
				if !reflect.DeepEqual(got[i], rows[i]) {
					t.Fatalf("seed=%d: row %d differs:\n got: %+v\nwant: %+v", seed, i, got[i], rows[i])
				}
			}
			t.Fatalf("seed=%d: materialized rows differ", seed)
		}

		// The derived hints must hold over the actual rows.
		var mn, mx int64
		sorted := true
		for i, r := range rows {
			v := int64(r.Start)
			if i == 0 || v < mn {
				mn = v
			}
			if i == 0 || v > mx {
				mx = v
			}
			if i > 0 && v < int64(rows[i-1].Start) {
				sorted = false
			}
		}
		if b.StartMin != mn || b.StartMax != mx || b.StartsSorted != sorted {
			t.Fatalf("seed=%d: hints (min=%d max=%d sorted=%v), rows say (%d, %d, %v)",
				seed, b.StartMin, b.StartMax, b.StartsSorted, mn, mx, sorted)
		}
	}
}

// ApplyColumns must keep exactly the rows the row predicate keeps, in
// order — the filter equivalence the byte-identical reports rest on.
func TestApplyColumnsMatchesApply(t *testing.T) {
	rows := testSamples(t, 9, 8, 1)
	day := 24 * time.Hour
	filters := []*Filter{
		nil,
		{},
		{From: 6 * time.Hour},
		{To: 12 * time.Hour},
		{From: 3 * time.Hour, To: 21 * time.Hour},
		{From: 2 * day}, // everything pruned
		{Countries: []string{rows[0].Country}},
		{PoPs: []string{rows[0].PoP, rows[len(rows)-1].PoP}},
		{Countries: []string{"ZZ"}},
		{From: 4 * time.Hour, Countries: []string{rows[len(rows)/2].Country}, PoPs: []string{rows[len(rows)/2].PoP}},
	}
	blob, _ := EncodeSegment(rows)
	for fi, f := range filters {
		want := f.Apply(append([]sample.Sample(nil), rows...))
		b, err := DecodeSegmentColumns(blob)
		if err != nil {
			t.Fatal(err)
		}
		f.ApplyColumns(b)
		got := b.AppendRows(nil)
		if !sameRows(got, want) {
			t.Fatalf("filter %d (%s): %d filtered rows, want %d (or rows differ)", fi, f, len(got), len(want))
		}
		// Start bounds stay valid over the survivors.
		for i, r := range got {
			if int64(r.Start) < b.StartMin || int64(r.Start) > b.StartMax {
				t.Fatalf("filter %d: row %d start %d outside [%d, %d]", fi, i, r.Start, b.StartMin, b.StartMax)
			}
		}
	}
}

// Slice views share the parent's arrays but carry their own row axis:
// concatenating the views' rows reproduces the parent, response spans
// included, and compacting one view never disturbs a sibling.
func TestColumnBatchSliceAndCompact(t *testing.T) {
	rows := testSamples(t, 13, 5, 1)
	blob, _ := EncodeSegment(rows)
	b, err := DecodeSegmentColumns(blob)
	if err != nil {
		t.Fatal(err)
	}
	n := b.Len()
	cuts := []int{0, n / 3, n / 3, 2 * n / 3, n} // includes an empty view
	var got []sample.Sample
	views := make([]*ColumnBatch, 0, len(cuts)-1)
	for i := 1; i < len(cuts); i++ {
		v := b.Slice(cuts[i-1], cuts[i])
		views = append(views, v)
		got = v.AppendRows(got)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatal("concatenated view rows differ from the parent's")
	}

	// Compact the middle view (views[2]; views[1] is the empty one) to
	// rows with AltIndex == 0; siblings and their response spans must be
	// untouched.
	mid := views[2]
	var wantMid []sample.Sample
	for _, r := range rows[cuts[2]:cuts[3]] {
		if r.AltIndex == 0 {
			wantMid = append(wantMid, r)
		}
	}
	if len(wantMid) == 0 || len(wantMid) == mid.Len() {
		t.Fatalf("degenerate compaction fixture: %d of %d rows survive", len(wantMid), mid.Len())
	}
	mid.Compact(func(i int) bool { return mid.AltIndex[i] == 0 })
	if gotMid := mid.AppendRows(nil); !sameRows(gotMid, wantMid) {
		t.Fatalf("compacted view has %d rows, want %d (or rows differ)", len(gotMid), len(wantMid))
	}
	if first := views[0].AppendRows(nil); !sameRows(first, rows[:cuts[1]]) {
		t.Fatal("compacting one view disturbed a sibling")
	}
	if last := views[3].AppendRows(nil); !sameRows(last, rows[cuts[3]:]) {
		t.Fatal("compacting one view disturbed the following sibling")
	}
	for _, v := range views {
		v.Release()
	}
	b.Release() // unpooled root: no-op by contract
}

// Randomized compaction property: Compact(keep) ≡ filtering the
// materialized rows with the same predicate, across many random keep
// sets (including all-drop and all-keep).
func TestColumnBatchCompactProperty(t *testing.T) {
	rows := testSamples(t, 31, 6, 1)
	blob, _ := EncodeSegment(rows)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		b, err := DecodeSegmentColumns(blob)
		if err != nil {
			t.Fatal(err)
		}
		keep := make([]bool, b.Len())
		switch trial {
		case 0: // all drop
		case 1:
			for i := range keep {
				keep[i] = true
			}
		default:
			for i := range keep {
				keep[i] = rng.Intn(3) > 0
			}
		}
		var want []sample.Sample
		for i, r := range rows {
			if keep[i] {
				want = append(want, r)
			}
		}
		if got := b.Compact(func(i int) bool { return keep[i] }); got != len(want) {
			t.Fatalf("trial %d: Compact returned %d, want %d", trial, got, len(want))
		}
		if got := b.AppendRows(nil); !sameRows(got, want) {
			t.Fatalf("trial %d: compacted rows differ (%d vs %d)", trial, len(got), len(want))
		}
	}
}

// KeyAt / KeyRunEnd / SingleKey agree with the row-level group keys.
func TestColumnBatchKeyDispatch(t *testing.T) {
	rows := testSamples(t, 17, 6, 1)
	blob, _ := EncodeSegment(rows)
	b, err := DecodeSegmentColumns(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if b.KeyAt(i) != rows[i].Key() {
			t.Fatalf("KeyAt(%d) = %v, want %v", i, b.KeyAt(i), rows[i].Key())
		}
	}
	for i := 0; i < b.Len(); {
		end := b.KeyRunEnd(i)
		if end <= i || end > b.Len() {
			t.Fatalf("KeyRunEnd(%d) = %d out of range", i, end)
		}
		for j := i; j < end; j++ {
			if rows[j].Key() != rows[i].Key() {
				t.Fatalf("run [%d,%d) mixes keys at %d", i, end, j)
			}
		}
		if end < b.Len() && rows[end].Key() == rows[i].Key() {
			t.Fatalf("KeyRunEnd(%d) = %d stopped short of the run end", i, end)
		}
		i = end
	}

	// A single-group segment proves itself through its dictionaries.
	oneKey := rows[:0:0]
	for _, r := range rows {
		if r.Key() == rows[0].Key() {
			oneKey = append(oneKey, r)
		}
	}
	oneBlob, _ := EncodeSegment(oneKey)
	ob, err := DecodeSegmentColumns(oneBlob)
	if err != nil {
		t.Fatal(err)
	}
	if key, ok := ob.SingleKey(); !ok || key != rows[0].Key() {
		t.Fatalf("SingleKey = (%v, %v), want (%v, true)", key, ok, rows[0].Key())
	}
	if _, ok := b.SingleKey(); ok && len(b.PoP.Dict)*len(b.Prefix.Dict)*len(b.Country.Dict) != 1 {
		t.Fatal("SingleKey claimed a multi-group batch")
	}
}

// EncodeSegment indexes the segment's prefixes, and a single-group
// manifest entry proves SingleGroup.
func TestSegmentMetaSingleGroup(t *testing.T) {
	rows := testSamples(t, 29, 4, 1)
	one := rows[:0:0]
	for _, r := range rows {
		if r.Key() == rows[0].Key() {
			one = append(one, r)
		}
	}
	_, meta := EncodeSegment(one)
	if len(meta.Prefixes) != 1 {
		t.Fatalf("meta.Prefixes = %v, want exactly the one prefix", meta.Prefixes)
	}
	if !meta.SingleGroup() {
		t.Fatalf("single-group segment not recognized: %+v", meta)
	}
	// Without the prefix index (older manifests) the proof must refuse.
	m2 := meta
	m2.Prefixes = nil
	if m2.SingleGroup() {
		t.Fatal("SingleGroup claimed without a prefix index")
	}
}
