package ship

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/segstore"
	"repro/internal/trace"
)

// errWire is the sentinel every wire-level failure wraps: transient by
// construction, so faults.IsTransient (and therefore faults.Retry's
// default predicate) classifies a severed connection as retryable.
var errWire = &faults.FaultError{Surface: faults.SurfaceShip, Key: "wire", Transient: true}

// ShipperOptions configures one catch-up shipping run over a PoP's
// committed dataset.
type ShipperOptions struct {
	// Dir is the PoP's local segment dataset.
	Dir string
	// Network and Addr locate the merger ("tcp" host:port or "unix"
	// socket path). An Addr containing a path separator defaults the
	// network to "unix", otherwise "tcp".
	Network string
	Addr    string
	// PoP and Pops identify this shipper in its fleet.
	PoP  int
	Pops int
	// Credit caps unacked in-flight shipments; the merger's hello grant
	// lowers it further. Default 4.
	Credit int
	// Injector drives the deterministic wire-fault surface (may be nil).
	// This is the *ship* plan — wire-only chaos, never part of the
	// dataset origin.
	Injector *faults.Injector
	// Reg receives shipper metrics (may be nil).
	Reg *obs.Registry
	// Rec records shipment events (may be nil).
	Rec *trace.Recorder
	// AckBatch group-commits the durable ack log every AckBatch acked
	// slots instead of after every one, amortizing the fsync-bound
	// per-slot commit cost (~1.1ms/slot, see EXPERIMENTS.md). <=1
	// commits per ack. Batching never risks data: an ack lost to a
	// crash before its batch commits is simply re-shipped on resume and
	// deduplicated by the merger, while every slot already in ACKS.json
	// stays skipped — resume never re-acks past the committed watermark.
	AckBatch int
	// OnAck observes each acknowledgement as it arrives (with AckBatch
	// > 1 the ack may not be durable yet) — the kill-and-restart tests'
	// hook for cancelling mid-shipment (may be nil).
	OnAck func(segID int, dup bool)
	// Dial overrides net.Dial (tests; may be nil).
	Dial func(network, addr string) (net.Conn, error)
}

// ShipStats reports one shipping run.
type ShipStats struct {
	// Shipped counts slots (segments + tombstones) newly acked this run;
	// AlreadyAcked counts slots the ack log let us skip entirely.
	Shipped      int
	AlreadyAcked int
	// Segments and Tombs split Shipped by kind.
	Segments int
	Tombs    int
	// Bytes is the segment payload volume actually sent (retries and
	// injected duplicates included).
	Bytes int64
	// Retries counts backoff retries spent; Reconnects counts
	// connections re-established after the first.
	Retries    int
	Reconnects int
	// DupsInjected counts duplicate deliveries the fault plan injected —
	// the number the merger's dedup counter must equal exactly.
	DupsInjected int
	// MergerDeduped echoes the DoneAck totals for this shipper's final
	// connection (informational; resumed runs undercount).
	MergerAccepted int
	MergerDeduped  int
}

// shipItem is one slot to ship: a committed segment or a tombstone.
type shipItem struct {
	id   int
	meta *segstore.SegmentMeta
	tomb *segstore.Tombstone
}

// shipper is the connection-scoped state of one Ship call.
type shipper struct {
	opt    ShipperOptions
	origin string
	acks   *segstore.AckLog
	conn   net.Conn
	stats  ShipStats
	tb     *trace.Buf
	// attempts numbers each slot's send attempts across reconnects so
	// fault decisions stay a function of (segment, attempt).
	attempts map[int]int
	// everConnected separates the first connection from reconnects.
	everConnected bool
	// pendingAcks counts acks added to the log but not yet committed
	// (AckBatch group-commit); flushAcks drains it.
	pendingAcks int

	cShipped   *obs.Counter
	cRetries   *obs.Counter
	cReconnect *obs.Counter
	cDupInj    *obs.Counter
	cBytes     *obs.Counter
	gBacklog   *obs.Gauge
	gInflight  *obs.Gauge
	gWatermark *obs.Gauge
}

// Ship ships every committed-but-unacked slot in opt.Dir's manifest to
// the merger, in ascending segment-ID order, under the credit window
// and the fault plan, committing the ack log after every
// acknowledgement. It is safe to kill the process at any instant and
// call Ship again: already-acked slots are skipped via the durable ack
// log, and a slot whose ack was lost in flight is re-shipped and
// deduplicated by the merger. Returns the run's stats and the first
// unrecoverable error.
func Ship(ctx context.Context, opt ShipperOptions) (ShipStats, error) {
	if opt.Network == "" {
		if strings.ContainsRune(opt.Addr, os.PathSeparator) {
			opt.Network = "unix"
		} else {
			opt.Network = "tcp"
		}
	}
	if opt.Credit <= 0 {
		opt.Credit = 4
	}
	if opt.Dial == nil {
		opt.Dial = net.Dial
	}

	man, err := loadManifestChecked(opt.Dir)
	if err != nil {
		return ShipStats{}, err
	}
	acks, err := segstore.LoadAcks(opt.Dir, man.Origin)
	if err != nil {
		return ShipStats{}, err
	}

	s := &shipper{opt: opt, origin: man.Origin, acks: acks, attempts: map[int]int{}}
	s.instrument(opt.Reg)
	s.tb = opt.Rec.Buf()

	// The work list: every committed slot the merger has not durably
	// acknowledged, ascending by ID (tombstones interleave by ID).
	var pending []shipItem
	for i := range man.Segments {
		m := &man.Segments[i]
		if acks.Has(m.ID) {
			s.stats.AlreadyAcked++
			continue
		}
		pending = append(pending, shipItem{id: m.ID, meta: m})
	}
	for i := range man.Tombstones {
		t := &man.Tombstones[i]
		if acks.Has(t.ID) {
			s.stats.AlreadyAcked++
			continue
		}
		pending = append(pending, shipItem{id: t.ID, tomb: t})
	}
	sortItems(pending)
	total := len(pending) + s.stats.AlreadyAcked
	s.gWatermark.Set(float64(acks.Watermark()))

	var inflight []shipItem
	requeue := func() {
		// A severed connection loses every in-flight ack: move the
		// in-flight slots back to the head of the queue — re-sending is
		// safe, the merger deduplicates.
		if len(inflight) > 0 {
			pending = append(append([]shipItem{}, inflight...), pending...)
			inflight = inflight[:0]
		}
	}

	defer func() {
		if s.conn != nil {
			_ = s.conn.Close() // best-effort teardown; acks are already durable
		}
	}()

	credit := opt.Credit
	for len(pending)+len(inflight) > 0 {
		if err := ctx.Err(); err != nil {
			return s.stats, context.Cause(ctx)
		}
		s.gBacklog.Set(float64(len(pending) + len(inflight)))
		s.gInflight.Set(float64(len(inflight)))

		if len(pending) > 0 && len(inflight) < credit {
			it := pending[0]
			pending = pending[1:]
			granted, err := s.sendWithRetry(ctx, it, requeue)
			if err != nil {
				s.markDegraded()
				return s.stats, err
			}
			if granted > 0 && granted < credit {
				credit = granted
			}
			inflight = append(inflight, it)
			continue
		}
		if len(inflight) == 0 {
			continue // requeue emptied the window; back to sending
		}
		if s.conn == nil {
			// The drain path found the connection dead: reconnect happens
			// inside the next send, so just restore the unacked slots.
			requeue()
			continue
		}
		ok, err := s.drainOne(&inflight)
		if err != nil {
			s.markDegraded()
			return s.stats, err
		}
		if !ok {
			requeue()
		}
	}
	s.gBacklog.Set(0)
	s.gInflight.Set(0)

	// Flush any group-committed acks still pending before the done
	// exchange: once DONE is acked the process is expected to exit, and
	// an unflushed tail would force a wasteful (if harmless) re-ship on
	// the next run.
	if err := s.flushAcks(); err != nil {
		s.markDegraded()
		return s.stats, err
	}
	if err := s.finish(ctx, total); err != nil {
		s.markDegraded()
		return s.stats, err
	}
	return s.stats, nil
}

// flushAcks commits the ack log if any acks are pending; the durable
// watermark advances only here.
func (s *shipper) flushAcks() error {
	if s.pendingAcks == 0 {
		return nil
	}
	if err := s.acks.Commit(s.opt.Dir); err != nil {
		return err
	}
	s.pendingAcks = 0
	return nil
}

func (s *shipper) instrument(reg *obs.Registry) {
	s.cShipped = reg.Counter("ship_shipped_total")
	s.cRetries = reg.Counter("ship_retries_total")
	s.cReconnect = reg.Counter("ship_reconnects_total")
	s.cDupInj = reg.Counter("ship_dup_injected_total")
	s.cBytes = reg.Counter("ship_bytes_total")
	s.gBacklog = reg.Gauge("ship_backlog")
	s.gInflight = reg.Gauge("ship_inflight")
	s.gWatermark = reg.Gauge("ship_acked_watermark")
}

// markDegraded raises the faults_degraded gauge on the way out of an
// unrecoverable shipping failure, so the progress line flags DEGRADED.
func (s *shipper) markDegraded() {
	s.opt.Injector.MarkDegraded()
}

// policy derives the retry policy for slot id: the wire plan's policy
// when one is configured, the default otherwise, with retries counted
// and traced.
func (s *shipper) policy(id int) faults.Policy {
	p := s.opt.Injector.Policy(id)
	p.OnRetry = func(int, error) {
		s.stats.Retries++
		s.cRetries.Inc()
	}
	return faults.TracedPolicy(p, s.tb, trace.TrackRun, trace.PhaseRun, -1, uint64(id), "ship")
}

// connect dials the merger and completes the hello exchange, adopting
// the granted credit. Wire failures wrap errWire (transient).
func (s *shipper) connect() (int, error) {
	conn, err := s.opt.Dial(s.opt.Network, s.opt.Addr)
	if err != nil {
		return 0, fmt.Errorf("dial merger %s %s: %v: %w", s.opt.Network, s.opt.Addr, err, errWire)
	}
	if err := WriteJSONFrame(conn, FrameHello, Hello{Origin: s.origin, PoP: s.opt.PoP, Pops: s.opt.Pops}); err != nil {
		_ = conn.Close() // the write error is the root cause
		return 0, fmt.Errorf("send hello: %v: %w", err, errWire)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		_ = conn.Close()
		return 0, fmt.Errorf("read hello ack: %v: %w", err, errWire)
	}
	switch typ {
	case FrameHelloAck:
	case FrameErr:
		_ = conn.Close()
		return 0, refusal(payload)
	default:
		_ = conn.Close()
		return 0, fmt.Errorf("ship: hello answered with frame type %d", typ)
	}
	var ack HelloAck
	if err := unmarshalFrame(payload, &ack); err != nil {
		_ = conn.Close()
		return 0, err
	}
	s.conn = conn
	return ack.Credit, nil
}

// sendWithRetry ships one slot under faults.Retry: each attempt
// (re)establishes the connection if needed, draws its deterministic
// wire fault, and writes the frame. Injected drops and truncations
// sever the connection and surface as transient errors, consuming the
// retry budget like real network failures. Returns the merger's credit
// grant from the most recent hello.
func (s *shipper) sendWithRetry(ctx context.Context, it shipItem, requeue func()) (int, error) {
	granted := 0
	err := faults.Retry(ctx, s.policy(it.id), func() error {
		if s.conn == nil {
			g, err := s.connect()
			if err != nil {
				return err
			}
			granted = g
			if s.everConnected {
				s.stats.Reconnects++
				s.cReconnect.Inc()
			}
			s.everConnected = true
			requeue()
		}
		attempt := s.attempts[it.id]
		s.attempts[it.id]++
		return s.sendOnce(it, attempt)
	})
	if err != nil {
		return granted, fmt.Errorf("ship: slot %d: %w", it.id, err)
	}
	return granted, nil
}

// sendOnce performs one send attempt with its injected wire fate.
func (s *shipper) sendOnce(it shipItem, attempt int) error {
	f := s.opt.Injector.ShipFault(it.id, attempt)
	if !f.None() {
		s.tb.Emit(trace.Event{
			Track: trace.TrackRun, Phase: trace.PhaseRun, Win: -1, Seq: uint64(it.id),
			Kind: trace.KFault, Stage: "ship", Value: int64(attempt), Detail: f.Kind.String(),
		})
	}
	frame, typ, err := s.encode(it)
	if err != nil {
		return err
	}
	switch f.Kind {
	case faults.ShipDrop:
		// The shipment vanishes before a byte hits the wire and the
		// connection is severed — the classic lossy-link failure.
		s.closeConn()
		return fmt.Errorf("injected %s on slot %d: %w", f.Kind, it.id, errWire)
	case faults.ShipTruncate:
		// Half a frame lands, then the connection dies; the merger must
		// discard the torn frame without side effects.
		var buf writerBuf
		if err := WriteFrame(&buf, typ, frame); err != nil {
			return err
		}
		_, _ = s.conn.Write(buf.b[:len(buf.b)/2]) // the sever is the point; the torn write may itself fail
		s.closeConn()
		return fmt.Errorf("injected %s on slot %d: %w", f.Kind, it.id, errWire)
	case faults.ShipDelay:
		time.Sleep(f.Delay) // timing-only chaos: the shipment still lands
	}
	if err := WriteFrame(s.conn, typ, frame); err != nil {
		s.closeConn()
		return fmt.Errorf("send slot %d: %v: %w", it.id, err, errWire)
	}
	s.cBytes.Add(int64(len(frame)))
	s.stats.Bytes += int64(len(frame))
	if f.Kind == faults.ShipDup {
		// Deliver the same shipment twice back to back; the merger's
		// dedup must drop exactly one of them.
		s.stats.DupsInjected++
		s.cDupInj.Inc()
		if err := WriteFrame(s.conn, typ, frame); err != nil {
			s.closeConn()
			return fmt.Errorf("send duplicate of slot %d: %v: %w", it.id, err, errWire)
		}
		s.cBytes.Add(int64(len(frame)))
		s.stats.Bytes += int64(len(frame))
	}
	return nil
}

// encode builds the slot's frame payload, reading and verifying the
// segment blob from disk for segment slots.
func (s *shipper) encode(it shipItem) ([]byte, byte, error) {
	if it.tomb != nil {
		p, err := marshal(Tomb{ID: it.tomb.ID, Reason: it.tomb.Reason, SamplesLost: it.tomb.SamplesLost})
		return p, FrameTomb, err
	}
	blob, err := os.ReadFile(filepath.Join(s.opt.Dir, it.meta.File))
	if err != nil {
		return nil, 0, fmt.Errorf("ship: segment %d: %w", it.id, err)
	}
	hash := crc32.ChecksumIEEE(blob)
	if int64(len(blob)) != it.meta.Bytes || hash != it.meta.CRC {
		return nil, 0, fmt.Errorf("ship: segment %d (%s) does not match its manifest entry; refusing to ship rotted data", it.id, it.meta.File)
	}
	p, err := EncodeShipPayload(ShipHeader{SegID: it.id, Hash: hash, Meta: *it.meta}, blob)
	return p, FrameShip, err
}

// drainOne reads one frame and retires the acked slot: the ack log is
// committed durably before the slot leaves the window, so a crash
// after this point never re-ships it. Returns ok=false (with the
// connection closed) on a wire failure the caller should recover from
// by requeueing.
func (s *shipper) drainOne(inflight *[]shipItem) (bool, error) {
	typ, payload, err := ReadFrame(s.conn)
	if err != nil {
		s.closeConn()
		return false, nil
	}
	switch typ {
	case FrameAck:
		var ack Ack
		if err := unmarshalFrame(payload, &ack); err != nil {
			return false, err
		}
		found := false
		for i, it := range *inflight {
			if it.id == ack.SegID {
				*inflight = append((*inflight)[:i], (*inflight)[i+1:]...)
				found = true
				if it.tomb != nil {
					s.stats.Tombs++
				} else {
					s.stats.Segments++
				}
				break
			}
		}
		if !found {
			// The surviving ack of an injected duplicate, or a replayed
			// delivery's second ack — already committed, nothing to do.
			return true, nil
		}
		s.acks.Add(ack.SegID)
		s.pendingAcks++
		if s.opt.AckBatch <= 1 || s.pendingAcks >= s.opt.AckBatch {
			if err := s.flushAcks(); err != nil {
				return false, err
			}
		}
		s.stats.Shipped++
		s.cShipped.Inc()
		s.gWatermark.Set(float64(s.acks.Watermark()))
		s.tb.Emit(trace.Event{
			Track: trace.TrackRun, Phase: trace.PhaseRun, Win: -1, Seq: uint64(ack.SegID),
			Kind: trace.KCommit, Stage: "ship", Value: 1,
		})
		if s.opt.OnAck != nil {
			s.opt.OnAck(ack.SegID, ack.Dup)
		}
		return true, nil
	case FrameErr:
		return false, refusal(payload)
	default:
		return false, fmt.Errorf("ship: expected ack, got frame type %d", typ)
	}
}

// finish runs the done exchange — retried like any shipment, since the
// connection may have died after the last ack.
func (s *shipper) finish(ctx context.Context, total int) error {
	return faults.Retry(ctx, s.policy(-1), func() error {
		if s.conn == nil {
			if _, err := s.connect(); err != nil {
				return err
			}
			if s.everConnected {
				s.stats.Reconnects++
				s.cReconnect.Inc()
			}
			s.everConnected = true
		}
		if err := WriteJSONFrame(s.conn, FrameDone, Done{Shipped: total}); err != nil {
			s.closeConn()
			return fmt.Errorf("send done: %v: %w", err, errWire)
		}
		for {
			typ, payload, err := ReadFrame(s.conn)
			if err != nil {
				s.closeConn()
				return fmt.Errorf("read done ack: %v: %w", err, errWire)
			}
			switch typ {
			case FrameAck:
				// The trailing ack of an injected duplicate, already
				// committed under its first delivery — drain and keep waiting.
				continue
			case FrameDoneAck:
				var da DoneAck
				if err := unmarshalFrame(payload, &da); err != nil {
					return err
				}
				s.stats.MergerAccepted = da.Accepted
				s.stats.MergerDeduped = da.Deduped
				return nil
			case FrameErr:
				return refusal(payload)
			default:
				return fmt.Errorf("ship: done answered with frame type %d", typ)
			}
		}
	})
}

func (s *shipper) closeConn() {
	if s.conn != nil {
		_ = s.conn.Close() // the connection is already being abandoned
		s.conn = nil
	}
}

// loadManifestChecked opens the dataset read-only to reuse Open's
// fail-fast verification, returning the manifest.
func loadManifestChecked(dir string) (*segstore.Manifest, error) {
	r, err := segstore.Open(dir)
	if err != nil {
		return nil, err
	}
	man := r.Manifest()
	if err := r.Close(); err != nil {
		return nil, err
	}
	return man, nil
}

func sortItems(items []shipItem) {
	for i := 1; i < len(items); i++ { // insertion sort: lists are near-sorted (segments then tombstones, each ascending)
		for j := i; j > 0 && items[j].id < items[j-1].id; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

func refusal(payload []byte) error {
	var e ErrMsg
	if err := unmarshalFrame(payload, &e); err != nil {
		return err
	}
	return fmt.Errorf("ship: merger refused: %s", e.Msg)
}

func marshal(v any) ([]byte, error) {
	p, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("ship: marshal payload: %w", err)
	}
	return p, nil
}

func unmarshalFrame(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("ship: decode %T payload: %w", v, err)
	}
	return nil
}

// writerBuf is a minimal in-memory writer for building a frame whose
// truncation we want to inject byte-exactly.
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
