// Package ship moves sealed segments from per-PoP collector processes
// to a central merge tier — the distribution layer the paper's
// methodology presumes (§3.4.1 aggregates per-PoP session summaries
// into mergeable global sketches) and the failure domain that
// dominates a real edge deployment: lossy links to the aggregation
// tier, PoP restarts mid-upload, duplicate shipments.
//
// The design keeps the repo's byte-identity invariant end to end. A
// shipper (cmd/edgepopd) reads its PoP's committed segment dataset and
// sends each segment — blob plus manifest metadata — over a
// length-prefixed, CRC-framed stream; the merger (cmd/edgemerged)
// spools accepted segments into an ordinary segstore dataset under the
// same commit protocol the writer uses locally. Segment blobs are pure
// functions of their sample slices and manifests render sorted by
// segment ID, so the spool directory is byte-identical to the dataset
// a single edgesim process would have written — at any PoP count, in
// any arrival order, under any wire-fault plan.
//
// Robustness is structural, not best-effort:
//
//   - every shipment is retried under faults.Retry with capped
//     exponential backoff, reconnecting on severed connections;
//   - the merger deduplicates idempotently by (origin, segment ID,
//     content hash), so duplicated or replayed shipments never
//     double-count and a conflicting hash is a loud error;
//   - acknowledgements are committed to a durable ack log beside the
//     PoP's manifest (segstore.AckLog), so a killed PoP resumes from
//     the committed-vs-acked watermark with no re-generation;
//   - the merger grants a credit window in its hello, bounding the
//     shipper's unacked backlog — a slow merger degrades shipping
//     latency, never memory.
//
// Deterministic wire faults (drops, truncations, duplicate deliveries,
// delays) come from the faults package's ship surface; they are pure
// functions of (plan, segment, attempt), so chaos tests can assert the
// merger's dedup counter equals the injected duplicate count exactly.
package ship

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/segstore"
)

// Frame types. A frame is [4]magic "ESH1" | [1]type | [4]payload len
// (big endian) | payload | [4]CRC32(payload). Payloads are JSON except
// FrameShip, which prefixes the JSON header with its own length so the
// segment blob rides uncopied behind it.
const (
	FrameHello    byte = 1 // shipper → merger: origin + identity
	FrameHelloAck byte = 2 // merger → shipper: credit grant
	FrameShip     byte = 3 // shipper → merger: one segment (header + blob)
	FrameTomb     byte = 4 // shipper → merger: one tombstoned slot
	FrameAck      byte = 5 // merger → shipper: shipment durably committed
	FrameDone     byte = 6 // shipper → merger: nothing left to ship
	FrameDoneAck  byte = 7 // merger → shipper: totals for this connection
	FrameErr      byte = 8 // merger → shipper: unrecoverable refusal
)

// wireMagic guards against cross-protocol connections; MaxFrame bounds
// a frame's payload so a hostile or corrupt length can never drive an
// unbounded allocation.
const (
	wireMagic = "ESH1"
	MaxFrame  = 1 << 26
)

const frameHeaderLen = 9 // magic + type + payload length

// Hello opens a shipping connection.
type Hello struct {
	// Origin is the shipper's dataset origin; the merger adopts it for
	// the spool (first connection) or refuses a mismatch.
	Origin string `json:"origin"`
	// PoP and Pops identify the shipper within its fleet (index, size).
	PoP  int `json:"pop"`
	Pops int `json:"pops"`
}

// HelloAck grants the shipper its credit window: the maximum number of
// unacknowledged shipments it may keep in flight.
type HelloAck struct {
	Credit int `json:"credit"`
}

// ShipHeader describes one shipped segment; the blob follows it inside
// the FrameShip payload.
type ShipHeader struct {
	SegID int `json:"seg_id"`
	// Hash is the blob's CRC32 (IEEE) — the content component of the
	// merger's (origin, ID, hash) dedup key, checked against both the
	// received bytes and the shipper's manifest metadata.
	Hash uint32               `json:"hash"`
	Meta segstore.SegmentMeta `json:"meta"`
}

// Tomb ships a tombstoned slot so the spool manifest accounts for the
// same losses the PoP's local manifest does.
type Tomb struct {
	ID          int    `json:"id"`
	Reason      string `json:"reason"`
	SamplesLost int    `json:"samples_lost"`
}

// Ack confirms one shipment (segment or tombstone) is durably
// committed in the spool manifest.
type Ack struct {
	SegID int `json:"seg_id"`
	// Dup marks an idempotently-dropped duplicate: the slot was already
	// committed, nothing changed, the shipment is still safe to ack.
	Dup bool `json:"dup,omitempty"`
}

// Done announces the shipper has nothing left to ship.
type Done struct {
	// Shipped is the number of distinct slots this shipper accounts for
	// (committed segments + tombstones), for the merger's logs.
	Shipped int `json:"shipped"`
}

// DoneAck closes the exchange with the connection's totals.
type DoneAck struct {
	Accepted int `json:"accepted"`
	Deduped  int `json:"deduped"`
}

// ErrMsg carries an unrecoverable refusal (origin mismatch, hash
// conflict); the shipper surfaces it and stops.
type ErrMsg struct {
	Msg string `json:"msg"`
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("ship: frame payload %d bytes exceeds MaxFrame %d", len(payload), MaxFrame)
	}
	hdr := make([]byte, frameHeaderLen, frameHeaderLen+len(payload)+4)
	copy(hdr, wireMagic)
	hdr[4] = typ
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	buf := append(hdr, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and validates one frame from r. The payload length
// is validated against MaxFrame before any payload byte is read, and
// the payload buffer grows chunk by chunk as bytes actually arrive —
// a hostile header claiming 64 MiB costs at most one chunk before the
// truncated stream errors out. Returns io.EOF (not ErrUnexpectedEOF)
// only when the stream ends cleanly on a frame boundary.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("ship: read frame header: %w", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("ship: read frame header: %w", noEOF(err))
	}
	if string(hdr[:4]) != wireMagic {
		return 0, nil, fmt.Errorf("ship: bad frame magic %q", hdr[:4])
	}
	typ = hdr[4]
	if typ < FrameHello || typ > FrameErr {
		return 0, nil, fmt.Errorf("ship: unknown frame type %d", typ)
	}
	n := binary.BigEndian.Uint32(hdr[5:9])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("ship: frame payload %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	const chunk = 1 << 16
	payload = make([]byte, 0, min(int(n), chunk))
	for len(payload) < int(n) {
		step := min(int(n)-len(payload), chunk)
		start := len(payload)
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return 0, nil, fmt.Errorf("ship: read frame payload: %w", noEOF(err))
		}
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return 0, nil, fmt.Errorf("ship: read frame checksum: %w", noEOF(err))
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(crc[:]); got != want {
		return 0, nil, fmt.Errorf("ship: frame checksum mismatch: payload %08x, frame says %08x", got, want)
	}
	return typ, payload, nil
}

// noEOF upgrades a bare EOF mid-frame to ErrUnexpectedEOF so callers
// can distinguish a clean close from a torn frame.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WriteJSONFrame marshals v and writes it as one frame of type typ.
func WriteJSONFrame(w io.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("ship: marshal frame %d: %w", typ, err)
	}
	return WriteFrame(w, typ, payload)
}

// EncodeShipPayload builds a FrameShip payload: [4]header length (big
// endian) | header JSON | blob.
func EncodeShipPayload(h ShipHeader, blob []byte) ([]byte, error) {
	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("ship: marshal ship header: %w", err)
	}
	p := make([]byte, 0, 4+len(hdr)+len(blob))
	p = binary.BigEndian.AppendUint32(p, uint32(len(hdr)))
	p = append(p, hdr...)
	return append(p, blob...), nil
}

// DecodeShipPayload splits a FrameShip payload back into its header
// and blob, validating structure and the header's hash against the
// blob bytes — a FrameShip that decodes cleanly is internally
// consistent.
func DecodeShipPayload(p []byte) (ShipHeader, []byte, error) {
	var h ShipHeader
	if len(p) < 4 {
		return h, nil, fmt.Errorf("ship: ship payload %d bytes, want at least 4", len(p))
	}
	hl := binary.BigEndian.Uint32(p[:4])
	if int64(hl) > int64(len(p)-4) {
		return h, nil, fmt.Errorf("ship: ship header claims %d bytes, payload has %d", hl, len(p)-4)
	}
	if err := json.Unmarshal(p[4:4+hl], &h); err != nil {
		return h, nil, fmt.Errorf("ship: decode ship header: %w", err)
	}
	blob := p[4+hl:]
	if got := crc32.ChecksumIEEE(blob); got != h.Hash {
		return h, nil, fmt.Errorf("ship: segment %d blob hash %08x, header says %08x", h.SegID, got, h.Hash)
	}
	if h.Meta.CRC != h.Hash {
		return h, nil, fmt.Errorf("ship: segment %d manifest CRC %08x disagrees with shipped hash %08x", h.SegID, h.Meta.CRC, h.Hash)
	}
	if int64(len(blob)) != h.Meta.Bytes {
		return h, nil, fmt.Errorf("ship: segment %d blob is %d bytes, manifest meta says %d", h.SegID, len(blob), h.Meta.Bytes)
	}
	return h, blob, nil
}
