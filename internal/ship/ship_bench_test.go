package ship

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/segstore"
)

// BenchmarkShipThroughput measures the shipping overhead the
// EXPERIMENTS.md row documents: one PoP's full dataset shipped over
// loopback TCP into a fresh spool, including durable ack-log commits
// on the shipper and per-shipment manifest commits on the merger.
// The ack-per-slot case commits the ack log on every slot (the
// default, finest crash granularity); ack-batch-8 group-commits every
// 8 slots (-ack-batch 8), pricing the granularity/throughput trade.
// b.SetBytes reports wire throughput over the segment payload.
func BenchmarkShipThroughput(b *testing.B) {
	b.Run("ack-per-slot", func(b *testing.B) { benchShip(b, 1) })
	b.Run("ack-batch-8", func(b *testing.B) { benchShip(b, 8) })
}

func benchShip(b *testing.B, ackBatch int) {
	root := b.TempDir()
	pop := filepath.Join(root, "pop")
	genDataset(b, pop, "", 0, 1, 4)
	man, err := loadManifestChecked(pop)
	if err != nil {
		b.Fatal(err)
	}
	var bytes int64
	for _, s := range man.Segments {
		bytes += s.Bytes
	}
	b.SetBytes(bytes)
	b.ResetTimer()

	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Fresh shipping state each round: no acks, empty spool.
		if err := os.Remove(filepath.Join(pop, segstore.AcksName)); err != nil && !os.IsNotExist(err) {
			b.Fatal(err)
		}
		spool := filepath.Join(root, "spool")
		if err := os.RemoveAll(spool); err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		_, addr, wait := startMerger(b, ctx, spool, 1)
		b.StartTimer()

		st, err := Ship(ctx, ShipperOptions{
			Dir: pop, Addr: addr, PoP: 0, Pops: 1, AckBatch: ackBatch,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := wait(); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		if st.Shipped != len(man.Segments)+len(man.Tombstones) {
			b.Fatalf("shipped %d of %d slots", st.Shipped, len(man.Segments)+len(man.Tombstones))
		}
		cancel()
		b.StartTimer()
	}
}
