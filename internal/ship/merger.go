package ship

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/obs"
	"repro/internal/segstore"
	"repro/internal/trace"
)

// MergerOptions configures the central merge tier.
type MergerOptions struct {
	// SpoolDir is the directory the merger spools accepted segments
	// into — an ordinary segstore dataset, committed under the same
	// atomic-manifest protocol a local writer uses, so the finished
	// spool is byte-identical to a single-process run's dataset.
	SpoolDir string
	// Origin pins the expected dataset origin. Empty adopts the first
	// hello's origin; every later hello must match it either way.
	Origin string
	// ExpectPoPs, when positive, makes Serve return once that many
	// distinct PoPs have completed their done exchange.
	ExpectPoPs int
	// Credit is the in-flight window granted to each shipper (default 4)
	// — the bounded-queue backpressure: a slow merger holds at most
	// Credit unprocessed shipments per connection in kernel buffers, and
	// shippers block instead of ballooning.
	Credit int
	// Reg receives merger metrics (may be nil).
	Reg *obs.Registry
	// Rec records merge events (may be nil).
	Rec *trace.Recorder
	// OnCommit observes every successful spool commit (a newly accepted
	// segment or tombstone; dedups excluded) — the studyd wire-mode
	// hook that invalidates cached reports (may be nil). Called with
	// the merger's lock held; keep it cheap.
	OnCommit func()
}

// MergeStats reports a merger's lifetime totals.
type MergeStats struct {
	// Shipments counts accepted (newly committed) segment shipments;
	// Tombstones counts accepted tombstone slots.
	Shipments  int
	Tombstones int
	// Dedup counts duplicate deliveries dropped idempotently — under a
	// duplicate-injection plan with no crashes this equals the injected
	// duplicate count exactly.
	Dedup int
	// HashConflicts counts refused shipments whose content hash
	// disagreed with the slot already committed (always an error).
	HashConflicts int
	// Bytes is the accepted segment payload volume.
	Bytes int64
	// Conns counts connections accepted; PopsDone counts completed done
	// exchanges.
	Conns    int
	PopsDone int
}

// Merger accepts shipping connections and folds every accepted
// shipment into the spool dataset, exactly once per slot.
type Merger struct {
	opt MergerOptions

	mu     sync.Mutex
	origin string
	w      *segstore.Writer
	// hashes remembers each committed slot's content hash so a replayed
	// shipment is verified, not blindly trusted (tombstones hash to 0).
	hashes map[int]uint32
	tombs  map[int]bool
	stats  MergeStats
	done   map[int]bool // PoP indices that completed their done exchange

	tb *trace.Buf

	cShipments *obs.Counter
	cDedup     *obs.Counter
	cTombs     *obs.Counter
	cBytes     *obs.Counter
	gConns     *obs.Gauge
	gPopsDone  *obs.Gauge
}

// NewMerger builds a merger over opt.SpoolDir. An existing spool is
// resumed (its manifest is the dedup state), so a restarted merger
// keeps its exactly-once guarantee.
func NewMerger(opt MergerOptions) (*Merger, error) {
	if opt.Credit <= 0 {
		opt.Credit = 4
	}
	m := &Merger{
		opt:    opt,
		origin: opt.Origin,
		hashes: map[int]uint32{},
		tombs:  map[int]bool{},
		done:   map[int]bool{},
	}
	m.tb = opt.Rec.Buf()
	m.cShipments = opt.Reg.Counter("merge_shipments_total")
	m.cDedup = opt.Reg.Counter("merge_dedup_dropped_total")
	m.cTombs = opt.Reg.Counter("merge_tombstones_total")
	m.cBytes = opt.Reg.Counter("merge_bytes_total")
	m.gConns = opt.Reg.Gauge("merge_conns")
	m.gPopsDone = opt.Reg.Gauge("merge_pops_done")
	if m.origin != "" {
		if err := m.openSpool(m.origin); err != nil {
			return nil, err
		}
	} else if segstore.IsDataset(opt.SpoolDir) {
		// Resuming a spool with no pinned origin: adopt the manifest's.
		man, err := loadManifestChecked(opt.SpoolDir)
		if err != nil {
			return nil, err
		}
		m.origin = man.Origin
		if err := m.openSpool(m.origin); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// openSpool opens (or resumes) the spool writer for origin and seeds
// the dedup state from its manifest. Caller holds no lock (NewMerger)
// or m.mu (first hello).
func (m *Merger) openSpool(origin string) error {
	w, err := segstore.Create(m.opt.SpoolDir, origin)
	if err != nil {
		return err
	}
	for _, s := range w.Manifest().Segments {
		m.hashes[s.ID] = s.CRC
	}
	for _, t := range w.Manifest().Tombstones {
		m.tombs[t.ID] = true
	}
	m.w = w
	return nil
}

// Stats snapshots the merger's totals.
func (m *Merger) Stats() MergeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Origin returns the spool origin ("" until the first hello adopts one).
func (m *Merger) Origin() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.origin
}

// EmitTrace writes the merger's run-level marks — most importantly the
// dedup counter, which edgetrace causes reports next to the coverage
// ledger. Call once, after Serve returns, from the goroutine that owns
// the recorder.
func (m *Merger) EmitTrace() {
	st := m.Stats()
	m.tb.Emit(trace.Event{
		Track: trace.TrackRun, Phase: trace.PhaseRun, Win: -1, Seq: 1 << 20,
		Kind: trace.KMark, Stage: trace.CoverageStage, Value: int64(st.Dedup), Detail: trace.MarkDedup,
	})
}

// Serve accepts shipping connections on l until ctx is cancelled or —
// when ExpectPoPs is set — every expected PoP has finished. Each
// connection is handled on its own goroutine; Serve returns after all
// handlers drain. The listener is closed on return.
func (m *Merger) Serve(ctx context.Context, l net.Listener) error {
	defer func() { _ = l.Close() }() // double-close on the cancel path is harmless

	finished := make(chan struct{})
	var finishOnce sync.Once
	finish := func() { finishOnce.Do(func() { close(finished) }) }
	go func() {
		select {
		case <-ctx.Done():
		case <-finished:
		}
		_ = l.Close() // unblocks Accept; the deferred close is then a no-op
	}()

	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-finished:
				return nil
			default:
				return fmt.Errorf("ship: accept: %w", err)
			}
		}
		m.mu.Lock()
		m.stats.Conns++
		conns := m.stats.Conns - m.stats.PopsDone
		m.mu.Unlock()
		m.gConns.Set(float64(conns))
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.handle(conn, finish)
		}()
	}
}

// handle runs one connection's frame loop. Wire errors (including the
// torn frames a truncation fault leaves) abandon the connection — the
// shipper reconnects and replays; nothing is partially applied because
// commits happen only after a frame fully decodes and verifies.
func (m *Merger) handle(conn net.Conn, finish func()) {
	defer func() { _ = conn.Close() }() // the frame loop already surfaced any real error to the peer

	typ, payload, err := ReadFrame(conn)
	if err != nil || typ != FrameHello {
		return // never completed hello; nothing to undo
	}
	var hello Hello
	if err := unmarshalFrame(payload, &hello); err != nil {
		return
	}
	if err := m.adoptOrigin(hello.Origin); err != nil {
		_ = WriteJSONFrame(conn, FrameErr, ErrMsg{Msg: err.Error()}) // refusal is best-effort; we drop the conn either way
		return
	}
	if err := WriteJSONFrame(conn, FrameHelloAck, HelloAck{Credit: m.opt.Credit}); err != nil {
		return
	}

	accepted, deduped := 0, 0
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return // severed mid-stream; shipper will reconnect
		}
		switch typ {
		case FrameShip:
			hdr, blob, err := DecodeShipPayload(payload)
			if err != nil {
				_ = WriteJSONFrame(conn, FrameErr, ErrMsg{Msg: err.Error()})
				return
			}
			dup, err := m.commitSegment(hdr, blob)
			if err != nil {
				_ = WriteJSONFrame(conn, FrameErr, ErrMsg{Msg: err.Error()})
				return
			}
			if dup {
				deduped++
			} else {
				accepted++
			}
			if err := WriteJSONFrame(conn, FrameAck, Ack{SegID: hdr.SegID, Dup: dup}); err != nil {
				return
			}
		case FrameTomb:
			var t Tomb
			if err := unmarshalFrame(payload, &t); err != nil {
				_ = WriteJSONFrame(conn, FrameErr, ErrMsg{Msg: err.Error()})
				return
			}
			dup, err := m.commitTombstone(t)
			if err != nil {
				_ = WriteJSONFrame(conn, FrameErr, ErrMsg{Msg: err.Error()})
				return
			}
			if dup {
				deduped++
			} else {
				accepted++
			}
			if err := WriteJSONFrame(conn, FrameAck, Ack{SegID: t.ID, Dup: dup}); err != nil {
				return
			}
		case FrameDone:
			var d Done
			if err := unmarshalFrame(payload, &d); err != nil {
				return
			}
			m.mu.Lock()
			if !m.done[hello.PoP] {
				m.done[hello.PoP] = true
				m.stats.PopsDone++
			}
			popsDone := m.stats.PopsDone
			m.mu.Unlock()
			m.gPopsDone.Set(float64(popsDone))
			_ = WriteJSONFrame(conn, FrameDoneAck, DoneAck{Accepted: accepted, Deduped: deduped}) // peer may already be gone
			if m.opt.ExpectPoPs > 0 && popsDone >= m.opt.ExpectPoPs {
				finish()
			}
			return
		default:
			_ = WriteJSONFrame(conn, FrameErr, ErrMsg{Msg: fmt.Sprintf("unexpected frame type %d", typ)})
			return
		}
	}
}

// adoptOrigin pins the spool origin on the first hello and verifies
// every later one — two different invocations' datasets must never
// interleave in one spool.
func (m *Merger) adoptOrigin(origin string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.origin == "" {
		if err := m.openSpool(origin); err != nil {
			return err
		}
		m.origin = origin
		return nil
	}
	if origin != m.origin {
		return fmt.Errorf("origin %q does not match spool origin %q", origin, m.origin)
	}
	if m.w == nil {
		return errors.New("spool not open") // unreachable: origin set implies spool open
	}
	return nil
}

// commitSegment folds one shipped segment into the spool, exactly
// once. The dedup key is (origin, segment ID, content hash): origin is
// connection-wide (adoptOrigin), the ID indexes the dedup state, and
// the hash distinguishes a harmless replay (same bytes — drop, ack as
// dup) from a conflict (different bytes for the same slot — refuse
// loudly; something is deeply wrong upstream).
func (m *Merger) commitSegment(hdr ShipHeader, blob []byte) (dup bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w == nil {
		return false, errors.New("spool not open")
	}
	if m.tombs[hdr.SegID] {
		return false, fmt.Errorf("slot %d already committed as a tombstone; refusing segment data for it", hdr.SegID)
	}
	if prev, ok := m.hashes[hdr.SegID]; ok {
		if prev != hdr.Hash {
			m.stats.HashConflicts++
			return false, fmt.Errorf("segment %d hash conflict: spool has %08x, shipment has %08x", hdr.SegID, prev, hdr.Hash)
		}
		m.stats.Dedup++
		m.cDedup.Inc()
		m.tb.Emit(trace.Event{
			Track: trace.TrackRun, Phase: trace.PhaseRun, Win: -1, Seq: uint64(hdr.SegID),
			Kind: trace.KMark, Stage: "ship", Value: 1, Detail: trace.MarkDedup,
		})
		return true, nil
	}
	meta := hdr.Meta
	if err := m.w.Add(hdr.SegID, blob, meta); err != nil {
		return false, err
	}
	if err := m.w.Commit(); err != nil {
		return false, err
	}
	m.hashes[hdr.SegID] = hdr.Hash
	m.stats.Shipments++
	m.stats.Bytes += int64(len(blob))
	m.cShipments.Inc()
	m.cBytes.Add(int64(len(blob)))
	m.tb.Emit(trace.Event{
		Track: trace.TrackRun, Phase: trace.PhaseRun, Win: -1, Seq: uint64(hdr.SegID),
		Kind: trace.KCommit, Stage: "ship", Value: int64(meta.Samples),
	})
	if m.opt.OnCommit != nil {
		m.opt.OnCommit()
	}
	return false, nil
}

// commitTombstone folds one shipped tombstone into the spool manifest,
// exactly once.
func (m *Merger) commitTombstone(t Tomb) (dup bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w == nil {
		return false, errors.New("spool not open")
	}
	if _, ok := m.hashes[t.ID]; ok {
		return false, fmt.Errorf("slot %d already committed as a segment; refusing tombstone for it", t.ID)
	}
	if m.tombs[t.ID] {
		m.stats.Dedup++
		m.cDedup.Inc()
		return true, nil
	}
	m.w.Tombstone(t.ID, t.Reason, t.SamplesLost)
	if err := m.w.Commit(); err != nil {
		return false, err
	}
	m.tombs[t.ID] = true
	m.stats.Tombstones++
	m.cTombs.Inc()
	m.tb.Emit(trace.Event{
		Track: trace.TrackRun, Phase: trace.PhaseRun, Win: -1, Seq: uint64(t.ID),
		Kind: trace.KCommit, Stage: "ship", Value: int64(-t.SamplesLost),
	})
	if m.opt.OnCommit != nil {
		m.opt.OnCommit()
	}
	return false, nil
}

// ListenAndServe is the binary-facing wrapper: listen on network/addr
// and Serve.
func (m *Merger) ListenAndServe(ctx context.Context, network, addr string) error {
	l, err := net.Listen(network, addr)
	if err != nil {
		return fmt.Errorf("ship: listen %s %s: %w", network, addr, err)
	}
	return m.Serve(ctx, l)
}
