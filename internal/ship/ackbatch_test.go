package ship

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/segstore"
)

// TestAckBatchGroupCommit pins the -ack-batch contract: with AckBatch
// N the durable ack log commits only on batch boundaries (so the disk
// watermark lags the in-memory acks by up to N-1 slots), a crash
// mid-batch loses only the uncommitted tail — which re-ships and
// dedups, it never re-acks — and resume skips exactly the committed
// watermark. The spool still ends byte-identical to the golden run.
func TestAckBatchGroupCommit(t *testing.T) {
	const batch = 4
	root := t.TempDir()
	golden := filepath.Join(root, "golden")
	genDataset(t, golden, "", 0, 1, 2)
	pop := filepath.Join(root, "pop")
	origin := genDataset(t, pop, "", 0, 1, 2)
	spool := filepath.Join(root, "spool")

	durable := func() int {
		t.Helper()
		acks, err := segstore.LoadAcks(pop, origin)
		if err != nil {
			t.Fatalf("LoadAcks: %v", err)
		}
		return acks.Len()
	}

	// Phase 1: ship with group-committed acks; crash mid-batch. OnAck
	// runs on the shipper's single drain loop, so the durable-lag
	// checks observe a quiesced log.
	ctx1, cancel1 := context.WithCancel(context.Background())
	mctx, mcancel := context.WithCancel(context.Background())
	_, addr, wait := startMerger(t, mctx, spool, 1)
	acked := 0
	st1, err := Ship(ctx1, ShipperOptions{
		Dir: pop, Addr: addr, PoP: 0, Pops: 1, AckBatch: batch,
		OnAck: func(int, bool) {
			acked++
			switch acked {
			case batch - 1:
				// Mid-batch: acks are in memory but none are durable yet.
				if n := durable(); n != 0 {
					t.Errorf("durable acks before the first batch boundary: %d, want 0", n)
				}
			case batch:
				// Boundary: the whole batch committed at once.
				if n := durable(); n != batch {
					t.Errorf("durable acks at the batch boundary: %d, want %d", n, batch)
				}
			case batch + 1:
				cancel1() // crash with one uncommitted ack in the batch
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ship: %v, want context.Canceled", err)
	}
	mcancel()
	if err := wait(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("merger shutdown: %v", err)
	}

	// The crashed log holds whole batches only: commits happen at batch
	// boundaries, never mid-batch, so the uncommitted tail vanished.
	n1 := durable()
	if n1%batch != 0 {
		t.Fatalf("crashed ack log holds %d acks — not a whole number of %d-slot batches", n1, batch)
	}
	if n1 < batch || n1 > st1.Shipped {
		t.Fatalf("crashed ack log holds %d acks, want between %d and shipped=%d", n1, batch, st1.Shipped)
	}

	// Phase 2: restart both sides. Resume must skip exactly the durable
	// watermark (never re-ack, never re-ship a committed slot) and
	// re-ship the lost tail, which the merger deduplicates.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	m2, addr2, wait2 := startMerger(t, ctx2, spool, 1)
	st2, err := Ship(ctx2, ShipperOptions{
		Dir: pop, Addr: addr2, PoP: 0, Pops: 1, AckBatch: batch,
	})
	if err != nil {
		t.Fatalf("resumed ship: %v", err)
	}
	if st2.AlreadyAcked != n1 {
		t.Fatalf("resume skipped %d slots, want exactly the %d durable acks", st2.AlreadyAcked, n1)
	}
	if err := wait2(); err != nil {
		t.Fatalf("merger: %v", err)
	}
	if st := m2.Stats(); st.HashConflicts != 0 {
		t.Fatalf("resume produced %d hash conflicts", st.HashConflicts)
	}
	// The final flush covers a partial trailing batch: every slot ends
	// durable even when the total is not a multiple of the batch size.
	if total := n1 + st2.Shipped; durable() != total {
		t.Fatalf("final ack log holds %d acks, want %d", durable(), total)
	}
	dirsEqual(t, golden, spool)
}
