package ship

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"

	"repro/internal/segstore"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("{}"),
		[]byte(`{"origin":"edgesim seed=1"}`),
		bytes.Repeat([]byte{0xAB}, 1<<17), // spans multiple read chunks
	}
	var buf bytes.Buffer
	for i, p := range payloads {
		typ := FrameHello + byte(i)%FrameErr
		if err := WriteFrame(&buf, typ, p); err != nil {
			t.Fatalf("WriteFrame(%d): %v", i, err)
		}
	}
	for i, p := range payloads {
		want := FrameHello + byte(i)%FrameErr
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%d): %v", i, err)
		}
		if typ != want {
			t.Fatalf("frame %d: type %d, want %d", i, typ, want)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("exhausted stream: err = %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsTornAndCorrupt(t *testing.T) {
	var whole bytes.Buffer
	if err := WriteFrame(&whole, FrameAck, []byte(`{"seg_id":7}`)); err != nil {
		t.Fatal(err)
	}
	frame := whole.Bytes()

	t.Run("torn mid-frame", func(t *testing.T) {
		for cut := 1; cut < len(frame); cut++ {
			_, _, err := ReadFrame(bytes.NewReader(frame[:cut]))
			if err == nil {
				t.Fatalf("cut at %d: no error", cut)
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut at %d: bare io.EOF mid-frame; want ErrUnexpectedEOF", cut)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		bad[0] ^= 0xFF
		if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("err = %v, want magic error", err)
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		bad[4] = FrameErr + 1
		if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "frame type") {
			t.Fatalf("err = %v, want frame type error", err)
		}
	})
	t.Run("hostile length", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		binary.BigEndian.PutUint32(bad[5:9], MaxFrame+1)
		if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "MaxFrame") {
			t.Fatalf("err = %v, want MaxFrame error", err)
		}
	})
	t.Run("checksum mismatch", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		bad[len(bad)-1] ^= 0xFF
		if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("err = %v, want checksum error", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		bad[frameHeaderLen] ^= 0x01
		if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("err = %v, want checksum error", err)
		}
	})
}

func TestShipPayloadRoundTrip(t *testing.T) {
	blob := []byte("pretend segment blob bytes")
	h := ShipHeader{
		SegID: 42,
		Hash:  crc32.ChecksumIEEE(blob),
		Meta: segstore.SegmentMeta{
			ID: 42, File: "seg-00042.edgeseg", Bytes: int64(len(blob)),
			CRC: crc32.ChecksumIEEE(blob), Samples: 9,
		},
	}
	p, err := EncodeShipPayload(h, blob)
	if err != nil {
		t.Fatal(err)
	}
	got, gotBlob, err := DecodeShipPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.SegID != h.SegID || got.Hash != h.Hash || got.Meta.File != h.Meta.File {
		t.Fatalf("header round-trip mismatch: %+v", got)
	}
	if !bytes.Equal(gotBlob, blob) {
		t.Fatal("blob round-trip mismatch")
	}

	t.Run("blob corruption detected", func(t *testing.T) {
		bad := append([]byte{}, p...)
		bad[len(bad)-1] ^= 0x01
		if _, _, err := DecodeShipPayload(bad); err == nil || !strings.Contains(err.Error(), "hash") {
			t.Fatalf("err = %v, want hash error", err)
		}
	})
	t.Run("meta disagreement detected", func(t *testing.T) {
		h2 := h
		h2.Meta.Bytes++
		bad, err := EncodeShipPayload(h2, blob)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeShipPayload(bad); err == nil || !strings.Contains(err.Error(), "meta says") {
			t.Fatalf("err = %v, want meta size error", err)
		}
	})
	t.Run("truncated header length", func(t *testing.T) {
		if _, _, err := DecodeShipPayload(p[:3]); err == nil {
			t.Fatal("want error on 3-byte payload")
		}
	})
	t.Run("header length past end", func(t *testing.T) {
		bad := append([]byte{}, p...)
		binary.BigEndian.PutUint32(bad[:4], uint32(len(bad)))
		if _, _, err := DecodeShipPayload(bad); err == nil || !strings.Contains(err.Error(), "claims") {
			t.Fatalf("err = %v, want header length error", err)
		}
	})
}

// FuzzShipFrameDecode asserts the wire decode path never panics and
// never over-allocates on hostile bytes: whatever arrives, ReadFrame
// either yields a validated frame or a clean error, and a FrameShip
// payload that decodes is internally consistent.
func FuzzShipFrameDecode(f *testing.F) {
	blob := bytes.Repeat([]byte("edge"), 64)
	h := ShipHeader{SegID: 3, Hash: crc32.ChecksumIEEE(blob),
		Meta: segstore.SegmentMeta{ID: 3, File: "seg-00003.edgeseg", Bytes: int64(len(blob)), CRC: crc32.ChecksumIEEE(blob), Samples: 4}}
	shipPayload, err := EncodeShipPayload(h, blob)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	_ = WriteFrame(&valid, FrameShip, shipPayload)
	_ = WriteJSONFrame(&valid, FrameHello, Hello{Origin: "edgesim seed=1", Pops: 2})
	_ = WriteJSONFrame(&valid, FrameAck, Ack{SegID: 3})

	f.Add(valid.Bytes())                 // well-formed stream
	f.Add(valid.Bytes()[:valid.Len()/2]) // torn mid-frame
	f.Add([]byte("ESH1"))                // bare magic
	f.Add([]byte{})                      // empty
	flipped := append([]byte{}, valid.Bytes()...)
	flipped[7] ^= 0x40 // corrupt the length field
	f.Add(flipped)
	hostile := []byte("ESH1\x03\xff\xff\xff\xff")
	f.Add(hostile) // claims a 4 GiB payload

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 64; i++ { // bound the walk; each frame consumes ≥ header bytes
			typ, payload, err := ReadFrame(r)
			if err != nil {
				return // any error is fine; panics are not
			}
			if len(payload) > MaxFrame {
				t.Fatalf("ReadFrame returned %d-byte payload past MaxFrame", len(payload))
			}
			if typ == FrameShip {
				if hdr, b, err := DecodeShipPayload(payload); err == nil {
					if crc32.ChecksumIEEE(b) != hdr.Hash {
						t.Fatal("DecodeShipPayload accepted a blob that disagrees with its hash")
					}
				}
			}
		}
	})
}
