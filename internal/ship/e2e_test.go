package ship

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/seggen"
	"repro/internal/segstore"
	"repro/internal/study"
	"repro/internal/world"
)

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// testCfg is the fleet-wide world every e2e test generates from: small
// enough to ship in milliseconds, large enough that every PoP owns
// several groups and chaos plans have segments to chew on.
var testCfg = world.Config{Seed: 7, Groups: 10, Days: 2, SessionsPerGroupWindow: 3}

// testOrigin is the canonical origin edgesim would stamp for testCfg
// under genPlan — the string the whole fleet (and the golden dataset)
// must agree on.
func testOrigin(genPlan *faults.Plan) string {
	return fmt.Sprintf("edgesim seed=%d groups=%d days=%d spw=%g plan=%q",
		testCfg.Seed, testCfg.Groups, testCfg.Days, testCfg.SessionsPerGroupWindow, genPlan.Spec())
}

// genDataset runs the shared segment pipeline into dir for one PoP's
// share of the world (pops <= 1 generates everything — the golden).
func genDataset(t testing.TB, dir, genSpec string, pop, pops, workers int) string {
	t.Helper()
	plan, err := faults.ParsePlan(genSpec)
	if err != nil {
		t.Fatalf("gen plan: %v", err)
	}
	w := world.New(testCfg)
	inj := faults.NewInjector(plan, testCfg.Seed)
	if inj != nil {
		w.PoPDown = inj.Outage
	}
	origin := testOrigin(inj.Plan())
	_, err = seggen.Run(context.Background(), seggen.Options{
		World: w, Dir: dir, Origin: origin, Workers: workers,
		Injector: inj, Groups: seggen.OwnedGroups(w, pop, pops),
	})
	if err != nil {
		t.Fatalf("generate %s: %v", dir, err)
	}
	return origin
}

// startMerger listens on a loopback port and serves until ctx is
// cancelled or expect PoPs finish; wait returns Serve's error.
func startMerger(t testing.TB, ctx context.Context, spool string, expect int) (*Merger, string, func() error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	m, err := NewMerger(MergerOptions{SpoolDir: spool, ExpectPoPs: expect})
	if err != nil {
		t.Fatalf("NewMerger: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- m.Serve(ctx, l) }()
	return m, l.Addr().String(), func() error { return <-errc }
}

// dirsEqual asserts got holds byte-identical copies of every file in
// want and nothing else — the repo's merged-equals-single-process
// invariant, checked at the strongest level (the dataset bytes the
// report is a pure function of). The shipper-side ack log is excluded:
// it is shipping state, not dataset content.
func dirsEqual(t *testing.T, want, got string) {
	t.Helper()
	names := func(dir string) []string {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		var out []string
		for _, e := range ents {
			if e.Name() == segstore.AcksName {
				continue
			}
			out = append(out, e.Name())
		}
		return out
	}
	wn, gn := names(want), names(got)
	if fmt.Sprint(wn) != fmt.Sprint(gn) {
		t.Fatalf("file sets differ:\n  want %v\n  got  %v", wn, gn)
	}
	for _, n := range wn {
		wb, err := os.ReadFile(filepath.Join(want, n))
		if err != nil {
			t.Fatal(err)
		}
		gb, err := os.ReadFile(filepath.Join(got, n))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("%s differs: %d vs %d bytes", n, len(wb), len(gb))
		}
	}
}

// renderReport folds a dataset into the paper report, with the
// wall-clock footer stripped (the only non-deterministic line).
func renderReport(t *testing.T, dir string) string {
	t.Helper()
	res, err := study.FromSegments(context.Background(), dir, study.Options{})
	if err != nil {
		t.Fatalf("FromSegments(%s): %v", dir, err)
	}
	var buf bytes.Buffer
	res.WriteReport(&buf)
	var kept []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "Generated and analysed") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// shipPop runs one PoP's shipping phase against the merger at addr.
func shipPop(ctx context.Context, dir, addr, shipSpec string, pop, pops int, onAck func(int, bool)) (ShipStats, error) {
	plan, err := faults.ParsePlan(shipSpec)
	if err != nil {
		return ShipStats{}, err
	}
	return Ship(ctx, ShipperOptions{
		Dir: dir, Addr: addr, PoP: pop, Pops: pops,
		Injector: faults.NewInjector(plan, testCfg.Seed), OnAck: onAck,
	})
}

// TestFleetMergeByteIdentical is the tentpole invariant with a clean
// wire: three PoPs generate disjoint shares of the world, ship
// concurrently, and the merger's spool — and the paper report rendered
// from it — must be byte-identical to a single-process run.
func TestFleetMergeByteIdentical(t *testing.T) {
	root := t.TempDir()
	golden := filepath.Join(root, "golden")
	genDataset(t, golden, "", 0, 1, 2)

	const pops = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, addr, wait := startMerger(t, ctx, filepath.Join(root, "spool"), pops)

	var wg sync.WaitGroup
	errs := make([]error, pops)
	for p := 0; p < pops; p++ {
		dir := filepath.Join(root, fmt.Sprintf("pop%d", p))
		genDataset(t, dir, "", p, pops, 2)
		wg.Add(1)
		go func(p int, dir string) {
			defer wg.Done()
			_, errs[p] = shipPop(ctx, dir, addr, "", p, pops, nil)
		}(p, dir)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("pop %d ship: %v", p, err)
		}
	}
	if err := wait(); err != nil {
		t.Fatalf("merger: %v", err)
	}

	st := m.Stats()
	if st.Dedup != 0 || st.HashConflicts != 0 {
		t.Fatalf("clean wire produced dedup=%d conflicts=%d", st.Dedup, st.HashConflicts)
	}
	if st.PopsDone != pops {
		t.Fatalf("PopsDone = %d, want %d", st.PopsDone, pops)
	}
	dirsEqual(t, golden, filepath.Join(root, "spool"))
	if g, s := renderReport(t, golden), renderReport(t, filepath.Join(root, "spool")); g != s {
		t.Error("merged report differs from single-process report")
	}
}

// TestChaosShipping is the chaos acceptance gate: duplicate-delivery
// and drop-then-retry wire plans, at worker counts 1, 2 and 4, must
// leave the spool byte-identical to the golden dataset — and under the
// duplicate plan the merger's dedup counter must equal the injected
// duplicate count exactly.
func TestChaosShipping(t *testing.T) {
	root := t.TempDir()
	golden := filepath.Join(root, "golden")
	genDataset(t, golden, "", 0, 1, 2)

	plans := []struct {
		name       string
		spec       string
		exactDedup bool
	}{
		{"dup-delivery", "seed=3;ship-dup=0.6;retries=6;retry-base=20us", true},
		{"drop-then-retry", "seed=5;ship-drop=0.3;ship-trunc=0.2;retries=12;retry-base=20us", false},
	}
	for _, plan := range plans {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", plan.name, workers), func(t *testing.T) {
				dir := filepath.Join(root, fmt.Sprintf("%s-w%d", plan.name, workers))
				const pops = 2
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				m, addr, wait := startMerger(t, ctx, filepath.Join(dir, "spool"), pops)

				var wg sync.WaitGroup
				stats := make([]ShipStats, pops)
				errs := make([]error, pops)
				for p := 0; p < pops; p++ {
					popDir := filepath.Join(dir, fmt.Sprintf("pop%d", p))
					genDataset(t, popDir, "", p, pops, workers)
					wg.Add(1)
					go func(p int, popDir string) {
						defer wg.Done()
						stats[p], errs[p] = shipPop(ctx, popDir, addr, plan.spec, p, pops, nil)
					}(p, popDir)
				}
				wg.Wait()
				for p, err := range errs {
					if err != nil {
						t.Fatalf("pop %d ship: %v", p, err)
					}
				}
				if err := wait(); err != nil {
					t.Fatalf("merger: %v", err)
				}

				dirsEqual(t, golden, filepath.Join(dir, "spool"))
				injected, retries := 0, 0
				for _, st := range stats {
					injected += st.DupsInjected
					retries += st.Retries
				}
				st := m.Stats()
				if st.HashConflicts != 0 {
					t.Fatalf("chaos produced %d hash conflicts", st.HashConflicts)
				}
				if plan.exactDedup {
					if injected == 0 {
						t.Fatal("duplicate plan injected nothing; the test is vacuous")
					}
					if st.Dedup != injected {
						t.Fatalf("merger dedup = %d, want exactly the %d injected duplicates", st.Dedup, injected)
					}
				} else {
					if retries == 0 {
						t.Fatal("drop plan spent no retries; the test is vacuous")
					}
				}
			})
		}
	}
}

// TestKillAndRestartMidShipment is the crash-safety gate: a PoP
// cancelled mid-shipment — and a merger restarted over its spool —
// must resume from the durable ack watermark, re-generate nothing,
// re-ship only unacked slots, and still converge to the golden bytes.
func TestKillAndRestartMidShipment(t *testing.T) {
	root := t.TempDir()
	golden := filepath.Join(root, "golden")
	genDataset(t, golden, "", 0, 1, 2)
	pop := filepath.Join(root, "pop")
	origin := genDataset(t, pop, "", 0, 1, 2)
	spool := filepath.Join(root, "spool")

	// Phase 1: ship until the third durable ack, then "crash" the PoP.
	ctx1, cancel1 := context.WithCancel(context.Background())
	mctx, mcancel := context.WithCancel(context.Background())
	_, addr, wait := startMerger(t, mctx, spool, 1)
	acked := 0
	st1, err := shipPop(ctx1, pop, addr, "", 0, 1, func(int, bool) {
		acked++
		if acked == 3 {
			cancel1()
		}
	})
	if err == nil {
		t.Fatal("cancelled ship returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ship: %v, want context.Canceled", err)
	}
	if st1.Shipped < 3 {
		t.Fatalf("shipped %d slots before crash, want >= 3", st1.Shipped)
	}
	acks, err := segstore.LoadAcks(pop, origin)
	if err != nil {
		t.Fatal(err)
	}
	if acks.Len() < 3 {
		t.Fatalf("ack log holds %d acks after crash, want >= 3 (acks must be durable before slots retire)", acks.Len())
	}
	// Crash the merger too; its spool manifest is the only state it keeps.
	mcancel()
	if err := wait(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("merger shutdown: %v", err)
	}

	// Phase 2: both sides restart cold. The merger reseeds its dedup
	// table from the spool manifest; the shipper skips acked slots and
	// re-ships anything whose ack was lost in flight.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	m2, addr2, wait2 := startMerger(t, ctx2, spool, 1)
	st2, err := shipPop(ctx2, pop, addr2, "", 0, 1, nil)
	if err != nil {
		t.Fatalf("resumed ship: %v", err)
	}
	if st2.AlreadyAcked < 3 {
		t.Fatalf("resume skipped %d slots, want >= 3", st2.AlreadyAcked)
	}
	if err := wait2(); err != nil {
		t.Fatalf("merger: %v", err)
	}
	if st := m2.Stats(); st.HashConflicts != 0 {
		t.Fatalf("resume produced %d hash conflicts", st.HashConflicts)
	}
	dirsEqual(t, golden, spool)
}

// TestTombstonesShipAndMerge: generation-time losses (quarantined
// groups under a corruption plan) must ship as tombstones and land in
// the spool manifest exactly as a single degraded run would record
// them.
func TestTombstonesShipAndMerge(t *testing.T) {
	const genPlan = "seed=11;corrupt=0.3;retries=3;retry-base=10us"
	root := t.TempDir()
	golden := filepath.Join(root, "golden")
	genDataset(t, golden, genPlan, 0, 1, 2)
	man, err := loadManifestChecked(golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Tombstones) == 0 {
		t.Fatal("corruption plan produced no tombstones; pick a harsher plan")
	}

	const pops = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, addr, wait := startMerger(t, ctx, filepath.Join(root, "spool"), pops)
	for p := 0; p < pops; p++ {
		dir := filepath.Join(root, fmt.Sprintf("pop%d", p))
		genDataset(t, dir, genPlan, p, pops, 2)
		if _, err := shipPop(ctx, dir, addr, "", p, pops, nil); err != nil {
			t.Fatalf("pop %d ship: %v", p, err)
		}
	}
	if err := wait(); err != nil {
		t.Fatalf("merger: %v", err)
	}
	if st := m.Stats(); st.Tombstones != len(man.Tombstones) {
		t.Fatalf("merged %d tombstones, golden has %d", st.Tombstones, len(man.Tombstones))
	}
	dirsEqual(t, golden, filepath.Join(root, "spool"))
}

// TestMergerRefusesOriginMismatch: two different invocations' datasets
// must never interleave in one spool.
func TestMergerRefusesOriginMismatch(t *testing.T) {
	root := t.TempDir()
	a := filepath.Join(root, "a")
	genDataset(t, a, "", 0, 1, 1)
	b := filepath.Join(root, "b")
	genDataset(t, b, "seed=2;truncate=0.2", 0, 1, 1) // different plan ⇒ different origin

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, addr, _ := startMerger(t, ctx, filepath.Join(root, "spool"), 2)
	if _, err := shipPop(ctx, a, addr, "", 0, 2, nil); err != nil {
		t.Fatalf("first origin: %v", err)
	}
	_, err := shipPop(ctx, b, addr, "", 1, 2, nil)
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("mismatched origin shipped: err = %v, want refusal", err)
	}
}

// TestHashConflictRefused: a shipment claiming a committed slot with
// different bytes is an upstream bug, never silently resolved.
func TestHashConflictRefused(t *testing.T) {
	m, err := NewMerger(MergerOptions{SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.adoptOrigin("test origin"); err != nil {
		t.Fatal(err)
	}
	blob := []byte("segment bytes v1")
	hdr := ShipHeader{SegID: 5, Hash: crcOf(blob), Meta: segstore.SegmentMeta{Bytes: int64(len(blob)), CRC: crcOf(blob), Samples: 1}}
	if dup, err := m.commitSegment(hdr, blob); err != nil || dup {
		t.Fatalf("first commit: dup=%v err=%v", dup, err)
	}
	if dup, err := m.commitSegment(hdr, blob); err != nil || !dup {
		t.Fatalf("replay: dup=%v err=%v, want idempotent dedup", dup, err)
	}
	other := []byte("segment bytes v2")
	conflict := ShipHeader{SegID: 5, Hash: crcOf(other), Meta: segstore.SegmentMeta{Bytes: int64(len(other)), CRC: crcOf(other), Samples: 1}}
	if _, err := m.commitSegment(conflict, other); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("conflicting bytes committed: err = %v", err)
	}
	if st := m.Stats(); st.Dedup != 1 || st.HashConflicts != 1 {
		t.Fatalf("stats = %+v, want Dedup=1 HashConflicts=1", st)
	}
	// A tombstone for a slot holding data (and vice versa) is the same
	// class of upstream bug.
	if _, err := m.commitTombstone(Tomb{ID: 5, Reason: "late loss"}); err == nil {
		t.Fatal("tombstone over committed segment accepted")
	}
}
