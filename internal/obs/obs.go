// Package obs is the observability substrate for the whole edge stack:
// an atomic counter/gauge registry, fixed-bucket histograms, t-digest
// summaries (reusing internal/tdigest, the same sketch the aggregation
// pipeline trusts for §3.4.1 quantiles), and lightweight pipeline spans
// with parent-stage attribution. Two exposition paths are provided
// (package expo.go): Prometheus text format over HTTP and an
// expvar-compatible JSON snapshot.
//
// The paper's system is itself a monitoring system — §3.4 detects
// degradation from streaming aggregates in near real time — so the
// reproduction's own pipelines (world generation, collection,
// aggregation, analysis, the live load balancer) report their health
// through this package.
//
// Instrumentation is designed to be near-zero-cost when unregistered:
// every handle type (*Counter, *Gauge, *Histogram, *Digest, *SpanTimer)
// is nil-safe, and a nil *Registry hands out nil handles, so code holds
// pre-resolved handles and pays a single nil check per event. With a
// live registry the fast path is one atomic add.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tdigest"
)

// Registry owns a process's metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is valid everywhere and hands out nil
// (no-op) handles.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	histograms   map[string]*Histogram
	digests      map[string]*Digest
	spans        map[string]*SpanTimer
	counterFuncs map[string]func() int64
	gaugeFuncs   map[string]func() float64
	start        time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]*Gauge),
		histograms:   make(map[string]*Histogram),
		digests:      make(map[string]*Digest),
		spans:        make(map[string]*SpanTimer),
		counterFuncs: make(map[string]func() int64),
		gaugeFuncs:   make(map[string]func() float64),
		start:        time.Now(),
	}
}

// CounterFunc registers a callback counter evaluated at exposition
// time — zero hot-path cost for values derivable from other atomics.
// The callback must be safe to call concurrently. No-op on a nil
// registry.
func (r *Registry) CounterFunc(name string, f func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[name] = f
}

// GaugeFunc registers a callback gauge evaluated at exposition time.
// The callback must be safe to call concurrently. No-op on a nil
// registry.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// Uptime is the time since the registry was created.
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// L builds a metric name with labels: L("x_total", "stage", "emit")
// → `x_total{stage="emit"}`. Pairs are emitted in the order given.
// Label values are escaped per the Prometheus text format (backslash,
// double quote, newline), so a value like a group key or file path can
// never break the exposition line syntax.
func L(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// labelEscaper implements the Prometheus text-format escaping rules for
// label values: backslash first, then the two characters that would end
// the value or the line.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabelValue escapes v for use inside a quoted label value. The
// fast path (no escapable characters) returns v unchanged.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	return labelEscaper.Replace(v)
}

// splitName separates `base{labels}` into base and the label body
// (without braces); labels is "" when the name has none.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// --- Counter -------------------------------------------------------------

// Counter is a monotonically increasing atomic counter. Methods on a
// nil *Counter are no-ops.
type Counter struct {
	v atomic.Int64
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (atomic; safe for concurrent use).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- Gauge ---------------------------------------------------------------

// Gauge is an atomic float64 that can go up and down. Methods on a nil
// *Gauge are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Gauge returns (creating if needed) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add folds a delta in with a CAS loop.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// --- Histogram -----------------------------------------------------------

// DefBuckets are latency-shaped default histogram bounds in seconds,
// 500µs to 10s.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Methods on a nil *Histogram are no-ops.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat

	exMu sync.Mutex
	ex   Exemplar
}

// Exemplar links a histogram's most extreme observation to a trace
// event, the histogram↔trace join OpenMetrics exemplars provide: the
// exposition shows which concrete traced event produced the tail value.
type Exemplar struct {
	Value   float64
	TraceID uint64
}

// Histogram returns (creating if needed) the named histogram. A nil or
// empty bounds slice selects DefBuckets; bounds are fixed at first
// creation. Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// Observe folds one value in.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration folds one duration in, in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar folds one value in and, when it is the largest seen
// so far and carries a non-zero trace event ID, records it as the
// histogram's exemplar. Call it with the ID returned by a trace
// Buf.Emit; a zero ID (tracing disabled) degrades to plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == 0 {
		return
	}
	h.exMu.Lock()
	if h.ex.TraceID == 0 || v > h.ex.Value {
		h.ex = Exemplar{Value: v, TraceID: traceID}
	}
	h.exMu.Unlock()
}

// Exemplar returns the recorded exemplar; ok is false when none was
// recorded (or on a nil histogram).
func (h *Histogram) Exemplar() (ex Exemplar, ok bool) {
	if h == nil {
		return Exemplar{}, false
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.ex, h.ex.TraceID != 0
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// cumulative returns the bucket upper bounds and cumulative counts,
// ending with the +Inf bucket (== Count()).
func (h *Histogram) cumulative() (bounds []float64, counts []int64) {
	counts = make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		counts[i] = acc
	}
	return h.bounds, counts
}

type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// --- Digest --------------------------------------------------------------

// Digest is a t-digest-backed summary for quantiles over unbounded
// domains (the histogram's fixed buckets don't fit every metric).
// Observations take a mutex — keep it off per-packet hot paths; it is
// fine per session or per request. Methods on a nil *Digest are no-ops.
type Digest struct {
	mu sync.Mutex
	td *tdigest.TDigest
	n  int64
}

// Digest returns (creating if needed) the named digest summary; nil on
// a nil registry.
func (r *Registry) Digest(name string) *Digest {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.digests[name]
	if !ok {
		d = &Digest{td: tdigest.New(tdigest.DefaultCompression)}
		r.digests[name] = d
	}
	return d
}

// Observe folds one value in.
func (d *Digest) Observe(v float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.td.Add(v)
	d.n++
	d.mu.Unlock()
}

// Quantile returns the q-quantile (NaN when empty or nil).
func (d *Digest) Quantile(q float64) float64 {
	if d == nil {
		return math.NaN()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.td.Quantile(q)
}

// Count returns the number of observations (0 on a nil digest).
func (d *Digest) Count() int64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// --- Spans ---------------------------------------------------------------

// SpanTimer accumulates wall time for one named pipeline stage. Parent
// attribution ties sub-stages to the stage that contains them (e.g.
// world generation's "emit" inside "world"), so exposition can show a
// stage breakdown. Methods on a nil *SpanTimer are no-ops.
type SpanTimer struct {
	name   string
	parent string
	count  atomic.Int64
	active atomic.Int64
	nanos  atomic.Int64
}

// Span returns (creating if needed) the named span timer; parent names
// the containing stage ("" for a root stage). Nil on a nil registry.
func (r *Registry) Span(name, parent string) *SpanTimer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.spans[name]
	if !ok {
		t = &SpanTimer{name: name, parent: parent}
		r.spans[name] = t
	}
	return t
}

// Start opens a span; call End on the returned Span. On a nil timer the
// returned span is inert and Start does not even read the clock.
func (t *SpanTimer) Start() Span {
	if t == nil {
		return Span{}
	}
	t.active.Add(1)
	return Span{t: t, start: time.Now()}
}

// Count returns completed spans (0 on a nil timer).
func (t *SpanTimer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns accumulated wall time (0 on a nil timer).
func (t *SpanTimer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.nanos.Load())
}

// Active returns the number of open spans (0 on a nil timer).
func (t *SpanTimer) Active() int64 {
	if t == nil {
		return 0
	}
	return t.active.Load()
}

// Span is one open timing; End is idempotent-safe on the zero value.
type Span struct {
	t     *SpanTimer
	start time.Time
}

// End closes the span and returns its duration (0 on an inert span).
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.start)
	s.t.nanos.Add(int64(d))
	s.t.count.Add(1)
	s.t.active.Add(-1)
	return d
}

// Time runs f inside a span on t.
func (t *SpanTimer) Time(f func()) {
	sp := t.Start()
	f()
	sp.End()
}
