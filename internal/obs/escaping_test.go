package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// The exposition must declare the Prometheus text content type, and
// label values containing quotes, backslashes, or newlines must be
// escaped so a hostile value cannot break line syntax or smuggle in a
// fake series.
func TestExpositionContentTypeAndEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(L("paths_total", "path", `C:\data\"edge"`)).Add(1)
	reg.Counter(L("keys_total", "key", "line1\nline2")).Add(2)

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", got)
	}
	body := rec.Body.String()
	if want := `paths_total{path="C:\\data\\\"edge\""} 1`; !strings.Contains(body, want) {
		t.Errorf("exposition missing escaped series %q:\n%s", want, body)
	}
	if want := `keys_total{key="line1\nline2"} 2`; !strings.Contains(body, want) {
		t.Errorf("exposition missing newline-escaped series %q:\n%s", want, body)
	}
	// No raw newline may survive inside any series line: every line must
	// be "# ..." or "name value".
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if line == "" {
			t.Errorf("exposition contains an empty line (broken by a raw newline):\n%s", body)
		}
	}
	if strings.Contains(body, "line2\"") && !strings.Contains(body, `line1\nline2`) {
		t.Errorf("label value leaked a raw newline:\n%s", body)
	}
}

// An exemplar recorded via ObserveExemplar must render on the +Inf
// bucket line, OpenMetrics style, carrying the trace event ID.
func TestHistogramExemplarRendering(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("feed_batch", []float64{10, 100})
	h.ObserveExemplar(7, 0x00ab)   // small value
	h.ObserveExemplar(250, 0xbeef) // the max: this one is kept
	h.ObserveExemplar(50, 0x1234)
	h.Observe(500) // no trace ID: never displaces the exemplar

	ex, ok := h.Exemplar()
	if !ok || ex.TraceID != 0xbeef || ex.Value != 250 {
		t.Fatalf("Exemplar() = %+v, %v; want value 250 id beef", ex, ok)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `feed_batch_bucket{le="+Inf"} 4 # {trace_id="000000000000beef"} 250`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing exemplar line %q:\n%s", want, b.String())
	}
	// Zero trace ID (tracing disabled) must degrade to plain Observe.
	h2 := reg.Histogram("quiet", []float64{1})
	h2.ObserveExemplar(5, 0)
	if _, ok := h2.Exemplar(); ok {
		t.Error("zero trace ID recorded an exemplar")
	}
}

// Concurrent get-or-create of the same metric names must be safe and
// must hand every goroutine the same underlying instance (run under
// -race in `make check`).
func TestConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	var wg sync.WaitGroup
	counters := make([]*Counter, goroutines)
	gauges := make([]*Gauge, goroutines)
	hists := make([]*Histogram, goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.Counter(L("shared_total", "k", "v")).Inc()
				reg.Gauge("shared_gauge").Add(1)
				reg.Histogram("shared_hist", []float64{1, 2}).Observe(1.5)
				reg.Digest("shared_digest").Observe(float64(j))
				reg.Span(fmt.Sprintf("span_%d", j%4), "root").Time(func() {})
			}
			counters[i] = reg.Counter(L("shared_total", "k", "v"))
			gauges[i] = reg.Gauge("shared_gauge")
			hists[i] = reg.Histogram("shared_hist", nil)
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if counters[i] != counters[0] || gauges[i] != gauges[0] || hists[i] != hists[0] {
			t.Fatalf("goroutine %d received a different metric instance", i)
		}
	}
	if got := reg.Counter(L("shared_total", "k", "v")).Value(); got != goroutines*100 {
		t.Errorf("shared counter = %d, want %d", got, goroutines*100)
	}
	if got := reg.Histogram("shared_hist", nil).Count(); got != goroutines*100 {
		t.Errorf("shared histogram count = %d, want %d", got, goroutines*100)
	}
}

// With a read goal declared, the progress line projects an ETA from the
// tick's read rate; without one (or once done) it stays silent.
func TestProgressETA(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("study_read_goal_bytes").Set(1000)
	c := reg.Counter("study_read_bytes_total")
	c.Add(250)
	prev := map[string]int64{"study_read_bytes_total": 0}
	line := reg.progressLine(prev, time.Second, false)
	// 250 B/s against 750 remaining → 3s.
	if !strings.Contains(line, "eta=3s") {
		t.Errorf("progress line missing eta: %q", line)
	}
	if final := reg.progressLine(prev, time.Second, true); strings.Contains(final, "eta=") {
		t.Errorf("final line must not carry an eta: %q", final)
	}
	c.Add(750) // goal reached
	if done := reg.progressLine(map[string]int64{"study_read_bytes_total": 250}, time.Second, false); strings.Contains(done, "eta=") {
		t.Errorf("completed read still projects an eta: %q", done)
	}
}
