package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentUpdates hammers every handle type from many goroutines;
// run under -race this doubles as the data-race check.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	g := reg.Gauge("g")
	h := reg.Histogram("h_seconds", []float64{0.001, 0.01, 0.1, 1})
	d := reg.Digest("d_ms")
	sp := reg.Span("stage", "parent")

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%5) / 100)
				d.Observe(float64(i % 100))
				s := sp.Start()
				s.End()
			}
		}(w)
	}
	wg.Wait()

	const want = workers * perWorker
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %v, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := d.Count(); got != want {
		t.Errorf("digest count = %d, want %d", got, want)
	}
	if got := sp.Count(); got != want {
		t.Errorf("span count = %d, want %d", got, want)
	}
	if got := sp.Active(); got != 0 {
		t.Errorf("span active = %d, want 0", got)
	}
	// Exposition must be safe concurrently with updates too.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}

// TestNilRegistryFastPath asserts the unregistered hot path allocates
// nothing: a nil registry hands out nil handles, and every operation on
// them is a no-op.
func TestNilRegistryFastPath(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total")
	g := reg.Gauge("x")
	h := reg.Histogram("x_seconds", nil)
	d := reg.Digest("x_ms")
	sp := reg.Span("x_stage", "")
	if c != nil || g != nil || h != nil || d != nil || sp != nil {
		t.Fatal("nil registry must hand out nil handles")
	}

	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		h.Observe(0.5)
		h.ObserveDuration(time.Millisecond)
		d.Observe(1)
		s := sp.Start()
		s.End()
	})
	if allocs != 0 {
		t.Errorf("nil-handle operations allocated %.1f times per run, want 0", allocs)
	}

	// Reads on nil handles are well-defined zeros.
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 ||
		d.Count() != 0 || sp.Count() != 0 || sp.Total() != 0 || sp.Active() != 0 {
		t.Error("nil-handle reads must return zero")
	}
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Error("nil digest quantile must be NaN")
	}
	if reg.Uptime() != 0 {
		t.Error("nil registry uptime must be zero")
	}
	if got := reg.Snapshot(); len(got) != 0 {
		t.Errorf("nil registry snapshot = %v, want empty", got)
	}
}

// TestLiveCounterFastPath asserts the instrumented fast path is a bare
// atomic add: no allocations per event.
func TestLiveCounterFastPath(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total")
	h := reg.Histogram("x_seconds", nil)
	g := reg.Gauge("x")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(4)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Errorf("live counter/gauge/histogram path allocated %.1f times per run, want 0", allocs)
	}
}

func TestHandleReuse(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("same")
	b := reg.Counter("same")
	if a != b {
		t.Error("same name must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("handles must share state")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	bounds, counts := h.cumulative()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	// Cumulative: ≤1 → 2 (0.5 and 1), ≤10 → 3, ≤100 → 4, +Inf → 5.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, counts[i], w)
		}
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %v, want 556.5", h.Sum())
	}
}

func TestSpanTiming(t *testing.T) {
	reg := NewRegistry()
	st := reg.Span("work", "root")
	sp := st.Start()
	if st.Active() != 1 {
		t.Error("active should be 1 while span is open")
	}
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d <= 0 || st.Total() < d {
		t.Errorf("span duration %v, timer total %v", d, st.Total())
	}
	if st.Count() != 1 || st.Active() != 0 {
		t.Errorf("count=%d active=%d", st.Count(), st.Active())
	}
}

func TestProgressLine(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("world_sessions_total").Add(1234567)
	reg.Span(L("world_stage_seconds", "stage", "generate"), "world").Time(func() {
		time.Sleep(time.Millisecond)
	})
	line := reg.progressLine(map[string]int64{"world_sessions_total": 234567}, time.Second, false)
	if !strings.Contains(line, "world_sessions=1.23M") {
		t.Errorf("line missing humanized counter: %q", line)
	}
	if !strings.Contains(line, "(+1.00M/s)") {
		t.Errorf("line missing rate: %q", line)
	}
	if !strings.Contains(line, "world_stage_seconds:generate=") {
		t.Errorf("line missing stage timing: %q", line)
	}
	if strings.Contains(line, "DEGRADED") {
		t.Errorf("clean run flagged degraded: %q", line)
	}
	reg.Gauge("faults_degraded").Set(1)
	if line := reg.progressLine(nil, time.Second, false); !strings.Contains(line, "DEGRADED") {
		t.Errorf("degraded run not flagged: %q", line)
	}
}

func TestStartProgressStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total").Inc()
	var mu sync.Mutex
	var out strings.Builder
	w := lockedWriter{mu: &mu, b: &out}
	stop := StartProgress(reg, w, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(out.String(), "progress t=") {
		t.Errorf("no progress output: %q", out.String())
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
