package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// StartProgress launches a goroutine that prints one progress line per
// interval to w: every counter with its rate since the previous tick,
// and every span stage with its accumulated wall time. The returned
// stop function prints a final line and waits for the goroutine to
// exit; it is safe to call once. With a nil registry or non-positive
// interval, StartProgress is a no-op.
func StartProgress(reg *Registry, w io.Writer, interval time.Duration) (stop func()) {
	if reg == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		prev := reg.counterValues()
		last := time.Now()
		for {
			select {
			case <-done:
				fmt.Fprintln(w, reg.progressLine(prev, time.Since(last), true))
				return
			case now := <-tick.C:
				cur := reg.counterValues()
				fmt.Fprintln(w, reg.progressLine(prev, now.Sub(last), false))
				prev, last = cur, now
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// counterValues snapshots every counter's current value.
func (r *Registry) counterValues() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, f := range r.counterFuncs {
		out[name] = f()
	}
	return out
}

// progressLine renders one status line. Counters that are still zero
// are elided; on the final line rates are dropped.
func (r *Registry) progressLine(prev map[string]int64, dt time.Duration, final bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "progress t=%s", r.Uptime().Round(time.Second))
	// A degraded run (data lost under fault injection) is the one state
	// an operator must not miss while watching throughput scroll by.
	r.mu.Lock()
	degraded := r.gauges["faults_degraded"] != nil && r.gauges["faults_degraded"].Value() != 0
	r.mu.Unlock()
	if degraded {
		b.WriteString(" DEGRADED")
	}

	cur := r.counterValues()
	for _, name := range sortedKeys(cur) {
		v := cur[name]
		if v == 0 {
			continue
		}
		short := strings.TrimSuffix(name, "_total")
		fmt.Fprintf(&b, " %s=%s", short, humanCount(float64(v)))
		if !final && dt > 0 {
			if d := v - prev[name]; d > 0 {
				fmt.Fprintf(&b, "(+%s/s)", humanCount(float64(d)/dt.Seconds()))
			}
		}
	}

	// When the run declared a read goal (edgereport -in sets the dataset
	// size), project an ETA from the bytes-read rate this tick.
	if !final && dt > 0 {
		r.mu.Lock()
		var goal float64
		if g := r.gauges["study_read_goal_bytes"]; g != nil {
			goal = g.Value()
		}
		r.mu.Unlock()
		read := cur["study_read_bytes_total"]
		if rate := float64(read-prev["study_read_bytes_total"]) / dt.Seconds(); goal > 0 && rate > 0 && float64(read) < goal {
			eta := time.Duration((goal - float64(read)) / rate * float64(time.Second))
			fmt.Fprintf(&b, " eta=%s", eta.Round(time.Second))
		}
	}

	r.mu.Lock()
	spanNames := sortedKeys(r.spans)
	spans := make([]*SpanTimer, 0, len(spanNames))
	for _, name := range spanNames {
		spans = append(spans, r.spans[name])
	}
	r.mu.Unlock()
	var stages []string
	for i, t := range spans {
		if total := t.Total(); total > 0 || t.Active() > 0 {
			short := strings.TrimSuffix(spanNames[i], "}")
			short = strings.NewReplacer(`{stage="`, ":", `{analysis="`, ":", `"`, "").Replace(short)
			stages = append(stages, fmt.Sprintf("%s=%s", short, total.Round(time.Millisecond)))
		}
	}
	if len(stages) > 0 {
		fmt.Fprintf(&b, " stages[%s]", strings.Join(stages, " "))
	}
	return b.String()
}

// humanCount renders a count with k/M/G suffixes, keeping three
// significant-ish digits.
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
