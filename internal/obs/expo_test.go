package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the full text exposition for a registry
// exercising every metric kind: counters (plain and labelled), gauges,
// histograms, digest summaries, and spans with parent attribution.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("collector_offered_total").Add(5)
	reg.Counter(L("world_stage_done_total", "stage", "emit")).Add(2)
	reg.Gauge("agg_groups").Set(3)
	h := reg.Histogram("lb_request_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	d := reg.Digest("lb_session_minrtt_ms")
	for i := 1; i <= 4; i++ {
		d.Observe(float64(10 * i))
	}
	sp := reg.Span(L("analysis_seconds", "analysis", "degradation"), "analyse")
	sp.nanos.Add(1_500_000_000) // 1.5s, injected for determinism
	sp.count.Add(3)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE agg_groups gauge
agg_groups 3
# TYPE analysis_seconds_active gauge
analysis_seconds_active{analysis="degradation",parent="analyse"} 0
# TYPE analysis_seconds_count counter
analysis_seconds_count{analysis="degradation",parent="analyse"} 3
# TYPE analysis_seconds_total counter
analysis_seconds_total{analysis="degradation",parent="analyse"} 1.5
# TYPE collector_offered_total counter
collector_offered_total 5
# TYPE lb_request_seconds histogram
lb_request_seconds_bucket{le="0.01"} 1
lb_request_seconds_bucket{le="0.1"} 3
lb_request_seconds_bucket{le="1"} 3
lb_request_seconds_bucket{le="+Inf"} 4
lb_request_seconds_sum 5.105
lb_request_seconds_count 4
# TYPE lb_session_minrtt_ms summary
lb_session_minrtt_ms{quantile="0.5"} 25
lb_session_minrtt_ms{quantile="0.9"} 40
lb_session_minrtt_ms{quantile="0.99"} 40
lb_session_minrtt_ms_count 4
# TYPE world_stage_done_total counter
world_stage_done_total{stage="emit"} 2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total").Add(7)
	reg.Gauge("g").Set(2.5)
	reg.Histogram("h", []float64{1}).Observe(0.5)
	reg.Digest("d").Observe(3)
	reg.Span("s", "p").Time(func() {})

	snap := reg.Snapshot()
	if snap["c_total"] != int64(7) {
		t.Errorf("counter snapshot = %v", snap["c_total"])
	}
	if snap["g"] != 2.5 {
		t.Errorf("gauge snapshot = %v", snap["g"])
	}
	if _, ok := snap["uptime_seconds"]; !ok {
		t.Error("snapshot missing uptime_seconds")
	}
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if decoded["c_total"].(float64) != 7 {
		t.Errorf("round-tripped counter = %v", decoded["c_total"])
	}
	span := decoded["s"].(map[string]any)
	if span["parent"] != "p" || span["count"].(float64) != 1 {
		t.Errorf("span snapshot = %v", span)
	}
}

// TestServeMux drives the HTTP surface: /metrics, /debug/vars, the
// pprof index, and the root help page.
func TestServeMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Inc()
	mux := reg.NewServeMux()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("/metrics: code=%d body=%q", rec.Code, rec.Body.String())
	}
	rec := get("/debug/vars")
	if rec.Code != 200 {
		t.Fatalf("/debug/vars: code=%d", rec.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars["hits_total"].(float64) != 1 {
		t.Errorf("/debug/vars hits_total = %v", vars["hits_total"])
	}
	if rec := get("/debug/pprof/"); rec.Code != 200 {
		t.Errorf("/debug/pprof/: code=%d", rec.Code)
	}
	if rec := get("/"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "/metrics") {
		t.Errorf("root help page: code=%d body=%q", rec.Code, rec.Body.String())
	}
	if rec := get("/nope"); rec.Code != 404 {
		t.Errorf("unknown path: code=%d, want 404", rec.Code)
	}
}
