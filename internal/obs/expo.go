package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// series is one exposition sample: a full metric name (base + label
// body) and a rendered value.
type series struct {
	base   string
	labels string
	value  string
}

// family groups the series owned by one TYPE-bearing base name (a
// histogram family owns its _bucket/_sum/_count series).
type family struct {
	base   string
	typ    string // counter | gauge | histogram | summary
	series []series
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "," + b
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// families snapshots the registry into sorted exposition families.
// Metric names are processed in sorted order and series appended in
// insertion order, so output is deterministic and histogram buckets
// stay ascending.
func (r *Registry) families() []family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	fams := map[string]*family{}
	add := func(famKey, typ, seriesBase, labels, value string) {
		f, ok := fams[famKey]
		if !ok {
			f = &family{base: famKey, typ: typ}
			fams[famKey] = f
		}
		f.series = append(f.series, series{base: seriesBase, labels: labels, value: value})
	}

	for _, name := range sortedKeys(r.counters) {
		base, labels := splitName(name)
		add(base, "counter", base, labels, strconv.FormatInt(r.counters[name].Value(), 10))
	}
	for _, name := range sortedKeys(r.counterFuncs) {
		base, labels := splitName(name)
		add(base, "counter", base, labels, strconv.FormatInt(r.counterFuncs[name](), 10))
	}
	for _, name := range sortedKeys(r.gauges) {
		base, labels := splitName(name)
		add(base, "gauge", base, labels, formatFloat(r.gauges[name].Value()))
	}
	for _, name := range sortedKeys(r.gaugeFuncs) {
		base, labels := splitName(name)
		add(base, "gauge", base, labels, formatFloat(r.gaugeFuncs[name]()))
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		base, labels := splitName(name)
		bounds, counts := h.cumulative()
		for i, ub := range bounds {
			add(base, "histogram", base+"_bucket",
				joinLabels(labels, `le="`+formatFloat(ub)+`"`),
				strconv.FormatInt(counts[i], 10))
		}
		inf := strconv.FormatInt(counts[len(counts)-1], 10)
		if ex, ok := h.Exemplar(); ok {
			// OpenMetrics-style exemplar on the +Inf bucket: the trace
			// event ID of the largest observation, linking the histogram's
			// tail back to a concrete line in the flight trace (edgetrace).
			inf += fmt.Sprintf(" # {trace_id=\"%016x\"} %s", ex.TraceID, formatFloat(ex.Value))
		}
		add(base, "histogram", base+"_bucket",
			joinLabels(labels, `le="+Inf"`), inf)
		add(base, "histogram", base+"_sum", labels, formatFloat(h.Sum()))
		add(base, "histogram", base+"_count", labels, strconv.FormatInt(h.Count(), 10))
	}
	for _, name := range sortedKeys(r.digests) {
		d := r.digests[name]
		base, labels := splitName(name)
		if d.Count() > 0 {
			for _, q := range []float64{0.5, 0.9, 0.99} {
				add(base, "summary", base,
					joinLabels(labels, `quantile="`+formatFloat(q)+`"`),
					formatFloat(d.Quantile(q)))
			}
		}
		add(base, "summary", base+"_count", labels, strconv.FormatInt(d.Count(), 10))
	}
	for _, name := range sortedKeys(r.spans) {
		t := r.spans[name]
		base, labels := splitName(name)
		if t.parent != "" {
			labels = joinLabels(labels, `parent="`+t.parent+`"`)
		}
		add(base+"_total", "counter", base+"_total", labels, formatFloat(t.Total().Seconds()))
		add(base+"_count", "counter", base+"_count", labels, strconv.FormatInt(t.Count(), 10))
		add(base+"_active", "gauge", base+"_active", labels, strconv.FormatInt(t.Active(), 10))
	}

	out := make([]family, 0, len(fams))
	for _, f := range fams {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

// WritePrometheus renders the registry in the Prometheus text format.
// Output is deterministic: families and series are sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.families() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.base, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			name := s.base
			if s.labels != "" {
				name += "{" + s.labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", name, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns an expvar-style flat view of the registry: metric
// name → value for counters and gauges, and small objects for
// histograms, digests, and spans.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, f := range r.counterFuncs {
		out[name] = f()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, f := range r.gaugeFuncs {
		out[name] = f()
	}
	for name, h := range r.histograms {
		out[name] = map[string]any{"count": h.Count(), "sum": h.Sum()}
	}
	for name, d := range r.digests {
		m := map[string]any{"count": d.Count()}
		if d.Count() > 0 {
			m["p50"] = d.Quantile(0.5)
			m["p90"] = d.Quantile(0.9)
			m["p99"] = d.Quantile(0.99)
		}
		out[name] = m
	}
	for name, t := range r.spans {
		m := map[string]any{
			"count": t.Count(), "total_seconds": t.Total().Seconds(), "active": t.Active(),
		}
		if t.parent != "" {
			m["parent"] = t.parent
		}
		out[name] = m
	}
	out["uptime_seconds"] = r.Uptime().Seconds()
	return out
}

// WriteJSON renders the Snapshot as indented JSON (the /debug/vars
// payload — expvar-compatible in shape: one flat JSON object).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewServeMux returns the introspection mux: /metrics (Prometheus
// text), /debug/vars (JSON snapshot), and the /debug/pprof endpoints
// for profiling long runs.
func (r *Registry) NewServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		io.WriteString(w, "edge observability: /metrics /debug/vars /debug/pprof/\n")
	})
	return mux
}

// ListenAndServe serves the introspection mux on addr; it blocks, so
// run it in a goroutine. Errors (including a busy port) are returned
// for the caller to log.
func (r *Registry) ListenAndServe(addr string) error {
	if strings.TrimSpace(addr) == "" {
		return nil
	}
	return http.ListenAndServe(addr, r.NewServeMux())
}
