// Package validate reproduces the paper's §3.2.3 validation: single TCP
// transfers are simulated through a configured bottleneck (the paper used
// NS3; we use netsim/tcpsim), the transfer is measured exactly as the
// production instrumentation would measure it, and the goodput estimated
// by the methodology is compared against the known bottleneck rate.
//
// The paper sweeps 15,840 configurations — bottleneck bandwidth 0.5–5
// Mbps, round-trip propagation delay 20–200 ms, initial cwnd 1–50
// packets, and transfer size 1–500 packets — and verifies that for every
// configuration able to test for the bottleneck rate (Gtestable >
// Gbottleneck) the estimate never overestimates the bottleneck and the
// 99th-percentile relative error is small (the paper reports 0.066).
// Delayed ACKs are disabled to match kernel-style byte-counted cwnd
// growth, as the paper does with NS3 (footnote 7).
package validate

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hdratio"
	"repro/internal/netsim"
	"repro/internal/tcpsim"
	"repro/internal/units"
)

// Config is one point in the sweep.
type Config struct {
	Bottleneck units.Rate
	RTT        time.Duration // round-trip propagation delay
	InitCwnd   int           // packets
	SizePkts   int           // transfer size in MSS packets
	MSS        int           // defaults to units.DefaultMSS
}

// Result is the measured outcome for one configuration.
type Result struct {
	Config
	// Wnic is the cwnd when the first byte was written (here, the
	// initial window).
	Wnic int64
	// Btotal and Ttotal are the delayed-ACK-corrected observation
	// (§3.2.5): bytes excluding the final packet, duration to the ACK
	// covering the second-to-last packet.
	Btotal int64
	Ttotal time.Duration
	// MinRTT is the connection's minimum RTT at completion.
	MinRTT time.Duration
	// Gtestable is the maximum rate this transfer could test for.
	Gtestable units.Rate
	// Estimated is the methodology's delivery-rate estimate.
	Estimated units.Rate
	// Testable reports Gtestable > Bottleneck: the transfer could have
	// demonstrated the bottleneck rate.
	Testable bool
	// RelError is (Bottleneck − Estimated) / Bottleneck; negative means
	// the methodology overestimated.
	RelError float64
	// Err is set when the measurement could not be taken (e.g. the
	// transfer is a single packet and the correction leaves no bytes).
	Err error
}

// RunOne simulates one transfer and measures it per the methodology.
func RunOne(cfg Config) Result {
	if cfg.MSS <= 0 {
		cfg.MSS = units.DefaultMSS
	}
	res := Result{Config: cfg}
	total := int64(cfg.SizePkts) * int64(cfg.MSS)
	lastPkt := int64(cfg.MSS)
	if rem := total % int64(cfg.MSS); rem != 0 {
		lastPkt = rem
	}
	res.Btotal = total - lastPkt
	if res.Btotal <= 0 {
		res.Err = fmt.Errorf("transfer of %d packets leaves no measurable bytes after last-packet correction", cfg.SizePkts)
		return res
	}

	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	fwd := &netsim.Link{Sim: &sim, Rate: cfg.Bottleneck, Delay: cfg.RTT / 2}
	rev := &netsim.Link{Sim: &sim, Delay: cfg.RTT / 2}
	conn := tcpsim.New(&sim, tcpsim.Config{
		MSS:             cfg.MSS,
		InitCwndPackets: cfg.InitCwnd,
		DelayedAcks:     false,
	}, fwd, rev)

	res.Wnic = conn.Cwnd()
	var tFirst, tAck netsim.Time = -1, -1
	// Register the NIC-write watch before writing, as the production
	// instrumentation observes the write before the stack transmits.
	conn.WatchFirstSend(conn.NextWriteOffset(), func(t netsim.Time) { tFirst = t })
	_, end := conn.Write(int(total))
	conn.WatchAcked(end-lastPkt, func(t netsim.Time) { tAck = t })
	if !sim.Run() {
		res.Err = fmt.Errorf("simulation exceeded step bound")
		return res
	}
	if tFirst < 0 || tAck < 0 {
		res.Err = fmt.Errorf("instrumentation watches never fired")
		return res
	}
	res.Ttotal = tAck - tFirst
	res.MinRTT = conn.MinRTT()

	txn := hdratio.Transaction{Bytes: res.Btotal, Duration: res.Ttotal, Wnic: res.Wnic}
	res.Gtestable = hdratio.Gtestable(res.Btotal, res.Wnic, res.MinRTT)
	res.Estimated = hdratio.EstimateDeliveryRate(txn, res.MinRTT)
	res.Testable = res.Gtestable > cfg.Bottleneck
	res.RelError = float64(cfg.Bottleneck-res.Estimated) / float64(cfg.Bottleneck)
	return res
}

// SweepParams defines the grid. DefaultSweep reproduces the paper's
// 15,840 configurations.
type SweepParams struct {
	Bandwidths []units.Rate
	RTTs       []time.Duration
	InitCwnds  []int
	SizesPkts  []int
}

// DefaultSweep returns the paper's grid: 8 bandwidths × 10 RTTs × 9
// initial windows × 22 sizes = 15,840 configurations spanning 0.5–5
// Mbps, 20–200 ms, 1–50 packets, 1–500 packets.
func DefaultSweep() SweepParams {
	var p SweepParams
	for i := 0; i < 8; i++ {
		p.Bandwidths = append(p.Bandwidths, units.Rate((0.5+4.5*float64(i)/7)*1e6))
	}
	for i := 0; i < 10; i++ {
		p.RTTs = append(p.RTTs, time.Duration(20+20*i)*time.Millisecond)
	}
	p.InitCwnds = []int{1, 2, 4, 6, 10, 16, 25, 36, 50}
	// 22 log-spaced sizes from 1 to 500 packets.
	for i := 0; i < 22; i++ {
		s := int(math.Round(math.Pow(500, float64(i)/21)))
		if s < 1 {
			s = 1
		}
		p.SizesPkts = append(p.SizesPkts, s)
	}
	return p
}

// Count returns the number of configurations in the grid.
func (p SweepParams) Count() int {
	return len(p.Bandwidths) * len(p.RTTs) * len(p.InitCwnds) * len(p.SizesPkts)
}

// Configs enumerates the grid, subsampled by stride (1 = everything).
func (p SweepParams) Configs(stride int) []Config {
	if stride < 1 {
		stride = 1
	}
	var out []Config
	i := 0
	for _, bw := range p.Bandwidths {
		for _, rtt := range p.RTTs {
			for _, iw := range p.InitCwnds {
				for _, sz := range p.SizesPkts {
					if i%stride == 0 {
						out = append(out, Config{Bottleneck: bw, RTT: rtt, InitCwnd: iw, SizePkts: sz})
					}
					i++
				}
			}
		}
	}
	return out
}

// Sweep runs every configuration and returns the results in grid order.
// stride > 1 subsamples the grid (for quick tests).
func Sweep(p SweepParams, stride int) []Result {
	return run(p.Configs(stride), 1)
}

// SweepParallel is Sweep sharded across workers; configurations are
// independent simulations, so results are identical to Sweep.
func SweepParallel(p SweepParams, stride, workers int) []Result {
	return run(p.Configs(stride), workers)
}

func run(cfgs []Config, workers int) []Result {
	if workers < 1 {
		workers = 1
	}
	out := make([]Result, len(cfgs))
	if workers == 1 {
		for i, cfg := range cfgs {
			out[i] = RunOne(cfg)
		}
		return out
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(cfgs) {
					return
				}
				out[i] = RunOne(cfgs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Summary aggregates a sweep per the paper's report.
type Summary struct {
	Total         int
	Measured      int // configurations with a valid measurement
	Testable      int // Gtestable > bottleneck
	Overestimates int
	// RelErrors holds (Gbottleneck − G)/Gbottleneck for testable configs.
	RelErrors []float64
}

// P99RelError returns the 99th percentile of the relative error
// distribution over testable configurations.
func (s Summary) P99RelError() float64 {
	if len(s.RelErrors) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), s.RelErrors...)
	sort.Float64s(sorted)
	idx := int(0.99 * float64(len(sorted)-1))
	return sorted[idx]
}

// MedianRelError returns the median relative error over testable configs.
func (s Summary) MedianRelError() float64 {
	if len(s.RelErrors) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), s.RelErrors...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

// Summarise computes the validation summary over results.
func Summarise(results []Result) Summary {
	s := Summary{Total: len(results)}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		s.Measured++
		if !r.Testable {
			continue
		}
		s.Testable++
		s.RelErrors = append(s.RelErrors, r.RelError)
		if r.RelError < 0 {
			s.Overestimates++
		}
	}
	return s
}
