package validate

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

func TestRunOneBasic(t *testing.T) {
	res := RunOne(Config{
		Bottleneck: 2 * units.Mbps,
		RTT:        50 * time.Millisecond,
		InitCwnd:   10,
		SizePkts:   100,
	})
	if res.Err != nil {
		t.Fatalf("RunOne error: %v", res.Err)
	}
	if res.Btotal != 99*1500 {
		t.Errorf("Btotal = %d, want %d", res.Btotal, 99*1500)
	}
	if res.MinRTT < 50*time.Millisecond || res.MinRTT > 55*time.Millisecond {
		t.Errorf("MinRTT = %v, want ~50ms", res.MinRTT)
	}
	if !res.Testable {
		t.Errorf("100-packet transfer should test for 2 Mbps: Gtestable=%v", res.Gtestable)
	}
	if res.Estimated > res.Bottleneck {
		t.Errorf("overestimate: estimated %v > bottleneck %v", res.Estimated, res.Bottleneck)
	}
	if res.RelError > 0.25 {
		t.Errorf("estimate too low: rel error %v (estimated %v of %v)", res.RelError, res.Estimated, res.Bottleneck)
	}
}

func TestRunOneSinglePacketUnmeasurable(t *testing.T) {
	res := RunOne(Config{
		Bottleneck: 2 * units.Mbps,
		RTT:        50 * time.Millisecond,
		InitCwnd:   10,
		SizePkts:   1,
	})
	if res.Err == nil {
		t.Error("single-packet transfer should be unmeasurable after correction")
	}
}

func TestRunOneSmallTransferNotTestable(t *testing.T) {
	// 3 packets minus the last = 2 packets over ≥1 RTT: far below 5 Mbps.
	res := RunOne(Config{
		Bottleneck: 5 * units.Mbps,
		RTT:        100 * time.Millisecond,
		InitCwnd:   10,
		SizePkts:   3,
	})
	if res.Err != nil {
		t.Fatalf("unexpected error: %v", res.Err)
	}
	if res.Testable {
		t.Errorf("tiny transfer should not test for 5 Mbps: Gtestable=%v", res.Gtestable)
	}
}

func TestDefaultSweepShape(t *testing.T) {
	p := DefaultSweep()
	if got := p.Count(); got != 15840 {
		t.Errorf("sweep size = %d, want 15840", got)
	}
	if p.Bandwidths[0] != 0.5*1e6 || p.Bandwidths[len(p.Bandwidths)-1] != 5*1e6 {
		t.Errorf("bandwidth range wrong: %v…%v", p.Bandwidths[0], p.Bandwidths[len(p.Bandwidths)-1])
	}
	if p.RTTs[0] != 20*time.Millisecond || p.RTTs[len(p.RTTs)-1] != 200*time.Millisecond {
		t.Errorf("RTT range wrong: %v…%v", p.RTTs[0], p.RTTs[len(p.RTTs)-1])
	}
	if p.SizesPkts[0] != 1 || p.SizesPkts[len(p.SizesPkts)-1] != 500 {
		t.Errorf("size range wrong: %v…%v", p.SizesPkts[0], p.SizesPkts[len(p.SizesPkts)-1])
	}
	if p.InitCwnds[0] != 1 || p.InitCwnds[len(p.InitCwnds)-1] != 50 {
		t.Errorf("initcwnd range wrong: %v", p.InitCwnds)
	}
}

// TestValidationNeverOverestimates is the paper's core validation claim
// (§3.2.3) on a subsample of the grid: for configurations that can test
// for the bottleneck rate, the estimated goodput never exceeds it, and
// the error distribution is small.
func TestValidationNeverOverestimates(t *testing.T) {
	stride := 23 // ~690 configs; full grid runs in the bench / cmd tool
	if testing.Short() {
		stride = 97
	}
	results := Sweep(DefaultSweep(), stride)
	s := Summarise(results)
	if s.Testable < 50 {
		t.Fatalf("too few testable configs to validate: %d", s.Testable)
	}
	if s.Overestimates != 0 {
		for _, r := range results {
			if r.Err == nil && r.Testable && r.RelError < 0 {
				t.Errorf("overestimate at bw=%v rtt=%v iw=%d size=%d: est %v (rel %v)",
					r.Bottleneck, r.RTT, r.InitCwnd, r.SizePkts, r.Estimated, r.RelError)
			}
		}
		t.Fatalf("%d/%d testable configs overestimated the bottleneck", s.Overestimates, s.Testable)
	}
	p99 := s.P99RelError()
	if math.IsNaN(p99) || p99 > 0.30 {
		t.Errorf("p99 relative error %v too large (paper: 0.066)", p99)
	}
	t.Logf("testable=%d/%d median-rel-err=%.4f p99-rel-err=%.4f",
		s.Testable, s.Measured, s.MedianRelError(), p99)
}

// TestSweepParallelMatchesSerial: sharding the sweep across workers must
// not change any result (simulations are independent and deterministic).
func TestSweepParallelMatchesSerial(t *testing.T) {
	p := DefaultSweep()
	serial := Sweep(p, 311)
	parallel := SweepParallel(p, 311, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Estimated != parallel[i].Estimated || serial[i].Ttotal != parallel[i].Ttotal {
			t.Fatalf("result %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestSummariseSkipsErrors(t *testing.T) {
	results := []Result{
		{Err: nil, Testable: true, RelError: 0.05},
		{Err: errFake, Testable: true, RelError: -1},
		{Err: nil, Testable: false},
	}
	s := Summarise(results)
	if s.Total != 3 || s.Measured != 2 || s.Testable != 1 || s.Overestimates != 0 {
		t.Errorf("summary = %+v", s)
	}
}

var errFake = fmt.Errorf("fake")
