package httpsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/hdratio"
	"repro/internal/netsim"
	"repro/internal/sample"
	"repro/internal/tcpsim"
	"repro/internal/units"
)

// topo builds the standard session topology.
func topo(sim *netsim.Sim, rate units.Rate, oneWay time.Duration) (fwd, rev *netsim.Link) {
	fwd = &netsim.Link{Sim: sim, Rate: rate, Delay: oneWay}
	rev = &netsim.Link{Sim: sim, Delay: oneWay}
	return
}

func TestSingleTransaction(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := topo(&sim, 10*units.Mbps, 25*time.Millisecond)
	s := NewSession(&sim, tcpsim.Config{}, fwd, rev, sample.HTTP1, 25*time.Millisecond)
	s.Schedule([]Request{{At: 10 * time.Millisecond, ResponseBytes: 30 * 1500}})
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	raws := s.RawTxns()
	if len(raws) != 1 {
		t.Fatalf("raw txns = %d", len(raws))
	}
	r := raws[0]
	// The request arrives at 35ms; write happens then.
	if r.FirstByteWrite != 35*time.Millisecond {
		t.Errorf("FirstByteWrite = %v, want 35ms", r.FirstByteWrite)
	}
	if r.Wnic != 10*1500 {
		t.Errorf("Wnic = %d, want initial window", r.Wnic)
	}
	if r.SecondToLastAck <= r.FirstByteNIC {
		t.Errorf("ack ordering: STL=%v NIC=%v", r.SecondToLastAck, r.FirstByteNIC)
	}
	if r.LastAck < r.SecondToLastAck {
		t.Error("LastAck before second-to-last ack")
	}
	obs := s.Observations()
	if obs[0].Bytes != 29*1500 {
		t.Errorf("corrected bytes = %d", obs[0].Bytes)
	}
}

// TestFigure4EndToEnd reproduces the worked example through the whole
// stack: packets → TCP → HTTP → capture → correction → methodology.
func TestFigure4EndToEnd(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	// Fast bottleneck so conditions are near-ideal; 30ms each way = 60ms RTT.
	fwd, rev := topo(&sim, 1000*units.Mbps, 30*time.Millisecond)
	s := NewSession(&sim, tcpsim.Config{InitCwndPackets: 10}, fwd, rev, sample.HTTP1, 30*time.Millisecond)
	// Requests spaced so each starts after the previous completed.
	s.Schedule([]Request{
		{At: 0, ResponseBytes: 2 * 1500},
		{At: 300 * time.Millisecond, ResponseBytes: 24 * 1500},
		{At: 800 * time.Millisecond, ResponseBytes: 14 * 1500},
	})
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	out := s.Evaluate(hdratio.DefaultConfig())
	if len(out.Transactions) != 3 {
		t.Fatalf("transactions = %d", len(out.Transactions))
	}
	if out.Transactions[0].Testable {
		t.Error("txn1 (2 packets) must not test for HD")
	}
	if !out.Transactions[1].Testable || !out.Transactions[1].AchievedTarget {
		t.Errorf("txn2 should test and achieve: %+v", out.Transactions[1])
	}
	if !out.Transactions[2].Testable || !out.Transactions[2].AchievedTarget {
		t.Errorf("txn3 should test and achieve: %+v", out.Transactions[2])
	}
	if hd := out.HDratio(); hd != 1 {
		t.Errorf("HDratio = %v, want 1", hd)
	}
}

func TestSlowBottleneckFailsHD(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := topo(&sim, 1*units.Mbps, 30*time.Millisecond) // 1 Mbps: not HD-capable
	s := NewSession(&sim, tcpsim.Config{}, fwd, rev, sample.HTTP1, 30*time.Millisecond)
	s.Schedule([]Request{
		{At: 0, ResponseBytes: 100 * 1500},
		{At: 4 * time.Second, ResponseBytes: 100 * 1500},
	})
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	out := s.Evaluate(hdratio.DefaultConfig())
	if out.Tested == 0 {
		t.Fatal("large transfers should test for HD")
	}
	if out.AchievedCount != 0 {
		t.Errorf("1 Mbps bottleneck achieved HD %d/%d times", out.AchievedCount, out.Tested)
	}
}

func TestFastPathAchievesHD(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := topo(&sim, 20*units.Mbps, 20*time.Millisecond)
	s := NewSession(&sim, tcpsim.Config{}, fwd, rev, sample.HTTP1, 20*time.Millisecond)
	s.Schedule([]Request{
		{At: 0, ResponseBytes: 100 * 1500},
		{At: 2 * time.Second, ResponseBytes: 100 * 1500},
	})
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	out := s.Evaluate(hdratio.DefaultConfig())
	if out.Tested == 0 || out.AchievedCount != out.Tested {
		t.Errorf("20 Mbps path: achieved %d/%d", out.AchievedCount, out.Tested)
	}
	if hd := out.HDratio(); math.IsNaN(hd) || hd != 1 {
		t.Errorf("HDratio = %v", hd)
	}
}

func TestH2MultiplexingCoalesces(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := topo(&sim, 2*units.Mbps, 40*time.Millisecond)
	s := NewSession(&sim, tcpsim.Config{}, fwd, rev, sample.HTTP2, 40*time.Millisecond)
	// Second response requested while the first is still transferring
	// over the slow bottleneck: HTTP/2 interleaves them.
	s.Schedule([]Request{
		{At: 0, ResponseBytes: 40 * 1500},
		{At: 50 * time.Millisecond, ResponseBytes: 40 * 1500},
	})
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	raws := s.RawTxns()
	if len(raws) != 2 {
		t.Fatalf("raw txns = %d", len(raws))
	}
	if !raws[1].Multiplexed {
		t.Error("overlapping h2 response not flagged multiplexed")
	}
	obs := s.Observations()
	if len(obs) != 1 {
		t.Fatalf("multiplexed responses not coalesced: %d observations", len(obs))
	}
	// The merged transaction carries both bodies minus the final packet.
	if obs[0].Bytes != 80*1500-1500 {
		t.Errorf("merged bytes = %d", obs[0].Bytes)
	}
}

func TestH1OverlapIneligible(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := topo(&sim, 2*units.Mbps, 40*time.Millisecond)
	s := NewSession(&sim, tcpsim.Config{}, fwd, rev, sample.HTTP1, 40*time.Millisecond)
	// H1 has no multiplexing flag; the second response starts while the
	// first's bytes are in flight but is written after the first fully
	// reached the NIC (gap in writes) — it must be ineligible.
	s.Schedule([]Request{
		{At: 0, ResponseBytes: 10 * 1500},
		{At: 110 * time.Millisecond, ResponseBytes: 10 * 1500},
	})
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	obs := s.Observations()
	if len(obs) != 2 {
		// If the writes were back to back they coalesce instead; both
		// behaviours are §3.2.5-correct. Only assert no double counting.
		t.Skipf("responses coalesced (%d observation)", len(obs))
	}
	if !obs[1].Ineligible {
		t.Error("overlapping h1 response should be ineligible")
	}
}

func TestZeroByteRequestIgnored(t *testing.T) {
	var sim netsim.Sim
	fwd, rev := topo(&sim, 10*units.Mbps, 10*time.Millisecond)
	s := NewSession(&sim, tcpsim.Config{}, fwd, rev, sample.HTTP1, 10*time.Millisecond)
	s.Schedule([]Request{{At: 0, ResponseBytes: 0}})
	sim.Run()
	if len(s.RawTxns()) != 0 {
		t.Error("zero-byte response captured")
	}
}

func TestMinRTTReflectsPath(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := topo(&sim, 10*units.Mbps, 45*time.Millisecond)
	s := NewSession(&sim, tcpsim.Config{}, fwd, rev, sample.HTTP1, 45*time.Millisecond)
	s.Schedule([]Request{{At: 0, ResponseBytes: 20 * 1500}})
	sim.Run()
	if rtt := s.Conn().MinRTT(); rtt < 90*time.Millisecond || rtt > 95*time.Millisecond {
		t.Errorf("MinRTT = %v, want ~90ms", rtt)
	}
}

func BenchmarkSessionEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sim netsim.Sim
		sim.MaxSteps = 1 << 22
		fwd, rev := topo(&sim, 5*units.Mbps, 25*time.Millisecond)
		s := NewSession(&sim, tcpsim.Config{}, fwd, rev, sample.HTTP2, 25*time.Millisecond)
		s.Schedule([]Request{
			{At: 0, ResponseBytes: 3000},
			{At: 200 * time.Millisecond, ResponseBytes: 120000},
			{At: 900 * time.Millisecond, ResponseBytes: 45000},
		})
		sim.Run()
		s.Evaluate(hdratio.DefaultConfig())
	}
}
