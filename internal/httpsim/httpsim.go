// Package httpsim models HTTP/1.1 and HTTP/2 sessions on top of the
// packet-level TCP simulator, producing exactly the raw capture events
// the load-balancer instrumentation records (package proxygen): socket
// and NIC write timestamps, the congestion window at NIC write, and the
// acknowledgment times used by the delayed-ACK correction (§3.2.5).
//
// HTTP/1.1 responses are written strictly in order; HTTP/2 responses of
// equal priority multiplex — the server interleaves chunks of every
// in-progress response onto the connection (§3.2.5's "the HTTP/2 send
// window is multiplexed when transactions have equal priority"), which
// is why the capture layer must coalesce interleaved responses before
// computing goodput.
//
// It is the end-to-end packet path of the reproduction: client requests
// arrive at the server, responses traverse a simulated bottleneck, and
// the HDratio methodology is evaluated on the corrected observations —
// mirroring the production pipeline in miniature.
package httpsim

import (
	"time"

	"repro/internal/hdratio"
	"repro/internal/netsim"
	"repro/internal/proxygen"
	"repro/internal/sample"
	"repro/internal/tcpsim"
)

// Request is one HTTP transaction to serve.
type Request struct {
	// At is when the client issues the request (client clock).
	At time.Duration
	// ResponseBytes is the response body size.
	ResponseBytes int64
}

// writeChunk is the granularity at which the server moves response
// bytes into the socket (and at which HTTP/2 streams interleave).
const writeChunk = 8 * 1500

// pending is one response being written.
type pending struct {
	raw       *proxygen.RawTxn
	remaining int64
	started   bool
}

// Session is one HTTP session over a simulated connection.
type Session struct {
	sim   *netsim.Sim
	conn  *tcpsim.Conn
	proto sample.Protocol
	// reqDelay is the client→server request latency (half the
	// propagation round trip; requests are small).
	reqDelay time.Duration

	mss     int64
	raws    []*proxygen.RawTxn
	queue   []*pending
	pumping bool
	rr      int // round-robin cursor over the queue
}

// NewSession wires a session over the given links. reqDelay is the
// one-way client→server latency for requests.
func NewSession(sim *netsim.Sim, cfg tcpsim.Config, fwd, rev *netsim.Link, proto sample.Protocol, reqDelay time.Duration) *Session {
	mss := int64(cfg.MSS)
	if mss <= 0 {
		mss = 1500
	}
	return &Session{
		sim:      sim,
		conn:     tcpsim.New(sim, cfg, fwd, rev),
		proto:    proto,
		reqDelay: reqDelay,
		mss:      mss,
	}
}

// Conn exposes the underlying transport (for MinRTT at session end).
func (s *Session) Conn() *tcpsim.Conn { return s.conn }

// Schedule registers the client's requests. Call before Run.
func (s *Session) Schedule(reqs []Request) {
	for _, req := range reqs {
		req := req
		s.sim.Schedule(req.At+s.reqDelay, func() { s.serve(req.ResponseBytes) })
	}
}

// serve enqueues one response and starts the write pump.
func (s *Session) serve(bytes int64) {
	if bytes <= 0 {
		return
	}
	lastPkt := bytes % s.mss
	if lastPkt == 0 {
		lastPkt = s.mss
	}
	raw := &proxygen.RawTxn{
		FirstByteWrite:  s.sim.Now(),
		Bytes:           bytes,
		LastPacketBytes: lastPkt,
	}
	s.raws = append(s.raws, raw)
	s.queue = append(s.queue, &pending{raw: raw, remaining: bytes})
	if !s.pumping {
		s.pumping = true
		s.sim.Schedule(0, s.pump)
	}
}

// pump writes one round of chunks into the socket and reschedules
// itself for when the transport has drained them to the wire, keeping
// the socket buffer shallow so HTTP/2 interleaving happens at chunk
// granularity as it does in a real server. It always runs from the
// event loop (never from inside a transmit) so write watches cannot
// recurse.
func (s *Session) pump() {
	if len(s.queue) == 0 {
		s.pumping = false
		return
	}

	// HTTP/1.1 serialises responses; HTTP/2 round-robins equal-priority
	// streams.
	active := s.queue[:1]
	if s.proto == sample.HTTP2 {
		active = s.queue
	}
	if len(active) > 1 {
		for _, p := range active {
			p.raw.Multiplexed = true
		}
	}

	wrote := int64(0)
	for i := 0; i < len(active); i++ {
		p := active[s.rr%len(active)]
		s.rr++
		chunk := int64(writeChunk)
		if chunk > p.remaining {
			chunk = p.remaining
		}
		if chunk <= 0 {
			continue
		}
		s.writeChunkOf(p, chunk)
		wrote += chunk
	}
	// Drop finished responses (preserving order).
	keep := s.queue[:0]
	for _, p := range s.queue {
		if p.remaining > 0 {
			keep = append(keep, p)
		}
	}
	s.queue = keep

	if len(s.queue) == 0 {
		s.pumping = false
		return
	}
	// Pump again when the transport has put the last written byte on
	// the wire. The callback defers to the event loop so a watch firing
	// synchronously inside a Write cannot recurse into another pump.
	watchAt := s.conn.NextWriteOffset() - 1
	s.conn.WatchFirstSend(watchAt, func(netsim.Time) {
		s.sim.Schedule(0, s.pump)
	})
}

// writeChunkOf moves one chunk of a response into the socket,
// instrumenting first/last bytes.
func (s *Session) writeChunkOf(p *pending, chunk int64) {
	start := s.conn.NextWriteOffset()
	first := !p.started
	p.started = true
	if first {
		raw := p.raw
		s.conn.WatchFirstSend(start, func(t netsim.Time) {
			raw.FirstByteNIC = t
			raw.Wnic = s.conn.Cwnd()
		})
	}
	_, end := s.conn.Write(int(chunk))
	p.remaining -= chunk
	if p.remaining == 0 {
		raw := p.raw
		s.conn.WatchFirstSend(end-1, func(t netsim.Time) { raw.LastByteNIC = t })
		if raw.Bytes > raw.LastPacketBytes {
			s.conn.WatchAcked(end-raw.LastPacketBytes, func(t netsim.Time) { raw.SecondToLastAck = t })
		}
		s.conn.WatchAcked(end, func(t netsim.Time) { raw.LastAck = t })
	}
}

// RawTxns returns the captured raw transactions in request order.
func (s *Session) RawTxns() []proxygen.RawTxn {
	out := make([]proxygen.RawTxn, len(s.raws))
	for i, r := range s.raws {
		out[i] = *r
	}
	return out
}

// Observations applies the §3.2.5 capture rules and returns the
// corrected transactions for the methodology.
func (s *Session) Observations() []hdratio.Transaction {
	return proxygen.Correct(s.RawTxns())
}

// Evaluate runs the HDratio methodology over the session as captured.
func (s *Session) Evaluate(cfg hdratio.Config) hdratio.Outcome {
	return hdratio.Evaluate(hdratio.Session{
		MinRTT:       s.conn.MinRTT(),
		Transactions: s.Observations(),
	}, cfg)
}
