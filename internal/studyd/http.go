package studyd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/segstore"
	"repro/internal/study"
)

// reportQuery is one parsed, canonicalized /report query. Two query
// strings asking for the same slice canonicalize to the same Key, so
// the cache never stores the same report twice.
type reportQuery struct {
	From, To  time.Duration
	Countries []string
	PoPs      []string
	Filter    *segstore.Filter
}

// Key is the canonical cache key for the query.
func (q reportQuery) Key() string {
	return fmt.Sprintf("report|from=%s|to=%s|country=%s|pop=%s",
		q.From, q.To, strings.Join(q.Countries, ","), strings.Join(q.PoPs, ","))
}

// parseReportQuery parses /report's query parameters: from and to as
// Go durations bounding the session-start offset (half-open), country
// and pop as comma-separated whitelists. Unknown parameters are
// ignored; malformed values are an error, never a panic — the fuzz
// target FuzzStudydQueryParams pins that.
func parseReportQuery(vals url.Values) (reportQuery, error) {
	var q reportQuery
	if v := vals.Get("from"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return q, fmt.Errorf("bad from=%q: %v", v, err)
		}
		if d < 0 {
			return q, fmt.Errorf("bad from=%q: negative offset", v)
		}
		q.From = d
	}
	if v := vals.Get("to"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return q, fmt.Errorf("bad to=%q: %v", v, err)
		}
		if d < 0 {
			return q, fmt.Errorf("bad to=%q: negative offset", v)
		}
		q.To = d
	}
	f, err := segstore.ParseFilter(q.From, q.To, vals.Get("country"), vals.Get("pop"))
	if err != nil {
		return q, err
	}
	q.Filter = f
	if f != nil {
		q.Countries = f.Countries
		q.PoPs = f.PoPs
	}
	return q, nil
}

// Handler returns the daemon's HTTP surface: /report (cached report
// over the spool), /groups (per-group spool rollup), /windows
// (per-window ingest health), /healthz (liveness + drain state), and
// the obs mounts (/metrics, /debug/vars, /debug/pprof) when a
// registry is attached.
func (d *Daemon) Handler() http.Handler {
	var mux *http.ServeMux
	if d.opt.Reg != nil {
		mux = d.opt.Reg.NewServeMux()
	} else {
		mux = http.NewServeMux()
	}
	mux.HandleFunc("/report", d.handleReport)
	mux.HandleFunc("/groups", d.handleGroups)
	mux.HandleFunc("/windows", d.handleWindows)
	mux.HandleFunc("/healthz", d.handleHealthz)
	return mux
}

// handleReport serves the aggregated study report for the spool's
// current contents, through the stale-while-revalidate cache. The
// body is exactly the batch `edgereport` output for the same dataset
// minus the elapsed-time line (the one line that may not be
// deterministic), so a drained daemon's /report is byte-identical to
// the golden batch report.
func (d *Daemon) handleReport(w http.ResponseWriter, r *http.Request) {
	q, err := parseReportQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, state, err := d.cache.Serve(q.Key(), d.Version(), func() ([]byte, error) {
		return d.renderReport(q)
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Cache", state)
	_, _ = w.Write(body)
}

// renderReport aggregates the spool and renders the report body.
func (d *Daemon) renderReport(q reportQuery) ([]byte, error) {
	res, err := study.FromSegments(context.Background(), d.opt.Dir, study.Options{
		Workers: d.opt.ReportWorkers,
		Filter:  q.Filter,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	res.WriteReport(&buf)
	return stripElapsedLine(buf.Bytes()), nil
}

// stripElapsedLine removes the "Generated and analysed in ..." line —
// the report's only wall-clock-dependent bytes — so responses are
// pure functions of the spool contents.
func stripElapsedLine(b []byte) []byte {
	marker := []byte("Generated and analysed")
	i := 0
	for i < len(b) {
		j := bytes.IndexByte(b[i:], '\n')
		if j < 0 {
			j = len(b) - i - 1
		}
		line := b[i : i+j]
		if bytes.HasPrefix(line, marker) {
			return append(b[:i:i], b[i+j+1:]...)
		}
		i += j + 1
	}
	return b
}

// groupInfo is one world group's spool rollup, served by /groups.
type groupInfo struct {
	Group      int      `json:"group"`
	Segments   int      `json:"segments"`
	Samples    int      `json:"samples"`
	Bytes      int64    `json:"bytes"`
	Tombstones int      `json:"tombstones,omitempty"`
	Lost       int      `json:"lost,omitempty"`
	Countries  []string `json:"countries,omitempty"`
	PoPs       []string `json:"pops,omitempty"`
}

// handleGroups rolls the spool manifest up by world group.
func (d *Daemon) handleGroups(w http.ResponseWriter, r *http.Request) {
	man, err := d.readManifest()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	cpg := d.cpg
	if cpg <= 0 {
		cpg = originChunksPerGroup(man.Origin)
	}
	byGroup := map[int]*groupInfo{}
	get := func(id int) *groupInfo {
		gi := id / cpg
		g := byGroup[gi]
		if g == nil {
			g = &groupInfo{Group: gi}
			byGroup[gi] = g
		}
		return g
	}
	for _, seg := range man.Segments {
		g := get(seg.ID)
		g.Segments++
		g.Samples += seg.Samples
		g.Bytes += seg.Bytes
		g.Countries = mergeSorted(g.Countries, seg.Countries)
		g.PoPs = mergeSorted(g.PoPs, seg.PoPs)
	}
	for _, t := range man.Tombstones {
		g := get(t.ID)
		g.Tombstones++
		g.Lost += t.SamplesLost
	}
	groups := make([]*groupInfo, 0, len(byGroup))
	for _, g := range byGroup {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Group < groups[j].Group })
	writeJSON(w, map[string]any{
		"origin": man.Origin,
		"groups": groups,
	})
}

// handleWindows serves the per-window ingest ledger: how many samples
// each logical window received, lost to outages, or refused late, and
// whether it is sealed.
func (d *Daemon) handleWindows(w http.ResponseWriter, r *http.Request) {
	mark := d.Watermark()
	limit := mark
	// By default only sealed (final) windows are listed; all=1 includes
	// the open remainder.
	if r.URL.Query().Get("all") != "" {
		limit = len(d.winStats)
	}
	d.mu.Lock()
	stats := make([]windowStat, 0, limit)
	for i := 0; i < limit && i < len(d.winStats); i++ {
		stats = append(stats, d.winStats[i])
	}
	d.mu.Unlock()
	writeJSON(w, map[string]any{
		"watermark": mark,
		"windows":   stats,
	})
}

// handleHealthz reports liveness and drain state.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := "ingesting"
	if d.Drained() {
		state = "drained"
	}
	degraded := false
	d.mu.Lock()
	if d.inj != nil {
		degraded = d.cov.Degraded()
	}
	d.mu.Unlock()
	writeJSON(w, map[string]any{
		"state":     state,
		"watermark": d.Watermark(),
		"version":   d.Version(),
		"degraded":  degraded,
		"ingested":  d.cIngested.Value(),
		"late":      d.cLate.Value(),
	})
}

// readManifest loads the spool manifest straight from disk: commits
// are atomic renames, so a concurrent chunk close can never expose a
// torn manifest to a reader.
func (d *Daemon) readManifest() (*segstore.Manifest, error) {
	data, err := os.ReadFile(filepath.Join(d.opt.Dir, segstore.ManifestName))
	if err != nil {
		return nil, err
	}
	var man segstore.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("studyd: corrupt manifest: %v", err)
	}
	return &man, nil
}

// originChunksPerGroup recovers the segment-ID scheme from a spool's
// origin string ("... days=N ...": one 24h chunk per day). Wire-mode
// daemons have no world config, so the origin is the only source;
// unknown origins fall back to one chunk per group.
func originChunksPerGroup(origin string) int {
	for _, f := range strings.Fields(origin) {
		if v, ok := strings.CutPrefix(f, "days="); ok {
			if days, err := strconv.Atoi(v); err == nil && days > 0 {
				return days
			}
		}
	}
	return 1
}

// mergeSorted folds add into base keeping it sorted and deduplicated.
func mergeSorted(base, add []string) []string {
	for _, v := range add {
		i := sort.SearchStrings(base, v)
		if i < len(base) && base[i] == v {
			continue
		}
		base = append(base, "")
		copy(base[i+1:], base[i:])
		base[i] = v
	}
	return base
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
