// Package studyd is the always-on study service: a long-running
// daemon that ingests a continuous sample stream, buffers open
// 15-minute windows per group, seals each window the moment its
// logical close passes, appends sealed data to an at-rest segstore
// spool, and serves reports and group/window queries over HTTP behind
// a stale-while-revalidate response cache.
//
// The paper's measurement system is continuous (§3.3): windows seal
// as traffic flows, not as a batch job. This package reproduces that
// shape while keeping the repo's determinism contract: sealing keys
// on the run's logical clock (the window index), never wall time, so
// a daemon run over a generated world drains into a spool that is
// byte-identical to the dataset `edgesim -format seg` writes for the
// same flags — and therefore `edgereport` over the daemon's at-rest
// segments reproduces the golden batch report exactly. The e2e tests
// and `make studyd-race` pin that invariant at several worker counts,
// including under an ingest fault plan.
//
// Fault semantics mirror the batch pipeline's (internal/seggen): PoP
// outages suppress windows at the source, batch faults quarantine
// whole groups into tombstones, write faults retry with backoff and
// tombstone on exhaustion, and sink faults retry per sample — chaos
// degrades coverage instead of killing the daemon. Two deliberate
// deviations from the batch study, both documented in DESIGN.md §15:
// batch *truncation* needs the group's total sample count before its
// first window ships, which a streaming ingest cannot know, so plans
// with truncate= are refused up front; and a permanent sink fault
// quarantines the sample's world group at segment granularity (the
// unit the spool can tombstone) rather than its user group.
package studyd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/seggen"
	"repro/internal/segstore"
	"repro/internal/trace"
	"repro/internal/world"
)

// windowsPerChunk is how many sealed windows close one segment-span
// chunk (96: a 24h segment span over 15-minute windows).
const windowsPerChunk = int(segstore.DefaultSegmentSpan / world.WindowDuration)

// Options configures one daemon.
type Options struct {
	// Dir is the at-rest segment spool (created or resumed in live
	// mode; in wire mode the ship merger owns the writer and the
	// daemon only reads).
	Dir string
	// Origin pins the spool identity (segstore.Create semantics).
	Origin string
	// World is the live-mode ingest source; nil in wire mode.
	World *world.World
	// Reg receives daemon metrics (may be nil).
	Reg *obs.Registry
	// Injector injects deterministic ingest faults (may be nil).
	Injector *faults.Injector
	// FailFast aborts ingest on the first unrecoverable fault instead
	// of tombstoning and degrading.
	FailFast bool
	// Rec records the run's deterministic flight trace (may be nil).
	Rec *trace.Recorder
	// ReportWorkers is the aggregation parallelism behind /report
	// (<=0: single-threaded).
	ReportWorkers int
	// CacheEntries bounds the report cache (default 64).
	CacheEntries int
}

// windowStat is one window's ingest health, surfaced by /windows.
type windowStat struct {
	Ingested int  `json:"ingested"`
	Lost     int  `json:"lost,omitempty"`
	Late     int  `json:"late,omitempty"`
	Sealed   bool `json:"sealed"`
}

// groupIngest is one world group's open-window state: the hosting
// filter, the per-chunk sample buffers awaiting their chunk's seal,
// and the group's fault fate.
type groupIngest struct {
	col *collector.Collector
	// buf holds kept (post-filter) samples per chunk; raw counts every
	// post-outage sample per chunk — the loss denominator a quarantine
	// tombstones with, matching the batch pipeline exactly.
	buf [][]sample.Sample
	raw []int
	// fateEvaled marks the lazy batch-fate draw; quarantine, when
	// non-empty, is the reason every remaining chunk tombstones under,
	// and qLost accumulates the tombstoned raw counts for the ledger.
	fateEvaled bool
	quarantine string
	qLost      int
	// writeEvaled marks the lazy write-fate draw (first non-empty chunk
	// close); writeRem is the remaining transient streak, writeReason
	// the tombstone reason once the fate is fatal, writeLost the
	// accumulated loss for the ledger entry.
	writeEvaled bool
	writeRem    int
	writeReason string
	writeLost   int
	dropBooked  bool // GroupsDropped counted once per group
	accepted    int  // samples committed to the spool
}

// Daemon is the always-on study service. Ingest, Seal, and Drain form
// the single-goroutine ingest side (the live driver calls them in
// window order); the HTTP side reads only the on-disk spool and
// atomic counters, so serving never blocks sealing.
type Daemon struct {
	opt Options
	cpg int
	sw  *segstore.Writer
	tb  *trace.Buf
	inj *faults.Injector

	groups []*groupIngest

	mu       sync.Mutex // guards cov and winStats (ingest writes, HTTP snapshots)
	cov      faults.Coverage
	winStats []windowStat

	watermark atomic.Int64
	version   atomic.Int64
	drained   atomic.Bool

	cache *swrCache

	cIngested *obs.Counter
	cLate     *obs.Counter
	cSealed   *obs.Counter
	cSegs     *obs.Counter
	cTombs    *obs.Counter
	gMark     *obs.Gauge
	gVersion  *obs.Gauge
	gDrained  *obs.Gauge
}

// New builds a daemon over opt.Dir. In live mode (opt.World set) the
// spool writer is created or resumed and the per-group ingest state
// is built; in wire mode the daemon only serves, and the ship merger
// feeding the spool bumps the version through BumpVersion.
func New(opt Options) (*Daemon, error) {
	if opt.CacheEntries <= 0 {
		opt.CacheEntries = 64
	}
	if p := opt.Injector.Plan(); p != nil && p.TruncateP > 0 {
		return nil, fmt.Errorf("studyd: fault plans with truncate= are not supported: batch truncation needs the group's total sample count before its first window ships, which a streaming ingest cannot know; drop truncate= from the plan")
	}
	d := &Daemon{opt: opt, inj: opt.Injector, tb: opt.Rec.Buf()}
	reg := opt.Reg
	d.cIngested = reg.Counter("studyd_samples_ingested_total")
	d.cLate = reg.Counter("studyd_late_samples")
	d.cSealed = reg.Counter("studyd_windows_sealed_total")
	d.cSegs = reg.Counter("studyd_segments_committed_total")
	d.cTombs = reg.Counter("studyd_tombstones_total")
	d.gMark = reg.Gauge("studyd_watermark")
	d.gVersion = reg.Gauge("studyd_version")
	d.gDrained = reg.Gauge("studyd_drained")
	d.cache = newSWRCache(opt.CacheEntries, reg)

	if opt.Injector != nil {
		d.cov.Spec = opt.Injector.Plan().Spec()
		d.cov.FailFast = opt.FailFast
		opt.Injector.Instrument(reg)
	}

	if opt.World == nil {
		return d, nil // wire mode: the merger owns the writer
	}
	d.cpg = seggen.ChunksPerGroup(opt.World.Cfg)
	sw, err := segstore.Create(opt.Dir, opt.Origin)
	if err != nil {
		return nil, err
	}
	// Publish the manifest before any window lands: a fresh daemon
	// interrupted before its first chunk resumes instead of starting
	// from a bare directory (same move as the batch writer's).
	if err := sw.Commit(); err != nil {
		return nil, err
	}
	d.sw = sw
	d.winStats = make([]windowStat, opt.World.Cfg.Windows())
	d.groups = make([]*groupIngest, len(opt.World.Groups))
	for gi := range d.groups {
		g := &groupIngest{
			buf: make([][]sample.Sample, d.cpg),
			raw: make([]int, d.cpg),
		}
		g.col = collector.New(collector.FuncSink(func(s sample.Sample) {
			g.buf[d.chunkOf(&s)] = append(g.buf[d.chunkOf(&s)], s)
		}))
		g.col.Instrument(reg)
		d.groups[gi] = g
	}
	return d, nil
}

// chunkOf maps a sample to its segment-span chunk, clamped so
// boundary jitter cannot mint an out-of-range segment ID.
func (d *Daemon) chunkOf(s *sample.Sample) int {
	c := int(s.Start / segstore.DefaultSegmentSpan)
	if c < 0 {
		c = 0
	}
	if c >= d.cpg {
		c = d.cpg - 1
	}
	return c
}

// Watermark returns the number of sealed windows: every window below
// it is immutable.
func (d *Daemon) Watermark() int { return int(d.watermark.Load()) }

// Version returns the spool commit counter — the cache's freshness
// token. It bumps on every manifest commit, so a cached report built
// at version v is fresh exactly until the spool changes.
func (d *Daemon) Version() int64 { return d.version.Load() }

// BumpVersion invalidates cached reports; the wire-mode merge hook.
func (d *Daemon) BumpVersion() {
	d.gVersion.Set(float64(d.version.Add(1)))
}

// Drained reports whether the ingest stream has fully drained.
func (d *Daemon) Drained() bool { return d.drained.Load() }

// SetDrained marks the ingest stream complete (wire mode, where the
// merger's done handshake is the drain signal).
func (d *Daemon) SetDrained() {
	d.drained.Store(true)
	d.gDrained.Set(1)
}

// Coverage snapshots the degradation ledger (nil without an injector).
func (d *Daemon) Coverage() *faults.Coverage {
	if d.inj == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.cov
	c.Quarantined = append([]faults.QuarantinedGroup(nil), d.cov.Quarantined...)
	return &c
}

// Stats merges the per-group collector totals.
func (d *Daemon) Stats() collector.Stats {
	var total collector.Stats
	for _, g := range d.groups {
		total = total.Merge(g.col.Stats())
	}
	return total
}

// Ingest feeds one group × window batch into the open-window buffers.
// lost counts sessions a PoP outage suppressed at the source. Each
// sample buckets by its own window (Start / 15min — a sample exactly
// on a window edge belongs to the later window); samples whose window
// is already sealed are counted in studyd_late_samples and dropped,
// because a sealed window is immutable. Ingest, Seal, and Drain must
// be called from one goroutine, in window order.
func (d *Daemon) Ingest(gi, win int, samples []sample.Sample, lost int) error {
	if d.sw == nil {
		return fmt.Errorf("studyd: ingest on a wire-mode daemon (no live world)")
	}
	g := d.groups[gi]
	mark := int(d.watermark.Load())

	if lost > 0 {
		d.mu.Lock()
		d.cov.SamplesLostOutage += lost
		if win >= 0 && win < len(d.winStats) {
			d.winStats[win].Lost += lost
		}
		d.mu.Unlock()
	}

	if !g.fateEvaled {
		g.fateEvaled = true
		if f := d.inj.BatchFault(gi); f.Kind == faults.BatchCorrupt || f.Kind == faults.BatchFail {
			if d.opt.FailFast {
				return fmt.Errorf("group %d batch: %w", gi,
					&faults.FaultError{Surface: faults.SurfaceBatch, Key: fmt.Sprintf("world-group-%d", gi)})
			}
			g.quarantine = f.Kind.String()
		}
	}

	ingested, late := 0, 0
	for i := range samples {
		s := &samples[i]
		if sw := int(s.Start / world.WindowDuration); sw < mark {
			late++
			continue
		}
		ingested++
		g.raw[d.chunkOf(s)]++
		if g.quarantine != "" {
			continue
		}
		if err := d.offer(gi, g, s); err != nil {
			return err
		}
	}
	d.cIngested.Add(int64(ingested))
	if late > 0 {
		d.cLate.Add(int64(late))
	}
	d.mu.Lock()
	if win >= 0 && win < len(d.winStats) {
		d.winStats[win].Ingested += ingested
		d.winStats[win].Late += late
	}
	d.mu.Unlock()
	return nil
}

// offer runs one sample through the sink-fault surface and the
// group's hosting filter. A transient fault retries with backoff
// (recovered faults change nothing, so the spool stays byte-identical
// to the batch writer's); a permanent fault — or an exhausted retry
// budget — quarantines the whole world group from this sample on.
// Chunks already sealed stay committed: a daemon cannot un-commit
// durable segments, and the coverage ledger accounts the difference.
func (d *Daemon) offer(gi int, g *groupIngest, s *sample.Sample) error {
	if s.HostingProvider {
		// The filter would reject it before any sink ran; no fault
		// surface applies, and the collector keeps its count exact.
		g.col.Offer(*s)
		return nil
	}
	f := d.inj.SinkFault(*s)
	if f.None() {
		g.col.Offer(*s)
		return nil
	}
	track := trace.GroupTrack(gi)
	if f.Permanent {
		if d.opt.FailFast {
			return fmt.Errorf("fail-fast: %w",
				&faults.FaultError{Surface: faults.SurfaceSink, Key: faults.SinkFaultKey(*s)})
		}
		d.tb.Emit(trace.Event{
			Track: track, Phase: trace.PhaseIngest, Win: -1, Seq: s.SessionID,
			Kind: trace.KFault, Stage: "sink", Value: 1, Detail: "sink-permanent",
		})
		d.sinkQuarantine(g)
		return nil
	}
	rem := f.Transient
	d.tb.Emit(trace.Event{
		Track: track, Phase: trace.PhaseIngest, Win: -1, Seq: s.SessionID,
		Kind: trace.KFault, Stage: "sink", Value: int64(rem), Detail: "sink-transient",
	})
	p := d.inj.Policy(gi)
	p.OnRetry = func(int, error) {
		d.mu.Lock()
		d.cov.RetriesSpent++
		d.mu.Unlock()
	}
	p = faults.TracedPolicy(p, d.tb, track, trace.PhaseIngest, -1, s.SessionID, "sink")
	err := faults.Retry(nil, p, func() error {
		if rem > 0 {
			rem--
			return &faults.FaultError{Surface: faults.SurfaceSink, Key: faults.SinkFaultKey(*s), Transient: true}
		}
		g.col.Offer(*s)
		return g.col.Err()
	})
	switch {
	case err == nil:
		d.mu.Lock()
		d.cov.TransientRecovered++
		d.mu.Unlock()
		d.inj.Recovered()
		return nil
	case d.opt.FailFast || !faults.IsTransient(err):
		return err
	default:
		d.sinkQuarantine(g)
		return nil
	}
}

// sinkQuarantine drops the group from its current sample on: buffered
// unsealed samples fall with it (their raw counts tombstone at chunk
// close), sealed chunks are already durable and stay.
func (d *Daemon) sinkQuarantine(g *groupIngest) {
	g.quarantine = "sink failure"
	for c := range g.buf {
		g.buf[c] = nil
	}
	d.inj.MarkDegraded()
}

// Seal advances the logical watermark past win, freezing it forever,
// and closes the window's segment-span chunk when win is the chunk's
// last window — encoding, appending, and committing it to the spool
// (one manifest commit per chunk, one version bump for the cache).
func (d *Daemon) Seal(win int) error {
	if d.sw == nil {
		return fmt.Errorf("studyd: seal on a wire-mode daemon (no live world)")
	}
	if int(d.watermark.Load()) != win {
		return fmt.Errorf("studyd: seal of window %d out of order (watermark %d)", win, d.watermark.Load())
	}
	d.watermark.Store(int64(win + 1))
	d.gMark.Set(float64(win + 1))
	d.cSealed.Inc()
	d.mu.Lock()
	if win >= 0 && win < len(d.winStats) {
		d.winStats[win].Sealed = true
	}
	d.mu.Unlock()
	if (win+1)%windowsPerChunk == 0 {
		return d.closeChunk((win+1)/windowsPerChunk - 1)
	}
	return nil
}

// closeChunk seals chunk c across every group: quarantined groups
// tombstone the chunk with its raw sample count, healthy groups
// encode and append their kept samples under the write-fault surface.
// Groups commit in ascending order and the manifest sorts by segment
// ID, so the finished spool is byte-identical to the batch writer's.
func (d *Daemon) closeChunk(c int) error {
	for gi, g := range d.groups {
		id := gi*d.cpg + c
		if g.quarantine != "" {
			d.sw.Tombstone(id, g.quarantine, g.raw[c])
			d.cTombs.Inc()
			g.qLost += g.raw[c]
			g.buf[c] = nil
			continue
		}
		kept := g.buf[c]
		g.buf[c] = nil
		if len(kept) == 0 {
			continue
		}
		if err := d.writeChunk(gi, g, id, kept); err != nil {
			return err
		}
	}
	if err := d.sw.Commit(); err != nil {
		return err
	}
	d.BumpVersion()
	return nil
}

// writeChunk commits one group chunk under the write-fault surface.
// The fate is drawn once per group — at its first non-empty chunk
// close, just as the batch writer draws it once per group batch: a
// permanent fault tombstones this and every later chunk of the group;
// a transient streak retries this chunk's commit with backoff and
// either recovers (nothing changes) or exhausts the budget and
// degrades to the same tombstones.
func (d *Daemon) writeChunk(gi int, g *groupIngest, id int, kept []sample.Sample) error {
	track := trace.GroupTrack(gi)
	n := len(kept)
	if !g.writeEvaled {
		g.writeEvaled = true
		if f := d.inj.WriteFault(gi); !f.None() {
			if f.Permanent {
				if d.opt.FailFast {
					return fmt.Errorf("writing group %d segments: %w", gi,
						&faults.FaultError{Surface: faults.SurfaceWrite, Key: fmt.Sprintf("world-group-%d", gi)})
				}
				g.writeReason = "permanent write failure"
				d.tb.Emit(trace.Event{
					Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 0,
					Kind: trace.KFault, Stage: "write", Value: int64(n), Detail: "write-permanent",
				})
			} else {
				g.writeRem = f.Transient
				d.tb.Emit(trace.Event{
					Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 0,
					Kind: trace.KFault, Stage: "write", Value: int64(g.writeRem), Detail: "write-transient",
				})
			}
		}
	}
	if g.writeReason != "" {
		d.tombstoneWrite(gi, g, id, n, track)
		return nil
	}
	commit := func() error {
		if d.sw.Committed(id) {
			return nil // survived a previous interrupted run
		}
		blob, meta := segstore.EncodeSegment(kept)
		return d.sw.Add(id, blob, meta)
	}
	if g.writeRem > 0 {
		p := d.inj.Policy(gi)
		p.OnRetry = func(int, error) {
			d.mu.Lock()
			d.cov.RetriesSpent++
			d.mu.Unlock()
		}
		p = faults.TracedPolicy(p, d.tb, track, trace.PhaseCommit, -1, 0, "write")
		err := faults.Retry(nil, p, func() error {
			if g.writeRem > 0 {
				g.writeRem--
				return &faults.FaultError{Surface: faults.SurfaceWrite,
					Key: fmt.Sprintf("world-group-%d", gi), Transient: true}
			}
			return commit()
		})
		if err != nil {
			if d.opt.FailFast || !faults.IsTransient(err) {
				return err
			}
			g.writeReason = "write retry budget exhausted"
			d.tombstoneWrite(gi, g, id, n, track)
			return nil
		}
		d.mu.Lock()
		d.cov.TransientRecovered++
		d.mu.Unlock()
		d.inj.Recovered()
	} else if err := commit(); err != nil {
		return err
	}
	g.accepted += n
	d.cSegs.Inc()
	d.tb.Emit(trace.Event{
		Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 2,
		Kind: trace.KCommit, Stage: "write", Value: int64(n),
	})
	return nil
}

// tombstoneWrite records one chunk lost to the group's write fate.
func (d *Daemon) tombstoneWrite(gi int, g *groupIngest, id, n int, track string) {
	d.sw.Tombstone(id, g.writeReason, n)
	d.cTombs.Inc()
	g.writeLost += n
	d.mu.Lock()
	d.cov.SamplesLostDropped += n
	if !g.dropBooked {
		g.dropBooked = true
		d.cov.GroupsDropped++
	}
	d.mu.Unlock()
	d.inj.MarkDegraded()
	d.tb.Emit(trace.Event{
		Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 1,
		Kind: trace.KQuarantine, Stage: "write", Value: int64(n), Detail: g.writeReason,
	})
	d.tb.Loss(track, trace.PhaseCommit, -1, 0, "write", trace.LossDropped, n)
}

// Drain closes the ingest stream: any trailing partial chunk is
// sealed, quarantined groups book their ledger entries (their totals
// are only known now), the coverage is finalized, and the daemon
// flips to drained. After Drain the spool is at rest.
func (d *Daemon) Drain() error {
	if d.sw == nil {
		d.SetDrained()
		return nil
	}
	mark := int(d.watermark.Load())
	if mark%windowsPerChunk != 0 {
		if err := d.closeChunk(mark / windowsPerChunk); err != nil {
			return err
		}
	}
	// Quarantined groups tombstone every remaining chunk at close time;
	// the ledger entry and its trace events carry the group totals.
	for gi, g := range d.groups {
		if g.quarantine != "" {
			track := trace.GroupTrack(gi)
			d.tb.Emit(trace.Event{
				Track: track, Phase: trace.PhaseBatch, Win: -1, Seq: 0,
				Kind: trace.KFault, Stage: "batch", Value: int64(g.qLost), Detail: g.quarantine,
			})
			d.tb.Emit(trace.Event{
				Track: track, Phase: trace.PhaseBatch, Win: -1, Seq: 1,
				Kind: trace.KQuarantine, Stage: "batch", Value: int64(g.qLost), Detail: g.quarantine,
			})
			d.tb.Loss(track, trace.PhaseBatch, -1, 0, "batch", trace.LossDropped, g.qLost)
			d.mu.Lock()
			if g.quarantine == "sink failure" {
				d.cov.SamplesLostQuarantined += g.qLost
			} else {
				d.cov.SamplesLostDropped += g.qLost
				d.cov.GroupsDropped++
			}
			d.cov.Quarantined = append(d.cov.Quarantined, faults.QuarantinedGroup{
				Key: fmt.Sprintf("world-group-%04d", gi), Reason: g.quarantine, SamplesLost: g.qLost,
			})
			d.mu.Unlock()
			d.inj.MarkDegraded()
		}
		if g.writeReason != "" && g.writeLost > 0 {
			d.mu.Lock()
			d.cov.Quarantined = append(d.cov.Quarantined, faults.QuarantinedGroup{
				Key: fmt.Sprintf("world-group-%04d", gi), Reason: g.writeReason, SamplesLost: g.writeLost,
			})
			d.mu.Unlock()
		}
	}
	if d.inj != nil {
		d.mu.Lock()
		d.cov.Finalize()
		degraded := d.cov.Degraded()
		cov := d.cov
		d.mu.Unlock()
		if degraded {
			d.inj.MarkDegraded()
		}
		cov.EmitTrace(d.tb)
	}
	d.SetDrained()
	return nil
}

// RunLive drives the daemon from its world's live feed: windows
// generate in logical order (parallel across groups within a window),
// every batch ingests, every window seals, and the stream drains.
// Cancelling ctx stops the feed; everything already committed is
// durable, and a rerun with the same flags resumes (committed chunks
// are recognised and skipped).
func (d *Daemon) RunLive(ctx context.Context, workers int) error {
	if d.opt.World == nil {
		return fmt.Errorf("studyd: RunLive needs a live world")
	}
	feed := world.NewLiveFeed(d.opt.World)
	if err := feed.Run(ctx, workers, func(b world.WindowBatch) error {
		return d.Ingest(b.Group, b.Win, b.Samples, b.Lost)
	}, d.Seal); err != nil {
		return err
	}
	return d.Drain()
}
