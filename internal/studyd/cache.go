package studyd

import (
	"sync"

	"repro/internal/obs"
)

// swrCache is the report cache: an LRU of rendered responses keyed by
// canonical query, with stale-while-revalidate semantics keyed on the
// spool version. A fresh entry (built at the current version) is
// served as-is. A stale entry is served immediately — readers never
// block on re-aggregation — while at most one background revalidation
// per key rebuilds it at the newer version. A missing entry blocks,
// but concurrent requests for the same key share one computation
// (singleflight), so a thundering herd costs one aggregation.
//
// Entries are immutable []byte values swapped in whole under the
// lock: a reader either sees the old bytes or the new bytes, never a
// torn response. The version is captured BEFORE the compute reads the
// spool, so a commit racing the rebuild leaves the entry stale (and a
// later request revalidates again) rather than wrongly fresh.
type swrCache struct {
	mu      sync.Mutex
	max     int
	clock   int64 // LRU clock: bumps on every touch
	entries map[string]*cacheEntry

	cHit    *obs.Counter
	cMiss   *obs.Counter
	cStale  *obs.Counter
	cReval  *obs.Counter
	cEvict  *obs.Counter
	cErrors *obs.Counter
}

type cacheEntry struct {
	body    []byte
	version int64 // spool version the body was built at
	used    int64 // LRU clock at last touch
	// inflight, when non-nil, is the one pending computation for this
	// key: a blocking miss's waiters share it, and a stale entry's
	// background revalidation holds it so at most one rebuild runs.
	inflight chan struct{}
	err      error // error of a failed blocking compute (not cached)
}

func newSWRCache(max int, reg *obs.Registry) *swrCache {
	return &swrCache{
		max:     max,
		entries: make(map[string]*cacheEntry),
		cHit:    reg.Counter("studyd_report_cache_hits_total"),
		cMiss:   reg.Counter("studyd_report_cache_misses_total"),
		cStale:  reg.Counter("studyd_report_cache_stale_served_total"),
		cReval:  reg.Counter("studyd_report_cache_revalidations_total"),
		cEvict:  reg.Counter("studyd_report_cache_evictions_total"),
		cErrors: reg.Counter("studyd_report_cache_errors_total"),
	}
}

// Serve returns the response for key at spool version now, computing
// it with compute when absent. The returned state is "hit" (fresh),
// "stale" (served stale, revalidation running), or "miss" (computed
// on this call). compute must be pure with respect to the spool
// contents at the version it observes.
func (c *swrCache) Serve(key string, now int64, compute func() ([]byte, error)) (body []byte, state string, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]

	if ok && e.body != nil {
		c.clock++
		e.used = c.clock
		if e.version >= now {
			c.mu.Unlock()
			c.cHit.Inc()
			return e.body, "hit", nil
		}
		// Stale: serve the old bytes now, rebuild in the background —
		// unless a rebuild for this key is already in flight.
		stale := e.body
		if e.inflight == nil {
			done := make(chan struct{})
			e.inflight = done
			c.cReval.Inc()
			// The rebuild is fire-and-forget by design: it outlives this
			// request (and its context) so one slow re-aggregation can
			// serve every later reader.
			go func() {
				body, cerr := compute()
				c.mu.Lock()
				if cur := c.entries[key]; cur == e {
					e.inflight = nil
					if cerr == nil {
						e.body = body
						e.version = now
					}
				}
				c.mu.Unlock()
				if cerr != nil {
					c.cErrors.Inc()
				}
				close(done)
			}()
		}
		c.mu.Unlock()
		c.cStale.Inc()
		return stale, "stale", nil
	}

	// Miss. Join a pending computation if one is running.
	if ok && e.inflight != nil {
		done := e.inflight
		c.mu.Unlock()
		<-done
		c.mu.Lock()
		if cur, still := c.entries[key]; still && cur.body != nil {
			c.clock++
			cur.used = c.clock
			body := cur.body
			c.mu.Unlock()
			c.cMiss.Inc()
			return body, "miss", nil
		}
		err := e.err
		c.mu.Unlock()
		c.cErrors.Inc()
		return nil, "miss", err
	}

	// First requester: compute while holding the inflight slot.
	done := make(chan struct{})
	e = &cacheEntry{inflight: done}
	c.entries[key] = e
	c.mu.Unlock()

	c.cMiss.Inc()
	body, err = compute()

	c.mu.Lock()
	e.inflight = nil
	if err != nil {
		e.err = err
		delete(c.entries, key) // errors are not cached
		c.mu.Unlock()
		close(done)
		c.cErrors.Inc()
		return nil, "miss", err
	}
	e.body = body
	e.version = now
	c.clock++
	e.used = c.clock
	c.evictLocked()
	c.mu.Unlock()
	close(done)
	return body, "miss", nil
}

// evictLocked drops least-recently-used complete entries until the
// cache fits. Entries with a rebuild in flight are skipped: evicting
// them would orphan their waiters.
func (c *swrCache) evictLocked() {
	for len(c.entries) > c.max {
		var victim string
		var oldest int64
		for k, e := range c.entries {
			if e.inflight != nil || e.body == nil {
				continue
			}
			if victim == "" || e.used < oldest {
				victim, oldest = k, e.used
			}
		}
		if victim == "" {
			return
		}
		delete(c.entries, victim)
		c.cEvict.Inc()
	}
}

// Len reports the number of cached entries (tests).
func (c *swrCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
