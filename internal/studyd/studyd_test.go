package studyd

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/seggen"
	"repro/internal/study"
	"repro/internal/world"
)

// testCfg is the worldlet every daemon test ingests: two days so chunk
// closes happen mid-run (not only at drain), enough groups for fault
// plans to quarantine some and keep others.
var testCfg = world.Config{Seed: 7, Groups: 6, Days: 2, SessionsPerGroupWindow: 4}

func testOrigin(plan *faults.Plan) string {
	return fmt.Sprintf("edgesim seed=%d groups=%d days=%d spw=%g plan=%q",
		testCfg.Seed, testCfg.Groups, testCfg.Days, testCfg.SessionsPerGroupWindow, plan.Spec())
}

// goldenDataset writes the batch-pipeline dataset for testCfg under
// spec — the bytes every daemon run must reproduce.
func goldenDataset(t testing.TB, dir, spec string) {
	t.Helper()
	plan, err := faults.ParsePlan(spec)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	w := world.New(testCfg)
	inj := faults.NewInjector(plan, testCfg.Seed)
	if inj != nil {
		w.PoPDown = inj.Outage
	}
	if _, err := seggen.Run(context.Background(), seggen.Options{
		World: w, Dir: dir, Origin: testOrigin(inj.Plan()), Injector: inj,
	}); err != nil {
		t.Fatalf("golden generate: %v", err)
	}
}

// liveDaemon builds a live-mode daemon over a fresh world for spec.
func liveDaemon(t testing.TB, dir, spec string) *Daemon {
	t.Helper()
	plan, err := faults.ParsePlan(spec)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	w := world.New(testCfg)
	inj := faults.NewInjector(plan, testCfg.Seed)
	if inj != nil {
		w.PoPDown = inj.Outage
	}
	d, err := New(Options{
		Dir: dir, Origin: testOrigin(inj.Plan()),
		World: w, Injector: inj, Reg: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func dirsEqual(t *testing.T, want, got string) {
	t.Helper()
	names := func(dir string) []string {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		out := make([]string, 0, len(ents))
		for _, e := range ents {
			out = append(out, e.Name())
		}
		return out
	}
	wn, gn := names(want), names(got)
	if fmt.Sprint(wn) != fmt.Sprint(gn) {
		t.Fatalf("file sets differ:\n  want %v\n  got  %v", wn, gn)
	}
	for _, n := range wn {
		wb, err := os.ReadFile(filepath.Join(want, n))
		if err != nil {
			t.Fatal(err)
		}
		gb, err := os.ReadFile(filepath.Join(got, n))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("%s differs: %d vs %d bytes", n, len(wb), len(gb))
		}
	}
}

func renderGolden(t testing.TB, dir string) []byte {
	t.Helper()
	res, err := study.FromSegments(context.Background(), dir, study.Options{})
	if err != nil {
		t.Fatalf("FromSegments(%s): %v", dir, err)
	}
	var buf bytes.Buffer
	res.WriteReport(&buf)
	return stripElapsedLine(buf.Bytes())
}

// get fetches a path from the daemon's handler and returns the body
// and the X-Cache state.
func get(t testing.TB, d *Daemon, path string) ([]byte, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	d.Handler().ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	if rr.Code != 200 {
		t.Fatalf("GET %s: %d %s", path, rr.Code, rr.Body.String())
	}
	return rr.Body.Bytes(), rr.Result().Header.Get("X-Cache")
}

// TestDaemonByteIdenticalToBatch is the keystone invariant: a drained
// live-mode daemon's spool is byte-identical to the batch dataset for
// the same flags — and its served /report to the golden batch report —
// at every worker count, clean and under a chaos plan.
func TestDaemonByteIdenticalToBatch(t *testing.T) {
	const chaos = "sink-transient=0.01;fail-group=2;outage=fra:10-30;retries=4;retry-base=50us"
	for _, spec := range []string{"", chaos} {
		golden := t.TempDir()
		goldenDataset(t, golden, spec)
		report := renderGolden(t, golden)
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("plan=%t/workers=%d", spec != "", workers), func(t *testing.T) {
				dir := t.TempDir()
				d := liveDaemon(t, dir, spec)
				if err := d.RunLive(context.Background(), workers); err != nil {
					t.Fatalf("RunLive: %v", err)
				}
				if !d.Drained() {
					t.Fatal("daemon not drained after RunLive")
				}
				dirsEqual(t, golden, dir)
				body, _ := get(t, d, "/report")
				if !bytes.Equal(body, report) {
					t.Errorf("served /report differs from golden batch report:\n--- golden\n%s\n--- served\n%s", report, body)
				}
			})
		}
	}
}

// TestDaemonResumesCommittedChunks reruns a drained daemon's flags over
// its spool: every chunk is already committed, the rerun recognises
// them, and the bytes do not change.
func TestDaemonResumesCommittedChunks(t *testing.T) {
	golden := t.TempDir()
	goldenDataset(t, golden, "")
	dir := t.TempDir()
	for run := 0; run < 2; run++ {
		d := liveDaemon(t, dir, "")
		if err := d.RunLive(context.Background(), 2); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
	dirsEqual(t, golden, dir)
}

// TestDaemonRefusesTruncatePlans pins the documented deviation: batch
// truncation needs totals a stream cannot know, so the plan is refused
// at construction, not silently mis-applied.
func TestDaemonRefusesTruncatePlans(t *testing.T) {
	plan, err := faults.ParsePlan("truncate=0.5")
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	_, err = New(Options{
		Dir: t.TempDir(), Origin: "x", World: world.New(testCfg),
		Injector: faults.NewInjector(plan, 1),
	})
	if err == nil || !strings.Contains(err.Error(), "truncate") {
		t.Fatalf("want truncate refusal, got %v", err)
	}
}

// windowSample fabricates a minimal sample inside window win.
func windowSample(win int, off int64) sample.Sample {
	return sample.Sample{
		SessionID: uint64(win)<<32 | uint64(off),
		PoP:       "lhr", Prefix: "10.0.0.0/24", Country: "GB",
		Start: world.WindowDuration*time.Duration(win) + 1,
	}
}

// TestSealBoundaries pins the window-edge semantics: a sample exactly
// on a 15-minute boundary belongs to the LATER window (half-open
// windows), so sealing the earlier window never refuses it; a sample
// landing below the watermark is counted late and dropped without
// mutating the sealed window; a group that goes quiet simply stops
// contributing — no tombstone, no empty segment.
func TestSealBoundaries(t *testing.T) {
	dir := t.TempDir()
	d := liveDaemon(t, dir, "")

	// Window 0 gets one ordinary sample, then seals.
	if err := d.Ingest(0, 0, []sample.Sample{windowSample(0, 1)}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Seal(0); err != nil {
		t.Fatal(err)
	}

	// A sample exactly on the boundary (Start == 15m) belongs to window
	// 1: not late, buffered.
	edge := sample.Sample{SessionID: 99, PoP: "lhr", Prefix: "10.0.0.0/24", Country: "GB",
		Start: world.WindowDuration}
	if err := d.Ingest(0, 1, []sample.Sample{edge}, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.cLate.Value(); got != 0 {
		t.Fatalf("edge sample counted late: studyd_late_samples=%d", got)
	}

	// A sample below the watermark is late: counted, dropped, and the
	// sealed window's ledger stays frozen.
	before := d.winStats[0]
	late := sample.Sample{SessionID: 100, PoP: "lhr", Prefix: "10.0.0.0/24", Country: "GB",
		Start: world.WindowDuration - 1}
	if err := d.Ingest(0, 1, []sample.Sample{late}, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.cLate.Value(); got != 1 {
		t.Fatalf("studyd_late_samples=%d, want 1", got)
	}
	if d.winStats[0] != before {
		t.Fatalf("sealed window mutated: %+v -> %+v", before, d.winStats[0])
	}
	if !d.winStats[0].Sealed {
		t.Fatal("window 0 not marked sealed")
	}
	if d.winStats[1].Late != 1 {
		t.Fatalf("late sample not ledgered on its arrival window: %+v", d.winStats[1])
	}

	// Out-of-order seals are refused: the watermark only advances.
	if err := d.Seal(0); err == nil {
		t.Fatal("re-sealing window 0 succeeded")
	}
	if err := d.Seal(2); err == nil {
		t.Fatal("sealing window 2 before 1 succeeded")
	}

	// Groups 1..n stay quiet; seal everything and drain. Quiet groups
	// leave no trace in the spool — no segments, no tombstones.
	for win := 1; win < testCfg.Windows(); win++ {
		if err := d.Seal(win); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	man, err := d.readManifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Tombstones) != 0 {
		t.Fatalf("quiet groups grew tombstones: %+v", man.Tombstones)
	}
	for _, seg := range man.Segments {
		if g := seg.ID / d.cpg; g != 0 {
			t.Fatalf("quiet group %d has a segment (id %d)", g, seg.ID)
		}
	}
}

// TestCacheSingleRevalidation is the cache-correctness gate: N
// concurrent readers of one stale key all get a complete response
// instantly, and the re-aggregation behind them runs at most once.
func TestCacheSingleRevalidation(t *testing.T) {
	c := newSWRCache(8, nil)
	var computes atomic.Int64
	v1 := []byte("version-one")
	v2 := []byte("version-two")

	// Prime at version 1.
	body, state, err := c.Serve("k", 1, func() ([]byte, error) {
		computes.Add(1)
		return v1, nil
	})
	if err != nil || state != "miss" || !bytes.Equal(body, v1) {
		t.Fatalf("prime: %q %s %v", body, state, err)
	}

	// Bump the version; hammer the stale entry. Every reader must get a
	// complete body (old or new, never torn/empty), and the rebuild must
	// run exactly once.
	computes.Store(0)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _, err := c.Serve("k", 2, func() ([]byte, error) {
				computes.Add(1)
				<-release // keep the rebuild in flight while readers pile up
				return v2, nil
			})
			if err != nil {
				t.Errorf("Serve: %v", err)
				return
			}
			if !bytes.Equal(body, v1) && !bytes.Equal(body, v2) {
				t.Errorf("torn response: %q", body)
			}
		}()
	}
	close(release)
	wg.Wait()
	// The rebuild is detached: readers return without waiting for it, so
	// give it a moment to run before counting.
	for i := 0; i < 2000 && computes.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("stale key revalidated %d times, want exactly 1", n)
	}

	// After the rebuild lands, version 2 is a fresh hit.
	for i := 0; i < 2000; i++ {
		body, state, _ = c.Serve("k", 2, func() ([]byte, error) {
			t.Error("fresh entry recomputed")
			return nil, nil
		})
		if state == "hit" && bytes.Equal(body, v2) {
			if n := computes.Load(); n != 1 {
				t.Fatalf("stale key revalidated %d times, want exactly 1", n)
			}
			return
		}
		time.Sleep(time.Millisecond) // the detached rebuild installs asynchronously
	}
	t.Fatalf("rebuilt entry never became a fresh hit: %q %s", body, state)
}

// TestCacheMissSingleflight: concurrent first requests for one key
// share a single computation.
func TestCacheMissSingleflight(t *testing.T) {
	c := newSWRCache(8, nil)
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(first bool) {
			defer wg.Done()
			if !first {
				<-started
			}
			body, _, err := c.Serve("k", 1, func() ([]byte, error) {
				computes.Add(1)
				close(started)
				<-release
				return []byte("body"), nil
			})
			if err != nil || string(body) != "body" {
				t.Errorf("Serve: %q %v", body, err)
			}
		}(i == 0)
	}
	go func() { <-started; close(release) }()
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("miss computed %d times, want 1", n)
	}
}

// TestCacheErrorsNotCached: a failed compute propagates to its waiters
// and is forgotten — the next request recomputes.
func TestCacheErrorsNotCached(t *testing.T) {
	c := newSWRCache(8, nil)
	wantErr := fmt.Errorf("spool on fire")
	if _, _, err := c.Serve("k", 1, func() ([]byte, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	body, state, err := c.Serve("k", 1, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || state != "miss" || string(body) != "ok" {
		t.Fatalf("retry after error: %q %s %v", body, state, err)
	}
}

// TestCacheEviction: the LRU bound holds and evicts the coldest key.
func TestCacheEviction(t *testing.T) {
	c := newSWRCache(2, nil)
	mk := func(k string) {
		if _, _, err := c.Serve(k, 1, func() ([]byte, error) { return []byte(k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	mk("a")
	mk("b")
	mk("c") // evicts a
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	_, state, _ := c.Serve("b", 1, func() ([]byte, error) { return []byte("b"), nil })
	if state != "hit" {
		t.Fatalf("warm key evicted (state %s)", state)
	}
	_, state, _ = c.Serve("a", 1, func() ([]byte, error) { return []byte("a"), nil })
	if state != "miss" {
		t.Fatalf("cold key survived eviction (state %s)", state)
	}
}

// TestHandlerCacheStates drives /report through the daemon's real
// handler: first fetch misses, second hits, a version bump serves
// stale then converges to a fresh hit — and every body is the same
// bytes (the spool did not actually change).
func TestHandlerCacheStates(t *testing.T) {
	dir := t.TempDir()
	d := liveDaemon(t, dir, "")
	if err := d.RunLive(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	b1, s1 := get(t, d, "/report")
	if s1 != "miss" {
		t.Fatalf("first fetch X-Cache=%s, want miss", s1)
	}
	b2, s2 := get(t, d, "/report")
	if s2 != "hit" || !bytes.Equal(b1, b2) {
		t.Fatalf("second fetch X-Cache=%s (want hit), bodies equal=%t", s2, bytes.Equal(b1, b2))
	}
	d.BumpVersion()
	b3, s3 := get(t, d, "/report")
	if s3 != "stale" || !bytes.Equal(b1, b3) {
		t.Fatalf("post-bump fetch X-Cache=%s (want stale), bodies equal=%t", s3, bytes.Equal(b1, b3))
	}
	for i := 0; i < 500; i++ {
		b, s := get(t, d, "/report")
		if s == "hit" {
			if !bytes.Equal(b1, b) {
				t.Fatal("revalidated body differs for an unchanged spool")
			}
			return
		}
		time.Sleep(5 * time.Millisecond) // the rebuild re-aggregates the spool
	}
	t.Fatal("report never revalidated to a fresh hit")
}

// TestEndpoints sanity-checks the query surfaces over a drained run.
func TestEndpoints(t *testing.T) {
	dir := t.TempDir()
	d := liveDaemon(t, dir, "")
	if err := d.RunLive(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	body, _ := get(t, d, "/healthz")
	if !strings.Contains(string(body), `"state": "drained"`) {
		t.Fatalf("healthz: %s", body)
	}
	body, _ = get(t, d, "/groups")
	for gi := 0; gi < testCfg.Groups; gi++ {
		if !strings.Contains(string(body), fmt.Sprintf(`"group": %d`, gi)) {
			t.Fatalf("group %d missing from /groups: %s", gi, body)
		}
	}
	body, _ = get(t, d, "/windows")
	if !strings.Contains(string(body), fmt.Sprintf(`"watermark": %d`, testCfg.Windows())) {
		t.Fatalf("windows: %s", body)
	}
	// A filtered report parses and renders.
	if body, _ = get(t, d, "/report?from=24h&country=GB"); len(body) == 0 {
		t.Fatal("filtered report empty")
	}
	// Malformed filters are a 400, not a panic or a 500.
	rr := httptest.NewRecorder()
	d.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/report?from=banana", nil))
	if rr.Code != 400 {
		t.Fatalf("bad filter: %d", rr.Code)
	}
}

// FuzzStudydQueryParams pins that no query string can panic the
// /report parameter parser, and that canonical keys are stable: two
// parses of the same values always agree.
func FuzzStudydQueryParams(f *testing.F) {
	f.Add("from=24h&to=48h&country=GB,US&pop=lhr")
	f.Add("from=-1h")
	f.Add("from=banana&to=&country=&pop=")
	f.Add("country=" + strings.Repeat("X,", 100))
	f.Add("from=9999999999999999999h")
	f.Fuzz(func(t *testing.T, raw string) {
		vals, err := url.ParseQuery(raw)
		if err != nil {
			t.Skip()
		}
		q, err := parseReportQuery(vals)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		q2, err2 := parseReportQuery(vals)
		if err2 != nil || q.Key() != q2.Key() {
			t.Fatalf("unstable parse: %q vs %q (%v)", q.Key(), q2.Key(), err2)
		}
	})
}

// BenchmarkStudydServe measures the serving fast paths: a fresh cache
// hit (the steady state) and a stale hit that triggers revalidation
// (the post-commit state) — the daemon must stay instant in both.
func BenchmarkStudydServe(b *testing.B) {
	dir := b.TempDir()
	d := liveDaemon(b, dir, "")
	if err := d.RunLive(context.Background(), 4); err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/report", nil)
	h := d.Handler()
	fetch := func() {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != 200 {
			b.Fatalf("GET /report: %d", rr.Code)
		}
		io.Copy(io.Discard, rr.Result().Body)
	}
	fetch() // prime

	b.Run("cache-hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fetch()
		}
	})
	b.Run("stale-revalidate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.BumpVersion() // every request sees a stale entry
			fetch()
		}
	})
	b.Run("cold-miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A never-seen key blocks on a full spool re-aggregation —
			// the cost the cache hides from every later reader.
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET",
				fmt.Sprintf("/report?from=%dns", i+1), nil))
			if rr.Code != 200 {
				b.Fatalf("GET /report: %d", rr.Code)
			}
		}
	})
}
