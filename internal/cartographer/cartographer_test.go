package cartographer

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
)

func TestRankedByProximity(t *testing.T) {
	m := New(geo.DefaultWorld())
	// Berlin: the first PoPs must be the European ones.
	ranked := m.Ranked(geo.LatLon{Lat: 52.5, Lon: 13.4})
	if len(ranked) == 0 {
		t.Fatal("no PoPs")
	}
	for i := 0; i < 3; i++ {
		if ranked[i].Continent != geo.Europe {
			t.Errorf("rank %d for Berlin is %s (%s)", i, ranked[i].Name, ranked[i].Continent)
		}
	}
	// Distances must be nondecreasing.
	prev := -1.0
	for _, p := range ranked {
		d := geo.DistanceKm(geo.LatLon{Lat: 52.5, Lon: 13.4}, p.Loc)
		if d < prev {
			t.Fatal("ranking not sorted by distance")
		}
		prev = d
	}
}

func TestAssignMostlyStable(t *testing.T) {
	m := New(geo.DefaultWorld())
	loc := geo.LatLon{Lat: 48.8, Lon: 2.3} // Paris
	stable, remapped := 0, 0
	for i := 0; i < 1000; i++ {
		sched, _ := m.Assign(loc, geo.Europe, 960, rng.New(uint64(i)))
		switch len(sched) {
		case 1:
			stable++
		case 2:
			remapped++
			if sched[1].FromWindow <= 0 || sched[1].FromWindow >= 960 {
				t.Fatalf("remap window out of range: %d", sched[1].FromWindow)
			}
			if sched[1].PoP.Name == sched[0].PoP.Name {
				t.Fatal("remap to the same PoP")
			}
		default:
			t.Fatalf("unexpected schedule length %d", len(sched))
		}
	}
	frac := float64(remapped) / 1000
	if frac < 0.01 || frac > 0.06 {
		t.Errorf("remap fraction = %v, want ~0.03", frac)
	}
}

func TestRemoteBias(t *testing.T) {
	m := New(geo.DefaultWorld())
	loc := geo.LatLon{Lat: 6.5, Lon: 3.4} // Lagos, next to the "los" PoP
	remote := 0
	for i := 0; i < 2000; i++ {
		_, biased := m.Assign(loc, geo.Africa, 96, rng.New(uint64(i)))
		if biased {
			remote++
		}
	}
	frac := float64(remote) / 2000
	if frac < 0.15 || frac > 0.30 {
		t.Errorf("AF remote-serve fraction = %v, want ~0.22", frac)
	}
}

func TestPoPAt(t *testing.T) {
	w := geo.DefaultWorld()
	sched := []Assignment{
		{PoP: w.PoPs[0], FromWindow: 0},
		{PoP: w.PoPs[1], FromWindow: 100},
	}
	if got := PoPAt(sched, 50); got.Name != w.PoPs[0].Name {
		t.Errorf("window 50 served by %s", got.Name)
	}
	if got := PoPAt(sched, 100); got.Name != w.PoPs[1].Name {
		t.Errorf("window 100 served by %s", got.Name)
	}
	if got := PoPAt(sched, 900); got.Name != w.PoPs[1].Name {
		t.Errorf("window 900 served by %s", got.Name)
	}
}

func TestRTTFloor(t *testing.T) {
	w := geo.DefaultWorld()
	var ams geo.PoP
	for _, p := range w.PoPs {
		if p.Name == "ams" {
			ams = p
		}
	}
	// London to Amsterdam: ~357 km → floor around 5-6 ms RTT at 1.6x
	// path stretch.
	floor := RTTFloor(geo.LatLon{Lat: 51.5, Lon: -0.1}, ams)
	if floor < 3*time.Millisecond || floor > 10*time.Millisecond {
		t.Errorf("RTTFloor = %v", floor)
	}
}
