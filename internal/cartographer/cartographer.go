// Package cartographer models Facebook's ingress steering system of the
// same name (§2.1): it decides which PoP serves each client population
// by combining proximity with measured performance, keeps assignments
// sticky so user groups are stable, and occasionally remaps populations
// (capacity, maintenance) — which is why the temporal analysis ignores
// groups with traffic in fewer than 60% of windows (§3.4.2).
package cartographer

import (
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Assignment is a client population's serving PoP over a window range.
type Assignment struct {
	PoP geo.PoP
	// FromWindow is the first 15-minute window the assignment covers;
	// it lasts until the next assignment's FromWindow.
	FromWindow int
}

// Mapper assigns client populations to PoPs.
type Mapper struct {
	world *geo.World
	// RemoteBias, per continent, is the probability a population is
	// steered to a European PoP despite a closer one (§2.1: 4.8% of all
	// traffic is Asia-via-Europe, 2.1% Africa-via-Europe).
	RemoteBias map[geo.Continent]float64
	// RemapProb is the per-population probability of a mid-dataset remap
	// to the next-best PoP (creating the sparse-coverage groups §3.4.2
	// excludes).
	RemapProb float64
}

// New returns a mapper over the given world.
func New(w *geo.World) *Mapper {
	return &Mapper{
		world: w,
		RemoteBias: map[geo.Continent]float64{
			geo.Asia:   0.12,
			geo.Africa: 0.22,
		},
		RemapProb: 0.03,
	}
}

// Ranked returns the PoPs serving loc ordered by the steering score:
// geographic proximity, as the paper's §2.1 traffic locality implies
// (half of traffic within 500 km of its PoP).
func (m *Mapper) Ranked(loc geo.LatLon) []geo.PoP {
	type scored struct {
		pop  geo.PoP
		dist float64
	}
	out := make([]scored, len(m.world.PoPs))
	for i, p := range m.world.PoPs {
		out[i] = scored{p, geo.DistanceKm(loc, p.Loc)}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].dist < out[j].dist })
	pops := make([]geo.PoP, len(out))
	for i, s := range out {
		pops[i] = s.pop
	}
	return pops
}

// Assign produces a population's serving-PoP schedule across a dataset
// of the given number of windows. Most populations keep one PoP for the
// whole study; a RemapProb fraction is moved once, and remote-biased
// populations are served from Europe. The second return reports whether
// the remote-steering bias fired (as opposed to Europe simply being the
// nearest PoP, as it is for parts of North Africa).
func (m *Mapper) Assign(loc geo.LatLon, cont geo.Continent, windows int, r *rng.RNG) ([]Assignment, bool) {
	ranked := m.Ranked(loc)
	primary := ranked[0]
	biased := false
	if r.Bool(m.RemoteBias[cont]) && primary.Continent == cont {
		eu := m.world.PoPsOnContinent(geo.Europe)
		if len(eu) > 0 {
			primary = eu[r.IntN(len(eu))]
			biased = true
		}
	}
	out := []Assignment{{PoP: primary, FromWindow: 0}}
	if windows > 4 && r.Bool(m.RemapProb) && len(ranked) > 1 {
		// Move to the next-best PoP partway through the dataset.
		alt := ranked[1]
		if alt.Name == primary.Name && len(ranked) > 2 {
			alt = ranked[2]
		}
		at := windows/4 + r.IntN(windows/2)
		out = append(out, Assignment{PoP: alt, FromWindow: at})
	}
	return out, biased
}

// PoPAt resolves the serving PoP for a window given a schedule.
func PoPAt(schedule []Assignment, window int) geo.PoP {
	cur := schedule[0].PoP
	for _, a := range schedule[1:] {
		if window >= a.FromWindow {
			cur = a.PoP
		}
	}
	return cur
}

// RTTFloor returns the propagation round trip from a population to its
// PoP — the geographic lower bound on the group's MinRTT.
func RTTFloor(loc geo.LatLon, pop geo.PoP) time.Duration {
	return geo.PropagationRTT(geo.DistanceKm(loc, pop.Loc), geo.DefaultPathStretch)
}
