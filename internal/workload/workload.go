// Package workload generates synthetic HTTP sessions whose traffic
// characteristics match the paper's §2.3 (Figures 1–3):
//
//   - Session durations: 7.4% under a second, 33% under a minute, 20%
//     over three minutes; HTTP/1.1 sessions skew shorter than HTTP/2
//     (44% vs 26% under a minute).
//   - Transaction counts: most sessions have a single transaction; over
//     87% of HTTP/1.1 and 75% of HTTP/2 sessions have fewer than 5; yet
//     sessions with 50+ transactions carry more than half of all bytes.
//   - Response sizes: over 50% of responses are under 6 KB; media
//     endpoints serve larger objects (median ~19 KB) with a heavy video
//     tail; 58% of sessions transfer under 10 KB while 6% exceed 1 MB.
//
// The generator substitutes for Facebook's production traffic: the
// measurement pipeline consumes the same per-transaction observations it
// would capture from real load balancers.
package workload

import (
	"math"
	"time"

	"repro/internal/rng"
	"repro/internal/sample"
)

// TxnSpec is one transaction within a session.
type TxnSpec struct {
	// Bytes is the response size.
	Bytes int64
	// At is the transaction's start offset within the session.
	At time.Duration
}

// SessionSpec is a generated HTTP session before network simulation.
type SessionSpec struct {
	Proto    sample.Protocol
	Duration time.Duration
	Media    bool // served by an image/video endpoint
	Txns     []TxnSpec
}

// TotalBytes sums the transaction sizes.
func (s SessionSpec) TotalBytes() int64 {
	var t int64
	for _, x := range s.Txns {
		t += x.Bytes
	}
	return t
}

// Config tunes the generator. The zero value selects the calibrated
// defaults in DefaultConfig.
type Config struct {
	// H2Share is the fraction of sessions using HTTP/2.
	H2Share float64
	// MediaShare is the fraction of sessions served by media endpoints.
	MediaShare float64
	// MaxResponsesRecorded bounds the per-session response list retained
	// on samples (sessions can have 1000+ transactions).
	MaxResponsesRecorded int
}

// DefaultConfig returns parameters calibrated against §2.3.
func DefaultConfig() Config {
	return Config{
		H2Share:              0.55,
		MediaShare:           0.25,
		MaxResponsesRecorded: 32,
	}
}

// durBucket parameterises the piecewise duration model.
type durBucket struct {
	weight float64
	lo, hi time.Duration
	pareto bool // heavy tail within the bucket
}

// Duration bucket tables per protocol, solving the Figure 1a anchors:
// overall P(<1s)=7.4%, P(<60s)=33%, P(>180s)=20% with
// H1 P(<60s)=44% and H2 P(<60s)=26% at H2Share=0.55.
var (
	h1DurBuckets = []durBucket{
		{0.09, 50 * time.Millisecond, time.Second, false},
		{0.35, time.Second, 60 * time.Second, false},
		{0.39, 60 * time.Second, 180 * time.Second, false},
		{0.17, 180 * time.Second, 3600 * time.Second, true},
	}
	h2DurBuckets = []durBucket{
		{0.06, 50 * time.Millisecond, time.Second, false},
		{0.20, time.Second, 60 * time.Second, false},
		{0.51, 60 * time.Second, 180 * time.Second, false},
		{0.23, 180 * time.Second, 3600 * time.Second, true},
	}
)

// txnBucket parameterises the transaction-count model (Figure 3).
type txnBucket struct {
	weight float64
	lo, hi int
}

var (
	h1TxnBuckets = []txnBucket{
		{0.56, 1, 1},
		{0.32, 2, 4},
		{0.10, 5, 49},
		{0.02, 50, 1000},
	}
	h2TxnBuckets = []txnBucket{
		{0.41, 1, 1},
		{0.35, 2, 4},
		{0.19, 5, 49},
		{0.05, 50, 1000},
	}
)

// Generator produces session specs from a deterministic stream.
type Generator struct {
	cfg Config
	r   *rng.RNG

	h1Dur, h2Dur *rng.Categorical
	h1Txn, h2Txn *rng.Categorical
}

// NewGenerator builds a generator over the given stream.
func NewGenerator(r *rng.RNG, cfg Config) *Generator {
	def := DefaultConfig()
	if cfg.H2Share <= 0 {
		cfg.H2Share = def.H2Share
	}
	if cfg.MediaShare <= 0 {
		cfg.MediaShare = def.MediaShare
	}
	if cfg.MaxResponsesRecorded <= 0 {
		cfg.MaxResponsesRecorded = def.MaxResponsesRecorded
	}
	weights := func(bs []durBucket) []float64 {
		w := make([]float64, len(bs))
		for i, b := range bs {
			w[i] = b.weight
		}
		return w
	}
	tweights := func(bs []txnBucket) []float64 {
		w := make([]float64, len(bs))
		for i, b := range bs {
			w[i] = b.weight
		}
		return w
	}
	return &Generator{
		cfg:   cfg,
		r:     r,
		h1Dur: rng.NewCategorical(weights(h1DurBuckets)),
		h2Dur: rng.NewCategorical(weights(h2DurBuckets)),
		h1Txn: rng.NewCategorical(tweights(h1TxnBuckets)),
		h2Txn: rng.NewCategorical(tweights(h2TxnBuckets)),
	}
}

// Session draws one session spec.
func (g *Generator) Session() SessionSpec {
	proto := sample.HTTP1
	durCat, txnCat := g.h1Dur, g.h1Txn
	durBuckets, txnBuckets := h1DurBuckets, h1TxnBuckets
	if g.r.Bool(g.cfg.H2Share) {
		proto = sample.HTTP2
		durCat, txnCat = g.h2Dur, g.h2Txn
		durBuckets, txnBuckets = h2DurBuckets, h2TxnBuckets
	}
	media := g.r.Bool(g.cfg.MediaShare)

	dur := g.drawDuration(durBuckets[durCat.Sample(g.r)])
	n := g.drawTxnCount(txnBuckets[txnCat.Sample(g.r)])

	spec := SessionSpec{Proto: proto, Duration: dur, Media: media}
	spec.Txns = make([]TxnSpec, n)
	for i := range spec.Txns {
		spec.Txns[i] = TxnSpec{Bytes: g.ResponseSize(media)}
	}
	g.placeTxns(&spec)
	return spec
}

// drawDuration samples within a bucket: log-uniform for the bounded
// buckets, bounded Pareto for the tail.
func (g *Generator) drawDuration(b durBucket) time.Duration {
	if b.pareto {
		sec := g.r.BoundedPareto(b.lo.Seconds(), 1.3, b.hi.Seconds())
		return time.Duration(sec * float64(time.Second))
	}
	// Log-uniform between lo and hi keeps short sessions well populated.
	lo, hi := float64(b.lo), float64(b.hi)
	u := g.r.Float64()
	return time.Duration(lo * math.Pow(hi/lo, u))
}

func (g *Generator) drawTxnCount(b txnBucket) int {
	if b.lo == b.hi {
		return b.lo
	}
	if b.hi-b.lo <= 8 {
		return b.lo + g.r.IntN(b.hi-b.lo+1)
	}
	// Heavy-tailed within wide buckets.
	v := int(g.r.BoundedPareto(float64(b.lo), 1.1, float64(b.hi)))
	if v < b.lo {
		v = b.lo
	}
	if v > b.hi {
		v = b.hi
	}
	return v
}

// ResponseSize draws one response size. Dynamic content (API responses,
// rendered HTML) is log-normal around a few KB; media endpoints serve
// larger objects with a heavy video-chunk tail.
func (g *Generator) ResponseSize(media bool) int64 {
	if media {
		if g.r.Bool(0.12) {
			// Streaming-video chunk: 100 KB – 4 MB, heavy tailed.
			return int64(g.r.BoundedPareto(100_000, 1.1, 4_000_000))
		}
		v := g.r.LogNormalMedian(19_000, 1.0)
		return clampI64(int64(v), 200, 2_000_000)
	}
	// Half of all objects fetched are under ~3 KB (§1, §2.3): API
	// responses, rendered HTML and other dynamic content.
	v := g.r.LogNormalMedian(1_700, 1.25)
	return clampI64(int64(v), 80, 500_000)
}

func clampI64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// placeTxns spreads transactions across the session: the first at the
// start, the rest at sorted uniform offsets (sessions are mostly idle —
// Figure 1b emerges because transfer time is small versus duration).
func (g *Generator) placeTxns(spec *SessionSpec) {
	n := len(spec.Txns)
	if n == 0 {
		return
	}
	spec.Txns[0].At = 0
	if n == 1 {
		return
	}
	// Draw offsets uniformly over the first 90% of the session and sort
	// by insertion (simple selection keeps it O(n log n) via sort-free
	// sampling: draw sorted uniforms via exponential spacings).
	total := 0.0
	spac := make([]float64, n-1)
	for i := range spac {
		spac[i] = g.r.Exponential(1)
		total += spac[i]
	}
	total += g.r.Exponential(1) // final gap to session end
	at := 0.0
	horizon := float64(spec.Duration) * 0.9
	for i := 1; i < n; i++ {
		at += spac[i-1]
		spec.Txns[i].At = time.Duration(at / total * horizon)
	}
}

// RecordedResponses returns the response sizes to retain on the sample,
// truncated per config.
func (g *Generator) RecordedResponses(spec SessionSpec) []int64 {
	n := len(spec.Txns)
	if n > g.cfg.MaxResponsesRecorded {
		n = g.cfg.MaxResponsesRecorded
	}
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = spec.Txns[i].Bytes
	}
	return out
}
