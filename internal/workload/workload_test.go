package workload

import (
	"sort"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sample"
)

// genSessions draws n sessions with the default config.
func genSessions(t *testing.T, n int) []SessionSpec {
	t.Helper()
	g := NewGenerator(rng.New(1), Config{})
	out := make([]SessionSpec, n)
	for i := range out {
		out[i] = g.Session()
	}
	return out
}

func fracBelow(durs []time.Duration, cut time.Duration) float64 {
	n := 0
	for _, d := range durs {
		if d < cut {
			n++
		}
	}
	return float64(n) / float64(len(durs))
}

// TestFig1aShape checks the session-duration anchors from Figure 1a.
func TestFig1aShape(t *testing.T) {
	specs := genSessions(t, 40000)
	var all, h1, h2 []time.Duration
	for _, s := range specs {
		all = append(all, s.Duration)
		if s.Proto == sample.HTTP1 {
			h1 = append(h1, s.Duration)
		} else {
			h2 = append(h2, s.Duration)
		}
	}
	checks := []struct {
		name      string
		durs      []time.Duration
		cut       time.Duration
		want, tol float64
	}{
		{"all <1s", all, time.Second, 0.074, 0.02},
		{"all <1min", all, time.Minute, 0.33, 0.04},
		{"h1 <1min", h1, time.Minute, 0.44, 0.04},
		{"h2 <1min", h2, time.Minute, 0.26, 0.04},
	}
	for _, c := range checks {
		got := fracBelow(c.durs, c.cut)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s = %.3f, want %.3f ± %.3f", c.name, got, c.want, c.tol)
		}
	}
	// 20% over 3 minutes.
	over := 1 - fracBelow(all, 3*time.Minute)
	if over < 0.16 || over > 0.25 {
		t.Errorf("frac >3min = %.3f, want ~0.20", over)
	}
}

// TestFig3Shape checks the transaction-count anchors from Figure 3.
func TestFig3Shape(t *testing.T) {
	specs := genSessions(t, 40000)
	frac := func(proto sample.Protocol, below int) float64 {
		n, hit := 0, 0
		for _, s := range specs {
			if s.Proto != proto {
				continue
			}
			n++
			if len(s.Txns) < below {
				hit++
			}
		}
		return float64(hit) / float64(n)
	}
	if got := frac(sample.HTTP1, 5); got < 0.84 || got > 0.92 {
		t.Errorf("h1 <5 txns = %.3f, want ~0.87", got)
	}
	if got := frac(sample.HTTP2, 5); got < 0.71 || got > 0.80 {
		t.Errorf("h2 <5 txns = %.3f, want ~0.75", got)
	}
	// Sessions with ≥50 transactions must carry more than half the bytes.
	var bigBytes, totalBytes int64
	for _, s := range specs {
		b := s.TotalBytes()
		totalBytes += b
		if len(s.Txns) >= 50 {
			bigBytes += b
		}
	}
	if share := float64(bigBytes) / float64(totalBytes); share < 0.5 {
		t.Errorf("≥50-txn sessions carry %.3f of bytes, want >0.5", share)
	}
}

// TestFig2Shape checks the size anchors from Figure 2.
func TestFig2Shape(t *testing.T) {
	specs := genSessions(t, 40000)
	var sessionBytes []int64
	var responses, mediaResponses []int64
	for _, s := range specs {
		sessionBytes = append(sessionBytes, s.TotalBytes())
		for _, txn := range s.Txns {
			responses = append(responses, txn.Bytes)
			if s.Media {
				mediaResponses = append(mediaResponses, txn.Bytes)
			}
		}
	}
	fracBelowI := func(xs []int64, cut int64) float64 {
		n := 0
		for _, x := range xs {
			if x < cut {
				n++
			}
		}
		return float64(n) / float64(len(xs))
	}
	median := func(xs []int64) int64 {
		s := append([]int64(nil), xs...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2]
	}
	// 58% of sessions transfer <10 KB.
	if got := fracBelowI(sessionBytes, 10_000); got < 0.48 || got > 0.68 {
		t.Errorf("sessions <10KB = %.3f, want ~0.58", got)
	}
	// ~6% of sessions transfer >1 MB.
	over1MB := 1 - fracBelowI(sessionBytes, 1_000_000)
	if over1MB < 0.02 || over1MB > 0.12 {
		t.Errorf("sessions >1MB = %.3f, want ~0.06", over1MB)
	}
	// Over 50% of responses are <6 KB.
	if got := fracBelowI(responses, 6_000); got < 0.5 {
		t.Errorf("responses <6KB = %.3f, want >0.5", got)
	}
	// Media responses have a median around 19 KB.
	if m := median(mediaResponses); m < 10_000 || m > 35_000 {
		t.Errorf("media median = %d, want ~19000", m)
	}
	// Half of object fetches are tiny (50% under ~3-6 KB band).
	if m := median(responses); m > 6_000 {
		t.Errorf("overall response median = %d, want <6000", m)
	}
}

func TestTxnPlacement(t *testing.T) {
	g := NewGenerator(rng.New(3), Config{})
	for i := 0; i < 2000; i++ {
		s := g.Session()
		if len(s.Txns) == 0 {
			t.Fatal("session with no transactions")
		}
		if s.Txns[0].At != 0 {
			t.Fatalf("first transaction at %v, want 0", s.Txns[0].At)
		}
		prev := time.Duration(0)
		for _, txn := range s.Txns {
			if txn.At < prev {
				t.Fatal("transactions not time-ordered")
			}
			if txn.At > s.Duration {
				t.Fatalf("transaction at %v beyond session duration %v", txn.At, s.Duration)
			}
			if txn.Bytes <= 0 {
				t.Fatal("non-positive response size")
			}
			prev = txn.At
		}
	}
}

func TestRecordedResponsesTruncates(t *testing.T) {
	g := NewGenerator(rng.New(5), Config{MaxResponsesRecorded: 4})
	spec := SessionSpec{Txns: make([]TxnSpec, 10)}
	for i := range spec.Txns {
		spec.Txns[i].Bytes = int64(i + 1)
	}
	got := g.RecordedResponses(spec)
	if len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("RecordedResponses = %v", got)
	}
}

func TestDeterministic(t *testing.T) {
	g1 := NewGenerator(rng.New(9), Config{})
	g2 := NewGenerator(rng.New(9), Config{})
	for i := 0; i < 100; i++ {
		a, b := g1.Session(), g2.Session()
		if a.Proto != b.Proto || a.Duration != b.Duration || len(a.Txns) != len(b.Txns) {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	g := NewGenerator(rng.New(1), Config{})
	if g.cfg.H2Share != 0.55 || g.cfg.MediaShare != 0.25 {
		t.Errorf("defaults not applied: %+v", g.cfg)
	}
}

func BenchmarkSessionGeneration(b *testing.B) {
	g := NewGenerator(rng.New(1), Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Session()
	}
}
