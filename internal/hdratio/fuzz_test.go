package hdratio

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

// FuzzEvaluate drives the methodology with arbitrary observations: it
// must never panic, and its outputs must respect the structural
// invariants (achieved ⊆ tested, HDratio ∈ [0,1], Gtestable ≥ 0).
func FuzzEvaluate(f *testing.F) {
	f.Add(int64(36000), int64(120), int64(15000), int64(60), false)
	f.Add(int64(0), int64(0), int64(0), int64(0), true)
	f.Add(int64(-5), int64(-7), int64(-1), int64(-2), false)
	f.Add(int64(1<<40), int64(1), int64(1<<50), int64(1), false)
	f.Fuzz(func(t *testing.T, bytes, durMs, wnic, rttMs int64, inel bool) {
		sess := Session{
			MinRTT: time.Duration(rttMs) * time.Millisecond,
			Transactions: []Transaction{
				{Bytes: bytes, Duration: time.Duration(durMs) * time.Millisecond, Wnic: wnic, Ineligible: inel},
				{Bytes: bytes / 2, Duration: time.Duration(durMs) * time.Millisecond * 2, Wnic: wnic},
			},
		}
		out := Evaluate(sess, DefaultConfig())
		if out.AchievedCount > out.Tested {
			t.Fatalf("achieved %d > tested %d", out.AchievedCount, out.Tested)
		}
		if hd := out.HDratio(); !math.IsNaN(hd) && (hd < 0 || hd > 1) {
			t.Fatalf("HDratio out of range: %v", hd)
		}
		for _, txn := range out.Transactions {
			if txn.Gtestable < 0 {
				t.Fatalf("negative Gtestable: %v", txn.Gtestable)
			}
		}
	})
}

// FuzzHDRatioClassify classifies whole sessions with arbitrary
// transaction chains through both estimators (§4.1's full model and the
// §4.2 simplification): neither may panic, achieved stays within
// tested, tested stays within the chain length, and the HD ratio is
// NaN (nothing tested) or in [0,1].
func FuzzHDRatioClassify(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 0, 50, 60, 70, 80, 1}, int64(60))
	f.Add([]byte{}, int64(0))
	f.Add([]byte{255, 255, 255, 255, 255}, int64(-10))
	f.Fuzz(func(t *testing.T, raw []byte, rttMs int64) {
		if rttMs < -1000 || rttMs > 1e7 {
			return
		}
		var txns []Transaction
		for i := 0; i+4 < len(raw); i += 5 {
			txns = append(txns, Transaction{
				Bytes:      int64(raw[i])<<12 - 1000,
				Duration:   time.Duration(int64(raw[i+1])<<10-5000) * time.Microsecond,
				Wnic:       int64(raw[i+2])<<8 | int64(raw[i+3]),
				Ineligible: raw[i+4]&1 == 1,
			})
		}
		sess := Session{
			MinRTT:       time.Duration(rttMs) * time.Millisecond,
			Transactions: txns,
		}
		for _, out := range []Outcome{
			Evaluate(sess, DefaultConfig()),
			EvaluateSimple(sess, DefaultConfig()),
		} {
			if out.Tested > len(txns) {
				t.Fatalf("tested %d > %d transactions", out.Tested, len(txns))
			}
			if out.AchievedCount > out.Tested {
				t.Fatalf("achieved %d > tested %d", out.AchievedCount, out.Tested)
			}
			if hd := out.HDratio(); !math.IsNaN(hd) && (hd < 0 || hd > 1) {
				t.Fatalf("HDratio out of range: %v", hd)
			}
		}
	})
}

// FuzzTmodel checks the model time is always nonnegative and at least
// the pure transmission time.
func FuzzTmodel(f *testing.F) {
	f.Add(int64(36000), int64(15000), int64(60), 2.5)
	f.Add(int64(1), int64(1), int64(1), 0.001)
	f.Fuzz(func(t *testing.T, btotal, wnic, rttMs int64, mbps float64) {
		if mbps <= 0 || mbps > 1e5 || math.IsNaN(mbps) {
			return
		}
		if rttMs < 0 || rttMs > 1e6 || btotal > 1<<45 {
			return
		}
		r := units.Rate(mbps * 1e6)
		got := Tmodel(r, btotal, wnic, time.Duration(rttMs)*time.Millisecond)
		if got < 0 {
			t.Fatalf("negative Tmodel: %v", got)
		}
		if btotal > 0 && got < r.TimeFor(btotal)-time.Microsecond {
			t.Fatalf("Tmodel %v below transmission floor %v", got, r.TimeFor(btotal))
		}
	})
}
