package hdratio_test

import (
	"math"
	"testing"

	"repro/internal/hdratio"
	"repro/internal/sample"
	"repro/internal/world"
)

// Ratios must encode exactly what sample.HDratio/SimpleHDratio compute
// row by row: NaN where the row method reports undefined, the identical
// quotient bits where defined.
func TestRatiosMatchRowMethods(t *testing.T) {
	w := world.New(world.Config{Seed: 3, Groups: 5, Days: 1, SessionsPerGroupWindow: 4})
	rows := w.GenerateAll()
	rows = append(rows, sample.Sample{HDTested: 0, HDAchieved: 0, SimpleAchieved: 0})

	var ach, tst, sja []int64
	for _, r := range rows {
		ach = append(ach, int64(r.HDAchieved))
		tst = append(tst, int64(r.HDTested))
		sja = append(sja, int64(r.SimpleAchieved))
	}
	hd := hdratio.Ratios(nil, ach, tst)
	shd := hdratio.Ratios(nil, sja, tst)
	if len(hd) != len(rows) || len(shd) != len(rows) {
		t.Fatalf("Ratios returned %d/%d values for %d rows", len(hd), len(shd), len(rows))
	}
	sawUndefined := false
	for i, r := range rows {
		want, ok := r.HDratio()
		if !ok {
			sawUndefined = true
			if !math.IsNaN(hd[i]) {
				t.Fatalf("row %d: undefined ratio encoded as %v, want NaN", i, hd[i])
			}
		} else if hd[i] != want {
			t.Fatalf("row %d: ratio %v, want %v", i, hd[i], want)
		}
		swant, sok := r.SimpleHDratio()
		if !sok {
			if !math.IsNaN(shd[i]) {
				t.Fatalf("row %d: undefined simple ratio encoded as %v, want NaN", i, shd[i])
			}
		} else if shd[i] != swant {
			t.Fatalf("row %d: simple ratio %v, want %v", i, shd[i], swant)
		}
	}
	if !sawUndefined {
		t.Fatal("fixture never exercised the undefined-ratio case")
	}

	// Appending to a non-empty dst preserves the prefix.
	pre := []float64{42}
	out := hdratio.Ratios(pre, ach[:3], tst[:3])
	if out[0] != 42 || len(out) != 4 {
		t.Fatalf("Ratios with prefix: got %v", out)
	}
}

// ClassifyExtremes over a Ratios column agrees with the row-level
// classification.
func TestClassifyExtremes(t *testing.T) {
	ach := []int64{0, 5, 5, 3, 0}
	tst := []int64{5, 5, 0, 5, 0}
	rs := hdratio.Ratios(nil, ach, tst)
	zero, one, defined := hdratio.ClassifyExtremes(rs)
	if zero != 1 || one != 1 || defined != 3 {
		t.Fatalf("ClassifyExtremes = (%d, %d, %d), want (1, 1, 3)", zero, one, defined)
	}
}
