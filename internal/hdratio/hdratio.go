// Package hdratio implements the paper's core contribution (§3.2): a
// server-side methodology for estimating whether production HTTP
// transactions could *test for* a target goodput and, if so, whether they
// *achieved* it — robust to small responses, cwnd state carried across
// transactions, and transmission time at unknown bottleneck links.
//
// The methodology has three parts:
//
//  1. Gtestable (§3.2.2, equations 1–3): the maximum goodput a
//     transaction could demonstrate under ideal network conditions, given
//     its response size and the congestion window at its start. The cwnd
//     at the start of each transaction is chained across the session
//     assuming ideal growth (Wstart), so poor network conditions cannot
//     mask themselves by shrinking the cwnd.
//
//  2. Tmodel (§3.2.3): the best-case transfer time of a model transaction
//     through a bottleneck of rate R, starting from the *measured* cwnd
//     Wnic, doubling each round trip until the cwnd supports R, then
//     streaming at R, plus one round trip for the final acknowledgment. A
//     real transaction achieved rate R if its measured duration is at
//     most Tmodel(R).
//
//  3. HDratio (§3.2.4): per HTTP session, the fraction of transactions
//     that achieved the target among those that could test for it.
//
// Capture-side rules (delayed-ACK correction, HTTP/2 coalescing,
// bytes-in-flight eligibility, §3.2.5) live in package proxygen; this
// package consumes the corrected per-transaction observations.
package hdratio

import (
	"math"
	"time"

	"repro/internal/units"
)

// Config parameterises the methodology.
type Config struct {
	// Target is the goodput being tested for. The paper uses 2.5 Mbps,
	// the minimum bitrate for HD video ("HD goodput").
	Target units.Rate
	// MSS is the maximum segment size in bytes, used only by helpers
	// that convert packet counts.
	MSS int
}

// DefaultConfig is the paper's production configuration.
func DefaultConfig() Config {
	return Config{Target: units.HDGoodput, MSS: units.DefaultMSS}
}

// Transaction is one HTTP transaction as observed by the load balancer,
// after capture-side correction (§3.2.5): Bytes excludes the final
// packet, and Duration runs from the first response byte reaching the
// NIC to the ACK covering the second-to-last packet.
type Transaction struct {
	// Bytes is Btotal: response bytes counted toward goodput.
	Bytes int64
	// Duration is Ttotal: the corrected transfer duration.
	Duration time.Duration
	// Wnic is the congestion window, in bytes, measured when the first
	// response byte was written to the NIC.
	Wnic int64
	// Ineligible marks transactions that cannot be used for goodput
	// measurement because a previous response was still in flight when
	// this one started and the coalescing conditions were not met
	// (§3.2.5 "Bytes in Flight"). Ineligible transactions still advance
	// the ideal cwnd chain.
	Ineligible bool
}

// Session is an HTTP session's goodput-relevant observations. MinRTT is
// the minimum round-trip time reported by the transport at session
// termination (§3.1).
type Session struct {
	MinRTT       time.Duration
	Transactions []Transaction
}

// IdealRounds returns m, the number of round trips required to transfer
// btotal bytes when the congestion window starts at wstart bytes and
// doubles every round trip (equation 1): m = ⌈log2(Btotal/Wstart + 1)⌉.
func IdealRounds(btotal, wstart int64) int {
	if btotal <= 0 {
		return 0
	}
	if wstart <= 0 {
		wstart = 1
	}
	m := int(math.Ceil(math.Log2(float64(btotal)/float64(wstart) + 1)))
	if m < 1 {
		m = 1
	}
	// Guard against floating point at the boundary: ensure the window sum
	// over m rounds actually covers btotal, and that m-1 rounds do not.
	for sumWindows(wstart, m) < btotal {
		m++
	}
	for m > 1 && sumWindows(wstart, m-1) >= btotal {
		m--
	}
	return m
}

// WSS returns the congestion window, in bytes, at the start of the n-th
// round trip under ideal growth (equation 2): WSS(n) = 2^(n−1) × Wstart.
func WSS(n int, wstart int64) int64 {
	if n < 1 {
		return 0
	}
	if n-1 >= 62 {
		return math.MaxInt64 / 2
	}
	v := wstart << uint(n-1)
	if v < 0 { // overflow
		return math.MaxInt64 / 2
	}
	return v
}

// sumWindows returns the total bytes deliverable in m ideal rounds:
// Σ_{i=1..m} WSS(i) = Wstart × (2^m − 1).
func sumWindows(wstart int64, m int) int64 {
	if m <= 0 {
		return 0
	}
	if m >= 62 {
		return math.MaxInt64 / 2
	}
	v := wstart * ((1 << uint(m)) - 1)
	if v < 0 {
		return math.MaxInt64 / 2
	}
	return v
}

// Gtestable returns the maximum goodput a transaction can test for under
// ideal conditions (equation 3): the larger of the bytes sent in the
// last or penultimate round trip, divided by MinRTT. For single-round
// transactions the whole response transfers in one round trip.
func Gtestable(btotal, wstart int64, minRTT time.Duration) units.Rate {
	if btotal <= 0 || minRTT <= 0 {
		return 0
	}
	if wstart <= 0 {
		wstart = 1
	}
	m := IdealRounds(btotal, wstart)
	if m == 1 {
		return units.RateOf(btotal, minRTT)
	}
	penultimate := WSS(m-1, wstart)
	last := btotal - sumWindows(wstart, m-1)
	best := penultimate
	if last > best {
		best = last
	}
	return units.RateOf(best, minRTT)
}

// IdealEndWindow returns the modelled cwnd at the end of a transaction
// under ideal growth: WSS(m) where m is the transaction's ideal round
// count (§3.2.2, footnote 4). It is a lower bound because growth during
// the final round trip is ignored.
func IdealEndWindow(btotal, wstart int64) int64 {
	if btotal <= 0 {
		return wstart
	}
	return WSS(IdealRounds(btotal, wstart), wstart)
}

// ChainWstart computes the Wstart values for a session's transactions:
// the first transaction uses its measured Wnic; each subsequent
// transaction uses the maximum of its measured Wnic and the ideal cwnd
// at the end of the previous transaction (§3.2.2). This prevents poor
// network conditions (which shrink the real cwnd) from hiding evidence
// of poor performance by making transactions look untestable.
func ChainWstart(txns []Transaction) []int64 {
	out := make([]int64, len(txns))
	var idealEnd int64
	for i, txn := range txns {
		w := txn.Wnic
		if i > 0 && idealEnd > w {
			w = idealEnd
		}
		if w <= 0 {
			w = 1
		}
		out[i] = w
		idealEnd = IdealEndWindow(txn.Bytes, w)
	}
	return out
}

// Tmodel returns the best-case transfer time of a model transaction of
// btotal bytes through a bottleneck of rate r (§3.2.3): the model doubles
// its cwnd from wnic each round trip until the cwnd supports rate r,
// streams the remaining bytes at r, and waits one round trip for the
// final acknowledgment. If the transfer completes during slow start the
// time is the slow-start round count times MinRTT.
func Tmodel(r units.Rate, btotal, wnic int64, minRTT time.Duration) time.Duration {
	if btotal <= 0 {
		return 0
	}
	if wnic <= 0 {
		wnic = 1
	}
	if r <= 0 {
		return time.Duration(math.MaxInt64)
	}
	bdp := r.BytesIn(minRTT)
	var sent int64
	cwnd := wnic
	n := 0
	for cwnd < bdp {
		if sent+cwnd >= btotal {
			// Completes within slow start: n full rounds already spent,
			// plus this final round (send + ACK).
			return time.Duration(n+1) * minRTT
		}
		sent += cwnd
		cwnd <<= 1
		if cwnd <= 0 {
			cwnd = math.MaxInt64 / 2
		}
		n++
	}
	remaining := btotal - sent
	if remaining < 0 {
		remaining = 0
	}
	return time.Duration(n)*minRTT + r.TimeFor(remaining) + minRTT
}

// Achieved reports whether a transaction achieved rate r: its measured
// duration is no longer than the best-case model time through a
// bottleneck of rate r.
func Achieved(txn Transaction, r units.Rate, minRTT time.Duration) bool {
	if txn.Bytes <= 0 || txn.Duration <= 0 {
		return false
	}
	return txn.Duration <= Tmodel(r, txn.Bytes, txn.Wnic, minRTT)
}

// maxEstimableRate caps the delivery-rate search: when a transaction
// completes in the minimum possible time the model cannot distinguish
// rates beyond this.
const maxEstimableRate = 100 * units.Gbps

// EstimateDeliveryRate returns the largest rate R such that the
// transaction's duration is at most Tmodel(R) — the methodology's
// estimate of how fast the network delivered the response (§3.2.3). The
// estimate is capped at 100 Gbps.
func EstimateDeliveryRate(txn Transaction, minRTT time.Duration) units.Rate {
	if txn.Bytes <= 0 || txn.Duration <= 0 {
		return 0
	}
	if !Achieved(txn, 1, minRTT) { // cannot even sustain 1 bps
		return 0
	}
	if Achieved(txn, maxEstimableRate, minRTT) {
		return maxEstimableRate
	}
	lo, hi := units.Rate(1), maxEstimableRate
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if Achieved(txn, mid, minRTT) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// SimpleRate is the naive baseline the paper compares against in §4:
// overall transaction goodput Btotal ÷ Ttotal with no correction for
// round trips spent growing the cwnd or for propagation delay. It
// systematically underestimates achieved goodput for small transactions.
func SimpleRate(txn Transaction) units.Rate {
	return units.RateOf(txn.Bytes, txn.Duration)
}

// TxnOutcome describes how one transaction fared against the target.
type TxnOutcome struct {
	// Wstart is the chained ideal starting window used for testability.
	Wstart int64
	// Testable is true when Gtestable ≥ the target (§3.2.2).
	Testable bool
	// AchievedTarget is true when the transaction was testable and its
	// duration beat the model time at the target rate.
	AchievedTarget bool
	// Gtestable is the maximum goodput this transaction could test for.
	Gtestable units.Rate
}

// Outcome summarises a session (§3.2.4).
type Outcome struct {
	// Tested is the number of transactions capable of testing for the
	// target goodput.
	Tested int
	// AchievedCount is how many of those achieved it.
	AchievedCount int
	// Transactions holds the per-transaction detail, aligned with the
	// session's transaction slice.
	Transactions []TxnOutcome
}

// HDratio returns achieved/tested, or NaN when no transaction could test
// for the target (in which case the session says nothing about network
// conditions, §3.2.2).
func (o Outcome) HDratio() float64 {
	if o.Tested == 0 {
		return math.NaN()
	}
	return float64(o.AchievedCount) / float64(o.Tested)
}

// Evaluate runs the full methodology over a session.
func Evaluate(sess Session, cfg Config) Outcome {
	if cfg.Target <= 0 {
		cfg.Target = units.HDGoodput
	}
	wstarts := ChainWstart(sess.Transactions)
	out := Outcome{Transactions: make([]TxnOutcome, len(sess.Transactions))}
	for i, txn := range sess.Transactions {
		to := TxnOutcome{Wstart: wstarts[i]}
		to.Gtestable = Gtestable(txn.Bytes, wstarts[i], sess.MinRTT)
		if !txn.Ineligible && to.Gtestable >= cfg.Target {
			to.Testable = true
			out.Tested++
			if Achieved(txn, cfg.Target, sess.MinRTT) {
				to.AchievedTarget = true
				out.AchievedCount++
			}
		}
		out.Transactions[i] = to
	}
	return out
}

// EvaluateSimple mirrors Evaluate but decides achievement with the naive
// SimpleRate baseline (still using Gtestable for testability, as the
// paper's §4 ablation does). Used to reproduce the "median HDratio 0.69"
// underestimate.
func EvaluateSimple(sess Session, cfg Config) Outcome {
	if cfg.Target <= 0 {
		cfg.Target = units.HDGoodput
	}
	wstarts := ChainWstart(sess.Transactions)
	out := Outcome{Transactions: make([]TxnOutcome, len(sess.Transactions))}
	for i, txn := range sess.Transactions {
		to := TxnOutcome{Wstart: wstarts[i]}
		to.Gtestable = Gtestable(txn.Bytes, wstarts[i], sess.MinRTT)
		if !txn.Ineligible && to.Gtestable >= cfg.Target {
			to.Testable = true
			out.Tested++
			if SimpleRate(txn) >= cfg.Target {
				to.AchievedTarget = true
				out.AchievedCount++
			}
		}
		out.Transactions[i] = to
	}
	return out
}
