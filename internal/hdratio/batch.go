package hdratio

import "math"

// Ratios computes per-session HD ratios from parallel achieved/tested
// count columns, appending to dst and returning it. A session with no
// testable transactions (tested == 0) has no defined ratio and yields
// NaN — the column-path encoding of sample.Sample.HDratio's (0, false).
// Defined ratios are float64(achieved)/float64(tested), the exact
// expression the row path evaluates, so downstream digests see
// bit-identical values.
func Ratios(dst []float64, achieved, tested []int64) []float64 {
	for i := range tested {
		if tested[i] == 0 {
			dst = append(dst, math.NaN())
			continue
		}
		dst = append(dst, float64(achieved[i])/float64(tested[i]))
	}
	return dst
}

// ClassifyExtremes counts the defined ratios in rs (non-NaN) and how
// many sit at the distribution's edges — the §4.1 "all-or-nothing"
// breakdown (most sessions achieve HD for all transactions or none).
func ClassifyExtremes(rs []float64) (zero, one, defined int) {
	for _, r := range rs {
		if math.IsNaN(r) {
			continue
		}
		defined++
		if r == 0 {
			zero++
		} else if r == 1 {
			one++
		}
	}
	return zero, one, defined
}
