package hdratio

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
	"repro/internal/units"
)

const (
	mss    = 1500
	iw10   = 10 * mss // initial window of 10 packets, as in Figure 4
	rtt60  = 60 * time.Millisecond
	target = units.HDGoodput
)

func pkts(n int) int64 { return int64(n * mss) }

func TestIdealRounds(t *testing.T) {
	tests := []struct {
		name   string
		btotal int64
		wstart int64
		want   int
	}{
		{"fig4 txn1: 2 pkts, IW10", pkts(2), iw10, 1},
		{"fig4 txn2: 24 pkts, IW10", pkts(24), iw10, 2},
		{"fig4 txn3: 14 pkts, W20", pkts(14), pkts(20), 1},
		{"exactly one window", 15000, 15000, 1},
		{"one byte over window", 15001, 15000, 2},
		{"exactly two rounds", 45000, 15000, 2}, // 15000 + 30000
		{"one byte over two rounds", 45001, 15000, 3},
		{"zero bytes", 0, 15000, 0},
		{"tiny window", 100, 1, 7}, // 1+2+4+...+64=127 ≥ 100; 63 < 100
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IdealRounds(tt.btotal, tt.wstart); got != tt.want {
				t.Errorf("IdealRounds(%d, %d) = %d, want %d", tt.btotal, tt.wstart, got, tt.want)
			}
		})
	}
}

func TestIdealRoundsInvariants(t *testing.T) {
	f := func(b uint32, w uint16) bool {
		btotal := int64(b%1000000) + 1
		wstart := int64(w%5000) + 1
		m := IdealRounds(btotal, wstart)
		if m < 1 {
			return false
		}
		// m rounds must cover btotal; m-1 must not.
		return sumWindows(wstart, m) >= btotal &&
			(m == 1 || sumWindows(wstart, m-1) < btotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWSS(t *testing.T) {
	if got := WSS(1, iw10); got != iw10 {
		t.Errorf("WSS(1) = %d, want %d", got, iw10)
	}
	if got := WSS(2, iw10); got != 2*iw10 {
		t.Errorf("WSS(2) = %d, want %d", got, 2*iw10)
	}
	if got := WSS(0, iw10); got != 0 {
		t.Errorf("WSS(0) = %d, want 0", got)
	}
	// Overflow guard.
	if got := WSS(80, 1<<40); got <= 0 {
		t.Errorf("WSS overflow guard failed: %d", got)
	}
}

func TestGtestableFigure4(t *testing.T) {
	// Transaction 1 can test for 0.4 Mbps (2 packets / 60 ms).
	g1 := Gtestable(pkts(2), iw10, rtt60)
	if math.Abs(g1.Mbps()-0.4) > 0.001 {
		t.Errorf("txn1 Gtestable = %v Mbps, want 0.4", g1.Mbps())
	}
	// Transaction 2 can test for 2.8 Mbps via its second round trip
	// (14 packets / 60 ms).
	g2 := Gtestable(pkts(24), iw10, rtt60)
	if math.Abs(g2.Mbps()-2.8) > 0.001 {
		t.Errorf("txn2 Gtestable = %v Mbps, want 2.8", g2.Mbps())
	}
	// Transaction 3, with Wstart grown to 20 packets, transfers its 14
	// packets in one round trip: 2.8 Mbps.
	g3 := Gtestable(pkts(14), pkts(20), rtt60)
	if math.Abs(g3.Mbps()-2.8) > 0.001 {
		t.Errorf("txn3 Gtestable = %v Mbps, want 2.8", g3.Mbps())
	}
}

func TestGtestableUsesPenultimateRound(t *testing.T) {
	// Last round carries fewer bytes than the penultimate: 31 packets
	// with IW10 takes 2 rounds (10+20 covers 30 < 31, so 3 rounds:
	// 10+20+1). Penultimate window = 20 pkts > last round's 1 pkt.
	g := Gtestable(pkts(31), iw10, rtt60)
	want := units.RateOf(pkts(20), rtt60)
	if math.Abs(float64(g-want)) > 1 {
		t.Errorf("Gtestable = %v, want %v (penultimate round)", g, want)
	}
}

func TestGtestableEdgeCases(t *testing.T) {
	if g := Gtestable(0, iw10, rtt60); g != 0 {
		t.Errorf("zero bytes Gtestable = %v", g)
	}
	if g := Gtestable(1000, iw10, 0); g != 0 {
		t.Errorf("zero RTT Gtestable = %v", g)
	}
	if g := Gtestable(1000, 0, rtt60); g <= 0 {
		t.Errorf("zero wstart should still work: %v", g)
	}
}

func TestChainWstartFigure4(t *testing.T) {
	txns := []Transaction{
		{Bytes: pkts(2), Wnic: iw10},
		{Bytes: pkts(24), Wnic: iw10},
		{Bytes: pkts(14), Wnic: pkts(20)},
	}
	ws := ChainWstart(txns)
	want := []int64{iw10, iw10, pkts(20)}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("Wstart[%d] = %d, want %d", i, ws[i], want[i])
		}
	}
}

func TestChainWstartIgnoresCollapsedCwnd(t *testing.T) {
	// §3.2.2: if timeouts collapsed the real cwnd to 1 packet before the
	// third transaction, the ideal chain must still credit the growth
	// from transaction 2, keeping transaction 3 testable.
	txns := []Transaction{
		{Bytes: pkts(2), Wnic: iw10},
		{Bytes: pkts(24), Wnic: iw10},
		{Bytes: pkts(14), Wnic: mss}, // collapsed to 1 packet
	}
	ws := ChainWstart(txns)
	if ws[2] != pkts(20) {
		t.Errorf("Wstart[2] = %d, want %d (ideal growth, not collapsed Wnic)", ws[2], pkts(20))
	}
	g := Gtestable(txns[2].Bytes, ws[2], rtt60)
	if g < target {
		t.Errorf("collapsed-cwnd transaction lost testability: %v", g)
	}
}

func TestChainWstartTakesLargerWnic(t *testing.T) {
	// If the measured Wnic exceeds the modelled ideal window, use it
	// (footnote 4: the model is a lower bound).
	txns := []Transaction{
		{Bytes: pkts(2), Wnic: iw10},
		{Bytes: pkts(5), Wnic: pkts(40)},
	}
	ws := ChainWstart(txns)
	if ws[1] != pkts(40) {
		t.Errorf("Wstart[1] = %d, want measured %d", ws[1], pkts(40))
	}
}

func TestTmodelSingleRound(t *testing.T) {
	// Wnic ≥ BDP: Tmodel = Btotal/R + MinRTT.
	// 21000 bytes at 2.5 Mbps = 67.2 ms, plus 60 ms RTT = 127.2 ms.
	got := Tmodel(target, pkts(14), pkts(20), rtt60)
	want := 1272 * time.Millisecond / 10
	if d := got - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("Tmodel = %v, want %v", got, want)
	}
}

func TestTmodelWithSlowStartRound(t *testing.T) {
	// Figure 4 txn2 at HD target: BDP(2.5Mbps, 60ms) = 18750 bytes >
	// Wnic 15000, so one slow-start round sends 15000 bytes, then
	// 21000 bytes stream at 2.5 Mbps (67.2 ms), plus the final RTT:
	// 60 + 67.2 + 60 = 187.2 ms.
	got := Tmodel(target, pkts(24), iw10, rtt60)
	want := 187200 * time.Microsecond
	if d := got - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("Tmodel = %v, want %v", got, want)
	}
}

func TestTmodelCompletesInSlowStart(t *testing.T) {
	// Transfer finishing during slow start costs whole round trips.
	// 2 packets with IW10 at a tiny-BDP rate... choose rate high enough
	// that BDP > Wnic: B = 25 pkts, Wnic = 10 pkts, R huge.
	r := 100 * units.Mbps // BDP at 60ms = 750000 bytes >> windows
	got := Tmodel(r, pkts(25), iw10, rtt60)
	// Rounds: 10 + 20 ≥ 25 pkts → 2 rounds → 120 ms.
	if got != 2*rtt60 {
		t.Errorf("Tmodel slow-start completion = %v, want %v", got, 2*rtt60)
	}
}

func TestTmodelDegenerate(t *testing.T) {
	if got := Tmodel(target, 0, iw10, rtt60); got != 0 {
		t.Errorf("zero-byte Tmodel = %v", got)
	}
	if got := Tmodel(0, 1000, iw10, rtt60); got < time.Duration(math.MaxInt64)/2 {
		t.Errorf("zero-rate Tmodel should be huge, got %v", got)
	}
}

func TestTmodelLowerBoundedByTransmission(t *testing.T) {
	f := func(b uint32, w uint16, rttMs uint8, rMbpsTenths uint16) bool {
		btotal := int64(b%2000000) + 1
		wnic := int64(w%60000) + 1
		rtt := time.Duration(int(rttMs%200)+1) * time.Millisecond
		r := units.Rate(float64(rMbpsTenths%100+1) / 10 * 1e6)
		return Tmodel(r, btotal, wnic, rtt) >= r.TimeFor(btotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTmodelNonIncreasingInRate(t *testing.T) {
	f := func(b uint32, w uint16, rttMs uint8) bool {
		btotal := int64(b%500000) + 1
		wnic := int64(w%40000) + 1
		rtt := time.Duration(int(rttMs%150)+5) * time.Millisecond
		prev := time.Duration(0)
		for i, mbps := range []float64{0.5, 1, 2, 2.5, 3, 5, 10, 50} {
			cur := Tmodel(units.Rate(mbps*1e6), btotal, wnic, rtt)
			if i > 0 && cur > prev+time.Millisecond { // byte-truncation slack
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFigure4WorkedExample reproduces the paper's worked example end to
// end: three back-to-back transactions over one session with 60 ms RTT
// under ideal conditions.
func TestFigure4WorkedExample(t *testing.T) {
	sess := Session{
		MinRTT: rtt60,
		Transactions: []Transaction{
			// txn1: 2 packets, one round trip → 60 ms, 0.4 Mbps.
			{Bytes: pkts(2), Duration: rtt60, Wnic: iw10},
			// txn2: 24 packets, two round trips → 120 ms, 2.4 Mbps.
			{Bytes: pkts(24), Duration: 2 * rtt60, Wnic: iw10},
			// txn3: 14 packets, one round trip → 60 ms, 2.8 Mbps.
			{Bytes: pkts(14), Duration: rtt60, Wnic: pkts(20)},
		},
	}
	out := Evaluate(sess, DefaultConfig())

	if out.Transactions[0].Testable {
		t.Error("txn1 (Gtestable 0.4 Mbps) must not test for HD goodput")
	}
	if !out.Transactions[1].Testable {
		t.Error("txn2 must test for HD goodput")
	}
	if !out.Transactions[2].Testable {
		t.Error("txn3 must test for HD goodput")
	}
	if !out.Transactions[1].AchievedTarget {
		t.Error("txn2 (120 ms ≤ 187.2 ms model) must achieve HD goodput")
	}
	if !out.Transactions[2].AchievedTarget {
		t.Error("txn3 (60 ms ≤ 127.2 ms model) must achieve HD goodput")
	}
	if out.Tested != 2 || out.AchievedCount != 2 {
		t.Errorf("Tested=%d Achieved=%d, want 2/2", out.Tested, out.AchievedCount)
	}
	if hd := out.HDratio(); hd != 1 {
		t.Errorf("HDratio = %v, want 1", hd)
	}
}

func TestEvaluateDegradedSession(t *testing.T) {
	// Same shape as Figure 4 but the second transaction took far longer
	// than the model allows: it tested for HD and failed.
	sess := Session{
		MinRTT: rtt60,
		Transactions: []Transaction{
			{Bytes: pkts(24), Duration: 400 * time.Millisecond, Wnic: iw10},
			{Bytes: pkts(14), Duration: rtt60, Wnic: pkts(20)},
		},
	}
	out := Evaluate(sess, DefaultConfig())
	if out.Tested != 2 {
		t.Fatalf("Tested = %d, want 2", out.Tested)
	}
	if out.Transactions[0].AchievedTarget {
		t.Error("400 ms transfer must not achieve HD (model allows 187.2 ms)")
	}
	if hd := out.HDratio(); hd != 0.5 {
		t.Errorf("HDratio = %v, want 0.5", hd)
	}
}

func TestHDratioNaNWhenNothingTestable(t *testing.T) {
	sess := Session{
		MinRTT: rtt60,
		Transactions: []Transaction{
			{Bytes: pkts(1), Duration: rtt60, Wnic: iw10},
		},
	}
	out := Evaluate(sess, DefaultConfig())
	if out.Tested != 0 {
		t.Fatalf("Tested = %d, want 0", out.Tested)
	}
	if !math.IsNaN(out.HDratio()) {
		t.Errorf("HDratio = %v, want NaN", out.HDratio())
	}
}

func TestIneligibleTransactionsExcludedButChainAdvances(t *testing.T) {
	sess := Session{
		MinRTT: rtt60,
		Transactions: []Transaction{
			{Bytes: pkts(24), Duration: 2 * rtt60, Wnic: iw10, Ineligible: true},
			{Bytes: pkts(14), Duration: rtt60, Wnic: mss},
		},
	}
	out := Evaluate(sess, DefaultConfig())
	if out.Transactions[0].Testable {
		t.Error("ineligible transaction must not be counted as testable")
	}
	// The chain must still credit txn1's ideal growth so txn2 tests.
	if !out.Transactions[1].Testable {
		t.Error("txn after ineligible one should still be testable via chain")
	}
	if out.Tested != 1 {
		t.Errorf("Tested = %d, want 1", out.Tested)
	}
}

func TestEstimateDeliveryRateKnownScenario(t *testing.T) {
	// Single-round transfer: duration = Btotal/R + MinRTT, solvable in
	// closed form. 21000 bytes, 67.2 ms transmission + 60 ms = 127.2 ms
	// ⇒ R = 2.5 Mbps.
	txn := Transaction{Bytes: pkts(14), Duration: 127200 * time.Microsecond, Wnic: pkts(20)}
	got := EstimateDeliveryRate(txn, rtt60)
	if math.Abs(got.Mbps()-2.5) > 0.01 {
		t.Errorf("EstimateDeliveryRate = %v Mbps, want 2.5", got.Mbps())
	}
}

func TestEstimateDeliveryRateConsistent(t *testing.T) {
	f := func(b uint32, w uint16, durMs uint16) bool {
		txn := Transaction{
			Bytes:    int64(b%300000) + 1000,
			Duration: time.Duration(int(durMs%2000)+61) * time.Millisecond,
			Wnic:     int64(w%40000) + 1000,
		}
		r := EstimateDeliveryRate(txn, rtt60)
		if r <= 0 {
			return true
		}
		if !Achieved(txn, r*0.999, rtt60) {
			return false
		}
		if r < maxEstimableRate/2 && Achieved(txn, r*1.01, rtt60) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEstimateDeliveryRateCaps(t *testing.T) {
	// Duration equal to MinRTT: infinitely fast per the model; capped.
	txn := Transaction{Bytes: pkts(5), Duration: rtt60, Wnic: iw10}
	if got := EstimateDeliveryRate(txn, rtt60); got != maxEstimableRate {
		t.Errorf("instant transfer should cap at max rate, got %v", got)
	}
}

func TestSimpleRateUnderestimates(t *testing.T) {
	// The naive estimate divides by the whole duration including the
	// propagation round trip, so it is always below the model estimate.
	f := func(b uint32, durMs uint16) bool {
		txn := Transaction{
			Bytes:    int64(b%300000) + 1000,
			Duration: time.Duration(int(durMs%1000)+61) * time.Millisecond,
			Wnic:     iw10,
		}
		simple := SimpleRate(txn)
		model := EstimateDeliveryRate(txn, rtt60)
		return simple <= model+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateSimpleStricter(t *testing.T) {
	// Figure 4 txn2 achieved 2.4 Mbps raw goodput: the naive approach
	// says it failed HD, the corrected methodology says it passed.
	sess := Session{
		MinRTT: rtt60,
		Transactions: []Transaction{
			{Bytes: pkts(24), Duration: 2 * rtt60, Wnic: iw10},
		},
	}
	corrected := Evaluate(sess, DefaultConfig())
	simple := EvaluateSimple(sess, DefaultConfig())
	if corrected.HDratio() != 1 {
		t.Errorf("corrected HDratio = %v, want 1", corrected.HDratio())
	}
	if simple.HDratio() != 0 {
		t.Errorf("simple HDratio = %v, want 0 (2.4 < 2.5 Mbps)", simple.HDratio())
	}
}

func TestEvaluateRandomSessionsNoPanic(t *testing.T) {
	r := rng.New(77)
	for i := 0; i < 500; i++ {
		n := r.IntN(20) + 1
		txns := make([]Transaction, n)
		for j := range txns {
			txns[j] = Transaction{
				Bytes:      int64(r.IntN(1000000)),
				Duration:   time.Duration(r.IntN(2000)) * time.Millisecond,
				Wnic:       int64(r.IntN(100000)),
				Ineligible: r.Bool(0.1),
			}
		}
		sess := Session{
			MinRTT:       time.Duration(r.IntN(300)+1) * time.Millisecond,
			Transactions: txns,
		}
		out := Evaluate(sess, DefaultConfig())
		if out.AchievedCount > out.Tested {
			t.Fatalf("achieved %d > tested %d", out.AchievedCount, out.Tested)
		}
		if hd := out.HDratio(); !math.IsNaN(hd) && (hd < 0 || hd > 1) {
			t.Fatalf("HDratio out of range: %v", hd)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Target != units.HDGoodput || cfg.MSS != units.DefaultMSS {
		t.Errorf("unexpected default config: %+v", cfg)
	}
	// Evaluate fills a zero target.
	sess := Session{MinRTT: rtt60, Transactions: []Transaction{{Bytes: pkts(24), Duration: 2 * rtt60, Wnic: iw10}}}
	out := Evaluate(sess, Config{})
	if out.Tested != 1 {
		t.Error("zero-value config did not default the target")
	}
}

func BenchmarkEvaluateSession(b *testing.B) {
	sess := Session{
		MinRTT: rtt60,
		Transactions: []Transaction{
			{Bytes: pkts(2), Duration: rtt60, Wnic: iw10},
			{Bytes: pkts(24), Duration: 2 * rtt60, Wnic: iw10},
			{Bytes: pkts(14), Duration: rtt60, Wnic: pkts(20)},
			{Bytes: pkts(90), Duration: 5 * rtt60, Wnic: pkts(20)},
		},
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Evaluate(sess, cfg)
	}
}

func BenchmarkEstimateDeliveryRate(b *testing.B) {
	txn := Transaction{Bytes: pkts(90), Duration: 300 * time.Millisecond, Wnic: iw10}
	for i := 0; i < b.N; i++ {
		EstimateDeliveryRate(txn, rtt60)
	}
}
