package proxygen

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// rawTxn builds a plain transaction: written at w, on NIC at w, last
// byte at lastNIC, acks at stl and last.
func rawTxn(write, lastNIC, stlAck, lastAck int, bytes, lastPkt int64, wnic int64) RawTxn {
	return RawTxn{
		FirstByteWrite:  ms(write),
		FirstByteNIC:    ms(write),
		LastByteNIC:     ms(lastNIC),
		SecondToLastAck: ms(stlAck),
		LastAck:         ms(lastAck),
		Bytes:           bytes,
		LastPacketBytes: lastPkt,
		Wnic:            wnic,
	}
}

func TestCorrectAppliesDelayedAckCorrection(t *testing.T) {
	raw := []RawTxn{rawTxn(0, 10, 60, 100, 30000, 1500, 15000)}
	out := Correct(raw)
	if len(out) != 1 {
		t.Fatalf("got %d transactions", len(out))
	}
	txn := out[0]
	if txn.Bytes != 28500 {
		t.Errorf("Bytes = %d, want 28500 (last packet excluded)", txn.Bytes)
	}
	if txn.Duration != ms(60) {
		t.Errorf("Duration = %v, want 60ms (to second-to-last ACK)", txn.Duration)
	}
	if txn.Ineligible {
		t.Error("clean transaction marked ineligible")
	}
}

func TestCorrectSinglePacketResponse(t *testing.T) {
	// A one-packet response has no second-to-last ACK: unmeasurable.
	raw := []RawTxn{{
		FirstByteWrite: 0, FirstByteNIC: 0, LastByteNIC: ms(1),
		LastAck: ms(50), Bytes: 800, LastPacketBytes: 800, Wnic: 15000,
	}}
	out := Correct(raw)
	if !out[0].Ineligible || out[0].Bytes != 0 {
		t.Errorf("single-packet response should be ineligible: %+v", out[0])
	}
}

func TestCoalesceBackToBackWrites(t *testing.T) {
	// Second response written before the first finished reaching the
	// NIC: treat as one large response (footnote 9).
	raw := []RawTxn{
		rawTxn(0, 20, 50, 60, 15000, 1500, 15000),
		{
			FirstByteWrite: ms(15), FirstByteNIC: ms(20), LastByteNIC: ms(40),
			SecondToLastAck: ms(100), LastAck: ms(110),
			Bytes: 9000, LastPacketBytes: 1500, Wnic: 15000,
		},
	}
	merged := Coalesce(raw)
	if len(merged) != 1 {
		t.Fatalf("expected coalescing, got %d txns", len(merged))
	}
	if merged[0].Bytes != 24000 {
		t.Errorf("merged bytes = %d, want 24000", merged[0].Bytes)
	}
	if merged[0].SecondToLastAck != ms(100) {
		t.Errorf("merged STL ack = %v, want the later one", merged[0].SecondToLastAck)
	}
	out := Correct(raw)
	if len(out) != 1 || out[0].Bytes != 22500 {
		t.Errorf("corrected merged txn = %+v", out)
	}
}

func TestCoalesceMultiplexed(t *testing.T) {
	raw := []RawTxn{
		{FirstByteWrite: 0, FirstByteNIC: 0, LastByteNIC: ms(30), SecondToLastAck: ms(55),
			LastAck: ms(60), Bytes: 15000, LastPacketBytes: 1500, Wnic: 15000, Multiplexed: true},
		{FirstByteWrite: ms(40), FirstByteNIC: ms(40), LastByteNIC: ms(70), SecondToLastAck: ms(95),
			LastAck: ms(100), Bytes: 6000, LastPacketBytes: 1500, Wnic: 15000},
	}
	merged := Coalesce(raw)
	if len(merged) != 1 {
		t.Fatalf("multiplexed txns not coalesced: %d", len(merged))
	}
	if merged[0].Multiplexed {
		t.Error("merged transaction should be plain")
	}
}

func TestNoCoalesceWithGap(t *testing.T) {
	raw := []RawTxn{
		rawTxn(0, 10, 40, 50, 15000, 1500, 15000),
		rawTxn(200, 210, 240, 250, 9000, 1500, 30000),
	}
	merged := Coalesce(raw)
	if len(merged) != 2 {
		t.Fatalf("independent txns wrongly coalesced: %d", len(merged))
	}
}

func TestBytesInFlightIneligible(t *testing.T) {
	// Second transaction starts while the first's bytes are unacked and
	// was written after the first fully reached the NIC (no coalescing):
	// ineligible, per §3.2.5.
	raw := []RawTxn{
		rawTxn(0, 10, 40, 100, 15000, 1500, 15000),
		rawTxn(50, 60, 90, 120, 9000, 1500, 30000),
	}
	out := Correct(raw)
	if len(out) != 2 {
		t.Fatalf("got %d transactions", len(out))
	}
	if out[0].Ineligible {
		t.Error("first transaction should be eligible")
	}
	if !out[1].Ineligible {
		t.Error("overlapping transaction must be ineligible")
	}
}

func TestEligibleAfterPriorAcked(t *testing.T) {
	raw := []RawTxn{
		rawTxn(0, 10, 40, 50, 15000, 1500, 15000),
		rawTxn(80, 90, 120, 130, 9000, 1500, 30000),
	}
	out := Correct(raw)
	if out[1].Ineligible {
		t.Error("transaction after fully-acked predecessor should be eligible")
	}
}

func TestCoalesceEmpty(t *testing.T) {
	if got := Coalesce(nil); got != nil {
		t.Errorf("Coalesce(nil) = %v", got)
	}
	if got := Correct(nil); len(got) != 0 {
		t.Errorf("Correct(nil) = %v", got)
	}
}

func TestCoalesceChain(t *testing.T) {
	// Three back-to-back small responses merge into one.
	raw := []RawTxn{
		rawTxn(0, 10, 0, 12, 1500, 1500, 15000),
		{FirstByteWrite: ms(5), FirstByteNIC: ms(10), LastByteNIC: ms(12),
			SecondToLastAck: 0, LastAck: ms(40), Bytes: 1500, LastPacketBytes: 1500, Wnic: 15000},
		{FirstByteWrite: ms(11), FirstByteNIC: ms(12), LastByteNIC: ms(14),
			SecondToLastAck: ms(60), LastAck: ms(62), Bytes: 1500, LastPacketBytes: 1500, Wnic: 15000},
	}
	merged := Coalesce(raw)
	if len(merged) != 1 {
		t.Fatalf("chain did not fully coalesce: %d", len(merged))
	}
	if merged[0].Bytes != 4500 {
		t.Errorf("merged bytes = %d, want 4500", merged[0].Bytes)
	}
	// The merged 3-packet response is measurable.
	out := Correct(raw)
	if out[0].Ineligible || out[0].Bytes != 3000 {
		t.Errorf("merged sequence should be measurable: %+v", out[0])
	}
}

func TestSamplerRate(t *testing.T) {
	s := Sampler{Rate: 0.25, Salt: 99}
	n, hit := 200000, 0
	for i := 0; i < n; i++ {
		if s.Sample(uint64(i)) {
			hit++
		}
	}
	rate := float64(hit) / float64(n)
	if rate < 0.24 || rate > 0.26 {
		t.Errorf("sampling rate = %v, want 0.25", rate)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	s := Sampler{Rate: 0.5, Salt: 1}
	for i := uint64(0); i < 1000; i++ {
		if s.Sample(i) != s.Sample(i) {
			t.Fatal("sampler not deterministic")
		}
	}
}

func TestSamplerSaltDecorrelates(t *testing.T) {
	a := Sampler{Rate: 0.5, Salt: 1}
	b := Sampler{Rate: 0.5, Salt: 2}
	same := 0
	for i := uint64(0); i < 10000; i++ {
		if a.Sample(i) == b.Sample(i) {
			same++
		}
	}
	// Independent 50% samplers agree ~50% of the time.
	if same < 4500 || same > 5500 {
		t.Errorf("salted samplers agree %d/10000 times", same)
	}
}

func TestSamplerExtremes(t *testing.T) {
	if (Sampler{Rate: 0}).Sample(1) {
		t.Error("rate 0 sampled")
	}
	if !(Sampler{Rate: 1}).Sample(1) {
		t.Error("rate 1 skipped")
	}
}
