// Package proxygen models the load-balancer instrumentation layer
// (§2.2.2, named after Facebook's software load balancer): it samples
// HTTP sessions, captures TCP state at prescribed points around each
// transaction, and converts raw capture events into the corrected
// per-transaction observations the HDratio methodology consumes.
//
// The §3.2.5 capture rules implemented here:
//
//   - Delayed-ACK correction: Ttotal runs from the first response byte
//     reaching the NIC to the ACK covering the second-to-last packet,
//     and Btotal excludes the final packet.
//   - Coalescing: transactions whose responses are multiplexed,
//     preempted, or written back-to-back are merged into one larger
//     transaction, so HTTP/2 interleaving does not inflate Ttotal.
//   - Bytes in flight: a transaction is ineligible for goodput
//     measurement if a previous response was still in flight when its
//     first byte was sent and the coalescing conditions were not met.
package proxygen

import (
	"hash/fnv"
	"time"

	"repro/internal/hdratio"
)

// RawTxn is the uncorrected capture of one HTTP transaction at the load
// balancer. Times are relative to a common session clock.
type RawTxn struct {
	// FirstByteWrite is when the first response byte entered the socket
	// send buffer.
	FirstByteWrite time.Duration
	// FirstByteNIC is when the first response byte was written to the
	// NIC (socket/NIC timestamping, §3.2.5 footnote 9).
	FirstByteNIC time.Duration
	// LastByteNIC is when the last response byte was written to the NIC.
	LastByteNIC time.Duration
	// SecondToLastAck is when an ACK covering the second-to-last packet
	// was received; zero if the response fit in a single packet.
	SecondToLastAck time.Duration
	// LastAck is when the final byte was acknowledged.
	LastAck time.Duration
	// Bytes is the full response size.
	Bytes int64
	// LastPacketBytes is the size of the final packet.
	LastPacketBytes int64
	// Wnic is the congestion window when the first byte hit the NIC.
	Wnic int64
	// Multiplexed marks responses interleaved with another stream
	// (HTTP/2 priority multiplexing or preemption).
	Multiplexed bool
}

// Correct applies the §3.2.5 rules to a session's raw transactions and
// returns the observations for the methodology, in order. The output
// slice may be shorter than the input when transactions coalesce.
func Correct(raw []RawTxn) []hdratio.Transaction {
	merged := Coalesce(raw)
	out := make([]hdratio.Transaction, 0, len(merged))
	var prevLastAck time.Duration
	var prevEnd time.Duration
	for i, rt := range merged {
		txn := hdratio.Transaction{
			Bytes:    rt.Bytes - rt.LastPacketBytes,
			Duration: rt.SecondToLastAck - rt.FirstByteNIC,
			Wnic:     rt.Wnic,
		}
		if rt.SecondToLastAck == 0 || txn.Bytes <= 0 {
			// Single-packet response: no measurable corrected duration.
			txn.Bytes = 0
			txn.Duration = 0
			txn.Ineligible = true
		}
		if i > 0 && prevLastAck > rt.FirstByteNIC && rt.FirstByteWrite > prevEnd {
			// Previous response still in flight and coalescing did not
			// apply: unusable for goodput (§3.2.5 "Bytes in Flight").
			txn.Ineligible = true
		}
		prevLastAck = rt.LastAck
		prevEnd = rt.LastByteNIC
		out = append(out, txn)
	}
	return out
}

// coalesceGap is the write-gap tolerance under which two responses are
// considered back-to-back at the transport layer (footnote 9: no gap
// between writes when the second write lands before the first finishes
// reaching the NIC).
const coalesceGap = 0

// Coalesce merges multiplexed, preempted, and back-to-back responses
// into single larger transactions (§3.2.5).
func Coalesce(raw []RawTxn) []RawTxn {
	if len(raw) == 0 {
		return nil
	}
	out := make([]RawTxn, 0, len(raw))
	cur := raw[0]
	for _, next := range raw[1:] {
		backToBack := next.FirstByteWrite <= cur.LastByteNIC+coalesceGap
		if next.Multiplexed || cur.Multiplexed || backToBack {
			// Merge: the combined transaction spans from the first
			// response's NIC write to the last response's ACKs.
			cur.Bytes += next.Bytes
			cur.LastPacketBytes = next.LastPacketBytes
			if next.LastByteNIC > cur.LastByteNIC {
				cur.LastByteNIC = next.LastByteNIC
			}
			cur.SecondToLastAck = next.SecondToLastAck
			cur.LastAck = next.LastAck
			cur.Multiplexed = false // merged result is a plain transaction
			continue
		}
		out = append(out, cur)
		cur = next
	}
	return append(out, cur)
}

// Sampler decides deterministically which sessions are sampled, by
// hashing the session identifier against a sampling rate — the
// production system samples a percentage of HTTP sessions (§2.2.2) and
// randomized selection over production flows avoids sampling bias
// (§2.2.1).
type Sampler struct {
	// Rate is the sampled fraction in [0, 1].
	Rate float64
	// Salt decorrelates sampling across deployments.
	Salt uint64
}

// Sample reports whether the session with the given ID is sampled.
func (s Sampler) Sample(sessionID uint64) bool {
	if s.Rate >= 1 {
		return true
	}
	if s.Rate <= 0 {
		return false
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(sessionID >> (8 * i))
		buf[8+i] = byte(s.Salt >> (8 * i))
	}
	h.Write(buf[:])
	return float64(h.Sum64())/float64(^uint64(0)) < s.Rate
}
