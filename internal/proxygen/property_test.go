package proxygen

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

// randomRaws builds a plausible ordered capture sequence.
func randomRaws(r *rng.RNG) []RawTxn {
	n := r.IntN(8) + 1
	out := make([]RawTxn, n)
	clock := time.Duration(0)
	for i := range out {
		gap := time.Duration(r.IntN(200)) * time.Millisecond
		write := clock + gap
		nic := write + time.Duration(r.IntN(3))*time.Millisecond
		lastNIC := nic + time.Duration(r.IntN(50)+1)*time.Millisecond
		stl := lastNIC + time.Duration(r.IntN(100)+1)*time.Millisecond
		last := stl + time.Duration(r.IntN(50))*time.Millisecond
		bytes := int64(r.IntN(100000) + 1500)
		lastPkt := bytes % 1500
		if lastPkt == 0 {
			lastPkt = 1500
		}
		out[i] = RawTxn{
			FirstByteWrite: write, FirstByteNIC: nic, LastByteNIC: lastNIC,
			SecondToLastAck: stl, LastAck: last,
			Bytes: bytes, LastPacketBytes: lastPkt,
			Wnic:        int64(r.IntN(60000) + 1500),
			Multiplexed: r.Bool(0.3),
		}
		clock = lastNIC // next response may overlap acks but not writes
	}
	return out
}

func totalBytes(raws []RawTxn) int64 {
	var t int64
	for _, r := range raws {
		t += r.Bytes
	}
	return t
}

// TestCoalescePreservesBytes: merging must never create or destroy
// response bytes.
func TestCoalescePreservesBytes(t *testing.T) {
	f := func(seed uint64) bool {
		raws := randomRaws(rng.New(seed))
		merged := Coalesce(raws)
		return totalBytes(merged) == totalBytes(raws) && len(merged) >= 1 && len(merged) <= len(raws)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCoalesceOrderPreserved: merged output keeps capture order (the
// first transaction's NIC-write timestamps are never later than the
// next's writes).
func TestCoalesceOrderPreserved(t *testing.T) {
	f := func(seed uint64) bool {
		merged := Coalesce(randomRaws(rng.New(seed)))
		for i := 1; i < len(merged); i++ {
			if merged[i].FirstByteWrite < merged[i-1].FirstByteWrite {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCorrectOutputsSane: corrected observations never have negative
// byte counts or durations, and every output maps to a coalesced input.
func TestCorrectOutputsSane(t *testing.T) {
	f := func(seed uint64) bool {
		raws := randomRaws(rng.New(seed))
		txns := Correct(raws)
		if len(txns) != len(Coalesce(raws)) {
			return false
		}
		for _, txn := range txns {
			if txn.Bytes < 0 || txn.Duration < 0 {
				return false
			}
			if txn.Wnic < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCoalesceIdempotent: coalescing an already-coalesced sequence is a
// no-op (no further merges are possible).
func TestCoalesceIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		once := Coalesce(randomRaws(rng.New(seed)))
		twice := Coalesce(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i].Bytes != twice[i].Bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
