// Package sigctl is the shared signal discipline of every binary in
// this repo: the first SIGINT/SIGTERM cancels the returned context so
// the pipeline drains and seals (manifests, ack logs, and spools hold
// the last committed state), and a second signal skips the orderly
// drain and exits immediately with status 130. Before this package
// each cmd carried its own copy of the watcher; now edgesim,
// edgereport, edgepopd, edgemerged, and edgestudyd all share one
// implementation, so "^C drains, ^C^C exits" holds fleet-wide.
package sigctl

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// exit is swapped out by tests; binaries always hard-exit.
var exit = os.Exit

// Context returns a copy of parent cancelled on the first
// SIGINT/SIGTERM and arms a watcher that turns the second signal into
// an immediate os.Exit(130), printing notice to stderr first: when an
// operator hits ^C twice they want out now, not after the pipeline
// unwinds. The returned stop releases the signal registrations.
func Context(parent context.Context, notice string) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		<-sig
		fmt.Fprintln(os.Stderr, notice)
		exit(130)
	}()
	return ctx, stop
}
