package pep

import (
	"testing"
	"time"

	"repro/internal/hdratio"
	"repro/internal/netsim"
	"repro/internal/tcpsim"
	"repro/internal/units"
)

// splitPath: fast terrestrial segment to the PEP, slow long-delay
// segment (satellite/cellular) to the client.
func splitPath() (up, down SegmentConfig) {
	up = SegmentConfig{Rate: 100 * units.Mbps, OneWay: 5 * time.Millisecond}
	down = SegmentConfig{Rate: 2 * units.Mbps, OneWay: 250 * time.Millisecond}
	return
}

func TestRelayDeliversEverything(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	up, down := splitPath()
	s := NewSplit(&sim, up, down)
	const obj = 200 * 1500
	s.ServeObject(obj)
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if s.ClientDelivered != obj {
		t.Fatalf("client received %d of %d bytes", s.ClientDelivered, obj)
	}
}

// TestServerSideMinRTTUnderestimates reproduces the §2.2.1 caveat:
// the server's MinRTT reflects the server↔PEP segment only.
func TestServerSideMinRTTUnderestimates(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	up, down := splitPath()
	s := NewSplit(&sim, up, down)
	s.ServeObject(50 * 1500)
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	serverRTT := s.Upstream.MinRTT()
	e2e := EndToEndRTT(up, down)
	if serverRTT >= e2e/5 {
		t.Errorf("server MinRTT %v should be far below end-to-end %v", serverRTT, e2e)
	}
	// The client-facing segment alone dwarfs what the server sees.
	if s.Downstream.MinRTT() < 500*time.Millisecond {
		t.Errorf("downstream MinRTT = %v, want ≥500ms", s.Downstream.MinRTT())
	}
}

// TestServerSideGoodputOverestimates reproduces the second half of the
// caveat: the server-side methodology judges the transfer HD-capable
// (the PEP absorbed it at terrestrial speed) while the client actually
// received it below the HD floor.
func TestServerSideGoodputOverestimates(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	up, down := splitPath()
	s := NewSplit(&sim, up, down)

	const obj = 300 * 1500
	var tFirst, tAck netsim.Time = -1, -1
	wnic := s.Upstream.Cwnd()
	s.Upstream.WatchFirstSend(s.Upstream.NextWriteOffset(), func(tm netsim.Time) { tFirst = tm })
	served := sim.Now()
	_, end := s.ServeObject(obj)
	s.Upstream.WatchAcked(end-1500, func(tm netsim.Time) { tAck = tm })
	if !sim.Run() {
		t.Fatal("no convergence")
	}

	// Server-side judgment (what the paper's instrumentation would do).
	txn := hdratio.Transaction{Bytes: obj - 1500, Duration: tAck - tFirst, Wnic: wnic}
	serverSays := hdratio.Achieved(txn, units.HDGoodput, s.Upstream.MinRTT())
	if !serverSays {
		t.Fatalf("server-side measurement should see HD goodput to the PEP (dur=%v)", txn.Duration)
	}
	// Ground truth at the client: the 2 Mbps satellite segment cannot
	// carry HD.
	actual := s.ClientGoodput(served)
	if actual >= units.HDGoodput {
		t.Fatalf("client goodput %v should be below the HD floor", actual)
	}
}

// TestNoPEPBaseline: without a split, the same end-to-end conditions
// are judged correctly (the server sees the real RTT and bottleneck).
func TestNoPEPBaseline(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	fwd := &netsim.Link{Sim: &sim, Rate: 2 * units.Mbps, Delay: 255 * time.Millisecond}
	rev := &netsim.Link{Sim: &sim, Delay: 255 * time.Millisecond}
	conn := tcpsim.New(&sim, tcpsim.Config{}, fwd, rev)

	const obj = 300 * 1500
	var tFirst, tAck netsim.Time = -1, -1
	wnic := conn.Cwnd()
	conn.WatchFirstSend(conn.NextWriteOffset(), func(tm netsim.Time) { tFirst = tm })
	_, end := conn.Write(obj)
	conn.WatchAcked(end-1500, func(tm netsim.Time) { tAck = tm })
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	txn := hdratio.Transaction{Bytes: obj - 1500, Duration: tAck - tFirst, Wnic: wnic}
	if hdratio.Achieved(txn, units.HDGoodput, conn.MinRTT()) {
		t.Error("end-to-end measurement must not claim HD over a 2 Mbps path")
	}
}
