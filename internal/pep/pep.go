// Package pep models a performance-enhancing proxy: a middlebox —
// common in satellite and cellular networks — that splits the TCP
// connection between server and client and runs an independent
// congestion-control loop on each segment (§2.2.1, RFC 3135).
//
// The paper identifies PEPs as the key caveat of server-side passive
// measurement: when a PEP is on path, the server's TCP state reflects
// the server↔PEP segment, so MinRTT underestimates the end-to-end
// round trip and goodput can overestimate what the client experiences.
// The paper argues this is acceptable because Facebook can only
// optimise conditions up to the PEP anyway. This package makes the
// distortion measurable: a split path whose server-side observations
// and true client-side delivery can be compared directly.
package pep

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/tcpsim"
	"repro/internal/units"
)

// SegmentConfig describes one side of the split path.
type SegmentConfig struct {
	// Rate and OneWay configure the segment's bottleneck link.
	Rate   units.Rate
	OneWay time.Duration
	// Loss is the per-packet loss probability on the data direction.
	Loss float64
	// TCP configures the segment's sender.
	TCP tcpsim.Config
}

// Split is a server → PEP → client path with independent TCP loops.
type Split struct {
	Sim *netsim.Sim
	// Upstream is the server→PEP connection — the one the load
	// balancer's instrumentation sees.
	Upstream *tcpsim.Conn
	// Downstream is the PEP→client connection.
	Downstream *tcpsim.Conn

	// ClientDelivered is the number of bytes that actually reached the
	// client in order.
	ClientDelivered int64
	// ClientLastDelivery is when the last in-order byte arrived at the
	// client.
	ClientLastDelivery netsim.Time

	buffered int64
}

// NewSplit builds the split path. The PEP relays bytes as they arrive
// in order on the upstream segment.
func NewSplit(sim *netsim.Sim, up, down SegmentConfig) *Split {
	s := &Split{Sim: sim}

	upFwd := &netsim.Link{Sim: sim, Rate: up.Rate, Delay: up.OneWay, LossProb: up.Loss}
	upRev := &netsim.Link{Sim: sim, Delay: up.OneWay}
	s.Upstream = tcpsim.New(sim, up.TCP, upFwd, upRev)

	downFwd := &netsim.Link{Sim: sim, Rate: down.Rate, Delay: down.OneWay, LossProb: down.Loss}
	downRev := &netsim.Link{Sim: sim, Delay: down.OneWay}
	s.Downstream = tcpsim.New(sim, down.TCP, downFwd, downRev)

	// The PEP acknowledges upstream data on arrival (that is the whole
	// point of a split connection) and forwards it downstream.
	s.Upstream.OnDeliver = func(n int64) {
		s.buffered += n
		s.Downstream.Write(int(n))
	}
	s.Downstream.OnDeliver = func(n int64) {
		s.ClientDelivered += n
		s.ClientLastDelivery = sim.Now()
	}
	return s
}

// ServeObject writes one response at the server and returns its write
// range on the upstream connection.
func (s *Split) ServeObject(bytes int64) (start, end int64) {
	return s.Upstream.Write(int(bytes))
}

// EndToEndRTT returns the true end-to-end propagation round trip the
// split path hides from the server.
func EndToEndRTT(up, down SegmentConfig) time.Duration {
	return 2 * (up.OneWay + down.OneWay)
}

// ClientGoodput returns the rate at which the client actually received
// the object, measured from the serve time.
func (s *Split) ClientGoodput(served netsim.Time) units.Rate {
	if s.ClientDelivered == 0 || s.ClientLastDelivery <= served {
		return 0
	}
	return units.RateOf(s.ClientDelivered, s.ClientLastDelivery-served)
}
