package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tdigest"
)

func TestZScore(t *testing.T) {
	tests := []struct {
		conf, want float64
	}{
		{0.95, 1.959964},
		{0.90, 1.644854},
		{0.99, 2.575829},
	}
	for _, tt := range tests {
		if got := ZScore(tt.conf); math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("ZScore(%v) = %v, want %v", tt.conf, got, tt.want)
		}
	}
	if ZScore(0) != 0 {
		t.Error("ZScore(0) != 0")
	}
	if !math.IsInf(ZScore(1), 1) {
		t.Error("ZScore(1) not +Inf")
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(data, tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) should be NaN")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	data := []float64{0, 10}
	if got := Quantile(data, 0.5); got != 5 {
		t.Errorf("Quantile interpolation = %v, want 5", got)
	}
}

func TestMedianCICoversTrueMedian(t *testing.T) {
	// Coverage test: the 95% CI should contain the true median (40)
	// in roughly 95% of repeated experiments.
	r := rng.New(11)
	covered, trials := 0, 400
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 101)
		for i := range xs {
			xs[i] = r.LogNormalMedian(40, 0.5)
		}
		iv := MedianCI(SortCopy(xs), 0.95)
		if iv.Contains(40) {
			covered++
		}
	}
	rate := float64(covered) / float64(trials)
	if rate < 0.90 || rate > 0.995 {
		t.Errorf("median CI coverage = %v, want ~0.95", rate)
	}
}

func TestDiffMedianCICoversZeroForIdenticalDistributions(t *testing.T) {
	r := rng.New(13)
	covered, trials := 0, 300
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 80)
		b := make([]float64, 80)
		for i := range a {
			a[i] = r.LogNormalMedian(30, 0.4)
			b[i] = r.LogNormalMedian(30, 0.4)
		}
		iv := DiffMedianCI(SortCopy(a), SortCopy(b), 0.95)
		if iv.Contains(0) {
			covered++
		}
	}
	rate := float64(covered) / float64(trials)
	if rate < 0.90 {
		t.Errorf("diff-median CI coverage of 0 = %v, want ≥0.90", rate)
	}
}

func TestDiffMedianCIDetectsRealDifference(t *testing.T) {
	r := rng.New(17)
	detected, trials := 0, 200
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 100)
		b := make([]float64, 100)
		for i := range a {
			a[i] = r.LogNormalMedian(50, 0.2) // median 50
			b[i] = r.LogNormalMedian(30, 0.2) // median 30
		}
		iv := DiffMedianCI(SortCopy(a), SortCopy(b), 0.95)
		if iv.Lo > 5 { // paper's threshold style: lower bound above 5ms
			detected++
		}
	}
	if detected < trials*9/10 {
		t.Errorf("detected real 20ms difference only %d/%d times", detected, trials)
	}
}

func TestMedianVarianceShrinksWithN(t *testing.T) {
	r := rng.New(19)
	sizes := []int{31, 101, 1001}
	prev := math.Inf(1)
	for _, n := range sizes {
		// Average over trials: a single variance estimate is itself noisy.
		sum := 0.0
		const trials = 50
		for trial := 0; trial < trials; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.Normal(0, 1)
			}
			sum += MedianVariance(SortCopy(xs), 0.95)
		}
		v := sum / trials
		if v >= prev {
			t.Errorf("mean variance did not shrink: n=%d v=%v prev=%v", n, v, prev)
		}
		prev = v
	}
}

func TestMedianVarianceTinySample(t *testing.T) {
	if !math.IsInf(MedianVariance([]float64{1, 2}, 0.95), 1) {
		t.Error("variance of n=2 should be +Inf")
	}
}

func TestDigestAgreesWithExact(t *testing.T) {
	r := rng.New(23)
	xs := make([]float64, 5000)
	d := tdigest.New(200)
	for i := range xs {
		xs[i] = r.LogNormalMedian(40, 0.5)
		d.Add(xs[i])
	}
	sorted := SortCopy(xs)
	exact := MedianVariance(sorted, 0.95)
	approx := MedianVarianceDigest(d, 0.95)
	if math.Abs(exact-approx)/exact > 0.5 {
		t.Errorf("digest variance %v, exact %v", approx, exact)
	}
}

func TestCompareRequiresSamples(t *testing.T) {
	small := tdigest.New(100)
	big := tdigest.New(100)
	for i := 0; i < 100; i++ {
		big.Add(float64(i))
	}
	for i := 0; i < 10; i++ {
		small.Add(float64(i))
	}
	if c := Compare(small, big, 0.95, 10); c.Valid {
		t.Error("comparison with <30 samples must be invalid")
	}
	if c := Compare(nil, big, 0.95, 10); c.Valid {
		t.Error("nil comparison must be invalid")
	}
}

func TestCompareTightness(t *testing.T) {
	r := rng.New(29)
	a, b := tdigest.New(100), tdigest.New(100)
	for i := 0; i < 2000; i++ {
		a.Add(r.Normal(50, 2))
		b.Add(r.Normal(45, 2))
	}
	c := Compare(a, b, 0.95, 10)
	if !c.Valid {
		t.Fatalf("large-sample comparison should be valid: %+v", c)
	}
	if !c.SignificantlyAbove(3) {
		t.Errorf("5-unit difference should be significantly above 3: %+v", c)
	}
	if c.SignificantlyAbove(6) {
		t.Errorf("5-unit difference should not be significantly above 6: %+v", c)
	}
	// Very tight maxWidth invalidates.
	if c2 := Compare(a, b, 0.95, 1e-9); c2.Valid {
		t.Error("impossibly tight maxWidth should invalidate")
	}
}

func TestWeightedCDF(t *testing.T) {
	w := NewWeightedCDF([]WeightedPoint{
		{Value: 1, Weight: 1},
		{Value: 2, Weight: 1},
		{Value: 3, Weight: 2},
	})
	if got := w.Total(); got != 4 {
		t.Errorf("Total = %v", got)
	}
	if got := w.FractionAtOrBelow(2); got != 0.5 {
		t.Errorf("FractionAtOrBelow(2) = %v, want 0.5", got)
	}
	if got := w.FractionAbove(2); got != 0.5 {
		t.Errorf("FractionAbove(2) = %v, want 0.5", got)
	}
	if got := w.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := w.Quantile(0.9); got != 3 {
		t.Errorf("Quantile(0.9) = %v, want 3", got)
	}
	if got := w.Mean(); got != 2.25 {
		t.Errorf("Mean = %v, want 2.25", got)
	}
}

func TestWeightedCDFDropsBadPoints(t *testing.T) {
	w := NewWeightedCDF([]WeightedPoint{
		{Value: 1, Weight: 0},
		{Value: math.NaN(), Weight: 5},
		{Value: 2, Weight: 1},
	})
	if w.Total() != 1 {
		t.Errorf("Total = %v, want 1", w.Total())
	}
}

func TestWeightedCDFEmpty(t *testing.T) {
	w := NewWeightedCDF(nil)
	if !math.IsNaN(w.FractionAtOrBelow(1)) || !math.IsNaN(w.Quantile(0.5)) || !math.IsNaN(w.Mean()) {
		t.Error("empty weighted CDF should return NaN")
	}
}

func TestWeightedCDFQuantileMonotonic(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		pts := make([]WeightedPoint, 50)
		for i := range pts {
			pts[i] = WeightedPoint{Value: r.Normal(0, 10), Weight: r.Float64() + 0.01}
		}
		w := NewWeightedCDF(pts)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := w.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	w := NewWeightedCDF([]WeightedPoint{{Value: 1, Weight: 1}, {Value: 10, Weight: 1}})
	s := w.Series(5)
	if len(s) != 5 {
		t.Fatalf("Series(5) len = %d", len(s))
	}
	if s[0].Value != 1 || s[4].Value != 10 {
		t.Errorf("series endpoints wrong: %+v", s)
	}
}

func TestHodgesLehmannDetectsShift(t *testing.T) {
	r := rng.New(41)
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = r.LogNormalMedian(50, 0.3)
		b[i] = r.LogNormalMedian(40, 0.3)
	}
	shift := HodgesLehmannShift(a, b)
	if shift < 6 || shift > 14 {
		t.Errorf("HL shift = %v, want ~10", shift)
	}
}

func TestHodgesLehmannRobustToOutliers(t *testing.T) {
	r := rng.New(43)
	a := make([]float64, 200)
	b := make([]float64, 200)
	var meanA, meanB float64
	for i := range a {
		a[i] = r.Normal(40, 2)
		b[i] = r.Normal(40, 2)
		if i%50 == 0 {
			a[i] = 5000 // bufferbloat-scale outliers on one side
		}
		meanA += a[i]
		meanB += b[i]
	}
	meanDiff := (meanA - meanB) / 200
	hl := HodgesLehmannShift(a, b)
	if math.Abs(hl) > 1.5 {
		t.Errorf("HL shift = %v, want ~0 despite outliers", hl)
	}
	if math.Abs(meanDiff) < 10 {
		t.Fatalf("test fixture broken: mean diff %v should be skewed", meanDiff)
	}
}

func TestHodgesLehmannEmpty(t *testing.T) {
	if !math.IsNaN(HodgesLehmannShift(nil, []float64{1})) {
		t.Error("empty input should be NaN")
	}
}

func TestHodgesLehmannLargeInputsSubsampled(t *testing.T) {
	r := rng.New(47)
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = r.Normal(10, 1)
		b[i] = r.Normal(7, 1)
	}
	shift := HodgesLehmannShift(a, b)
	if shift < 2.7 || shift > 3.3 {
		t.Errorf("subsampled HL shift = %v, want ~3", shift)
	}
}
