// Package stats implements the statistical machinery of §3.4: exact
// quantiles, distribution-free confidence intervals for medians and for
// differences of medians (Price & Bonett 2002), and weighted CDFs used
// when reporting results weighted by traffic volume (§3.3).
//
// The paper compares aggregations (baseline vs current window, preferred
// vs best alternate route) by computing the difference of medians and a
// 95% confidence interval of that difference without assuming normality.
// A comparison is only considered valid when both sides have at least
// MinSamples measurements and the interval is "tight" (§3.4.1).
package stats

import (
	"math"
	"sort"
)

// MinSamples is the minimum aggregation size the paper requires before a
// comparison is considered at all (§3.4.1).
const MinSamples = 30

// DefaultConfidence is the paper's confidence level (α = 0.95).
const DefaultConfidence = 0.95

// ZScore returns the standard normal quantile for the two-sided
// confidence level conf, e.g. ZScore(0.95) ≈ 1.96.
func ZScore(conf float64) float64 {
	if conf <= 0 {
		return 0
	}
	if conf >= 1 {
		return math.Inf(1)
	}
	p := (1 + conf) / 2
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// Quantile returns the q-th quantile of sorted (ascending) data using
// linear interpolation between order statistics. Returns NaN if empty.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i] + (sorted[i+1]-sorted[i])*frac
}

// Median returns the median of sorted data.
func Median(sorted []float64) float64 { return Quantile(sorted, 0.5) }

// SortCopy returns an ascending-sorted copy of xs.
func SortCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// MedianVariance estimates the variance of the sample median using the
// McKean–Schrader order-statistic estimator that Price & Bonett build on:
// the distance between the order statistics at ranks (n+1)/2 ± z√(n)/2
// spans roughly 2z standard errors of the median.
func MedianVariance(sorted []float64, conf float64) float64 {
	n := len(sorted)
	if n < 3 {
		return math.Inf(1)
	}
	z := ZScore(conf)
	c := int(math.Round(float64(n+1)/2 - z*math.Sqrt(float64(n))/2))
	if c < 1 {
		c = 1
	}
	upper := n - c // 0-based index of X_(n-c+1)
	lower := c - 1 // 0-based index of X_(c)
	if upper <= lower {
		upper = lower + 1
		if upper >= n {
			return math.Inf(1)
		}
	}
	se := (sorted[upper] - sorted[lower]) / (2 * z)
	return se * se
}

// Interval is a confidence interval around a point estimate.
type Interval struct {
	Point float64
	Lo    float64
	Hi    float64
}

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// MedianCI returns a distribution-free confidence interval for the
// median of sorted data, via the McKean–Schrader standard error.
func MedianCI(sorted []float64, conf float64) Interval {
	m := Median(sorted)
	v := MedianVariance(sorted, conf)
	if math.IsInf(v, 1) {
		return Interval{Point: m, Lo: math.Inf(-1), Hi: math.Inf(1)}
	}
	z := ZScore(conf)
	se := math.Sqrt(v)
	return Interval{Point: m, Lo: m - z*se, Hi: m + z*se}
}

// DiffMedianCI returns the Price–Bonett distribution-free confidence
// interval for median(a) − median(b). Inputs must be sorted ascending.
func DiffMedianCI(a, b []float64, conf float64) Interval {
	diff := Median(a) - Median(b)
	va := MedianVariance(a, conf)
	vb := MedianVariance(b, conf)
	if math.IsInf(va, 1) || math.IsInf(vb, 1) {
		return Interval{Point: diff, Lo: math.Inf(-1), Hi: math.Inf(1)}
	}
	z := ZScore(conf)
	se := math.Sqrt(va + vb)
	return Interval{Point: diff, Lo: diff - z*se, Hi: diff + z*se}
}

// QuantileSource is any sketch that can answer quantile queries —
// satisfied by *tdigest.TDigest — so comparisons can run on streaming
// aggregations without retaining raw samples.
type QuantileSource interface {
	Quantile(q float64) float64
	Count() float64
}

// MedianVarianceDigest estimates median variance from a quantile sketch
// by evaluating the sketch at the McKean–Schrader rank positions.
func MedianVarianceDigest(d QuantileSource, conf float64) float64 {
	n := d.Count()
	if n < 3 {
		return math.Inf(1)
	}
	z := ZScore(conf)
	c := math.Round((n+1)/2 - z*math.Sqrt(n)/2)
	if c < 1 {
		c = 1
	}
	qLo := (c - 1) / (n - 1)
	qHi := (n - c) / (n - 1)
	if qHi <= qLo {
		return math.Inf(1)
	}
	se := (d.Quantile(qHi) - d.Quantile(qLo)) / (2 * z)
	return se * se
}

// DiffMedianCIDigest is DiffMedianCI computed from two quantile sketches.
func DiffMedianCIDigest(a, b QuantileSource, conf float64) Interval {
	diff := a.Quantile(0.5) - b.Quantile(0.5)
	va := MedianVarianceDigest(a, conf)
	vb := MedianVarianceDigest(b, conf)
	if math.IsInf(va, 1) || math.IsInf(vb, 1) {
		return Interval{Point: diff, Lo: math.Inf(-1), Hi: math.Inf(1)}
	}
	z := ZScore(conf)
	se := math.Sqrt(va + vb)
	return Interval{Point: diff, Lo: diff - z*se, Hi: diff + z*se}
}

// Comparison is the outcome of comparing two aggregations per §3.4: the
// difference of medians, its confidence interval, and whether the
// comparison is valid for analysis (enough samples, tight interval).
type Comparison struct {
	Interval
	// Valid is true when both sides had ≥ MinSamples and the interval
	// width is below the tightness threshold for the metric.
	Valid bool
}

// Compare runs the paper's comparison recipe on two sketches: it
// requires MinSamples on both sides and a confidence interval narrower
// than maxWidth (10 ms for MinRTTP50, 0.1 for HDratioP50 in the paper).
func Compare(a, b QuantileSource, conf, maxWidth float64) Comparison {
	if a == nil || b == nil || a.Count() < MinSamples || b.Count() < MinSamples {
		return Comparison{Interval: Interval{Point: math.NaN(), Lo: math.Inf(-1), Hi: math.Inf(1)}}
	}
	iv := DiffMedianCIDigest(a, b, conf)
	valid := !math.IsInf(iv.Lo, -1) && !math.IsInf(iv.Hi, 1) && iv.Width() <= maxWidth
	return Comparison{Interval: iv, Valid: valid}
}

// SignificantlyAbove reports whether the difference is confidently above
// threshold: the paper requires the *lower bound* of the confidence
// interval to exceed the threshold (§3.4).
func (c Comparison) SignificantlyAbove(threshold float64) bool {
	return c.Valid && c.Lo > threshold
}

// WeightedPoint is a (value, weight) observation for traffic-weighted
// distributions (§3.3 weights results by session traffic volume).
type WeightedPoint struct {
	Value  float64
	Weight float64
}

// WeightedCDF is an empirical CDF over weighted points.
type WeightedCDF struct {
	pts   []WeightedPoint
	total float64
}

// NewWeightedCDF builds a CDF; points with non-positive weight are
// dropped. The input slice is not retained.
func NewWeightedCDF(pts []WeightedPoint) *WeightedCDF {
	kept := make([]WeightedPoint, 0, len(pts))
	total := 0.0
	for _, p := range pts {
		if p.Weight > 0 && !math.IsNaN(p.Value) {
			kept = append(kept, p)
			total += p.Weight
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Value < kept[j].Value })
	return &WeightedCDF{pts: kept, total: total}
}

// Total returns the total weight.
func (w *WeightedCDF) Total() float64 { return w.total }

// FractionAtOrBelow returns the weight fraction with Value ≤ x.
func (w *WeightedCDF) FractionAtOrBelow(x float64) float64 {
	if w.total == 0 {
		return math.NaN()
	}
	// Binary search for the first point with Value > x.
	i := sort.Search(len(w.pts), func(i int) bool { return w.pts[i].Value > x })
	sum := 0.0
	for _, p := range w.pts[:i] {
		sum += p.Weight
	}
	return sum / w.total
}

// FractionAbove returns the weight fraction with Value > x.
func (w *WeightedCDF) FractionAbove(x float64) float64 {
	f := w.FractionAtOrBelow(x)
	if math.IsNaN(f) {
		return f
	}
	return 1 - f
}

// Quantile returns the smallest value v such that at least q of the
// weight has Value ≤ v.
func (w *WeightedCDF) Quantile(q float64) float64 {
	if w.total == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return w.pts[0].Value
	}
	target := q * w.total
	sum := 0.0
	for _, p := range w.pts {
		sum += p.Weight
		if sum >= target {
			return p.Value
		}
	}
	return w.pts[len(w.pts)-1].Value
}

// Series samples the CDF at n evenly spaced quantiles, for rendering
// figure curves.
func (w *WeightedCDF) Series(n int) []WeightedPoint {
	if n < 2 {
		n = 2
	}
	out := make([]WeightedPoint, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out[i] = WeightedPoint{Value: w.Quantile(q), Weight: q}
	}
	return out
}

// Mean returns the weighted mean of the points.
func (w *WeightedCDF) Mean() float64 {
	if w.total == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, p := range w.pts {
		sum += p.Value * p.Weight
	}
	return sum / w.total
}

// HodgesLehmannShift returns the Hodges–Lehmann estimator of the
// location shift between two samples: the median of all pairwise
// differences a_i − b_j. It is the natural point estimate to pair with
// the distribution-free interval of DiffMedianCI — robust to the tail
// values (§3.3) that corrupt a difference of means. For large samples
// the pair set is subsampled deterministically to bound cost.
func HodgesLehmannShift(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	// Bound the pair count at ~250k by striding deterministically.
	const maxPairs = 1 << 18
	strideA, strideB := 1, 1
	for (len(a)/strideA)*(len(b)/strideB) > maxPairs {
		if len(a)/strideA >= len(b)/strideB {
			strideA++
		} else {
			strideB++
		}
	}
	diffs := make([]float64, 0, (len(a)/strideA+1)*(len(b)/strideB+1))
	for i := 0; i < len(a); i += strideA {
		for j := 0; j < len(b); j += strideB {
			diffs = append(diffs, a[i]-b[j])
		}
	}
	sort.Float64s(diffs)
	return Median(diffs)
}
