package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Comparing two aggregations per §3.4: the difference of medians with a
// distribution-free confidence interval decides whether an alternate
// route is significantly better than the preferred one.
func ExampleDiffMedianCI() {
	preferred := make([]float64, 0, 101)
	alternate := make([]float64, 0, 101)
	for i := 0; i <= 100; i++ {
		preferred = append(preferred, 30+float64(i)/10) // median ≈ 35 ms
		alternate = append(alternate, 20+float64(i)/10) // median ≈ 25 ms
	}
	iv := stats.DiffMedianCI(preferred, alternate, stats.DefaultConfidence)
	fmt.Printf("diff=%.0fms significant@5ms=%v\n", iv.Point, iv.Lo > 5)
	// Output: diff=10ms significant@5ms=true
}
