// Package seggen is the segment-dataset generation pipeline: it runs a
// synthetic world through the collection filter and writes the result
// as a columnar segment store (internal/segstore), resuming from the
// dataset manifest after an interrupt and injecting deterministic
// faults at the batch and write surfaces.
//
// The package exists so the pipeline has exactly one implementation
// with two drivers: cmd/edgesim (the whole world in one process) and
// cmd/edgepopd (one PoP's share of the world per process, for the
// multi-PoP shipping topology in internal/ship). Because generation is
// a pure function of (config, group index), the union of per-PoP
// datasets is byte-identical to the single-process dataset — the
// invariant the shipping layer's end-to-end tests pin.
package seggen

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/segstore"
	"repro/internal/trace"
	"repro/internal/world"
)

// ChunksPerGroup is how many segment-span chunks one group's windows
// cover. Segment IDs are group*ChunksPerGroup + chunk — a stable scheme
// a resumed run re-derives from the same flags, and ascending-ID order
// reproduces the JSONL dataset's (group, window) sample order. The
// scheme is global: a PoP process generating a subset of groups mints
// exactly the IDs the single-process run would for those groups.
func ChunksPerGroup(cfg world.Config) int {
	n := int((time.Duration(cfg.Days)*24*time.Hour + segstore.DefaultSegmentSpan - 1) / segstore.DefaultSegmentSpan)
	if n < 1 {
		n = 1
	}
	return n
}

// Options configures one generation run.
type Options struct {
	// World is the configured world to generate from.
	World *world.World
	// Dir is the segment-dataset directory (created or resumed).
	Dir string
	// Origin pins the dataset identity; resume with a different origin
	// is refused (see segstore.Create).
	Origin string
	// Reg receives pipeline metrics (may be nil).
	Reg *obs.Registry
	// Workers is the generate/encode parallelism (<=1 sequential).
	Workers int
	// Injector injects deterministic batch/write faults (may be nil).
	Injector *faults.Injector
	// FailFast aborts on the first unrecoverable fault instead of
	// tombstoning and degrading.
	FailFast bool
	// Rec records the run's deterministic flight trace (may be nil).
	Rec *trace.Recorder
	// Groups restricts generation to these world-group indices (nil =
	// every group; non-nil empty = none) — the multi-PoP sharding hook:
	// a PoP process passes the groups it owns and the dataset holds
	// exactly their segments. An empty share still commits a manifest,
	// so the PoP can complete its (empty) shipping handshake.
	Groups []int
}

// Result reports one generation run.
type Result struct {
	// Stats are the merged collector totals (accepted, filtered).
	Stats collector.Stats
	// Written counts samples committed by this run.
	Written int
	// Resumed counts groups already fully accounted for by a previous
	// run's manifest and skipped.
	Resumed int
	// Coverage is the degradation ledger (nil without an injector).
	Coverage *faults.Coverage
}

// Run generates opt.World's dataset into the segment store at opt.Dir,
// resuming from its manifest if one exists: only groups the manifest
// does not fully account for (committed or tombstoned) are regenerated,
// and the finished directory is byte-identical to an uninterrupted
// run's at any worker count. Workers generate and encode whole groups
// concurrently; a single ordered tail appends segments and commits the
// manifest once per group, so an interrupt loses at most the groups not
// yet committed. A permanently failed group tombstones its segment IDs
// in the manifest — the loss is recorded in the dataset itself.
func Run(ctx context.Context, opt Options) (Result, error) {
	w, reg, inj, rec := opt.World, opt.Reg, opt.Injector, opt.Rec
	cpg := ChunksPerGroup(w.Cfg)
	span := segstore.DefaultSegmentSpan
	sw, err := segstore.Create(opt.Dir, opt.Origin)
	if err != nil {
		return Result{}, err
	}
	// Publish the manifest before any group lands: an empty share (a
	// PoP that owns no groups) is still a valid dataset whose origin
	// the shipping handshake needs, and a fresh run interrupted before
	// its first group resumes instead of starting from a bare directory.
	if err := sw.Commit(); err != nil {
		return Result{}, err
	}

	owned := opt.Groups
	if owned == nil {
		owned = make([]int, len(w.Groups))
		for gi := range w.Groups {
			owned[gi] = gi
		}
	}

	// The work list: owned groups with any unaccounted chunk. (A group
	// whose chunk produced no samples is regenerated on resume —
	// harmless, the regeneration is deterministic and committed chunks
	// are skipped.)
	var todo []int
	for _, gi := range owned {
		for c := 0; c < cpg; c++ {
			if !sw.Committed(gi*cpg + c) {
				todo = append(todo, gi)
				break
			}
		}
	}
	resumed := len(owned) - len(todo)

	var (
		mu      sync.Mutex
		total   collector.Stats
		cov     faults.Coverage
		written int
	)
	if inj != nil {
		cov.Spec = inj.Plan().Spec()
		cov.FailFast = opt.FailFast
	}
	failFast := opt.FailFast
	encSpan := reg.Span(obs.L("edgesim_stage_seconds", "stage", "encode"), "edgesim")
	writeSpan := reg.Span(obs.L("edgesim_stage_seconds", "stage", "write"), "edgesim")

	type chunk struct {
		id      int
		samples int // accepted (post-filter) rows in the blob
		blob    []byte
		meta    segstore.SegmentMeta
	}
	type segBatch struct {
		order  int
		group  int
		chunks []chunk
		// quarantine, when non-empty, means the whole group fell to a
		// batch fault: the tail tombstones every chunk (rawLost[c] raw
		// samples each) instead of writing.
		quarantine string
		rawLost    []int
		// truncLost carries a truncation's sample loss to the ordered
		// tail, which owns the trace ring the fate events land in.
		truncLost int
	}

	// chunkOf maps a sample to its span chunk, clamped so boundary
	// jitter cannot mint an out-of-range segment ID.
	chunkOf := func(s *sample.Sample) int {
		c := int(s.Start / span)
		if c < 0 {
			c = 0
		}
		if c >= cpg {
			c = cpg - 1
		}
		return c
	}

	workers := opt.Workers
	g := pipeline.NewGroup(ctx)
	g.Trace(rec)
	enc := pipeline.NewStream[segBatch](max(workers, 1))
	enc.Instrument(reg, "write")
	enc.Observe(rec, "write")
	tb := rec.Buf() // owned by the ordered tail goroutine below
	g.Go(func(ctx context.Context) error {
		defer enc.Close()
		return w.GenerateSelected(ctx, workers, todo, func(order int, b world.Batch) error {
			samples := b.Samples
			truncLost := 0
			if b.Lost > 0 { // PoP outage suppressed windows at the source
				mu.Lock()
				cov.SamplesLostOutage += b.Lost
				mu.Unlock()
			}
			switch f := inj.BatchFault(b.Group); f.Kind {
			case faults.BatchOK:
			case faults.BatchTruncate:
				keep := len(samples) - int(float64(len(samples))*f.Frac)
				mu.Lock()
				cov.BatchesTruncated++
				cov.SamplesLostTruncated += len(samples) - keep
				mu.Unlock()
				truncLost = len(samples) - keep
				samples = samples[:keep]
			default: // corrupt or plan-listed failure: the whole batch is gone
				if failFast {
					return fmt.Errorf("group %d batch: %w", b.Group,
						&faults.FaultError{Surface: faults.SurfaceBatch, Key: fmt.Sprintf("world-group-%d", b.Group)})
				}
				mu.Lock()
				cov.GroupsDropped++
				cov.SamplesLostDropped += len(samples)
				cov.Quarantined = append(cov.Quarantined, faults.QuarantinedGroup{
					Key: fmt.Sprintf("world-group-%04d", b.Group), Reason: f.Kind.String(), SamplesLost: len(samples),
				})
				mu.Unlock()
				rawLost := make([]int, cpg)
				for i := range samples {
					rawLost[chunkOf(&samples[i])]++
				}
				return enc.Send(ctx, segBatch{order: order, group: b.Group, quarantine: f.Kind.String(), rawLost: rawLost})
			}

			// Filter (hosting/VPN) and encode. Samples arrive in window
			// order, so chunk runs are contiguous and ascending.
			sp := encSpan.Start()
			var kept []sample.Sample
			c := collector.New(collector.SliceSink(&kept))
			c.Instrument(reg)
			for _, s := range samples {
				c.Offer(s)
			}
			st := c.Stats()
			sb := segBatch{order: order, group: b.Group}
			for lo := 0; lo < len(kept); {
				cid := chunkOf(&kept[lo])
				hi := lo + 1
				for hi < len(kept) && chunkOf(&kept[hi]) == cid {
					hi++
				}
				blob, meta := segstore.EncodeSegment(kept[lo:hi])
				sb.chunks = append(sb.chunks, chunk{id: b.Group*cpg + cid, samples: hi - lo, blob: blob, meta: meta})
				lo = hi
			}
			sp.End()
			sb.truncLost = truncLost
			mu.Lock()
			total = total.Merge(st)
			mu.Unlock()
			return enc.Send(ctx, sb)
		})
	})
	g.Go(func(ctx context.Context) error {
		return pipeline.Reorder(ctx, enc, func(b segBatch) int { return b.order }, 0, func(b segBatch) error {
			track := trace.GroupTrack(b.group)
			if b.quarantine != "" {
				lost := 0
				for _, n := range b.rawLost {
					lost += n
				}
				tb.Emit(trace.Event{
					Track: track, Phase: trace.PhaseBatch, Win: -1, Seq: 0,
					Kind: trace.KFault, Stage: "batch", Value: int64(lost), Detail: b.quarantine,
				})
				tb.Emit(trace.Event{
					Track: track, Phase: trace.PhaseBatch, Win: -1, Seq: 1,
					Kind: trace.KQuarantine, Stage: "batch", Value: int64(lost), Detail: b.quarantine,
				})
				tb.Loss(track, trace.PhaseBatch, -1, 0, "batch", trace.LossDropped, lost)
				for c, n := range b.rawLost {
					sw.Tombstone(b.group*cpg+c, b.quarantine, n)
				}
				return sw.Commit()
			}
			if b.truncLost > 0 {
				tb.Emit(trace.Event{
					Track: track, Phase: trace.PhaseBatch, Win: -1, Seq: 0,
					Kind: trace.KFault, Stage: "batch", Value: int64(b.truncLost), Detail: faults.BatchTruncate.String(),
				})
				tb.Loss(track, trace.PhaseBatch, -1, 0, "batch", trace.LossTruncated, b.truncLost)
			}
			commit := func() error {
				for _, c := range b.chunks {
					if sw.Committed(c.id) {
						continue // survived a previous interrupted run
					}
					if err := sw.Add(c.id, c.blob, c.meta); err != nil {
						return err
					}
				}
				return sw.Commit()
			}
			accepted := 0
			for _, c := range b.chunks {
				accepted += c.samples
			}
			if f := inj.WriteFault(b.group); !f.None() {
				if f.Permanent {
					if failFast {
						return fmt.Errorf("writing group %d segments: %w", b.group,
							&faults.FaultError{Surface: faults.SurfaceWrite, Key: fmt.Sprintf("world-group-%d", b.group)})
					}
					mu.Lock()
					cov.GroupsDropped++
					cov.SamplesLostDropped += accepted
					cov.Quarantined = append(cov.Quarantined, faults.QuarantinedGroup{
						Key: fmt.Sprintf("world-group-%04d", b.group), Reason: "permanent write failure", SamplesLost: accepted,
					})
					mu.Unlock()
					tb.Emit(trace.Event{
						Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 0,
						Kind: trace.KFault, Stage: "write", Value: int64(accepted), Detail: "write-permanent",
					})
					tb.Emit(trace.Event{
						Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 1,
						Kind: trace.KQuarantine, Stage: "write", Value: int64(accepted), Detail: "permanent write failure",
					})
					tb.Loss(track, trace.PhaseCommit, -1, 0, "write", trace.LossDropped, accepted)
					for _, c := range b.chunks {
						sw.Tombstone(c.id, "permanent write failure", c.samples)
					}
					return sw.Commit()
				}
				// Transient streak: retry with backoff until the writer
				// heals, wrapping the real commit so its own errors (full
				// disk) still surface as permanent.
				rem := f.Transient
				tb.Emit(trace.Event{
					Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 0,
					Kind: trace.KFault, Stage: "write", Value: int64(rem), Detail: "write-transient",
				})
				p := inj.Policy(b.group)
				p.OnRetry = func(int, error) {
					mu.Lock()
					cov.RetriesSpent++
					mu.Unlock()
				}
				p = faults.TracedPolicy(p, tb, track, trace.PhaseCommit, -1, 0, "write")
				err := faults.Retry(ctx, p, func() error {
					if rem > 0 {
						rem--
						return &faults.FaultError{Surface: faults.SurfaceWrite,
							Key: fmt.Sprintf("world-group-%d", b.group), Transient: true}
					}
					sp := writeSpan.Start()
					defer sp.End()
					return commit()
				})
				if err != nil {
					if failFast || !faults.IsTransient(err) {
						return err
					}
					mu.Lock()
					cov.GroupsDropped++
					cov.SamplesLostDropped += accepted
					cov.Quarantined = append(cov.Quarantined, faults.QuarantinedGroup{
						Key: fmt.Sprintf("world-group-%04d", b.group), Reason: "write retry budget exhausted", SamplesLost: accepted,
					})
					mu.Unlock()
					tb.Emit(trace.Event{
						Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 1,
						Kind: trace.KQuarantine, Stage: "write", Value: int64(accepted), Detail: "write retry budget exhausted",
					})
					tb.Loss(track, trace.PhaseCommit, -1, 0, "write", trace.LossDropped, accepted)
					for _, c := range b.chunks {
						sw.Tombstone(c.id, "write retry budget exhausted", c.samples)
					}
					return sw.Commit()
				}
				mu.Lock()
				cov.TransientRecovered++
				mu.Unlock()
				inj.Recovered()
				written += accepted
				tb.Emit(trace.Event{
					Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 2,
					Kind: trace.KCommit, Stage: "write", Value: int64(accepted),
				})
				return nil
			}
			sp := writeSpan.Start()
			defer sp.End()
			if err := commit(); err != nil {
				return err
			}
			written += accepted
			tb.Emit(trace.Event{
				Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 2,
				Kind: trace.KCommit, Stage: "write", Value: int64(accepted),
			})
			return nil
		})
	})
	err = g.Wait()
	mu.Lock()
	st := total
	mu.Unlock()
	res := Result{Stats: st, Written: written, Resumed: resumed}
	if inj == nil {
		return res, err
	}
	cov.Finalize()
	if cov.Degraded() {
		inj.MarkDegraded()
	}
	cov.EmitTrace(tb) // tail goroutine has returned; the caller owns the ring now
	res.Coverage = &cov
	return res, err
}

// OwnedGroups partitions the world's group indices across a fleet of
// pops processes and returns the share pop owns: every group whose
// serving PoP hashes (FNV-1a) to this index. Sharding by PoP keeps
// each PoP's traffic — and therefore each user group, whose key
// includes the PoP — wholly inside one process, mirroring the paper's
// deployment; the union over all indices covers every group exactly
// once, so the shipped datasets reassemble the whole world.
func OwnedGroups(w *world.World, pop, pops int) []int {
	if pops <= 1 {
		owned := make([]int, len(w.Groups))
		for gi := range w.Groups {
			owned[gi] = gi
		}
		return owned
	}
	owned := []int{} // non-nil even when the share is empty: nil means "all" to Run
	for gi := range w.Groups {
		h := fnv.New32a()
		_, _ = h.Write([]byte(w.Groups[gi].PoP)) // hash.Hash.Write never errors
		if int(h.Sum32())%pops == pop {
			owned = append(owned, gi)
		}
	}
	return owned
}
