package seggen

import (
	"context"
	"testing"

	"repro/internal/segstore"
	"repro/internal/world"
)

// TestOwnedGroupsPartition: the fleet's shares must cover every group
// exactly once at any fleet size — the precondition for the merged
// spool being byte-identical to a single-process dataset — and an
// empty share must be non-nil (nil means "every group" to Run, which
// would turn a PoP with no traffic into a full duplicate generator).
func TestOwnedGroupsPartition(t *testing.T) {
	w := world.New(world.Config{Seed: 7, Groups: 23, Days: 1, SessionsPerGroupWindow: 2})
	for pops := 1; pops <= 6; pops++ {
		seen := map[int]int{}
		for pop := 0; pop < pops; pop++ {
			owned := OwnedGroups(w, pop, pops)
			if owned == nil {
				t.Fatalf("pops=%d pop=%d: nil share; empty shares must stay non-nil", pops, pop)
			}
			for _, gi := range owned {
				seen[gi]++
			}
			// Sharding follows the serving PoP: a group's whole PoP rides
			// with it, mirroring the paper's per-PoP collectors.
			for _, gi := range owned {
				for gj := range w.Groups {
					if w.Groups[gj].PoP == w.Groups[gi].PoP && seen[gj] == 0 && pop == pops-1 {
						t.Fatalf("pops=%d: group %d shares PoP %s with owned group %d but is unassigned", pops, gj, w.Groups[gj].PoP, gi)
					}
				}
			}
		}
		for gi := range w.Groups {
			if seen[gi] != 1 {
				t.Fatalf("pops=%d: group %d assigned %d times, want exactly once", pops, gi, seen[gi])
			}
		}
	}
}

// TestRunEmptyShare: a PoP that owns nothing still commits a valid,
// empty dataset — its shipping phase needs the manifest's origin for
// the hello/done handshake.
func TestRunEmptyShare(t *testing.T) {
	dir := t.TempDir()
	w := world.New(world.Config{Seed: 7, Groups: 5, Days: 1, SessionsPerGroupWindow: 2})
	res, err := Run(context.Background(), Options{
		World: w, Dir: dir, Origin: "test origin", Groups: []int{},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Written != 0 {
		t.Fatalf("empty share wrote %d samples", res.Written)
	}
	r, err := segstore.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = r.Close() }() // read-only dataset; nothing to flush
	if man := r.Manifest(); len(man.Segments) != 0 || man.Origin != "test origin" {
		t.Fatalf("manifest = %d segments, origin %q", len(man.Segments), man.Origin)
	}
}
