package tdigest

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// AddAll must be state-identical to the same values through Add one at
// a time — same centroids, same buffer, same bounds — because the
// columnar aggregation path relies on that identity for byte-identical
// reports. The slice lengths straddle the 8×compression process()
// trigger so both the buffered and compacted regimes are compared.
func TestAddAllMatchesAddLoop(t *testing.T) {
	for _, n := range []int{0, 1, 100, 799, 800, 801, 5000} {
		r := rng.ChildAt(42, "addall", n)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
			if i%97 == 13 {
				xs[i] = math.NaN() // AddAll must skip these like Add does
			}
		}

		one, bulk := New(100), New(100)
		adds := 0
		for _, x := range xs {
			if !math.IsNaN(x) {
				adds++
			}
			one.Add(x)
		}
		if got := bulk.AddAll(xs); got != adds {
			t.Fatalf("n=%d: AddAll inserted %d, want %d", n, got, adds)
		}

		if one.Count() != bulk.Count() {
			t.Fatalf("n=%d: Count %v vs %v", n, one.Count(), bulk.Count())
		}
		if adds > 0 && (one.Min() != bulk.Min() || one.Max() != bulk.Max()) {
			t.Fatalf("n=%d: bounds (%v,%v) vs (%v,%v)", n, one.Min(), one.Max(), bulk.Min(), bulk.Max())
		}
		m1, w1 := one.Centroids()
		m2, w2 := bulk.Centroids()
		if len(m1) != len(m2) {
			t.Fatalf("n=%d: %d centroids vs %d — compaction points diverged", n, len(m1), len(m2))
		}
		for i := range m1 {
			if m1[i] != m2[i] || w1[i] != w2[i] {
				t.Fatalf("n=%d: centroid %d differs: (%v,%v) vs (%v,%v)", n, i, m1[i], w1[i], m2[i], w2[i])
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			a, b := one.Quantile(q), bulk.Quantile(q)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("n=%d: Quantile(%v) %v vs %v", n, q, a, b)
			}
		}
	}
}

// Chunked AddAll calls interleaved with single Adds must still be
// identical to the flat Add loop: the batch path flushes per cell, so
// mixed feeding is the production pattern.
func TestAddAllChunked(t *testing.T) {
	r := rng.New(7).Child("addall-chunks")
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = r.Normal(0, 1)
	}
	one, mixed := New(50), New(50)
	for _, x := range xs {
		one.Add(x)
	}
	for i := 0; i < len(xs); {
		c := r.IntN(200) + 1
		if i+c > len(xs) {
			c = len(xs) - i
		}
		if c%3 == 0 {
			for _, x := range xs[i : i+c] {
				mixed.Add(x)
			}
		} else {
			mixed.AddAll(xs[i : i+c])
		}
		i += c
	}
	m1, w1 := one.Centroids()
	m2, w2 := mixed.Centroids()
	if len(m1) != len(m2) {
		t.Fatalf("%d centroids vs %d", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] || w1[i] != w2[i] {
			t.Fatalf("centroid %d differs", i)
		}
	}
}
