package tdigest

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// empiricalRank returns the fraction of values ≤ x (values sorted).
func empiricalRank(sorted []float64, x float64) float64 {
	return float64(sort.SearchFloat64s(sorted, x)) / float64(len(sorted))
}

// Property: a digest assembled by merging k shard digests must agree
// with a single digest fed the same data — Count and Mean exactly,
// quantiles within the compression tolerance. This is the contract the
// sharded aggregation pipeline's deterministic merge rests on.
func TestMergePropertyQuantiles(t *testing.T) {
	distributions := []struct {
		name string
		draw func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) * 40 }},
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return 20 + r.NormFloat64()*2
			}
			return 80 + r.NormFloat64()*5
		}},
	}
	for _, dist := range distributions {
		for _, shards := range []int{2, 4, 16} {
			r := rand.New(rand.NewSource(42))
			const n = 50_000
			values := make([]float64, n)
			for i := range values {
				values[i] = dist.draw(r)
			}

			single := New(100)
			parts := make([]*TDigest, shards)
			for i := range parts {
				parts[i] = New(100)
			}
			for i, v := range values {
				single.Add(v)
				parts[i%shards].Add(v)
			}
			merged := New(100)
			for _, p := range parts {
				merged.Merge(p)
			}

			if got, want := merged.Count(), single.Count(); got != want {
				t.Errorf("%s/%d shards: merged count %v, want %v", dist.name, shards, got, want)
			}
			if got, want := merged.Mean(), single.Mean(); math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Errorf("%s/%d shards: merged mean %v, want %v", dist.name, shards, got, want)
			}
			if merged.Min() != single.Min() || merged.Max() != single.Max() {
				t.Errorf("%s/%d shards: merged min/max (%v,%v) want (%v,%v)",
					dist.name, shards, merged.Min(), merged.Max(), single.Min(), single.Max())
			}

			// Accuracy is asserted in rank space — Quantile(q) must land
			// at empirical rank ≈ q — which stays well-conditioned even
			// where the density has gaps (value-space comparison blows up
			// in the bimodal trough, where the CDF is flat). Merged
			// digests get twice the single-digest budget: re-merging
			// already-merged centroids coarsens resolution by about that.
			sorted := append([]float64(nil), values...)
			sort.Float64s(sorted)
			for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				if r := empiricalRank(sorted, single.Quantile(q)); math.Abs(r-q) > 0.02 {
					t.Errorf("%s/%d shards: single q%.2f landed at rank %.4f", dist.name, shards, q, r)
				}
				if r := empiricalRank(sorted, merged.Quantile(q)); math.Abs(r-q) > 0.04 {
					t.Errorf("%s/%d shards: merged q%.2f landed at rank %.4f", dist.name, shards, q, r)
				}
			}
		}
	}
}

// Compact must not change any observable value, and must make reads
// pure (exercised for real by the race-detector tests in agg/study).
func TestCompactIsObservationallyIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := New(100)
	for i := 0; i < 10_000; i++ {
		d.Add(r.NormFloat64() * 10)
	}
	before := []float64{d.Count(), d.Quantile(0.5), d.Quantile(0.9), d.Mean(), d.Min(), d.Max()}
	d.Compact()
	d.Compact()
	after := []float64{d.Count(), d.Quantile(0.5), d.Quantile(0.9), d.Mean(), d.Min(), d.Max()}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("observable %d changed across Compact: %v -> %v", i, before[i], after[i])
		}
	}
}

// Merging an empty or nil digest must be a no-op.
func TestMergeEmptyAndNil(t *testing.T) {
	d := New(100)
	for i := 0; i < 100; i++ {
		d.Add(float64(i))
	}
	want := d.Quantile(0.5)
	d.Merge(New(100))
	d.Merge(nil)
	if got := d.Quantile(0.5); got != want {
		t.Fatalf("median changed after empty merges: %v -> %v", want, got)
	}
	if d.Count() != 100 {
		t.Fatalf("count = %v, want 100", d.Count())
	}
}
