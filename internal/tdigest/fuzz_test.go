package tdigest

import (
	"math"
	"testing"
)

// FuzzTDigestMerge splits an arbitrary value stream across two digests,
// merges them, and checks the structural invariants the aggregation
// layer depends on: the merge never loses the extremes, the count is
// exact, and quantiles are monotone in q and bounded by [min, max].
func FuzzTDigestMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{9, 8, 7, 6}, uint8(50))
	f.Add([]byte{}, []byte{0, 255}, uint8(0))
	f.Add([]byte{0, 0, 0, 0}, []byte{255, 255, 255, 255}, uint8(255))
	f.Fuzz(func(t *testing.T, a, b []byte, comp uint8) {
		compression := 20 + float64(comp)
		da, db := New(compression), New(compression)
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		feed := func(d *TDigest, raw []byte) {
			for i := 0; i+1 < len(raw); i += 2 {
				v := float64(int16(uint16(raw[i])<<8|uint16(raw[i+1]))) / 8
				d.Add(v)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				n++
			}
		}
		feed(da, a)
		feed(db, b)
		da.Merge(db)
		if n == 0 {
			return
		}
		if got := da.Count(); got != float64(n) {
			t.Fatalf("merged count = %v, want %d", got, n)
		}
		if da.Min() != lo || da.Max() != hi {
			t.Fatalf("merge lost extremes: got [%v, %v], want [%v, %v]",
				da.Min(), da.Max(), lo, hi)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := da.Quantile(q)
			if math.IsNaN(v) {
				t.Fatalf("Quantile(%v) is NaN with %d points", q, n)
			}
			if v < prev {
				t.Fatalf("quantiles not monotone: Quantile(%v)=%v < previous %v", q, v, prev)
			}
			if v < lo || v > hi {
				t.Fatalf("Quantile(%v)=%v outside data range [%v, %v]", q, v, lo, hi)
			}
			prev = v
		}
	})
}
