package tdigest_test

import (
	"fmt"
	"math"

	"repro/internal/tdigest"
)

// A digest summarises a stream of latencies in bounded memory and
// answers quantile queries — the per-aggregation sketch of §3.4.1.
func Example() {
	d := tdigest.New(tdigest.DefaultCompression)
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i)) // e.g. MinRTT samples in ms
	}
	fmt.Printf("p50=%.0f p99=%.0f n=%.0f\n", d.Quantile(0.5), d.Quantile(0.99), d.Count())
	// Output: p50=500 p99=990 n=1000
}

// Digests merge losslessly in count and approximately in shape, which
// is how per-server sketches combine into per-PoP aggregations.
func ExampleTDigest_Merge() {
	a, b := tdigest.New(100), tdigest.New(100)
	for i := 1; i <= 500; i++ {
		a.Add(float64(i))
		b.Add(float64(500 + i))
	}
	a.Merge(b)
	fmt.Printf("n=%.0f p50≈%.0f\n", a.Count(), math.Round(a.Quantile(0.5)/50)*50)
	// Output: n=1000 p50≈500
}
