// Package tdigest implements the merging t-digest of Dunning & Ertl
// ("Computing Extremely Accurate Quantiles Using t-Digests",
// arXiv:1902.04023), the streaming quantile sketch the paper cites for
// computing percentiles and confidence intervals in near real time
// (§3.4.1, footnote 11).
//
// The digest maintains a set of centroids whose sizes are bounded by the
// k1 scale function, which concentrates resolution near the tails while
// keeping memory bounded by the compression parameter. Aggregations in
// this repository use a digest per (user group, window, route, metric).
package tdigest

import (
	"math"
	"sort"
)

// TDigest is a streaming quantile sketch. The zero value is not usable;
// call New.
type TDigest struct {
	compression float64

	// Processed centroids, sorted by mean.
	means   []float64
	weights []float64
	total   float64

	// Unprocessed points buffered until the next merge.
	bufMeans   []float64
	bufWeights []float64
	bufTotal   float64

	min, max float64
}

// DefaultCompression trades ~1KB of state for roughly 0.1–1% quantile
// error at the median and much better accuracy at the tails.
const DefaultCompression = 100

// New returns an empty digest with the given compression (δ). Larger
// compression means more centroids and better accuracy.
func New(compression float64) *TDigest {
	if compression < 20 {
		compression = 20
	}
	return &TDigest{
		compression: compression,
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add inserts a value with weight 1.
func (t *TDigest) Add(x float64) { t.AddWeighted(x, 1) }

// AddWeighted inserts a value with the given weight. NaN values and
// non-positive weights are ignored.
func (t *TDigest) AddWeighted(x, w float64) {
	if math.IsNaN(x) || w <= 0 {
		return
	}
	t.bufMeans = append(t.bufMeans, x)
	t.bufWeights = append(t.bufWeights, w)
	t.bufTotal += w
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	if len(t.bufMeans) >= int(8*t.compression) {
		t.process()
	}
}

// AddAll inserts every value of xs with weight 1 and returns the
// number inserted (NaN values are skipped, like Add). It is
// state-identical to calling Add in a loop — values append to the same
// buffer and the fold triggers at exactly the same points — just
// without the per-call overhead, so digests fed by the columnar batch
// path match digests fed row-at-a-time bit for bit.
func (t *TDigest) AddAll(xs []float64) int {
	limit := int(8 * t.compression)
	added := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		t.bufMeans = append(t.bufMeans, x)
		t.bufWeights = append(t.bufWeights, 1)
		t.bufTotal++
		added++
		if x < t.min {
			t.min = x
		}
		if x > t.max {
			t.max = x
		}
		if len(t.bufMeans) >= limit {
			t.process()
		}
	}
	return added
}

// Count returns the total weight added.
func (t *TDigest) Count() float64 { return t.total + t.bufTotal }

// Min returns the smallest value added, or +Inf if empty.
func (t *TDigest) Min() float64 { return t.min }

// Max returns the largest value added, or -Inf if empty.
func (t *TDigest) Max() float64 { return t.max }

// Merge folds other into t — the mergeability property (§3.4.1,
// footnote 11) that lets shard-local aggregations combine into a global
// one. Centroids carry their accumulated weight across, so Count and
// Mean are preserved exactly and quantiles stay within the usual
// compression tolerance. The other digest is compacted but its contents
// are unchanged; merging nil is a no-op.
func (t *TDigest) Merge(other *TDigest) {
	if other == nil {
		return
	}
	other.process()
	for i := range other.means {
		t.AddWeighted(other.means[i], other.weights[i])
	}
	// Centroid means never reach the extremes, so the true min/max must
	// carry over explicitly or the merged digest's tails collapse to the
	// outermost centroids.
	if other.min < t.min {
		t.min = other.min
	}
	if other.max > t.max {
		t.max = other.max
	}
}

// Compact folds any buffered points into the centroid set. Adds are
// buffered for speed, and every read path (Quantile, CDF, Mean, ...)
// triggers the fold lazily — a hidden mutation that makes concurrent
// reads a data race. After Compact, reads are pure until the next Add
// or Merge, so a compacted digest may be shared by concurrent readers;
// the aggregation store seals every digest this way before the analysis
// fan-out.
func (t *TDigest) Compact() { t.process() }

// k1 scale function and its inverse, mapping quantile space to k space.
func (t *TDigest) k(q float64) float64 {
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

func (t *TDigest) kInv(k float64) float64 {
	return (math.Sin(k*2*math.Pi/t.compression) + 1) / 2
}

// process merges buffered points into the centroid set.
func (t *TDigest) process() {
	if len(t.bufMeans) == 0 {
		return
	}
	means := append(t.means, t.bufMeans...)
	weights := append(t.weights, t.bufWeights...)
	t.bufMeans = t.bufMeans[:0]
	t.bufWeights = t.bufWeights[:0]
	total := t.total + t.bufTotal
	t.bufTotal = 0

	idx := make([]int, len(means))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return means[idx[a]] < means[idx[b]] })

	outM := make([]float64, 0, int(t.compression)*2)
	outW := make([]float64, 0, int(t.compression)*2)

	soFar := 0.0
	curM, curW := means[idx[0]], weights[idx[0]]
	qLimit := t.kInv(t.k(0) + 1)
	for _, i := range idx[1:] {
		m, w := means[i], weights[i]
		projected := (soFar + curW + w) / total
		if projected <= qLimit {
			// Merge into the current centroid.
			curM += (m - curM) * w / (curW + w)
			curW += w
			continue
		}
		outM = append(outM, curM)
		outW = append(outW, curW)
		soFar += curW
		qLimit = t.kInv(t.k(soFar/total) + 1)
		curM, curW = m, w
	}
	outM = append(outM, curM)
	outW = append(outW, curW)

	t.means, t.weights, t.total = outM, outW, total
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]).
// It returns NaN for an empty digest.
func (t *TDigest) Quantile(q float64) float64 {
	t.process()
	if t.total == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	if len(t.means) == 1 {
		return t.means[0]
	}

	target := q * t.total
	// Walk centroids tracking the cumulative weight at each centroid's
	// midpoint, interpolating linearly between midpoints.
	cum := 0.0
	for i := range t.means {
		mid := cum + t.weights[i]/2
		if target < mid {
			if i == 0 {
				// Between min and the first centroid midpoint.
				lo, hi := t.min, t.means[0]
				frac := target / mid
				return lo + (hi-lo)*frac
			}
			prevMid := cum - t.weights[i-1]/2
			frac := (target - prevMid) / (mid - prevMid)
			return t.means[i-1] + (t.means[i]-t.means[i-1])*frac
		}
		cum += t.weights[i]
	}
	// Between the last centroid midpoint and max.
	lastMid := t.total - t.weights[len(t.weights)-1]/2
	frac := (target - lastMid) / (t.total - lastMid)
	if frac > 1 {
		frac = 1
	}
	last := t.means[len(t.means)-1]
	return last + (t.max-last)*frac
}

// CDF returns an estimate of the fraction of mass at or below x.
func (t *TDigest) CDF(x float64) float64 {
	t.process()
	if t.total == 0 {
		return math.NaN()
	}
	if x < t.min {
		return 0
	}
	if x >= t.max {
		return 1
	}
	if len(t.means) == 1 {
		// Single centroid: interpolate across [min, max].
		if t.max == t.min {
			return 1
		}
		return (x - t.min) / (t.max - t.min)
	}
	cum := 0.0
	for i := range t.means {
		if x < t.means[i] {
			if i == 0 {
				if t.means[0] == t.min {
					return 0
				}
				return (x - t.min) / (t.means[0] - t.min) * (t.weights[0] / 2) / t.total
			}
			prevMid := cum - t.weights[i-1]/2
			mid := cum + t.weights[i]/2
			frac := (x - t.means[i-1]) / (t.means[i] - t.means[i-1])
			return (prevMid + frac*(mid-prevMid)) / t.total
		}
		cum += t.weights[i]
	}
	return 1
}

// Mean returns the exact weighted mean of all values added (NaN when
// empty). Unlike quantiles, the mean is preserved exactly by centroid
// merging.
func (t *TDigest) Mean() float64 {
	t.process()
	if t.total == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range t.means {
		sum += t.means[i] * t.weights[i]
	}
	return sum / t.total
}

// Centroids returns copies of the centroid means and weights, mainly for
// testing and debugging.
func (t *TDigest) Centroids() (means, weights []float64) {
	t.process()
	return append([]float64(nil), t.means...), append([]float64(nil), t.weights...)
}
