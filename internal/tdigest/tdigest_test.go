package tdigest

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i] + (sorted[i+1]-sorted[i])*frac
}

func TestEmpty(t *testing.T) {
	d := New(100)
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Error("empty digest quantile should be NaN")
	}
	if !math.IsNaN(d.CDF(1)) {
		t.Error("empty digest CDF should be NaN")
	}
	if d.Count() != 0 {
		t.Error("empty digest count != 0")
	}
}

func TestSingleValue(t *testing.T) {
	d := New(100)
	d.Add(42)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := d.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", q, got)
		}
	}
	if d.Min() != 42 || d.Max() != 42 {
		t.Error("min/max wrong for single value")
	}
}

func TestIgnoresBadInput(t *testing.T) {
	d := New(100)
	d.Add(math.NaN())
	d.AddWeighted(5, 0)
	d.AddWeighted(5, -1)
	if d.Count() != 0 {
		t.Errorf("bad inputs were counted: %v", d.Count())
	}
}

func TestUniformAccuracy(t *testing.T) {
	r := rng.New(1)
	d := New(100)
	n := 100000
	vals := make([]float64, n)
	for i := range vals {
		v := r.Float64() * 1000
		vals[i] = v
		d.Add(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := d.Quantile(q)
		want := exactQuantile(vals, q)
		if math.Abs(got-want) > 12 { // 1.2% of range
			t.Errorf("Quantile(%v) = %v, exact %v", q, got, want)
		}
	}
}

func TestLogNormalAccuracy(t *testing.T) {
	r := rng.New(2)
	d := New(200)
	n := 50000
	vals := make([]float64, n)
	for i := range vals {
		v := r.LogNormalMedian(40, 0.6)
		vals[i] = v
		d.Add(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := d.Quantile(q)
		want := exactQuantile(vals, q)
		rel := math.Abs(got-want) / want
		if rel > 0.03 {
			t.Errorf("Quantile(%v) = %v, exact %v (rel err %v)", q, got, want, rel)
		}
	}
}

func TestQuantileMonotonic(t *testing.T) {
	r := rng.New(3)
	d := New(100)
	for i := 0; i < 10000; i++ {
		d.Add(r.Normal(0, 10))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := d.Quantile(q)
		if v < prev-1e-9 {
			t.Fatalf("quantile not monotonic at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestQuantileWithinBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		d := New(50)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 500; i++ {
			v := r.Normal(0, 100)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			d.Add(v)
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := d.Quantile(q)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCDFInvertsQuantile(t *testing.T) {
	r := rng.New(5)
	d := New(200)
	for i := 0; i < 50000; i++ {
		d.Add(r.Float64() * 100)
	}
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		x := d.Quantile(q)
		back := d.CDF(x)
		if math.Abs(back-q) > 0.02 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, back)
		}
	}
}

func TestCDFBounds(t *testing.T) {
	d := New(100)
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if got := d.CDF(0); got != 0 {
		t.Errorf("CDF below min = %v", got)
	}
	if got := d.CDF(200); got != 1 {
		t.Errorf("CDF above max = %v", got)
	}
}

func TestMerge(t *testing.T) {
	r := rng.New(7)
	a, b, all := New(100), New(100), New(100)
	for i := 0; i < 20000; i++ {
		v := r.LogNormalMedian(10, 1)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		all.Add(v)
	}
	a.Merge(b)
	if math.Abs(a.Count()-all.Count()) > 1e-6 {
		t.Errorf("merged count %v, want %v", a.Count(), all.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		ma, mall := a.Quantile(q), all.Quantile(q)
		if math.Abs(ma-mall)/mall > 0.05 {
			t.Errorf("merged Quantile(%v) = %v, combined %v", q, ma, mall)
		}
	}
}

func TestMergeNil(t *testing.T) {
	d := New(100)
	d.Add(1)
	d.Merge(nil) // must not panic
	if d.Count() != 1 {
		t.Error("merge nil changed count")
	}
}

func TestWeightedMedian(t *testing.T) {
	d := New(100)
	// 10 mass at 1, 1 mass at 100: median must be near 1.
	d.AddWeighted(1, 10)
	d.AddWeighted(100, 1)
	if m := d.Quantile(0.5); m > 50 {
		t.Errorf("weighted median = %v, want near 1", m)
	}
}

func TestCompressionBoundsCentroids(t *testing.T) {
	r := rng.New(9)
	d := New(100)
	for i := 0; i < 200000; i++ {
		d.Add(r.Float64())
	}
	means, _ := d.Centroids()
	if len(means) > 300 {
		t.Errorf("too many centroids: %d", len(means))
	}
	// Centroids must be sorted.
	if !sort.Float64sAreSorted(means) {
		t.Error("centroids not sorted")
	}
}

func TestLowCompressionClamped(t *testing.T) {
	d := New(1) // clamps to 20
	for i := 0; i < 1000; i++ {
		d.Add(float64(i))
	}
	med := d.Quantile(0.5)
	if med < 300 || med > 700 {
		t.Errorf("clamped-compression median %v too inaccurate", med)
	}
}

func BenchmarkAdd(b *testing.B) {
	r := rng.New(1)
	d := New(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(r.Float64())
	}
}

func BenchmarkQuantile(b *testing.B) {
	r := rng.New(1)
	d := New(100)
	for i := 0; i < 100000; i++ {
		d.Add(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Quantile(0.5)
	}
}

func TestMean(t *testing.T) {
	d := New(100)
	if !math.IsNaN(d.Mean()) {
		t.Error("empty mean should be NaN")
	}
	r := rng.New(31)
	sum, n := 0.0, 50000
	for i := 0; i < n; i++ {
		v := r.LogNormalMedian(10, 1)
		sum += v
		d.Add(v)
	}
	want := sum / float64(n)
	if math.Abs(d.Mean()-want)/want > 1e-9 {
		t.Errorf("Mean = %v, exact %v (must be preserved by merging)", d.Mean(), want)
	}
}

func TestMeanWeighted(t *testing.T) {
	d := New(100)
	d.AddWeighted(1, 3)
	d.AddWeighted(9, 1)
	if got := d.Mean(); got != 3 {
		t.Errorf("weighted mean = %v, want 3", got)
	}
}
