package edgefabric

import (
	"math"
	"testing"

	"repro/internal/bgp"
	"repro/internal/rng"
	"repro/internal/units"
)

func controller(capacities ...units.Rate) *Controller {
	var ics []*Interconnect
	for i, cap := range capacities {
		ics = append(ics, &Interconnect{
			Route:    bgp.Route{ID: string(rune('a' + i))},
			Capacity: cap,
		})
	}
	return New(ics)
}

func TestPrefersPolicyRouteWhenIdle(t *testing.T) {
	c := controller(10*units.Gbps, 10*units.Gbps)
	if got := c.Route(); got != 0 {
		t.Errorf("idle route = %d, want 0", got)
	}
	if c.Detouring() {
		t.Error("idle controller should not detour")
	}
}

func TestDetoursUnderPressure(t *testing.T) {
	c := controller(10*units.Gbps, 10*units.Gbps, 10*units.Gbps)
	// Saturate the preferred interconnect (EWMA needs a few samples).
	for i := 0; i < 30; i++ {
		if err := c.ObserveLoad(0, 9.8e9); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Route(); got != 1 {
		t.Errorf("route under pressure = %d, want 1 (first alternate)", got)
	}
	if !c.Detouring() {
		t.Error("Detouring should report true")
	}
	// Saturate the first alternate too: overflow moves to the second.
	for i := 0; i < 30; i++ {
		c.ObserveLoad(1, 9.9e9)
	}
	if got := c.Route(); got != 2 {
		t.Errorf("route = %d, want 2", got)
	}
}

func TestAllHotFallsBackToPreferred(t *testing.T) {
	c := controller(units.Gbps, units.Gbps)
	for i := 0; i < 30; i++ {
		c.ObserveLoad(0, 2e9)
		c.ObserveLoad(1, 2e9)
	}
	if got := c.Route(); got != 0 {
		t.Errorf("all-hot route = %d, want preferred", got)
	}
}

func TestLoadDrainsViaEWMA(t *testing.T) {
	c := controller(units.Gbps, units.Gbps)
	for i := 0; i < 30; i++ {
		c.ObserveLoad(0, 2e9)
	}
	if !c.Detouring() {
		t.Fatal("should detour while hot")
	}
	for i := 0; i < 50; i++ {
		c.ObserveLoad(0, 0)
	}
	if c.Detouring() {
		t.Error("load should have drained")
	}
}

func TestObserveLoadBounds(t *testing.T) {
	c := controller(units.Gbps)
	if err := c.ObserveLoad(5, 1); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := c.ObserveLoad(-1, 1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestUtilizationZeroCapacity(t *testing.T) {
	ic := &Interconnect{}
	if got := ic.Utilization(); got != 0 {
		t.Errorf("zero-capacity utilization = %v", got)
	}
}

func TestPinnerShares(t *testing.T) {
	p := DefaultPinner()
	r := rng.New(1)
	counts := map[int]int{}
	n := 200000
	for i := 0; i < n; i++ {
		counts[p.Pin(r, 3)]++
	}
	pref := float64(counts[0]) / float64(n)
	if math.Abs(pref-0.47) > 0.01 {
		t.Errorf("preferred share = %v, want 0.47", pref)
	}
	// Alternates split evenly.
	a1 := float64(counts[1]) / float64(n)
	a2 := float64(counts[2]) / float64(n)
	if math.Abs(a1-a2) > 0.01 {
		t.Errorf("alternates unbalanced: %v vs %v", a1, a2)
	}
}

func TestPinnerSingleRoute(t *testing.T) {
	p := DefaultPinner()
	r := rng.New(2)
	for i := 0; i < 100; i++ {
		if p.Pin(r, 1) != 0 {
			t.Fatal("single-route pin must be 0")
		}
	}
}

func TestPinnerBadShareDefaults(t *testing.T) {
	p := Pinner{PreferredShare: 0}
	r := rng.New(3)
	pref := 0
	for i := 0; i < 10000; i++ {
		if p.Pin(r, 2) == 0 {
			pref++
		}
	}
	if pref < 4200 || pref > 5200 {
		t.Errorf("defaulted share gives %d/10000 preferred", pref)
	}
}
