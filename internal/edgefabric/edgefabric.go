// Package edgefabric models Facebook's SDN egress controller of the
// same name (§2.2.3, [55]): per destination prefix it normally follows
// the static BGP policy, but when the preferred route's interconnect
// approaches capacity it detours a fraction of flows onto alternates to
// prevent congestion.
//
// Two properties matter to the measurement study:
//
//   - Measurement pinning: sampled HTTP sessions override the
//     controller's detours in coordination with it — the preferred
//     route's samples always measure the *policy-preferred* route, and
//     a fixed share of sessions is pinned to each alternate (§2.2.3),
//     so the analysis is never polluted by capacity shifts.
//
//   - Capacity awareness: alternates that measure well may still lack
//     the capacity for full production traffic (§6.2.2), which is the
//     paper's core caveat about acting on opportunity.
package edgefabric

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/units"
)

// Interconnect is one egress port's capacity state at a PoP.
type Interconnect struct {
	Route bgp.Route
	// Capacity is the usable egress rate of the interconnect.
	Capacity units.Rate
	// load is the current offered rate (EWMA).
	load float64
}

// Utilization returns offered/capacity.
func (ic *Interconnect) Utilization() float64 {
	if ic.Capacity <= 0 {
		return 0
	}
	return ic.load / float64(ic.Capacity)
}

// Controller makes egress decisions for one prefix's route set. Routes
// are in policy order (preferred first), as produced by bgp.Best.
type Controller struct {
	// DetourThreshold is the utilization at which traffic shifts away
	// from an interconnect (Edge Fabric detours before loss occurs).
	DetourThreshold float64
	// EWMA smooths offered load measurements, in (0, 1].
	EWMA float64

	ics []*Interconnect

	// Pre-resolved obs handles; nil (no-op) until Instrument is called.
	cDetoured    *obs.Counter
	cActivations *obs.Counter
	detouring    bool
}

// New creates a controller over the prefix's interconnects.
func New(ics []*Interconnect) *Controller {
	return &Controller{DetourThreshold: 0.95, EWMA: 0.3, ics: ics}
}

// Interconnects exposes the controller's state (for reports).
func (c *Controller) Interconnects() []*Interconnect { return c.ics }

// Instrument registers override metrics on reg: every detoured routing
// decision, and each activation (transition from following BGP policy
// to overriding it). A nil registry leaves the controller
// uninstrumented.
func (c *Controller) Instrument(reg *obs.Registry) {
	c.cDetoured = reg.Counter("edgefabric_detoured_flows_total")
	c.cActivations = reg.Counter("edgefabric_override_activations_total")
}

// ObserveLoad folds a load measurement (bits/sec) for route index i.
func (c *Controller) ObserveLoad(i int, bps float64) error {
	if i < 0 || i >= len(c.ics) {
		return fmt.Errorf("edgefabric: route index %d out of range", i)
	}
	ic := c.ics[i]
	ic.load = (1-c.EWMA)*ic.load + c.EWMA*bps
	return nil
}

// Route returns the egress route index for a production flow: the
// policy-preferred route unless its interconnect is above the detour
// threshold, in which case the first alternate with headroom takes the
// overflow. With every interconnect hot, the preferred route is used
// anyway (shedding capacity problems downstream beats blackholing).
func (c *Controller) Route() int {
	route := c.route()
	if route != 0 {
		c.cDetoured.Inc()
		if !c.detouring {
			c.cActivations.Inc()
		}
	}
	c.detouring = route != 0
	return route
}

// route is the side-effect-free decision shared by Route and Detouring.
func (c *Controller) route() int {
	for i, ic := range c.ics {
		if ic.Utilization() < c.DetourThreshold {
			return i
		}
	}
	return 0
}

// Detouring reports whether production traffic is currently shifted off
// the preferred route.
func (c *Controller) Detouring() bool { return c.route() != 0 }

// Pinner assigns sampled sessions to routes for measurement (§2.2.3):
// a PreferredShare of sessions rides the policy-preferred route
// regardless of detours, and the rest split evenly across the sampled
// alternates — the paper observes roughly 47% on the best path (§6.2).
type Pinner struct {
	// PreferredShare is the fraction pinned to the preferred route.
	PreferredShare float64
	// PinnedPreferred and PinnedAlternate, when non-nil, count pin
	// decisions (wired by the world generator's Instrument).
	PinnedPreferred *obs.Counter
	PinnedAlternate *obs.Counter
}

// DefaultPinner matches the paper's split.
func DefaultPinner() Pinner { return Pinner{PreferredShare: 0.47} }

// Pin returns the route index (0 = preferred) for a sampled session,
// given the number of routes available.
func (p Pinner) Pin(r *rng.RNG, routes int) int {
	if routes <= 1 {
		p.PinnedPreferred.Inc()
		return 0
	}
	share := p.PreferredShare
	if share <= 0 || share >= 1 {
		share = 0.47
	}
	if r.Bool(share) {
		p.PinnedPreferred.Inc()
		return 0
	}
	p.PinnedAlternate.Inc()
	return 1 + r.IntN(routes-1)
}
