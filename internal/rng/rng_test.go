package rng

import (
	"math"
	"sort"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestChildDeterminism(t *testing.T) {
	a := New(7).Child("workload")
	b := New(7).Child("workload")
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed,label) child diverged at draw %d", i)
		}
	}
}

func TestChildLabelsIndependent(t *testing.T) {
	parent := New(7)
	a := parent.Child("a")
	b := parent.Child("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("children with different labels matched %d/100 draws", same)
	}
}

func TestChildAtNoParentConsumption(t *testing.T) {
	seed := uint64(99)
	c1 := ChildAt(seed, "shard", 3)
	c2 := ChildAt(seed, "shard", 3)
	if c1.Uint64() != c2.Uint64() {
		t.Error("ChildAt not deterministic")
	}
	d1 := ChildAt(seed, "shard", 4)
	d2 := ChildAt(seed, "shard", 3)
	d2.Uint64()
	if d1.Uint64() == d2.Uint64() {
		t.Error("ChildAt with different indexes should differ")
	}
}

func TestUniformRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Uniform(5,10) = %v out of range", v)
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(123)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) empirical p = %v", p)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(5)
	n := 50001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormalMedian(40, 0.5)
	}
	sort.Float64s(vals)
	med := vals[n/2]
	if math.Abs(med-40) > 1.5 {
		t.Errorf("LogNormalMedian(40, .5) empirical median %v, want ~40", med)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(9)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Exponential(7)
	}
	mean := sum / float64(n)
	if math.Abs(mean-7) > 0.2 {
		t.Errorf("Exponential(7) empirical mean %v", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(3, 1.2); v < 3 {
			t.Fatalf("Pareto(3, 1.2) = %v < xm", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	r := New(13)
	n, big := 200000, 0
	for i := 0; i < n; i++ {
		if r.Pareto(1, 1.1) > 100 {
			big++
		}
	}
	// P(X > 100) = 100^-1.1 ~ 0.0063
	p := float64(big) / float64(n)
	if p < 0.003 || p > 0.012 {
		t.Errorf("Pareto tail mass %v, want ~0.006", p)
	}
}

func TestBoundedPareto(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(2, 1.0, 50)
		if v < 2 || v > 50 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
}

func TestCategoricalWeights(t *testing.T) {
	c := NewCategorical([]float64{1, 2, 7})
	r := New(21)
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, w := range want {
		p := float64(counts[i]) / float64(n)
		if math.Abs(p-w) > 0.01 {
			t.Errorf("category %d: empirical %v, want %v", i, p, w)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCategorical(%v) did not panic", weights)
				}
			}()
			NewCategorical(weights)
		}()
	}
}

func TestMixture(t *testing.T) {
	m := NewMixture([]float64{1, 1},
		func(r *RNG) float64 { return 1 },
		func(r *RNG) float64 { return 100 },
	)
	r := New(31)
	lo, hi := 0, 0
	for i := 0; i < 10000; i++ {
		if m.Sample(r) == 1 {
			lo++
		} else {
			hi++
		}
	}
	if math.Abs(float64(lo-hi)) > 600 {
		t.Errorf("mixture not balanced: %d vs %d", lo, hi)
	}
}

func TestMixtureMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched mixture did not panic")
		}
	}()
	NewMixture([]float64{1}, func(r *RNG) float64 { return 0 }, func(r *RNG) float64 { return 1 })
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(41)
	n := 100
	counts := make([]int, n+1)
	for i := 0; i < 100000; i++ {
		k := r.Zipf(n, 1.3)
		if k < 1 || k > n {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] < counts[10] {
		t.Errorf("Zipf not skewed: count[1]=%d count[10]=%d", counts[1], counts[10])
	}
	if r.Zipf(1, 1.3) != 1 {
		t.Error("Zipf(1) != 1")
	}
}

func TestPerm(t *testing.T) {
	r := New(51)
	p := r.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("bad permutation %v", p)
	}
}
