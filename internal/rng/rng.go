// Package rng provides deterministic, splittable random number generation
// and the distributions used by the synthetic workload and world models.
//
// Every generator is seeded explicitly so simulations are reproducible:
// the same seed always produces the same dataset, which the experiment
// harness relies on when comparing against recorded results. Streams can
// be split by label (Child) so that adding samples to one subsystem does
// not perturb the draws seen by another.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"
)

// RNG is a deterministic random source with distribution helpers.
type RNG struct {
	src *rand.Rand
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Child derives an independent stream from this generator's seed space
// and a label. Two children with different labels produce uncorrelated
// streams; the same (seed, label) pair always produces the same stream.
func (r *RNG) Child(label string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	// Mix the label hash with fresh draws from the parent so children of
	// children remain distinct.
	a := r.src.Uint64() ^ h.Sum64()
	b := r.src.Uint64() ^ (h.Sum64() * 0x9e3779b97f4a7c15)
	return &RNG{src: rand.New(rand.NewPCG(a, b))}
}

// ChildAt derives an independent stream from a label and an index,
// without consuming draws from the parent. Useful for sharding work
// across goroutines deterministically.
func ChildAt(seed uint64, label string, index int) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	a := seed ^ h.Sum64() ^ uint64(index)*0x9e3779b97f4a7c15
	b := (seed * 0xbf58476d1ce4e5b9) ^ h.Sum64() ^ uint64(index)
	return &RNG{src: rand.New(rand.NewPCG(a, b))}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform value in [0, n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform value in [0, n).
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Normal returns a normally distributed value.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns a log-normally distributed value where mu and sigma
// are the parameters of the underlying normal (i.e. the median is e^mu).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// LogNormalMedian returns a log-normal draw parameterised by its median
// and the sigma of the underlying normal, which is how the world model's
// latency distributions are configured.
func (r *RNG) LogNormalMedian(median, sigma float64) float64 {
	return median * math.Exp(sigma*r.src.NormFloat64())
}

// Exponential returns an exponentially distributed value with the given
// mean.
func (r *RNG) Exponential(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Pareto returns a Pareto-distributed value with minimum xm and shape
// alpha. Heavy-tailed object sizes and session durations use this.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto draw truncated to [xm, max].
func (r *RNG) BoundedPareto(xm, alpha, max float64) float64 {
	v := r.Pareto(xm, alpha)
	if v > max {
		return max
	}
	return v
}

// Categorical selects index i with probability weights[i]/sum(weights).
// It panics if weights is empty or sums to a non-positive value.
type Categorical struct {
	cum []float64
}

// NewCategorical builds a categorical sampler from unnormalised weights.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("rng: empty categorical weights")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: negative categorical weight")
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("rng: categorical weights sum to zero")
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Categorical{cum: cum}
}

// Sample draws an index from the distribution.
func (c *Categorical) Sample(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(c.cum, u)
}

// Mixture draws from a set of component distributions with weights.
type Mixture struct {
	cat   *Categorical
	draws []func(*RNG) float64
}

// NewMixture builds a mixture; weights and components must align.
func NewMixture(weights []float64, components ...func(*RNG) float64) *Mixture {
	if len(weights) != len(components) {
		panic("rng: mixture weights and components mismatch")
	}
	return &Mixture{cat: NewCategorical(weights), draws: components}
}

// Sample draws a value from the mixture.
func (m *Mixture) Sample(r *RNG) float64 {
	return m.draws[m.cat.Sample(r)](r)
}

// Zipf returns a Zipf-distributed value in [1, n] with exponent s > 1
// approximated by inverse-CDF sampling; used for per-prefix traffic skew.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 1
	}
	// Inverse transform on the continuous approximation.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	if s == 1 {
		s = 1.0000001
	}
	t := math.Pow(float64(n), 1-s)
	x := math.Pow(u*(t-1)+1, 1/(1-s))
	k := int(x)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.src.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
