// Package sample defines the record schema produced by the load-balancer
// instrumentation (§2.2.2): one record per sampled HTTP session, with
// the TCP state captured at session termination, the per-transaction
// goodput outcome, and the egress-route annotation added after capture.
//
// Records flow: proxygen (capture) → collector (filter + annotate +
// store) → agg (user groups × windows) → analysis (figures/tables).
package sample

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/bgp"
	"repro/internal/geo"
)

// Protocol is the HTTP version of a session (§2.3 splits H1 vs H2).
type Protocol string

// Supported protocols.
const (
	HTTP1 Protocol = "h1"
	HTTP2 Protocol = "h2"
)

// Sample is one sampled HTTP session.
type Sample struct {
	// SessionID identifies the session within the dataset.
	SessionID uint64 `json:"id"`

	// PoP is the serving point of presence.
	PoP string `json:"pop"`
	// Prefix is the client's BGP prefix (tiebreaker-1 aggregate, §3.3).
	Prefix string `json:"prefix"`
	// ClientAS is the client's autonomous system.
	ClientAS int `json:"as"`
	// Country and Continent geolocate the client (§3.3).
	Country   string        `json:"country"`
	Continent geo.Continent `json:"continent"`
	// ClientSubnet subdivides the prefix (e.g. the /26 index within a
	// /24) for the §3.3 deaggregation experiment.
	ClientSubnet uint8 `json:"sub,omitempty"`

	// Proto is the HTTP version.
	Proto Protocol `json:"proto"`

	// DistanceKm is the great-circle distance from the client population
	// to its serving PoP, and CrossContinent whether the PoP sits on
	// another continent (§2.1: half of traffic within 500 km, 90% within
	// 2500 km and on the same continent).
	DistanceKm     float64 `json:"km,omitempty"`
	CrossContinent bool    `json:"xcont,omitempty"`

	// RouteID names the egress route the session was pinned to (§2.2.3).
	RouteID string `json:"route"`
	// RouteRel is the route's interconnect relationship.
	RouteRel bgp.RelType `json:"rel"`
	// ASPathLen is the AS-path length including prepending.
	ASPathLen int `json:"aspath"`
	// Prepended reports AS-path prepending on the route.
	Prepended bool `json:"prepended"`
	// AltIndex is 0 for the policy-preferred route, 1+ for the sampled
	// alternates (§6.2).
	AltIndex int `json:"alt"`

	// Start is the session start time relative to the dataset epoch.
	Start time.Duration `json:"start"`
	// Duration is the session lifetime (Figure 1a).
	Duration time.Duration `json:"dur"`
	// BusyFraction is the share of the lifetime spent sending (Fig 1b).
	BusyFraction float64 `json:"busy"`

	// Bytes is the total bytes transferred on the session (Figure 2).
	Bytes int64 `json:"bytes"`
	// Transactions is the session's transaction count (Figure 3).
	Transactions int `json:"txns"`
	// ResponseBytes holds individual response sizes for the response-size
	// distribution (Figure 2); the world generator may truncate it on
	// large sessions to bound memory.
	ResponseBytes []int64 `json:"resp,omitempty"`
	// MediaEndpoint marks sessions served by image/video endpoints.
	MediaEndpoint bool `json:"media,omitempty"`

	// MinRTT is the transport's minimum RTT at termination (§3.1).
	MinRTT time.Duration `json:"minrtt"`
	// HDTested and HDAchieved summarise the HDratio methodology (§3.2.4):
	// transactions that could test for HD goodput and those that
	// achieved it. HDratio = HDAchieved/HDTested when HDTested > 0.
	HDTested   int `json:"hdt"`
	HDAchieved int `json:"hda"`

	// SimpleAchieved counts transactions that passed the naive
	// Btotal/Ttotal check (§4's ablation baseline).
	SimpleAchieved int `json:"sja,omitempty"`

	// HostingProvider marks client addresses the third-party feed labels
	// as hosting/VPN; the collector filters them (~2% of traffic, §2.2.4).
	HostingProvider bool `json:"hosting,omitempty"`
}

// HDratio returns the session's HDratio and whether it is defined.
func (s Sample) HDratio() (float64, bool) {
	if s.HDTested == 0 {
		return 0, false
	}
	return float64(s.HDAchieved) / float64(s.HDTested), true
}

// SimpleHDratio returns the ablation baseline's HDratio.
func (s Sample) SimpleHDratio() (float64, bool) {
	if s.HDTested == 0 {
		return 0, false
	}
	return float64(s.SimpleAchieved) / float64(s.HDTested), true
}

// GroupKey identifies a user group (§3.3): clients behind the same BGP
// prefix, in the same country, served by the same PoP.
type GroupKey struct {
	PoP     string
	Prefix  string
	Country string
}

// Key returns the sample's user group.
func (s Sample) Key() GroupKey {
	return GroupKey{PoP: s.PoP, Prefix: s.Prefix, Country: s.Country}
}

// String renders the key compactly for logs and reports.
func (k GroupKey) String() string {
	return fmt.Sprintf("%s/%s/%s", k.PoP, k.Prefix, k.Country)
}

// Hash returns a stable FNV-1a hash of the key — the sharding function
// for the concurrent aggregation pipeline. It is deterministic across
// processes (no per-run seeding) so shard assignment is reproducible,
// though nothing downstream depends on which shard a key lands on.
func (k GroupKey) Hash() uint32 {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for _, s := range [...]string{k.PoP, k.Prefix, k.Country} {
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= prime
		}
		h ^= 0x2f // separator, so ("ab","c") and ("a","bc") differ
		h *= prime
	}
	return h
}

// Writer streams samples as JSON lines.
type Writer struct {
	enc *json.Encoder
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{enc: json.NewEncoder(w)} }

// Write appends one sample.
func (w *Writer) Write(s Sample) error {
	w.n++
	return w.enc.Encode(s)
}

// Count returns the number of samples written.
func (w *Writer) Count() int { return w.n }

// Reader streams samples from JSON lines.
type Reader struct {
	dec *json.Decoder
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{dec: json.NewDecoder(r)} }

// Read returns the next sample or io.EOF.
func (r *Reader) Read() (Sample, error) {
	var s Sample
	err := r.dec.Decode(&s)
	return s, err
}

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]Sample, error) {
	var out []Sample
	for {
		s, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
}
