package sample

import (
	"bytes"
	"io"
	"math"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/geo"
)

func TestHDratio(t *testing.T) {
	s := Sample{HDTested: 4, HDAchieved: 3}
	hd, ok := s.HDratio()
	if !ok || hd != 0.75 {
		t.Errorf("HDratio = %v, %v", hd, ok)
	}
	if _, ok := (Sample{}).HDratio(); ok {
		t.Error("HDratio defined with zero tested")
	}
}

func TestSimpleHDratio(t *testing.T) {
	s := Sample{HDTested: 4, SimpleAchieved: 1}
	hd, ok := s.SimpleHDratio()
	if !ok || hd != 0.25 {
		t.Errorf("SimpleHDratio = %v, %v", hd, ok)
	}
}

func TestGroupKey(t *testing.T) {
	s := Sample{PoP: "ams", Prefix: "10.0.0.0/16", Country: "DE"}
	k := s.Key()
	if k != (GroupKey{"ams", "10.0.0.0/16", "DE"}) {
		t.Errorf("Key = %+v", k)
	}
	if k.String() != "ams/10.0.0.0/16/DE" {
		t.Errorf("String = %s", k.String())
	}
	// Keys must be usable as map keys and distinguish fields.
	m := map[GroupKey]int{k: 1}
	other := GroupKey{"fra", "10.0.0.0/16", "DE"}
	if m[other] != 0 {
		t.Error("different PoPs collided")
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Sample{
		{
			SessionID: 1, PoP: "ams", Prefix: "192.0.2.0/24", ClientAS: 64500,
			Country: "DE", Continent: geo.Europe, Proto: HTTP2,
			RouteID: "r1", RouteRel: bgp.PrivatePeer, ASPathLen: 1,
			Start: 5 * time.Minute, Duration: 42 * time.Second, BusyFraction: 0.07,
			Bytes: 123456, Transactions: 9, ResponseBytes: []int64{3000, 120456},
			MinRTT: 23 * time.Millisecond, HDTested: 3, HDAchieved: 2,
		},
		{SessionID: 2, PoP: "gru", Proto: HTTP1, AltIndex: 2, Prepended: true, HostingProvider: true},
	}
	for _, s := range in {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}
	out, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("read %d samples", len(out))
	}
	if out[0].MinRTT != in[0].MinRTT || out[0].Continent != geo.Europe || out[0].ResponseBytes[1] != 120456 {
		t.Errorf("sample 0 mismatch: %+v", out[0])
	}
	if !out[1].HostingProvider || out[1].AltIndex != 2 || !out[1].Prepended {
		t.Errorf("sample 1 mismatch: %+v", out[1])
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("empty read err = %v, want EOF", err)
	}
}

func TestReaderBadInput(t *testing.T) {
	r := NewReader(bytes.NewBufferString("{not json\n"))
	if _, err := r.ReadAll(); err == nil {
		t.Error("bad input should error")
	}
}

func TestHDratioRange(t *testing.T) {
	for tested := 0; tested <= 5; tested++ {
		for ach := 0; ach <= tested; ach++ {
			s := Sample{HDTested: tested, HDAchieved: ach}
			hd, ok := s.HDratio()
			if tested == 0 {
				if ok {
					t.Error("defined with 0 tested")
				}
				continue
			}
			if !ok || hd < 0 || hd > 1 || math.IsNaN(hd) {
				t.Errorf("HDratio(%d/%d) = %v", ach, tested, hd)
			}
		}
	}
}
