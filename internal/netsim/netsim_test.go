package netsim

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/units"
)

func TestEventOrdering(t *testing.T) {
	var s Sim
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	if !s.Run() {
		t.Fatal("Run stopped early")
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var s Sim
	var fired []Time
	s.Schedule(10*time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(5*time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 15*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	var s Sim
	ran := false
	s.Schedule(-time.Second, func() { ran = true })
	s.Run()
	if !ran || s.Now() != 0 {
		t.Error("negative delay should run immediately at now")
	}
}

func TestMaxSteps(t *testing.T) {
	var s Sim
	s.MaxSteps = 5
	var bomb func()
	bomb = func() { s.Schedule(time.Millisecond, bomb) }
	s.Schedule(0, bomb)
	if s.Run() {
		t.Error("runaway loop should stop at MaxSteps")
	}
	if s.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", s.Steps())
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(5 * time.Second)
	if count != 5 {
		t.Errorf("RunUntil(5s) ran %d events, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", s.Now())
	}
	s.Run()
	if count != 10 {
		t.Errorf("after Run, count = %d, want 10", count)
	}
}

func TestLinkPropagationOnly(t *testing.T) {
	var s Sim
	var arrived Time
	l := &Link{Sim: &s, Delay: 25 * time.Millisecond, Deliver: func(p Packet) { arrived = s.Now() }}
	l.Send(Packet{Len: 1500})
	s.Run()
	if arrived != 25*time.Millisecond {
		t.Errorf("arrival = %v, want 25ms (rate 0 = infinite)", arrived)
	}
}

func TestLinkSerialization(t *testing.T) {
	var s Sim
	var arrived Time
	l := &Link{
		Sim:     &s,
		Rate:    units.Rate(1e6), // 1 Mbps
		Delay:   10 * time.Millisecond,
		Deliver: func(p Packet) { arrived = s.Now() },
	}
	// 1500+40 bytes at 1 Mbps = 12.32 ms serialization + 10 ms prop.
	l.Send(Packet{Len: 1500})
	s.Run()
	want := 12320*time.Microsecond + 10*time.Millisecond
	if d := arrived - want; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("arrival = %v, want %v", arrived, want)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	var s Sim
	var arrivals []Time
	l := &Link{
		Sim:     &s,
		Rate:    units.Rate(1.232e6), // makes each 1540B packet exactly 10ms
		Delay:   5 * time.Millisecond,
		Deliver: func(p Packet) { arrivals = append(arrivals, s.Now()) },
	}
	for i := 0; i < 3; i++ {
		l.Send(Packet{Len: 1500})
	}
	s.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Packets serialize back to back: 10, 20, 30ms + 5ms prop.
	want := []Time{15 * time.Millisecond, 25 * time.Millisecond, 35 * time.Millisecond}
	for i := range want {
		if d := arrivals[i] - want[i]; d < -10*time.Microsecond || d > 10*time.Microsecond {
			t.Errorf("arrival[%d] = %v, want %v", i, arrivals[i], want[i])
		}
	}
}

func TestLinkQueueOverflow(t *testing.T) {
	var s Sim
	delivered := 0
	l := &Link{
		Sim:        &s,
		Rate:       units.Rate(1e6),
		Delay:      time.Millisecond,
		QueueLimit: 2,
		Deliver:    func(p Packet) { delivered++ },
	}
	// First packet serializes immediately; next two queue; rest drop.
	for i := 0; i < 10; i++ {
		l.Send(Packet{Len: 1500})
	}
	s.Run()
	if delivered != 3 {
		t.Errorf("delivered %d packets, want 3 (1 in flight + 2 queued)", delivered)
	}
	if l.Drops != 7 {
		t.Errorf("Drops = %d, want 7", l.Drops)
	}
}

func TestLinkQueueDrainsOverTime(t *testing.T) {
	var s Sim
	delivered := 0
	l := &Link{
		Sim:        &s,
		Rate:       units.Rate(1.232e6), // 10ms per 1540B packet
		Delay:      0,
		QueueLimit: 1,
		Deliver:    func(p Packet) { delivered++ },
	}
	l.Send(Packet{Len: 1500}) // serializes 0-10ms
	l.Send(Packet{Len: 1500}) // queued
	// At 12ms the queue is empty again (second packet serializing).
	s.Schedule(12*time.Millisecond, func() {
		l.Send(Packet{Len: 1500})
	})
	s.Run()
	if delivered != 3 {
		t.Errorf("delivered = %d, want 3", delivered)
	}
	if l.Drops != 0 {
		t.Errorf("Drops = %d, want 0", l.Drops)
	}
}

func TestLinkRandomLoss(t *testing.T) {
	var s Sim
	delivered := 0
	l := &Link{
		Sim:      &s,
		Delay:    time.Millisecond,
		LossProb: 0.3,
		RNG:      rng.New(42),
		Deliver:  func(p Packet) { delivered++ },
	}
	n := 10000
	for i := 0; i < n; i++ {
		l.Send(Packet{Len: 100})
	}
	s.Run()
	rate := float64(delivered) / float64(n)
	if rate < 0.67 || rate > 0.73 {
		t.Errorf("delivery rate %v, want ~0.7", rate)
	}
	if l.Drops+l.Delivered != uint64(n) {
		t.Errorf("drops %d + delivered %d != %d", l.Drops, l.Delivered, n)
	}
}

func TestLinkJitter(t *testing.T) {
	var s Sim
	var arrivals []Time
	r := rng.New(7)
	l := &Link{
		Sim:     &s,
		Delay:   10 * time.Millisecond,
		Jitter:  func() time.Duration { return time.Duration(r.IntN(5)) * time.Millisecond },
		Deliver: func(p Packet) { arrivals = append(arrivals, s.Now()) },
	}
	for i := 0; i < 100; i++ {
		l.Send(Packet{Len: 100})
	}
	s.Run()
	varied := false
	for _, a := range arrivals {
		if a < 10*time.Millisecond {
			t.Fatalf("arrival %v before propagation delay", a)
		}
		if a > 10*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never added delay")
	}
}

func TestOnDropCallback(t *testing.T) {
	var s Sim
	drops := 0
	l := &Link{
		Sim:      &s,
		LossProb: 1,
		RNG:      rng.New(1),
		OnDrop:   func(p Packet) { drops++ },
	}
	l.Send(Packet{Len: 100})
	s.Run()
	if drops != 1 {
		t.Errorf("OnDrop fired %d times, want 1", drops)
	}
}

func BenchmarkLinkThroughput(b *testing.B) {
	var s Sim
	l := &Link{Sim: &s, Rate: units.Rate(1e9), Delay: time.Millisecond, Deliver: func(p Packet) {}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(Packet{Len: 1500})
		if i%1000 == 999 {
			s.Run()
		}
	}
	s.Run()
}

func TestTokenBucketAdmitsBurstThenPolices(t *testing.T) {
	tb := &TokenBucket{Rate: units.Rate(1e6), Burst: 10000} // 1 Mbps, 10KB burst
	// The initial burst passes.
	admitted := 0
	for i := 0; i < 20; i++ {
		if tb.Admit(0, 1000) {
			admitted++
		}
	}
	if admitted != 10 {
		t.Errorf("burst admitted %d packets, want 10", admitted)
	}
	// After a second, 1 Mbps has refilled 125000 bytes (capped at burst).
	if !tb.Admit(time.Second, 10000) {
		t.Error("refilled bucket rejected a burst-sized packet")
	}
	if tb.Admit(time.Second, 1000) {
		t.Error("drained bucket admitted a packet with no elapsed time")
	}
}

func TestTokenBucketZeroRateAdmitsAll(t *testing.T) {
	tb := &TokenBucket{}
	for i := 0; i < 100; i++ {
		if !tb.Admit(0, 1<<20) {
			t.Fatal("zero-rate policer must admit everything")
		}
	}
}

func TestLinkPolicerDrops(t *testing.T) {
	var s Sim
	delivered := 0
	l := &Link{
		Sim:     &s,
		Delay:   time.Millisecond,
		Policer: &TokenBucket{Rate: units.Rate(8e6), Burst: 3 * 1540},
		Deliver: func(p Packet) { delivered++ },
	}
	// 20 packets at t=0: only the 3-packet burst passes.
	for i := 0; i < 20; i++ {
		l.Send(Packet{Len: 1500})
	}
	s.Run()
	if delivered != 3 {
		t.Errorf("policer admitted %d packets at t=0, want 3", delivered)
	}
	if l.Drops != 17 {
		t.Errorf("Drops = %d, want 17", l.Drops)
	}
	// Spread over time at the policed rate, packets pass: 8 Mbps = 1
	// wire-packet (1540B) per 1.54ms.
	delivered = 0
	for i := 0; i < 10; i++ {
		s.Schedule(time.Duration(i+1)*2*time.Millisecond, func() { l.Send(Packet{Len: 1500}) })
	}
	s.Run()
	if delivered != 10 {
		t.Errorf("paced packets delivered %d/10 through policer", delivered)
	}
}
