// Package netsim is a discrete-event packet network simulator: an event
// loop plus links with configurable rate, propagation delay, queue
// bounds, random loss, and jitter.
//
// It plays the role NS3 plays in the paper's §3.2.3 validation: TCP
// transfers (package tcpsim) run through a bottleneck link and the
// goodput-estimation methodology is checked against the configured
// bottleneck rate. It is deliberately small — single-threaded, payload
// lengths rather than real bytes — but models the mechanics that matter
// to transfer timing: serialization at the bottleneck, standing queues,
// drops, and propagation delay.
package netsim

import (
	"container/heap"
	"time"

	"repro/internal/rng"
	"repro/internal/units"
)

// Time is simulation time measured from the start of the run.
type Time = time.Duration

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break so same-time events run FIFO
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulation. The zero value is ready to use.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
	steps  uint64
	// MaxSteps bounds the number of events processed by Run as a
	// runaway guard; 0 means no limit.
	MaxSteps uint64
}

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Steps returns the number of events processed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// Schedule runs fn after delay (clamped to now for negative delays).
func (s *Sim) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until none remain or MaxSteps is hit. It returns
// false if it stopped because of the step bound.
func (s *Sim) Run() bool {
	for len(s.events) > 0 {
		if s.MaxSteps > 0 && s.steps >= s.MaxSteps {
			return false
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.steps++
		e.fn()
	}
	return true
}

// RunUntil processes events with timestamps ≤ t, then advances the clock
// to t. It returns false if it stopped because of the step bound.
func (s *Sim) RunUntil(t Time) bool {
	for len(s.events) > 0 && s.events[0].at <= t {
		if s.MaxSteps > 0 && s.steps >= s.MaxSteps {
			return false
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.steps++
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
	return true
}

// Packet is a simulated packet. Len is the payload length used for
// serialization timing; header overhead is modelled by HeaderBytes.
type Packet struct {
	// Seq is the first payload byte's sequence number (data packets).
	Seq int64
	// Len is the payload length in bytes; 0 for pure ACKs.
	Len int
	// Ack is the cumulative acknowledgment carried by this packet.
	Ack int64
	// IsAck marks a pure acknowledgment.
	IsAck bool
	// Retransmit marks a retransmitted segment.
	Retransmit bool
	// SackLo and SackHi describe the receiver's first out-of-order
	// byte range on acknowledgments (a one-block SACK option); zero
	// when the receiver holds no out-of-order data.
	SackLo, SackHi int64
	// SentAt is stamped by the sender for RTT sampling.
	SentAt Time
}

// HeaderBytes approximates TCP/IP header overhead per packet for
// serialization timing.
const HeaderBytes = 40

// wireBytes is the serialized size of p.
func wireBytes(p Packet) int { return p.Len + HeaderBytes }

// TokenBucket is a traffic policer: packets that arrive when the bucket
// lacks tokens are dropped rather than queued. The paper identifies
// policing (together with loss) as the largest barrier to HD goodput
// for high-latency clients (§4, citing Flach et al.).
type TokenBucket struct {
	// Rate is the policing rate.
	Rate units.Rate
	// Burst is the bucket depth in bytes.
	Burst int64

	tokens float64
	last   Time
	primed bool
}

// Admit consumes tokens for n bytes at time now, returning false when
// the packet must be dropped.
func (tb *TokenBucket) Admit(now Time, n int) bool {
	if tb.Rate <= 0 {
		return true
	}
	if !tb.primed {
		tb.tokens = float64(tb.Burst)
		tb.last = now
		tb.primed = true
	}
	tb.tokens += float64(tb.Rate) / 8 * (now - tb.last).Seconds()
	if tb.tokens > float64(tb.Burst) {
		tb.tokens = float64(tb.Burst)
	}
	tb.last = now
	if tb.tokens < float64(n) {
		return false
	}
	tb.tokens -= float64(n)
	return true
}

// Link is a unidirectional link: serialization at Rate, a drop-tail
// queue of at most QueueLimit packets, propagation Delay, optional
// random loss and jitter. Deliver is invoked at the receiver.
type Link struct {
	Sim *Sim
	// Rate is the serialization rate; 0 means infinitely fast.
	Rate units.Rate
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueLimit bounds packets waiting for serialization (the packet
	// being serialized does not count); 0 means unbounded.
	QueueLimit int
	// LossProb drops each packet independently with this probability
	// (applied before queueing).
	LossProb float64
	// Jitter, if set, returns extra per-packet delay.
	Jitter func() time.Duration
	// Policer, if set, drops packets exceeding a token-bucket rate
	// before they reach the queue (§4's traffic-policing barrier).
	Policer *TokenBucket
	// RNG drives loss; required when LossProb > 0.
	RNG *rng.RNG
	// Deliver receives packets at the far end.
	Deliver func(Packet)
	// DropFn, if set, drops packets it returns true for — deterministic
	// loss injection for tests and failure experiments.
	DropFn func(Packet) bool
	// OnDrop, if set, is called for each dropped packet (loss or queue
	// overflow) — used by tests and failure-injection experiments.
	OnDrop func(Packet)

	busyUntil Time
	queued    int
	// Drops counts packets lost on this link.
	Drops uint64
	// Delivered counts packets handed to Deliver.
	Delivered uint64
}

// Send enqueues a packet for transmission.
func (l *Link) Send(p Packet) {
	if l.LossProb > 0 && l.RNG != nil && l.RNG.Bool(l.LossProb) {
		l.drop(p)
		return
	}
	if l.Policer != nil && !l.Policer.Admit(l.Sim.Now(), wireBytes(p)) {
		l.drop(p)
		return
	}
	if l.DropFn != nil && l.DropFn(p) {
		l.drop(p)
		return
	}
	now := l.Sim.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	if l.QueueLimit > 0 && start > now {
		// Approximate queue occupancy by counting packets not yet
		// serialized.
		if l.queued >= l.QueueLimit {
			l.drop(p)
			return
		}
	}
	var tx time.Duration
	if l.Rate > 0 {
		tx = l.Rate.TimeFor(int64(wireBytes(p)))
	}
	l.busyUntil = start + tx
	jitter := time.Duration(0)
	if l.Jitter != nil {
		jitter = l.Jitter()
		if jitter < 0 {
			jitter = 0
		}
	}
	arrival := l.busyUntil + l.Delay + jitter
	if start > now {
		l.queued++
		l.Sim.Schedule(start-now, func() {
			// Serialization begins; packet leaves the queue.
			if l.queued > 0 {
				l.queued--
			}
		})
	}
	l.Sim.Schedule(arrival-now, func() {
		l.Delivered++
		if l.Deliver != nil {
			l.Deliver(p)
		}
	})
}

func (l *Link) drop(p Packet) {
	l.Drops++
	if l.OnDrop != nil {
		l.OnDrop(p)
	}
}

// QueueDepth returns the current number of packets awaiting
// serialization (excluding the one on the wire).
func (l *Link) QueueDepth() int { return l.queued }
