// Package geo models the synthetic geography the world simulator runs
// on: continents, countries, PoPs with coordinates, and the mapping from
// great-circle distance to propagation delay.
//
// It substitutes for the commercial geolocation feed the paper uses when
// tagging samples with client country (§2.2.4) and for the physical
// placement of Facebook's dozens of PoPs across six continents (§2.1).
package geo

import (
	"fmt"
	"math"
	"time"
)

// Continent codes follow the paper's figures (Figure 6 et al.).
type Continent string

// The six continents Facebook serves (§2.1).
const (
	Africa       Continent = "AF"
	Asia         Continent = "AS"
	Europe       Continent = "EU"
	NorthAmerica Continent = "NA"
	Oceania      Continent = "OC"
	SouthAmerica Continent = "SA"
)

// Continents lists all continents in the order the paper's tables use.
var Continents = []Continent{Africa, Asia, Europe, NorthAmerica, Oceania, SouthAmerica}

// LatLon is a geographic coordinate in degrees.
type LatLon struct {
	Lat, Lon float64
}

// PoP is a point of presence: a serving site that terminates client TCP
// connections and interconnects with peers and transits (§2.1).
type PoP struct {
	Name      string
	Continent Continent
	Loc       LatLon
}

// Country is a synthetic client country.
type Country struct {
	Code      string
	Continent Continent
	Loc       LatLon // population centroid
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two coordinates.
func DistanceKm(a, b LatLon) float64 {
	const rad = math.Pi / 180
	lat1, lon1 := a.Lat*rad, a.Lon*rad
	lat2, lon2 := b.Lat*rad, b.Lon*rad
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PropagationRTT converts distance to a round-trip propagation delay.
// Light in fiber covers ~200 km/ms one way; real paths are not
// great-circle, so a path-stretch factor is applied.
func PropagationRTT(distKm, pathStretch float64) time.Duration {
	if pathStretch < 1 {
		pathStretch = 1
	}
	oneWayMs := distKm * pathStretch / 200.0
	return time.Duration(2 * oneWayMs * float64(time.Millisecond))
}

// DefaultPathStretch reflects typical fiber-route indirection.
const DefaultPathStretch = 1.6

// World is a set of PoPs and countries.
type World struct {
	PoPs      []PoP
	Countries []Country

	byContinent map[Continent][]int // PoP indexes
}

// DefaultWorld returns a synthetic deployment: a few PoPs per continent
// in plausible metro locations, and client countries whose centroids
// span each continent, weighted toward where the paper's per-continent
// latency distributions put them.
func DefaultWorld() *World {
	w := &World{
		PoPs: []PoP{
			{"iad", NorthAmerica, LatLon{38.9, -77.0}},  // Washington DC
			{"sjc", NorthAmerica, LatLon{37.3, -121.9}}, // San Jose
			{"dfw", NorthAmerica, LatLon{32.8, -96.8}},  // Dallas
			{"gru", SouthAmerica, LatLon{-23.5, -46.6}}, // São Paulo
			{"scl", SouthAmerica, LatLon{-33.4, -70.7}}, // Santiago
			{"ams", Europe, LatLon{52.3, 4.9}},          // Amsterdam
			{"fra", Europe, LatLon{50.1, 8.7}},          // Frankfurt
			{"lhr", Europe, LatLon{51.5, -0.1}},         // London
			{"sin", Asia, LatLon{1.35, 103.8}},          // Singapore
			{"nrt", Asia, LatLon{35.7, 139.7}},          // Tokyo
			{"bom", Asia, LatLon{19.1, 72.9}},           // Mumbai
			{"jnb", Africa, LatLon{-26.2, 28.0}},        // Johannesburg
			{"los", Africa, LatLon{6.5, 3.4}},           // Lagos
			{"syd", Oceania, LatLon{-33.9, 151.2}},      // Sydney
		},
		Countries: []Country{
			{"US", NorthAmerica, LatLon{39.8, -98.6}},
			{"CA", NorthAmerica, LatLon{56.1, -106.3}},
			{"MX", NorthAmerica, LatLon{23.6, -102.6}},
			{"BR", SouthAmerica, LatLon{-14.2, -51.9}},
			{"AR", SouthAmerica, LatLon{-38.4, -63.6}},
			{"CO", SouthAmerica, LatLon{4.6, -74.3}},
			{"PE", SouthAmerica, LatLon{-9.2, -75.0}},
			{"DE", Europe, LatLon{51.2, 10.4}},
			{"GB", Europe, LatLon{55.4, -3.4}},
			{"FR", Europe, LatLon{46.2, 2.2}},
			{"IT", Europe, LatLon{41.9, 12.6}},
			{"PL", Europe, LatLon{51.9, 19.1}},
			{"IN", Asia, LatLon{20.6, 79.0}},
			{"ID", Asia, LatLon{-0.8, 113.9}},
			{"JP", Asia, LatLon{36.2, 138.3}},
			{"PH", Asia, LatLon{12.9, 121.8}},
			{"TH", Asia, LatLon{15.9, 101.0}},
			{"VN", Asia, LatLon{14.1, 108.3}},
			{"NG", Africa, LatLon{9.1, 8.7}},
			{"ZA", Africa, LatLon{-30.6, 22.9}},
			{"KE", Africa, LatLon{-0.02, 37.9}},
			{"EG", Africa, LatLon{26.8, 30.8}},
			{"AU", Oceania, LatLon{-25.3, 133.8}},
			{"NZ", Oceania, LatLon{-40.9, 174.9}},
		},
	}
	w.index()
	return w
}

func (w *World) index() {
	w.byContinent = make(map[Continent][]int)
	for i, p := range w.PoPs {
		w.byContinent[p.Continent] = append(w.byContinent[p.Continent], i)
	}
}

// NearestPoP returns the PoP closest to loc and its distance.
func (w *World) NearestPoP(loc LatLon) (PoP, float64) {
	if len(w.PoPs) == 0 {
		panic("geo: world has no PoPs")
	}
	best, bestDist := w.PoPs[0], math.Inf(1)
	for _, p := range w.PoPs {
		if d := DistanceKm(loc, p.Loc); d < bestDist {
			best, bestDist = p, d
		}
	}
	return best, bestDist
}

// PoPsOnContinent returns the PoPs on a continent.
func (w *World) PoPsOnContinent(c Continent) []PoP {
	if w.byContinent == nil {
		w.index()
	}
	idx := w.byContinent[c]
	out := make([]PoP, len(idx))
	for i, j := range idx {
		out[i] = w.PoPs[j]
	}
	return out
}

// CountryByCode looks up a country.
func (w *World) CountryByCode(code string) (Country, error) {
	for _, c := range w.Countries {
		if c.Code == code {
			return c, nil
		}
	}
	return Country{}, fmt.Errorf("geo: unknown country %q", code)
}
