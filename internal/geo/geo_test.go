package geo

import (
	"math"
	"testing"
	"time"
)

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		name   string
		a, b   LatLon
		wantKm float64
		tol    float64
	}{
		{"zero distance", LatLon{10, 20}, LatLon{10, 20}, 0, 0.001},
		{"London-Amsterdam", LatLon{51.5, -0.1}, LatLon{52.3, 4.9}, 357, 15},
		{"NYC-LA", LatLon{40.7, -74.0}, LatLon{34.1, -118.2}, 3940, 60},
		{"Singapore-Sydney", LatLon{1.35, 103.8}, LatLon{-33.9, 151.2}, 6300, 100},
		{"antipodal-ish", LatLon{0, 0}, LatLon{0, 180}, 20015, 30},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := DistanceKm(tt.a, tt.b)
			if math.Abs(got-tt.wantKm) > tt.tol {
				t.Errorf("DistanceKm = %v, want %v ± %v", got, tt.wantKm, tt.tol)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	a, b := LatLon{12.3, 45.6}, LatLon{-33.9, 151.2}
	if d1, d2 := DistanceKm(a, b), DistanceKm(b, a); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("distance not symmetric: %v vs %v", d1, d2)
	}
}

func TestPropagationRTT(t *testing.T) {
	// 1000 km at stretch 1: 5 ms one way, 10 ms RTT.
	if got := PropagationRTT(1000, 1); got != 10*time.Millisecond {
		t.Errorf("PropagationRTT(1000, 1) = %v, want 10ms", got)
	}
	// Stretch scales linearly.
	if got := PropagationRTT(1000, 2); got != 20*time.Millisecond {
		t.Errorf("PropagationRTT(1000, 2) = %v, want 20ms", got)
	}
	// Stretch below 1 clamps.
	if got := PropagationRTT(1000, 0.5); got != 10*time.Millisecond {
		t.Errorf("PropagationRTT clamp failed: %v", got)
	}
}

func TestDefaultWorldShape(t *testing.T) {
	w := DefaultWorld()
	if len(w.PoPs) < 10 {
		t.Errorf("too few PoPs: %d", len(w.PoPs))
	}
	if len(w.Countries) < 20 {
		t.Errorf("too few countries: %d", len(w.Countries))
	}
	// Every continent must have at least one PoP (§2.1: six continents).
	for _, c := range Continents {
		if len(w.PoPsOnContinent(c)) == 0 {
			t.Errorf("continent %s has no PoPs", c)
		}
	}
	// PoP names must be unique.
	seen := map[string]bool{}
	for _, p := range w.PoPs {
		if seen[p.Name] {
			t.Errorf("duplicate PoP %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestNearestPoP(t *testing.T) {
	w := DefaultWorld()
	// A client in Berlin should map to a European PoP.
	pop, dist := w.NearestPoP(LatLon{52.5, 13.4})
	if pop.Continent != Europe {
		t.Errorf("Berlin mapped to %s (%s)", pop.Name, pop.Continent)
	}
	if dist > 1500 {
		t.Errorf("Berlin nearest PoP %v km away", dist)
	}
	// A client in Sydney maps to syd.
	pop, _ = w.NearestPoP(LatLon{-33.9, 151.2})
	if pop.Name != "syd" {
		t.Errorf("Sydney mapped to %s", pop.Name)
	}
}

func TestCountryByCode(t *testing.T) {
	w := DefaultWorld()
	c, err := w.CountryByCode("BR")
	if err != nil {
		t.Fatal(err)
	}
	if c.Continent != SouthAmerica {
		t.Errorf("BR continent = %s", c.Continent)
	}
	if _, err := w.CountryByCode("XX"); err == nil {
		t.Error("unknown country should error")
	}
}

func TestMostUsersNearAPoP(t *testing.T) {
	// §2.1: half of traffic is within 500 km of its PoP, 90% within
	// 2500 km. Our synthetic countries should mostly be within a few
	// thousand km of some PoP.
	w := DefaultWorld()
	far := 0
	for _, c := range w.Countries {
		if _, d := w.NearestPoP(c.Loc); d > 4000 {
			far++
		}
	}
	if far > len(w.Countries)/5 {
		t.Errorf("%d/%d countries are >4000km from every PoP", far, len(w.Countries))
	}
}
