package world

import (
	"context"
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/trace"
	"repro/internal/workload"
)

// WindowBatch is one group × window slice of the live sample stream —
// the unit of delivery in window-major generation. Samples are in the
// group's canonical draw order, so delivering windows ascending and
// groups ascending within each window reproduces exactly the samples
// the batch generator emits, just transposed to arrival order.
type WindowBatch struct {
	Group   int
	Win     int
	Samples []sample.Sample
	// Lost counts sessions this window would have produced but for a
	// PoP outage (World.PoPDown).
	Lost int
}

// groupFeed is one group's persistent generation state. The batch
// generator builds this state once per group and burns through every
// window in a loop; the live feed keeps it alive between windows so
// the RNG lineage, workload generator, and session sequence advance
// exactly as they would in one uninterrupted sweep — which is why a
// live run's samples are byte-identical to a batch run's.
type groupFeed struct {
	r       *rng.RNG
	gen     *workload.Generator
	seq     uint64
	next    int // next window this group may generate
	emitted int // cumulative samples, for the gen span's closing value
}

// LiveFeed generates the world window-major: all groups advance
// through window w before any group touches window w+1 — the run's
// logical clock. It is the ingest source of the always-on study
// daemon (internal/studyd); sealing decisions key on the window
// index, never on wall time, so live runs stay deterministic and
// replayable.
type LiveFeed struct {
	w     *World
	feeds []*groupFeed
}

// NewLiveFeed builds the per-group generation states for w.
func NewLiveFeed(w *World) *LiveFeed {
	f := &LiveFeed{w: w, feeds: make([]*groupFeed, len(w.Groups))}
	for gi := range w.Groups {
		r := rng.ChildAt(w.Cfg.Seed, "traffic", gi)
		f.feeds[gi] = &groupFeed{r: r, gen: workload.NewGenerator(r.Child("workload"), workload.Config{})}
	}
	return f
}

// generate advances one group by exactly one window. Windows must be
// requested in order per group — the RNG lineage is a stream, not an
// index — so a skipped or repeated window is a programming error.
func (f *LiveFeed) generate(gi, win int) WindowBatch {
	fd := f.feeds[gi]
	if win != fd.next {
		panic(fmt.Sprintf("world: live feed asked for group %d window %d, expected %d (windows are a stream)", gi, win, fd.next))
	}
	fd.next++
	var buf []sample.Sample
	lost, _ := f.w.generateWindow(f.w.Groups[gi], uint64(gi), win, fd.r, fd.gen, &fd.seq,
		func(s sample.Sample) { buf = append(buf, s) })
	return WindowBatch{Group: gi, Win: win, Samples: buf, Lost: lost}
}

// Run streams the whole world window-major: for each window, group
// batches are generated on up to workers goroutines (each group's
// state is touched by exactly one worker per window, and the
// per-window barrier orders the touches across windows), delivered in
// ascending group order, then seal is invoked with the window index —
// the logical-clock tick the daemon's sealing keys on. Trace events
// land on the same logical coordinates as the batch generator's:
// a PhaseGen span per group and a mark per group × window, with
// outage faults and losses attributed to their window. deliver and
// seal run on one goroutine; their errors poison the run.
func (f *LiveFeed) Run(ctx context.Context, workers int, deliver func(WindowBatch) error, seal func(win int) error) error {
	windows := f.w.Cfg.Windows()
	last := windows - 1
	if workers > len(f.w.Groups) {
		workers = len(f.w.Groups)
	}
	tb := f.w.Rec.Buf()

	// handoff emits the batch's trace events (mirroring generateGroup's
	// coordinates) and hands it to the caller.
	handoff := func(b WindowBatch) error {
		fd := f.feeds[b.Group]
		track := trace.GroupTrack(b.Group)
		if b.Win == 0 {
			tb.Emit(trace.Event{Track: track, Phase: trace.PhaseGen, Win: -1, Seq: 0,
				Kind: trace.KBegin, Stage: "generate"})
		}
		tb.Emit(trace.Event{Track: track, Phase: trace.PhaseGen, Win: int32(b.Win), Seq: uint64(b.Win),
			Kind: trace.KMark, Stage: "window", Value: int64(len(b.Samples))})
		if b.Lost > 0 {
			tb.Emit(trace.Event{Track: track, Phase: trace.PhaseGen, Win: int32(b.Win), Seq: uint64(b.Win),
				Kind: trace.KFault, Stage: "generate", Value: int64(b.Lost), Detail: "pop-outage"})
			tb.Loss(track, trace.PhaseGen, int32(b.Win), uint64(b.Win), "generate", trace.LossOutage, b.Lost)
		}
		f.w.obs.windows.Inc()
		fd.emitted += len(b.Samples)
		if b.Win == last {
			tb.Emit(trace.Event{Track: track, Phase: trace.PhaseGen, Win: -1, Seq: 0,
				Kind: trace.KEnd, Stage: "generate", Value: int64(fd.emitted)})
			f.w.obs.groups.Inc()
		}
		return deliver(b)
	}

	if workers <= 1 {
		for win := 0; win < windows; win++ {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			for gi := range f.w.Groups {
				if err := handoff(f.generate(gi, win)); err != nil {
					return err
				}
			}
			if err := seal(win); err != nil {
				return err
			}
		}
		return nil
	}

	for win := 0; win < windows; win++ {
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		idx := make(chan int, len(f.w.Groups))
		for gi := range f.w.Groups {
			idx <- gi
		}
		close(idx)
		g := pipeline.NewGroup(ctx)
		out := pipeline.NewStream[WindowBatch](workers)
		g.GoPool(workers, func(ctx context.Context, _ int) error {
			for gi := range idx {
				if err := ctx.Err(); err != nil {
					return context.Cause(ctx)
				}
				if err := out.Send(ctx, f.generate(gi, win)); err != nil {
					return err
				}
			}
			return nil
		}, out.Close)
		g.Go(func(ctx context.Context) error {
			return pipeline.Reorder(ctx, out, func(b WindowBatch) int { return b.Group }, 0, handoff)
		})
		// The per-window Wait is the live clock's barrier: every group's
		// window w is generated, delivered, and sealed before any state
		// advances to w+1, so worker count cannot reorder the stream.
		if err := g.Wait(); err != nil {
			return err
		}
		if err := seal(win); err != nil {
			return err
		}
	}
	return nil
}
