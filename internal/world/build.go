package world

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/cartographer"
	"repro/internal/edgefabric"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/units"
)

// World is a fully built synthetic Internet.
type World struct {
	Cfg    Config
	Geo    *geo.World
	Groups []*Group

	// PoPDown, when non-nil, reports a collection outage for (pop,
	// window): that window's sessions at the serving PoP (after
	// cartographer remaps) still occur but are never collected, and are
	// accounted as lost. The RNG lineage is consumed unchanged, so the
	// surviving dataset is byte-identical to the no-outage dataset minus
	// the suppressed windows. Set before generation starts; decisions
	// must be pure functions of (pop, win) so the dataset stays
	// deterministic at any worker count.
	PoPDown func(pop string, win int) bool

	// Rec, when non-nil, receives deterministic trace events from
	// generation: a span per group, a mark per window, and loss/fault
	// events for outage-suppressed windows. Set before generation
	// starts; each generation goroutine draws its own buffer.
	Rec *trace.Recorder

	mapper *cartographer.Mapper
	pinner edgefabric.Pinner
	obs    worldObs
}

// New builds a world deterministically from cfg.Seed.
func New(cfg Config) *World {
	cfg = cfg.withDefaults()
	w := &World{Cfg: cfg, Geo: geo.DefaultWorld(), pinner: edgefabric.DefaultPinner()}
	w.mapper = cartographer.New(w.Geo)
	// The steering biases come from the continent profiles (§2.1's
	// cross-continent serving shares).
	w.mapper.RemoteBias = map[geo.Continent]float64{}
	for cont, prof := range Profiles {
		w.mapper.RemoteBias[cont] = prof.RemoteShare
	}

	assignment := stratifyContinents(cfg)
	for i := 0; i < cfg.Groups; i++ {
		r := rng.ChildAt(cfg.Seed, "group", i)
		w.Groups = append(w.Groups, w.buildGroup(r, i, assignment[i]))
	}
	return w
}

// stratifyContinents assigns continents to groups with exact
// largest-remainder proportions, shuffled deterministically, so small
// worlds still realise the configured traffic shares.
func stratifyContinents(cfg Config) []geo.Continent {
	type rem struct {
		cont geo.Continent
		frac float64
	}
	out := make([]geo.Continent, 0, cfg.Groups)
	var rems []rem
	for _, c := range geo.Continents {
		exact := Profiles[c].TrafficShare * float64(cfg.Groups)
		n := int(exact)
		for i := 0; i < n; i++ {
			out = append(out, c)
		}
		rems = append(rems, rem{c, exact - float64(n)})
	}
	sort.Slice(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
	for i := 0; len(out) < cfg.Groups; i++ {
		out = append(out, rems[i%len(rems)].cont)
	}
	shuf := rng.New(cfg.Seed).Child("continent-shuffle")
	perm := shuf.Perm(len(out))
	shuffled := make([]geo.Continent, len(out))
	for i, p := range perm {
		shuffled[i] = out[p]
	}
	return shuffled
}

// buildGroup synthesises one user group on the given continent.
func (w *World) buildGroup(r *rng.RNG, idx int, cont geo.Continent) *Group {
	prof := Profiles[cont]

	// Pick a country on the continent.
	var countries []geo.Country
	for _, c := range w.Geo.Countries {
		if c.Continent == cont {
			countries = append(countries, c)
		}
	}
	country := countries[r.IntN(len(countries))]

	// Client populations concentrate in metros: blend the group's
	// location from the country centroid toward the nearest PoP (§2.1:
	// half of all traffic is within 500 km of its serving PoP).
	nearest, _ := w.Geo.NearestPoP(country.Loc)
	blend := math.Pow(r.Float64(), 0.45) // biased toward the metro
	loc := geo.LatLon{
		Lat: country.Loc.Lat + (nearest.Loc.Lat-country.Loc.Lat)*blend,
		Lon: country.Loc.Lon + (nearest.Loc.Lon-country.Loc.Lon)*blend,
	}

	// Cartographer assigns the serving PoP: nearest by default, with a
	// RemoteShare of groups steered to Europe (§2.1), and an occasional
	// mid-study remap.
	sched, remote := w.mapper.Assign(loc, cont, w.Cfg.Windows(), r)
	pop := sched[0].PoP
	distKm := geo.DistanceKm(loc, pop.Loc)
	rttMedian := prof.RTTMedian
	if remote {
		rttMedian = prof.RemoteRTTMedian
	}

	// Base MinRTT: statistical draw floored by the geographic
	// propagation minimum to the serving PoP.
	floor := geo.PropagationRTT(distKm, geo.DefaultPathStretch) / 2 * 2
	base := time.Duration(r.LogNormalMedian(float64(rttMedian), prof.RTTSigma))
	if base < floor/2 {
		base = floor / 2 // allow some sub-floor spread for nearby metros
	}
	if base < 2*time.Millisecond {
		base = 2 * time.Millisecond
	}

	g := &Group{
		PoP:            pop.Name,
		DistanceKm:     distKm,
		CrossContinent: pop.Continent != cont,
		Prefix:         fmt.Sprintf("10.%d.%d.0/24", (idx/250)%250, idx%250),
		ASN:            64500 + idx/2, // two prefixes per AS on average
		Country:        country.Code,
		Continent:      cont,
		Weight:         r.LogNormalMedian(1, 0.8),
		BaseRTT:        base,
		Access:         units.Rate(r.LogNormalMedian(float64(prof.AccessMedian), prof.AccessSigma*0.8)),
		AccessSigma:    0.6,
		BaseLoss:       prof.BaseLoss * (0.5 + r.Exponential(0.5)),
	}

	g.PoPSchedule = sched
	if len(sched) > 1 {
		// Serving from the remap target costs the difference in
		// propagation floors plus some path indirection.
		d0 := cartographer.RTTFloor(country.Loc, sched[0].PoP)
		d1 := cartographer.RTTFloor(country.Loc, sched[1].PoP)
		g.RemapRTTDelta = d1 - d0 + 5*time.Millisecond
		if g.RemapRTTDelta < time.Millisecond {
			g.RemapRTTDelta = time.Millisecond
		}
	}
	if w.Cfg.PolicedShare > 0 && r.Bool(w.Cfg.PolicedShare) {
		// Policed plans typically sit just below the HD floor (§4).
		g.PoliceRate = units.Rate(r.LogNormalMedian(1.8e6, 0.3))
		g.PoliceBurst = int64(r.IntN(12)+8) * 1500
	}
	g.ActivityPeakUTC = localEveningUTC(r, country.Loc.Lon)

	w.buildRoutes(r, g)
	w.assignDegradation(r, g, prof)
	w.assignOpportunity(r, g, idx)

	// Figure 5 population shifts: a small share of prefixes serve two
	// regions whose activity peaks at different hours.
	if r.Bool(0.02) {
		g.PopulationShift = newPopulationShift(r, g.BaseRTT)
	}
	return g
}

// buildRoutes synthesises the route set at the group's PoP and orders it
// by the egress policy (§6.1).
func (w *World) buildRoutes(r *rng.RNG, g *Group) {
	prefix := netip.MustParsePrefix(g.Prefix)
	transitASBase := 3000 + r.IntN(200)

	var routes []bgp.Route
	addPeer := func(rel bgp.RelType) {
		routes = append(routes, bgp.Route{
			ID:     fmt.Sprintf("%s-%s-%d", g.PoP, rel, len(routes)),
			Prefix: prefix,
			ASPath: []int{g.ASN},
			Rel:    rel,
		})
	}
	addTransit := func() {
		path := []int{transitASBase + len(routes), g.ASN}
		if r.Bool(0.35) { // some transit paths have an extra hop
			path = []int{transitASBase + len(routes), 2000 + r.IntN(500), g.ASN}
		}
		if r.Bool(0.15) { // ingress TE prepending (§6.2.2, Table 2)
			path = append(path, g.ASN)
		}
		routes = append(routes, bgp.Route{
			ID:     fmt.Sprintf("%s-Transit-%d", g.PoP, len(routes)),
			Prefix: prefix,
			ASPath: path,
			Rel:    bgp.Transit,
		})
	}

	// addPeerVia adds a two-hop peer route: the destination is reached
	// through a directly-peered upstream (how the same prefix can have
	// two PNI routes — Table 2's Private→Private rows).
	addPeerVia := func(rel bgp.RelType) {
		routes = append(routes, bgp.Route{
			ID:     fmt.Sprintf("%s-%s-via-%d", g.PoP, rel, len(routes)),
			Prefix: prefix,
			ASPath: []int{4000 + r.IntN(300), g.ASN},
			Rel:    rel,
		})
	}

	// Interconnect mix: most groups are reached over a PNI peer plus
	// transit alternatives (§6.1: peers preferred, PNIs monitored).
	switch {
	case r.Bool(0.55):
		addPeer(bgp.PrivatePeer)
		if r.Bool(0.35) {
			addPeerVia(bgp.PrivatePeer) // multi-homed: second PNI path
		} else {
			addPeer(bgp.PublicPeer)
		}
		addTransit()
		addTransit()
	case r.Bool(0.55): // 0.45*0.55 ≈ 0.25 overall
		addPeer(bgp.PrivatePeer)
		addTransit()
		addTransit()
	case r.Bool(0.75): // ≈ 0.15 overall
		addPeer(bgp.PublicPeer)
		addTransit()
		addTransit()
	default: // transit only
		addTransit()
		addTransit()
		addTransit()
	}

	preferred, alts, _ := bgp.Best(routes, w.Cfg.AlternateRoutes)
	g.Routes = []RouteCondition{{Route: preferred}}
	for _, alt := range alts {
		rc := RouteCondition{Route: alt}
		// Alternates are usually slightly worse than the preferred
		// route: the §6.2 difference distributions concentrate near zero
		// and skew toward "preferred is better".
		rc.RTTDelta = time.Duration(r.Exponential(float64(2 * time.Millisecond)))
		if alt.Rel == bgp.Transit {
			rc.RTTDelta += time.Duration(r.Exponential(float64(3 * time.Millisecond)))
		}
		if alt.Prepended() {
			// Prepending signals the destination wants traffic elsewhere;
			// such routes also tend to be longer.
			rc.RTTDelta += time.Duration(r.Exponential(float64(4 * time.Millisecond)))
		}
		g.Routes = append(g.Routes, rc)
	}
}

// assignDegradation seeds the §5 temporal behaviour.
func (w *World) assignDegradation(r *rng.RNG, g *Group, prof ContinentProfile) {
	boost := prof.DegradationBoost
	pDiurnal := clamp01(0.13 * boost)
	pEpisodic := clamp01(0.08 * boost)
	pContinuous := 0.008

	switch {
	case r.Bool(pContinuous):
		g.DegradeClass = Continuous
	case r.Bool(pDiurnal):
		g.DegradeClass = Diurnal
	case r.Bool(pEpisodic):
		g.DegradeClass = Episodic
	default:
		g.DegradeClass = Uneventful
	}
	if g.DegradeClass == Uneventful {
		return
	}
	// Severity: mostly small (Figure 8 shows 90% of traffic under ~4 ms
	// degradation), with a heavier tail on high-boost continents.
	g.DegradeRTT = time.Duration(2*float64(time.Millisecond) + r.Exponential(4*float64(time.Millisecond))*boost)
	g.DegradeLoss = r.Exponential(0.008) * boost
	// Peak-hour congestion shrinks the usable bandwidth to 35–90%.
	g.DegradeBW = 0.9 - r.Float64()*0.55*clamp01(boost/2)
	// Diurnal congestion coincides with the local traffic peak.
	g.PeakStartHour = g.ActivityPeakUTC

	if g.DegradeClass == Episodic {
		g.EpisodeWindows = makeEpisodes(r, w.Cfg.Windows())
	}
}

// assignOpportunity seeds the §6 structure: a small fraction of groups
// where an alternate route beats the preferred one. Assignment uses a
// deterministic coprime stride over group indexes so even small worlds
// realise the configured per-mille rates (continuous 17‰, diurnal 6‰,
// episodic 4‰ — summing to the paper's ~2% of traffic improvable).
func (w *World) assignOpportunity(r *rng.RNG, g *Group, idx int) {
	if len(g.Routes) < 2 {
		g.OppClass = Uneventful
		return
	}
	switch quota := (idx*37 + 13) % 1000; {
	case quota < 17: // continuous MinRTT opportunity (§6.2.1: most of it)
		g.OppClass = Continuous
		g.OppRTT = time.Duration(7*float64(time.Millisecond) + r.Exponential(5*float64(time.Millisecond)))
	case quota < 23:
		g.OppClass = Diurnal
		g.OppRTT = time.Duration(6*float64(time.Millisecond) + r.Exponential(4*float64(time.Millisecond)))
	case quota < 27:
		g.OppClass = Episodic
		g.OppRTT = time.Duration(6*float64(time.Millisecond) + r.Exponential(6*float64(time.Millisecond)))
		if g.EpisodeWindows == nil {
			g.EpisodeWindows = makeEpisodes(r, w.Cfg.Windows())
		}
	default:
		g.OppClass = Uneventful
		return
	}
	// The winning alternate is genuinely good: near the group's base
	// conditions rather than carrying the usual alternate penalty.
	g.Routes[1].RTTDelta = time.Duration(r.Exponential(float64(500 * time.Microsecond)))
	// A sliver of opportunity groups also see loss on the preferred
	// route (congested interconnect), creating HDratio opportunity.
	if r.Bool(0.12) {
		g.OppLoss = 0.004 + r.Exponential(0.006)
	}
}

// localEveningUTC maps a longitude to the UTC hour at which local
// evening peak (≈20:00) begins, with ±1h jitter.
func localEveningUTC(r *rng.RNG, lon float64) int {
	local := 19 + r.IntN(3) // 19–21 local
	utc := local - int(math.Round(lon/15.0))
	return ((utc % 24) + 24) % 24
}

// makeEpisodes selects a handful of short degradation episodes.
func makeEpisodes(r *rng.RNG, windows int) map[int]bool {
	out := make(map[int]bool)
	episodes := 2 + r.IntN(5)
	for e := 0; e < episodes; e++ {
		start := r.IntN(windows)
		length := 2 + r.IntN(10)
		for i := 0; i < length && start+i < windows; i++ {
			out[start+i] = true
		}
	}
	return out
}

func newPopulationShift(r *rng.RNG, base time.Duration) *PopulationShift {
	ps := &PopulationShift{
		AltRTT: base + time.Duration(30*float64(time.Millisecond)+r.Exponential(20*float64(time.Millisecond))),
	}
	// The alternate region's share peaks ~8 hours offset from the main
	// population's evening.
	phase := r.IntN(24)
	for h := 0; h < 24; h++ {
		d := float64(((h-phase)%24+24)%24) / 24 * 2 * math.Pi
		ps.AltShareByHour[h] = 0.25 + 0.35*math.Cos(d)
		if ps.AltShareByHour[h] < 0 {
			ps.AltShareByHour[h] = 0
		}
	}
	return ps
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
