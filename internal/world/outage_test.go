package world

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/sample"
)

// An installed PoPDown hook must suppress exactly the outage windows'
// sessions at the serving PoP, account every one of them as lost, and
// keep the surviving dataset deterministic at any worker count.
func TestPoPDownSuppressesAndAccounts(t *testing.T) {
	cfg := Config{Seed: 21, Groups: 30, Days: 1, SessionsPerGroupWindow: 4}
	base := New(cfg)
	baseline := base.GenerateAll()

	downPoP := baseline[0].PoP // guaranteed to serve traffic
	down := func(pop string, win int) bool { return pop == downPoP && win >= 10 && win < 20 }

	gen := func(workers int) ([]sample.Sample, int) {
		w := New(cfg)
		w.PoPDown = down
		var out []sample.Sample
		lost := 0
		err := w.GenerateBatches(context.Background(), workers, func(b Batch) error {
			out = append(out, b.Samples...)
			lost += b.Lost
			return nil
		})
		if err != nil {
			t.Fatalf("GenerateBatches(workers=%d): %v", workers, err)
		}
		return out, lost
	}

	seq, seqLost := gen(1)
	if seqLost == 0 {
		t.Fatalf("outage at %s windows [10,20) lost no sessions", downPoP)
	}
	// Outages subtract, never perturb: the degraded dataset is exactly
	// the baseline minus the suppressed windows, sample for sample.
	var want []sample.Sample
	for _, s := range baseline {
		if !down(s.PoP, int(s.Start/WindowDuration)) {
			want = append(want, s)
		}
	}
	if len(seq) != len(want) || len(seq)+seqLost != len(baseline) {
		t.Fatalf("got %d samples + %d lost, want %d surviving of %d baseline", len(seq), seqLost, len(want), len(baseline))
	}
	for i := range want {
		if seq[i].SessionID != want[i].SessionID || seq[i].MinRTT != want[i].MinRTT {
			t.Fatalf("surviving sample %d differs from baseline", i)
		}
	}

	// The outage removes sessions but must not perturb other groups: a
	// group with no window at the downed PoP generates byte-identically.
	par, parLost := gen(4)
	if parLost != seqLost {
		t.Fatalf("lost accounting differs across worker counts: %d vs %d", parLost, seqLost)
	}
	if len(par) != len(seq) {
		t.Fatalf("sample counts differ across worker counts: %d vs %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].SessionID != par[i].SessionID || seq[i].MinRTT != par[i].MinRTT || seq[i].Start != par[i].Start {
			t.Fatalf("sample %d differs between workers=1 and workers=4", i)
		}
	}
}

// The outage counter must reflect the lost sessions.
func TestPoPDownObsCounter(t *testing.T) {
	cfg := Config{Seed: 22, Groups: 10, Days: 1, SessionsPerGroupWindow: 3}
	w := New(cfg)
	reg := obs.NewRegistry()
	w.Instrument(reg)
	w.PoPDown = func(string, int) bool { return true } // total blackout
	lost := 0
	for i := range w.Groups {
		lost += w.GenerateGroup(i, func(sample.Sample) {
			t.Fatal("total blackout still generated a sample")
		})
	}
	if lost == 0 {
		t.Fatal("total blackout lost nothing")
	}
	if got := reg.Counter("world_outage_sessions_total").Value(); got != int64(lost) {
		t.Fatalf("outage counter = %d, want %d", got, lost)
	}
}
