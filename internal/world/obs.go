package world

import (
	"repro/internal/obs"
)

// worldObs holds pre-resolved observability handles for the generator
// hot path. The zero value (nil handles) is a no-op, so an
// uninstrumented world pays one nil check per event.
type worldObs struct {
	sessions   *obs.Counter
	windows    *obs.Counter
	groups     *obs.Counter
	outageLost *obs.Counter
	genStage   *obs.SpanTimer
	emit       *obs.SpanTimer
}

// Instrument registers generation metrics on reg: sessions, windows and
// groups completed, plus per-stage wall time for the parallel group
// simulation ("generate") and the ordered fan-out ("emit"). A nil
// registry leaves the world uninstrumented.
func (w *World) Instrument(reg *obs.Registry) {
	w.obs = worldObs{
		sessions:   reg.Counter("world_sessions_total"),
		windows:    reg.Counter("world_windows_total"),
		groups:     reg.Counter("world_groups_total"),
		outageLost: reg.Counter("world_outage_sessions_total"),
		genStage:   reg.Span(obs.L("world_stage_seconds", "stage", "generate"), "world"),
		emit:       reg.Span(obs.L("world_stage_seconds", "stage", "emit"), "world"),
	}
	// The pinner's route-assignment counters ride along (§2.2.3's
	// preferred/alternate measurement split).
	w.pinner.PinnedPreferred = reg.Counter("edgefabric_pinned_preferred_total")
	w.pinner.PinnedAlternate = reg.Counter("edgefabric_pinned_alternate_total")
}
