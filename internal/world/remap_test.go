package world

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/cartographer"
	"repro/internal/geo"
	"repro/internal/sample"
)

// TestCartographerRemapCreatesCoverageGap verifies the §3.4.2 mechanism
// the paper cites for excluding sparse groups: when Cartographer moves a
// population to another PoP mid-study, the original (PoP, prefix,
// country) group stops receiving traffic — its coverage falls below the
// classification floor — and a new group key appears at the other PoP.
func TestCartographerRemapCreatesCoverageGap(t *testing.T) {
	w := New(Config{Seed: 21, Groups: 1, Days: 5, SessionsPerGroupWindow: 10})
	g := w.Groups[0]

	// Force a mid-study remap to a different PoP at the dataset midpoint.
	var other geo.PoP
	for _, p := range w.Geo.PoPs {
		if p.Name != g.PoP {
			other = p
			break
		}
	}
	mid := w.Cfg.Windows() / 2
	g.PoPSchedule = []cartographer.Assignment{
		{PoP: w.Geo.PoPs[popIndex(w.Geo, g.PoP)], FromWindow: 0},
		{PoP: other, FromWindow: mid},
	}
	g.RemapRTTDelta = 10_000_000 // 10ms

	store := agg.NewStore()
	w.GenerateGroup(0, func(s sample.Sample) { store.Add(s) })

	if store.Len() != 2 {
		t.Fatalf("remap should split traffic across 2 group keys, got %d", store.Len())
	}
	params := analysis.DefaultClassifyParams(w.Cfg.Days)
	for _, gs := range store.Groups() {
		cov := gs.CoverageFraction(w.Cfg.Windows())
		if cov > 0.65 {
			t.Errorf("group %s coverage = %.2f; a half-study group must be below the 0.60 floor (±windows at the boundary)", gs.Key, cov)
		}
		// The §3.4.2 classifier must refuse to classify such a group.
		verdicts := make([]analysis.WindowVerdict, 0, len(gs.Windows))
		for _, win := range gs.WindowIndexes() {
			verdicts = append(verdicts, analysis.WindowVerdict{Window: win, Valid: true})
		}
		class := analysis.Classify(verdicts, len(gs.Windows), w.Cfg.Windows(), params)
		if class != analysis.Unclassified {
			t.Errorf("group %s with %.0f%% coverage classified %v, want Unclassified", gs.Key, cov*100, class)
		}
	}
}

func popIndex(w *geo.World, name string) int {
	for i, p := range w.PoPs {
		if p.Name == name {
			return i
		}
	}
	return 0
}
