package world

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/sample"
)

func testCfg() Config {
	return Config{Seed: 9, Groups: 10, Days: 1, SessionsPerGroupWindow: 4}
}

// The sample stream must be identical — same samples, same order — at
// every worker count. This is the generation half of the pipeline's
// byte-identical-report guarantee.
func TestGenerateCtxDeterministicAcrossWorkers(t *testing.T) {
	collect := func(workers int) []sample.Sample {
		w := New(testCfg())
		var out []sample.Sample
		if err := w.GenerateCtx(context.Background(), workers, func(s sample.Sample) {
			out = append(out, s)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	want := collect(1)
	if len(want) == 0 {
		t.Fatal("sequential generation produced no samples")
	}
	for _, workers := range []int{2, 4, 32} {
		got := collect(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d produced %d samples, sequential %d", workers, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d sample %d differs: %+v vs %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// Batches must arrive in ascending group order even when workers finish
// out of order.
func TestGenerateBatchesOrdered(t *testing.T) {
	w := New(testCfg())
	next := 0
	if err := w.GenerateBatches(context.Background(), 4, func(b Batch) error {
		if b.Group != next {
			t.Fatalf("batch for group %d delivered, want %d", b.Group, next)
		}
		next++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if next != w.Cfg.Groups {
		t.Fatalf("delivered %d batches, want %d", next, w.Cfg.Groups)
	}
}

// A cancelled context must stop generation promptly with the cause, in
// both sequential and parallel modes.
func TestGenerateCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		w := New(testCfg())
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		err := w.GenerateBatches(ctx, workers, func(b Batch) error {
			n++
			if n == 2 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n >= w.Cfg.Groups {
			t.Fatalf("workers=%d: all %d batches delivered despite cancellation", workers, n)
		}
	}
}

// A deliver error must poison the parallel pipeline and surface as-is.
func TestGenerateBatchesDeliverErrorPoisons(t *testing.T) {
	boom := errors.New("deliver failed")
	w := New(testCfg())
	calls := 0
	err := w.GenerateBatches(context.Background(), 4, func(b Batch) error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// GenerateBatchesUnordered must hand every group to exactly one handler
// invocation with the same contents as the ordered path.
func TestGenerateBatchesUnorderedCoverage(t *testing.T) {
	w := New(testCfg())
	want := map[int]int{} // group -> sample count
	if err := w.GenerateBatches(context.Background(), 1, func(b Batch) error {
		want[b.Group] = len(b.Samples)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	w2 := New(testCfg())
	got := make(map[int]int)
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	if err := w2.GenerateBatchesUnordered(context.Background(), 4, func(b Batch) error {
		<-mu
		defer func() { mu <- struct{}{} }()
		if _, dup := got[b.Group]; dup {
			t.Errorf("group %d handled twice", b.Group)
		}
		got[b.Group] = len(b.Samples)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("handled %d groups, want %d", len(got), len(want))
	}
	for g, n := range want {
		if got[g] != n {
			t.Errorf("group %d: %d samples, want %d", g, got[g], n)
		}
	}
}
