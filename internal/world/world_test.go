package world

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sample"
)

var (
	testWorldOnce    sync.Once
	testWorldCached  *World
	testSamplesCache []sample.Sample
)

// testWorld builds a small but statistically useful world, cached across
// tests in this package (generation costs a second or two).
func testWorld(t testing.TB) (*World, []sample.Sample) {
	t.Helper()
	testWorldOnce.Do(func() {
		cfg := Config{Seed: 7, Groups: 1000, Days: 1, SessionsPerGroupWindow: 1.5}
		testWorldCached = New(cfg)
		testSamplesCache = testWorldCached.GenerateAll()
	})
	return testWorldCached, testSamplesCache
}

func medianDur(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if len(s) == 0 {
		return 0
	}
	return s[len(s)/2]
}

func TestWorldBuildDeterministic(t *testing.T) {
	a := New(Config{Seed: 3, Groups: 20, Days: 1})
	b := New(Config{Seed: 3, Groups: 20, Days: 1})
	for i := range a.Groups {
		ga, gb := a.Groups[i], b.Groups[i]
		if ga.Prefix != gb.Prefix || ga.BaseRTT != gb.BaseRTT || ga.PoP != gb.PoP ||
			len(ga.Routes) != len(gb.Routes) {
			t.Fatalf("group %d differs between same-seed builds", i)
		}
	}
	c := New(Config{Seed: 4, Groups: 20, Days: 1})
	same := 0
	for i := range a.Groups {
		if a.Groups[i].BaseRTT == c.Groups[i].BaseRTT {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/20 identical groups", same)
	}
}

func TestGroupInvariants(t *testing.T) {
	w := New(Config{Seed: 5, Groups: 200, Days: 1})
	prefixes := map[string]bool{}
	for _, g := range w.Groups {
		if prefixes[g.Prefix] {
			t.Errorf("duplicate prefix %s", g.Prefix)
		}
		prefixes[g.Prefix] = true
		if len(g.Routes) < 1 {
			t.Fatalf("group %s has no routes", g.Prefix)
		}
		if len(g.Routes) > 1+w.Cfg.AlternateRoutes {
			t.Errorf("group %s has %d routes, cap is preferred+%d", g.Prefix, len(g.Routes), w.Cfg.AlternateRoutes)
		}
		if g.Routes[0].RTTDelta != 0 {
			t.Errorf("preferred route has nonzero delta")
		}
		for _, rc := range g.Routes[1:] {
			if rc.RTTDelta < 0 {
				t.Errorf("alternate with negative static delta; opportunity must come from OppClass")
			}
		}
		if g.BaseRTT <= 0 || g.Access <= 0 {
			t.Errorf("group %s has degenerate conditions: %v %v", g.Prefix, g.BaseRTT, g.Access)
		}
		if g.DegradeClass != Uneventful && g.DegradeRTT <= 0 {
			t.Errorf("degraded group %s without severity", g.Prefix)
		}
		if g.OppClass != Uneventful && g.OppRTT <= 0 {
			t.Errorf("opportunity group %s without delta", g.Prefix)
		}
	}
}

func TestDatasetDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Groups: 10, Days: 1, SessionsPerGroupWindow: 2}
	a := New(cfg).GenerateAll()
	b := New(cfg).GenerateAll()
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SessionID != b[i].SessionID || a[i].MinRTT != b[i].MinRTT ||
			a[i].Bytes != b[i].Bytes || a[i].HDTested != b[i].HDTested {
			t.Fatalf("sample %d differs between same-seed runs", i)
		}
	}
}

func TestFig6Calibration(t *testing.T) {
	_, samples := testWorld(t)
	if len(samples) < 20000 {
		t.Fatalf("dataset too small for calibration: %d", len(samples))
	}

	// Figures 6: preferred-route sessions only (§2.2.3).
	byCont := map[geo.Continent][]time.Duration{}
	var all []time.Duration
	hdZero, hdOne, hdDefined := 0, 0, 0
	hdZeroByCont := map[geo.Continent][2]int{}
	for _, s := range samples {
		if s.AltIndex != 0 || s.HostingProvider {
			continue
		}
		all = append(all, s.MinRTT)
		byCont[s.Continent] = append(byCont[s.Continent], s.MinRTT)
		if hd, ok := s.HDratio(); ok {
			hdDefined++
			pair := hdZeroByCont[s.Continent]
			pair[1]++
			if hd == 0 {
				hdZero++
				pair[0]++
			}
			if hd == 1 {
				hdOne++
			}
			hdZeroByCont[s.Continent] = pair
		}
	}

	// Global MinRTT median just under 40 ms (paper: 39 ms).
	if m := medianDur(all); m < 30*time.Millisecond || m > 50*time.Millisecond {
		t.Errorf("global MinRTT median = %v, want ~39ms", m)
	}
	// p80 below ~90 ms (paper: 78 ms).
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p80 := all[len(all)*8/10]
	if p80 < 60*time.Millisecond || p80 > 100*time.Millisecond {
		t.Errorf("global MinRTT p80 = %v, want ~78ms", p80)
	}

	// Continent ordering: AF > AS > SA > {EU, NA, OC} (Figure 6b).
	med := func(c geo.Continent) time.Duration { return medianDur(byCont[c]) }
	if !(med(geo.Africa) > med(geo.SouthAmerica) && med(geo.Asia) > med(geo.SouthAmerica)) {
		t.Errorf("continent ordering broken: AF=%v AS=%v SA=%v", med(geo.Africa), med(geo.Asia), med(geo.SouthAmerica))
	}
	for _, c := range []geo.Continent{geo.Europe, geo.NorthAmerica, geo.Oceania} {
		if med(c) >= med(geo.SouthAmerica) {
			t.Errorf("%s median %v not below SA %v", c, med(c), med(geo.SouthAmerica))
		}
		if med(c) > 40*time.Millisecond {
			t.Errorf("%s median %v, want ≤~28ms", c, med(c))
		}
	}
	if m := med(geo.Africa); m < 45*time.Millisecond || m > 75*time.Millisecond {
		t.Errorf("AF median %v, want ~58ms", m)
	}

	// HDratio: >0 for ~82% of sessions, =1 for ~60% (Figure 6a).
	zeroShare := float64(hdZero) / float64(hdDefined)
	oneShare := float64(hdOne) / float64(hdDefined)
	if zeroShare < 0.10 || zeroShare > 0.26 {
		t.Errorf("HDratio=0 share = %.3f, want ~0.18", zeroShare)
	}
	if oneShare < 0.50 || oneShare > 0.75 {
		t.Errorf("HDratio=1 share = %.3f, want ~0.60", oneShare)
	}

	// HDratio-zero share ordering per continent (Figure 6c): AF worst.
	zs := func(c geo.Continent) float64 {
		p := hdZeroByCont[c]
		if p[1] == 0 {
			return math.NaN()
		}
		return float64(p[0]) / float64(p[1])
	}
	if zs(geo.Africa) < zs(geo.Europe) || zs(geo.Africa) < zs(geo.NorthAmerica) {
		t.Errorf("AF zero-share %.3f not worst (EU %.3f, NA %.3f)", zs(geo.Africa), zs(geo.Europe), zs(geo.NorthAmerica))
	}
	if zs(geo.Africa) < 0.22 || zs(geo.Africa) > 0.50 {
		t.Errorf("AF zero-share = %.3f, want ~0.36", zs(geo.Africa))
	}
	t.Logf("global med=%v p80=%v | AF=%v AS=%v SA=%v EU=%v NA=%v OC=%v | hd0=%.3f hd1=%.3f afz=%.2f asz=%.2f saz=%.2f",
		medianDur(all), p80, med(geo.Africa), med(geo.Asia), med(geo.SouthAmerica),
		med(geo.Europe), med(geo.NorthAmerica), med(geo.Oceania), zeroShare, oneShare,
		zs(geo.Africa), zs(geo.Asia), zs(geo.SouthAmerica))
}

// TestServingLocality checks §2.1's anchors: most traffic close to its
// PoP, ~10% served cross-continent.
func TestServingLocality(t *testing.T) {
	w, _ := testWorld(t)
	var within500, within2500, cross, totalW float64
	for _, g := range w.Groups {
		totalW += g.Weight
		if g.DistanceKm <= 500 {
			within500 += g.Weight
		}
		if g.DistanceKm <= 2500 {
			within2500 += g.Weight
		}
		if g.CrossContinent {
			cross += g.Weight
		}
	}
	if f := within500 / totalW; f < 0.40 || f > 0.80 {
		t.Errorf("traffic within 500km = %.3f, paper ~0.50", f)
	}
	if f := within2500 / totalW; f < 0.85 {
		t.Errorf("traffic within 2500km = %.3f, paper ~0.90", f)
	}
	if f := cross / totalW; f < 0.04 || f > 0.20 {
		t.Errorf("cross-continent share = %.3f, paper ~0.10", f)
	}
}

func TestRoutePinningShares(t *testing.T) {
	_, samples := testWorld(t)
	counts := map[int]int{}
	multi := 0
	for _, s := range samples {
		counts[s.AltIndex]++
		if s.AltIndex > 0 {
			multi++
		}
	}
	total := len(samples)
	prefShare := float64(counts[0]) / float64(total)
	if prefShare < 0.42 || prefShare > 0.56 {
		t.Errorf("preferred-route share = %.3f, want ~0.47", prefShare)
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Errorf("alternate routes unsampled: %v", counts)
	}
}

func TestHostingShare(t *testing.T) {
	_, samples := testWorld(t)
	n := 0
	for _, s := range samples {
		if s.HostingProvider {
			n++
		}
	}
	share := float64(n) / float64(len(samples))
	if share < 0.01 || share > 0.035 {
		t.Errorf("hosting share = %.4f, want ~0.02", share)
	}
}

func TestSamplesWellFormed(t *testing.T) {
	w, samples := testWorld(t)
	windows := w.Cfg.Windows()
	for _, s := range samples {
		if s.MinRTT <= 0 {
			t.Fatalf("sample with non-positive MinRTT: %+v", s)
		}
		if s.HDAchieved > s.HDTested {
			t.Fatalf("achieved > tested: %+v", s)
		}
		if s.Transactions <= 0 || s.Bytes <= 0 {
			t.Fatalf("degenerate session: %+v", s)
		}
		if s.BusyFraction < 0 || s.BusyFraction > 1 {
			t.Fatalf("busy fraction out of range: %v", s.BusyFraction)
		}
		if win := int(s.Start / WindowDuration); win < 0 || win >= windows {
			t.Fatalf("start %v outside dataset", s.Start)
		}
		if s.Prefix == "" || s.PoP == "" || s.Country == "" {
			t.Fatalf("missing identity: %+v", s)
		}
	}
}

func TestDiurnalActivityVariesLoad(t *testing.T) {
	_, samples := testWorld(t)
	perHour := make([]int, 24)
	for _, s := range samples {
		perHour[int(s.Start/time.Hour)%24]++
	}
	min, max := perHour[0], perHour[0]
	for _, n := range perHour {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if float64(max) < 1.15*float64(min) {
		t.Errorf("no diurnal load variation: min=%d max=%d", min, max)
	}
}

func TestFig1bBusyTime(t *testing.T) {
	// Figure 1b: most sessions are idle most of their lifetime; ~75-80%
	// of sessions are active less than 10% of the time.
	_, samples := testWorld(t)
	lowBusy := 0
	for _, s := range samples {
		if s.BusyFraction < 0.10 {
			lowBusy++
		}
	}
	share := float64(lowBusy) / float64(len(samples))
	if share < 0.60 || share > 0.95 {
		t.Errorf("sessions active <10%% of lifetime = %.3f, want ~0.75-0.80", share)
	}
}

func TestContinentTrafficShares(t *testing.T) {
	_, samples := testWorld(t)
	counts := map[geo.Continent]int{}
	for _, s := range samples {
		counts[s.Continent]++
	}
	tot := float64(len(samples))
	for cont, prof := range Profiles {
		share := float64(counts[cont]) / tot
		// Zipf-ish group weights make shares noisy at 150 groups.
		if share < prof.TrafficShare*0.3 || share > prof.TrafficShare*2.5 {
			t.Errorf("%s session share %.3f, profile %.3f", cont, share, prof.TrafficShare)
		}
	}
}

func BenchmarkGenerateGroupDay(b *testing.B) {
	w := New(Config{Seed: 1, Groups: 8, Days: 1, SessionsPerGroupWindow: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.GenerateGroup(i%len(w.Groups), func(s sample.Sample) {})
	}
}

// TestPolicedShareSuppressesHD: groups behind sub-HD policers fail the
// HD check regardless of their nominal access bandwidth (§4).
func TestPolicedShareSuppressesHD(t *testing.T) {
	run := func(policed float64, seed uint64) float64 {
		w := New(Config{Seed: seed, Groups: 20, Days: 1, SessionsPerGroupWindow: 3, PolicedShare: policed})
		zero, defined := 0, 0
		w.Generate(func(s sample.Sample) {
			if s.AltIndex != 0 {
				return
			}
			if hd, ok := s.HDratio(); ok {
				defined++
				if hd == 0 {
					zero++
				}
			}
		})
		if defined == 0 {
			t.Fatal("no tested sessions")
		}
		return float64(zero) / float64(defined)
	}
	base := run(0, 33)
	policed := run(1.0, 33)
	if policed < base+0.15 {
		t.Errorf("policing everyone raised zero-HD share only %.3f → %.3f", base, policed)
	}
}
