// Package world composes the substrates — geography, BGP routing,
// workload generation, and the flow-level transfer model — into a
// synthetic Internet that stands in for Facebook's production traffic
// (the paper's proprietary dataset, §2.2.4).
//
// The world is organised the way the analysis consumes it: user groups
// (PoP × BGP prefix × country, §3.3), each with a route set at its
// serving PoP, per-continent latency and access-bandwidth profiles
// calibrated to the paper's Figure 6, diurnal congestion and episodic
// failures for §5, and per-route deltas that reproduce the limited
// opportunity structure of §6.
package world

import (
	"fmt"
	"time"

	"repro/internal/bgp"
	"repro/internal/cartographer"
	"repro/internal/geo"
	"repro/internal/units"
)

// ContinentProfile calibrates a continent's client population.
type ContinentProfile struct {
	// TrafficShare is the continent's share of global traffic.
	TrafficShare float64
	// RTTMedian and RTTSigma parameterise the log-normal MinRTT of
	// locally served groups.
	RTTMedian time.Duration
	RTTSigma  float64
	// RemoteShare is the fraction of the continent's groups served from
	// another continent's PoPs (§2.1: European PoPs serve parts of Asia
	// and Africa); RemoteRTTMedian applies to those.
	RemoteShare     float64
	RemoteRTTMedian time.Duration
	// AccessMedian and AccessSigma parameterise the log-normal
	// last-mile bandwidth.
	AccessMedian units.Rate
	AccessSigma  float64
	// BaseLoss is the per-packet loss floor on clean paths.
	BaseLoss float64
	// DegradationBoost scales how often groups on this continent see
	// diurnal/episodic degradation (Table 1: AF/AS/SA above average).
	DegradationBoost float64
}

// Profiles is the per-continent calibration, tuned against Figure 6:
// global median MinRTT just under 40 ms, continental medians AF 58 ms,
// AS 51 ms, SA 40 ms, EU/NA/OC ≤ 25-28 ms; HDratio-zero shares AF 36%,
// AS 24%, SA 27%.
var Profiles = map[geo.Continent]ContinentProfile{
	geo.Asia: {
		TrafficShare: 0.35, RTTMedian: 46 * time.Millisecond, RTTSigma: 0.60,
		RemoteShare: 0.12, RemoteRTTMedian: 100 * time.Millisecond,
		AccessMedian: 8 * units.Mbps, AccessSigma: 1.1, BaseLoss: 0.003,
		DegradationBoost: 1.6,
	},
	geo.Europe: {
		TrafficShare: 0.21, RTTMedian: 24 * time.Millisecond, RTTSigma: 0.80,
		AccessMedian: 14 * units.Mbps, AccessSigma: 1.2, BaseLoss: 0.0015,
		DegradationBoost: 1.0,
	},
	geo.NorthAmerica: {
		TrafficShare: 0.20, RTTMedian: 26 * time.Millisecond, RTTSigma: 0.80,
		AccessMedian: 14 * units.Mbps, AccessSigma: 1.2, BaseLoss: 0.0015,
		DegradationBoost: 0.8,
	},
	geo.SouthAmerica: {
		TrafficShare: 0.11, RTTMedian: 40 * time.Millisecond, RTTSigma: 0.55,
		AccessMedian: 7000 * units.Kbps, AccessSigma: 1.1, BaseLoss: 0.003,
		DegradationBoost: 1.8,
	},
	geo.Africa: {
		TrafficShare: 0.08, RTTMedian: 50 * time.Millisecond, RTTSigma: 0.55,
		RemoteShare: 0.22, RemoteRTTMedian: 105 * time.Millisecond,
		AccessMedian: 5500 * units.Kbps, AccessSigma: 1.05, BaseLoss: 0.0045,
		DegradationBoost: 2.0,
	},
	geo.Oceania: {
		TrafficShare: 0.05, RTTMedian: 28 * time.Millisecond, RTTSigma: 0.70,
		AccessMedian: 15 * units.Mbps, AccessSigma: 1.1, BaseLoss: 0.0015,
		DegradationBoost: 0.5,
	},
}

// TemporalClass is the behaviour a group is seeded with; the analysis
// (§3.4.2) must recover these labels from the data.
type TemporalClass int

// Seeded temporal behaviours.
const (
	Uneventful TemporalClass = iota
	Continuous
	Diurnal
	Episodic
)

// String names the class as the paper's Table 1 does.
func (c TemporalClass) String() string {
	switch c {
	case Uneventful:
		return "Uneventful"
	case Continuous:
		return "Continuous"
	case Diurnal:
		return "Diurnal"
	case Episodic:
		return "Episodic"
	}
	return fmt.Sprintf("TemporalClass(%d)", int(c))
}

// RouteCondition is one egress route's properties for a group.
type RouteCondition struct {
	Route bgp.Route
	// RTTDelta shifts the group's base RTT on this route (the preferred
	// route has delta 0; alternates are usually slightly worse, §6.2).
	RTTDelta time.Duration
	// LossDelta adds route-specific loss (congested interconnects).
	LossDelta float64
}

// Group is one user group: the aggregation unit of §3.3.
type Group struct {
	// PoP is the primary serving PoP (Cartographer's assignment at the
	// start of the study); PoPSchedule carries any mid-study remap.
	PoP       string
	Prefix    string
	ASN       int
	Country   string
	Continent geo.Continent

	// Weight is the group's relative traffic volume (Zipf across groups).
	Weight float64
	// BaseRTT is the propagation MinRTT on the preferred route.
	BaseRTT time.Duration
	// DistanceKm is the population→PoP great-circle distance;
	// CrossContinent marks groups served from another continent (§2.1).
	DistanceKm     float64
	CrossContinent bool
	// Access is the client population's median last-mile bandwidth.
	Access units.Rate
	// AccessSigma spreads per-session access draws within the group.
	AccessSigma float64
	// BaseLoss is the clean-path per-packet loss probability.
	BaseLoss float64
	// PoliceRate, when positive, is a token-bucket policing rate on the
	// group's access network (PoliceBurst bytes of burst).
	PoliceRate  units.Rate
	PoliceBurst int64

	// Routes lists the preferred route first, then the sampled
	// alternates, in policy order.
	Routes []RouteCondition

	// DegradeClass seeds §5 behaviour; Severity scales it.
	DegradeClass TemporalClass
	// DegradeRTT and DegradeLoss are the peak additional RTT and loss
	// applied during degradation episodes (at the destination network,
	// so they affect every route). DegradeBW multiplies the available
	// bandwidth during episodes (downstream congestion shrinks goodput,
	// driving HDratio degradation).
	DegradeRTT  time.Duration
	DegradeLoss float64
	DegradeBW   float64
	// PeakStartHour is the UTC hour at which diurnal degradation begins.
	PeakStartHour int
	// ActivityPeakUTC is the UTC hour of the group's traffic peak.
	ActivityPeakUTC int
	// EpisodeWindows lists window indexes (15-minute, from dataset
	// epoch) during which an episodic group degrades.
	EpisodeWindows map[int]bool

	// OppClass seeds §6 behaviour: when not Uneventful, the preferred
	// route carries OppRTT of extra latency (and optionally OppLoss)
	// during the class's active windows, so the best alternate beats it.
	OppClass TemporalClass
	OppRTT   time.Duration
	OppLoss  float64

	// PopulationShift models Figure 5: a second client subpopulation
	// with a different base RTT whose share varies by hour of day.
	PopulationShift *PopulationShift

	// PoPSchedule is Cartographer's serving-PoP assignment over the
	// dataset; a remapped group's samples carry the new PoP (and thus a
	// new group key), leaving the original group with a coverage gap
	// (§3.4.2).
	PoPSchedule []cartographer.Assignment
	// RemapRTTDelta is the extra propagation cost while served by the
	// remap target.
	RemapRTTDelta time.Duration
}

// PopulationShift is the Figure 5 construct: the same prefix serves two
// regions whose diurnal activity peaks at different hours.
type PopulationShift struct {
	AltRTT time.Duration
	// AltShareByHour gives the alternate subpopulation's share of
	// sessions for each UTC hour.
	AltShareByHour [24]float64
}

// WindowDuration is the aggregation window (§3.3).
const WindowDuration = 15 * time.Minute

// WindowsPerDay is derived from WindowDuration.
const WindowsPerDay = int(24 * time.Hour / WindowDuration)

// Config sizes a world.
type Config struct {
	// Seed drives all randomness; same seed, same world, same dataset.
	Seed uint64
	// Groups is the number of user groups.
	Groups int
	// Days is the dataset length (the paper's study is 10 days).
	Days int
	// SessionsPerGroupWindow is the mean sampled session count per group
	// per 15-minute window at weight 1.0 (scaled by group weight and the
	// diurnal activity curve).
	SessionsPerGroupWindow float64
	// AlternateRoutes is how many non-preferred routes are continuously
	// sampled (§6.2 default: 2).
	AlternateRoutes int
	// HostingShare is the fraction of sessions from hosting/VPN
	// addresses that the collector must filter (§2.2.4: ~2%).
	HostingShare float64
	// PolicedShare is the fraction of groups whose access networks
	// police traffic below the HD rate (§4's policing barrier).
	// Default 0: the calibrated profiles already fold policing-like
	// effects into loss; enable to study policing explicitly.
	PolicedShare float64
}

// DefaultConfig returns a laptop-scale world: the full 10-day window
// structure at a few hundred groups.
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		Groups:                 300,
		Days:                   10,
		SessionsPerGroupWindow: 8,
		AlternateRoutes:        2,
		HostingShare:           0.02,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Groups <= 0 {
		c.Groups = d.Groups
	}
	if c.Days <= 0 {
		c.Days = d.Days
	}
	if c.SessionsPerGroupWindow <= 0 {
		c.SessionsPerGroupWindow = d.SessionsPerGroupWindow
	}
	if c.AlternateRoutes <= 0 {
		c.AlternateRoutes = d.AlternateRoutes
	}
	if c.HostingShare <= 0 {
		c.HostingShare = d.HostingShare
	}
	return c
}

// Windows returns the number of 15-minute windows in the dataset.
func (c Config) Windows() int { return c.Days * WindowsPerDay }
