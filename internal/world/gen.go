package world

import (
	"context"
	"math"
	"runtime"
	"time"

	"repro/internal/cartographer"
	"repro/internal/flowsim"
	"repro/internal/hdratio"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// maxSimulatedTxns caps how many transactions per session run through
// the transfer model; sessions can have 1000+ transactions (Figure 3)
// and the HDratio evidence saturates long before that.
const maxSimulatedTxns = 48

// Batch is one group's full sample stream — the unit of work in the
// concurrent generation pipeline. Samples are in the group's canonical
// order (windows ascending, sessions in draw order), so delivering
// batches in Group order reproduces the exact sequential stream.
type Batch struct {
	Group   int
	Samples []sample.Sample
	// Lost counts sessions this group's windows would have produced but
	// for a PoP outage (World.PoPDown) — the degradation ledger's
	// per-batch contribution.
	Lost int
}

// DefaultWorkers is the generation worker count used by the legacy
// Generate entry point: one per CPU, capped — group simulation is
// compute-bound and stops scaling past the core count.
func DefaultWorkers() int {
	nw := runtime.NumCPU()
	if nw > 16 {
		nw = 16
	}
	if nw < 1 {
		nw = 1
	}
	return nw
}

// Generate produces the full dataset, invoking emit for every sampled
// session in deterministic order (group by group, windows ascending).
// Generation is parallel across groups; emission is ordered.
func (w *World) Generate(emit func(sample.Sample)) {
	// Only context cancellation or a failing deliver can error, and this
	// legacy path has neither.
	_ = w.GenerateCtx(context.Background(), DefaultWorkers(), emit)
}

// GenerateCtx is Generate with explicit worker count and cancellation:
// workers ≤ 1 simulates groups on the calling goroutine (the
// determinism oracle, and the only mode with zero goroutine overhead);
// larger counts fan group simulation out over a worker pool while
// keeping emission in sequential order. Cancelling ctx stops generation
// at the next group boundary and returns the cause.
func (w *World) GenerateCtx(ctx context.Context, workers int, emit func(sample.Sample)) error {
	return w.GenerateBatches(ctx, workers, func(b Batch) error {
		sp := w.obs.emit.Start()
		for _, s := range b.Samples {
			emit(s)
		}
		w.obs.sessions.Add(int64(len(b.Samples)))
		sp.End()
		return nil
	})
}

// GenerateBatches streams per-group batches to deliver in ascending
// group order (deliver runs on one goroutine; its error poisons the
// pipeline). Group simulation runs on up to workers goroutines; each
// group's RNG lineage is independent (rng.ChildAt per group), so the
// batch contents are identical at any worker count — ordered delivery
// then makes the whole stream identical. When W.Rec is set, each
// worker goroutine owns one trace buffer; the events a group emits are
// identical whichever worker simulates it.
func (w *World) GenerateBatches(ctx context.Context, workers int, deliver func(Batch) error) error {
	if workers > len(w.Groups) {
		workers = len(w.Groups)
	}
	if workers <= 1 {
		buf := w.Rec.Buf()
		for i := range w.Groups {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			if err := deliver(w.generateBatch(i, buf)); err != nil {
				return err
			}
		}
		return nil
	}

	idx := make(chan int, len(w.Groups))
	for i := range w.Groups {
		idx <- i
	}
	close(idx)

	g := pipeline.NewGroup(ctx)
	out := pipeline.NewStream[Batch](workers)
	g.GoPool(workers, func(ctx context.Context, _ int) error {
		buf := w.Rec.Buf()
		for i := range idx {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			if err := out.Send(ctx, w.generateBatch(i, buf)); err != nil {
				return err
			}
		}
		return nil
	}, out.Close)
	g.Go(func(ctx context.Context) error {
		return pipeline.Reorder(ctx, out, func(b Batch) int { return b.Group }, 0, deliver)
	})
	return g.Wait()
}

// GenerateBatchesUnordered is GenerateBatches without the ordered
// delivery: handle runs concurrently on the worker goroutines, once per
// group. Callers that need deterministic output restore order
// themselves (cmd/edgesim reorders encoded batches before writing).
func (w *World) GenerateBatchesUnordered(ctx context.Context, workers int, handle func(Batch) error) error {
	if workers > len(w.Groups) {
		workers = len(w.Groups)
	}
	if workers <= 1 {
		buf := w.Rec.Buf()
		for i := range w.Groups {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			if err := handle(w.generateBatch(i, buf)); err != nil {
				return err
			}
		}
		return nil
	}
	idx := make(chan int, len(w.Groups))
	for i := range w.Groups {
		idx <- i
	}
	close(idx)
	g := pipeline.NewGroup(ctx)
	g.GoPool(workers, func(ctx context.Context, _ int) error {
		buf := w.Rec.Buf()
		for i := range idx {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			if err := handle(w.generateBatch(i, buf)); err != nil {
				return err
			}
		}
		return nil
	}, nil)
	return g.Wait()
}

// GenerateSelected is GenerateBatchesUnordered restricted to the given
// group indices — the resume path: a checkpointed run regenerates only
// the groups its manifest does not yet account for. handle receives
// order, the group's position in groups, so callers can restore the
// requested order densely (pipeline.Reorder needs a gapless sequence)
// even when the selection has gaps.
func (w *World) GenerateSelected(ctx context.Context, workers int, groups []int, handle func(order int, b Batch) error) error {
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		buf := w.Rec.Buf()
		for o, i := range groups {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			if err := handle(o, w.generateBatch(i, buf)); err != nil {
				return err
			}
		}
		return nil
	}
	type job struct{ order, group int }
	idx := make(chan job, len(groups))
	for o, i := range groups {
		idx <- job{order: o, group: i}
	}
	close(idx)
	g := pipeline.NewGroup(ctx)
	g.GoPool(workers, func(ctx context.Context, _ int) error {
		buf := w.Rec.Buf()
		for j := range idx {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			if err := handle(j.order, w.generateBatch(j.group, buf)); err != nil {
				return err
			}
		}
		return nil
	}, nil)
	return g.Wait()
}

// generateBatch simulates one group under the generation span.
func (w *World) generateBatch(i int, tb *trace.Buf) Batch {
	sp := w.obs.genStage.Start()
	var buf []sample.Sample
	lost := w.generateGroup(i, tb, func(s sample.Sample) { buf = append(buf, s) })
	sp.End()
	return Batch{Group: i, Samples: buf, Lost: lost}
}

// GenerateAll buffers the whole dataset; intended for tests and small
// configurations.
func (w *World) GenerateAll() []sample.Sample {
	var out []sample.Sample
	w.Generate(func(s sample.Sample) { out = append(out, s) })
	return out
}

// GenerateGroup produces every sample for one group across all windows
// and returns the number of sessions suppressed by PoP outages
// (World.PoPDown), 0 when no outage machinery is installed.
func (w *World) GenerateGroup(groupIdx int, emit func(sample.Sample)) int {
	return w.generateGroup(groupIdx, nil, emit)
}

// generateGroup is GenerateGroup with trace emission: one generation
// span per group, one window mark per window, and loss/fault events
// for outage-suppressed windows. Every coordinate is logical (group
// index, window index), so the events are identical at any worker
// count.
func (w *World) generateGroup(groupIdx int, tb *trace.Buf, emit func(sample.Sample)) int {
	g := w.Groups[groupIdx]
	r := rng.ChildAt(w.Cfg.Seed, "traffic", groupIdx)
	gen := workload.NewGenerator(r.Child("workload"), workload.Config{})
	track := trace.GroupTrack(groupIdx)
	tsp := tb.Begin(track, trace.PhaseGen, -1, 0, "generate")
	seq := uint64(0)
	lost, emitted := 0, 0
	for win := 0; win < w.Cfg.Windows(); win++ {
		wl, wn := w.generateWindow(g, uint64(groupIdx), win, r, gen, &seq, emit)
		lost += wl
		emitted += wn
		tb.Emit(trace.Event{Track: track, Phase: trace.PhaseGen, Win: int32(win), Seq: uint64(win),
			Kind: trace.KMark, Stage: "window", Value: int64(wn)})
		if wl > 0 {
			tb.Emit(trace.Event{Track: track, Phase: trace.PhaseGen, Win: int32(win), Seq: uint64(win),
				Kind: trace.KFault, Stage: "generate", Value: int64(wl), Detail: "pop-outage"})
			tb.Loss(track, trace.PhaseGen, int32(win), uint64(win), "generate", trace.LossOutage, wl)
		}
		w.obs.windows.Inc()
	}
	tsp.End(int64(emitted))
	w.obs.groups.Inc()
	return lost
}

// generateWindow produces the samples for one group × window and
// returns (sessions lost to a PoP outage, sessions emitted).
func (w *World) generateWindow(g *Group, groupIdx uint64, win int, r *rng.RNG,
	gen *workload.Generator, seq *uint64, emit func(sample.Sample)) (int, int) {

	hour := (win / 4) % 24
	mean := w.Cfg.SessionsPerGroupWindow * g.Weight * activity(hour, g.ActivityPeakUTC)
	n := poisson(r, mean)
	winStart := time.Duration(win) * WindowDuration

	// Cartographer may have remapped the group to another PoP for this
	// window (§3.4.2's coverage-gap cause).
	pop := g.PoP
	remapped := false
	if len(g.PoPSchedule) > 1 {
		if cur := cartographer.PoPAt(g.PoPSchedule, win); cur.Name != g.PoP {
			pop, remapped = cur.Name, true
		}
	}

	// A PoP-wide outage takes the collection fabric down at the serving
	// PoP (checked after the remap so an outage at the remap target is
	// honoured): sessions still occur — the simulation consumes its RNG
	// lineage unchanged, so every other window stays byte-identical to
	// the no-outage dataset — but their measurements are never
	// collected, and the window's samples are accounted as lost.
	down := w.PoPDown != nil && w.PoPDown(pop, win)
	if down {
		w.obs.outageLost.Add(int64(n))
	}

	for i := 0; i < n; i++ {
		*seq++
		s := w.generateSession(g, groupIdx, win, hour, r, gen, remapped)
		s.PoP = pop
		s.SessionID = groupIdx<<40 | *seq
		s.Start = winStart + time.Duration(r.Int64N(int64(WindowDuration)))
		if down {
			continue
		}
		emit(s)
	}
	if down {
		return n, 0
	}
	return 0, n
}

// generateSession runs one sampled session through the transfer model
// and the measurement methodology.
func (w *World) generateSession(g *Group, groupIdx uint64, win, hour int,
	r *rng.RNG, gen *workload.Generator, remapped bool) sample.Sample {

	// Route pinning (§2.2.3): sampled sessions are pinned in
	// coordination with Edge Fabric — ~47% ride the policy-preferred
	// route, the rest measure the alternates.
	alt := w.pinner.Pin(r, len(g.Routes))
	rc := g.Routes[alt]

	path := w.pathConditions(g, rc, alt, win, hour, r)
	if remapped {
		path.PropRTT += g.RemapRTTDelta
	}
	spec := gen.Session()

	fs := flowsim.NewSession(path, flowsim.Config{}, r)
	nSim := len(spec.Txns)
	if nSim > maxSimulatedTxns {
		nSim = maxSimulatedTxns
	}
	txns := make([]hdratio.Transaction, 0, nSim)
	var busy time.Duration
	var prevEnd time.Duration
	for _, t := range spec.Txns[:nSim] {
		// Idle gap since the previous transfer finished: long gaps
		// collapse the congestion window (slow start after idle), which
		// is exactly what the methodology's Wstart chaining compensates
		// for (§3.2.2).
		idle := t.At - prevEnd
		res := fs.TransferAfterIdle(t.Bytes, idle)
		txns = append(txns, res.Observation)
		busy += res.RawDuration
		end := t.At + res.RawDuration
		if end > prevEnd {
			prevEnd = end
		}
	}
	if nSim > 0 && len(spec.Txns) > nSim {
		// Extrapolate busy time for the unsimulated tail.
		busy += time.Duration(float64(busy) / float64(nSim) * float64(len(spec.Txns)-nSim))
	}
	busyFrac := 0.0
	if spec.Duration > 0 {
		busyFrac = float64(busy) / float64(spec.Duration)
		if busyFrac > 0.98 {
			busyFrac = 0.98
		}
	}

	hsess := hdratio.Session{MinRTT: fs.MinRTT(), Transactions: txns}
	out := hdratio.Evaluate(hsess, hdratio.DefaultConfig())
	simple := hdratio.EvaluateSimple(hsess, hdratio.DefaultConfig())

	return sample.Sample{
		PoP:             g.PoP,
		DistanceKm:      g.DistanceKm,
		CrossContinent:  g.CrossContinent,
		ClientSubnet:    uint8(r.IntN(4)),
		Prefix:          g.Prefix,
		ClientAS:        g.ASN,
		Country:         g.Country,
		Continent:       g.Continent,
		Proto:           spec.Proto,
		RouteID:         rc.Route.ID,
		RouteRel:        rc.Route.Rel,
		ASPathLen:       rc.Route.PathLen(),
		Prepended:       rc.Route.Prepended(),
		AltIndex:        alt,
		Duration:        spec.Duration,
		BusyFraction:    busyFrac,
		Bytes:           spec.TotalBytes(),
		Transactions:    len(spec.Txns),
		ResponseBytes:   gen.RecordedResponses(spec),
		MediaEndpoint:   spec.Media,
		MinRTT:          fs.MinRTT(),
		HDTested:        out.Tested,
		HDAchieved:      out.AchievedCount,
		SimpleAchieved:  simple.AchievedCount,
		HostingProvider: r.Bool(w.Cfg.HostingShare),
	}
}

// pathConditions assembles the flow-level path for one session.
func (w *World) pathConditions(g *Group, rc RouteCondition, alt, win, hour int, r *rng.RNG) flowsim.Path {
	base := g.BaseRTT
	if ps := g.PopulationShift; ps != nil && r.Bool(ps.AltShareByHour[hour]) {
		base = ps.AltRTT
	}
	rtt := base + rc.RTTDelta
	loss := g.BaseLoss + rc.LossDelta
	jitter := 700*time.Microsecond + rtt/35

	// Destination-network degradation (§5) affects every route.
	bwFactor := 1.0
	if w.degradeActive(g, win, hour) {
		rtt += g.DegradeRTT
		loss += g.DegradeLoss
		jitter += g.DegradeRTT / 4
		if g.DegradeBW > 0 {
			bwFactor = g.DegradeBW
		}
	}
	// Opportunity penalties (§6) hit only the preferred route, so the
	// best alternate wins while the episode lasts.
	if alt == 0 && w.oppActive(g, win, hour) {
		rtt += g.OppRTT
		loss += g.OppLoss
	}

	access := units.Rate(r.LogNormalMedian(float64(g.Access), g.AccessSigma) * bwFactor)
	if access < 100*units.Kbps {
		access = 100 * units.Kbps
	}
	if access > 300*units.Mbps {
		access = 300 * units.Mbps
	}
	if loss > 0.3 {
		loss = 0.3
	}
	return flowsim.Path{
		PropRTT:         rtt,
		Bottleneck:      access,
		LossProb:        loss,
		JitterMean:      jitter,
		BottleneckSigma: 0.45,
		PoliceRate:      g.PoliceRate,
		PoliceBurst:     g.PoliceBurst,
	}
}

// degradeActive reports whether the group's degradation is in effect.
func (w *World) degradeActive(g *Group, win, hour int) bool {
	switch g.DegradeClass {
	case Continuous:
		return true
	case Diurnal:
		return inPeak(hour, g.PeakStartHour)
	case Episodic:
		return g.EpisodeWindows[win]
	}
	return false
}

// oppActive reports whether the preferred-route penalty is in effect.
func (w *World) oppActive(g *Group, win, hour int) bool {
	switch g.OppClass {
	case Continuous:
		return true
	case Diurnal:
		return inPeak(hour, g.ActivityPeakUTC)
	case Episodic:
		return g.EpisodeWindows[win]
	}
	return false
}

// inPeak reports whether hour falls in the 4-hour window from start.
func inPeak(hour, start int) bool {
	d := ((hour-start)%24 + 24) % 24
	return d < 4
}

// activity is the diurnal demand curve: sessions concentrate around the
// local evening peak.
func activity(hourUTC, peakUTC int) float64 {
	d := float64(((hourUTC-peakUTC)%24 + 24) % 24)
	if d > 12 {
		d = 24 - d
	}
	// Cosine bump: 1.4 at the peak, 0.4 at the trough.
	return 0.9 + 0.5*math.Cos(math.Pi*d/12)
}

// poisson draws a Poisson variate via Knuth's method (means here are
// small) with a normal approximation above 30.
func poisson(r *rng.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(r.Normal(mean, math.Sqrt(mean)) + 0.5)
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= r.Float64()
	}
	return k - 1
}
