package world

import (
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/sample"
)

// TestFig5PopulationShift reproduces Figure 5: a prefix serving two
// regions (e.g. California and Hawaii) whose diurnal activity peaks at
// different hours sees its group-level median MinRTT oscillate between
// the two regional levels even though each subpopulation is stable.
func TestFig5PopulationShift(t *testing.T) {
	w := New(Config{Seed: 3, Groups: 1, Days: 2, SessionsPerGroupWindow: 120})
	g := w.Groups[0]

	// Configure the group as the paper's example: a 20 ms main
	// population and a 60 ms alternate whose share peaks 12h offset.
	g.BaseRTT = 20 * time.Millisecond
	g.DegradeClass = Uneventful
	g.OppClass = Uneventful
	var shift PopulationShift
	shift.AltRTT = 60 * time.Millisecond
	for h := 0; h < 24; h++ {
		// Hawaii-like population dominates around hour 12, vanishes at 0.
		d := h - 12
		if d < 0 {
			d = -d
		}
		shift.AltShareByHour[h] = 0.75 * (1 - float64(d)/12)
	}
	g.PopulationShift = &shift

	store := agg.NewStore()
	w.GenerateGroup(0, func(s sample.Sample) {
		if s.AltIndex == 0 && !s.HostingProvider {
			store.Add(s)
		}
	})
	series := analysis.RTTSeries(store.Groups()[0])
	if len(series) < 100 {
		t.Fatalf("series too sparse: %d windows", len(series))
	}

	// Median around hour 0 (alt share ~0) must sit near 20 ms; around
	// hour 12 (alt share 0.75) near 60 ms; and the series must visit
	// both regimes.
	avgAt := func(hour int) float64 {
		sum, n := 0.0, 0
		for win, v := range series {
			if (win/4)%24 == hour {
				sum += v
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no windows at hour %d", hour)
		}
		return sum / float64(n)
	}
	low, high := avgAt(0), avgAt(12)
	if low < 18 || low > 32 {
		t.Errorf("off-peak median = %.1f ms, want ~20-25", low)
	}
	if high < 45 || high > 70 {
		t.Errorf("peak median = %.1f ms, want ~55-65", high)
	}
	if high-low < 20 {
		t.Errorf("population shift moved the median only %.1f ms", high-low)
	}
}
