package analysis

import (
	"math"
	"sort"

	"repro/internal/agg"
	"repro/internal/geo"
)

// GroupSummary is one user group's dataset-level roll-up, backing the
// edgestat inspection tool.
type GroupSummary struct {
	Key       string
	Continent geo.Continent
	ClientAS  int

	Sessions int
	Bytes    int64
	Windows  int
	Coverage float64 // fraction of dataset windows with traffic

	// Preferred-route medians over the whole dataset.
	MinRTTP50  float64
	HDratioP50 float64

	// Baseline and worst-window degradation (MinRTT, ms).
	Baseline         float64
	WorstDegradation float64

	// Routes counts the measured egress routes.
	Routes int
}

// SummariseGroups rolls every group up, sorted by traffic descending.
func SummariseGroups(store *agg.Store) []GroupSummary {
	deg := Degradation(store, MetricMinRTT)
	baselines := make(map[string]GroupDegradation, len(deg.Groups))
	for _, g := range deg.Groups {
		baselines[g.Group.Key.String()] = g
	}

	out := make([]GroupSummary, 0, store.Len())
	for _, g := range store.Groups() {
		gs := GroupSummary{
			Key:       g.Key.String(),
			Continent: g.Continent,
			ClientAS:  g.ClientAS,
			Windows:   len(g.Windows),
			Coverage:  g.CoverageFraction(store.TotalWindows),
			Routes:    len(g.RouteMeta),
		}
		// Merge the preferred route's digests across windows.
		var rtts, hds []float64
		for _, win := range g.WindowIndexes() {
			a := g.Windows[win].Route(0)
			if a == nil {
				continue
			}
			gs.Sessions += a.Sessions
			gs.Bytes += a.Bytes
			if m := a.MinRTTP50(); !math.IsNaN(m) {
				rtts = append(rtts, m)
			}
			if h := a.HDratioP50(); !math.IsNaN(h) {
				hds = append(hds, h)
			}
		}
		gs.MinRTTP50 = median(rtts)
		gs.HDratioP50 = median(hds)

		if gd, ok := baselines[gs.Key]; ok {
			gs.Baseline = gd.Baseline
			worst := 0.0
			for _, pt := range gd.Points {
				if pt.Valid && pt.Amount > worst {
					worst = pt.Amount
				}
			}
			gs.WorstDegradation = worst
		}
		out = append(out, gs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
