package analysis

import (
	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/stats"
)

// RelComparison selects Figure 10's route-pair categories.
type RelComparison int

// Figure 10's three comparisons.
const (
	// PeeringVsTransit compares peer-preferred groups against their
	// most-preferred transit alternate.
	PeeringVsTransit RelComparison = iota
	// TransitVsTransit compares transit-preferred groups against a
	// transit alternate.
	TransitVsTransit
	// PrivateVsPublic compares PNI-preferred groups against a public
	// exchange alternate.
	PrivateVsPublic
)

// String names the comparison as the figure's legend does.
func (c RelComparison) String() string {
	switch c {
	case PeeringVsTransit:
		return "Peering vs Transit"
	case TransitVsTransit:
		return "Transit vs Transit"
	case PrivateVsPublic:
		return "Private vs Public"
	}
	return "Unknown"
}

// RelComparisons lists the figure's series.
var RelComparisons = []RelComparison{PeeringVsTransit, TransitVsTransit, PrivateVsPublic}

// matches reports whether a (preferred, alternate) relationship pair
// belongs to the comparison.
func (c RelComparison) matches(pref, alt bgp.RelType) bool {
	switch c {
	case PeeringVsTransit:
		return pref.IsPeer() && alt == bgp.Transit
	case TransitVsTransit:
		return pref == bgp.Transit && alt == bgp.Transit
	case PrivateVsPublic:
		return pref == bgp.PrivatePeer && alt == bgp.PublicPeer
	}
	return false
}

// CompareRelationships builds Figure 10: the traffic-weighted
// distribution of MinRTTP50 differences (preferred − alternate, so
// positive = the alternate is better… lower) for each relationship
// category. Unlike the opportunity analysis, the alternate is the
// most-preferred route of the target relationship, not the best
// performer (§6.3).
func CompareRelationships(store *agg.Store, metric Metric) map[RelComparison]*stats.WeightedCDF {
	points := make(map[RelComparison][]stats.WeightedPoint)
	for _, g := range store.Groups() {
		prefMeta, ok := g.RouteMeta[0]
		if !ok {
			continue
		}
		for _, comparison := range RelComparisons {
			// Most-preferred alternate of the matching relationship:
			// lowest alternate index (alternates are stored in policy
			// order).
			altIdx := -1
			for i := 1; i < len(g.RouteMeta)+1; i++ {
				meta, ok := g.RouteMeta[i]
				if !ok {
					continue
				}
				if comparison.matches(prefMeta.Rel, meta.Rel) {
					altIdx = i
					break
				}
			}
			if altIdx < 0 {
				continue
			}
			for _, win := range g.WindowIndexes() {
				wa := g.Windows[win]
				pref, alt := wa.Route(0), wa.Route(altIdx)
				if pref == nil || alt == nil {
					continue
				}
				cmp := stats.Compare(metric.digest(pref), metric.digest(alt), stats.DefaultConfidence, metric.maxCIWidth())
				if !cmp.Valid {
					continue
				}
				// Figure 10 orientation: preferred − alternate; for
				// MinRTT positive means the alternate has lower latency.
				diff := cmp.Point
				if metric == MetricHDratio {
					diff = -cmp.Point // alternate − preferred, better = positive
				}
				points[comparison] = append(points[comparison], stats.WeightedPoint{
					Value:  diff,
					Weight: float64(pref.Bytes + alt.Bytes),
				})
			}
		}
	}
	out := make(map[RelComparison]*stats.WeightedCDF, len(points))
	for c, pts := range points {
		out[c] = stats.NewWeightedCDF(pts)
	}
	return out
}
