package analysis

import (
	"math"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/geo"
	"repro/internal/stats"
)

// OpportunityPoint is one (group, window) comparison of the preferred
// route against the best alternate (§6.2).
type OpportunityPoint struct {
	Window int
	// Diff is oriented "positive = alternate better": preferred−alternate
	// for MinRTTP50, alternate−preferred for HDratioP50.
	Diff float64
	// Lo and Hi bound Diff's confidence interval (Price–Bonett).
	Lo, Hi float64
	// Valid means at least two routes had tight comparisons (§3.4.1).
	Valid bool
	// HDGuardOK reports the §3.4 guard for MinRTT opportunity: the best
	// alternate's HDratioP50 is statistically equal or better.
	HDGuardOK bool
	// Bytes is the window's total traffic across routes.
	Bytes int64
	// AltIndex identifies the best alternate route.
	AltIndex int
}

// GroupOpportunity is one group's opportunity series.
type GroupOpportunity struct {
	Group     *agg.GroupSeries
	Continent geo.Continent
	Points    []OpportunityPoint
}

// OpportunityResult is the §6.2 analysis output.
type OpportunityResult struct {
	Metric       Metric
	Groups       []GroupOpportunity
	CoveredBytes int64
	TotalBytes   int64
}

// Opportunity compares the preferred route with the best alternate in
// every aggregation (§6.2).
func Opportunity(store *agg.Store, metric Metric) OpportunityResult {
	res := OpportunityResult{Metric: metric}
	for _, g := range store.Groups() {
		if len(g.RouteMeta) < 2 {
			continue
		}
		go_ := GroupOpportunity{Group: g, Continent: g.Continent}
		for _, win := range g.WindowIndexes() {
			wa := g.Windows[win]
			pref := wa.Route(0)
			var bytes int64
			for _, a := range wa.Routes {
				bytes += a.Bytes
			}
			res.TotalBytes += bytes
			pt := OpportunityPoint{Window: win, Bytes: bytes, AltIndex: -1}
			if pref != nil {
				pt = res.compareWindow(metric, wa, pref, pt)
			}
			if pt.Valid {
				res.CoveredBytes += bytes
			}
			go_.Points = append(go_.Points, pt)
		}
		res.Groups = append(res.Groups, go_)
	}
	return res
}

// compareWindow finds the best alternate and fills the point.
func (res *OpportunityResult) compareWindow(metric Metric, wa *agg.WindowAgg, pref *agg.Aggregation, pt OpportunityPoint) OpportunityPoint {
	best := math.Inf(-1)
	for alt, a := range wa.Routes {
		if alt == 0 {
			continue
		}
		cmp := stats.Compare(metric.digest(a), metric.digest(pref), stats.DefaultConfidence, metric.maxCIWidth())
		if !cmp.Valid {
			continue
		}
		// cmp.Point = median(alt) − median(pref). Positive = alternate
		// better for HDratio; for MinRTT invert so positive = better.
		diff, lo, hi := cmp.Point, cmp.Lo, cmp.Hi
		if metric == MetricMinRTT {
			diff, lo, hi = -diff, -hi, -lo
		}
		if diff > best {
			best = diff
			pt.Diff, pt.Lo, pt.Hi = diff, lo, hi
			pt.Valid = true
			pt.AltIndex = alt
		}
	}
	if pt.Valid && metric == MetricMinRTT {
		// Guard: do not call it opportunity if the alternate degrades
		// HDratio (§3.4: HDratio is prioritised).
		pt.HDGuardOK = true
		altAgg := wa.Route(pt.AltIndex)
		hdCmp := stats.Compare(altAgg.HD, pref.HD, stats.DefaultConfidence, agg.MaxCIWidthHDratio)
		if hdCmp.Valid && hdCmp.Hi < 0 {
			pt.HDGuardOK = false
		}
	} else if pt.Valid {
		pt.HDGuardOK = true
	}
	return pt
}

// Event reports whether a point is an opportunity at the threshold.
func (pt OpportunityPoint) Event(threshold float64) bool {
	return pt.Valid && pt.HDGuardOK && pt.Lo > threshold
}

// CDF returns the traffic-weighted distribution of preferred-vs-best-
// alternate differences (Figure 9) with the CI bound bands.
func (r OpportunityResult) CDF() (diff, lo, hi *stats.WeightedCDF) {
	var pd, pl, ph []stats.WeightedPoint
	for _, g := range r.Groups {
		for _, pt := range g.Points {
			if !pt.Valid {
				continue
			}
			w := float64(pt.Bytes)
			pd = append(pd, stats.WeightedPoint{Value: pt.Diff, Weight: w})
			pl = append(pl, stats.WeightedPoint{Value: pt.Lo, Weight: w})
			ph = append(ph, stats.WeightedPoint{Value: pt.Hi, Weight: w})
		}
	}
	return stats.NewWeightedCDF(pd), stats.NewWeightedCDF(pl), stats.NewWeightedCDF(ph)
}

// FractionImprovableAtLeast returns the traffic share whose preferred
// route can be beaten by at least x (read off Figure 9, e.g. 2.0% for
// 5 ms MinRTT, 0.2% for 0.05 HDratio in the paper).
func (r OpportunityResult) FractionImprovableAtLeast(x float64) float64 {
	var eventBytes, total int64
	for _, g := range r.Groups {
		for _, pt := range g.Points {
			if !pt.Valid {
				continue
			}
			total += pt.Bytes
			if pt.Event(x) {
				eventBytes += pt.Bytes
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(eventBytes) / float64(total)
}

// FractionWithinOfOptimal returns the traffic share where the preferred
// route is within x of the best route (§6.2: 83.9% within 3 ms;
// 93.4% within 0.025 HDratio).
func (r OpportunityResult) FractionWithinOfOptimal(x float64) float64 {
	var within, total int64
	for _, g := range r.Groups {
		for _, pt := range g.Points {
			if !pt.Valid {
				continue
			}
			total += pt.Bytes
			// Optimal = min(pref, best alt); pref is within x when the
			// alternate's advantage is at most x.
			if pt.Diff <= x {
				within += pt.Bytes
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(within) / float64(total)
}

// Classify builds Table 1's right half: opportunity by temporal class.
func (r OpportunityResult) Classify(totalWindows int, p ClassifyParams, thresholds []float64) ClassTable {
	tbl := ClassTable{
		Metric:     r.Metric,
		Thresholds: thresholds,
		Rows:       make(map[Class]map[geo.Continent][]ClassRow),
		Overall:    make(map[Class][]ClassRow),
	}
	type key struct {
		class Class
		cont  geo.Continent
		ti    int
	}
	groupBytes := make(map[key]int64)
	eventBytes := make(map[key]int64)
	contBytes := make(map[geo.Continent]int64)
	var allBytes int64

	for _, g := range r.Groups {
		var total int64
		for _, pt := range g.Points {
			total += pt.Bytes
		}
		contBytes[g.Continent] += total
		allBytes += total
		for ti, th := range thresholds {
			verdicts := make([]WindowVerdict, len(g.Points))
			var evBytes int64
			for i, pt := range g.Points {
				ev := pt.Event(th)
				verdicts[i] = WindowVerdict{Window: pt.Window, Valid: pt.Valid, Event: ev, Bytes: pt.Bytes}
				if ev {
					evBytes += pt.Bytes
				}
			}
			class := Classify(verdicts, len(g.Points), totalWindows, p)
			if class == Unclassified {
				continue
			}
			k := key{class, g.Continent, ti}
			groupBytes[k] += total
			eventBytes[k] += evBytes
		}
	}

	for _, class := range Classes {
		tbl.Rows[class] = make(map[geo.Continent][]ClassRow)
		tbl.Overall[class] = make([]ClassRow, len(thresholds))
		for _, cont := range geo.Continents {
			tbl.Rows[class][cont] = make([]ClassRow, len(thresholds))
		}
	}
	for ti := range thresholds {
		for _, class := range Classes {
			var gb, eb int64
			for _, cont := range geo.Continents {
				k := key{class, cont, ti}
				gb += groupBytes[k]
				eb += eventBytes[k]
				if cb := contBytes[cont]; cb > 0 {
					tbl.Rows[class][cont][ti] = ClassRow{
						GroupTrafficShare: float64(groupBytes[k]) / float64(cb),
						EventTrafficShare: float64(eventBytes[k]) / float64(cb),
					}
				}
			}
			if allBytes > 0 {
				tbl.Overall[class][ti] = ClassRow{
					GroupTrafficShare: float64(gb) / float64(allBytes),
					EventTrafficShare: float64(eb) / float64(allBytes),
				}
			}
		}
	}
	return tbl
}

// RelPair is a Table 2 row: the preferred route's relationship and the
// best alternate's.
type RelPair struct {
	Pref, Alt bgp.RelType
}

// RelOpportunity is one Table 2 row's accumulators.
type RelOpportunity struct {
	// EventBytes is traffic during opportunity windows on this pair.
	EventBytes int64
	// LongerBytes: the alternate's AS-path was longer than preferred's.
	LongerBytes int64
	// PrependedBytes: the alternate was prepended more.
	PrependedBytes int64
}

// RelationshipTable is Table 2 for one metric.
type RelationshipTable struct {
	Metric Metric
	// Pairs maps relationship pair → accumulators.
	Pairs map[RelPair]*RelOpportunity
	// TotalBytes is all analysed traffic (the "absolute" denominator).
	TotalBytes int64
	// TotalEventBytes sums opportunity traffic (the "relative"
	// denominator).
	TotalEventBytes int64
}

// Relationships builds Table 2 at the given opportunity threshold.
func (r OpportunityResult) Relationships(threshold float64) RelationshipTable {
	tbl := RelationshipTable{
		Metric: r.Metric,
		Pairs:  make(map[RelPair]*RelOpportunity),
	}
	for _, g := range r.Groups {
		prefMeta, okP := g.Group.RouteMeta[0]
		for _, pt := range g.Points {
			if pt.Valid {
				tbl.TotalBytes += pt.Bytes
			}
			if !okP || !pt.Event(threshold) || pt.AltIndex < 0 {
				continue
			}
			altMeta, okA := g.Group.RouteMeta[pt.AltIndex]
			if !okA {
				continue
			}
			pair := RelPair{Pref: prefMeta.Rel, Alt: altMeta.Rel}
			ro := tbl.Pairs[pair]
			if ro == nil {
				ro = &RelOpportunity{}
				tbl.Pairs[pair] = ro
			}
			ro.EventBytes += pt.Bytes
			tbl.TotalEventBytes += pt.Bytes
			if altMeta.ASPathLen > prefMeta.ASPathLen {
				ro.LongerBytes += pt.Bytes
			}
			if altMeta.Prepended && !prefMeta.Prepended {
				ro.PrependedBytes += pt.Bytes
			}
		}
	}
	return tbl
}
