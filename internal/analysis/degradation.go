package analysis

import (
	"math"
	"sort"

	"repro/internal/agg"
	"repro/internal/geo"
	"repro/internal/stats"
)

// Metric selects which aggregation median an analysis runs on.
type Metric int

// Metrics under analysis.
const (
	// MetricMinRTT analyses MinRTTP50 in milliseconds; degradation and
	// opportunity are "current minus baseline" style positive numbers.
	MetricMinRTT Metric = iota
	// MetricHDratio analyses HDratioP50 in ratio units.
	MetricHDratio
)

// String names the metric.
func (m Metric) String() string {
	if m == MetricHDratio {
		return "HDratioP50"
	}
	return "MinRTTP50"
}

// maxCIWidth returns the §3.4.1 tightness requirement for the metric.
func (m Metric) maxCIWidth() float64 {
	if m == MetricHDratio {
		return agg.MaxCIWidthHDratio
	}
	return agg.MaxCIWidthMinRTTMs
}

// median extracts the metric's median from an aggregation.
func (m Metric) median(a *agg.Aggregation) float64 {
	if m == MetricHDratio {
		return a.HDratioP50()
	}
	return a.MinRTTP50()
}

// digest returns the metric's digest (for CI machinery).
func (m Metric) digest(a *agg.Aggregation) stats.QuantileSource {
	if m == MetricHDratio {
		return a.HD
	}
	return a.MinRTT
}

// count returns the number of sessions contributing to the metric.
func (m Metric) count(a *agg.Aggregation) float64 {
	return m.digest(a).Count()
}

// DegradationPoint is one aggregation's degradation measurement:
// how much worse the window is than the group's baseline (§3.4).
type DegradationPoint struct {
	Window int
	// Amount is baseline-relative degradation in the metric's units and
	// "bigger is worse" orientation: current−baseline for MinRTT,
	// baseline−current for HDratio.
	Amount float64
	// Lo and Hi bound Amount's confidence interval.
	Lo, Hi float64
	// Valid reflects the §3.4.1 sample floor and tightness.
	Valid bool
	// Bytes is the window's preferred-route traffic.
	Bytes int64
}

// GroupDegradation is a group's full degradation series.
type GroupDegradation struct {
	Group     *agg.GroupSeries
	Baseline  float64
	Points    []DegradationPoint
	Continent geo.Continent
}

// DegradationResult is the §5 analysis output.
type DegradationResult struct {
	Metric Metric
	Groups []GroupDegradation
	// CoveredBytes / TotalBytes is the traffic share with valid
	// aggregations (paper: 94.8% for MinRTTP50, 89.5% for HDratioP50).
	CoveredBytes int64
	TotalBytes   int64
}

// baselineQuantile is the baseline definition (§3.4): p10 of the
// preferred route's MinRTTP50 distribution over windows (best decile),
// p90 for HDratioP50.
func baselineQuantile(m Metric, medians []float64) float64 {
	sorted := stats.SortCopy(medians)
	if m == MetricHDratio {
		return stats.Quantile(sorted, 0.90)
	}
	return stats.Quantile(sorted, 0.10)
}

// Degradation computes per-window degradation of the preferred route
// against each group's baseline (§5).
func Degradation(store *agg.Store, metric Metric) DegradationResult {
	res := DegradationResult{Metric: metric}
	for _, g := range store.Groups() {
		gd := GroupDegradation{Group: g, Continent: g.Continent}

		// Collect the preferred route's medians to establish a baseline.
		var medians []float64
		for _, win := range g.WindowIndexes() {
			a := g.Windows[win].Route(0)
			if a == nil || !a.HasMinSamples() {
				continue
			}
			if v := metric.median(a); !math.IsNaN(v) {
				medians = append(medians, v)
			}
		}
		if len(medians) == 0 {
			continue
		}
		gd.Baseline = baselineQuantile(metric, medians)

		for _, win := range g.WindowIndexes() {
			a := g.Windows[win].Route(0)
			if a == nil {
				continue
			}
			res.TotalBytes += a.Bytes
			pt := DegradationPoint{Window: win, Bytes: a.Bytes}
			cur := metric.median(a)
			if a.HasMinSamples() && metric.count(a) >= stats.MinSamples && !math.IsNaN(cur) {
				// The baseline is a scalar, so the interval comes from
				// the current window's median variance alone.
				v := stats.MedianVarianceDigest(metric.digest(a), stats.DefaultConfidence)
				if !math.IsInf(v, 1) {
					se := math.Sqrt(v)
					z := stats.ZScore(stats.DefaultConfidence)
					amt := cur - gd.Baseline
					if metric == MetricHDratio {
						amt = gd.Baseline - cur
					}
					pt.Amount = amt
					pt.Lo, pt.Hi = amt-z*se, amt+z*se
					pt.Valid = (pt.Hi - pt.Lo) <= metric.maxCIWidth()
				}
			}
			if pt.Valid {
				res.CoveredBytes += a.Bytes
			}
			gd.Points = append(gd.Points, pt)
		}
		res.Groups = append(res.Groups, gd)
	}
	return res
}

// CDF returns the traffic-weighted distribution of degradation amounts
// over valid aggregations (Figure 8), plus the CI bound distributions
// (the figure's shaded band).
func (r DegradationResult) CDF() (amount, lo, hi *stats.WeightedCDF) {
	var pa, pl, ph []stats.WeightedPoint
	for _, g := range r.Groups {
		for _, pt := range g.Points {
			if !pt.Valid {
				continue
			}
			w := float64(pt.Bytes)
			pa = append(pa, stats.WeightedPoint{Value: pt.Amount, Weight: w})
			pl = append(pl, stats.WeightedPoint{Value: pt.Lo, Weight: w})
			ph = append(ph, stats.WeightedPoint{Value: pt.Hi, Weight: w})
		}
	}
	return stats.NewWeightedCDF(pa), stats.NewWeightedCDF(pl), stats.NewWeightedCDF(ph)
}

// ClassRow is one Table 1 cell pair at one threshold: the traffic share
// of groups in the class, and the share of traffic delivered during the
// class's event windows.
type ClassRow struct {
	GroupTrafficShare float64
	EventTrafficShare float64
}

// ClassTable is Table 1 for one metric: class × continent × threshold.
type ClassTable struct {
	Metric Metric
	// Thresholds analysed, in the metric's units.
	Thresholds []float64
	// Rows[class][continent or "" for overall][thresholdIndex].
	Rows map[Class]map[geo.Continent][]ClassRow
	// Overall[class][thresholdIndex] is normalised over all traffic.
	Overall map[Class][]ClassRow
}

// Classify builds Table 1's left half: degradation by temporal class at
// each threshold (§3.4.2, §5).
func (r DegradationResult) Classify(totalWindows int, p ClassifyParams, thresholds []float64) ClassTable {
	tbl := ClassTable{
		Metric:     r.Metric,
		Thresholds: thresholds,
		Rows:       make(map[Class]map[geo.Continent][]ClassRow),
		Overall:    make(map[Class][]ClassRow),
	}
	type key struct {
		class Class
		cont  geo.Continent
		ti    int
	}
	groupBytes := make(map[key]int64)
	eventBytes := make(map[key]int64)
	contBytes := make(map[geo.Continent]int64)
	var allBytes int64

	for _, g := range r.Groups {
		var total int64
		for _, pt := range g.Points {
			total += pt.Bytes
		}
		contBytes[g.Continent] += total
		allBytes += total

		for ti, th := range thresholds {
			verdicts := make([]WindowVerdict, len(g.Points))
			var evBytes int64
			for i, pt := range g.Points {
				ev := pt.Valid && pt.Lo > th
				verdicts[i] = WindowVerdict{Window: pt.Window, Valid: pt.Valid, Event: ev, Bytes: pt.Bytes}
				if ev {
					evBytes += pt.Bytes
				}
			}
			class := Classify(verdicts, len(g.Points), totalWindows, p)
			if class == Unclassified {
				continue
			}
			k := key{class, g.Continent, ti}
			groupBytes[k] += total
			eventBytes[k] += evBytes
		}
	}

	for _, class := range Classes {
		tbl.Rows[class] = make(map[geo.Continent][]ClassRow)
		tbl.Overall[class] = make([]ClassRow, len(thresholds))
		for _, cont := range geo.Continents {
			tbl.Rows[class][cont] = make([]ClassRow, len(thresholds))
		}
	}
	for ti := range thresholds {
		for _, class := range Classes {
			var g, e int64
			for _, cont := range geo.Continents {
				k := key{class, cont, ti}
				g += groupBytes[k]
				e += eventBytes[k]
				if cb := contBytes[cont]; cb > 0 {
					tbl.Rows[class][cont][ti] = ClassRow{
						GroupTrafficShare: float64(groupBytes[k]) / float64(cb),
						EventTrafficShare: float64(eventBytes[k]) / float64(cb),
					}
				}
			}
			if allBytes > 0 {
				tbl.Overall[class][ti] = ClassRow{
					GroupTrafficShare: float64(g) / float64(allBytes),
					EventTrafficShare: float64(e) / float64(allBytes),
				}
			}
		}
	}
	return tbl
}

// FractionDegradedAtLeast returns the traffic share with degradation of
// at least x (read off Figure 8).
func (r DegradationResult) FractionDegradedAtLeast(x float64) float64 {
	cdf, _, _ := r.CDF()
	if cdf.Total() == 0 {
		return math.NaN()
	}
	return cdf.FractionAbove(x) + fractionAt(cdf, x)
}

// fractionAt approximates point mass at exactly x (degradations are
// continuous; this returns 0 but keeps the read-off primitive honest).
func fractionAt(cdf *stats.WeightedCDF, x float64) float64 { return 0 }

// RTTSeries returns a group's preferred-route MinRTTP50 per window —
// the time series behind Figure 5's client-population-shift example,
// where a prefix serving two regions sees its group median oscillate as
// the regional activity mix changes over the day.
func RTTSeries(g *agg.GroupSeries) map[int]float64 {
	out := make(map[int]float64, len(g.Windows))
	for win, wa := range g.Windows {
		a := wa.Route(0)
		if a == nil || a.MinRTT.Count() == 0 {
			continue
		}
		out[win] = a.MinRTTP50()
	}
	return out
}

// SortGroupsByBytes orders groups descending by traffic for reports.
func (r *DegradationResult) SortGroupsByBytes() {
	sort.Slice(r.Groups, func(i, j int) bool {
		var a, b int64
		for _, pt := range r.Groups[i].Points {
			a += pt.Bytes
		}
		for _, pt := range r.Groups[j].Points {
			b += pt.Bytes
		}
		return a > b
	})
}
