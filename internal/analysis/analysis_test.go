package analysis

import (
	"math"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/sample"
)

// addWindow populates one (group, window, route) aggregation with n
// sessions at roughly the given RTT (ms) and HDratio.
func addWindow(st *agg.Store, prefix string, win, alt int, n int, rttMs float64, hd float64, r *rng.RNG, rel bgp.RelType, pathLen int, prepended bool) {
	for i := 0; i < n; i++ {
		tested, achieved := 4, int(math.Round(hd*4))
		s := sample.Sample{
			PoP: "ams", Prefix: prefix, Country: "DE", Continent: geo.Europe,
			AltIndex: alt,
			Start:    time.Duration(win)*agg.WindowDuration + time.Duration(i)*time.Second,
			MinRTT:   time.Duration((rttMs + r.Normal(0, 1)) * float64(time.Millisecond)),
			HDTested: tested, HDAchieved: achieved,
			Bytes:   1000,
			RouteID: prefix + "-r", RouteRel: rel, ASPathLen: pathLen, Prepended: prepended,
		}
		st.Add(s)
	}
}

const testWindows = 96 * 5 // 5 days

// buildDegradedStore builds one group per degradation pattern.
func buildDegradedStore() *agg.Store {
	st := agg.NewStore()
	r := rng.New(1)
	for win := 0; win < testWindows; win++ {
		hour := (win / 4) % 24

		// stable: constant 20ms.
		addWindow(st, "10.0.0.0/24", win, 0, 40, 20, 1, r, bgp.PrivatePeer, 1, false)

		// diurnal: +15ms during hours 19-22 every day.
		rtt := 20.0
		if hour >= 19 && hour < 23 {
			rtt = 35
		}
		addWindow(st, "10.0.1.0/24", win, 0, 40, rtt, 1, r, bgp.PrivatePeer, 1, false)

		// episodic: +25ms during two short episodes.
		rtt = 20
		if (win >= 100 && win < 110) || (win >= 300 && win < 305) {
			rtt = 45
		}
		addWindow(st, "10.0.2.0/24", win, 0, 40, rtt, 1, r, bgp.PrivatePeer, 1, false)

		// continuous: always 15ms above its p10 baseline — rtt oscillates
		// so the baseline (p10) sits at 20 and most windows sit at 40.
		rtt = 40
		if win%6 == 0 {
			rtt = 20
		}
		addWindow(st, "10.0.3.0/24", win, 0, 40, rtt, 1, r, bgp.PrivatePeer, 1, false)
	}
	return st
}

func classOf(t *testing.T, res DegradationResult, store *agg.Store, prefix string, threshold float64) Class {
	t.Helper()
	p := DefaultClassifyParams(5)
	for _, g := range res.Groups {
		if g.Group.Key.Prefix != prefix {
			continue
		}
		verdicts := make([]WindowVerdict, len(g.Points))
		var present int
		for i, pt := range g.Points {
			verdicts[i] = WindowVerdict{Window: pt.Window, Valid: pt.Valid, Event: pt.Valid && pt.Lo > threshold, Bytes: pt.Bytes}
			present++
		}
		return Classify(verdicts, present, store.TotalWindows, p)
	}
	t.Fatalf("group %s not found", prefix)
	return Unclassified
}

func TestDegradationClasses(t *testing.T) {
	st := buildDegradedStore()
	res := Degradation(st, MetricMinRTT)
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	if got := classOf(t, res, st, "10.0.0.0/24", 5); got != Uneventful {
		t.Errorf("stable group classified %v", got)
	}
	if got := classOf(t, res, st, "10.0.1.0/24", 5); got != Diurnal {
		t.Errorf("diurnal group classified %v", got)
	}
	if got := classOf(t, res, st, "10.0.2.0/24", 5); got != Episodic {
		t.Errorf("episodic group classified %v", got)
	}
	if got := classOf(t, res, st, "10.0.3.0/24", 5); got != Continuous {
		t.Errorf("continuous group classified %v", got)
	}
}

func TestDegradationAmounts(t *testing.T) {
	st := buildDegradedStore()
	res := Degradation(st, MetricMinRTT)
	for _, g := range res.Groups {
		if g.Group.Key.Prefix != "10.0.1.0/24" {
			continue
		}
		// Baseline must sit near the quiet 20 ms level.
		if g.Baseline < 18 || g.Baseline > 23 {
			t.Errorf("baseline = %v, want ~20", g.Baseline)
		}
		// Peak-hour windows must degrade by ~15 ms.
		var peak, quiet int
		for _, pt := range g.Points {
			hour := (pt.Window / 4) % 24
			if hour >= 19 && hour < 23 {
				if pt.Valid && pt.Amount > 10 {
					peak++
				}
			} else if pt.Valid && pt.Amount < 5 {
				quiet++
			}
		}
		if peak < 50 {
			t.Errorf("only %d peak windows showed degradation", peak)
		}
		if quiet < 300 {
			t.Errorf("only %d quiet windows were clean", quiet)
		}
	}
}

func TestDegradationCoverage(t *testing.T) {
	st := buildDegradedStore()
	res := Degradation(st, MetricMinRTT)
	cov := float64(res.CoveredBytes) / float64(res.TotalBytes)
	if cov < 0.9 {
		t.Errorf("coverage = %v, want ≥0.9 with 40 samples per window", cov)
	}
}

func TestDegradationClassTable(t *testing.T) {
	st := buildDegradedStore()
	res := Degradation(st, MetricMinRTT)
	tbl := res.Classify(st.TotalWindows, DefaultClassifyParams(5), []float64{5, 10, 20, 50})
	// At the 5 ms threshold: 4 equal-weight groups → shares ~0.25 each.
	for i, class := range []Class{Uneventful, Diurnal, Episodic, Continuous} {
		_ = i
		row := tbl.Overall[class][0]
		if row.GroupTrafficShare < 0.15 || row.GroupTrafficShare > 0.35 {
			t.Errorf("%v group share = %v, want ~0.25", class, row.GroupTrafficShare)
		}
	}
	// Diurnal event traffic is a few hours a day: well below the group share.
	d := tbl.Overall[Diurnal][0]
	if d.EventTrafficShare <= 0 || d.EventTrafficShare >= d.GroupTrafficShare {
		t.Errorf("diurnal event share %v vs group share %v", d.EventTrafficShare, d.GroupTrafficShare)
	}
	// At a 50 ms threshold nothing degrades.
	if got := tbl.Overall[Uneventful][3].GroupTrafficShare; got < 0.95 {
		t.Errorf("at 50ms threshold uneventful share = %v, want ~1", got)
	}
}

func TestDegradationHDratioMetric(t *testing.T) {
	st := agg.NewStore()
	r := rng.New(2)
	for win := 0; win < testWindows; win++ {
		hd := 1.0
		if win >= 200 && win < 280 {
			hd = 0.25 // a long degradation episode
		}
		addWindow(st, "10.9.0.0/24", win, 0, 40, 20, hd, r, bgp.PrivatePeer, 1, false)
	}
	res := Degradation(st, MetricHDratio)
	var deg int
	for _, pt := range res.Groups[0].Points {
		if pt.Valid && pt.Lo > 0.5 {
			deg++
		}
	}
	if deg < 60 {
		t.Errorf("HD degradation detected in %d windows, want ~80", deg)
	}
}

// --- Opportunity ---------------------------------------------------------

func buildOpportunityStore() *agg.Store {
	st := agg.NewStore()
	r := rng.New(3)
	for win := 0; win < testWindows; win++ {
		// Group A: preferred (PNI, 30ms) always beaten by alt 1
		// (transit, 20ms): continuous opportunity of ~10ms.
		addWindow(st, "10.1.0.0/24", win, 0, 40, 30, 1, r, bgp.PrivatePeer, 1, false)
		addWindow(st, "10.1.0.0/24", win, 1, 30, 20, 1, r, bgp.Transit, 2, false)
		addWindow(st, "10.1.0.0/24", win, 2, 30, 40, 1, r, bgp.Transit, 3, true)

		// Group B: preferred optimal (20ms vs 25/28): no opportunity.
		addWindow(st, "10.1.1.0/24", win, 0, 40, 20, 1, r, bgp.PrivatePeer, 1, false)
		addWindow(st, "10.1.1.0/24", win, 1, 30, 25, 1, r, bgp.PublicPeer, 1, false)
		addWindow(st, "10.1.1.0/24", win, 2, 30, 28, 1, r, bgp.Transit, 2, false)

		// Group C: alternate has lower RTT but much worse HDratio → the
		// HD guard must suppress the MinRTT opportunity.
		addWindow(st, "10.1.2.0/24", win, 0, 40, 30, 1, r, bgp.PrivatePeer, 1, false)
		addWindow(st, "10.1.2.0/24", win, 1, 30, 18, 0.25, r, bgp.Transit, 2, false)
	}
	return st
}

func TestOpportunityDetection(t *testing.T) {
	st := buildOpportunityStore()
	res := Opportunity(st, MetricMinRTT)
	byPrefix := map[string]GroupOpportunity{}
	for _, g := range res.Groups {
		byPrefix[g.Group.Key.Prefix] = g
	}

	a := byPrefix["10.1.0.0/24"]
	events := 0
	for _, pt := range a.Points {
		if pt.Event(5) {
			events++
			if pt.AltIndex != 1 {
				t.Fatalf("best alternate = %d, want 1", pt.AltIndex)
			}
		}
	}
	if events < testWindows*8/10 {
		t.Errorf("continuous opportunity detected in %d/%d windows", events, testWindows)
	}

	b := byPrefix["10.1.1.0/24"]
	for _, pt := range b.Points {
		if pt.Event(5) {
			t.Fatal("optimal group flagged with opportunity")
		}
	}
}

func TestOpportunityHDGuard(t *testing.T) {
	st := buildOpportunityStore()
	res := Opportunity(st, MetricMinRTT)
	for _, g := range res.Groups {
		if g.Group.Key.Prefix != "10.1.2.0/24" {
			continue
		}
		for _, pt := range g.Points {
			if pt.Event(5) {
				t.Fatal("HD guard failed: low-RTT/low-HD alternate counted as opportunity")
			}
		}
		return
	}
	t.Fatal("group missing")
}

func TestOpportunityFractions(t *testing.T) {
	st := buildOpportunityStore()
	res := Opportunity(st, MetricMinRTT)
	f5 := res.FractionImprovableAtLeast(5)
	// Only group A (1/3 of groups, weighted by its window traffic).
	if f5 < 0.15 || f5 > 0.50 {
		t.Errorf("improvable ≥5ms = %v, want ~1/3", f5)
	}
	within := res.FractionWithinOfOptimal(3)
	if within < 0.3 || within > 0.8 {
		t.Errorf("within 3ms of optimal = %v", within)
	}
}

func TestOpportunityHDMetric(t *testing.T) {
	st := agg.NewStore()
	r := rng.New(5)
	for win := 0; win < testWindows; win++ {
		addWindow(st, "10.2.0.0/24", win, 0, 40, 25, 0.4, r, bgp.PrivatePeer, 1, false)
		addWindow(st, "10.2.0.0/24", win, 1, 35, 25, 1.0, r, bgp.Transit, 2, false)
	}
	res := Opportunity(st, MetricHDratio)
	events := 0
	for _, pt := range res.Groups[0].Points {
		if pt.Event(0.05) {
			events++
		}
	}
	if events < testWindows/2 {
		t.Errorf("HD opportunity detected in %d windows", events)
	}
}

func TestRelationshipsTable(t *testing.T) {
	st := buildOpportunityStore()
	res := Opportunity(st, MetricMinRTT)
	tbl := res.Relationships(5)
	pair := RelPair{Pref: bgp.PrivatePeer, Alt: bgp.Transit}
	ro := tbl.Pairs[pair]
	if ro == nil || ro.EventBytes == 0 {
		t.Fatalf("Private→Transit opportunity missing: %+v", tbl.Pairs)
	}
	if tbl.TotalEventBytes != ro.EventBytes {
		t.Errorf("unexpected extra opportunity pairs: %+v", tbl.Pairs)
	}
	// The winning alternate's AS-path (2) is longer than preferred (1).
	if ro.LongerBytes != ro.EventBytes {
		t.Errorf("longer-path accounting: %d of %d", ro.LongerBytes, ro.EventBytes)
	}
}

func TestCompareRelationshipsFig10(t *testing.T) {
	st := buildOpportunityStore()
	cdfs := CompareRelationships(st, MetricMinRTT)
	pvt := cdfs[PeeringVsTransit]
	if pvt == nil || pvt.Total() == 0 {
		t.Fatal("no peering-vs-transit comparisons")
	}
	// Group A: pref 30 vs transit alt 20 → diff +10 (alternate better).
	// Groups B: pref 20 vs transit 28 → diff −8. Group C: 30 vs 18 → +12.
	med := pvt.Quantile(0.5)
	if med < -10 || med > 13 {
		t.Errorf("peering-vs-transit median diff = %v", med)
	}
	if _, ok := cdfs[TransitVsTransit]; ok {
		t.Error("no transit-preferred groups exist; comparison should be absent")
	}
}

// --- Overview ------------------------------------------------------------

func TestOverview(t *testing.T) {
	o := NewOverview()
	o.Add(sample.Sample{
		AltIndex: 0, Continent: geo.Europe, Proto: sample.HTTP2,
		MinRTT: 25 * time.Millisecond, HDTested: 2, HDAchieved: 2,
		SimpleAchieved: 1,
		Duration:       time.Minute, BusyFraction: 0.05,
		Bytes: 5000, Transactions: 3, ResponseBytes: []int64{1000, 3000, 1000},
	})
	o.Add(sample.Sample{
		AltIndex: 0, Continent: geo.Africa, Proto: sample.HTTP1,
		MinRTT: 90 * time.Millisecond, HDTested: 1, HDAchieved: 0,
		Duration: 10 * time.Second, BusyFraction: 0.5,
		Bytes: 2000, Transactions: 60, MediaEndpoint: true, ResponseBytes: []int64{2000},
	})
	o.Add(sample.Sample{ // alternate route: excluded from metrics
		AltIndex: 1, Continent: geo.Europe, Proto: sample.HTTP2,
		MinRTT: 5 * time.Millisecond, HDTested: 1, HDAchieved: 1,
		Duration: time.Second, Bytes: 100, Transactions: 1,
	})

	if o.Sessions != 3 {
		t.Errorf("Sessions = %d", o.Sessions)
	}
	if got := o.MinRTT.Count(); got != 2 {
		t.Errorf("MinRTT count = %v, want 2 (alt excluded)", got)
	}
	if o.HDDefined != 2 || o.HDZero != 1 || o.HDOne != 1 {
		t.Errorf("HD counters: defined=%d zero=%d one=%d", o.HDDefined, o.HDZero, o.HDOne)
	}
	if got := o.HDPositiveShare(); got != 0.5 {
		t.Errorf("HDPositiveShare = %v", got)
	}
	if got := o.HDFullShare(); got != 0.5 {
		t.Errorf("HDFullShare = %v", got)
	}
	// Per-continent routing.
	if got := o.PerContinent[geo.Africa].HDZero; got != 1 {
		t.Errorf("AF HDZero = %d", got)
	}
	// RTT bucket: 25ms → bucket 0; 90ms → bucket 3.
	if got := o.HDByRTTBucket[0].Count(); got != 1 {
		t.Errorf("bucket 0 count = %v", got)
	}
	if got := o.HDByRTTBucket[3].Count(); got != 1 {
		t.Errorf("bucket 3 count = %v", got)
	}
	// Traffic characterisation counts all sessions.
	if got := o.SessionBytes.Count(); got != 3 {
		t.Errorf("SessionBytes count = %v", got)
	}
	if got := o.MediaRespBytes.Count(); got != 1 {
		t.Errorf("MediaRespBytes count = %v", got)
	}
	if o.TotalBytes != 7100 || o.BytesOver50Txns != 2000 {
		t.Errorf("byte accounting: total=%d over50=%d", o.TotalBytes, o.BytesOver50Txns)
	}
}

func TestOverviewEmpty(t *testing.T) {
	o := NewOverview()
	if !math.IsNaN(o.HDPositiveShare()) || !math.IsNaN(o.HDFullShare()) {
		t.Error("empty overview shares should be NaN")
	}
}

// --- Classifier unit tests ------------------------------------------------

func TestClassifyEdgeCases(t *testing.T) {
	p := DefaultClassifyParams(5)
	mk := func(events []int, valid int) []WindowVerdict {
		evSet := map[int]bool{}
		for _, e := range events {
			evSet[e] = true
		}
		out := make([]WindowVerdict, valid)
		for i := range out {
			out[i] = WindowVerdict{Window: i, Valid: true, Event: evSet[i]}
		}
		return out
	}
	total := 96 * 5

	if got := Classify(mk(nil, total), total, total, p); got != Uneventful {
		t.Errorf("no events → %v", got)
	}
	// Low coverage → unclassified.
	if got := Classify(mk(nil, total/2), total/2, total, p); got != Unclassified {
		t.Errorf("50%% coverage → %v", got)
	}
	// All events → continuous.
	all := make([]int, total)
	for i := range all {
		all[i] = i
	}
	if got := Classify(mk(all, total), total, total, p); got != Continuous {
		t.Errorf("all events → %v", got)
	}
	// Same slot on 5 days → diurnal.
	var slots []int
	for d := 0; d < 5; d++ {
		slots = append(slots, d*96+10)
	}
	if got := Classify(mk(slots, total), total, total, p); got != Diurnal {
		t.Errorf("fixed slot × 5 days → %v", got)
	}
	// Same slot on 4 days only → episodic.
	if got := Classify(mk(slots[:4], total), total, total, p); got != Episodic {
		t.Errorf("fixed slot × 4 days → %v", got)
	}
	// A single random event → episodic.
	if got := Classify(mk([]int{42}, total), total, total, p); got != Episodic {
		t.Errorf("single event → %v", got)
	}
}

func TestClassifyParamsClamp(t *testing.T) {
	if p := DefaultClassifyParams(2); p.DiurnalDays != 2 {
		t.Errorf("DiurnalDays = %d, want clamped 2", p.DiurnalDays)
	}
	if p := DefaultClassifyParams(0); p.DiurnalDays != 1 {
		t.Errorf("DiurnalDays = %d, want 1", p.DiurnalDays)
	}
}

// TestOpportunityClassifyDiurnal: a group whose preferred route is only
// beaten during fixed peak hours must classify as Diurnal in Table 1's
// opportunity half.
func TestOpportunityClassifyDiurnal(t *testing.T) {
	st := agg.NewStore()
	r := rng.New(7)
	for win := 0; win < testWindows; win++ {
		hour := (win / 4) % 24
		prefRTT := 25.0
		if hour >= 19 && hour < 23 {
			prefRTT = 40 // peak-hour penalty on the preferred route only
		}
		addWindow(st, "10.3.0.0/24", win, 0, 40, prefRTT, 1, r, bgp.PrivatePeer, 1, false)
		addWindow(st, "10.3.0.0/24", win, 1, 35, 25, 1, r, bgp.Transit, 2, false)
	}
	res := Opportunity(st, MetricMinRTT)
	tbl := res.Classify(st.TotalWindows, DefaultClassifyParams(5), []float64{5, 10})
	row := tbl.Overall[Diurnal][0]
	if row.GroupTrafficShare < 0.99 {
		t.Errorf("diurnal opportunity group share = %v, want ~1", row.GroupTrafficShare)
	}
	// Events cover only the 4 peak hours: the event share is well below
	// the group share.
	if row.EventTrafficShare <= 0 || row.EventTrafficShare > 0.4 {
		t.Errorf("diurnal event share = %v, want ~4/24 of traffic", row.EventTrafficShare)
	}
	// At a 10ms threshold the 15ms diurnal advantage still registers;
	// the uneventful row stays empty.
	if tbl.Overall[Uneventful][1].GroupTrafficShare > 0.01 {
		t.Errorf("uneventful share at 10ms = %v", tbl.Overall[Uneventful][1].GroupTrafficShare)
	}
}

// TestRelationshipsIgnoresInvalidWindows: Table 2 accounting only sums
// event traffic, and absolute fractions use valid traffic.
func TestRelationshipsEmptyWhenNoOpportunity(t *testing.T) {
	st := agg.NewStore()
	r := rng.New(9)
	for win := 0; win < 200; win++ {
		addWindow(st, "10.4.0.0/24", win, 0, 40, 20, 1, r, bgp.PrivatePeer, 1, false)
		addWindow(st, "10.4.0.0/24", win, 1, 35, 30, 1, r, bgp.Transit, 2, false)
	}
	res := Opportunity(st, MetricMinRTT)
	tbl := res.Relationships(5)
	if tbl.TotalEventBytes != 0 || len(tbl.Pairs) != 0 {
		t.Errorf("optimal group produced opportunity rows: %+v", tbl.Pairs)
	}
	if tbl.TotalBytes == 0 {
		t.Error("valid traffic should still be counted")
	}
}

func TestOverviewPerPoP(t *testing.T) {
	o := NewOverview()
	o.Add(sample.Sample{PoP: "ams", MinRTT: 20 * time.Millisecond, Bytes: 100, Transactions: 1, Duration: time.Second})
	o.Add(sample.Sample{PoP: "ams", MinRTT: 30 * time.Millisecond, Bytes: 200, Transactions: 1, Duration: time.Second})
	o.Add(sample.Sample{PoP: "sin", MinRTT: 80 * time.Millisecond, Bytes: 300, Transactions: 1, Duration: time.Second})
	ams := o.PerPoP["ams"]
	if ams == nil || ams.Sessions != 2 || ams.Bytes != 300 {
		t.Fatalf("ams overview = %+v", ams)
	}
	if med := ams.MinRTT.Quantile(0.5); med < 20 || med > 30 {
		t.Errorf("ams median = %v", med)
	}
	if o.PerPoP["sin"].Sessions != 1 {
		t.Error("sin missing")
	}
}
