package analysis

import (
	"fmt"
	"math"

	"repro/internal/agg"
	"repro/internal/sample"
)

// DeaggregationResult is the §3.3 granularity experiment: the paper
// tried splitting prefixes into finer aggregates and found "minimal
// reductions in variability while reducing coverage when deaggregation
// leaves too few measurements". Both effects are measured here.
type DeaggregationResult struct {
	// BaseVariability and FineVariability are the traffic-weighted mean
	// per-group standard deviations of window MinRTTP50s (ms): lower
	// means aggregations are more homogeneous.
	BaseVariability, FineVariability float64
	// BaseCoverage and FineCoverage are the fractions of (group, window,
	// preferred-route) aggregations meeting the 30-sample floor.
	BaseCoverage, FineCoverage float64
	// BaseGroups and FineGroups count the user groups at each granularity.
	BaseGroups, FineGroups int
}

// VariabilityReduction returns the relative drop in variability from
// deaggregating (paper: minimal).
func (r DeaggregationResult) VariabilityReduction() float64 {
	if r.BaseVariability == 0 {
		return 0
	}
	return 1 - r.FineVariability/r.BaseVariability
}

// CoverageLoss returns the relative drop in valid coverage (paper: the
// reason deaggregation was rejected).
func (r DeaggregationResult) CoverageLoss() float64 {
	if r.BaseCoverage == 0 {
		return 0
	}
	return 1 - r.FineCoverage/r.BaseCoverage
}

// DeaggregateSink returns a sink that keys samples at subnet
// granularity (prefix × ClientSubnet) instead of prefix granularity,
// feeding the fine-grained store of the experiment.
func DeaggregateSink(fine *agg.Store) func(sample.Sample) {
	return func(s sample.Sample) {
		s.Prefix = fmt.Sprintf("%s#%d", s.Prefix, s.ClientSubnet)
		fine.Add(s)
	}
}

// CompareDeaggregation computes the experiment over two stores built
// from the same sample stream at different granularities.
func CompareDeaggregation(base, fine *agg.Store) DeaggregationResult {
	res := DeaggregationResult{
		BaseGroups: base.Len(),
		FineGroups: fine.Len(),
	}
	res.BaseVariability, res.BaseCoverage = storeStats(base)
	res.FineVariability, res.FineCoverage = storeStats(fine)
	return res
}

// storeStats returns the traffic-weighted mean per-group stddev of
// preferred-route window medians and the valid-aggregation coverage.
func storeStats(st *agg.Store) (variability, coverage float64) {
	var wSum, vSum float64
	var cells, validCells int
	for _, g := range st.Groups() {
		var medians []float64
		var bytes int64
		for _, win := range g.WindowIndexes() {
			a := g.Windows[win].Route(0)
			if a == nil {
				continue
			}
			cells++
			if !a.HasMinSamples() {
				continue
			}
			validCells++
			if m := a.MinRTTP50(); !math.IsNaN(m) {
				medians = append(medians, m)
			}
			bytes += a.Bytes
		}
		if len(medians) < 2 {
			continue
		}
		mean := 0.0
		for _, m := range medians {
			mean += m
		}
		mean /= float64(len(medians))
		varr := 0.0
		for _, m := range medians {
			varr += (m - mean) * (m - mean)
		}
		sd := math.Sqrt(varr / float64(len(medians)-1))
		w := float64(bytes)
		vSum += sd * w
		wSum += w
	}
	if wSum > 0 {
		variability = vSum / wSum
	}
	if cells > 0 {
		coverage = float64(validCells) / float64(cells)
	}
	return variability, coverage
}
