// Package analysis implements the paper's evaluation analyses: the
// global performance overview (§4, Figures 6–7), temporal degradation
// (§5, Figure 8, Table 1 left), opportunity for performance-aware
// routing (§6.2, Figure 9, Table 1 right, Table 2), and the peer/transit
// relationship comparison (§6.3, Figure 10).
package analysis

import "fmt"

// Class is the temporal behaviour classification of §3.4.2.
type Class int

// Classes, checked in order (§3.4.2).
const (
	// Unclassified groups lack coverage (traffic in <60% of windows).
	Unclassified Class = iota
	// Uneventful: no valid window shows the event.
	Uneventful
	// Continuous: the event holds in at least 75% of valid windows.
	Continuous
	// Diurnal: some fixed 15-minute time-of-day shows the event on at
	// least DiurnalDays distinct days.
	Diurnal
	// Episodic: everything else with at least one event.
	Episodic
)

// String names the class as Table 1 does.
func (c Class) String() string {
	switch c {
	case Unclassified:
		return "Unclassified"
	case Uneventful:
		return "Uneventful"
	case Continuous:
		return "Continuous"
	case Diurnal:
		return "Diurnal"
	case Episodic:
		return "Episodic"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classes lists the reportable classes in Table 1 order.
var Classes = []Class{Uneventful, Continuous, Diurnal, Episodic}

// ClassifyParams tunes the §3.4.2 classifier.
type ClassifyParams struct {
	// WindowsPerDay converts window indexes to time-of-day slots.
	WindowsPerDay int
	// CoverageFloor is the minimum fraction of windows with traffic for
	// a group to be classified at all (paper: 0.60).
	CoverageFloor float64
	// ContinuousFraction is the share of valid windows that must show
	// the event for the Continuous class (paper: 0.75).
	ContinuousFraction float64
	// DiurnalDays is how many distinct days a fixed time-of-day slot
	// must show the event (paper: 5; clamp to the dataset length for
	// short runs).
	DiurnalDays int
}

// DefaultClassifyParams returns the paper's thresholds for a dataset of
// the given number of days.
func DefaultClassifyParams(days int) ClassifyParams {
	dd := 5
	if days < dd {
		dd = days
	}
	if dd < 1 {
		dd = 1
	}
	return ClassifyParams{
		WindowsPerDay:      96,
		CoverageFloor:      0.60,
		ContinuousFraction: 0.75,
		DiurnalDays:        dd,
	}
}

// WindowVerdict is one window's outcome for a group at one threshold.
type WindowVerdict struct {
	Window int
	// Valid means the comparison met the sample floor and tightness
	// requirement (§3.4.1).
	Valid bool
	// Event means the degradation/opportunity condition held (lower
	// confidence bound above the threshold, §3.4).
	Event bool
	// Bytes is the traffic delivered to the group in this window.
	Bytes int64
}

// Classify assigns a §3.4.2 class from a group's window verdicts.
// present is the number of windows with any traffic; totalWindows the
// dataset's window count.
func Classify(verdicts []WindowVerdict, present, totalWindows int, p ClassifyParams) Class {
	if totalWindows == 0 || float64(present)/float64(totalWindows) < p.CoverageFloor {
		return Unclassified
	}
	valid, events := 0, 0
	daysWithEventBySlot := make(map[int]map[int]bool)
	for _, v := range verdicts {
		if !v.Valid {
			continue
		}
		valid++
		if !v.Event {
			continue
		}
		events++
		slot := v.Window % p.WindowsPerDay
		day := v.Window / p.WindowsPerDay
		if daysWithEventBySlot[slot] == nil {
			daysWithEventBySlot[slot] = make(map[int]bool)
		}
		daysWithEventBySlot[slot][day] = true
	}
	if valid == 0 || events == 0 {
		return Uneventful
	}
	if float64(events)/float64(valid) >= p.ContinuousFraction {
		return Continuous
	}
	for _, days := range daysWithEventBySlot {
		if len(days) >= p.DiurnalDays {
			return Diurnal
		}
	}
	return Episodic
}
