package analysis

import (
	"time"

	"repro/internal/geo"
	"repro/internal/sample"
	"repro/internal/segstore"
	"repro/internal/tdigest"
)

// AddColumns folds a decoded column batch in — the row-free
// counterpart of Add over the same rows in the same stream order, so
// every digest evolves identically (same values, same insertion order,
// same compaction trigger points) and the rendered overview is
// byte-identical whichever currency fed it.
//
// Hosting-provider rows are skipped inline: pre-filtered batches (the
// collector compacts them out) and raw batches (the sharded feed folds
// the overview before the per-shard collectors run) fold the same.
//
// Dictionary columns are resolved once per batch — protocol and
// continent digest lookups hoist out of the row loop; per-PoP state is
// cached per dictionary entry but created lazily, so a PoP appearing
// only on skipped rows opens no PerPoP entry (matching the row path).
func (o *Overview) AddColumns(b *segstore.ColumnBatch) {
	n := b.Len()
	if n == 0 {
		return
	}

	type protoDigests struct{ sd, bf, txn *tdigest.TDigest }
	protos := make([]protoDigests, len(b.Proto.Dict))
	for i, v := range b.Proto.Dict {
		p := sample.Protocol(v)
		protos[i] = protoDigests{o.SessionDuration[p], o.BusyFraction[p], o.TxnsPerSession[p]}
	}
	allSD, allBF, allTxn := o.SessionDuration["all"], o.BusyFraction["all"], o.TxnsPerSession["all"]
	conts := make([]*ContinentOverview, len(b.Continent.Dict))
	for i, v := range b.Continent.Dict {
		conts[i] = o.PerContinent[geo.Continent(v)]
	}
	pops := make([]*PoPOverview, len(b.PoP.Dict))

	added := 0
	for i := 0; i < n; i++ {
		if b.HostingProvider[i] {
			continue
		}
		added++

		// Traffic characterisation uses every session.
		pd := protos[b.Proto.Idx[i]]
		dur := time.Duration(b.Duration[i]).Seconds()
		allSD.Add(dur)
		if pd.sd != nil {
			pd.sd.Add(dur)
		}
		allBF.Add(b.BusyFraction[i])
		if pd.bf != nil {
			pd.bf.Add(b.BusyFraction[i])
		}
		txns := float64(b.Transactions[i])
		allTxn.Add(txns)
		if pd.txn != nil {
			pd.txn.Add(txns)
		}
		bytes := b.Bytes[i]
		o.SessionBytes.Add(float64(bytes))
		lo, hi := b.RespSpan(i)
		for _, rb := range b.RespVals[lo:hi] {
			o.ResponseBytes.Add(float64(rb))
			if b.MediaEndpoint[i] {
				o.MediaRespBytes.Add(float64(rb))
			}
		}
		o.TotalBytes += bytes
		if b.Transactions[i] >= 50 {
			o.BytesOver50Txns += bytes
		}
		if b.DistanceKm[i] > 0 {
			o.ServingDistance.Add(b.DistanceKm[i])
		}
		if b.CrossContinent[i] {
			o.CrossContinentBytes += bytes
		}
		pi := b.PoP.Idx[i]
		pp := pops[pi]
		if pp == nil {
			pp = o.PerPoP[b.PoP.Dict[pi]]
			if pp == nil {
				pp = &PoPOverview{MinRTT: tdigest.New(tdigest.DefaultCompression)}
				o.PerPoP[b.PoP.Dict[pi]] = pp
			}
			pops[pi] = pp
		}
		pp.Sessions++
		pp.Bytes += bytes
		pp.MinRTT.Add(float64(b.MinRTT[i]) / 1e6)

		// Performance metrics use the preferred route only (§2.2.3).
		if b.AltIndex[i] != 0 {
			continue
		}
		rttMs := float64(b.MinRTT[i]) / float64(time.Millisecond)
		o.MinRTT.Add(rttMs)
		co := conts[b.Continent.Idx[i]]
		if co != nil {
			co.MinRTT.Add(rttMs)
		}
		if t := b.HDTested[i]; t != 0 {
			hd := float64(b.HDAchieved[i]) / float64(t)
			o.HD.Add(hd)
			o.HDDefined++
			if hd == 0 {
				o.HDZero++
			}
			if hd == 1 {
				o.HDOne++
			}
			if co != nil {
				co.HD.Add(hd)
				co.HDDefined++
				if hd == 0 {
					co.HDZero++
				}
				if hd == 1 {
					co.HDOne++
				}
			}
			for j, rb := range RTTBuckets {
				if rttMs >= rb.Lo && rttMs < rb.Hi {
					o.HDByRTTBucket[j].Add(hd)
					break
				}
			}
			o.SimpleHD.Add(float64(b.SimpleAchieved[i]) / float64(t))
		}
	}
	o.Sessions += added
	o.cSamples.Add(int64(added))
}
