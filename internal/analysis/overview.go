package analysis

import (
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/tdigest"
)

// RTTBuckets are Figure 7's MinRTT ranges in milliseconds.
var RTTBuckets = []struct {
	Name   string
	Lo, Hi float64 // Hi exclusive; last bucket open-ended
}{
	{"0-30", 0, 31},
	{"31-50", 31, 51},
	{"51-80", 51, 81},
	{"81+", 81, math.Inf(1)},
}

// PoPOverview accumulates one serving PoP's state.
type PoPOverview struct {
	Sessions int
	Bytes    int64
	MinRTT   *tdigest.TDigest
}

// ContinentOverview accumulates one continent's Figure 6 state.
type ContinentOverview struct {
	MinRTT *tdigest.TDigest
	HD     *tdigest.TDigest
	// HDZero/HDOne/HDDefined count sessions at the HDratio extremes.
	HDZero, HDOne, HDDefined int
}

// Overview is the §4 global snapshot plus the §2.3 traffic
// characterisation, computed streaming over preferred-route samples
// (metrics) and all samples (traffic characterisation).
type Overview struct {
	// Figure 6a.
	MinRTT *tdigest.TDigest // milliseconds
	HD     *tdigest.TDigest
	// SimpleHD is the §4 ablation baseline's session HDratio.
	SimpleHD                 *tdigest.TDigest
	HDZero, HDOne, HDDefined int

	// Figure 6b/6c.
	PerContinent map[geo.Continent]*ContinentOverview

	// Figure 7: HDratio by MinRTT bucket.
	HDByRTTBucket []*tdigest.TDigest

	// Figures 1–3 (computed over all samples; session traits do not
	// depend on the egress route).
	SessionDuration map[sample.Protocol]*tdigest.TDigest // seconds
	BusyFraction    map[sample.Protocol]*tdigest.TDigest
	SessionBytes    *tdigest.TDigest
	ResponseBytes   *tdigest.TDigest
	MediaRespBytes  *tdigest.TDigest
	TxnsPerSession  map[sample.Protocol]*tdigest.TDigest

	// PerPoP tracks session counts and median latency per serving PoP
	// (§2.1: dozens of PoPs across six continents).
	PerPoP map[string]*PoPOverview

	// ServingDistance holds per-session population→PoP distances in km
	// (§2.1's locality claim); CrossContinentBytes counts traffic served
	// from another continent (paper: ~10%).
	ServingDistance     *tdigest.TDigest
	CrossContinentBytes int64

	// BytesBySessionsOver50Txns / TotalBytes reproduces Figure 3's
	// "sessions with 50+ transactions carry most traffic" claim.
	BytesOver50Txns int64
	TotalBytes      int64

	Sessions int

	// cSamples, when wired via Instrument, counts samples folded in.
	cSamples *obs.Counter
}

func newProtoDigests() map[sample.Protocol]*tdigest.TDigest {
	return map[sample.Protocol]*tdigest.TDigest{
		sample.HTTP1: tdigest.New(tdigest.DefaultCompression),
		sample.HTTP2: tdigest.New(tdigest.DefaultCompression),
		"all":        tdigest.New(tdigest.DefaultCompression),
	}
}

// NewOverview returns an empty overview.
func NewOverview() *Overview {
	o := &Overview{
		MinRTT:          tdigest.New(200),
		HD:              tdigest.New(200),
		SimpleHD:        tdigest.New(200),
		PerContinent:    make(map[geo.Continent]*ContinentOverview),
		SessionDuration: newProtoDigests(),
		BusyFraction:    newProtoDigests(),
		SessionBytes:    tdigest.New(tdigest.DefaultCompression),
		ResponseBytes:   tdigest.New(tdigest.DefaultCompression),
		MediaRespBytes:  tdigest.New(tdigest.DefaultCompression),
		TxnsPerSession:  newProtoDigests(),
		ServingDistance: tdigest.New(tdigest.DefaultCompression),
		PerPoP:          make(map[string]*PoPOverview),
	}
	for range RTTBuckets {
		o.HDByRTTBucket = append(o.HDByRTTBucket, tdigest.New(tdigest.DefaultCompression))
	}
	for _, c := range geo.Continents {
		o.PerContinent[c] = &ContinentOverview{
			MinRTT: tdigest.New(tdigest.DefaultCompression),
			HD:     tdigest.New(tdigest.DefaultCompression),
		}
	}
	return o
}

// Instrument registers the overview's ingest counter on reg (nil-safe).
func (o *Overview) Instrument(reg *obs.Registry) {
	o.cSamples = reg.Counter("analysis_overview_samples_total")
}

// Add folds one sample in.
func (o *Overview) Add(s sample.Sample) {
	o.Sessions++
	o.cSamples.Inc()

	// Traffic characterisation uses every session.
	protoAdd := func(m map[sample.Protocol]*tdigest.TDigest, v float64) {
		m["all"].Add(v)
		if d, ok := m[s.Proto]; ok {
			d.Add(v)
		}
	}
	protoAdd(o.SessionDuration, s.Duration.Seconds())
	protoAdd(o.BusyFraction, s.BusyFraction)
	protoAdd(o.TxnsPerSession, float64(s.Transactions))
	o.SessionBytes.Add(float64(s.Bytes))
	for _, rb := range s.ResponseBytes {
		o.ResponseBytes.Add(float64(rb))
		if s.MediaEndpoint {
			o.MediaRespBytes.Add(float64(rb))
		}
	}
	o.TotalBytes += s.Bytes
	if s.Transactions >= 50 {
		o.BytesOver50Txns += s.Bytes
	}
	if s.DistanceKm > 0 {
		o.ServingDistance.Add(s.DistanceKm)
	}
	if s.CrossContinent {
		o.CrossContinentBytes += s.Bytes
	}
	pp := o.PerPoP[s.PoP]
	if pp == nil {
		pp = &PoPOverview{MinRTT: tdigest.New(tdigest.DefaultCompression)}
		o.PerPoP[s.PoP] = pp
	}
	pp.Sessions++
	pp.Bytes += s.Bytes
	pp.MinRTT.Add(float64(s.MinRTT) / 1e6)

	// Performance metrics use the preferred route only (§2.2.3).
	if s.AltIndex != 0 {
		return
	}
	rttMs := float64(s.MinRTT) / float64(time.Millisecond)
	o.MinRTT.Add(rttMs)
	co := o.PerContinent[s.Continent]
	if co != nil {
		co.MinRTT.Add(rttMs)
	}
	if hd, ok := s.HDratio(); ok {
		o.HD.Add(hd)
		o.HDDefined++
		if hd == 0 {
			o.HDZero++
		}
		if hd == 1 {
			o.HDOne++
		}
		if co != nil {
			co.HD.Add(hd)
			co.HDDefined++
			if hd == 0 {
				co.HDZero++
			}
			if hd == 1 {
				co.HDOne++
			}
		}
		for i, b := range RTTBuckets {
			if rttMs >= b.Lo && rttMs < b.Hi {
				o.HDByRTTBucket[i].Add(hd)
				break
			}
		}
	}
	if shd, ok := s.SimpleHDratio(); ok {
		o.SimpleHD.Add(shd)
	}
}

// HDPositiveShare returns the fraction of tested sessions with
// HDratio > 0 (paper: >82%).
func (o *Overview) HDPositiveShare() float64 {
	if o.HDDefined == 0 {
		return math.NaN()
	}
	return 1 - float64(o.HDZero)/float64(o.HDDefined)
}

// HDFullShare returns the fraction of tested sessions with HDratio = 1
// (paper: ~60%).
func (o *Overview) HDFullShare() float64 {
	if o.HDDefined == 0 {
		return math.NaN()
	}
	return float64(o.HDOne) / float64(o.HDDefined)
}

// SimpleApproachMedian returns the §4 ablation's median HDratio (the
// paper reports 0.69, an underestimate of the corrected value).
func (o *Overview) SimpleApproachMedian() float64 { return o.SimpleHD.Quantile(0.5) }
