package analysis

import (
	"math"
	"testing"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/rng"
)

func TestSummariseGroups(t *testing.T) {
	st := agg.NewStore()
	r := rng.New(1)
	// Two groups: one heavy/stable at 20ms, one light/degrading.
	for win := 0; win < 96; win++ {
		addWindow(st, "10.5.0.0/24", win, 0, 40, 20, 1, r, bgp.PrivatePeer, 1, false)
		addWindow(st, "10.5.0.0/24", win, 1, 30, 24, 1, r, bgp.Transit, 2, false)
		rtt := 30.0
		if win > 48 {
			rtt = 50
		}
		addWindow(st, "10.5.1.0/24", win, 0, 31, rtt, 0.5, r, bgp.PublicPeer, 1, false)
	}
	sums := SummariseGroups(st)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	// Sorted by traffic: the 40-session group first.
	if sums[0].Key != "ams/10.5.0.0/24/DE" {
		t.Errorf("heaviest group = %s", sums[0].Key)
	}
	heavy, light := sums[0], sums[1]
	if heavy.MinRTTP50 < 18 || heavy.MinRTTP50 > 22 {
		t.Errorf("heavy MinRTTP50 = %v", heavy.MinRTTP50)
	}
	if heavy.HDratioP50 != 1 {
		t.Errorf("heavy HDratioP50 = %v", heavy.HDratioP50)
	}
	if heavy.Routes != 2 {
		t.Errorf("heavy routes = %d", heavy.Routes)
	}
	if heavy.Coverage != 1 {
		t.Errorf("heavy coverage = %v", heavy.Coverage)
	}
	if heavy.WorstDegradation > 3 {
		t.Errorf("stable group worst degradation = %v", heavy.WorstDegradation)
	}
	// The degrading group's worst window sits ~20ms above its baseline.
	if light.WorstDegradation < 15 || light.WorstDegradation > 25 {
		t.Errorf("light worst degradation = %v, want ~20", light.WorstDegradation)
	}
	if math.IsNaN(light.HDratioP50) {
		t.Error("light HDratioP50 undefined")
	}
}
