package analysis

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/sample"
	"repro/internal/world"
)

// TestDeaggregationTradeoff reproduces the §3.3 granularity finding:
// splitting prefixes into subnets loses valid-aggregation coverage
// while barely reducing variability, because addresses within a prefix
// share location and conditions.
func TestDeaggregationTradeoff(t *testing.T) {
	w := world.New(world.Config{Seed: 17, Groups: 12, Days: 1, SessionsPerGroupWindow: 260})
	base := agg.NewStore()
	fine := agg.NewStore()
	fineSink := DeaggregateSink(fine)
	w.Generate(func(s sample.Sample) {
		if s.HostingProvider {
			return
		}
		base.Add(s)
		fineSink(s)
	})

	res := CompareDeaggregation(base, fine)
	if res.FineGroups <= res.BaseGroups*2 {
		t.Errorf("deaggregation produced %d groups from %d, want ~4x", res.FineGroups, res.BaseGroups)
	}
	if res.BaseCoverage == 0 {
		t.Fatal("no valid base aggregations — raise the session density")
	}
	loss := res.CoverageLoss()
	if loss < 0.15 {
		t.Errorf("coverage loss = %.3f; deaggregation should invalidate many windows", loss)
	}
	// Variability must not improve much (prefix members are co-located).
	if red := res.VariabilityReduction(); red > 0.5 {
		t.Errorf("variability reduction = %.3f; paper found it minimal", red)
	}
	t.Logf("groups %d→%d coverage %.2f→%.2f (loss %.0f%%) variability %.2f→%.2f ms (reduction %.0f%%)",
		res.BaseGroups, res.FineGroups, res.BaseCoverage, res.FineCoverage, loss*100,
		res.BaseVariability, res.FineVariability, res.VariabilityReduction()*100)
}
