// Package bgp models the routing substrate the opportunity analysis
// (§6) runs on: BGP prefixes with longest-prefix-match lookup, routes
// annotated with interconnect relationship types, AS-paths with
// prepending, and Facebook's static egress policy (§6.1):
//
//  1. prefer the longest matching prefix,
//  2. prefer peer routes over transit,
//  3. prefer shorter AS-paths,
//  4. prefer routes via a private network interconnect (PNI).
package bgp

import (
	"fmt"
	"net/netip"
	"sort"
)

// RelType is the interconnect relationship a route was learned over.
type RelType int

// Relationship types in the paper's Table 2.
const (
	// PrivatePeer is a peer over a private network interconnect (PNI).
	PrivatePeer RelType = iota
	// PublicPeer is a peer over a public exchange (IXP).
	PublicPeer
	// Transit is a transit provider.
	Transit
)

// String renders the relationship as in the paper's tables.
func (r RelType) String() string {
	switch r {
	case PrivatePeer:
		return "Private"
	case PublicPeer:
		return "Public"
	case Transit:
		return "Transit"
	default:
		return fmt.Sprintf("RelType(%d)", int(r))
	}
}

// IsPeer reports whether the relationship is a (private or public) peer.
func (r RelType) IsPeer() bool { return r == PrivatePeer || r == PublicPeer }

// Route is one egress route learned at a PoP.
type Route struct {
	// ID uniquely names the route within its PoP for sample annotation.
	ID string
	// Prefix is the announced destination prefix.
	Prefix netip.Prefix
	// ASPath is the advertised path, possibly with prepending
	// (consecutive repeats of the origin or an intermediate AS).
	ASPath []int
	// Rel is the interconnect relationship.
	Rel RelType
}

// PathLen returns the AS-path length including prepending, which is how
// BGP compares paths.
func (r Route) PathLen() int { return len(r.ASPath) }

// Prepended reports whether the path contains consecutive repeats — a
// signal of ingress traffic engineering that §6.2.2 uses to deprioritise
// alternates ("perhaps the route is better performing, but capacity
// constrained").
func (r Route) Prepended() bool {
	for i := 1; i < len(r.ASPath); i++ {
		if r.ASPath[i] == r.ASPath[i-1] {
			return true
		}
	}
	return false
}

// OriginAS returns the destination network's AS, or 0 for an empty path.
func (r Route) OriginAS() int {
	if len(r.ASPath) == 0 {
		return 0
	}
	return r.ASPath[len(r.ASPath)-1]
}

// Table is a routing table with longest-prefix-match semantics.
type Table struct {
	// byPrefix groups routes by exact prefix.
	byPrefix map[netip.Prefix][]Route
	// lengths records which prefix lengths are present, descending.
	lengths []int
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{byPrefix: make(map[netip.Prefix][]Route)}
}

// Insert adds a route. Routes with invalid prefixes are rejected.
func (t *Table) Insert(r Route) error {
	if !r.Prefix.IsValid() {
		return fmt.Errorf("bgp: invalid prefix in route %q", r.ID)
	}
	p := r.Prefix.Masked()
	r.Prefix = p
	if _, ok := t.byPrefix[p]; !ok {
		t.insertLength(p.Bits())
	}
	t.byPrefix[p] = append(t.byPrefix[p], r)
	return nil
}

func (t *Table) insertLength(bits int) {
	for _, l := range t.lengths {
		if l == bits {
			return
		}
	}
	t.lengths = append(t.lengths, bits)
	sort.Sort(sort.Reverse(sort.IntSlice(t.lengths)))
}

// Lookup returns all routes for the longest prefix matching addr, or nil.
func (t *Table) Lookup(addr netip.Addr) []Route {
	for _, bits := range t.lengths {
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		if routes, ok := t.byPrefix[p]; ok {
			return routes
		}
	}
	return nil
}

// Prefixes returns the distinct prefixes in the table.
func (t *Table) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(t.byPrefix))
	for p := range t.byPrefix {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Routes returns the routes for an exact prefix.
func (t *Table) Routes(p netip.Prefix) []Route { return t.byPrefix[p.Masked()] }

// relRank orders relationships per the policy: peers before transit
// (tiebreaker 2), and among peers PNI before IXP only at tiebreaker 4.
func relPeerRank(r RelType) int {
	if r.IsPeer() {
		return 0
	}
	return 1
}

func relPNIRank(r RelType) int {
	if r == PrivatePeer {
		return 0
	}
	return 1
}

// PolicyOrder sorts routes (for a single prefix) by Facebook's egress
// policy (§6.1) and returns them best-first. The input is not modified.
func PolicyOrder(routes []Route) []Route {
	out := append([]Route(nil), routes...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		// Tiebreaker 1 (longest prefix) is resolved by Lookup.
		if pa, pb := relPeerRank(a.Rel), relPeerRank(b.Rel); pa != pb {
			return pa < pb // 2: prefer peer routes
		}
		if la, lb := a.PathLen(), b.PathLen(); la != lb {
			return la < lb // 3: prefer shorter AS-paths
		}
		if na, nb := relPNIRank(a.Rel), relPNIRank(b.Rel); na != nb {
			return na < nb // 4: prefer PNI over public exchange
		}
		return a.ID < b.ID // deterministic final order
	})
	return out
}

// Best returns the policy-preferred route and the next n alternates in
// policy order — the routes the measurement system continuously samples
// (§2.2.3, §6.2: "by default ... the two next best paths").
func Best(routes []Route, n int) (preferred Route, alternates []Route, ok bool) {
	if len(routes) == 0 {
		return Route{}, nil, false
	}
	ordered := PolicyOrder(routes)
	alts := ordered[1:]
	if len(alts) > n {
		alts = alts[:n]
	}
	return ordered[0], alts, true
}
