package bgp

import (
	"net/netip"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestRelTypeStrings(t *testing.T) {
	if PrivatePeer.String() != "Private" || PublicPeer.String() != "Public" || Transit.String() != "Transit" {
		t.Error("relationship strings wrong")
	}
	if !PrivatePeer.IsPeer() || !PublicPeer.IsPeer() || Transit.IsPeer() {
		t.Error("IsPeer wrong")
	}
}

func TestPrependedDetection(t *testing.T) {
	tests := []struct {
		path []int
		want bool
	}{
		{[]int{64500}, false},
		{[]int{64500, 64501}, false},
		{[]int{64500, 64500}, true},
		{[]int{64500, 64501, 64501, 64501}, true},
		{nil, false},
	}
	for _, tt := range tests {
		r := Route{ASPath: tt.path}
		if got := r.Prepended(); got != tt.want {
			t.Errorf("Prepended(%v) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

func TestOriginAS(t *testing.T) {
	if got := (Route{ASPath: []int{1, 2, 3}}).OriginAS(); got != 3 {
		t.Errorf("OriginAS = %d, want 3", got)
	}
	if got := (Route{}).OriginAS(); got != 0 {
		t.Errorf("empty OriginAS = %d, want 0", got)
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Insert(Route{ID: "covering", Prefix: pfx("10.0.0.0/8"), Rel: Transit, ASPath: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Route{ID: "specific", Prefix: pfx("10.1.0.0/16"), Rel: PrivatePeer, ASPath: []int{3}}); err != nil {
		t.Fatal(err)
	}
	// Address in the /16 must match the /16 even though the /8 covers it
	// (tiebreaker 1).
	routes := tbl.Lookup(addr("10.1.2.3"))
	if len(routes) != 1 || routes[0].ID != "specific" {
		t.Errorf("lookup 10.1.2.3 = %v, want specific", routes)
	}
	// Address outside the /16 falls back to the /8.
	routes = tbl.Lookup(addr("10.2.0.1"))
	if len(routes) != 1 || routes[0].ID != "covering" {
		t.Errorf("lookup 10.2.0.1 = %v, want covering", routes)
	}
	// Address outside both: no route.
	if routes = tbl.Lookup(addr("192.168.1.1")); routes != nil {
		t.Errorf("lookup 192.168.1.1 = %v, want nil", routes)
	}
}

func TestInsertNormalisesPrefix(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Insert(Route{ID: "a", Prefix: netip.PrefixFrom(addr("10.1.2.3"), 16)}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Routes(pfx("10.1.0.0/16")); len(got) != 1 {
		t.Errorf("unmasked insert not normalised: %v", got)
	}
}

func TestInsertInvalidPrefix(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Insert(Route{ID: "bad"}); err == nil {
		t.Error("invalid prefix accepted")
	}
}

func TestPolicyPrefersPeerOverTransit(t *testing.T) {
	routes := []Route{
		{ID: "transit-short", Rel: Transit, ASPath: []int{100}},
		{ID: "peer-long", Rel: PublicPeer, ASPath: []int{200, 201, 202}},
	}
	ordered := PolicyOrder(routes)
	// Peers win even with longer AS-paths (tiebreaker 2 before 3).
	if ordered[0].ID != "peer-long" {
		t.Errorf("preferred = %s, want peer-long", ordered[0].ID)
	}
}

func TestPolicyPrefersShorterPathAmongPeers(t *testing.T) {
	routes := []Route{
		{ID: "peer-2hop", Rel: PrivatePeer, ASPath: []int{1, 2}},
		{ID: "peer-1hop", Rel: PublicPeer, ASPath: []int{3}},
	}
	ordered := PolicyOrder(routes)
	// Shorter path wins before the PNI preference (tiebreaker 3 before 4).
	if ordered[0].ID != "peer-1hop" {
		t.Errorf("preferred = %s, want peer-1hop", ordered[0].ID)
	}
}

func TestPolicyPrefersPNIOnTie(t *testing.T) {
	routes := []Route{
		{ID: "ixp", Rel: PublicPeer, ASPath: []int{1}},
		{ID: "pni", Rel: PrivatePeer, ASPath: []int{2}},
	}
	ordered := PolicyOrder(routes)
	if ordered[0].ID != "pni" {
		t.Errorf("preferred = %s, want pni (tiebreaker 4)", ordered[0].ID)
	}
}

func TestPolicyPrependingLengthensPath(t *testing.T) {
	routes := []Route{
		{ID: "prepended", Rel: PrivatePeer, ASPath: []int{5, 5, 5}},
		{ID: "plain", Rel: PublicPeer, ASPath: []int{6}},
	}
	ordered := PolicyOrder(routes)
	if ordered[0].ID != "plain" {
		t.Errorf("preferred = %s: prepended path must lose on length", ordered[0].ID)
	}
}

func TestPolicyDeterministic(t *testing.T) {
	routes := []Route{
		{ID: "b", Rel: Transit, ASPath: []int{1, 2}},
		{ID: "a", Rel: Transit, ASPath: []int{3, 4}},
	}
	o1 := PolicyOrder(routes)
	o2 := PolicyOrder([]Route{routes[1], routes[0]})
	if o1[0].ID != o2[0].ID {
		t.Error("policy order depends on input order")
	}
	if o1[0].ID != "a" {
		t.Errorf("tie broken to %s, want a", o1[0].ID)
	}
}

func TestPolicyOrderDoesNotMutate(t *testing.T) {
	routes := []Route{
		{ID: "z", Rel: Transit, ASPath: []int{1}},
		{ID: "a", Rel: PrivatePeer, ASPath: []int{2}},
	}
	PolicyOrder(routes)
	if routes[0].ID != "z" {
		t.Error("PolicyOrder mutated its input")
	}
}

func TestBest(t *testing.T) {
	routes := []Route{
		{ID: "t1", Rel: Transit, ASPath: []int{1, 2}},
		{ID: "p1", Rel: PrivatePeer, ASPath: []int{3}},
		{ID: "t2", Rel: Transit, ASPath: []int{4, 5, 6}},
		{ID: "x1", Rel: PublicPeer, ASPath: []int{7}},
	}
	pref, alts, ok := Best(routes, 2)
	if !ok {
		t.Fatal("Best returned !ok")
	}
	if pref.ID != "p1" {
		t.Errorf("preferred = %s, want p1", pref.ID)
	}
	if len(alts) != 2 || alts[0].ID != "x1" || alts[1].ID != "t1" {
		t.Errorf("alternates = %v, want [x1 t1]", alts)
	}
	if _, _, ok := Best(nil, 2); ok {
		t.Error("Best(nil) should be !ok")
	}
	// Fewer routes than requested alternates.
	_, alts, _ = Best(routes[:2], 5)
	if len(alts) != 1 {
		t.Errorf("alternates = %v, want 1 entry", alts)
	}
}

func TestPrefixesSortedAndComplete(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(Route{ID: "a", Prefix: pfx("10.0.0.0/8")})
	tbl.Insert(Route{ID: "b", Prefix: pfx("10.1.0.0/16")})
	tbl.Insert(Route{ID: "c", Prefix: pfx("10.1.0.0/16")}) // same prefix
	ps := tbl.Prefixes()
	if len(ps) != 2 {
		t.Errorf("Prefixes = %v, want 2 distinct", ps)
	}
	if len(tbl.Routes(pfx("10.1.0.0/16"))) != 2 {
		t.Error("routes for shared prefix lost")
	}
}

func TestIPv6Lookup(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(Route{ID: "v6", Prefix: pfx("2001:db8::/32"), Rel: PrivatePeer, ASPath: []int{9}})
	routes := tbl.Lookup(addr("2001:db8::1"))
	if len(routes) != 1 || routes[0].ID != "v6" {
		t.Errorf("v6 lookup = %v", routes)
	}
	if routes := tbl.Lookup(addr("10.0.0.1")); routes != nil {
		t.Errorf("v4 addr matched v6 table: %v", routes)
	}
}
