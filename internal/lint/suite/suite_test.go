package suite

import (
	"strings"
	"testing"

	"repro/internal/lint/load"
)

// TestDirectiveHandling runs the full suite over testdata/allowmod and
// checks the three directive outcomes end to end: a well-formed
// directive suppresses its finding, an unused directive and a
// malformed one are findings themselves, and an unannotated violation
// survives.
func TestDirectiveHandling(t *testing.T) {
	ld, err := load.NewLoader("testdata/allowmod")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(pkgs, Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	all := strings.Join(got, "\n")

	wants := []struct{ line, substr string }{
		{"14", "wall-clock read time.Now"}, // Bare, unsuppressed
		{"18", "unused //edgelint:allow directive"},
		{"23", "malformed directive: missing reason"},
	}
	if len(findings) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(wants), all)
	}
	for i, w := range wants {
		f := findings[i]
		if !strings.Contains(f.Pos.String(), ":"+w.line+":") || !strings.Contains(f.Message, w.substr) {
			t.Errorf("finding %d = %s, want line %s containing %q", i, f, w.line, w.substr)
		}
	}
	// The suppressed site must not appear anywhere.
	if strings.Contains(all, "agg.go:11") {
		t.Errorf("suppressed finding leaked:\n%s", all)
	}
}
