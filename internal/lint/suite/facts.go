package suite

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"

	"repro/internal/lint/analysis"
)

// FactStore holds the object facts exported while analyzing packages,
// keyed by strings rather than types.Object so facts survive crossing
// compilation boundaries: the exporting run sees a *types.Func from
// type-checking source, a later importing run sees a different object
// for the same function (from export data or a fresh type-check), but
// both render the same stable key.
type FactStore struct {
	mu sync.RWMutex
	// m: package path -> object key -> fact name -> fact.
	m map[string]map[string]map[string]analysis.Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[string]map[string]analysis.Fact)}
}

// objKey renders a stable cross-compilation key for obj. Functions and
// methods use go/types' FullName (which qualifies the receiver), other
// objects their bare name; both are deterministic text.
func objKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	return obj.Name()
}

// export records fact for obj. Unregistered fact types are rejected
// loudly: they could not be serialized, so a cache or vetx round-trip
// would silently drop them.
func (s *FactStore) export(obj types.Object, fact analysis.Fact) error {
	name := analysis.FactName(fact)
	if name == "" {
		return fmt.Errorf("fact type %T is not registered", fact)
	}
	if obj == nil || obj.Pkg() == nil {
		return fmt.Errorf("fact %s exported for object without a package", name)
	}
	pkgPath := obj.Pkg().Path()
	key := objKey(obj)
	s.mu.Lock()
	defer s.mu.Unlock()
	pkgFacts := s.m[pkgPath]
	if pkgFacts == nil {
		pkgFacts = make(map[string]map[string]analysis.Fact)
		s.m[pkgPath] = pkgFacts
	}
	byName := pkgFacts[key]
	if byName == nil {
		byName = make(map[string]analysis.Fact)
		pkgFacts[key] = byName
	}
	byName[name] = fact
	return nil
}

// importFact copies the stored fact of fact's concrete type for obj
// into fact and reports whether one existed.
func (s *FactStore) importFact(obj types.Object, fact analysis.Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	name := analysis.FactName(fact)
	if name == "" {
		return false
	}
	s.mu.RLock()
	stored := s.m[obj.Pkg().Path()][objKey(obj)][name]
	s.mu.RUnlock()
	if stored == nil {
		return false
	}
	dst := reflect.ValueOf(fact)
	src := reflect.ValueOf(stored)
	if dst.Type() != src.Type() {
		return false
	}
	dst.Elem().Set(src.Elem())
	return true
}

// serialFact is the wire form of one (object, fact) pair, used by both
// the result cache and the vetx files go vet shuttles between units.
type serialFact struct {
	Object string          `json:"object"`
	Name   string          `json:"fact"`
	Data   json.RawMessage `json:"data"`
}

// Bundle serializes every fact exported for pkgPath, deterministically
// ordered (the bundle's bytes feed dependent packages' cache keys).
func (s *FactStore) Bundle(pkgPath string) ([]byte, error) {
	s.mu.RLock()
	pkgFacts := s.m[pkgPath]
	var sfs []serialFact
	for key, byName := range pkgFacts {
		for name, fact := range byName {
			data, err := json.Marshal(fact)
			if err != nil {
				s.mu.RUnlock()
				return nil, fmt.Errorf("marshaling fact %s for %s: %w", name, key, err)
			}
			sfs = append(sfs, serialFact{Object: key, Name: name, Data: data})
		}
	}
	s.mu.RUnlock()
	if len(sfs) == 0 {
		return []byte("[]"), nil
	}
	sort.Slice(sfs, func(i, j int) bool {
		if sfs[i].Object != sfs[j].Object {
			return sfs[i].Object < sfs[j].Object
		}
		return sfs[i].Name < sfs[j].Name
	})
	return json.Marshal(sfs)
}

// AddBundle decodes a bundle previously produced by Bundle and records
// its facts under pkgPath. Unknown fact names are skipped (an old cache
// entry or vetx file may carry facts of a removed analyzer).
func (s *FactStore) AddBundle(pkgPath string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var sfs []serialFact
	if err := json.Unmarshal(data, &sfs); err != nil {
		return fmt.Errorf("decoding fact bundle for %s: %w", pkgPath, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sf := range sfs {
		fact := analysis.NewFact(sf.Name)
		if fact == nil {
			continue
		}
		if err := json.Unmarshal(sf.Data, fact); err != nil {
			return fmt.Errorf("decoding fact %s for %s.%s: %w", sf.Name, pkgPath, sf.Object, err)
		}
		pkgFacts := s.m[pkgPath]
		if pkgFacts == nil {
			pkgFacts = make(map[string]map[string]analysis.Fact)
			s.m[pkgPath] = pkgFacts
		}
		byName := pkgFacts[sf.Object]
		if byName == nil {
			byName = make(map[string]analysis.Fact)
			pkgFacts[sf.Object] = byName
		}
		byName[sf.Name] = fact
	}
	return nil
}

// RegisterFacts registers the fact types of analyzers (and their
// transitive Requires) under stable "<analyzer>.<Type>" names.
// Idempotent. Every suite entry point calls it before running; drivers
// that decode fact bundles themselves (the vet shim reading vetx files)
// must call it before AddBundle, or the bundled facts are dropped as
// unknown.
func RegisterFacts(analyzers []*analysis.Analyzer) {
	registerFacts(analyzers)
}

func registerFacts(analyzers []*analysis.Analyzer) {
	seen := make(map[*analysis.Analyzer]bool)
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, r := range a.Requires {
			visit(r)
		}
		for _, f := range a.FactTypes {
			analysis.RegisterFact(a.Name+"."+reflect.TypeOf(f).Elem().Name(), f)
		}
	}
	for _, a := range analyzers {
		visit(a)
	}
}
