package suite

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Options tunes a suite run.
type Options struct {
	// Jobs is the number of packages analyzed concurrently; <= 0 means
	// GOMAXPROCS. Dependency order is respected regardless: a package is
	// only analyzed once the facts of every module-internal import are
	// available.
	Jobs int
	// CacheDir enables the file-hash keyed result cache rooted there
	// (module-scan runs only; "" disables). A package whose source files
	// and dependency facts are unchanged replays its findings and facts
	// without being type-checked or analyzed.
	CacheDir string
}

// AnalyzerStat aggregates one analyzer's cost and yield across a run.
type AnalyzerStat struct {
	// Time is summed wall time across packages (zero contribution from
	// cache hits, which run nothing).
	Time time.Duration `json:"time"`
	// Findings counts post-suppression findings.
	Findings int `json:"findings"`
}

// Stats describes where a run spent its time.
type Stats struct {
	PerAnalyzer map[string]AnalyzerStat `json:"perAnalyzer"`
	Packages    int                     `json:"packages"`
	CacheHits   int                     `json:"cacheHits"`
	CacheMisses int                     `json:"cacheMisses"`
}

// Result is a run's findings plus accounting.
type Result struct {
	Findings []Finding `json:"findings"`
	Stats    Stats     `json:"stats"`
}

// unit is one package flowing through the scheduler. Preloaded units
// carry pkg; scanned units carry files and a loader thunk, and may be
// satisfied from the result cache without loading at all.
type unit struct {
	path   string
	files  []string
	pkg    *load.Package
	loadFn func() (*load.Package, error)
	deps   []*unit
	nblock int // unresolved deps (scheduler state)
	blocks []*unit
	// outputs
	findings []Finding
	factHash [sha256.Size]byte
}

// RunWith analyzes already-loaded packages in dependency order with
// opts.Jobs-way parallelism, returning suppressed, sorted findings and
// stats. The result cache is not consulted (the loading cost it exists
// to skip is already paid); use RunModule for cached runs.
func RunWith(pkgs []*load.Package, analyzers []*analysis.Analyzer, opts Options) (*Result, error) {
	registerFacts(analyzers)
	byPath := make(map[string]*unit, len(pkgs))
	units := make([]*unit, 0, len(pkgs))
	for _, pkg := range pkgs {
		u := &unit{path: pkg.Path, pkg: pkg}
		byPath[pkg.Path] = u
		units = append(units, u)
	}
	for _, u := range units {
		if u.pkg.Types == nil {
			continue
		}
		for _, imp := range u.pkg.Types.Imports() {
			if d, ok := byPath[imp.Path()]; ok {
				u.deps = append(u.deps, d)
			}
		}
	}
	return runUnits(units, analyzers, opts, nil)
}

// RunModule scans the module rooted at moduleDir without type-checking
// it, then analyzes every package in dependency order, loading only
// the packages the result cache cannot satisfy.
func RunModule(moduleDir string, analyzers []*analysis.Analyzer, opts Options) (*Result, error) {
	registerFacts(analyzers)
	metas, err := load.Scan(moduleDir)
	if err != nil {
		return nil, err
	}
	var (
		loaderMu sync.Mutex
		loader   *load.Loader
	)
	byPath := make(map[string]*unit, len(metas))
	units := make([]*unit, 0, len(metas))
	for _, m := range metas {
		m := m
		u := &unit{path: m.Path, files: m.GoFiles}
		u.loadFn = func() (*load.Package, error) {
			// The loader type-checks recursively and caches; it is not
			// concurrency-safe, so loads serialize. Analysis (the hot
			// part) still runs in parallel.
			loaderMu.Lock()
			defer loaderMu.Unlock()
			if loader == nil {
				loader, err = load.NewLoader(moduleDir)
				if err != nil {
					return nil, err
				}
			}
			return loader.Load(m.Path)
		}
		byPath[m.Path] = u
		units = append(units, u)
	}
	for i, m := range metas {
		for _, imp := range m.Imports {
			if d, ok := byPath[imp]; ok && d != units[i] {
				units[i].deps = append(units[i].deps, d)
			}
		}
	}
	var cache *resultCache
	if opts.CacheDir != "" {
		cache, err = openCache(opts.CacheDir, analyzers)
		if err != nil {
			return nil, err
		}
	}
	return runUnits(units, analyzers, opts, cache)
}

// runUnits drives the dependency-ordered, parallel analysis of units.
func runUnits(units []*unit, analyzers []*analysis.Analyzer, opts Options, cache *resultCache) (*Result, error) {
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(units) {
		jobs = max(1, len(units))
	}
	store := NewFactStore()
	res := &Result{Stats: Stats{PerAnalyzer: make(map[string]AnalyzerStat), Packages: len(units)}}

	for _, u := range units {
		u.nblock = len(u.deps)
		for _, d := range u.deps {
			d.blocks = append(d.blocks, u)
		}
	}

	ready := make(chan *unit, len(units))
	var (
		mu       sync.Mutex
		firstErr error
		inflight int
		done     int
	)
	enqueue := func(u *unit) { // mu held
		inflight++
		ready <- u
	}
	for _, u := range units {
		if u.nblock == 0 {
			inflight++
			ready <- u
		}
	}
	if len(units) == 0 {
		close(ready)
	}

	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range ready {
				err := processUnit(u, analyzers, store, cache, res)
				mu.Lock()
				inflight--
				done++
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if firstErr == nil {
					for _, b := range u.blocks {
						b.nblock--
						if b.nblock == 0 {
							enqueue(b)
						}
					}
				}
				if (firstErr == nil && done == len(units)) || (firstErr != nil && inflight == 0) {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for _, u := range units {
		res.Findings = append(res.Findings, u.findings...)
		for _, f := range u.findings {
			st := res.Stats.PerAnalyzer[f.Analyzer]
			st.Findings++
			res.Stats.PerAnalyzer[f.Analyzer] = st
		}
	}
	sortFindings(res.Findings)
	return res, nil
}

// processUnit produces findings and a fact bundle for one unit, from
// the cache when possible, else by loading and analyzing the package.
func processUnit(u *unit, analyzers []*analysis.Analyzer, store *FactStore, cache *resultCache, res *Result) error {
	var key string
	if cache != nil && len(u.files) > 0 {
		var err error
		key, err = cache.key(u)
		if err == nil {
			if entry, ok := cache.load(key); ok {
				if err := store.AddBundle(u.path, entry.Facts); err == nil {
					u.findings = entry.Findings
					u.factHash = sha256.Sum256(entry.Facts)
					statsMu.Lock()
					res.Stats.CacheHits++
					statsMu.Unlock()
					return nil
				}
			}
		}
	}
	pkg := u.pkg
	if pkg == nil {
		var err error
		pkg, err = u.loadFn()
		if err != nil {
			return fmt.Errorf("loading %s: %w", u.path, err)
		}
	}
	outcome, err := analyzePackage(pkg, analyzers, store)
	if err != nil {
		return err
	}
	u.findings = finalizePackage(pkg, outcome.findings)
	bundle, err := store.Bundle(u.path)
	if err != nil {
		return err
	}
	u.factHash = sha256.Sum256(bundle)
	if cache != nil {
		statsMu.Lock()
		res.Stats.CacheMisses++
		statsMu.Unlock()
		if key != "" {
			cache.save(key, &cacheEntry{Findings: u.findings, Facts: bundle})
		}
	}
	statsMu.Lock()
	for name, d := range outcome.timings {
		st := res.Stats.PerAnalyzer[name]
		st.Time += d
		res.Stats.PerAnalyzer[name] = st
	}
	statsMu.Unlock()
	return nil
}

// statsMu guards Stats updates from worker goroutines.
var statsMu sync.Mutex

// SortedAnalyzerStats flattens PerAnalyzer into a deterministic slice
// for display, slowest first.
func (s Stats) SortedAnalyzerStats() []struct {
	Name string
	AnalyzerStat
} {
	out := make([]struct {
		Name string
		AnalyzerStat
	}, 0, len(s.PerAnalyzer))
	for name, st := range s.PerAnalyzer {
		out = append(out, struct {
			Name string
			AnalyzerStat
		}{name, st})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Name < out[j].Name
	})
	return out
}
