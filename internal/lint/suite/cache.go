package suite

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/lint/analysis"
)

// resultCache is the file-hash keyed result cache behind RunModule. A
// package's entry replays its post-suppression findings and serialized
// fact bundle; a hit skips type-checking and analysis entirely, so a
// warm `make lint` run over an unchanged tree never loads a package.
//
// The key must change whenever anything that could change the result
// does: the package's source bytes, the fact bundles of its
// module-internal dependencies (facts feed interprocedural analyzers
// like batchlife), the analyzer roster and registered fact shapes, and
// the driver binary itself (analyzer logic changes without any
// source-visible signature — hashing the executable is the only honest
// salt under `go run`).
type resultCache struct {
	dir  string
	salt []byte
}

// cacheEntry is the stored result for one package key.
type cacheEntry struct {
	Findings []Finding       `json:"findings"`
	Facts    json.RawMessage `json:"facts"`
}

var (
	exeSumOnce sync.Once
	exeSum     []byte
)

// executableSum hashes the running binary once per process.
func executableSum() []byte {
	exeSumOnce.Do(func() {
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		exeSum = h.Sum(nil)
	})
	return exeSum
}

// openCache prepares a cache rooted at dir, salted for the given
// analyzer roster.
func openCache(dir string, analyzers []*analysis.Analyzer) (*resultCache, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("edgelint cache: %w", err)
	}
	h := sha256.New()
	fmt.Fprintln(h, "edgelint-cache-v1")
	h.Write(executableSum())
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintln(h, n)
	}
	for _, n := range analysis.RegisteredFactNames() {
		fmt.Fprintln(h, "fact", n)
	}
	return &resultCache{dir: dir, salt: h.Sum(nil)}, nil
}

// key derives a unit's cache key from the salt, its import path, its
// source file names and contents, and its dependencies' fact bundles.
func (c *resultCache) key(u *unit) (string, error) {
	h := sha256.New()
	h.Write(c.salt)
	fmt.Fprintln(h, u.path)
	for _, name := range u.files {
		data, err := os.ReadFile(name)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(h, filepath.Base(name), len(data))
		h.Write(data)
	}
	for _, d := range u.deps {
		fmt.Fprintln(h, "dep", d.path)
		h.Write(d.factHash[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// load fetches the entry for key, if present and decodable.
func (c *resultCache) load(key string) (*cacheEntry, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	return &e, true
}

// save stores the entry under key; failures are ignored (the cache is
// an accelerator, never load-bearing).
func (c *resultCache) save(key string, e *cacheEntry) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	final := filepath.Join(c.dir, key+".json")
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, final); err != nil {
		os.Remove(name)
	}
}

// DefaultCacheDir returns the per-user edgelint cache location, or ""
// when no user cache directory exists (caching then stays off).
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "edgelint")
}
