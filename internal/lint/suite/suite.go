// Package suite assembles the edgelint analyzers and runs them over
// loaded packages, applying //edgelint:allow directives. Both the
// cmd/edgelint driver (standalone and vettool modes) and the in-repo
// tests go through this package so suppression semantics cannot
// diverge between entry points.
//
// The driver resolves Analyzer.Requires (running prerequisite passes
// like cfg first and exposing their results through Pass.ResultOf) and
// plumbs object facts between packages: facts exported while analyzing
// a package are visible when its importers are analyzed, which is what
// makes batchlife's ownership summaries interprocedural across
// segstore → collector → agg/analysis/study.
package suite

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"time"

	"repro/internal/lint/analysis"
	"repro/internal/lint/batchlife"
	"repro/internal/lint/closecheck"
	"repro/internal/lint/lintutil"
	"repro/internal/lint/load"
	"repro/internal/lint/nondeterminism"
	"repro/internal/lint/poisonpath"
	"repro/internal/lint/rngsplit"
	"repro/internal/lint/rowfree"
	"repro/internal/lint/tracekey"
	"repro/internal/lint/unitsafety"
)

// Analyzers is the full edgelint suite. Prerequisite-only passes (cfg)
// are not listed; the driver schedules them through Requires.
var Analyzers = []*analysis.Analyzer{
	batchlife.Analyzer,
	closecheck.Analyzer,
	nondeterminism.Analyzer,
	poisonpath.Analyzer,
	rngsplit.Analyzer,
	rowfree.Analyzer,
	tracekey.Analyzer,
	unitsafety.Analyzer,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Finding is one reported, post-suppression diagnostic.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("edgelint" for
	// driver-level problems such as malformed or unused directives).
	Analyzer string `json:"analyzer"`
	// Pos locates the finding.
	Pos token.Position `json:"pos"`
	// Message describes it.
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// pkgOutcome is the raw result of analyzing one package.
type pkgOutcome struct {
	// findings are pre-suppression diagnostics.
	findings []Finding
	// facts were exported by this package's analyzers, in export order.
	facts []analysis.ObjectFact
	// timings is wall time per analyzer (prerequisites included).
	timings map[string]time.Duration
}

// analyzePackage applies the analyzers — prerequisites first — to one
// type-checked package, exchanging facts through store. Packages with
// type errors refuse analysis: unsound types produce unsound findings.
func analyzePackage(pkg *load.Package, analyzers []*analysis.Analyzer, store *FactStore) (*pkgOutcome, error) {
	if len(pkg.Errors) > 0 {
		return nil, fmt.Errorf("%s has type errors (first: %v)", pkg.Path, pkg.Errors[0])
	}
	out := &pkgOutcome{timings: make(map[string]time.Duration)}
	results := make(map[*analysis.Analyzer]any)
	ran := make(map[*analysis.Analyzer]bool)

	var runOne func(a *analysis.Analyzer) error
	runOne = func(a *analysis.Analyzer) error {
		if ran[a] {
			return nil
		}
		ran[a] = true
		resultOf := make(map[*analysis.Analyzer]any, len(a.Requires))
		for _, r := range a.Requires {
			if err := runOne(r); err != nil {
				return err
			}
			resultOf[r] = results[r]
		}
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			ResultOf:  resultOf,
			Report: func(d analysis.Diagnostic) {
				out.findings = append(out.findings, Finding{Analyzer: name, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
			},
		}
		// Fact plumbing is wired for every analyzer that declares fact
		// types; others get nil hooks (calling them is a bug).
		if len(a.FactTypes) > 0 {
			pass.ImportObjectFact = store.importFact
			pass.ExportObjectFact = func(obj types.Object, fact analysis.Fact) {
				if err := store.export(obj, fact); err != nil {
					panic(fmt.Sprintf("edgelint: %s: %v", name, err))
				}
				if obj.Pkg() != nil && obj.Pkg() == pkg.Types {
					out.facts = append(out.facts, analysis.ObjectFact{Object: obj, Fact: fact})
				}
			}
			pass.AllObjectFacts = func() []analysis.ObjectFact {
				return append([]analysis.ObjectFact(nil), out.facts...)
			}
		}
		t0 := time.Now()
		ret, err := a.Run(pass)
		out.timings[name] += time.Since(t0)
		if err != nil {
			return fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
		results[a] = ret
		return nil
	}
	for _, a := range analyzers {
		if err := runOne(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunUnit analyzes one package with dependency facts from store (the
// vettool path: go vet hands us one unit plus its deps' fact files),
// applies its //edgelint:allow directives, and returns sorted findings.
// Facts the package exports are left in store for the caller to bundle.
func RunUnit(pkg *load.Package, analyzers []*analysis.Analyzer, store *FactStore) ([]Finding, error) {
	registerFacts(analyzers)
	out, err := analyzePackage(pkg, analyzers, store)
	if err != nil {
		return nil, err
	}
	fs := finalizePackage(pkg, out.findings)
	sortFindings(fs)
	return fs, nil
}

// RunPackage applies the analyzers to one type-checked package and
// returns raw (pre-suppression) findings, exchanging facts through a
// store private to the call.
func RunPackage(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	fs, _, err := RunPackageFacts(pkg, analyzers, NewFactStore())
	return fs, err
}

// RunPackageFacts is RunPackage with an explicit fact store (facts for
// the package's dependencies are read from it, facts exported by the
// package are added to it). It additionally returns the exported
// facts, which analysistest matches against want annotations.
func RunPackageFacts(pkg *load.Package, analyzers []*analysis.Analyzer, store *FactStore) ([]Finding, []analysis.ObjectFact, error) {
	registerFacts(analyzers)
	out, err := analyzePackage(pkg, analyzers, store)
	if err != nil {
		return nil, nil, err
	}
	return out.findings, out.facts, nil
}

// finalizePackage applies the package's //edgelint:allow directives to
// its raw findings and appends directive diagnostics (malformed, or
// unused — the directive names no finding that fired). Suppression is
// a per-package affair: a directive only ever matches findings in its
// own file.
func finalizePackage(pkg *load.Package, raw []Finding) []Finding {
	var directives []*lintutil.Directive
	for _, f := range pkg.Files {
		directives = append(directives, lintutil.ParseDirectives(pkg.Fset, f)...)
	}
	kept := Suppress(raw, directives)
	for _, d := range directives {
		switch {
		case d.Malformed != "":
			kept = append(kept, Finding{Analyzer: "edgelint", Pos: d.Pos, Message: "malformed directive: " + d.Malformed})
		case !d.Used:
			kept = append(kept, Finding{Analyzer: "edgelint", Pos: d.Pos,
				Message: "unused //edgelint:allow directive: nothing on this or the next line triggers " + fmt.Sprint(d.Analyzers)})
		}
	}
	return kept
}

// sortFindings orders findings by position then message, the stable
// presentation order every entry point emits.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return fs[i].Message < fs[j].Message
	})
}

// Run applies the analyzers to every package in dependency order,
// filters findings through //edgelint:allow directives, and reports
// malformed or unused directives as findings of their own. Results are
// position-sorted.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	res, err := RunWith(pkgs, analyzers, Options{Jobs: 1})
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// Suppress drops findings covered by a well-formed directive on the
// same line or the line above, marking the directives used.
func Suppress(findings []Finding, directives []*lintutil.Directive) []Finding {
	var kept []Finding
	for _, f := range findings {
		suppressed := false
		for _, d := range directives {
			if d.Malformed != "" || d.Pos.Filename != f.Pos.Filename {
				continue
			}
			if (d.Pos.Line == f.Pos.Line || d.Pos.Line == f.Pos.Line-1) && d.Allows(f.Analyzer) {
				d.Used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}
