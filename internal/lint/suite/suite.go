// Package suite assembles the edgelint analyzers and runs them over
// loaded packages, applying //edgelint:allow directives. Both the
// cmd/edgelint driver (standalone and vettool modes) and the in-repo
// tests go through this package so suppression semantics cannot
// diverge between entry points.
package suite

import (
	"fmt"
	"go/token"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/closecheck"
	"repro/internal/lint/lintutil"
	"repro/internal/lint/load"
	"repro/internal/lint/nondeterminism"
	"repro/internal/lint/poisonpath"
	"repro/internal/lint/rngsplit"
	"repro/internal/lint/rowfree"
	"repro/internal/lint/tracekey"
	"repro/internal/lint/unitsafety"
)

// Analyzers is the full edgelint suite.
var Analyzers = []*analysis.Analyzer{
	closecheck.Analyzer,
	nondeterminism.Analyzer,
	poisonpath.Analyzer,
	rngsplit.Analyzer,
	rowfree.Analyzer,
	tracekey.Analyzer,
	unitsafety.Analyzer,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Finding is one reported, post-suppression diagnostic.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("edgelint" for
	// driver-level problems such as malformed or unused directives).
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes it.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunPackage applies the analyzers to one type-checked package and
// returns raw (pre-suppression) findings. Packages with type errors
// refuse analysis: unsound types produce unsound findings.
func RunPackage(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	if len(pkg.Errors) > 0 {
		return nil, fmt.Errorf("%s has type errors (first: %v)", pkg.Path, pkg.Errors[0])
	}
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, Finding{Analyzer: name, Pos: pass.Fset.Position(d.Pos), Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	return out, nil
}

// Run applies the analyzers to every package, filters findings through
// //edgelint:allow directives, and reports malformed or unused
// directives as findings of their own. Results are position-sorted.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var all []Finding
	var directives []*lintutil.Directive
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
		for _, f := range pkg.Files {
			directives = append(directives, lintutil.ParseDirectives(pkg.Fset, f)...)
		}
	}
	kept := Suppress(all, directives)
	for _, d := range directives {
		switch {
		case d.Malformed != "":
			kept = append(kept, Finding{Analyzer: "edgelint", Pos: d.Pos, Message: "malformed directive: " + d.Malformed})
		case !d.Used:
			kept = append(kept, Finding{Analyzer: "edgelint", Pos: d.Pos,
				Message: "unused //edgelint:allow directive: nothing on this or the next line triggers " + fmt.Sprint(d.Analyzers)})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

// Suppress drops findings covered by a well-formed directive on the
// same line or the line above, marking the directives used.
func Suppress(findings []Finding, directives []*lintutil.Directive) []Finding {
	var kept []Finding
	for _, f := range findings {
		suppressed := false
		for _, d := range directives {
			if d.Malformed != "" || d.Pos.Filename != f.Pos.Filename {
				continue
			}
			if (d.Pos.Line == f.Pos.Line || d.Pos.Line == f.Pos.Line-1) && d.Allows(f.Analyzer) {
				d.Used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}
