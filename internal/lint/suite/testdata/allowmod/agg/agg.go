// Package agg exercises the suite's directive handling: its name puts
// it under the determinism contract, and each function covers one
// suppression outcome.
package agg

import "time"

// Allowed carries a well-formed directive: the finding is suppressed.
//
//edgelint:allow nondeterminism: fixture exercises a valid suppression
func Allowed() time.Time { return time.Now() }

// Bare has no directive: the finding must survive.
func Bare() time.Time { return time.Now() }

// Quiet triggers nothing, so its directive is unused.
//
//edgelint:allow nondeterminism: nothing here needs it
func Quiet() int { return 1 }

// Missing omits the mandatory reason.
//
//edgelint:allow nondeterminism
func Missing() int { return 2 }
