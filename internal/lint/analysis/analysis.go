// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a
// Pass hands it one type-checked package, and diagnostics flow back
// through Pass.Report.
//
// The repo deliberately carries no module dependencies (the build must
// work hermetically offline, see DESIGN.md §8), so instead of pinning
// x/tools this package reproduces the small surface the edgelint suite
// needs. The shapes match x/tools field for field; migrating to the
// real package when a vendored copy becomes available is a find/replace
// of import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //edgelint:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's contract: the first line is a summary, the
	// rest describes exactly what is flagged and what is exempt.
	Doc string

	// Requires lists analyzers whose results this one consumes: the
	// driver runs them first (on the same package) and exposes their
	// return values through Pass.ResultOf.
	Requires []*Analyzer

	// FactTypes lists the fact types this analyzer exports or imports.
	// An analyzer with FactTypes is rerun package-by-package in
	// dependency order so facts flow from a package to its importers.
	// Each entry must be registered with RegisterFact by the driver.
	FactTypes []Fact

	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer

	// Fset maps positions for every file in the pass (and its imports).
	Fset *token.FileSet

	// Files are the package's parsed source files.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills this in.
	Report func(Diagnostic)

	// ResultOf maps each analyzer in Analyzer.Requires to its Run return
	// value for this package.
	ResultOf map[*Analyzer]any

	// ExportObjectFact associates fact with obj, making it visible to
	// this analyzer when packages importing this one are analyzed. obj
	// must belong to the package under analysis. The driver fills this
	// in; it is nil for analyzers without FactTypes.
	ExportObjectFact func(obj types.Object, fact Fact)

	// ImportObjectFact copies into fact the fact of fact's concrete type
	// previously exported for obj (by this package or one of its
	// dependencies) and reports whether one existed.
	ImportObjectFact func(obj types.Object, fact Fact) bool

	// AllObjectFacts returns the facts exported while analyzing the
	// current package, in no particular order.
	AllObjectFacts func() []ObjectFact
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
