package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is a serializable summary an analyzer attaches to a types.Object
// (shape-compatible with x/tools go/analysis). Facts exported while
// analyzing a package are visible — via ImportObjectFact — to later
// passes of the same analyzer over packages that import it; this is how
// a check becomes interprocedural without whole-program analysis.
//
// Fact types must be pointers to structs that marshal losslessly to
// JSON (the driver serializes them into the result cache and the vet
// fact files) and must be registered in the Analyzer's FactTypes.
type Fact interface {
	// AFact marks the type as a Fact; it does nothing.
	AFact()
}

// ObjectFact is one (object, fact) pair, as returned by AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// factRegistry maps a fact's registered name to its concrete type so
// serialized facts can be decoded without importing the analyzer.
var (
	factMu       sync.RWMutex
	factRegistry = map[string]reflect.Type{}
)

// RegisterFact makes a fact type decodable by name. The driver calls it
// for every type in every Analyzer's FactTypes; analyzers don't call it
// directly. The name must be stable across builds (it is part of the
// cache key and the vetx wire format), so it is passed explicitly
// rather than derived from reflection.
func RegisterFact(name string, f Fact) {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("analysis: fact %q must be a pointer to struct, got %T", name, f))
	}
	factMu.Lock()
	defer factMu.Unlock()
	if prev, ok := factRegistry[name]; ok && prev != t {
		panic(fmt.Sprintf("analysis: fact name %q registered twice with different types (%v, %v)", name, prev, t))
	}
	factRegistry[name] = t
}

// FactName returns the registered name for f's concrete type, or "".
func FactName(f Fact) string {
	t := reflect.TypeOf(f)
	factMu.RLock()
	defer factMu.RUnlock()
	for name, rt := range factRegistry {
		if rt == t {
			return name
		}
	}
	return ""
}

// NewFact returns a zero value of the fact type registered under name,
// or nil if the name is unknown.
func NewFact(name string) Fact {
	factMu.RLock()
	t, ok := factRegistry[name]
	factMu.RUnlock()
	if !ok {
		return nil
	}
	return reflect.New(t.Elem()).Interface().(Fact)
}

// RegisteredFactNames returns the sorted names of all registered fact
// types (part of the result-cache salt: a fact shape change must
// invalidate cached results).
func RegisteredFactNames() []string {
	factMu.RLock()
	defer factMu.RUnlock()
	names := make([]string, 0, len(factRegistry))
	for n := range factRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
