package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src (a file body containing one function named f)
// and returns its graph.
func buildFunc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package x\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return build(fd, fd.Body)
		}
	}
	t.Fatal("no func f in fixture")
	return nil
}

// reaches reports whether to is reachable from from along Succs.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// preds counts edges into b across the graph.
func preds(g *Graph, b *Block) int {
	n := 0
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s == b {
				n++
			}
		}
	}
	return n
}

func TestIfElseJoinsAndReturnsEdgeToExit(t *testing.T) {
	g := buildFunc(t, `
func f(a bool) int {
	if a {
		return 1
	}
	return 2
}`)
	if n := preds(g, g.Exit); n != 2 {
		t.Fatalf("exit has %d predecessors, want 2 (two returns)", n)
	}
	if preds(g, g.Panic) != 0 {
		t.Fatal("panic block should be unreachable")
	}
}

func TestShortCircuitLowering(t *testing.T) {
	// a && b: b's block must be guarded by a's true edge only.
	g := buildFunc(t, `
func f(a, b bool) {
	if a && b {
		println("both")
	}
}`)
	var condBlocks []*Block
	for _, blk := range g.Blocks {
		if len(blk.Succs) == 2 {
			condBlocks = append(condBlocks, blk)
		}
	}
	if len(condBlocks) != 2 {
		t.Fatalf("got %d two-way branch blocks, want 2 (one per && operand)", len(condBlocks))
	}
	// First condition's false edge and second condition's false edge
	// must converge on the same block (the if's else/after target).
	if condBlocks[0].Succs[1] != condBlocks[1].Succs[1] {
		t.Fatal("false edges of the && operands do not share the else target")
	}
	// First condition's true edge is the second condition's block.
	if condBlocks[0].Succs[0] != condBlocks[1] {
		t.Fatal("a's true edge should evaluate b")
	}
}

func TestNotSwapsBranchTargets(t *testing.T) {
	g := buildFunc(t, `
func f(a bool) {
	if !a {
		return
	}
	println("a")
}`)
	var cond *Block
	for _, blk := range g.Blocks {
		if len(blk.Succs) == 2 {
			cond = blk
		}
	}
	if cond == nil {
		t.Fatal("no branch block")
	}
	// !a: the true edge (Succs[0] under the convention) is the branch
	// taken when a is false — the then-body containing the bare return,
	// whose block edges straight to Exit.
	then := cond.Succs[0]
	if len(then.Succs) != 1 || then.Succs[0] != g.Exit {
		t.Fatalf("then branch of !a should return (edge to Exit), has succs %v", then.Succs)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	g := buildFunc(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		println(i)
	}
}`)
	// The loop must cycle: some block reaches itself.
	cyclic := false
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if reaches(s, blk) {
				cyclic = true
			}
		}
	}
	if !cyclic {
		t.Fatal("for loop produced an acyclic graph")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
}

func TestRangeLoopHeaderHasTwoEdges(t *testing.T) {
	g := buildFunc(t, `
func f(xs []int) {
	total := 0
	for _, x := range xs {
		total += x
	}
	println(total)
}`)
	var header *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				header = blk
			}
		}
	}
	if header == nil {
		t.Fatal("no block holds the RangeStmt")
	}
	if len(header.Succs) != 2 {
		t.Fatalf("range header has %d successors, want 2 (body, done)", len(header.Succs))
	}
}

func TestPanicEdgesToPanicBlockNotExit(t *testing.T) {
	g := buildFunc(t, `
func f(a bool) {
	if a {
		panic("boom")
	}
	println("ok")
}`)
	if n := preds(g, g.Panic); n != 1 {
		t.Fatalf("panic block has %d predecessors, want 1", n)
	}
	// The panicking block must not also reach Exit.
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s == g.Panic && reaches(blk, g.Exit) {
				// blk branches to panic only after the condition; the
				// condition block legitimately reaches both. Check the
				// direct panic predecessor has no Exit edge of its own.
				for _, s2 := range blk.Succs {
					if s2 == g.Exit {
						t.Fatal("panicking block edges straight to Exit too")
					}
				}
			}
		}
	}
}

func TestOsExitRecognizedAsNeverReturning(t *testing.T) {
	g := buildFunc(t, `
func f() {
	os.Exit(1)
}`)
	if preds(g, g.Panic) != 1 {
		t.Fatal("os.Exit path should edge to Panic")
	}
	if preds(g, g.Exit) != 0 {
		t.Fatal("nothing should reach Exit after os.Exit")
	}
}

func TestLabeledBreakLeavesOuterLoop(t *testing.T) {
	g := buildFunc(t, `
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 5 {
				break outer
			}
		}
	}
	println("done")
}`)
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable through labeled break")
	}
}

func TestSwitchFallthroughChainsClauses(t *testing.T) {
	g := buildFunc(t, `
func f(n int) {
	switch n {
	case 1:
		println("one")
		fallthrough
	case 2:
		println("two")
	default:
		println("other")
	}
}`)
	// Find the clause blocks: successors of the header (the block with
	// 3 outgoing clause edges).
	var header *Block
	for _, blk := range g.Blocks {
		if len(blk.Succs) == 3 {
			header = blk
		}
	}
	if header == nil {
		t.Fatal("no 3-way switch header (has default, so no fall-past edge)")
	}
	one, two := header.Succs[0], header.Succs[1]
	if !reaches(one, two) {
		t.Fatal("fallthrough from case 1 does not reach case 2's block")
	}
}

func TestSelectClausesBranchFromHeader(t *testing.T) {
	g := buildFunc(t, `
func f(a, b chan int) {
	select {
	case v := <-a:
		println(v)
	case <-b:
		return
	}
	println("after")
}`)
	// One Exit edge from the returning clause, one from falling off the
	// end after the select's join block.
	if n := preds(g, g.Exit); n != 2 {
		t.Fatalf("exit has %d predecessors, want 2 (clause return + fall-off)", n)
	}
	// The header branches to one block per comm clause.
	var header *Block
	for _, blk := range g.Blocks {
		if len(blk.Succs) == 2 && blk.Succs[0] != g.Exit && blk.Succs[1] != g.Exit {
			header = blk
			break
		}
	}
	if header == nil {
		t.Fatal("no 2-way select header found")
	}
}

func TestGotoResolvesForward(t *testing.T) {
	g := buildFunc(t, `
func f(a bool) {
	if a {
		goto done
	}
	println("work")
done:
	println("done")
}`)
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable through goto")
	}
}

func TestDeferAppearsAsPlainNode(t *testing.T) {
	g := buildFunc(t, `
func f() {
	defer println("bye")
	println("hi")
}`)
	found := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("DeferStmt not recorded in any block")
	}
}

func TestInfiniteLoopLeavesExitUnreachable(t *testing.T) {
	g := buildFunc(t, `
func f() {
	for {
		println("spin")
	}
}`)
	if reaches(g.Entry, g.Exit) {
		t.Fatal("for{} should never reach Exit")
	}
}
